#include "serve/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/host_stitch.h"
#include "mem/clip.h"
#include "obs/registry.h"
#include "util/bits.h"
#include "util/timer.h"

namespace gm::serve {
namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Wall-trace lanes cycled across in-flight requests (tracks 1..kLanes on
/// pid 0; track 0 stays process-level work). Bounded so the Chrome trace
/// keeps a readable number of rows under sustained traffic.
constexpr std::uint32_t kRequestLanes = 24;

/// Validation bound on per-request deadlines: anything above this is a
/// field-encoding bug (the wire carries deadlines in ms as u32), not a real
/// deadline. ~10 years.
constexpr double kMaxDeadlineSeconds = 3.2e8;

}  // namespace

const char* to_string(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kRejected: return "rejected";
    case QueryStatus::kExpired: return "expired";
    case QueryStatus::kFailed: return "failed";
    case QueryStatus::kInvalid: return "invalid";
  }
  return "unknown";
}

void publish_service_stats(const ServiceStats& stats) {
  if (!obs::enabled()) return;
  obs::Metrics& m = obs::Registry::global().metrics();
  const auto set = [&m](const std::string& name, double v,
                        const std::string& help = {}) {
    m.gauge(name, help).set(v);
  };
  set("serve.submitted", static_cast<double>(stats.submitted),
      "submit() calls, accepted or not");
  set("serve.completed", static_cast<double>(stats.completed));
  set("serve.rejected", static_cast<double>(stats.rejected),
      "submits refused by admission control or shutdown");
  set("serve.invalid", static_cast<double>(stats.invalid),
      "submits refused by request validation, never enqueued");
  set("serve.expired", static_cast<double>(stats.expired),
      "requests whose deadline passed while queued");
  set("serve.deadline_miss", static_cast<double>(stats.deadline_miss),
      "requests that missed their deadline (expired or finished late)");
  set("serve.failed", static_cast<double>(stats.failed));
  set("serve.batches", static_cast<double>(stats.batches));
  set("serve.cache_hits", static_cast<double>(stats.cache_hits));
  set("serve.cache_misses", static_cast<double>(stats.cache_misses));
  set("serve.cache_resident_bytes",
      static_cast<double>(stats.cache_resident_bytes),
      "device bytes held by cached row indexes");
  set("serve.queue_depth", static_cast<double>(stats.queue_depth));
  set("serve.max_queue_depth", static_cast<double>(stats.max_queue_depth));
  set("serve.modeled_index_seconds", stats.modeled_index_seconds,
      "summed per-request modeled index time (device max per request)");
  set("serve.modeled_match_seconds", stats.modeled_match_seconds);
  set("serve.queue_seconds_total", stats.queue_seconds_total);
}

MemService::MemService(ServiceConfig cfg, seq::Sequence ref)
    : cfg_(std::move(cfg)), ref_(std::move(ref)), engine_(cfg_.engine) {
  if (cfg_.engine.backend != core::Backend::kSimt) {
    throw std::invalid_argument(
        "MemService: the device pool serves only Backend::kSimt configs");
  }
  if (cfg_.devices == 0) {
    throw std::invalid_argument("MemService: need >= 1 device");
  }
  if (cfg_.queue_capacity == 0) {
    throw std::invalid_argument("MemService: queue_capacity must be >= 1");
  }
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  if (cfg_.artifact != nullptr) {
    if (!cfg_.cache_enabled) {
      throw std::invalid_argument(
          "MemService: an artifact backing requires cache_enabled");
    }
    cfg_.artifact->throw_if_geometry_mismatch(cfg_.engine);
    if (ref_.size() != cfg_.artifact->reference().size()) {
      throw std::invalid_argument(
          "MemService: reference (" + std::to_string(ref_.size()) +
          " bases) does not match the artifact's reference (" +
          std::to_string(cfg_.artifact->reference().size()) + " bases)");
    }
  }
  if (cfg_.copmem_fast_index) {
    copmem_ = std::make_unique<mem::CopMemFinder>();
    mem::FinderOptions fopt;
    fopt.min_length = cfg_.engine.min_length;
    fopt.threads = cfg_.engine.threads;
    if (cfg_.artifact != nullptr &&
        cfg_.artifact->has(store::SectionId::kCopmemIndex)) {
      copmem_->adopt_index(ref_, fopt, cfg_.artifact->copmem_index());
    } else {
      copmem_->set_seed_len(cfg_.engine.seed_len);
      copmem_->build_index(ref_, fopt);
    }
  }
  if (cfg_.lazy_lcp) {
    slamem_ = std::make_unique<mem::SlaMemFinder>(/*force_lazy=*/true);
    mem::FinderOptions fopt;
    fopt.min_length = cfg_.engine.min_length;
    fopt.lazy_lcp = true;
    if (cfg_.artifact != nullptr &&
        cfg_.artifact->has(store::SectionId::kFmIndex)) {
      slamem_->adopt_index(ref_, fopt, cfg_.artifact->fm_index());
    } else {
      slamem_->build_index(ref_, fopt);
    }
    if (cfg_.long_mem_threshold == 0) {
      cfg_.long_mem_threshold = cfg_.engine.min_length;
    }
  }
  const core::Config::Geometry g = cfg_.engine.validated();
  tile_rows_ = ref_.empty()
                   ? 0
                   : static_cast<std::uint32_t>(
                         util::ceil_div<std::size_t>(ref_.size(), g.tile_len));

  // Row-contiguous partitioning across the pool, as in run_multi_device;
  // cross-partition MEMs stitch in the per-request host merge.
  const std::uint32_t rows_per_device =
      tile_rows_ == 0 ? 0 : util::ceil_div(tile_rows_, cfg_.devices);
  workers_.reserve(cfg_.devices);
  for (std::uint32_t d = 0; d < cfg_.devices; ++d) {
    DeviceWorker w;
    w.dev = std::make_unique<simt::Device>(cfg_.engine.device, d);
    if (cfg_.cache_enabled) {
      // The reference's identity within one service is fixed; device
      // ordinal keeps keys distinct in traces only, not in the key itself.
      w.cache = std::make_unique<DeviceRowIndexCache>(
          *w.dev, cfg_.engine, /*ref_id=*/reinterpret_cast<std::uintptr_t>(this));
      if (cfg_.artifact != nullptr) w.cache->back_with_artifact(cfg_.artifact);
    }
    w.row_begin = std::min(tile_rows_, d * rows_per_device);
    w.row_end = std::min(tile_rows_, w.row_begin + rows_per_device);
    workers_.push_back(std::move(w));
  }

  paused_ = cfg_.start_paused;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

MemService::~MemService() { shutdown(); }

std::future<QueryResult> MemService::submit(QueryRequest req,
                                            CompletionFn on_done) {
  std::promise<QueryResult> promise;
  std::future<QueryResult> fut = promise.get_future();

  // Resolves a request that never reaches the queue: the promise is set and
  // the callback runs on this (the submitting) thread, outside mu_.
  const auto finish_now = [&](QueryStatus status, std::string error) {
    QueryResult r;
    r.status = status;
    r.id = std::move(req.id);
    r.error = std::move(error);
    if (on_done) on_done(r);
    promise.set_value(r);
    return std::move(fut);
  };

  // Submit-time validation: the wire path must not be able to smuggle
  // states the offline CLI already rejects. Checked before admission so an
  // invalid request never occupies a queue slot.
  std::string invalid_reason;
  if (req.query.empty()) {
    invalid_reason = "empty query";
  } else if (req.deadline_seconds < 0.0 ||
             req.deadline_seconds != req.deadline_seconds ||
             req.deadline_seconds > kMaxDeadlineSeconds) {
    invalid_reason = "deadline must be a finite non-negative number of "
                     "seconds (got " +
                     std::to_string(req.deadline_seconds) + ")";
  } else if (req.min_length != 0 &&
             req.min_length < cfg_.engine.min_length) {
    // The device pipeline's seeds and tiles are sized for the engine's L;
    // it cannot report shorter MEMs, so under-asking must fail loudly
    // instead of silently returning a truncated set.
    invalid_reason = "min_length " + std::to_string(req.min_length) +
                     " is below the engine's configured minimum " +
                     std::to_string(cfg_.engine.min_length);
  }
  if (!invalid_reason.empty()) {
    {
      std::lock_guard lock(mu_);
      ++stats_.submitted;
      ++stats_.invalid;
    }
    obs::flight(obs::FlightKind::kQueue, "submit-invalid", 0, 0.0);
    if (obs::enabled()) {
      obs::Registry::global()
          .metrics()
          .counter("serve.invalid_total", "submits failing validation")
          .add();
    }
    return finish_now(QueryStatus::kInvalid, std::move(invalid_reason));
  }

  Pending pending;
  pending.deadline_seconds = req.deadline_seconds > 0.0
                                 ? req.deadline_seconds
                                 : cfg_.default_deadline_seconds;
  pending.submitted_at = std::chrono::steady_clock::now();
  pending.trace_id = obs::new_trace_id();

  bool rejected = false;
  std::string reject_reason;
  {
    std::lock_guard lock(mu_);
    ++stats_.submitted;
    if (stopping_ || queue_.size() >= cfg_.queue_capacity) {
      ++stats_.rejected;
      rejected = true;
      reject_reason = stopping_ ? "service is shut down"
                                : "queue full (capacity " +
                                      std::to_string(cfg_.queue_capacity) +
                                      ")";
      obs::flight(obs::FlightKind::kQueue, "submit-reject", 0,
                  static_cast<double>(queue_.size()));
      if (obs::enabled()) {
        obs::Registry::global()
            .metrics()
            .counter("serve.rejected_total", "rejected submits")
            .add();
      }
    } else {
      pending.req = std::move(req);
      pending.promise = std::move(promise);
      pending.on_done = std::move(on_done);
      pending.lane =
          1 + static_cast<std::uint32_t>(submit_seq_++ % kRequestLanes);
      obs::flight(obs::FlightKind::kQueue, "submit", pending.trace_id,
                  static_cast<double>(queue_.size() + 1));
      queue_.push_back(std::move(pending));
      stats_.queue_depth = queue_.size();
      stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
      if (obs::enabled()) {
        obs::Registry::global()
            .metrics()
            .gauge("serve.queue_depth")
            .set(static_cast<double>(queue_.size()));
      }
    }
  }
  if (rejected) {
    // The promise resolves and the callback runs outside mu_, on this
    // thread — admission failures surface immediately, never queued.
    return finish_now(QueryStatus::kRejected, std::move(reject_reason));
  }
  cv_.notify_one();
  return fut;
}

std::size_t MemService::queue_depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

void MemService::resume() {
  {
    std::lock_guard lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void MemService::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stopping_ && !dispatcher_.joinable()) return;
    stopping_ = true;
    paused_ = false;  // drain whatever is queued even if never resumed
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ServiceStats MemService::stats() const {
  std::lock_guard lock(mu_);
  ServiceStats out = stats_;
  out.queue_depth = queue_.size();
  out.cache_hits = out.cache_misses = 0;
  out.cache_resident_bytes = 0;
  for (const DeviceWorker& w : workers_) {
    if (w.cache == nullptr) continue;
    out.cache_hits += w.cache->hits();
    out.cache_misses += w.cache->misses();
    out.cache_resident_bytes += w.cache->resident_bytes();
  }
  return out;
}

void MemService::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] {
        return (!paused_ && !queue_.empty()) || stopping_;
      });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      const std::size_t n = std::min(cfg_.max_batch, queue_.size());
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++stats_.batches;
      stats_.queue_depth = queue_.size();
    }

    if (obs::enabled()) {
      obs::Metrics& m = obs::Registry::global().metrics();
      m.distribution("serve.batch_size", "requests per dispatch round")
          .observe(static_cast<double>(batch.size()));
      m.gauge("serve.queue_depth").set(static_cast<double>(stats().queue_depth));
    }

    for (Pending& pending : batch) {
      const auto dispatched_at = std::chrono::steady_clock::now();
      const double queue_seconds =
          seconds_between(pending.submitted_at, dispatched_at);
      QueryResult result = execute(pending, queue_seconds);
      result.service_seconds =
          seconds_between(dispatched_at, std::chrono::steady_clock::now());
      // A miss is either an expiry while queued or a completion that landed
      // past the deadline (queue + service time exceeded it).
      const bool deadline_missed =
          pending.deadline_seconds > 0.0 &&
          (result.status == QueryStatus::kExpired ||
           queue_seconds + result.service_seconds > pending.deadline_seconds);
      {
        std::lock_guard lock(mu_);
        stats_.queue_seconds_total += queue_seconds;
        if (deadline_missed) ++stats_.deadline_miss;
        switch (result.status) {
          case QueryStatus::kOk:
            ++stats_.completed;
            stats_.modeled_index_seconds += result.stats.index_seconds;
            stats_.modeled_match_seconds += result.stats.match_seconds;
            break;
          case QueryStatus::kExpired: ++stats_.expired; break;
          case QueryStatus::kFailed: ++stats_.failed; break;
          case QueryStatus::kRejected: ++stats_.rejected; break;
          case QueryStatus::kInvalid: ++stats_.invalid; break;  // unreachable
        }
      }
      if (deadline_missed) {
        obs::flight(obs::FlightKind::kQueue, "deadline-miss", result.trace_id,
                    queue_seconds + result.service_seconds,
                    pending.deadline_seconds);
        if (obs::enabled()) {
          obs::Registry::global()
              .metrics()
              .counter("serve.deadline_miss",
                       "requests that missed their deadline")
              .add();
        }
      }
      if (obs::enabled()) {
        obs::Metrics& m = obs::Registry::global().metrics();
        m.distribution("serve.queue_seconds", "submit -> dispatch wall time")
            .observe(queue_seconds);
        m.distribution("serve.service_seconds",
                       "dispatch -> completion wall time")
            .observe(result.service_seconds);
      }
      // Callback before promise: a caller that observed the future resolve
      // may rely on the completion callback having already run (the
      // ordering tests pin this).
      if (pending.on_done) pending.on_done(result);
      pending.promise.set_value(result);
    }
    publish_service_stats(stats());
  }
}

QueryResult MemService::execute(Pending& pending, double queue_seconds) {
  // Install the request's trace scope for the whole service path: every
  // span recorded below — including the pipeline's stage spans and spans
  // emitted inside stream-scheduler closures (which run on this thread) —
  // is stamped with this trace id and rendered on this request's lane.
  obs::ScopedTrace scoped({pending.trace_id, pending.lane});

  QueryResult result;
  result.id = pending.req.id;
  result.trace_id = pending.trace_id;
  result.queue_seconds = queue_seconds;

  // Queue-wait span: submit() -> dispatch, reconstructed from the submit
  // timestamp so the trace shows the queue-wait/service-time split.
  if (obs::enabled()) {
    obs::SpanEvent qev;
    qev.name = "serve/queue-wait";
    qev.category = "serve";
    qev.trace_id = pending.trace_id;
    qev.track = pending.lane;
    qev.start_us = obs::Registry::global().wall_us_at(pending.submitted_at);
    qev.duration_us = queue_seconds * 1e6;
    qev.attrs.push_back({"id", result.id});
    obs::Registry::global().trace().record(std::move(qev));
  }
  obs::flight(obs::FlightKind::kQueue, "dispatch", pending.trace_id,
              queue_seconds * 1e6);

  if (pending.deadline_seconds > 0.0 &&
      queue_seconds > pending.deadline_seconds) {
    result.status = QueryStatus::kExpired;
    result.error = "deadline of " + std::to_string(pending.deadline_seconds) +
                   " s exceeded while queued";
    obs::flight(obs::FlightKind::kQueue, "expired", pending.trace_id,
                queue_seconds, pending.deadline_seconds);
    return result;
  }

  obs::Span request_span("serve/request", "serve");
  request_span.attr("id", result.id);
  request_span.attr("query_bp", std::uint64_t{pending.req.query.size()});
  request_span.attr("queue_us", queue_seconds * 1e6);

  util::Timer wall;
  try {
    const seq::Sequence& query = pending.req.query;
    // Per-request minimum length: 0 falls back to the engine's L; larger
    // values are answered exactly — MEM maximality is L-independent, so
    // filtering an engine-L result to len >= L is the same set the engine
    // would report if built at L (the serve tests pin this).
    const std::uint32_t req_len = pending.req.min_length != 0
                                      ? pending.req.min_length
                                      : cfg_.engine.min_length;
    if (slamem_ != nullptr && req_len >= cfg_.long_mem_threshold) {
      // Long-MEM fast path: the resident lazy FM-index finder answers at
      // the request's own L on the host — no device work, and work scales
      // down as L grows instead of up (PERFORMANCE.md "Long-MEM mode").
      result.mems = slamem_->find_at(query, req_len);
      result.stats.match_seconds = slamem_->last_find_modeled_seconds();
      result.stats.index_cache_hit = true;
      result.stats.mem_count = result.mems.size();
      result.stats.wall_seconds = wall.seconds();
      result.stats.trace_id = pending.trace_id;
      result.status = QueryStatus::kOk;
      core::publish_run_stats(result.stats);
      obs::flight(obs::FlightKind::kQueue, "done", pending.trace_id,
                  static_cast<double>(result.status));
      request_span.attr("status", std::string(to_string(result.status)));
      request_span.attr("mems", result.stats.mem_count);
      request_span.attr("long_mem_len", std::uint64_t{req_len});
      return result;
    }
    if (copmem_ != nullptr) {
      // copMEM fast-index path: the resident sampled index answers the
      // request on the host — no device work, no index cost to report.
      result.mems = copmem_->find(query);
      if (req_len > cfg_.engine.min_length) {
        std::erase_if(result.mems, [&](const mem::Mem& m) {
          return m.len < req_len;
        });
      }
      result.stats.match_seconds = copmem_->last_find_modeled_seconds();
      result.stats.index_cache_hit = true;
      result.stats.mem_count = result.mems.size();
      result.stats.wall_seconds = wall.seconds();
      result.stats.trace_id = pending.trace_id;
      result.status = QueryStatus::kOk;
      core::publish_run_stats(result.stats);
      obs::flight(obs::FlightKind::kQueue, "done", pending.trace_id,
                  static_cast<double>(result.status));
      request_span.attr("status", std::string(to_string(result.status)));
      request_span.attr("mems", result.stats.mem_count);
      return result;
    }
    result.stats.tile_rows = tile_rows_;
    result.stats.tile_cols =
        query.empty() ? 0
                      : static_cast<std::uint32_t>(util::ceil_div<std::size_t>(
                            query.size(),
                            cfg_.engine.validated().tile_len));
    if (query.empty()) result.stats.tile_rows = 0;

    std::vector<mem::Mem> reported;
    std::vector<mem::Mem> outtile_pieces;
    bool all_rows_warm = tile_rows_ > 0 && !query.empty();
    for (DeviceWorker& w : workers_) {
      if (w.row_begin >= w.row_end) continue;
      const simt::PerfLedger::Snapshot before = w.dev->ledger().snapshot();
      w.dev->reset_peak();
      core::RunStats dstats;
      engine_.run_simt_rows(*w.dev, ref_, query, w.row_begin, w.row_end,
                            reported, outtile_pieces, dstats, w.cache.get());
      // Pool members run concurrently in the model: per-request modeled
      // time is the slowest device, counters are totals.
      result.stats.index_seconds =
          std::max(result.stats.index_seconds, dstats.index_seconds);
      result.stats.match_seconds =
          std::max(result.stats.match_seconds, dstats.match_seconds);
      result.stats.modeled_makespan_seconds =
          std::max(result.stats.modeled_makespan_seconds,
                   dstats.modeled_makespan_seconds);
      result.stats.inblock_mems += dstats.inblock_mems;
      result.stats.intile_mems += dstats.intile_mems;
      result.stats.overflow_rounds += dstats.overflow_rounds;
      result.stats.kernels_launched +=
          w.dev->ledger().kernels_launched() - before.kernels;
      result.stats.device_peak_bytes =
          std::max(result.stats.device_peak_bytes, w.dev->peak_bytes());
      all_rows_warm = all_rows_warm && dstats.index_cache_hit;
    }
    result.stats.index_cache_hit = all_rows_warm;

    // Host merge over the union of all devices' out-tile pieces.
    util::Timer host_merge;
    result.stats.outtile_pieces = outtile_pieces.size();
    std::vector<mem::Mem> finished = core::finalize_out_tile(
        ref_, query, std::move(outtile_pieces), cfg_.engine.min_length);
    reported.insert(reported.end(), finished.begin(), finished.end());
    mem::clip_invalid_bases(ref_, query, reported, cfg_.engine.min_length);
    mem::sort_unique(reported);
    if (req_len > cfg_.engine.min_length) {
      std::erase_if(reported,
                    [&](const mem::Mem& m) { return m.len < req_len; });
    }
    result.stats.host_stitch_seconds = host_merge.seconds();
    result.stats.match_seconds += result.stats.host_stitch_seconds;

    result.mems = std::move(reported);
    result.stats.mem_count = result.mems.size();
    result.stats.wall_seconds = wall.seconds();
    result.stats.trace_id = pending.trace_id;
    result.status = QueryStatus::kOk;
    core::publish_run_stats(result.stats);
  } catch (const std::exception& e) {
    result.status = QueryStatus::kFailed;
    result.error = e.what();
    result.mems.clear();
    obs::flight(obs::FlightKind::kMark, "request-failed", pending.trace_id);
  }
  obs::flight(obs::FlightKind::kQueue, "done", pending.trace_id,
              static_cast<double>(result.status));
  request_span.attr("status", std::string(to_string(result.status)));
  request_span.attr("mems", result.stats.mem_count);
  return result;
}

}  // namespace gm::serve
