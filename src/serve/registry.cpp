#include "serve/registry.h"

#include <filesystem>
#include <system_error>
#include <utility>

#include "obs/registry.h"

namespace gm::serve {

namespace fs = std::filesystem;

Tenant::Tenant(std::string name, std::string path,
               std::shared_ptr<const store::LoadedIndex> index,
               ServiceConfig cfg)
    : name_(std::move(name)), path_(std::move(path)), index_(std::move(index)) {
  cfg.artifact = index_;
  service_ =
      std::make_unique<MemService>(std::move(cfg), index_->reference());
}

ReferenceRegistry::ReferenceRegistry(std::string dir, ServiceConfig base,
                                     std::size_t max_resident)
    : dir_(std::move(dir)),
      base_(std::move(base)),
      max_resident_(max_resident == 0 ? 1 : max_resident) {
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) {
    throw store::StoreError(dir_,
                            "cannot scan registry directory: " + ec.message());
  }
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || entry.path().extension() != ".gmidx") {
      continue;
    }
    Slot slot;
    slot.path = entry.path().string();
    slots_.emplace(entry.path().stem().string(), std::move(slot));
  }
  stats_.known = slots_.size();
}

std::vector<std::string> ReferenceRegistry::tenants() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) names.push_back(name);
  return names;
}

std::string ReferenceRegistry::artifact_path(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = slots_.find(name);
  if (it == slots_.end()) {
    throw store::StoreError(dir_, "no tenant named \"" + name + "\"");
  }
  return it->second.path;
}

std::shared_ptr<Tenant> ReferenceRegistry::acquire(const std::string& name) {
  std::lock_guard lock(mu_);
  return acquire_locked(name);
}

std::shared_ptr<Tenant> ReferenceRegistry::acquire_locked(
    const std::string& name) {
  const auto it = slots_.find(name);
  if (it == slots_.end()) {
    throw store::StoreError(dir_, "no tenant named \"" + name + "\"");
  }
  Slot& slot = it->second;
  slot.last_used = ++clock_;
  if (slot.tenant != nullptr) {
    ++stats_.hits;
    if (obs::enabled()) {
      obs::Registry::global()
          .metrics()
          .counter("registry.hits", "acquires served by a resident tenant")
          .add();
    }
    return slot.tenant;
  }

  // Cold tenant: open + verify + materialize + start its service. Any
  // failure propagates before residency changes, so a corrupt artifact
  // cannot evict a healthy tenant.
  obs::Span span("registry.load", "registry");
  span.attr("tenant", name);
  auto index = std::make_shared<const store::LoadedIndex>(
      store::MappedArtifact::open_file(slot.path));
  auto tenant = std::make_shared<Tenant>(name, slot.path, index, base_);
  slot.tenant = std::move(tenant);
  ++stats_.loads;
  if (obs::enabled()) {
    obs::Registry::global()
        .metrics()
        .counter("registry.loads", "tenants activated from their artifact")
        .add();
  }
  evict_over_budget_locked();
  publish_locked();
  return slot.tenant;
}

std::shared_ptr<Tenant> ReferenceRegistry::pin(const std::string& name) {
  std::lock_guard lock(mu_);
  std::shared_ptr<Tenant> t = acquire_locked(name);
  slots_.at(name).pinned = true;
  return t;
}

void ReferenceRegistry::unpin(const std::string& name) {
  std::lock_guard lock(mu_);
  const auto it = slots_.find(name);
  if (it == slots_.end()) {
    throw store::StoreError(dir_, "no tenant named \"" + name + "\"");
  }
  it->second.pinned = false;
  evict_over_budget_locked();
  publish_locked();
}

void ReferenceRegistry::evict_over_budget_locked() {
  for (;;) {
    std::size_t unpinned = 0;
    Slot* victim = nullptr;
    for (auto& [name, slot] : slots_) {
      if (slot.tenant == nullptr || slot.pinned) continue;
      ++unpinned;
      if (victim == nullptr || slot.last_used < victim->last_used) {
        victim = &slot;
      }
    }
    if (unpinned <= max_resident_ || victim == nullptr) return;
    // Dropping the registry's reference tears the service down (devices
    // release every cached row index against their ledger) and unmaps the
    // artifact — unless callers still hold the shared_ptr, in which case
    // teardown happens when the last in-flight holder releases it.
    victim->tenant.reset();
    ++stats_.evictions;
    if (obs::enabled()) {
      obs::Registry::global()
          .metrics()
          .counter("registry.evictions", "tenants torn down over budget")
          .add();
    }
  }
}

void ReferenceRegistry::publish_locked() const {
  if (!obs::enabled()) return;
  std::size_t resident = 0;
  for (const auto& [name, slot] : slots_) {
    if (slot.tenant != nullptr) ++resident;
  }
  obs::Registry::global()
      .metrics()
      .gauge("registry.resident", "tenants currently resident")
      .set(static_cast<double>(resident));
}

RegistryStats ReferenceRegistry::stats() const {
  std::lock_guard lock(mu_);
  RegistryStats s = stats_;
  s.resident = 0;
  for (const auto& [name, slot] : slots_) {
    if (slot.tenant != nullptr) ++s.resident;
  }
  return s;
}

}  // namespace gm::serve
