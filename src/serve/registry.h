// Multi-tenant reference registry: a directory of *.gmidx index artifacts
// served as named tenants.
//
// Each tenant is one reference genome with a persistent index artifact
// (store/). The registry lazily activates a tenant on first acquire — mmap
// + verify the artifact, materialize the LoadedIndex, spin up a MemService
// whose row-index caches are artifact-backed — and keeps a bounded number
// of unpinned tenants resident, evicting least-recently-used ones when the
// budget is exceeded. Eviction tears the tenant's MemService down (its
// devices release every ledger-accounted buffer, including the cached row
// indexes) and drops the mapping, so a cold tenant costs nothing but its
// file on disk; acquire() hands out shared ownership, so requests in
// flight on an evicted tenant finish safely.
//
// Tenant names are the artifact file stems ("ecoli.gmidx" -> "ecoli");
// the header's embedded reference name is informational (`index-info`).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/service.h"
#include "store/loaded_index.h"

namespace gm::serve {

/// One resident tenant: the verified artifact, its materialized index, and
/// a running artifact-backed MemService. Obtained via
/// ReferenceRegistry::acquire; destroys (and releases all device memory)
/// when the last shared_ptr drops.
class Tenant {
 public:
  Tenant(std::string name, std::string path,
         std::shared_ptr<const store::LoadedIndex> index, ServiceConfig cfg);

  const std::string& name() const noexcept { return name_; }
  const std::string& path() const noexcept { return path_; }
  const store::LoadedIndex& index() const noexcept { return *index_; }
  MemService& service() noexcept { return *service_; }

 private:
  std::string name_;
  std::string path_;
  std::shared_ptr<const store::LoadedIndex> index_;
  std::unique_ptr<MemService> service_;
};

struct RegistryStats {
  std::uint64_t loads = 0;      ///< artifacts opened + services started
  std::uint64_t hits = 0;       ///< acquires served by a resident tenant
  std::uint64_t evictions = 0;  ///< tenants torn down over budget
  std::size_t resident = 0;     ///< at snapshot time (pinned included)
  std::size_t known = 0;        ///< artifacts discovered in the directory
};

class ReferenceRegistry {
 public:
  /// Scans `dir` for *.gmidx files (non-recursive). `base` configures every
  /// tenant's MemService; its `artifact` field is overwritten per tenant.
  /// `max_resident` bounds the number of *unpinned* resident tenants
  /// (pinned tenants never count against, nor are evicted from, the
  /// budget). Throws store::StoreError when the directory is unreadable.
  ReferenceRegistry(std::string dir, ServiceConfig base,
                    std::size_t max_resident = 4);

  /// Known tenant names, sorted.
  std::vector<std::string> tenants() const;

  /// The artifact path behind `name`; throws StoreError for unknown names.
  std::string artifact_path(const std::string& name) const;

  /// Returns the tenant, activating it on first use (mmap + verify +
  /// service start; evicting the least-recently-used unpinned tenant when
  /// over budget). Throws store::StoreError on unknown names or unusable
  /// artifacts — a corrupt tenant never evicts anyone.
  std::shared_ptr<Tenant> acquire(const std::string& name);

  /// Pins `name` resident: activates it if needed and exempts it from
  /// eviction until unpin(). Returns the tenant.
  std::shared_ptr<Tenant> pin(const std::string& name);
  void unpin(const std::string& name);

  RegistryStats stats() const;

 private:
  struct Slot {
    std::string path;
    std::shared_ptr<Tenant> tenant;  ///< null when cold
    std::uint64_t last_used = 0;
    bool pinned = false;
  };

  std::shared_ptr<Tenant> acquire_locked(const std::string& name);
  void evict_over_budget_locked();
  void publish_locked() const;

  std::string dir_;
  ServiceConfig base_;
  std::size_t max_resident_;

  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
  std::uint64_t clock_ = 0;
  RegistryStats stats_;
};

}  // namespace gm::serve
