// Batched multi-query MEM service over a pool of simulated devices.
//
// MemService answers a stream of queries against one reference: a bounded
// submit queue (admission control / backpressure), per-request deadlines, a
// dispatcher that drains the queue in batches, and a device pool that
// partitions tile rows per device (run_multi_device's partitioning) with a
// per-device reference index cache — so steady-state requests pay only the
// extraction time, not Table III's index build. See docs/SERVING.md.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/pipeline.h"
#include "mem/copmem.h"
#include "mem/mem.h"
#include "mem/slamem.h"
#include "seq/sequence.h"
#include "serve/index_cache.h"
#include "simt/device.h"
#include "store/loaded_index.h"

namespace gm::serve {

struct ServiceConfig {
  core::Config engine;  ///< must use Backend::kSimt

  std::uint32_t devices = 1;  ///< simulated device pool size

  /// Admission bound: submits beyond this many waiting requests are
  /// rejected immediately (backpressure surfaces to the caller instead of
  /// growing an unbounded queue).
  std::size_t queue_capacity = 256;

  /// Max requests drained per dispatch round (one batch).
  std::size_t max_batch = 8;

  /// Deadline applied to requests that don't carry their own; measured
  /// from submit. A request still queued past its deadline is failed with
  /// QueryStatus::kExpired without running. 0 = none.
  double default_deadline_seconds = 0.0;

  /// Keep each device's reference row indexes resident between requests.
  /// Off = every request rebuilds, exactly like independent Engine::run
  /// calls (the bench baseline).
  bool cache_enabled = true;

  /// When set, cold index-cache misses upload the prebuilt row arrays from
  /// this mapped artifact instead of running the Algorithm 1 build kernels
  /// (see docs/STORAGE.md). The artifact's geometry must match `engine`;
  /// the service reference must be the artifact's reference. Requires
  /// cache_enabled.
  std::shared_ptr<const store::LoadedIndex> artifact;

  /// copMEM fast-index mode (mem/copmem.h): build a host-side
  /// double-sampled finder over the reference at construction — adopting
  /// the artifact's kCopmemIndex section when one is attached and carries
  /// it — and answer every request from it, bypassing the device pool.
  /// Steady-state requests pay only the sampled scan: index_seconds is 0
  /// and index_cache_hit is true in every result. `engine.seed_len` is the
  /// sampling seed length K; `engine` must still be a valid kSimt config.
  bool copmem_fast_index = false;

  /// Long-MEM serving mode (gpumem_serve --long-mem): build a resident
  /// lazy-LCP SlaMemFinder over the reference at construction — adopting
  /// the artifact's kFmIndex section when one is attached and carries it —
  /// and answer from it every request whose resolved minimum length is >=
  /// `long_mem_threshold`. The FM index is L-independent, so one resident
  /// finder serves any per-request L. Results are bit-identical to the
  /// device pool's (see PERFORMANCE.md "Long-MEM mode").
  bool lazy_lcp = false;

  /// Minimum-length routing threshold for the lazy fast path; 0 = the
  /// engine's min_length (so every request qualifies). Requests below it
  /// run the normal device-pool path.
  std::uint32_t long_mem_threshold = 0;

  /// Queue submissions without dispatching until resume() — deterministic
  /// batch formation for tests and replay drivers.
  bool start_paused = false;
};

struct QueryRequest {
  std::string id;      ///< echoed in the result and in request spans
  seq::Sequence query;
  double deadline_seconds = 0.0;  ///< from submit; 0 = service default
  /// Per-request minimum MEM length; 0 = the engine's configured
  /// min_length. Values below the engine's L fail validation (kInvalid):
  /// the device pipeline cannot report shorter MEMs than it was built for.
  /// Larger values filter exactly (MEM maximality is L-independent) and,
  /// when ServiceConfig::lazy_lcp is on and the value reaches
  /// long_mem_threshold, route to the resident lazy finder.
  std::uint32_t min_length = 0;
};

enum class QueryStatus {
  kOk,
  kRejected,  ///< never queued: queue full or service shut down
  kExpired,   ///< deadline passed while queued
  kFailed,    ///< execution error (message in QueryResult::error)
  kInvalid,   ///< never queued: request failed validation (empty query,
              ///< negative/non-finite deadline) — the wire path cannot
              ///< smuggle states the offline CLI rejects
};

const char* to_string(QueryStatus status);

struct QueryResult {
  QueryStatus status = QueryStatus::kFailed;
  std::string id;
  /// Request-scoped trace id minted at submit; every span this request
  /// produced (queue-wait, serve/request, pipeline stages, stream ops)
  /// carries it in the trace output.
  std::uint64_t trace_id = 0;
  std::vector<mem::Mem> mems;  ///< canonical order, no duplicates

  /// Per-request stats; modeled times combine over the pool like
  /// run_multi_device (max over concurrently running devices), and
  /// index_cache_hit means *every* device served every row warm.
  core::RunStats stats;

  double queue_seconds = 0.0;    ///< submit -> dispatch (wall)
  double service_seconds = 0.0;  ///< dispatch -> completion (wall)
  std::string error;
};

/// Cumulative service counters, readable at any time via MemService::stats.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< finished OK
  std::uint64_t rejected = 0;
  std::uint64_t invalid = 0;    ///< failed submit-time validation
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
  /// Requests that missed their deadline: expired while queued, plus
  /// requests that completed but only after queue+service time exceeded
  /// the deadline. Always >= expired.
  std::uint64_t deadline_miss = 0;
  std::uint64_t batches = 0;

  std::uint64_t cache_hits = 0;    ///< tile-row indexes served resident
  std::uint64_t cache_misses = 0;  ///< tile-row indexes built
  std::size_t cache_resident_bytes = 0;

  std::size_t queue_depth = 0;  ///< at snapshot time
  std::size_t max_queue_depth = 0;

  double modeled_index_seconds = 0.0;  ///< summed per-request device maxima
  double modeled_match_seconds = 0.0;
  double queue_seconds_total = 0.0;  ///< summed over dispatched requests
};

/// Mirrors every ServiceStats field into the global metrics registry under
/// "serve.*" names (docs/OBSERVABILITY.md). No-op when obs is disabled.
void publish_service_stats(const ServiceStats& stats);

class MemService {
 public:
  /// Takes ownership of the reference; the device pool and (when enabled)
  /// per-device index caches are created immediately, but indexes build
  /// lazily on first use.
  MemService(ServiceConfig cfg, seq::Sequence ref);
  ~MemService();  ///< shutdown(): drains queued requests, joins

  MemService(const MemService&) = delete;
  MemService& operator=(const MemService&) = delete;

  /// Completion hook for event-driven callers (the net/ front end): invoked
  /// exactly once with the final result, just *before* the future is
  /// fulfilled — on the dispatcher thread for executed requests, on the
  /// submitting thread for immediate rejections/invalid requests. A caller
  /// that observes the future resolve can therefore rely on the callback
  /// having already run. Must not block and must not call back into this
  /// service.
  using CompletionFn = std::function<void(const QueryResult&)>;

  /// Enqueues a request. Always returns a valid future: a rejected submit
  /// (queue full, shut down) resolves immediately with kRejected, and a
  /// request failing validation — empty query, negative or non-finite
  /// deadline — resolves immediately with kInvalid, before touching the
  /// queue.
  std::future<QueryResult> submit(QueryRequest req,
                                  CompletionFn on_done = nullptr);

  /// Waiting requests right now — the cheap admission signal the net layer
  /// sheds load on (no per-worker cache walk, unlike stats()).
  std::size_t queue_depth() const;

  /// Starts dispatching when the service was created start_paused.
  void resume();

  /// Stops accepting, drains everything already queued, joins the
  /// dispatcher. Idempotent.
  void shutdown();

  ServiceStats stats() const;
  const ServiceConfig& config() const noexcept { return cfg_; }
  const seq::Sequence& reference() const noexcept { return ref_; }

 private:
  struct Pending {
    QueryRequest req;
    std::promise<QueryResult> promise;
    CompletionFn on_done;  ///< may be null
    std::chrono::steady_clock::time_point submitted_at;
    double deadline_seconds = 0.0;  ///< resolved (request or default)
    std::uint64_t trace_id = 0;     ///< minted at submit
    std::uint32_t lane = 0;         ///< wall-trace lane for this request
  };

  /// One pool member: a persistent device owning tile rows
  /// [row_begin, row_end) and, when caching, their resident indexes.
  struct DeviceWorker {
    std::unique_ptr<simt::Device> dev;
    std::unique_ptr<DeviceRowIndexCache> cache;  ///< null when cache off
    std::uint32_t row_begin = 0;
    std::uint32_t row_end = 0;
  };

  void dispatcher_loop();
  QueryResult execute(Pending& pending, double queue_seconds);

  ServiceConfig cfg_;
  seq::Sequence ref_;
  core::Engine engine_;
  std::uint32_t tile_rows_ = 0;
  std::vector<DeviceWorker> workers_;
  std::unique_ptr<mem::CopMemFinder> copmem_;  ///< fast-index mode only
  std::unique_ptr<mem::SlaMemFinder> slamem_;  ///< long-MEM mode only

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  ServiceStats stats_;
  std::uint64_t submit_seq_ = 0;  ///< assigns request trace lanes round-robin
  bool paused_ = false;
  bool stopping_ = false;
  std::thread dispatcher_;
};

}  // namespace gm::serve
