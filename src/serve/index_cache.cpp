#include "serve/index_cache.h"

#include <algorithm>
#include <stdexcept>

#include "obs/registry.h"
#include "util/bits.h"

namespace gm::serve {

IndexCacheKey make_cache_key(std::uint64_t ref_id, const core::Config& cfg) {
  const core::Config::Geometry g = cfg.validated();
  return IndexCacheKey{ref_id, cfg.seed_len, g.step, g.tile_len};
}

DeviceRowIndexCache::DeviceRowIndexCache(simt::Device& dev,
                                         const core::Config& cfg,
                                         std::uint64_t ref_id)
    : dev_(&dev),
      cfg_(cfg),
      geo_(cfg.validated()),
      key_(make_cache_key(ref_id, cfg)),
      max_locs_(static_cast<std::uint32_t>(geo_.tile_len / geo_.step) + 2) {
  if (cfg_.backend != core::Backend::kSimt) {
    throw std::invalid_argument(
        "DeviceRowIndexCache: cached row indexes are device-resident; use "
        "Engine::NativeIndex for the native backend");
  }
}

core::DeviceIndex& DeviceRowIndexCache::acquire(simt::Device& dev,
                                                const seq::Sequence& ref,
                                                std::uint32_t row, bool& hit) {
  if (&dev != dev_) {
    throw std::invalid_argument(
        "DeviceRowIndexCache: acquire on a different device than the cache "
        "is bound to");
  }
  std::lock_guard lock(mu_);
  if (const auto it = rows_.find(row); it != rows_.end()) {
    hit = true;
    ++hits_;
    if (obs::enabled()) {
      obs::Registry::global()
          .metrics()
          .counter("serve.index_cache.hits",
                   "tile-row indexes served without building")
          .add();
    }
    return it->second;
  }

  hit = false;
  ++misses_;
  const std::size_t r0 = std::size_t{row} * geo_.tile_len;
  const std::size_t r1 =
      std::min<std::size_t>(ref.size(), r0 + geo_.tile_len);
  if (r0 >= ref.size()) {
    throw std::out_of_range("DeviceRowIndexCache: row beyond the reference");
  }

  if (artifact_ != nullptr) {
    // Artifact-backed cold path: upload the prebuilt row arrays (modeled
    // H2D PCIe copy) instead of running the Algorithm 1 build kernels.
    if (ref.size() != artifact_->reference().size()) {
      throw std::invalid_argument(
          "DeviceRowIndexCache: run reference (" +
          std::to_string(ref.size()) +
          " bases) does not match the backing artifact (" +
          std::to_string(artifact_->reference().size()) + " bases)");
    }
    const store::LoadedIndex::RowSpans spans = artifact_->row(row);
    if (spans.locs.size() > max_locs_) {
      throw std::invalid_argument(
          "DeviceRowIndexCache: artifact row " + std::to_string(row) +
          " holds " + std::to_string(spans.locs.size()) +
          " locations, cache capacity is " + std::to_string(max_locs_));
    }
    const auto [it, inserted] = rows_.try_emplace(
        row, *dev_, cfg_.seed_len, geo_.step, max_locs_);
    (void)inserted;
    it->second.ptrs.upload(spans.ptrs);
    it->second.locs.upload(spans.locs);
    it->second.n_locs = static_cast<std::uint32_t>(spans.locs.size());
    ++artifact_loads_;
    if (obs::enabled()) {
      obs::Registry::global()
          .metrics()
          .counter("serve.index_cache.artifact_loads",
                   "tile-row indexes uploaded from a mapped artifact")
          .add();
    }
    return it->second;
  }

  const auto [it, inserted] = rows_.try_emplace(
      row, *dev_, cfg_.seed_len, geo_.step, max_locs_);
  (void)inserted;
  core::build_partial_index(*dev_, ref, r0, r1, cfg_.threads, it->second);
  if (obs::enabled()) {
    obs::Registry::global()
        .metrics()
        .counter("serve.index_cache.misses",
                 "tile-row indexes built and cached")
        .add();
  }
  return it->second;
}

void DeviceRowIndexCache::back_with_artifact(
    std::shared_ptr<const store::LoadedIndex> artifact) {
  std::lock_guard lock(mu_);
  if (artifact != nullptr) artifact->throw_if_geometry_mismatch(cfg_);
  artifact_ = std::move(artifact);
}

std::uint64_t DeviceRowIndexCache::artifact_loads() const {
  std::lock_guard lock(mu_);
  return artifact_loads_;
}

std::uint64_t DeviceRowIndexCache::hits() const {
  std::lock_guard lock(mu_);
  return hits_;
}

std::uint64_t DeviceRowIndexCache::misses() const {
  std::lock_guard lock(mu_);
  return misses_;
}

std::size_t DeviceRowIndexCache::rows_cached() const {
  std::lock_guard lock(mu_);
  return rows_.size();
}

std::size_t DeviceRowIndexCache::resident_bytes() const {
  std::lock_guard lock(mu_);
  std::size_t bytes = 0;
  for (const auto& [row, index] : rows_) {
    bytes += index.ptrs.bytes() + index.locs.bytes();
  }
  return bytes;
}

void DeviceRowIndexCache::clear() {
  std::lock_guard lock(mu_);
  rows_.clear();
}

}  // namespace gm::serve
