// Reference tile-row index cache for the serve layer.
//
// The paper's pipeline (Fig. 1) rebuilds the sparse (ptrs, locs) index per
// run, yet the index depends only on the reference tile row and the
// (seed_len, step, tile_len) geometry — so a service answering many queries
// against one reference re-pays Table III's build cost on every request.
// DeviceRowIndexCache builds each row's index once, keeps it resident in
// the device's global memory (allocations count against the card's
// capacity like any buffer), and serves every later run for free. Warm
// requests therefore report index_seconds == 0 and index_cache_hit == true.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "core/config.h"
#include "core/index_kernels.h"
#include "core/pipeline.h"
#include "seq/sequence.h"
#include "simt/device.h"
#include "store/loaded_index.h"

namespace gm::serve {

/// Identity of a cached reference index: which reference and which index
/// geometry. Runs may share a cache iff their keys match — a different
/// reference, seed length, sampling step, or tile length is a different
/// index.
struct IndexCacheKey {
  std::uint64_t ref_id = 0;  ///< caller-assigned reference identity
  std::uint32_t seed_len = 0;
  std::uint32_t step = 0;
  std::uint32_t tile_len = 0;

  friend bool operator==(const IndexCacheKey&, const IndexCacheKey&) = default;
};

/// The key a config implies for reference `ref_id`.
IndexCacheKey make_cache_key(std::uint64_t ref_id, const core::Config& cfg);

/// Per-device row-index cache; the canonical core::RowIndexSource. Bound to
/// one device because the cached buffers are device-resident. Thread-safe,
/// though the serve dispatcher drives each device from one thread.
class DeviceRowIndexCache final : public core::RowIndexSource {
 public:
  /// Binds the cache to `dev` for the index geometry `cfg` implies.
  /// `ref_id` names the reference (see IndexCacheKey); callers must
  /// invalidate (clear) before reusing the cache for different contents.
  DeviceRowIndexCache(simt::Device& dev, const core::Config& cfg,
                      std::uint64_t ref_id);

  /// Serves row `row`, building (and charging `dev`'s ledger the modeled
  /// Algorithm 1 time) on miss. Throws std::invalid_argument when `dev` is
  /// not the bound device — resident indexes cannot migrate.
  core::DeviceIndex& acquire(simt::Device& dev, const seq::Sequence& ref,
                             std::uint32_t row, bool& hit) override;

  /// Backs cold misses with a persistent artifact: instead of running
  /// Algorithm 1, the row's (ptrs, locs) arrays are uploaded straight from
  /// the mapped artifact (modeled H2D copy — typically orders of magnitude
  /// cheaper than the build kernels). Throws store::StoreError when the
  /// artifact's geometry disagrees with this cache's config. Pass nullptr
  /// to detach. Does not invalidate rows already resident.
  void back_with_artifact(std::shared_ptr<const store::LoadedIndex> artifact);

  /// Cold misses served from the backing artifact (subset of misses()).
  std::uint64_t artifact_loads() const;

  const IndexCacheKey& key() const noexcept { return key_; }
  simt::Device& device() const noexcept { return *dev_; }

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t rows_cached() const;
  /// Device bytes held by cached indexes (ptrs + locs across rows).
  std::size_t resident_bytes() const;

  /// Drops every cached row, releasing its device memory. Required when the
  /// reference contents or geometry change.
  void clear();

 private:
  simt::Device* dev_;
  core::Config cfg_;
  core::Config::Geometry geo_;
  IndexCacheKey key_;
  std::uint32_t max_locs_;

  mutable std::mutex mu_;
  std::map<std::uint32_t, core::DeviceIndex> rows_;
  std::shared_ptr<const store::LoadedIndex> artifact_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t artifact_loads_ = 0;
};

}  // namespace gm::serve
