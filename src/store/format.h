// On-disk layout of a persistent GPUMEM index artifact (*.gmidx).
//
// A production service cannot re-pay Table III's index-build cost at every
// process start, so the build-once / serve-many workflow serializes every
// index structure the finders need into one immutable, mmap-friendly file:
//
//   offset 0                 ArtifactHeader   (128 bytes, checksummed)
//   offset 128               SectionEntry[n]  (32 bytes each, covered by
//                                              the header checksum)
//   64-byte-aligned offsets  section payloads (one 8-lane striped FNV-1a
//                                              64 each — fast enough that
//                                              full verification at open
//                                              stays far below build cost)
//
// Sections are raw little-endian arrays aligned to 64 bytes so a reader can
// hand out typed spans straight into the mapping (zero-copy); the padding
// between sections is zeros and is covered by no checksum. Every structural
// invariant is checked at open time — magic, version, endianness tag,
// header checksum, section bounds/alignment/overlap, per-section checksums,
// and the recorded total size vs the actual file size (truncation) — and
// any violation is a deterministic store::StoreError, never UB.
//
// Versioning policy (docs/STORAGE.md): kFormatVersion bumps on any layout
// change; readers reject files whose version differs from their own (no
// forward or backward compat window yet — artifacts are cheap to rebuild
// with `gpumem_cli index-build`). Unknown section ids are rejected rather
// than skipped so a truncated enum mapping can't silently drop data.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace gm::store {

inline constexpr char kMagic[8] = {'G', 'M', 'I', 'D', 'X', '\0', '\0', '\0'};
inline constexpr std::uint32_t kFormatVersion = 1;
/// Written as the native byte-order fingerprint; a reader on the opposite
/// endianness sees the byte-swapped value and rejects the file instead of
/// misinterpreting every array. (The project targets little-endian hosts;
/// the static_assert below keeps big-endian builds from writing files that
/// claim otherwise.)
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
inline constexpr std::size_t kSectionAlign = 64;

static_assert(std::endian::native == std::endian::little,
              "store/: the artifact format is defined little-endian; add "
              "byte-swapping readers before enabling big-endian hosts");

/// Section identities. Values are part of the on-disk format — append only.
enum class SectionId : std::uint32_t {
  kSeqPacked = 1,   ///< uint64[]: 2-bit packed reference words
  kSeqMask = 2,     ///< uint64[]: validity side-mask (absent when all-ACGT)
  kKmerRowTable = 3,///< RowTableEntry[tile_rows]: per-row spans into 4/5
  kKmerPtrs = 4,    ///< uint32[]: concatenated per-row bucket offsets
  kKmerLocs = 5,    ///< uint32[]: concatenated per-row sampled positions
  kSuffixArray = 6, ///< uint32[]: full SA-IS suffix array of the reference
  kLcp = 7,         ///< uint32[]: Kasai LCP over kSuffixArray
  kSparseSa = 8,    ///< uint32[]: sparse suffix positions, sorted
  kFmIndex = 9,     ///< index::FmIndex::serialize() byte image
  /// uint32[]: { seed_len, step, ptrs[4^seed_len + 1]..., locs... } — a
  /// whole-reference sampled k-mer index (step = copMEM's k₁), the
  /// CopMemFinder's substrate. Self-describing so the reader needs no new
  /// header fields.
  kCopmemIndex = 10,
};

/// Human-readable section name for error messages and `index-info`.
const char* section_name(SectionId id) noexcept;

/// One row of the per-tile-row k-mer index directory (section 3). Offsets
/// and counts are in *elements* of the kKmerPtrs / kKmerLocs arrays.
struct RowTableEntry {
  std::uint64_t ptrs_offset = 0;
  std::uint64_t ptrs_count = 0;
  std::uint64_t locs_offset = 0;
  std::uint64_t locs_count = 0;
};
static_assert(sizeof(RowTableEntry) == 32);
static_assert(std::is_trivially_copyable_v<RowTableEntry>);

struct SectionEntry {
  std::uint32_t id = 0;        ///< SectionId
  std::uint32_t reserved = 0;  ///< zero; room for per-section flags
  std::uint64_t offset = 0;    ///< from file start; kSectionAlign-aligned
  std::uint64_t bytes = 0;     ///< payload size (alignment padding excluded)
  std::uint64_t checksum = 0;  ///< util::fnv1a64_striped of the payload
};
static_assert(sizeof(SectionEntry) == 32);
static_assert(std::is_trivially_copyable_v<SectionEntry>);

inline constexpr std::size_t kRefNameBytes = 40;

/// Fixed-size file header. `header_checksum` is the FNV-1a 64 of the header
/// bytes (with this field zeroed) followed by the raw section table, so one
/// digest covers everything that locates the payloads.
struct ArtifactHeader {
  char magic[8] = {};                ///< kMagic
  std::uint32_t version = 0;         ///< kFormatVersion
  std::uint32_t endian_tag = 0;      ///< kEndianTag
  std::uint64_t header_checksum = 0;

  std::uint32_t section_count = 0;
  std::uint32_t flags = 0;           ///< zero; reserved

  // Reference identity + the index geometry the artifact was built for. A
  // loader must reject an artifact whose geometry disagrees with the
  // requesting config (a stale artifact would silently miss MEMs).
  std::uint64_t ref_bases = 0;       ///< sequence length in bases
  std::uint64_t ref_invalid = 0;     ///< masked (non-ACGT) positions
  std::uint32_t seed_len = 0;        ///< ls
  std::uint32_t step = 0;            ///< resolved delta_s (never 0)
  std::uint32_t tile_len = 0;        ///< l_tile the row partition used
  std::uint32_t tile_rows = 0;       ///< ceil(ref_bases / tile_len)
  std::uint32_t min_length = 0;      ///< L the geometry was resolved under
  std::uint32_t sparseness = 0;      ///< K of kSparseSa (0 = no section)
  std::uint32_t fm_sa_sample = 0;    ///< sample rate of kFmIndex (0 = none)
  std::uint32_t reserved = 0;

  char ref_name[kRefNameBytes] = {}; ///< NUL-padded registry tenant name

  std::uint64_t total_bytes = 0;     ///< exact file size (truncation check)

  std::string name() const {
    return std::string(ref_name,
                       strnlen(ref_name, kRefNameBytes));
  }
};
static_assert(sizeof(ArtifactHeader) == 128);
static_assert(std::is_trivially_copyable_v<ArtifactHeader>);

/// Deterministic rejection of an unusable artifact: every open/verify
/// failure — I/O, bad magic, version or endianness mismatch, checksum
/// mismatch, truncation, malformed section geometry — throws this, with
/// the file path and (when known) the offending section in the message.
class StoreError : public std::runtime_error {
 public:
  StoreError(const std::string& path, const std::string& detail)
      : std::runtime_error("index artifact " + path + ": " + detail),
        path_(path) {}
  StoreError(const std::string& path, SectionId section,
             const std::string& detail)
      : std::runtime_error("index artifact " + path + ": section " +
                           section_name(section) + ": " + detail),
        path_(path) {}

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

inline const char* section_name(SectionId id) noexcept {
  switch (id) {
    case SectionId::kSeqPacked: return "seq-packed";
    case SectionId::kSeqMask: return "seq-mask";
    case SectionId::kKmerRowTable: return "kmer-row-table";
    case SectionId::kKmerPtrs: return "kmer-ptrs";
    case SectionId::kKmerLocs: return "kmer-locs";
    case SectionId::kSuffixArray: return "suffix-array";
    case SectionId::kLcp: return "lcp";
    case SectionId::kSparseSa: return "sparse-sa";
    case SectionId::kFmIndex: return "fm-index";
    case SectionId::kCopmemIndex: return "copmem-index";
  }
  return "unknown";
}

}  // namespace gm::store
