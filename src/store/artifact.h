// Writer and zero-copy reader for *.gmidx index artifacts (format.h).
//
// ArtifactWriter is the low-level serializer: it takes header fields plus
// raw section payloads and lays out the checksummed file image. The
// high-level entry point build_artifact() runs the project's index builders
// (Engine::build_native_index, SA-IS, Kasai, sparse SA, FM-index) and
// serializes their exact output, so an artifact load reproduces an
// in-process build bit for bit.
//
// MappedArtifact opens an artifact read-only — mmap(2) when backed by a
// file, an owned buffer otherwise (fuzzing and corruption tests synthesize
// artifacts in memory) — and verifies every structural invariant before any
// accessor works. Accessors hand out spans pointing straight into the
// mapping; nothing is copied until an adapter (loaded_index.h) materializes
// a structure the finders need by value.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/config.h"
#include "seq/sequence.h"
#include "store/format.h"

namespace gm::store {

/// Low-level artifact serializer. The caller fills the header's reference /
/// geometry fields; magic, version, endianness tag, section table, offsets,
/// checksums, and total size are computed here.
class ArtifactWriter {
 public:
  explicit ArtifactWriter(ArtifactHeader header) : header_(header) {}

  /// Appends a section. Sections are laid out in the order added; adding
  /// the same id twice throws std::invalid_argument.
  void add_section(SectionId id, std::span<const std::uint8_t> payload);

  template <typename T>
  void add_section(SectionId id, std::span<const T> elems) {
    static_assert(std::is_trivially_copyable_v<T>);
    add_section(id, std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(elems.data()),
                        elems.size() * sizeof(T)));
  }

  /// Serializes the complete file image (header + table + aligned payloads).
  std::vector<std::uint8_t> to_buffer() const;

  /// to_buffer() written atomically: to `path + ".tmp"`, then renamed over
  /// `path`. Throws StoreError naming the path on any I/O failure.
  void write_file(const std::string& path) const;

 private:
  ArtifactHeader header_;
  struct Pending {
    SectionId id;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Pending> sections_;
};

/// Sections to include beyond the always-present reference sequence and
/// per-tile-row k-mer index (the GPUMEM pipeline's own index).
struct BuildOptions {
  /// Registry tenant name recorded in the header (<= kRefNameBytes chars;
  /// longer throws). Empty = registry derives the name from the file stem.
  std::string ref_name;
  /// Emit kSuffixArray + kLcp (the MUMmer-class finder substrate).
  bool with_suffix_array = false;
  /// Nonzero K: emit kSparseSa built at sparseness K (sparseMEM-class).
  std::uint32_t sparseness = 0;
  /// Nonzero: emit kFmIndex built at this SA sample rate (slaMEM-class).
  std::uint32_t fm_sa_sample = 0;
  /// Nonzero k₁: emit kCopmemIndex — a whole-reference sampled k-mer index
  /// at step k₁ with the header's seed_len, the copMEM double-sampling
  /// finder's substrate (mem/copmem.h).
  std::uint32_t copmem_step = 0;
};

/// Builds the complete artifact image for `ref` under `cfg`'s resolved index
/// geometry. Runs the same builders the engines run, so loading the result
/// is bit-identical to building in process. Throws std::invalid_argument on
/// an empty reference or unusable options.
std::vector<std::uint8_t> build_artifact(const seq::Sequence& ref,
                                         const core::Config& cfg,
                                         const BuildOptions& opt = {});

/// Writes a complete artifact image atomically (tmp file + rename). Throws
/// StoreError naming `path` on any I/O failure.
void write_artifact_file(const std::string& path,
                         std::span<const std::uint8_t> image);

/// Read-only view of a verified artifact. Cheap to copy (shared mapping).
class MappedArtifact {
 public:
  /// Opens and fully verifies `path` (mmap read-only; falls back to a
  /// buffered read when mmap is unavailable). Throws StoreError on any I/O
  /// or verification failure, naming the file and the failing section.
  static MappedArtifact open_file(const std::string& path);

  /// Adopts and verifies an in-memory image; `label` stands in for the path
  /// in error messages. The fuzz/corruption-test entry point — no disk.
  static MappedArtifact from_buffer(std::vector<std::uint8_t> bytes,
                                    std::string label = "<buffer>");

  const ArtifactHeader& header() const noexcept { return header_; }
  const std::vector<SectionEntry>& sections() const noexcept {
    return table_;
  }
  /// The path (or buffer label) used in error messages.
  const std::string& path() const noexcept { return path_; }
  std::size_t file_bytes() const noexcept;
  /// True when backed by an actual mmap (false: owned heap buffer).
  bool is_mapped() const noexcept;

  bool has_section(SectionId id) const noexcept;
  /// Raw payload bytes of `id`, pointing into the mapping. Throws
  /// StoreError when the section is absent.
  std::span<const std::uint8_t> section(SectionId id) const;

  /// section() reinterpreted as a T array. Throws StoreError when the
  /// payload size is not a multiple of sizeof(T). Alignment holds by
  /// construction: payload offsets are kSectionAlign-aligned and both
  /// backings are at least that aligned.
  template <typename T>
  std::span<const T> section_as(SectionId id) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::span<const std::uint8_t> raw = section(id);
    if (raw.size() % sizeof(T) != 0) {
      throw StoreError(path_, id,
                       "payload of " + std::to_string(raw.size()) +
                           " bytes is not a whole number of " +
                           std::to_string(sizeof(T)) + "-byte elements");
    }
    return {reinterpret_cast<const T*>(raw.data()), raw.size() / sizeof(T)};
  }

 private:
  struct Backing;  // mmap region or owned buffer

  MappedArtifact(std::shared_ptr<const Backing> backing, std::string path);
  void verify();

  std::shared_ptr<const Backing> backing_;
  std::string path_;
  ArtifactHeader header_{};
  std::vector<SectionEntry> table_;
};

}  // namespace gm::store
