#include "store/artifact.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string_view>

#include "core/pipeline.h"
#include "index/fm_index.h"
#include "index/lcp.h"
#include "index/sparse_suffix_array.h"
#include "index/suffix_array.h"
#include "obs/registry.h"
#include "util/checksum.h"

namespace gm::store {

namespace {

std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}

std::uint32_t byteswap32(std::uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0x0000ff00u) | ((v << 8) & 0x00ff0000u) |
         (v << 24);
}

/// FNV-1a 64 of the header (checksum field zeroed) followed by the raw
/// section table — the digest stored in ArtifactHeader::header_checksum.
std::uint64_t header_digest(const ArtifactHeader& header,
                            const SectionEntry* table, std::size_t count) {
  ArtifactHeader h = header;
  h.header_checksum = 0;
  util::Fnv1a64 d;
  d.update(&h, sizeof h);
  d.update(table, count * sizeof(SectionEntry));
  return d.digest();
}

std::string errno_detail(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void ArtifactWriter::add_section(SectionId id,
                                 std::span<const std::uint8_t> payload) {
  for (const Pending& p : sections_) {
    if (p.id == id) {
      throw std::invalid_argument(std::string("ArtifactWriter: section ") +
                                  section_name(id) + " added twice");
    }
  }
  sections_.push_back(
      Pending{id, std::vector<std::uint8_t>(payload.begin(), payload.end())});
}

std::vector<std::uint8_t> ArtifactWriter::to_buffer() const {
  std::vector<SectionEntry> table(sections_.size());
  std::size_t cursor =
      sizeof(ArtifactHeader) + sections_.size() * sizeof(SectionEntry);
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    cursor = align_up(cursor, kSectionAlign);
    table[s].id = static_cast<std::uint32_t>(sections_[s].id);
    table[s].offset = cursor;
    table[s].bytes = sections_[s].payload.size();
    table[s].checksum = util::fnv1a64_striped(sections_[s].payload.data(),
                                              sections_[s].payload.size());
    cursor += sections_[s].payload.size();
  }

  ArtifactHeader header = header_;
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.version = kFormatVersion;
  header.endian_tag = kEndianTag;
  header.section_count = static_cast<std::uint32_t>(sections_.size());
  header.total_bytes = cursor;
  header.header_checksum = header_digest(header, table.data(), table.size());

  std::vector<std::uint8_t> out(cursor, 0);
  std::memcpy(out.data(), &header, sizeof header);
  std::memcpy(out.data() + sizeof header, table.data(),
              table.size() * sizeof(SectionEntry));
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    std::memcpy(out.data() + table[s].offset, sections_[s].payload.data(),
                sections_[s].payload.size());
  }
  return out;
}

void ArtifactWriter::write_file(const std::string& path) const {
  write_artifact_file(path, to_buffer());
}

void write_artifact_file(const std::string& path,
                         std::span<const std::uint8_t> image) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw StoreError(path, errno_detail("cannot create temporary file"));
  }
  const std::size_t written = std::fwrite(image.data(), 1, image.size(), f);
  const int close_rc = std::fclose(f);
  if (written != image.size() || close_rc != 0) {
    std::remove(tmp.c_str());
    throw StoreError(path, errno_detail("short write"));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw StoreError(path, errno_detail("rename into place failed"));
  }
  if (obs::enabled()) {
    auto& m = obs::Registry::global().metrics();
    m.counter("store.writes", "index artifacts written").add();
    m.distribution("store.write_bytes", "artifact file sizes written")
        .observe(static_cast<double>(image.size()));
  }
}

std::vector<std::uint8_t> build_artifact(const seq::Sequence& ref,
                                         const core::Config& cfg,
                                         const BuildOptions& opt) {
  obs::Span span("store.build_artifact", "store");
  if (ref.empty()) {
    throw std::invalid_argument("build_artifact: empty reference");
  }
  if (opt.ref_name.size() > kRefNameBytes) {
    throw std::invalid_argument(
        "build_artifact: reference name \"" + opt.ref_name + "\" exceeds " +
        std::to_string(kRefNameBytes) + " bytes");
  }
  const core::Config::Geometry geo = cfg.validated();

  ArtifactHeader header{};
  header.ref_bases = ref.size();
  header.ref_invalid = ref.invalid_count();
  header.seed_len = cfg.seed_len;
  header.step = geo.step;
  header.tile_len = geo.tile_len;
  header.tile_rows = static_cast<std::uint32_t>(
      (ref.size() + geo.tile_len - 1) / geo.tile_len);
  header.min_length = cfg.min_length;
  header.sparseness = opt.sparseness;
  header.fm_sa_sample = opt.fm_sa_sample;
  std::memcpy(header.ref_name, opt.ref_name.data(), opt.ref_name.size());

  ArtifactWriter writer(header);
  writer.add_section(SectionId::kSeqPacked,
                     std::span<const std::uint64_t>(ref.packed_words()));
  if (ref.has_invalid()) {
    writer.add_section(SectionId::kSeqMask,
                       std::span<const std::uint64_t>(ref.invalid_words()));
  }

  // The per-tile-row k-mer indexes, exactly as the engines build them.
  const core::Engine::NativeIndex native =
      core::Engine(cfg).build_native_index(ref);
  std::vector<RowTableEntry> row_table(native.rows.size());
  std::vector<std::uint32_t> all_ptrs;
  std::vector<std::uint32_t> all_locs;
  for (std::size_t r = 0; r < native.rows.size(); ++r) {
    const index::KmerIndex& row = native.rows[r];
    row_table[r].ptrs_offset = all_ptrs.size();
    row_table[r].ptrs_count = row.ptrs().size();
    row_table[r].locs_offset = all_locs.size();
    row_table[r].locs_count = row.locs().size();
    all_ptrs.insert(all_ptrs.end(), row.ptrs().begin(), row.ptrs().end());
    all_locs.insert(all_locs.end(), row.locs().begin(), row.locs().end());
  }
  writer.add_section(SectionId::kKmerRowTable,
                     std::span<const RowTableEntry>(row_table));
  writer.add_section(SectionId::kKmerPtrs,
                     std::span<const std::uint32_t>(all_ptrs));
  writer.add_section(SectionId::kKmerLocs,
                     std::span<const std::uint32_t>(all_locs));

  if (opt.with_suffix_array) {
    const std::vector<std::uint32_t> sa = index::build_suffix_array(ref);
    const std::vector<std::uint32_t> lcp = index::build_lcp_kasai(ref, sa);
    writer.add_section(SectionId::kSuffixArray,
                       std::span<const std::uint32_t>(sa));
    writer.add_section(SectionId::kLcp, std::span<const std::uint32_t>(lcp));
  }
  if (opt.sparseness != 0) {
    const index::SparseSuffixArray ssa(ref, opt.sparseness);
    writer.add_section(SectionId::kSparseSa,
                       std::span<const std::uint32_t>(ssa.positions()));
  }
  if (opt.fm_sa_sample != 0) {
    const index::FmIndex fm(ref, opt.fm_sa_sample);
    std::vector<std::uint8_t> image;
    fm.serialize(image);
    writer.add_section(SectionId::kFmIndex,
                       std::span<const std::uint8_t>(image));
  }
  if (opt.copmem_step != 0) {
    const index::KmerIndex cop(ref, 0, ref.size(), cfg.seed_len,
                               opt.copmem_step);
    std::vector<std::uint32_t> payload;
    payload.reserve(2 + cop.ptrs().size() + cop.locs().size());
    payload.push_back(cop.seed_len());
    payload.push_back(cop.step());
    payload.insert(payload.end(), cop.ptrs().begin(), cop.ptrs().end());
    payload.insert(payload.end(), cop.locs().begin(), cop.locs().end());
    writer.add_section(SectionId::kCopmemIndex,
                       std::span<const std::uint32_t>(payload));
  }

  std::vector<std::uint8_t> out = writer.to_buffer();
  span.attr("bytes", static_cast<std::uint64_t>(out.size()));
  span.attr("ref_bases", static_cast<std::uint64_t>(ref.size()));
  return out;
}

// ---------------------------------------------------------------------------
// Reader.

struct MappedArtifact::Backing {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  void* map_base = nullptr;  // nonnull: mmap'd region to munmap
  std::vector<std::uint8_t> owned;

  ~Backing() {
    if (map_base != nullptr) ::munmap(map_base, size);
  }
};

MappedArtifact::MappedArtifact(std::shared_ptr<const Backing> backing,
                               std::string path)
    : backing_(std::move(backing)), path_(std::move(path)) {
  verify();
}

MappedArtifact MappedArtifact::open_file(const std::string& path) {
  obs::Span span("store.open", "store");
  span.attr("path", path);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw StoreError(path, errno_detail("cannot open"));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string detail = errno_detail("fstat failed");
    ::close(fd);
    throw StoreError(path, detail);
  }
  auto backing = std::make_shared<Backing>();
  backing->size = static_cast<std::size_t>(st.st_size);
  if (backing->size > 0) {
    void* base =
        ::mmap(nullptr, backing->size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      backing->map_base = base;
      backing->data = static_cast<const std::uint8_t*>(base);
    } else {
      // mmap unavailable (exotic filesystem): buffered fallback.
      backing->owned.resize(backing->size);
      std::size_t got = 0;
      while (got < backing->size) {
        const ssize_t n = ::read(fd, backing->owned.data() + got,
                                 backing->size - got);
        if (n <= 0) {
          ::close(fd);
          throw StoreError(path, errno_detail("read failed"));
        }
        got += static_cast<std::size_t>(n);
      }
      backing->data = backing->owned.data();
    }
  }
  ::close(fd);
  if (obs::enabled()) {
    auto& m = obs::Registry::global().metrics();
    m.counter("store.opens", "index artifacts opened and verified").add();
    m.distribution("store.open_bytes", "artifact file sizes opened")
        .observe(static_cast<double>(backing->size));
  }
  return MappedArtifact(std::move(backing), path);
}

MappedArtifact MappedArtifact::from_buffer(std::vector<std::uint8_t> bytes,
                                           std::string label) {
  auto backing = std::make_shared<Backing>();
  backing->owned = std::move(bytes);
  backing->data = backing->owned.data();
  backing->size = backing->owned.size();
  return MappedArtifact(std::move(backing), std::move(label));
}

std::size_t MappedArtifact::file_bytes() const noexcept {
  return backing_->size;
}

bool MappedArtifact::is_mapped() const noexcept {
  return backing_->map_base != nullptr;
}

void MappedArtifact::verify() {
  const std::uint8_t* data = backing_->data;
  const std::size_t size = backing_->size;

  if (size < sizeof(ArtifactHeader)) {
    throw StoreError(path_, "truncated: " + std::to_string(size) +
                                " bytes, the header alone needs " +
                                std::to_string(sizeof(ArtifactHeader)));
  }
  std::memcpy(&header_, data, sizeof header_);

  if (std::memcmp(header_.magic, kMagic, sizeof kMagic) != 0) {
    throw StoreError(path_, "bad magic (not a gmidx index artifact)");
  }
  if (header_.endian_tag != kEndianTag) {
    if (header_.endian_tag == byteswap32(kEndianTag)) {
      throw StoreError(path_,
                       "written on an opposite-endianness host; rebuild the "
                       "artifact on this machine");
    }
    throw StoreError(path_, "bad endianness tag");
  }
  if (header_.version != kFormatVersion) {
    throw StoreError(
        path_, "format version " + std::to_string(header_.version) +
                   "; this build reads version " +
                   std::to_string(kFormatVersion) +
                   " — rebuild with `gpumem_cli index-build`");
  }

  const std::size_t table_bytes =
      std::size_t{header_.section_count} * sizeof(SectionEntry);
  if (sizeof(ArtifactHeader) + table_bytes > size) {
    throw StoreError(path_, "truncated: section table of " +
                                std::to_string(header_.section_count) +
                                " entries does not fit in " +
                                std::to_string(size) + " bytes");
  }
  table_.resize(header_.section_count);
  std::memcpy(table_.data(), data + sizeof(ArtifactHeader), table_bytes);

  const std::uint64_t want_header =
      header_digest(header_, table_.data(), table_.size());
  if (header_.header_checksum != want_header) {
    throw StoreError(path_, "header checksum mismatch");
  }
  if (header_.total_bytes != size) {
    throw StoreError(path_, "truncated: file is " + std::to_string(size) +
                                " bytes, header records " +
                                std::to_string(header_.total_bytes));
  }

  std::size_t prev_end = sizeof(ArtifactHeader) + table_bytes;
  for (const SectionEntry& e : table_) {
    const auto id = static_cast<SectionId>(e.id);
    if (std::string_view(section_name(id)) == "unknown") {
      throw StoreError(path_, "unknown section id " + std::to_string(e.id));
    }
    for (const SectionEntry& other : table_) {
      if (&other != &e && other.id == e.id) {
        throw StoreError(path_, id, "listed twice in the section table");
      }
    }
    if (e.offset % kSectionAlign != 0) {
      throw StoreError(path_, id, "misaligned payload offset");
    }
    if (e.offset < prev_end || e.bytes > size || e.offset > size - e.bytes) {
      throw StoreError(path_, id, "payload outside the file bounds");
    }
    prev_end = e.offset + e.bytes;
    const std::uint64_t got =
        util::fnv1a64_striped(data + e.offset, e.bytes);
    if (got != e.checksum) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "0x%016llx, stored 0x%016llx",
                    static_cast<unsigned long long>(got),
                    static_cast<unsigned long long>(e.checksum));
      throw StoreError(path_, id,
                       std::string("checksum mismatch (computed ") + buf +
                           ") — the artifact is corrupted");
    }
  }
}

bool MappedArtifact::has_section(SectionId id) const noexcept {
  for (const SectionEntry& e : table_) {
    if (e.id == static_cast<std::uint32_t>(id)) return true;
  }
  return false;
}

std::span<const std::uint8_t> MappedArtifact::section(SectionId id) const {
  for (const SectionEntry& e : table_) {
    if (e.id == static_cast<std::uint32_t>(id)) {
      return {backing_->data + e.offset, e.bytes};
    }
  }
  throw StoreError(path_, id, "section not present in this artifact");
}

}  // namespace gm::store
