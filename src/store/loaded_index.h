// Adapters from a verified artifact mapping to the structures the engines
// and finders consume.
//
// LoadedIndex materializes the reference sequence once at construction (a
// word-level copy out of the mapping — Sequence owns its storage) and
// validates the k-mer row directory, then hands out:
//   - zero-copy spans into the mapping (row ptrs/locs, SA, LCP, sparse SA)
//     for consumers that can read in place (device uploads, interval search),
//   - by-value structures (Engine::NativeIndex, index::FmIndex) for
//     consumers that own their index.
// Geometry compatibility against a requesting core::Config is an explicit
// check: a stale artifact (built under different seed_len/step/tile_len/
// min_length) is rejected with a StoreError naming every mismatched field,
// because serving from it would silently drop MEMs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/pipeline.h"
#include "index/fm_index.h"
#include "index/kmer_index.h"
#include "seq/sequence.h"
#include "store/artifact.h"
#include "store/format.h"

namespace gm::store {

class LoadedIndex {
 public:
  /// Materializes and shape-checks `artifact`. Throws StoreError on any
  /// inconsistency between the header and the section contents.
  explicit LoadedIndex(MappedArtifact artifact);

  const MappedArtifact& artifact() const noexcept { return artifact_; }
  const ArtifactHeader& header() const noexcept {
    return artifact_.header();
  }
  const seq::Sequence& reference() const noexcept { return ref_; }

  std::uint32_t tile_rows() const noexcept { return header().tile_rows; }

  /// One tile row's (ptrs, locs) arrays, pointing into the mapping.
  struct RowSpans {
    std::span<const std::uint32_t> ptrs;
    std::span<const std::uint32_t> locs;
  };
  RowSpans row(std::uint32_t row) const;

  /// Rebuilds the native-backend prebuilt index (Engine::run_native_prebuilt)
  /// from the row directory. build_seconds is 0 — the cost lives in the
  /// artifact. Bit-identical to Engine::build_native_index on the same
  /// reference and geometry by construction of the writer.
  core::Engine::NativeIndex native_index() const;

  bool has(SectionId id) const noexcept { return artifact_.has_section(id); }

  /// Optional sections; each throws StoreError when absent.
  std::span<const std::uint32_t> suffix_array() const;
  std::span<const std::uint32_t> lcp() const;
  std::span<const std::uint32_t> sparse_sa() const;
  index::FmIndex fm_index() const;
  /// The copMEM sampled index (kCopmemIndex), rebuilt by value. Throws
  /// StoreError when absent or malformed.
  index::KmerIndex copmem_index() const;

  /// True when `cfg`'s resolved geometry matches what the artifact was
  /// built under (seed_len, step, tile_len, min_length).
  bool geometry_matches(const core::Config& cfg) const;
  /// geometry_matches or a StoreError naming every mismatched field.
  void throw_if_geometry_mismatch(const core::Config& cfg) const;

 private:
  MappedArtifact artifact_;
  seq::Sequence ref_;
  std::vector<RowTableEntry> row_table_;
};

}  // namespace gm::store
