#include "store/loaded_index.h"

#include <stdexcept>
#include <string>

#include "obs/registry.h"

namespace gm::store {

namespace {

std::string plural_bytes(std::size_t n) { return std::to_string(n); }

}  // namespace

LoadedIndex::LoadedIndex(MappedArtifact artifact)
    : artifact_(std::move(artifact)) {
  obs::Span span("store.materialize", "store");
  span.attr("path", artifact_.path());
  const ArtifactHeader& h = artifact_.header();

  // uint32_t position-overflow guard, reader side: an artifact claiming more
  // bases than the location arrays can address is rejected here with the
  // same limit-naming message the builders raise.
  try {
    index::check_position_range(h.ref_bases, "LoadedIndex");
  } catch (const std::invalid_argument& e) {
    throw StoreError(artifact_.path(), e.what());
  }

  // Reference sequence: reassemble from the packed words; from_packed
  // re-validates word counts, mask tail bits, and sizes.
  const auto packed = artifact_.section_as<std::uint64_t>(SectionId::kSeqPacked);
  std::vector<std::uint64_t> mask;
  if (h.ref_invalid != 0) {
    const auto mask_span =
        artifact_.section_as<std::uint64_t>(SectionId::kSeqMask);
    mask.assign(mask_span.begin(), mask_span.end());
  } else if (artifact_.has_section(SectionId::kSeqMask)) {
    throw StoreError(artifact_.path(), SectionId::kSeqMask,
                     "present but the header records zero invalid bases");
  }
  try {
    ref_ = seq::Sequence::from_packed(
        std::vector<std::uint64_t>(packed.begin(), packed.end()),
        std::move(mask), h.ref_bases);
  } catch (const std::invalid_argument& e) {
    throw StoreError(artifact_.path(), SectionId::kSeqPacked, e.what());
  }
  if (ref_.invalid_count() != h.ref_invalid) {
    throw StoreError(
        artifact_.path(), SectionId::kSeqMask,
        "mask marks " + std::to_string(ref_.invalid_count()) +
            " invalid bases, header records " + std::to_string(h.ref_invalid));
  }

  // K-mer row directory: every row's spans must lie inside the ptrs/locs
  // arrays and describe a well-formed 4^seed_len + 1 bucket table.
  const auto table =
      artifact_.section_as<RowTableEntry>(SectionId::kKmerRowTable);
  row_table_.assign(table.begin(), table.end());
  if (row_table_.size() != h.tile_rows) {
    throw StoreError(artifact_.path(), SectionId::kKmerRowTable,
                     "directory has " + std::to_string(row_table_.size()) +
                         " rows, header records " +
                         std::to_string(h.tile_rows));
  }
  const auto ptrs = artifact_.section_as<std::uint32_t>(SectionId::kKmerPtrs);
  const auto locs = artifact_.section_as<std::uint32_t>(SectionId::kKmerLocs);
  if (h.seed_len == 0 || h.seed_len > 16) {
    throw StoreError(artifact_.path(),
                     "header seed_len " + std::to_string(h.seed_len) +
                         " outside [1, 16]");
  }
  const std::uint64_t want_ptrs =
      (std::uint64_t{1} << (2 * h.seed_len)) + 1;
  for (std::size_t r = 0; r < row_table_.size(); ++r) {
    const RowTableEntry& e = row_table_[r];
    const bool ptrs_ok = e.ptrs_count == want_ptrs &&
                         e.ptrs_offset <= ptrs.size() &&
                         e.ptrs_count <= ptrs.size() - e.ptrs_offset;
    const bool locs_ok = e.locs_offset <= locs.size() &&
                         e.locs_count <= locs.size() - e.locs_offset;
    if (!ptrs_ok || !locs_ok) {
      throw StoreError(artifact_.path(), SectionId::kKmerRowTable,
                       "row " + std::to_string(r) +
                           " points outside the ptrs/locs arrays (file has " +
                           plural_bytes(ptrs.size()) + " ptr and " +
                           plural_bytes(locs.size()) + " loc elements)");
    }
  }
}

LoadedIndex::RowSpans LoadedIndex::row(std::uint32_t row) const {
  if (row >= row_table_.size()) {
    throw StoreError(artifact_.path(), SectionId::kKmerRowTable,
                     "row " + std::to_string(row) + " of " +
                         std::to_string(row_table_.size()) + " requested");
  }
  const RowTableEntry& e = row_table_[row];
  const auto ptrs = artifact_.section_as<std::uint32_t>(SectionId::kKmerPtrs);
  const auto locs = artifact_.section_as<std::uint32_t>(SectionId::kKmerLocs);
  return RowSpans{ptrs.subspan(e.ptrs_offset, e.ptrs_count),
                  locs.subspan(e.locs_offset, e.locs_count)};
}

core::Engine::NativeIndex LoadedIndex::native_index() const {
  obs::Span span("store.native_index", "store");
  core::Engine::NativeIndex out;
  out.rows.reserve(row_table_.size());
  for (std::uint32_t r = 0; r < row_table_.size(); ++r) {
    const RowSpans s = row(r);
    try {
      out.rows.emplace_back(
          header().seed_len, header().step,
          std::vector<std::uint32_t>(s.ptrs.begin(), s.ptrs.end()),
          std::vector<std::uint32_t>(s.locs.begin(), s.locs.end()));
    } catch (const std::invalid_argument& e) {
      throw StoreError(artifact_.path(), SectionId::kKmerPtrs,
                       "row " + std::to_string(r) + ": " + e.what());
    }
  }
  return out;
}

std::span<const std::uint32_t> LoadedIndex::suffix_array() const {
  return artifact_.section_as<std::uint32_t>(SectionId::kSuffixArray);
}

std::span<const std::uint32_t> LoadedIndex::lcp() const {
  return artifact_.section_as<std::uint32_t>(SectionId::kLcp);
}

std::span<const std::uint32_t> LoadedIndex::sparse_sa() const {
  return artifact_.section_as<std::uint32_t>(SectionId::kSparseSa);
}

index::KmerIndex LoadedIndex::copmem_index() const {
  const auto arr =
      artifact_.section_as<std::uint32_t>(SectionId::kCopmemIndex);
  if (arr.size() < 2) {
    throw StoreError(artifact_.path(), SectionId::kCopmemIndex,
                     "payload of " + std::to_string(arr.size()) +
                         " elements cannot hold the seed_len/step prologue");
  }
  const std::uint32_t seed_len = arr[0];
  const std::uint32_t step = arr[1];
  if (seed_len == 0 || seed_len > 16) {
    throw StoreError(artifact_.path(), SectionId::kCopmemIndex,
                     "seed_len " + std::to_string(seed_len) +
                         " outside [1, 16]");
  }
  const std::uint64_t want_ptrs = (std::uint64_t{1} << (2 * seed_len)) + 1;
  if (arr.size() < 2 + want_ptrs) {
    throw StoreError(artifact_.path(), SectionId::kCopmemIndex,
                     "payload of " + std::to_string(arr.size()) +
                         " elements cannot hold 4^seed_len + 1 = " +
                         std::to_string(want_ptrs) + " bucket offsets");
  }
  const auto ptrs = arr.subspan(2, want_ptrs);
  const auto locs = arr.subspan(2 + want_ptrs);
  try {
    return index::KmerIndex(
        seed_len, step, std::vector<std::uint32_t>(ptrs.begin(), ptrs.end()),
        std::vector<std::uint32_t>(locs.begin(), locs.end()));
  } catch (const std::invalid_argument& e) {
    throw StoreError(artifact_.path(), SectionId::kCopmemIndex, e.what());
  }
}

index::FmIndex LoadedIndex::fm_index() const {
  try {
    return index::FmIndex::deserialize(
        artifact_.section(SectionId::kFmIndex));
  } catch (const std::invalid_argument& e) {
    throw StoreError(artifact_.path(), SectionId::kFmIndex, e.what());
  }
}

bool LoadedIndex::geometry_matches(const core::Config& cfg) const {
  const core::Config::Geometry geo = cfg.validated();
  const ArtifactHeader& h = header();
  return h.seed_len == cfg.seed_len && h.step == geo.step &&
         h.tile_len == geo.tile_len && h.min_length == cfg.min_length;
}

void LoadedIndex::throw_if_geometry_mismatch(const core::Config& cfg) const {
  if (geometry_matches(cfg)) return;
  const core::Config::Geometry geo = cfg.validated();
  const ArtifactHeader& h = header();
  std::string detail = "stale geometry — rebuild with `gpumem_cli "
                       "index-build`; mismatches:";
  const auto add = [&detail](const char* field, std::uint64_t artifact_v,
                             std::uint64_t want_v) {
    if (artifact_v != want_v) {
      detail += std::string(" ") + field + "=" +
                std::to_string(artifact_v) + " (run wants " +
                std::to_string(want_v) + ")";
    }
  };
  add("seed_len", h.seed_len, cfg.seed_len);
  add("step", h.step, geo.step);
  add("tile_len", h.tile_len, geo.tile_len);
  add("min_length", h.min_length, cfg.min_length);
  throw StoreError(artifact_.path(), detail);
}

}  // namespace gm::store
