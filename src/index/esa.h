// Enhanced (sparse) suffix array — suffix array + LCP + child table
// (Abouelhoda, Kurtz & Ohlebusch 2004, the paper's reference [2] and the
// substrate of essaMEM). The child table lets pattern descent run in
// O(pattern) independent of log n, which is essaMEM's matching advantage
// over sparseMEM's binary search.
#pragma once

#include <cstdint>
#include <vector>

#include "index/sa_search.h"
#include "seq/sequence.h"

namespace gm::index {

class EnhancedSuffixArray {
 public:
  /// Builds SA (sparse with step K), LCP, and the child table for `ref`.
  /// The reference must outlive the index (positions refer into it).
  EnhancedSuffixArray(const seq::Sequence& ref, std::uint32_t k);

  std::uint32_t sparseness() const noexcept { return k_; }
  const std::vector<std::uint32_t>& positions() const noexcept { return sa_; }
  const std::vector<std::uint32_t>& lcp() const noexcept { return lcp_; }

  /// Top-down descent matching query[qpos..qpos+cap) as far as possible.
  /// Returns the deepest non-empty interval and the number of characters
  /// matched (<= cap).
  struct Descent {
    SaInterval interval;
    std::uint32_t matched = 0;
  };
  Descent descend(const seq::Sequence& query, std::size_t qpos,
                  std::size_t cap) const;

  std::size_t bytes() const noexcept {
    return sa_.size() * sizeof(std::uint32_t) * 2 +
           (up_.size() + down_.size() + next_.size()) * sizeof(std::int32_t);
  }

 private:
  // Child-interval enumeration helpers over inclusive intervals [i, j].
  std::int32_t first_child_boundary(std::int32_t i, std::int32_t j) const;

  const seq::Sequence& ref_;
  std::uint32_t k_;
  std::vector<std::uint32_t> sa_;
  std::vector<std::uint32_t> lcp_;   // size sa_.size() + 1; lcp_[n] == 0 sentinel
  std::vector<std::int32_t> up_;
  std::vector<std::int32_t> down_;
  std::vector<std::int32_t> next_;
};

}  // namespace gm::index
