#include "index/esa.h"

#include <stdexcept>

#include "index/lcp.h"
#include "index/suffix_array.h"

namespace gm::index {

EnhancedSuffixArray::EnhancedSuffixArray(const seq::Sequence& ref,
                                         std::uint32_t k)
    : ref_(ref), k_(k) {
  if (k == 0) throw std::invalid_argument("EnhancedSuffixArray: K must be >= 1");
  if (k == 1) {
    sa_ = build_suffix_array(ref);
    lcp_ = build_lcp_kasai(ref, sa_);
  } else {
    sa_.reserve(ref.size() / k + 1);
    for (std::uint32_t p = 0; p < ref.size(); p += k) sa_.push_back(p);
    sort_suffix_positions(ref, sa_);
    lcp_ = build_lcp_direct(ref, sa_);
  }
  const std::size_t n = sa_.size();
  lcp_.push_back(0);  // virtual lcp_[n]
  up_.assign(n + 1, -1);
  down_.assign(n + 1, -1);
  next_.assign(n + 1, -1);
  if (n < 2) return;

  // lv(i): lcp with virtual -1 sentinels at both ends, per the child-table
  // construction of Abouelhoda et al. (2004), Algorithms 6.2/6.5.
  auto lv = [&](std::size_t i) -> std::int64_t {
    if (i == 0 || i == n) return -1;
    return static_cast<std::int64_t>(lcp_[i]);
  };

  {  // up/down
    std::vector<std::size_t> stack{0};
    std::int64_t last = -1;  // index, -1 = none
    for (std::size_t i = 1; i <= n; ++i) {
      while (lv(i) < lv(stack.back())) {
        last = static_cast<std::int64_t>(stack.back());
        stack.pop_back();
        if (lv(i) <= lv(stack.back()) &&
            lv(stack.back()) != lv(static_cast<std::size_t>(last))) {
          down_[stack.back()] = static_cast<std::int32_t>(last);
        }
      }
      if (last != -1) {
        up_[i] = static_cast<std::int32_t>(last);
        last = -1;
      }
      stack.push_back(i);
    }
  }
  {  // nextlIndex
    std::vector<std::size_t> stack{0};
    for (std::size_t i = 1; i <= n; ++i) {
      while (lv(i) < lv(stack.back())) stack.pop_back();
      if (lv(i) == lv(stack.back())) {
        next_[stack.back()] = static_cast<std::int32_t>(i);
        stack.pop_back();
      }
      stack.push_back(i);
    }
  }
}

std::int32_t EnhancedSuffixArray::first_child_boundary(std::int32_t i,
                                                       std::int32_t j) const {
  const std::int32_t u = up_[static_cast<std::size_t>(j) + 1];
  if (u > i && u <= j) return u;
  return down_[static_cast<std::size_t>(i)];
}

EnhancedSuffixArray::Descent EnhancedSuffixArray::descend(
    const seq::Sequence& query, std::size_t qpos, std::size_t cap) const {
  const std::size_t n = sa_.size();
  Descent out;
  out.interval = {0, static_cast<std::uint32_t>(n)};
  out.matched = 0;
  if (n == 0) return out;
  cap = std::min(cap, query.size() > qpos ? query.size() - qpos : 0);

  std::int32_t i = 0, j = static_cast<std::int32_t>(n) - 1;
  std::size_t d = 0;
  while (true) {
    if (i == j) {
      // Leaf: finish by direct comparison against the single suffix.
      d += ref_.common_prefix(sa_[static_cast<std::size_t>(i)] + d, query,
                              qpos + d, cap - d);
      out.interval = {static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(i) + 1};
      out.matched = static_cast<std::uint32_t>(d);
      return out;
    }
    const std::int32_t boundary = first_child_boundary(i, j);
    const std::size_t ell = lcp_[static_cast<std::size_t>(boundary)];
    const std::size_t lim = std::min(ell, cap);
    // Characters d..lim are shared by the whole interval ("edge" of the
    // lcp-interval tree); compare them once against the first suffix.
    d += ref_.common_prefix(sa_[static_cast<std::size_t>(i)] + d, query,
                            qpos + d, lim - d);
    if (d < lim || d == cap) {
      out.interval = {static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(j) + 1};
      out.matched = static_cast<std::uint32_t>(d);
      return out;
    }
    // d == ell < cap: branch on the next query character.
    const std::uint8_t c = query.base(qpos + d);
    std::int32_t child_lo = i;
    std::int32_t child_hi = boundary - 1;  // first child
    std::int32_t cursor = boundary;
    bool found = false;
    while (true) {
      const std::uint32_t p = sa_[static_cast<std::size_t>(child_lo)];
      // A suffix of length exactly `ell` forms the (first) leaf child with
      // no character at this depth; it cannot match.
      if (p + d < ref_.size() && ref_.base(p + d) == c) {
        found = true;
        break;
      }
      if (child_hi == j) break;  // that was the last child
      child_lo = cursor;
      const std::int32_t nx = next_[static_cast<std::size_t>(cursor)];
      if (nx != -1 && nx <= j) {
        child_hi = nx - 1;
        cursor = nx;
      } else {
        child_hi = j;
      }
    }
    if (!found) {
      out.interval = {static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(j) + 1};
      out.matched = static_cast<std::uint32_t>(d);
      return out;
    }
    i = child_lo;
    j = child_hi;
  }
}

}  // namespace gm::index
