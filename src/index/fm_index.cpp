#include "index/fm_index.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "index/lcp.h"
#include "index/suffix_array.h"

namespace gm::index {

FmIndex::FmIndex(const seq::Sequence& text, std::uint32_t sa_sample)
    : n_(static_cast<std::uint32_t>(text.size())), sa_sample_(sa_sample) {
  if (sa_sample_ == 0) {
    throw std::invalid_argument("FmIndex: sa_sample must be >= 1");
  }
  const std::uint32_t rows = n_ + 1;
  const std::vector<std::uint32_t> sa = build_suffix_array(text);

  // Suffix position per row: row 0 is '$' (position n), rows 1..n follow sa.
  auto row_pos = [&](std::uint32_t row) -> std::uint32_t {
    return row == 0 ? n_ : sa[row - 1];
  };

  // BWT codes; the '$' at the primary row is stored as code 0 and corrected
  // for in rank().
  const std::uint32_t nblocks = (rows + 63) / 64 + 1;  // +1 sentinel block
  blocks_.assign(nblocks, {});
  std::array<std::uint32_t, 4> running{};
  primary_ = 0;
  for (std::uint32_t row = 0; row < rows; ++row) {
    if ((row & 63u) == 0) blocks_[row >> 6].cnt = running;
    const std::uint32_t pos = row_pos(row);
    std::uint8_t code = 0;
    if (pos == 0) {
      // BWT char is '$'. It is stored as code 0 in the bitplanes, so the
      // checkpoint counts must include that fake 'A' too — rank() then
      // uniformly subtracts it once for any i past the primary row.
      primary_ = row;
      ++running[0];
    } else {
      code = text.base(pos - 1);
      ++running[code];
    }
    RankBlock& b = blocks_[row >> 6];
    const unsigned off = row & 63u;
    b.lo |= static_cast<std::uint64_t>(code & 1) << off;
    b.hi |= static_cast<std::uint64_t>((code >> 1) & 1) << off;
  }
  blocks_.back().cnt = running;
  if ((rows & 63u) == 0 && (rows >> 6) < nblocks) {
    blocks_[rows >> 6].cnt = running;
  }

  // C array: '$' is the single smallest symbol.
  std::array<std::uint32_t, 4> char_counts{};
  for (std::uint32_t i = 0; i < n_; ++i) ++char_counts[text.base(i)];
  std::uint32_t acc = 1;  // the '$'
  for (int c = 0; c < 4; ++c) {
    c_[static_cast<std::size_t>(c)] = acc;
    acc += char_counts[static_cast<std::size_t>(c)];
  }

  // Sampled SA marks.
  mark_bits_.assign((rows + 63) / 64, 0);
  std::vector<std::uint32_t> values;
  for (std::uint32_t row = 0; row < rows; ++row) {
    const std::uint32_t pos = row_pos(row);
    if (pos % sa_sample_ == 0 || row == 0) {
      mark_bits_[row >> 6] |= std::uint64_t{1} << (row & 63u);
    }
  }
  mark_rank_.assign(mark_bits_.size() + 1, 0);
  for (std::size_t w = 0; w < mark_bits_.size(); ++w) {
    mark_rank_[w + 1] =
        mark_rank_[w] + static_cast<std::uint32_t>(std::popcount(mark_bits_[w]));
  }
  values.reserve(mark_rank_.back());
  for (std::uint32_t row = 0; row < rows; ++row) {
    if (mark_bits_[row >> 6] >> (row & 63u) & 1) values.push_back(row_pos(row));
  }
  mark_values_ = std::move(values);

  // LCP over rows: row 1 borders the '$' suffix (lcp 0); rows >= 2 use the
  // Kasai LCP of the plain suffix array.
  const std::vector<std::uint32_t> lcp = build_lcp_kasai(text, sa);
  lcp8_.assign(rows, 0);
  for (std::uint32_t row = 2; row < rows; ++row) {
    const std::uint32_t v = lcp[row - 1];
    if (v >= 255) {
      lcp8_[row] = 255;
      lcp_exceptions_.emplace_back(row, v);  // ascending rows: stays sorted
    } else {
      lcp8_[row] = static_cast<std::uint8_t>(v);
    }
  }
}

std::uint32_t FmIndex::rank(std::uint8_t c, std::uint32_t i) const noexcept {
  const RankBlock& b = blocks_[i >> 6];
  std::uint32_t r = b.cnt[c];
  const unsigned off = i & 63u;
  if (off != 0) {
    const std::uint64_t lo_match = (c & 1) ? b.lo : ~b.lo;
    const std::uint64_t hi_match = (c & 2) ? b.hi : ~b.hi;
    const std::uint64_t within = ~std::uint64_t{0} >> (64 - off);
    r += static_cast<std::uint32_t>(
        std::popcount(lo_match & hi_match & within));
  }
  // The primary row's '$' was stored as code 0; undo its contribution.
  if (c == 0 && primary_ < i) --r;
  return r;
}

std::uint32_t FmIndex::locate(std::uint32_t row) const {
  std::uint32_t steps = 0;
  while (!(mark_bits_[row >> 6] >> (row & 63u) & 1)) {
    row = lf(row);
    ++steps;
  }
  const std::uint32_t word = row >> 6;
  const std::uint64_t before = (row & 63u) == 0
                                   ? 0
                                   : mark_bits_[word] &
                                         (~std::uint64_t{0} >> (64 - (row & 63u)));
  const std::uint32_t idx =
      mark_rank_[word] + static_cast<std::uint32_t>(std::popcount(before));
  return mark_values_[idx] + steps;
}

std::uint32_t FmIndex::lcp_at(std::uint32_t row) const {
  if (row == 0 || row > n_) return 0;
  const std::uint8_t v = lcp8_[row];
  if (v < 255) return v;
  const auto it = std::lower_bound(
      lcp_exceptions_.begin(), lcp_exceptions_.end(), row,
      [](const std::pair<std::uint32_t, std::uint32_t>& e, std::uint32_t r) {
        return e.first < r;
      });
  // lcp8_[row] == 255 guarantees the entry exists.
  return it->second;
}

SaInterval FmIndex::widen(SaInterval iv, std::uint32_t depth,
                          std::uint32_t max_rows) const {
  const auto guard = [&](const SaInterval& cur) {
    if (max_rows != 0 && cur.hi - cur.lo > max_rows) {
      throw WidenOverflowError(
          "FmIndex::widen: interval at depth " + std::to_string(depth) +
          " exceeds max_rows cap " + std::to_string(max_rows));
    }
  };
  guard(iv);
  while (iv.lo > 0 && lcp_at(iv.lo) >= depth) {
    --iv.lo;
    guard(iv);
  }
  while (iv.hi <= n_ && lcp_at(iv.hi) >= depth) {
    ++iv.hi;
    guard(iv);
  }
  return iv;
}

std::size_t FmIndex::bytes() const noexcept {
  return blocks_.size() * sizeof(RankBlock) +
         mark_bits_.size() * sizeof(std::uint64_t) +
         mark_rank_.size() * sizeof(std::uint32_t) +
         mark_values_.size() * sizeof(std::uint32_t) + lcp8_.size() +
         lcp_exceptions_.size() *
             sizeof(std::pair<std::uint32_t, std::uint32_t>);
}

namespace {

// Byte-image helpers for serialize/deserialize. Everything is written as
// fixed-width little-endian-native scalars and raw arrays; the store/
// artifact format pins endianness at the file level, so the payload can be
// memcpy'd.
template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
void append_vec(std::vector<std::uint8_t>& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  append_pod(out, static_cast<std::uint64_t>(v.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  out.insert(out.end(), p, p + v.size() * sizeof(T));
}

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (bytes_.size() - pos_ < sizeof(T)) {
      throw std::invalid_argument("FmIndex::deserialize: truncated input");
    }
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> read_vec() {
    const std::uint64_t n = read_pod<std::uint64_t>();
    if (n > (bytes_.size() - pos_) / sizeof(T)) {
      throw std::invalid_argument("FmIndex::deserialize: truncated array");
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    std::memcpy(v.data(), bytes_.data() + pos_, v.size() * sizeof(T));
    pos_ += v.size() * sizeof(T);
    return v;
  }

  bool exhausted() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

void FmIndex::serialize(std::vector<std::uint8_t>& out) const {
  append_pod(out, n_);
  append_pod(out, primary_);
  append_pod(out, sa_sample_);
  for (const std::uint32_t c : c_) append_pod(out, c);
  append_vec(out, blocks_);
  append_vec(out, mark_bits_);
  append_vec(out, mark_rank_);
  append_vec(out, mark_values_);
  append_vec(out, lcp8_);
  // lcp_exceptions_ is kept sorted by row, so the byte image is identical
  // to what the old hash-map storage produced after its sort pass.
  append_pod(out, static_cast<std::uint64_t>(lcp_exceptions_.size()));
  for (const auto& [row, v] : lcp_exceptions_) {
    append_pod(out, row);
    append_pod(out, v);
  }
}

FmIndex FmIndex::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  FmIndex fm;
  fm.n_ = r.read_pod<std::uint32_t>();
  fm.primary_ = r.read_pod<std::uint32_t>();
  fm.sa_sample_ = r.read_pod<std::uint32_t>();
  for (std::uint32_t& c : fm.c_) c = r.read_pod<std::uint32_t>();
  fm.blocks_ = r.read_vec<RankBlock>();
  fm.mark_bits_ = r.read_vec<std::uint64_t>();
  fm.mark_rank_ = r.read_vec<std::uint32_t>();
  fm.mark_values_ = r.read_vec<std::uint32_t>();
  fm.lcp8_ = r.read_vec<std::uint8_t>();
  const std::uint64_t n_exceptions = r.read_pod<std::uint64_t>();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> exceptions;
  exceptions.reserve(static_cast<std::size_t>(n_exceptions));
  for (std::uint64_t i = 0; i < n_exceptions; ++i) {
    const std::uint32_t row = r.read_pod<std::uint32_t>();
    const std::uint32_t v = r.read_pod<std::uint32_t>();
    exceptions.emplace_back(row, v);
  }
  if (!r.exhausted()) {
    throw std::invalid_argument("FmIndex::deserialize: trailing bytes");
  }

  // Shape validation: every accessor indexes via these relations, so a
  // loaded index that violates them would read out of bounds.
  const std::uint32_t rows = fm.n_ + 1;
  if (fm.sa_sample_ == 0 || fm.primary_ >= rows ||
      fm.blocks_.size() != (rows + 63) / 64 + 1 ||
      fm.mark_bits_.size() != (rows + 63) / 64 ||
      fm.mark_rank_.size() != fm.mark_bits_.size() + 1 ||
      fm.mark_rank_.front() != 0 ||
      fm.mark_values_.size() != fm.mark_rank_.back() ||
      fm.lcp8_.size() != rows) {
    throw std::invalid_argument(
        "FmIndex::deserialize: inconsistent structure sizes");
  }
  for (std::size_t w = 0; w < fm.mark_bits_.size(); ++w) {
    if (fm.mark_rank_[w + 1] !=
        fm.mark_rank_[w] +
            static_cast<std::uint32_t>(std::popcount(fm.mark_bits_[w]))) {
      throw std::invalid_argument(
          "FmIndex::deserialize: mark rank table disagrees with mark bits");
    }
  }
  // Row 0 must be marked or locate() on an unlucky row could walk forever.
  if (fm.n_ > 0 && (fm.mark_bits_[0] & 1) == 0) {
    throw std::invalid_argument("FmIndex::deserialize: row 0 not marked");
  }
  for (std::size_t i = 0; i < exceptions.size(); ++i) {
    const auto& [row, v] = exceptions[i];
    if (row >= rows || fm.lcp8_[row] != 255 || v < 255) {
      throw std::invalid_argument(
          "FmIndex::deserialize: bad LCP exception entry");
    }
    // lcp_at binary-searches this table, so rows must be strictly
    // ascending (this also rejects duplicates).
    if (i > 0 && row <= exceptions[i - 1].first) {
      throw std::invalid_argument(
          "FmIndex::deserialize: LCP exception rows not strictly ascending");
    }
  }
  fm.lcp_exceptions_ = std::move(exceptions);
  return fm;
}

}  // namespace gm::index
