// LCP arrays over (possibly sparse) suffix arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/sequence.h"

namespace gm::index {

/// Kasai et al. linear-time LCP for a *full* suffix array.
/// lcp[i] = length of the common prefix of suffixes sa[i-1] and sa[i];
/// lcp[0] = 0. Output length equals sa length.
std::vector<std::uint32_t> build_lcp_kasai(const seq::Sequence& seq,
                                           const std::vector<std::uint32_t>& sa);

/// LCP for an arbitrary sorted suffix-position array (e.g. a sparse suffix
/// array) by direct word-parallel comparison of adjacent entries. O(sum of
/// adjacent LCP / 32) — the standard construction for sparse SAs.
std::vector<std::uint32_t> build_lcp_direct(const seq::Sequence& seq,
                                            const std::vector<std::uint32_t>& sa);

}  // namespace gm::index
