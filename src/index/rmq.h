// Sparse-table range-minimum queries, used for O(1) LCE between suffix-array
// ranks and for LCP-interval navigation in tests.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "util/bits.h"

namespace gm::index {

/// Classic O(n log n) space, O(1) query sparse table over uint32 values.
class RmqSparseTable {
 public:
  RmqSparseTable() = default;

  explicit RmqSparseTable(const std::vector<std::uint32_t>& values) {
    n_ = values.size();
    if (n_ == 0) return;
    const std::uint32_t levels = util::floor_log2(n_) + 1;
    table_.resize(levels);
    table_[0] = values;
    for (std::uint32_t k = 1; k < levels; ++k) {
      const std::size_t span = std::size_t{1} << k;
      table_[k].resize(n_ - span + 1);
      for (std::size_t i = 0; i + span <= n_; ++i) {
        table_[k][i] =
            std::min(table_[k - 1][i], table_[k - 1][i + span / 2]);
      }
    }
  }

  /// Minimum of values[lo..hi], inclusive bounds, lo <= hi < n.
  std::uint32_t min_inclusive(std::size_t lo, std::size_t hi) const {
    assert(lo <= hi && hi < n_);
    const std::uint32_t k = util::floor_log2(hi - lo + 1);
    return std::min(table_[k][lo], table_[k][hi + 1 - (std::size_t{1} << k)]);
  }

  bool empty() const { return n_ == 0; }

 private:
  std::size_t n_ = 0;
  std::vector<std::vector<std::uint32_t>> table_;
};

}  // namespace gm::index
