// FM-index (Ferragina & Manzini, the paper's reference [9]): BWT with
// two-bitplane rank blocks, a sampled suffix array for locate, and a
// byte-saturated LCP with an exception table — the memory-light LCP idea
// behind slaMEM (paper reference [8]).
//
// Rows are the n+1 suffixes of text+'$' in lexicographic order ('$' < A).
// Row 0 is always the '$' suffix.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "index/sa_search.h"
#include "seq/sequence.h"

namespace gm::index {

/// Thrown by FmIndex::widen when the widened interval would exceed the
/// caller's max_rows cap. Deterministic: the message names the depth and
/// the cap, so a pathological low-depth widen fails the same way every run
/// instead of going quadratic.
class WidenOverflowError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FmIndex {
 public:
  /// Builds the index; `sa_sample` controls locate cost/memory (every row
  /// whose suffix position is ≡ 0 mod sa_sample stores its position).
  explicit FmIndex(const seq::Sequence& text, std::uint32_t sa_sample = 32);

  /// Number of BWT rows = text length + 1.
  std::uint32_t rows() const noexcept { return n_ + 1; }

  /// Interval of all rows (empty pattern).
  SaInterval all_rows() const noexcept { return {0, n_ + 1}; }

  /// Backward-search step: rows whose suffix starts with c followed by the
  /// pattern that `iv` represents.
  SaInterval extend(SaInterval iv, std::uint8_t c) const noexcept {
    return {c_[c] + rank(c, iv.lo), c_[c] + rank(c, iv.hi)};
  }

  /// Text position of the suffix in `row` (0 <= row <= n; row 0 gives n,
  /// the empty suffix).
  std::uint32_t locate(std::uint32_t row) const;

  /// LCP between the suffixes of row-1 and row (row 0 -> 0). Exact despite
  /// the byte-sampled storage (large values come from the exception table).
  std::uint32_t lcp_at(std::uint32_t row) const;

  /// Widens `iv` to every row sharing at least `depth` characters with it.
  /// Cost is linear in the number of rows added. `max_rows` bounds that
  /// cost: a nonzero cap makes widen throw WidenOverflowError as soon as
  /// the interval would cover more than `max_rows` rows (0 = unbounded).
  SaInterval widen(SaInterval iv, std::uint32_t depth,
                   std::uint32_t max_rows = 0) const;

  /// Occurrences of `c` in BWT rows [0, i) — exposed for tests.
  std::uint32_t rank(std::uint8_t c, std::uint32_t i) const noexcept;

  std::size_t bytes() const noexcept;

  /// Appends a self-contained byte image of the index (the store/ artifact
  /// FM section payload). Deterministic: exception entries are emitted in
  /// ascending row order, so equal indexes serialize to equal bytes.
  void serialize(std::vector<std::uint8_t>& out) const;

  /// Rebuilds an index from serialize() output. Throws
  /// std::invalid_argument on truncated or internally inconsistent bytes —
  /// shape checks only; content integrity is the artifact checksum's job.
  static FmIndex deserialize(std::span<const std::uint8_t> bytes);

 private:
  FmIndex() = default;  // deserialize() fills every field itself

  struct RankBlock {
    std::array<std::uint32_t, 4> cnt{};  // cumulative counts at block start
    std::uint64_t lo = 0;                // low bitplane of 64 BWT codes
    std::uint64_t hi = 0;                // high bitplane
  };

  std::uint8_t bwt_code(std::uint32_t row) const noexcept {
    const RankBlock& b = blocks_[row >> 6];
    const unsigned off = row & 63u;
    return static_cast<std::uint8_t>(((b.lo >> off) & 1) |
                                     (((b.hi >> off) & 1) << 1));
  }

  std::uint32_t lf(std::uint32_t row) const noexcept {
    const std::uint8_t c = bwt_code(row);
    return c_[c] + rank(c, row);
  }

  std::uint32_t n_ = 0;        // text length
  std::uint32_t primary_ = 0;  // row whose BWT character is '$'
  std::uint32_t sa_sample_ = 32;
  std::array<std::uint32_t, 4> c_{};  // C[c]: #symbols < c (incl. '$')
  std::vector<RankBlock> blocks_;

  // Sampled SA: mark bits (one word per 64 rows) + prefix popcounts +
  // packed positions of marked rows.
  std::vector<std::uint64_t> mark_bits_;
  std::vector<std::uint32_t> mark_rank_;
  std::vector<std::uint32_t> mark_values_;

  // Byte-saturated LCP with exceptions for values >= 255, kept as a
  // (row, value) vector sorted by row: lcp_at sits on the matching-
  // statistics hot loop, and a binary search over a contiguous array beats
  // the hash-map probe it replaced (and serializes without a sort pass).
  std::vector<std::uint8_t> lcp8_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> lcp_exceptions_;
};

}  // namespace gm::index
