#include "index/suffix_array.h"

#include <algorithm>
#include <cstddef>

namespace gm::index {
namespace {

// SA-IS over an integer string s[0..n-1] where s[n-1] is a unique sentinel 0
// and all other symbols are in [1, K]. SA receives the n suffix ranks.
class SaIs {
 public:
  static void run(const std::int32_t* s, std::int32_t* sa, std::int32_t n,
                  std::int32_t k_alpha) {
    SaIs builder(s, sa, n, k_alpha);
    builder.solve();
  }

 private:
  SaIs(const std::int32_t* s, std::int32_t* sa, std::int32_t n,
       std::int32_t k_alpha)
      : s_(s), sa_(sa), n_(n), k_(k_alpha), is_s_(static_cast<std::size_t>(n)) {}

  void solve() {
    classify();
    std::vector<std::int32_t> lms;
    lms.reserve(static_cast<std::size_t>(n_) / 2 + 1);
    for (std::int32_t i = 1; i < n_; ++i) {
      if (is_lms(i)) lms.push_back(i);
    }

    induced_sort(lms);

    // Compact the sorted LMS positions from sa_ and name LMS substrings.
    std::vector<std::int32_t> sorted_lms;
    sorted_lms.reserve(lms.size());
    for (std::int32_t i = 0; i < n_; ++i) {
      if (sa_[i] > 0 && is_lms(sa_[i])) sorted_lms.push_back(sa_[i]);
    }

    std::vector<std::int32_t> name_of(static_cast<std::size_t>(n_), -1);
    std::int32_t names = 0;
    std::int32_t prev = -1;
    for (std::int32_t pos : sorted_lms) {
      if (prev >= 0 && !lms_substring_equal(prev, pos)) ++names;
      name_of[static_cast<std::size_t>(pos)] = names;
      prev = pos;
    }
    ++names;  // count, not max index

    // Reduced string: names of LMS substrings in text order.
    std::vector<std::int32_t> reduced;
    reduced.reserve(lms.size());
    for (std::int32_t pos : lms) {
      reduced.push_back(name_of[static_cast<std::size_t>(pos)]);
    }

    std::vector<std::int32_t> lms_order(lms.size());
    if (names == static_cast<std::int32_t>(lms.size())) {
      // All names unique: order is immediate.
      for (std::size_t i = 0; i < lms.size(); ++i) {
        lms_order[static_cast<std::size_t>(reduced[i])] =
            static_cast<std::int32_t>(i);
      }
    } else {
      // Recurse on the reduced string (its own sentinel is the final LMS,
      // which is the sentinel position of s_ and is the unique minimum).
      std::vector<std::int32_t> sub_sa(lms.size());
      SaIs::run(reduced.data(), sub_sa.data(),
                static_cast<std::int32_t>(reduced.size()), names - 1);
      for (std::size_t i = 0; i < lms.size(); ++i) {
        lms_order[i] = sub_sa[i];
      }
    }

    // Final pass: seed buckets with LMS suffixes in sorted order, re-induce.
    std::vector<std::int32_t> sorted(lms.size());
    for (std::size_t i = 0; i < lms.size(); ++i) {
      sorted[i] = lms[static_cast<std::size_t>(lms_order[i])];
    }
    induced_sort(sorted);
  }

  bool is_lms(std::int32_t i) const {
    return i > 0 && is_s_[static_cast<std::size_t>(i)] &&
           !is_s_[static_cast<std::size_t>(i - 1)];
  }

  void classify() {
    is_s_[static_cast<std::size_t>(n_ - 1)] = true;
    for (std::int32_t i = n_ - 2; i >= 0; --i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      is_s_[ui] = s_[i] < s_[i + 1] || (s_[i] == s_[i + 1] && is_s_[ui + 1]);
    }
  }

  void bucket_bounds(std::vector<std::int32_t>& heads,
                     std::vector<std::int32_t>& tails) const {
    std::vector<std::int32_t> count(static_cast<std::size_t>(k_) + 1, 0);
    for (std::int32_t i = 0; i < n_; ++i) ++count[static_cast<std::size_t>(s_[i])];
    heads.assign(static_cast<std::size_t>(k_) + 1, 0);
    tails.assign(static_cast<std::size_t>(k_) + 1, 0);
    std::int32_t sum = 0;
    for (std::int32_t c = 0; c <= k_; ++c) {
      heads[static_cast<std::size_t>(c)] = sum;
      sum += count[static_cast<std::size_t>(c)];
      tails[static_cast<std::size_t>(c)] = sum;  // one past end
    }
  }

  // lms_seed: LMS positions, placed at their bucket tails in given order.
  void induced_sort(const std::vector<std::int32_t>& lms_seed) {
    std::vector<std::int32_t> heads, tails;
    bucket_bounds(heads, tails);
    std::fill(sa_, sa_ + n_, -1);

    {
      std::vector<std::int32_t> tail_cursor = tails;
      for (auto it = lms_seed.rbegin(); it != lms_seed.rend(); ++it) {
        const std::int32_t pos = *it;
        std::int32_t& cur = tail_cursor[static_cast<std::size_t>(s_[pos])];
        sa_[--cur] = pos;
      }
    }

    // Induce L-type suffixes, left to right from bucket heads.
    {
      std::vector<std::int32_t> head_cursor = heads;
      for (std::int32_t i = 0; i < n_; ++i) {
        const std::int32_t j = sa_[i];
        if (j > 0 && !is_s_[static_cast<std::size_t>(j - 1)]) {
          std::int32_t& cur = head_cursor[static_cast<std::size_t>(s_[j - 1])];
          sa_[cur++] = j - 1;
        }
      }
    }

    // Induce S-type suffixes, right to left from bucket tails. This
    // overwrites the seeded LMS entries with the final order.
    {
      std::vector<std::int32_t> tail_cursor = tails;
      for (std::int32_t i = n_ - 1; i >= 0; --i) {
        const std::int32_t j = sa_[i];
        if (j > 0 && is_s_[static_cast<std::size_t>(j - 1)]) {
          std::int32_t& cur = tail_cursor[static_cast<std::size_t>(s_[j - 1])];
          sa_[--cur] = j - 1;
        }
      }
    }
  }

  bool lms_substring_equal(std::int32_t a, std::int32_t b) const {
    // Compare the LMS substrings starting at a and b (inclusive of the next
    // LMS position).
    for (std::int32_t d = 0;; ++d) {
      const bool a_end = d > 0 && is_lms(a + d);
      const bool b_end = d > 0 && is_lms(b + d);
      if (a_end && b_end) return true;
      if (a_end != b_end) return false;
      if (a + d >= n_ || b + d >= n_) return false;
      if (s_[a + d] != s_[b + d]) return false;
      if (is_s_[static_cast<std::size_t>(a + d)] !=
          is_s_[static_cast<std::size_t>(b + d)]) {
        return false;
      }
    }
  }

  const std::int32_t* s_;
  std::int32_t* sa_;
  std::int32_t n_;
  std::int32_t k_;
  std::vector<bool> is_s_;
};

}  // namespace

std::vector<std::uint32_t> build_suffix_array(const seq::Sequence& seq) {
  const std::size_t n = seq.size();
  if (n == 0) return {};
  // Shift codes to 1..4 and append the unique sentinel 0.
  std::vector<std::int32_t> s(n + 1);
  for (std::size_t i = 0; i < n; ++i) s[i] = seq.base(i) + 1;
  s[n] = 0;
  std::vector<std::int32_t> sa(n + 1);
  SaIs::run(s.data(), sa.data(), static_cast<std::int32_t>(n + 1), 4);
  // Drop the sentinel suffix (always first).
  std::vector<std::uint32_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(sa[i + 1]);
  }
  return out;
}

namespace {

// Lexicographic suffix comparison, 32 bases per iteration. A shorter suffix
// that is a prefix of the other sorts first (consistent with sentinel-based
// construction, since the sentinel is the minimum symbol).
bool suffix_less(const seq::Sequence& seq, std::uint32_t a, std::uint32_t b) {
  if (a == b) return false;
  const std::size_t n = seq.size();
  const std::size_t la = n - a;
  const std::size_t lb = n - b;
  const std::size_t common = seq.common_prefix(a, seq, b, std::min(la, lb));
  if (common == la || common == lb) return la < lb;
  return seq.base(a + common) < seq.base(b + common);
}

}  // namespace

std::vector<std::uint32_t> build_suffix_array_bruteforce(const seq::Sequence& seq) {
  std::vector<std::uint32_t> sa(seq.size());
  for (std::uint32_t i = 0; i < sa.size(); ++i) sa[i] = i;
  sort_suffix_positions(seq, sa);
  return sa;
}

void sort_suffix_positions(const seq::Sequence& seq,
                           std::vector<std::uint32_t>& positions) {
  std::sort(positions.begin(), positions.end(),
            [&seq](std::uint32_t a, std::uint32_t b) {
              return suffix_less(seq, a, b);
            });
}

}  // namespace gm::index
