#include "index/sparse_suffix_array.h"

#include <stdexcept>

#include "index/suffix_array.h"

namespace gm::index {

SparseSuffixArray::SparseSuffixArray(const seq::Sequence& ref, std::uint32_t k,
                                     bool sort_based)
    : k_(k) {
  if (k == 0) throw std::invalid_argument("SparseSuffixArray: K must be >= 1");
  if (k == 1 && !sort_based) {
    sa_ = build_suffix_array(ref);
    return;
  }
  sa_.reserve(ref.size() / k + 1);
  for (std::uint32_t p = 0; p < ref.size(); p += k) sa_.push_back(p);
  sort_suffix_positions(ref, sa_);
}

}  // namespace gm::index
