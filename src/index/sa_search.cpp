#include "index/sa_search.h"

#include <algorithm>

namespace gm::index {
namespace {

// Three-way compare of ref suffix at p (limited to `depth` chars) against
// query[qpos..qpos+depth). A ref suffix shorter than the pattern compares
// less when it is a prefix of it.
int compare_suffix(const seq::Sequence& ref, std::uint32_t p,
                   const seq::Sequence& query, std::size_t qpos,
                   std::size_t depth) {
  const std::size_t ref_avail = ref.size() - p;
  const std::size_t cmp_len = std::min(depth, ref_avail);
  const std::size_t common = ref.common_prefix(p, query, qpos, cmp_len);
  if (common == depth) return 0;
  if (common == ref_avail) return -1;  // ref suffix exhausted: prefix => less
  return ref.base(p + common) < query.base(qpos + common) ? -1 : 1;
}

}  // namespace

SaInterval find_interval(const seq::Sequence& ref,
                         const std::vector<std::uint32_t>& sa,
                         const seq::Sequence& query, std::size_t qpos,
                         std::size_t depth) {
  if (depth == 0) {
    return {0, static_cast<std::uint32_t>(sa.size())};
  }
  if (qpos + depth > query.size()) return {0, 0};
  auto lo_it = std::lower_bound(
      sa.begin(), sa.end(), 0u, [&](std::uint32_t p, std::uint32_t) {
        return compare_suffix(ref, p, query, qpos, depth) < 0;
      });
  auto hi_it = std::upper_bound(
      lo_it, sa.end(), 0u, [&](std::uint32_t, std::uint32_t p) {
        return compare_suffix(ref, p, query, qpos, depth) > 0;
      });
  return {static_cast<std::uint32_t>(lo_it - sa.begin()),
          static_cast<std::uint32_t>(hi_it - sa.begin())};
}

LongestMatch find_longest(const seq::Sequence& ref,
                          const std::vector<std::uint32_t>& sa,
                          const seq::Sequence& query, std::size_t qpos,
                          std::size_t max_depth) {
  max_depth = std::min(max_depth, query.size() - qpos);
  LongestMatch best;
  best.interval = {0, static_cast<std::uint32_t>(sa.size())};
  best.length = 0;
  // Exponential-then-binary search over depth. Each probe is a full interval
  // search; fine for the binary-search-based finders which are the paper's
  // slower baselines anyway.
  std::size_t lo = 0, hi = max_depth;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    const SaInterval iv = find_interval(ref, sa, query, qpos, mid);
    if (!iv.empty()) {
      best.interval = iv;
      best.length = static_cast<std::uint32_t>(mid);
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return best;
}

}  // namespace gm::index
