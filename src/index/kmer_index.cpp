#include "index/kmer_index.h"

#include <stdexcept>
#include <string>

#include "util/bits.h"
#include "util/parallel.h"

namespace gm::index {

void check_position_range(std::size_t ref_bases, const char* who) {
  if (ref_bases > kMaxIndexableBases) {
    throw std::invalid_argument(
        std::string(who) + ": reference has " + std::to_string(ref_bases) +
        " bases but index positions are stored as uint32_t — the indexable "
        "limit is 4294967295 bases");
  }
}

KmerIndex::KmerIndex(const seq::Sequence& ref, std::size_t start,
                     std::size_t end, unsigned seed_len, std::uint32_t step)
    : seed_len_(seed_len), step_(step) {
  check_position_range(ref.size(), "KmerIndex");
  if (seed_len == 0 || seed_len > 16) {
    throw std::invalid_argument("KmerIndex: seed_len must be in [1, 16]");
  }
  if (step == 0) throw std::invalid_argument("KmerIndex: step must be >= 1");
  end = std::min(end, ref.size());

  const std::size_t buckets = std::size_t{1} << (2 * seed_len);
  ptrs_.assign(buckets + 1, 0);

  // Align the first sampled position to the global grid.
  const std::size_t first = util::round_up(start, static_cast<std::size_t>(step));

  if (buckets <= (std::size_t{1} << 16)) {
    // Small table (fits cache): classic two-pass counting sort.
    // Pass 1: counts (shifted by one for the in-place prefix sum).
    std::size_t count = 0;
    for (std::size_t p = first; p < end && p + seed_len <= ref.size();
         p += step) {
      ++ptrs_[ref.kmer(p, seed_len) + 1];
      ++count;
    }
    // Prefix sum.
    for (std::size_t s = 1; s <= buckets; ++s) ptrs_[s] += ptrs_[s - 1];

    // Pass 2: fill. Ascending position order lands each bucket pre-sorted,
    // which is the invariant Algorithm 1's step 4 establishes with a sort.
    locs_.resize(count);
    std::vector<std::uint32_t> cursor(ptrs_.begin(), ptrs_.end() - 1);
    for (std::size_t p = first; p < end && p + seed_len <= ref.size();
         p += step) {
      locs_[cursor[ref.kmer(p, seed_len)]++] = static_cast<std::uint32_t>(p);
    }
    return;
  }

  // Large table: the counting passes above scatter increments across a
  // multi-megabyte bucket array — two cache misses per sampled position,
  // which made index construction the dominant end-to-end cost
  // (BENCH_hostwall.json, ISSUE 8). Instead, LSD-radix-sort packed
  // (kmer, position) pairs with small cache-resident digit tables, then lay
  // out locs/ptrs with purely sequential writes. The radix passes are
  // stable and pairs are gathered in ascending position order, so each
  // bucket stays position-sorted — bit-identical arrays to the counting
  // path.
  std::vector<std::uint64_t> pairs;
  if (end > first) pairs.reserve((end - first) / step + 1);
  for (std::size_t p = first; p < end && p + seed_len <= ref.size();
       p += step) {
    pairs.push_back(std::uint64_t{ref.kmer(p, seed_len)} << 32 | p);
  }
  const unsigned key_bits = 2 * seed_len;
  const unsigned lo_bits = key_bits / 2;  // >= 8 here, so both digits fit
  std::vector<std::uint64_t> scratch(pairs.size());
  std::vector<std::uint32_t> digit_count;
  for (unsigned pass = 0; pass < 2; ++pass) {
    const unsigned shift = 32 + (pass == 0 ? 0 : lo_bits);
    const unsigned bits = pass == 0 ? lo_bits : key_bits - lo_bits;
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    digit_count.assign((std::size_t{1} << bits) + 1, 0);
    for (const std::uint64_t pr : pairs) ++digit_count[(pr >> shift & mask) + 1];
    for (std::size_t d = 1; d < digit_count.size(); ++d) {
      digit_count[d] += digit_count[d - 1];
    }
    for (const std::uint64_t pr : pairs) {
      scratch[digit_count[pr >> shift & mask]++] = pr;
    }
    pairs.swap(scratch);
  }
  locs_.resize(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    locs_[i] = static_cast<std::uint32_t>(pairs[i]);
    ++ptrs_[(pairs[i] >> 32) + 1];
  }
  for (std::size_t s = 1; s <= buckets; ++s) ptrs_[s] += ptrs_[s - 1];
}

KmerIndex::KmerIndex(unsigned seed_len, std::uint32_t step,
                     std::vector<std::uint32_t> ptrs,
                     std::vector<std::uint32_t> locs)
    : seed_len_(seed_len), step_(step) {
  if (seed_len == 0 || seed_len > 16) {
    throw std::invalid_argument("KmerIndex: seed_len must be in [1, 16]");
  }
  if (step == 0) throw std::invalid_argument("KmerIndex: step must be >= 1");
  const std::size_t buckets = std::size_t{1} << (2 * seed_len);
  if (ptrs.size() != buckets + 1) {
    throw std::invalid_argument(
        "KmerIndex: ptrs has " + std::to_string(ptrs.size()) +
        " entries, want 4^seed_len + 1 = " + std::to_string(buckets + 1));
  }
  if (ptrs.front() != 0 || ptrs.back() != locs.size()) {
    throw std::invalid_argument(
        "KmerIndex: ptrs must run from 0 to locs.size()");
  }
  for (std::size_t s = 1; s < ptrs.size(); ++s) {
    if (ptrs[s] < ptrs[s - 1]) {
      throw std::invalid_argument("KmerIndex: ptrs not monotone at bucket " +
                                  std::to_string(s));
    }
  }
  ptrs_ = std::move(ptrs);
  locs_ = std::move(locs);
}

util::Histogram KmerIndex::occurrence_histogram() const {
  util::Histogram h;
  for (std::size_t s = 0; s + 1 < ptrs_.size(); ++s) {
    const std::uint32_t occ = ptrs_[s + 1] - ptrs_[s];
    if (occ > 0) h.add(occ);
  }
  return h;
}

}  // namespace gm::index
