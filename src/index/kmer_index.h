// Host-side twin of GPUMEM's lightweight index (paper Fig. 1, Section III-A):
// two flat arrays, `ptrs` (per-seed bucket offsets: prefix sums of seed
// occurrence counts) and `locs` (sorted seed start positions). Seeds of
// length ℓs are sampled every Δs positions of the indexed reference range.
//
// The GPU backend builds exactly this structure on the device via
// Algorithm 1 (src/core/index_kernels.*); this class is the reference
// implementation used by the native backend, Fig. 6, and cross-checks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "seq/sequence.h"
#include "util/stats.h"

namespace gm::index {

/// Largest reference (in bases) whose positions fit the uint32_t location
/// arrays every index in this project stores.
inline constexpr std::size_t kMaxIndexableBases = 0xffffffffu;

/// Rejects references whose positions would silently truncate when stored
/// as uint32_t. Throws std::invalid_argument naming the limit; `who`
/// prefixes the message. Callable directly so tests can pin the error
/// without allocating a 4-Gbase sequence.
void check_position_range(std::size_t ref_bases, const char* who);

class KmerIndex {
 public:
  /// Indexes seeds of `ref` whose start position p satisfies
  /// start <= p, p + seed_len <= ref.size(), p < end, and p % step == 0
  /// (the sampling grid is *global*, so tiled construction over adjacent
  /// ranges covers every MEM — see core/pipeline.cc for why this matters).
  KmerIndex(const seq::Sequence& ref, std::size_t start, std::size_t end,
            unsigned seed_len, std::uint32_t step);

  /// Adopts prebuilt (ptrs, locs) arrays — the store/ artifact load path.
  /// Validates shape only (4^seed_len + 1 monotone ptrs ending at
  /// locs.size()); whether the contents match a reference is the artifact
  /// checksum's job. Throws std::invalid_argument on malformed input.
  KmerIndex(unsigned seed_len, std::uint32_t step,
            std::vector<std::uint32_t> ptrs, std::vector<std::uint32_t> locs);

  unsigned seed_len() const noexcept { return seed_len_; }
  std::uint32_t step() const noexcept { return step_; }

  /// All indexed locations of the packed seed value, ascending.
  std::span<const std::uint32_t> lookup(std::uint64_t seed) const noexcept {
    return {locs_.data() + ptrs_[seed], locs_.data() + ptrs_[seed + 1]};
  }

  std::uint64_t occurrences(std::uint64_t seed) const noexcept {
    return ptrs_[seed + 1] - ptrs_[seed];
  }

  const std::vector<std::uint32_t>& ptrs() const noexcept { return ptrs_; }
  const std::vector<std::uint32_t>& locs() const noexcept { return locs_; }

  /// Fig. 6: histogram over "number of locations a seed occurs at" for all
  /// seeds present at least once.
  util::Histogram occurrence_histogram() const;

  std::size_t bytes() const noexcept {
    return ptrs_.size() * sizeof(std::uint32_t) +
           locs_.size() * sizeof(std::uint32_t);
  }

 private:
  unsigned seed_len_;
  std::uint32_t step_;
  std::vector<std::uint32_t> ptrs_;  // size 4^seed_len + 1
  std::vector<std::uint32_t> locs_;
};

}  // namespace gm::index
