#include "index/lcp.h"

namespace gm::index {

std::vector<std::uint32_t> build_lcp_kasai(const seq::Sequence& seq,
                                           const std::vector<std::uint32_t>& sa) {
  const std::size_t n = sa.size();
  std::vector<std::uint32_t> rank(n), lcp(n, 0);
  for (std::size_t i = 0; i < n; ++i) rank[sa[i]] = static_cast<std::uint32_t>(i);
  std::size_t h = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rank[i] == 0) {
      h = 0;
      continue;
    }
    const std::size_t j = sa[rank[i] - 1];
    if (h > 0) --h;
    h += seq.common_prefix(i + h, seq, j + h, n);
    lcp[rank[i]] = static_cast<std::uint32_t>(h);
  }
  return lcp;
}

std::vector<std::uint32_t> build_lcp_direct(const seq::Sequence& seq,
                                            const std::vector<std::uint32_t>& sa) {
  std::vector<std::uint32_t> lcp(sa.size(), 0);
  for (std::size_t i = 1; i < sa.size(); ++i) {
    lcp[i] = static_cast<std::uint32_t>(
        seq.common_prefix(sa[i - 1], seq, sa[i], seq.size()));
  }
  return lcp;
}

}  // namespace gm::index
