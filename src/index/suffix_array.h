// Suffix array construction.
//
// Primary constructor is SA-IS (Nong, Zhang & Chan 2009), linear time and
// memory-lean — this is the index substrate for the MUMmer-class and
// essaMEM-class finders and (via the BWT) the slaMEM-class finder.
// A comparison-sort fallback exists for cross-validation in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/sequence.h"

namespace gm::index {

/// Suffix array of `seq` (positions of suffixes in lexicographic order,
/// using the 2-bit code order A < C < G < T). Does NOT include an imaginary
/// sentinel suffix; result has exactly seq.size() entries. Empty input gives
/// an empty array.
std::vector<std::uint32_t> build_suffix_array(const seq::Sequence& seq);

/// O(n log^2 n)-ish reference implementation via std::sort with word-level
/// suffix comparison; used to validate SA-IS and to directly sort *sampled*
/// suffix sets (sparse suffix arrays).
std::vector<std::uint32_t> build_suffix_array_bruteforce(const seq::Sequence& seq);

/// Sorts an arbitrary set of suffix start positions lexicographically
/// (word-parallel comparison). This is how the sparse suffix array is built:
/// cost scales with the number of sampled suffixes, which reproduces
/// sparseMEM's build-time-vs-sparseness behaviour (Table III).
void sort_suffix_positions(const seq::Sequence& seq,
                           std::vector<std::uint32_t>& positions);

}  // namespace gm::index
