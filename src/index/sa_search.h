// Pattern-interval binary search over (full or sparse) suffix arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/sequence.h"

namespace gm::index {

/// Half-open run [lo, hi) of suffix-array entries.
struct SaInterval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  bool empty() const noexcept { return lo >= hi; }
  std::uint32_t size() const noexcept { return empty() ? 0 : hi - lo; }
};

/// Interval of suffixes in `sa` (sorted positions into `ref`) whose first
/// `depth` characters equal query[qpos .. qpos+depth). Plain double binary
/// search with word-parallel comparisons: O(log |sa| * depth / 32).
SaInterval find_interval(const seq::Sequence& ref,
                         const std::vector<std::uint32_t>& sa,
                         const seq::Sequence& query, std::size_t qpos,
                         std::size_t depth);

/// Longest-match search: the largest m <= max_depth such that
/// query[qpos..qpos+m) occurs in `sa`, along with its interval. Returns
/// m == 0 with the full-array interval when even one character fails.
struct LongestMatch {
  SaInterval interval;
  std::uint32_t length = 0;
};
LongestMatch find_longest(const seq::Sequence& ref,
                          const std::vector<std::uint32_t>& sa,
                          const seq::Sequence& query, std::size_t qpos,
                          std::size_t max_depth);

}  // namespace gm::index
