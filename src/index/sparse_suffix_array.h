// Sparse suffix array (Khan et al. 2009, the sparseMEM index): only suffixes
// starting at positions ≡ 0 (mod K) are indexed. Memory shrinks by K at the
// cost of extra match-extension work, which is exactly the trade-off the
// paper discusses for sparseMEM in Tables III/IV.
#pragma once

#include <cstdint>
#include <vector>

#include "index/sa_search.h"
#include "seq/sequence.h"

namespace gm::index {

class SparseSuffixArray {
 public:
  /// Builds the index for `ref` with sparseness K >= 1. With
  /// `sort_based == false` (default), K == 1 uses linear-time SA-IS; with
  /// `sort_based == true` every K sorts the sampled suffixes by comparison,
  /// so build cost scales with n/K at *every* K — this reproduces the
  /// sparseMEM tool's build-time-vs-sparseness behaviour (Table III), where
  /// the dense index is strictly the slowest to build.
  SparseSuffixArray(const seq::Sequence& ref, std::uint32_t k,
                    bool sort_based = false);

  std::uint32_t sparseness() const noexcept { return k_; }
  const std::vector<std::uint32_t>& positions() const noexcept { return sa_; }

  /// Suffixes matching query[qpos..qpos+depth).
  SaInterval interval(const seq::Sequence& ref, const seq::Sequence& query,
                      std::size_t qpos, std::size_t depth) const {
    return find_interval(ref, sa_, query, qpos, depth);
  }

  /// Approximate index memory footprint in bytes (for reporting).
  std::size_t bytes() const noexcept { return sa_.size() * sizeof(std::uint32_t); }

 private:
  std::uint32_t k_;
  std::vector<std::uint32_t> sa_;
};

}  // namespace gm::index
