// Failing-case minimizer: geometry reduction first (one device, one block,
// two threads, step 1 — the smallest tile the pipeline supports, which also
// pulls tile boundaries close so boundary bugs keep firing on short
// sequences), then ddmin chunk deletion over the reference and the query
// until neither shrinks, all under a hard oracle-evaluation budget.
#include <algorithm>
#include <string>

#include "fuzz/fuzz.h"

namespace gm::fuzz {

namespace {

/// Budgeted failure predicate. A candidate whose config no longer validates
/// (or that dies some other way inside the harness itself) is simply "not a
/// reproducer" — shrinking must never convert a divergence into a crash.
bool still_fails(const FuzzCase& c, Fault fault, std::size_t& evals_left) {
  if (evals_left == 0) return false;
  --evals_left;
  try {
    return !run_case(c, fault).ok();
  } catch (const std::exception&) {
    return false;
  }
}

/// One ddmin sweep over `best.*field`: try deleting chunks at doubling
/// granularity; restart granularity after every successful deletion.
/// Returns true when the field shrank at least once.
bool ddmin_field(FuzzCase& best, std::string FuzzCase::* field, Fault fault,
                 std::size_t& evals_left) {
  bool shrank = false;
  std::size_t parts = 2;
  while (evals_left > 0) {
    const std::string& cur = best.*field;
    if (cur.size() < 2) break;
    const std::size_t chunk = std::max<std::size_t>(1, cur.size() / parts);
    bool reduced = false;
    for (std::size_t pos = 0; pos < cur.size() && evals_left > 0;
         pos += chunk) {
      FuzzCase cand = best;
      (cand.*field).erase(pos, std::min(chunk, cur.size() - pos));
      if (still_fails(cand, fault, evals_left)) {
        best = std::move(cand);
        shrank = reduced = true;
        break;  // string changed; restart the sweep on the smaller input
      }
    }
    if (reduced) {
      parts = 2;
    } else if (chunk == 1) {
      break;  // single-character deletions all preserve the pass: minimal
    } else {
      parts = std::min(parts * 2, cur.size());
    }
  }
  return shrank;
}

}  // namespace

FuzzCase shrink_case(const FuzzCase& failing, Fault fault,
                     std::size_t max_evals) {
  FuzzCase best = failing;
  std::size_t evals_left = max_evals;

  // Geometry first: each accepted mutation makes every later sequence-level
  // evaluation cheaper and the reproducer easier to reason about.
  const auto try_mutation = [&](auto&& mutate) {
    FuzzCase cand = best;
    mutate(cand);
    if (cand == best) return;
    if (still_fails(cand, fault, evals_left)) best = std::move(cand);
  };
  try_mutation([](FuzzCase& c) { c.devices = 1; });
  try_mutation([](FuzzCase& c) { c.tile_blocks = 1; });
  try_mutation([](FuzzCase& c) { c.threads = 2; });
  try_mutation([](FuzzCase& c) { c.step = 1; });
  try_mutation([](FuzzCase& c) {
    // Smallest legal problem parameters; smaller L lets ddmin cut the
    // sequences down to a couple of MEM lengths.
    c.min_len = 4;
    c.seed_len = 2;
    c.step = 1;
  });

  // Alternate ref/query ddmin passes to a joint fixpoint.
  while (evals_left > 0) {
    const bool a = ddmin_field(best, &FuzzCase::ref, fault, evals_left);
    const bool b = ddmin_field(best, &FuzzCase::query, fault, evals_left);
    if (!a && !b) break;
  }
  return best;
}

}  // namespace gm::fuzz
