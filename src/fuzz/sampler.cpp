// Case sampler: random (reference, query, config) tuples under Eq. 1, with
// deliberate pressure on the geometry edges — sequence lengths hovering
// around tile_len multiples, planted matches straddling tile boundaries,
// matches of length exactly L, N-runs, and soft-masked (lowercase) regions.
#include <algorithm>
#include <cctype>
#include <string>

#include "fuzz/fuzz.h"

namespace gm::fuzz {

namespace {

std::string random_dna(util::Xoshiro256& rng, std::size_t len) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s(len, 'A');
  for (auto& c : s) c = kBases[rng.bounded(4)];
  return s;
}

/// Overwrites a run of 'N's at a random position (invalid under the mask
/// policy: matches nothing, terminates MEMs).
void inject_n_runs(util::Xoshiro256& rng, std::string& s) {
  if (s.empty()) return;
  const std::size_t runs = static_cast<std::size_t>(rng.range(1, 3));
  for (std::size_t k = 0; k < runs; ++k) {
    const std::size_t len =
        std::min<std::size_t>(static_cast<std::size_t>(rng.range(1, 6)),
                              s.size());
    const std::size_t pos = rng.bounded(s.size() - len + 1);
    for (std::size_t i = 0; i < len; ++i) s[pos + i] = 'N';
  }
}

/// Lowercases a random region — soft masking, which must NOT change any
/// result (the codec is case-insensitive), making it a pure differential
/// probe of input normalization.
void inject_lowercase(util::Xoshiro256& rng, std::string& s) {
  if (s.empty()) return;
  const std::size_t len = std::min<std::size_t>(
      static_cast<std::size_t>(rng.range(1, 32)), s.size());
  const std::size_t pos = rng.bounded(s.size() - len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    s[pos + i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(s[pos + i])));
  }
}

}  // namespace

FuzzCase sample_case(util::Xoshiro256& rng) {
  FuzzCase c;
  c.min_len = static_cast<std::uint32_t>(rng.range(4, 14));
  c.seed_len = static_cast<std::uint32_t>(
      rng.range(2, std::min<std::int64_t>(8, c.min_len)));
  const std::uint32_t max_step = c.min_len - c.seed_len + 1;  // Eq. 1
  // Bias toward the Eq. 1 maximum (the paper's choice) but exercise the
  // whole legal range.
  c.step = rng.chance(0.35)
               ? 0
               : static_cast<std::uint32_t>(rng.range(1, max_step));
  c.threads = std::uint32_t{1} << rng.range(1, 3);  // tau in {2, 4, 8}
  c.tile_blocks = static_cast<std::uint32_t>(rng.range(1, 4));
  c.devices = static_cast<std::uint32_t>(rng.range(1, 3));

  const std::uint32_t eff_step = c.step == 0 ? max_step : c.step;
  const std::uint32_t tile_len = c.threads * eff_step * c.tile_blocks;

  // Reference length near a whole number of tiles, +/- a MEM length — the
  // off-by-one row/tile-count edges.
  const std::int64_t tiles = rng.range(1, 4);
  const std::int64_t slack_lo =
      -static_cast<std::int64_t>(std::min<std::uint32_t>(tile_len - 1,
                                                         2 * c.min_len));
  std::int64_t ref_len =
      tiles * tile_len + rng.range(slack_lo, 2 * c.min_len);
  ref_len = std::clamp<std::int64_t>(ref_len, 2 * c.min_len + 2, 4096);
  std::string ref = random_dna(rng, static_cast<std::size_t>(ref_len));

  // Query: usually comparable to the reference; occasionally degenerate
  // (shorter than L — every implementation must agree on "no MEMs").
  std::int64_t query_len;
  if (rng.chance(0.05)) {
    query_len = rng.range(1, std::max<std::int64_t>(1, c.min_len - 1));
  } else {
    query_len = std::clamp<std::int64_t>(
        rng.range(2 * c.min_len, ref_len + 2 * c.min_len),
        2 * c.min_len, 4096);
  }
  std::string query = random_dna(rng, static_cast<std::size_t>(query_len));

  // Plant shared segments so MEMs actually exist; half the time force one to
  // straddle a tile boundary in the reference (the out-tile stitch path).
  const std::int64_t plants = rng.range(1, 6);
  for (std::int64_t p = 0; p < plants; ++p) {
    std::size_t seg_len = static_cast<std::size_t>(
        rng.chance(0.25) ? c.min_len  // exactly L: Eq. 1's critical length
                         : rng.range(c.min_len, 3 * c.min_len));
    seg_len = std::min(seg_len, std::min(ref.size(), query.size()));
    if (seg_len == 0) break;

    std::size_t rpos;
    const std::uint32_t boundaries =
        static_cast<std::uint32_t>((ref.size() - 1) / tile_len);
    if (rng.chance(0.5) && boundaries >= 1 && seg_len >= 2) {
      // Cover [b - h, b - h + seg_len) for a tile boundary b: the planted
      // match crosses tiles and only survives via host stitching.
      const std::size_t b =
          static_cast<std::size_t>(tile_len) *
          static_cast<std::size_t>(rng.range(1, boundaries));
      const std::size_t h =
          static_cast<std::size_t>(rng.range(1, static_cast<std::int64_t>(seg_len) - 1));
      rpos = b >= h ? b - h : 0;
    } else {
      rpos = rng.bounded(ref.size() - seg_len + 1);
    }
    rpos = std::min(rpos, ref.size() - seg_len);
    const std::size_t qpos = rng.bounded(query.size() - seg_len + 1);
    query.replace(qpos, seg_len, ref, rpos, seg_len);
  }

  if (rng.chance(0.6)) inject_n_runs(rng, ref);
  if (rng.chance(0.6)) inject_n_runs(rng, query);
  if (rng.chance(0.5)) inject_lowercase(rng, ref);
  if (rng.chance(0.5)) inject_lowercase(rng, query);

  // Occasionally: identical sequences (every position is a MEM candidate,
  // maximal stress on dedupe/combine).
  if (rng.chance(0.05)) query = ref;

  c.ref = std::move(ref);
  c.query = std::move(query);
  return c;
}

}  // namespace gm::fuzz
