// Reproducer (de)serialization: a failing case round-trips through a small
// key=value text file so it can be attached to a bug report, replayed with
// gpumem_fuzz --replay, and turned into a regression test by pasting the
// two sequence lines. Sequences keep their exact ASCII (lowercase soft
// masking and N bases included) — replay re-encodes them with the same
// lenient codec the oracle uses.
#include <istream>
#include <sstream>

#include "fuzz/fuzz.h"

namespace gm::fuzz {

std::string serialize_case(const FuzzCase& c) {
  std::ostringstream os;
  os << "# gpumem_fuzz reproducer (replay: gpumem_fuzz --replay <file>)\n"
     << "min_len=" << c.min_len << '\n'
     << "seed_len=" << c.seed_len << '\n'
     << "step=" << c.step << '\n'
     << "threads=" << c.threads << '\n'
     << "tile_blocks=" << c.tile_blocks << '\n'
     << "devices=" << c.devices << '\n'
     << "seed=" << c.seed << '\n'
     << "ref=" << c.ref << '\n'
     << "query=" << c.query << '\n';
  return os.str();
}

std::optional<FuzzCase> parse_case(std::istream& in, std::string* error) {
  const auto fail = [&](const std::string& what) -> std::optional<FuzzCase> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  FuzzCase c;
  bool have_ref = false, have_query = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return fail("line " + std::to_string(lineno) + ": expected key=value");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "ref") {
      c.ref = value;
      have_ref = true;
      continue;
    }
    if (key == "query") {
      c.query = value;
      have_query = true;
      continue;
    }
    std::uint64_t num = 0;
    try {
      num = std::stoull(value);
    } catch (const std::exception&) {
      return fail("line " + std::to_string(lineno) + ": '" + key +
                  "' needs a non-negative integer, got '" + value + "'");
    }
    if (key == "min_len") {
      c.min_len = static_cast<std::uint32_t>(num);
    } else if (key == "seed_len") {
      c.seed_len = static_cast<std::uint32_t>(num);
    } else if (key == "step") {
      c.step = static_cast<std::uint32_t>(num);
    } else if (key == "threads") {
      c.threads = static_cast<std::uint32_t>(num);
    } else if (key == "tile_blocks") {
      c.tile_blocks = static_cast<std::uint32_t>(num);
    } else if (key == "devices") {
      c.devices = static_cast<std::uint32_t>(num);
    } else if (key == "seed") {
      c.seed = num;
    } else {
      return fail("line " + std::to_string(lineno) + ": unknown key '" + key +
                  "'");
    }
  }
  if (!have_ref || !have_query) {
    return fail("reproducer needs both ref= and query= lines");
  }
  return c;
}

}  // namespace gm::fuzz
