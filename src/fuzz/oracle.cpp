// Differential oracle: run one case through every implementation and
// compare against the naive ground truth.
//
// Implementations covered per case:
//   naive (truth, self-checked)   mummer   sparsemem   essamem   slamem
//   copmem (double-sampled, with an injectable candidate-drop fault)
//   lazy-slamem (lazy long-MEM sweep, with an injectable skipped-survivor
//   fault; bit-identity with eager slamem is the tentpole claim)
//   gpumem-native                 simt-plain (Engine::run)
//   simt-overlapped (Engine::run with cfg.overlap, stream count and
//   scheduler shuffle seed derived from the case seed)
//   simt-cached-cold / -warm (run_simt_cached over a DeviceRowIndexCache)
//   multi-device (run_multi_device)   serve (MemService, paused batch)
//   store-roundtrip (build_artifact → MappedArtifact::from_buffer →
//   LoadedIndex → run_native_prebuilt; bit-identity through serialization)
//
// Every output set is checked three ways: definition-level soundness via
// mem::validate_mems (under the invalid-base mask policy), completeness
// (no truth MEM missing), and exactness (no extra MEM). All finders emit
// canonical sorted/deduped order, so set comparison is two linear merges.
#include <algorithm>
#include <cstring>
#include <iterator>
#include <sstream>

#include "core/finders.h"
#include "core/multi_device.h"
#include "core/pipeline.h"
#include "fuzz/fuzz.h"
#include "mem/copmem.h"
#include "mem/registry.h"
#include "mem/slamem.h"
#include "mem/validate.h"
#include "seq/sequence.h"
#include "serve/index_cache.h"
#include "serve/service.h"
#include "simt/device.h"
#include "store/artifact.h"
#include "store/loaded_index.h"

namespace gm::fuzz {

namespace {

core::Config make_config(const FuzzCase& c) {
  core::Config cfg;
  cfg.min_length = c.min_len;
  cfg.seed_len = c.seed_len;
  cfg.step = c.step;
  cfg.threads = c.threads;
  cfg.tile_blocks = c.tile_blocks;
  cfg.backend = core::Backend::kSimt;
  return cfg;
}

/// The injected stitch defect: drop every MEM whose reference interval
/// crosses a tile_len boundary (exactly the matches only host stitching can
/// produce). Applied to pipeline-backed oracles only, so the checker must
/// flag them against the untouched ground truth.
void apply_fault(Fault fault, std::uint32_t tile_len,
                 std::vector<mem::Mem>& mems) {
  if (fault != Fault::kStitchDropBoundary || tile_len == 0) return;
  std::erase_if(mems, [tile_len](const mem::Mem& m) {
    return m.len > 0 && m.r / tile_len != (m.r + m.len - 1) / tile_len;
  });
}

/// The injected stream-overlap defect: drop MEMs whose query interval
/// crosses a tile (column) boundary — the handoff between adjacent worker
/// streams. Only the simt-overlapped oracle calls this.
void apply_overlap_fault(Fault fault, std::uint32_t tile_len,
                         std::vector<mem::Mem>& mems) {
  if (fault != Fault::kOverlapDropColumnBoundary || tile_len == 0) return;
  std::erase_if(mems, [tile_len](const mem::Mem& m) {
    return m.len > 0 && m.q / tile_len != (m.q + m.len - 1) / tile_len;
  });
}

/// The injected storage defect: flip one byte inside the largest section
/// payload of a serialized artifact image (falling back to the section
/// table when every payload is empty). The reader's per-section checksums
/// must turn this into a deterministic StoreError at open.
void apply_store_fault(Fault fault, std::vector<std::uint8_t>& image) {
  if (fault != Fault::kStoreCorruptSection) return;
  store::ArtifactHeader header{};
  std::memcpy(&header, image.data(), sizeof header);
  std::vector<store::SectionEntry> table(header.section_count);
  std::memcpy(table.data(), image.data() + sizeof header,
              table.size() * sizeof(store::SectionEntry));
  const store::SectionEntry* largest = nullptr;
  for (const store::SectionEntry& e : table) {
    if (e.bytes > 0 && (largest == nullptr || e.bytes > largest->bytes)) {
      largest = &e;
    }
  }
  if (largest != nullptr) {
    image[largest->offset + largest->bytes / 2] ^= 0x5A;
  } else {
    image[sizeof header] ^= 0x5A;  // header/table corruption fallback
  }
}

void check_output(const std::string& impl, const std::vector<mem::Mem>& truth,
                  const std::vector<mem::Mem>& got, const seq::Sequence& ref,
                  const seq::Sequence& query, std::uint32_t min_len,
                  CaseResult& out) {
  ++out.impls_run;
  const mem::ValidationReport report =
      mem::validate_mems(ref, query, got, min_len);
  if (!report.ok()) {
    out.divergences.push_back({impl, "unsound", report.first_error});
  }
  std::vector<mem::Mem> missing, extra;
  std::set_difference(truth.begin(), truth.end(), got.begin(), got.end(),
                      std::back_inserter(missing));
  std::set_difference(got.begin(), got.end(), truth.begin(), truth.end(),
                      std::back_inserter(extra));
  if (!missing.empty()) {
    out.divergences.push_back(
        {impl, "missing",
         std::to_string(missing.size()) + " of " +
             std::to_string(truth.size()) +
             " truth MEM(s) absent; first: " + mem::to_string(missing.front())});
  }
  if (!extra.empty()) {
    out.divergences.push_back(
        {impl, "extra",
         std::to_string(extra.size()) +
             " MEM(s) not in truth; first: " + mem::to_string(extra.front())});
  }
}

}  // namespace

const char* to_string(Fault fault) {
  switch (fault) {
    case Fault::kNone: return "none";
    case Fault::kStitchDropBoundary: return "stitch-drop";
    case Fault::kOverlapDropColumnBoundary: return "overlap-drop";
    case Fault::kStoreCorruptSection: return "store-corrupt";
    case Fault::kCopmemDropCandidate: return "copmem-drop";
    case Fault::kLazySkipConfirmed: return "lazy-skip";
  }
  return "?";
}

std::optional<Fault> fault_from_string(const std::string& name) {
  if (name == "none") return Fault::kNone;
  if (name == "stitch-drop") return Fault::kStitchDropBoundary;
  if (name == "overlap-drop") return Fault::kOverlapDropColumnBoundary;
  if (name == "store-corrupt") return Fault::kStoreCorruptSection;
  if (name == "copmem-drop") return Fault::kCopmemDropCandidate;
  if (name == "lazy-skip") return Fault::kLazySkipConfirmed;
  return std::nullopt;
}

std::string describe(const CaseResult& result) {
  std::ostringstream os;
  for (const Divergence& d : result.divergences) {
    os << d.impl << " [" << d.kind << "]: " << d.detail << '\n';
  }
  return os.str();
}

CaseResult run_case(const FuzzCase& c, Fault fault) {
  CaseResult out;
  const seq::Sequence ref = seq::Sequence::from_string_lenient(c.ref);
  const seq::Sequence query = seq::Sequence::from_string_lenient(c.query);
  const core::Config cfg = make_config(c);
  const core::Config::Geometry geo = cfg.validated();  // throws when invalid

  mem::FinderOptions opt;
  opt.min_length = c.min_len;
  opt.sparseness = 1;  // sparse finders stay exact at K = 1

  // Ground truth: the naive diagonal scan, itself definition-checked.
  std::vector<mem::Mem> truth;
  {
    const auto naive = mem::create_finder("naive");
    naive->build_index(ref, opt);
    truth = naive->find(query);
    out.truth_mems = truth.size();
    ++out.impls_run;
    const auto report = mem::validate_mems(ref, query, truth, c.min_len);
    if (!report.ok()) {
      out.divergences.push_back({"naive", "unsound", report.first_error});
    }
  }

  // CPU baseline finders.
  for (const char* name : {"mummer", "sparsemem", "essamem", "slamem"}) {
    try {
      const auto finder = mem::create_finder(name);
      finder->build_index(ref, opt);
      check_output(name, truth, finder->find(query), ref, query, c.min_len,
                   out);
    } catch (const std::exception& e) {
      out.divergences.push_back({name, "error", e.what()});
    }
  }

  // copMEM double-sampled finder, with its injectable candidate-drop
  // defect: the fault must surface here as a "missing" divergence while
  // every other oracle stays clean.
  try {
    mem::CopMemFinder copmem;
    copmem.inject_candidate_drop(fault == Fault::kCopmemDropCandidate);
    copmem.build_index(ref, opt);
    check_output("copmem", truth, copmem.find(query), ref, query, c.min_len,
                 out);
  } catch (const std::exception& e) {
    out.divergences.push_back({"copmem", "error", e.what()});
  }

  // Lazy long-MEM slaMEM sweep (FinderOptions::lazy_lcp), with its
  // injectable skipped-survivor defect: bit-identity with the eager sweep
  // is the tentpole claim, so this oracle runs on every case. The fault
  // must surface here as a "missing" divergence while every other oracle
  // (including eager slamem above) stays clean.
  try {
    mem::SlaMemFinder lazy;
    lazy.inject_lazy_skip(fault == Fault::kLazySkipConfirmed);
    mem::FinderOptions lazy_opt = opt;
    lazy_opt.lazy_lcp = true;
    lazy.build_index(ref, lazy_opt);
    check_output("lazy-slamem", truth, lazy.find(query), ref, query,
                 c.min_len, out);
  } catch (const std::exception& e) {
    out.divergences.push_back({"lazy-slamem", "error", e.what()});
  }

  // Native tiling pipeline (build-once index path).
  try {
    core::GpumemFinder native(core::Backend::kNative);
    native.mutable_config() = cfg;
    native.mutable_config().backend = core::Backend::kNative;
    native.build_index(ref, opt);
    auto got = native.find(query);
    apply_fault(fault, geo.tile_len, got);
    check_output("gpumem-native", truth, got, ref, query, c.min_len, out);
  } catch (const std::exception& e) {
    out.divergences.push_back({"gpumem-native", "error", e.what()});
  }

  const core::Engine engine(cfg);

  // SIMT mode 1: plain Engine::run.
  try {
    auto res = engine.run(ref, query);
    apply_fault(fault, geo.tile_len, res.mems);
    check_output("simt-plain", truth, res.mems, ref, query, c.min_len, out);
  } catch (const std::exception& e) {
    out.divergences.push_back({"simt-plain", "error", e.what()});
  }

  // SIMT mode 2: the stream-overlapped pipeline. Stream count and the
  // scheduler's drain-order shuffle derive from the case seed, so every
  // sampled case exercises a different interleaving — reproducibly.
  try {
    core::Config ocfg = cfg;
    ocfg.overlap = true;
    ocfg.overlap_streams = 1 + static_cast<std::uint32_t>(c.seed % 3);
    ocfg.overlap_shuffle_seed = c.seed;
    auto res = core::Engine(ocfg).run(ref, query);
    apply_fault(fault, geo.tile_len, res.mems);
    apply_overlap_fault(fault, geo.tile_len, res.mems);
    check_output("simt-overlapped", truth, res.mems, ref, query, c.min_len,
                 out);
  } catch (const std::exception& e) {
    out.divergences.push_back({"simt-overlapped", "error", e.what()});
  }

  // SIMT mode 3: cached row indexes — cold build, then the warm path that
  // must serve byte-identical indexes.
  try {
    simt::Device dev(cfg.device);
    serve::DeviceRowIndexCache cache(dev, cfg, /*ref_id=*/1);
    auto cold = engine.run_simt_cached(dev, ref, query, cache);
    apply_fault(fault, geo.tile_len, cold.mems);
    check_output("simt-cached-cold", truth, cold.mems, ref, query, c.min_len,
                 out);
    auto warm = engine.run_simt_cached(dev, ref, query, cache);
    apply_fault(fault, geo.tile_len, warm.mems);
    check_output("simt-cached-warm", truth, warm.mems, ref, query, c.min_len,
                 out);
  } catch (const std::exception& e) {
    out.divergences.push_back({"simt-cached", "error", e.what()});
  }

  // SIMT mode 4: multi-device row partitioning.
  try {
    auto res = core::run_multi_device(cfg, c.devices, ref, query);
    apply_fault(fault, geo.tile_len, res.mems);
    check_output("multi-device", truth, res.mems, ref, query, c.min_len, out);
  } catch (const std::exception& e) {
    out.divergences.push_back({"multi-device", "error", e.what()});
  }

  // Artifact round trip: serialize the full index to an in-memory *.gmidx
  // image, reopen it through the verifying reader, and extract with the
  // loaded (not rebuilt) row indexes. Must be bit-identical to the truth —
  // and under kStoreCorruptSection the reader must reject the image
  // instead of producing MEMs. Skipped for empty references (nothing to
  // serialize; the other oracles still cover the case).
  if (!ref.empty()) {
    try {
      std::vector<std::uint8_t> image = store::build_artifact(ref, cfg);
      apply_store_fault(fault, image);
      const store::LoadedIndex loaded(
          store::MappedArtifact::from_buffer(std::move(image), "<fuzz>"));
      core::Config ncfg = cfg;
      ncfg.backend = core::Backend::kNative;
      auto res = core::Engine(ncfg).run_native_prebuilt(
          loaded.reference(), query, loaded.native_index());
      apply_fault(fault, geo.tile_len, res.mems);
      check_output("store-roundtrip", truth, res.mems, ref, query, c.min_len,
                   out);
    } catch (const std::exception& e) {
      out.divergences.push_back({"store-roundtrip", "error", e.what()});
    }
  }

  // SIMT mode 5: the batched serving path end to end.
  try {
    serve::ServiceConfig scfg;
    scfg.engine = cfg;
    scfg.devices = c.devices;
    scfg.start_paused = true;
    serve::MemService service(scfg, ref);
    serve::QueryRequest req;
    req.id = "fuzz";
    req.query = query;
    auto fut = service.submit(std::move(req));
    service.resume();
    serve::QueryResult r = fut.get();
    service.shutdown();
    if (r.status != serve::QueryStatus::kOk) {
      out.divergences.push_back(
          {"serve", "error",
           std::string(serve::to_string(r.status)) +
               (r.error.empty() ? "" : ": " + r.error)});
    } else {
      apply_fault(fault, geo.tile_len, r.mems);
      check_output("serve", truth, r.mems, ref, query, c.min_len, out);
    }
  } catch (const std::exception& e) {
    out.divergences.push_back({"serve", "error", e.what()});
  }

  return out;
}

}  // namespace gm::fuzz
