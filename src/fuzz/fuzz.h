// Property-based differential fuzzing harness for MEM extraction.
//
// One sampled FuzzCase is a full problem instance: reference and query text
// (ACGT plus lowercase soft-masking and non-ACGT 'N' bases), the paper's
// problem parameters (L, ls, delta_s under Eq. 1), and the device geometry
// (tau, n_block, device count) — with the sampler biased toward the
// boundaries where tiling bugs live (sequence lengths just off tile_len
// multiples, planted matches straddling tile boundaries, step at the Eq. 1
// maximum).
//
// run_case executes every registered finder (including the copMEM
// double-sampled finder and the lazy long-MEM slaMEM sweep), the SIMT
// pipeline in all
// five serving shapes (plain run, stream-overlapped run, cached-index run,
// multi-device run, the batched MemService path), and a persistent-artifact
// round trip (serialize to a *.gmidx image, reopen through the verifying
// store reader, extract from the loaded index) against the naive ground
// truth and reports every
// divergence: a missing MEM (completeness), an extra or non-maximal MEM
// (soundness, double-checked via mem::validate_mems), or an execution error.
//
// shrink_case minimizes a failing case — geometry first (one device, one
// block, two threads, step 1), then ddmin over both sequences — so a fuzz
// failure lands as a small human-readable reproducer, serialized together
// with its provenance seed for exact replay (see docs/TESTING.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.h"

namespace gm::fuzz {

/// One complete differential-testing instance. Sequences are ASCII
/// (case-insensitive ACGT; anything else is an invalid base under the
/// mask policy — see seq::Sequence::from_string_lenient).
struct FuzzCase {
  std::string ref;
  std::string query;

  std::uint32_t min_len = 8;      ///< L
  std::uint32_t seed_len = 4;     ///< ls
  std::uint32_t step = 0;         ///< delta_s; 0 = Eq. 1 maximum
  std::uint32_t threads = 2;      ///< tau (power of two)
  std::uint32_t tile_blocks = 1;  ///< n_block
  std::uint32_t devices = 1;      ///< simulated device pool size

  std::uint64_t seed = 0;  ///< provenance: RNG seed that produced this case

  friend bool operator==(const FuzzCase&, const FuzzCase&) = default;
};

/// Deliberate defect injected into the pipeline-backed oracles, used to
/// prove the harness catches and shrinks real bug shapes (self-test).
enum class Fault {
  kNone = 0,
  /// Simulates a broken out-tile stitch: every pipeline-produced MEM whose
  /// reference interval crosses a tile_len boundary is dropped.
  kStitchDropBoundary,
  /// Simulates a stream-overlap handoff bug: the overlapped pipeline drops
  /// every MEM whose *query* interval crosses a tile (column) boundary —
  /// exactly the matches adjacent worker streams must stitch. Applied to the
  /// simt-overlapped oracle only; all other modes stay correct, so the
  /// harness must localize the failure to the overlapped path.
  kOverlapDropColumnBoundary,
  /// Simulates on-disk index corruption: one byte is flipped inside the
  /// largest section payload of the serialized artifact before the
  /// store-roundtrip oracle reopens it. The store reader must reject the
  /// image deterministically (checksum mismatch), which the harness
  /// reports as an "error" divergence localized to store-roundtrip.
  kStoreCorruptSection,
  /// Simulates a lost candidate in the copMEM double-sampled finder: the
  /// first merged candidate MEM is silently dropped before clipping
  /// (mem::CopMemFinder::inject_candidate_drop). Applied to the copmem
  /// oracle only, so the harness must localize the "missing" divergence
  /// there and shrink it to a minimal reproducer.
  kCopmemDropCandidate,
  /// Simulates a skipped survivor in the lazy long-MEM slaMEM sweep: the
  /// first window confirmed to reach depth >= L is dropped before the
  /// deferred widen/locate pass (mem::SlaMemFinder::inject_lazy_skip).
  /// Applied to the lazy-slamem oracle only, so the harness must localize
  /// the "missing" divergence there and shrink it.
  kLazySkipConfirmed,
};

const char* to_string(Fault fault);
std::optional<Fault> fault_from_string(const std::string& name);

/// One disagreement between an implementation and the ground truth.
struct Divergence {
  std::string impl;    ///< e.g. "mummer", "simt-plain", "serve"
  std::string kind;    ///< "missing" | "extra" | "unsound" | "error"
  std::string detail;  ///< human-readable specifics (first offending MEM)
};

struct CaseResult {
  std::vector<Divergence> divergences;
  std::size_t truth_mems = 0;  ///< ground-truth MEM count
  std::size_t impls_run = 0;   ///< oracle executions that completed

  bool ok() const { return divergences.empty(); }
};

/// Renders a result's divergences one per line (empty string when ok).
std::string describe(const CaseResult& result);

/// Samples a random case. The caller owns seeding policy: fork the master
/// RNG per case and stamp FuzzCase::seed for provenance.
FuzzCase sample_case(util::Xoshiro256& rng);

/// Runs the full oracle over `c`: naive ground truth, every CPU finder,
/// gpumem-native, the store artifact round trip, and the SIMT pipeline in
/// plain / cached (cold + warm) / multi-device / MemService modes. Throws
/// std::invalid_argument when the
/// case's config itself is invalid (possible for hand-edited repro files;
/// sampled cases always validate).
CaseResult run_case(const FuzzCase& c, Fault fault = Fault::kNone);

/// Minimizes a failing case while it keeps failing under `fault`:
/// geometry reduction first, then ddmin chunk deletion over ref and query.
/// Runs at most `max_evals` oracle evaluations; always returns a case that
/// still fails (at worst the input itself).
FuzzCase shrink_case(const FuzzCase& failing, Fault fault = Fault::kNone,
                     std::size_t max_evals = 500);

/// Key=value reproducer text, replayable via parse_case / gpumem_fuzz
/// --replay. Sequences are serialized as-is (lowercase and N preserved).
std::string serialize_case(const FuzzCase& c);

/// Parses serialize_case output (or a hand-written file of the same shape).
/// Returns std::nullopt and fills *error on malformed input.
std::optional<FuzzCase> parse_case(std::istream& in,
                                   std::string* error = nullptr);

}  // namespace gm::fuzz
