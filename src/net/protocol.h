// Length-prefixed binary wire protocol for the MEM serving front end.
//
// Every frame is a fixed 12-byte header followed by `payload_len` payload
// bytes (docs/SERVING.md has the byte-level tables):
//
//   offset  size  field
//        0     4  magic "GMEM" (0x47 0x4D 0x45 0x4D on the wire)
//        4     1  version (kVersion)
//        5     1  frame type (FrameType)
//        6     2  flags, little-endian (0; reserved)
//        8     4  payload_len, little-endian (<= kMaxPayloadBytes)
//
// All multi-byte integers are little-endian. Strings are length-prefixed
// (u16 length + raw bytes, no terminator). The protocol is strictly
// request/response over one connection: the client sends kQuery/kPing
// frames, the server answers each — in per-connection submission order —
// with exactly one kResult/kError/kPong frame. A malformed frame (bad
// magic, unknown version, oversized length, truncated or overlong payload)
// is answered with a typed kError frame and a connection close; there is no
// way to resynchronize a corrupt byte stream.
//
// FrameDecoder is the incremental parser used by the server's non-blocking
// event loop: bytes arrive in arbitrary fragments (partial reads,
// single-byte slow-loris writes) and frames are surfaced only once
// complete, so the loop never blocks waiting for the rest of a frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/mem.h"

namespace gm::net {

inline constexpr std::uint8_t kMagic[4] = {0x47, 0x4D, 0x45, 0x4D};  // "GMEM"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 12;

/// Hard payload bound enforced before buffering: a length field above this
/// is a protocol error (kOversized), not an allocation.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

enum class FrameType : std::uint8_t {
  // client -> server
  kQuery = 0x01,  ///< QueryFrame payload
  kPing = 0x02,   ///< empty payload; connectivity / drain probe
  // server -> client
  kResult = 0x81,  ///< ResultFrame payload
  kError = 0x82,   ///< ErrorFrame payload
  kPong = 0x83,    ///< empty payload
};

/// Typed failure taxonomy carried in kError frames. Codes <= kOversized are
/// protocol-level (the connection closes after the error frame); the rest
/// are per-request (the connection stays usable).
enum class ErrorCode : std::uint8_t {
  kMalformed = 1,        ///< payload does not parse as its frame type
  kBadMagic = 2,         ///< header magic mismatch (closes)
  kBadVersion = 3,       ///< unsupported protocol version (closes)
  kBadType = 4,          ///< unknown/unexpected frame type (closes)
  kOversized = 5,        ///< payload_len above the server's frame bound (closes)
  kOverloaded = 6,       ///< load shed / queue full — retry later
  kQuotaExceeded = 7,    ///< per-tenant in-flight quota exhausted
  kUnknownTenant = 8,    ///< tenant name matches no served reference
  kInvalidQuery = 9,     ///< request failed validation (empty query, bad deadline)
  kExpired = 10,         ///< deadline passed while queued (serve.deadline_miss)
  kFailed = 11,          ///< execution error; message has details
  kShuttingDown = 12,    ///< server is draining; no new work accepted
  kTooManyConnections = 13,  ///< connection cap reached (closes)
};

const char* to_string(ErrorCode code);
const char* to_string(FrameType type);

/// True for protocol-level errors after which the server closes the
/// connection (the byte stream can no longer be trusted).
bool closes_connection(ErrorCode code);

struct QueryFrame {
  std::string id;          ///< echoed in the response
  std::string tenant;      ///< registry routing; empty = server default
  std::string query;       ///< ASCII bases (non-ACGT mask per seq::NonAcgtPolicy)
  std::uint32_t deadline_ms = 0;  ///< 0 = server default
  /// Per-request minimum MEM length; 0 = the server engine's configured L.
  /// Values below the engine L are rejected (kInvalidQuery); values >= the
  /// server's long-MEM threshold route to the lazy FM-index fast path when
  /// the server runs with --long-mem (docs/SERVING.md).
  std::uint32_t min_length = 0;
};

struct ResultFrame {
  std::string id;
  bool warm = false;            ///< RunStats::index_cache_hit
  std::uint32_t queue_us = 0;   ///< submit -> dispatch, saturating
  std::uint32_t service_us = 0; ///< dispatch -> completion, saturating
  std::vector<mem::Mem> mems;   ///< canonical order, as Engine reports
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::kFailed;
  std::string id;       ///< empty when the error predates request parsing
  std::string message;
};

// --- little-endian primitives (append / bounds-checked cursor reads) ------

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void append_string(std::vector<std::uint8_t>& out, const std::string& s);

/// Bounds-checked forward reader over a payload; any overrun marks the
/// cursor failed and every subsequent read returns 0/"".
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::string string16();  ///< u16 length + bytes

  bool failed() const noexcept { return failed_; }
  /// True when every byte was consumed and nothing overran — a payload
  /// with trailing garbage is malformed, not silently accepted.
  bool exhausted() const noexcept { return !failed_ && pos_ == size_; }

 private:
  bool need(std::size_t n);
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// --- frame encoders (header + payload, ready to write) --------------------

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       const std::vector<std::uint8_t>& payload);
std::vector<std::uint8_t> encode_query(const QueryFrame& q);
std::vector<std::uint8_t> encode_result(const ResultFrame& r);
std::vector<std::uint8_t> encode_error(const ErrorFrame& e);
std::vector<std::uint8_t> encode_ping();
std::vector<std::uint8_t> encode_pong();

// --- payload parsers ------------------------------------------------------

/// Each returns false (and fills `err`) on malformed payloads.
bool parse_query(const std::vector<std::uint8_t>& payload, QueryFrame& out,
                 std::string& err);
bool parse_result(const std::vector<std::uint8_t>& payload, ResultFrame& out,
                  std::string& err);
bool parse_error(const std::vector<std::uint8_t>& payload, ErrorFrame& out,
                 std::string& err);

// --- incremental decoder --------------------------------------------------

/// Streaming frame decoder: feed() buffers arbitrary byte fragments, next()
/// surfaces complete frames or the first protocol error. After an error the
/// decoder is poisoned — the stream has no resync point — and next()
/// reports the same error forever.
class FrameDecoder {
 public:
  struct Frame {
    FrameType type = FrameType::kPing;
    std::vector<std::uint8_t> payload;
  };

  enum class Status {
    kNeedMore,  ///< no complete frame buffered
    kFrame,     ///< `frame` filled
    kError,     ///< `error`/`error_message` filled; decoder poisoned
  };

  /// `max_payload` tightens the global kMaxPayloadBytes bound (servers pass
  /// their configured frame limit).
  explicit FrameDecoder(std::uint32_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void feed(const std::uint8_t* data, std::size_t n);

  Status next(Frame& frame, ErrorCode& error, std::string& error_message);

  /// Bytes buffered but not yet consumed by a surfaced frame.
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::uint32_t max_payload_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool poisoned_ = false;
  ErrorCode poison_code_ = ErrorCode::kMalformed;
  std::string poison_message_;
};

}  // namespace gm::net
