// Blocking loopback client for the gpumem wire protocol — the counterpart
// the tests, the self-check mode, and the open-loop load generator drive
// against net::Server. Deliberately simple: one socket, blocking sends,
// blocking frame reads under SO_RCVTIMEO, plus send_raw() so hostile-input
// tests can write truncated headers, garbage magic, or single bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace gm::net {

/// One server frame, already parsed. `type` discriminates which member is
/// meaningful (kResult -> result, kError -> error, kPong -> neither).
struct Reply {
  FrameType type = FrameType::kPong;
  ResultFrame result;
  ErrorFrame error;

  bool ok() const noexcept { return type == FrameType::kResult; }
};

class Client {
 public:
  /// Connects to 127.0.0.1:port. `timeout_seconds` bounds every blocking
  /// read (SO_RCVTIMEO); 0 waits forever. Throws std::runtime_error when
  /// the connection is refused.
  explicit Client(std::uint16_t port, double timeout_seconds = 10.0);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;

  /// Writes all of `data` (handles partial sends). False on EPIPE/reset.
  bool send_raw(const void* data, std::size_t n);
  bool send_frame(const std::vector<std::uint8_t>& bytes) {
    return send_raw(bytes.data(), bytes.size());
  }

  /// Blocking read of the next complete server frame. False on EOF, read
  /// timeout, or an unparseable stream (servers never produce one).
  bool read_reply(Reply& out);

  /// send_frame(encode_query(q)) + read_reply().
  bool query(const QueryFrame& q, Reply& out);

  /// Ping round-trip; true when a kPong comes back.
  bool ping();

  /// Half-close the write side (the server sees EOF after its responses).
  void shutdown_write();
  void close();
  bool connected() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace gm::net
