#include "net/protocol.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace gm::net {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformed: return "malformed";
    case ErrorCode::kBadMagic: return "bad-magic";
    case ErrorCode::kBadVersion: return "bad-version";
    case ErrorCode::kBadType: return "bad-type";
    case ErrorCode::kOversized: return "oversized";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kQuotaExceeded: return "quota-exceeded";
    case ErrorCode::kUnknownTenant: return "unknown-tenant";
    case ErrorCode::kInvalidQuery: return "invalid-query";
    case ErrorCode::kExpired: return "expired";
    case ErrorCode::kFailed: return "failed";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kTooManyConnections: return "too-many-connections";
  }
  return "unknown";
}

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kQuery: return "query";
    case FrameType::kPing: return "ping";
    case FrameType::kResult: return "result";
    case FrameType::kError: return "error";
    case FrameType::kPong: return "pong";
  }
  return "unknown";
}

bool closes_connection(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformed:
    case ErrorCode::kBadMagic:
    case ErrorCode::kBadVersion:
    case ErrorCode::kBadType:
    case ErrorCode::kOversized:
    case ErrorCode::kTooManyConnections:
      return true;
    default:
      return false;
  }
}

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  const std::uint16_t n = static_cast<std::uint16_t>(
      std::min<std::size_t>(s.size(), std::numeric_limits<std::uint16_t>::max()));
  append_u16(out, n);
  out.insert(out.end(), s.begin(), s.begin() + n);
}

bool Cursor::need(std::size_t n) {
  if (failed_ || size_ - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t Cursor::u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Cursor::u16() {
  if (!need(2)) return 0;
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t Cursor::u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::string Cursor::string16() {
  const std::uint16_t n = u16();
  if (!need(n)) return {};
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> encode_frame(
    FrameType type, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  append_u16(out, 0);  // flags
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> encode_query(const QueryFrame& q) {
  std::vector<std::uint8_t> p;
  p.reserve(16 + q.id.size() + q.tenant.size() + q.query.size());
  append_string(p, q.id);
  append_string(p, q.tenant);
  append_u32(p, q.deadline_ms);
  append_u32(p, q.min_length);
  append_u32(p, static_cast<std::uint32_t>(q.query.size()));
  p.insert(p.end(), q.query.begin(), q.query.end());
  return encode_frame(FrameType::kQuery, p);
}

std::vector<std::uint8_t> encode_result(const ResultFrame& r) {
  std::vector<std::uint8_t> p;
  p.reserve(16 + r.id.size() + r.mems.size() * 12);
  append_string(p, r.id);
  p.push_back(r.warm ? 1 : 0);
  append_u32(p, r.queue_us);
  append_u32(p, r.service_us);
  append_u32(p, static_cast<std::uint32_t>(r.mems.size()));
  for (const mem::Mem& m : r.mems) {
    append_u32(p, m.r);
    append_u32(p, m.q);
    append_u32(p, m.len);
  }
  return encode_frame(FrameType::kResult, p);
}

std::vector<std::uint8_t> encode_error(const ErrorFrame& e) {
  std::vector<std::uint8_t> p;
  p.reserve(5 + e.id.size() + e.message.size());
  p.push_back(static_cast<std::uint8_t>(e.code));
  append_string(p, e.id);
  append_string(p, e.message);
  return encode_frame(FrameType::kError, p);
}

std::vector<std::uint8_t> encode_ping() { return encode_frame(FrameType::kPing, {}); }
std::vector<std::uint8_t> encode_pong() { return encode_frame(FrameType::kPong, {}); }

bool parse_query(const std::vector<std::uint8_t>& payload, QueryFrame& out,
                 std::string& err) {
  Cursor c(payload.data(), payload.size());
  out.id = c.string16();
  out.tenant = c.string16();
  out.deadline_ms = c.u32();
  out.min_length = c.u32();
  const std::uint32_t qlen = c.u32();
  if (c.failed()) {
    err = "truncated query payload";
    return false;
  }
  // The query body is the u32-prefixed tail; read it manually so a length
  // that disagrees with the payload size is a parse error, not a short read.
  const std::size_t fixed =
      2 + out.id.size() + 2 + out.tenant.size() + 4 + 4 + 4;
  if (payload.size() != fixed + qlen) {
    err = "query length field disagrees with payload size";
    return false;
  }
  out.query.assign(reinterpret_cast<const char*>(payload.data() + fixed), qlen);
  return true;
}

bool parse_result(const std::vector<std::uint8_t>& payload, ResultFrame& out,
                  std::string& err) {
  Cursor c(payload.data(), payload.size());
  out.id = c.string16();
  out.warm = c.u8() != 0;
  out.queue_us = c.u32();
  out.service_us = c.u32();
  const std::uint32_t n = c.u32();
  if (c.failed()) {
    err = "truncated result payload";
    return false;
  }
  // 12 bytes per MEM; reject a count that overruns before allocating.
  const std::size_t fixed = 2 + out.id.size() + 1 + 4 + 4 + 4;
  if (payload.size() != fixed + static_cast<std::size_t>(n) * 12) {
    err = "MEM count disagrees with payload size";
    return false;
  }
  out.mems.clear();
  out.mems.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    mem::Mem m;
    m.r = c.u32();
    m.q = c.u32();
    m.len = c.u32();
    out.mems.push_back(m);
  }
  if (c.failed() || !c.exhausted()) {
    err = "truncated result payload";
    return false;
  }
  return true;
}

bool parse_error(const std::vector<std::uint8_t>& payload, ErrorFrame& out,
                 std::string& err) {
  Cursor c(payload.data(), payload.size());
  out.code = static_cast<ErrorCode>(c.u8());
  out.id = c.string16();
  out.message = c.string16();
  if (c.failed() || !c.exhausted()) {
    err = "truncated error payload";
    return false;
  }
  if (to_string(out.code) == std::string("unknown")) {
    err = "unknown error code";
    return false;
  }
  return true;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (poisoned_) return;  // stream already unrecoverable; drop
  // Compact the consumed prefix before appending so a long-lived
  // connection's buffer stays proportional to one frame.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Status FrameDecoder::next(Frame& frame, ErrorCode& error,
                                        std::string& error_message) {
  if (poisoned_) {
    error = poison_code_;
    error_message = poison_message_;
    return Status::kError;
  }
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderBytes) return Status::kNeedMore;
  const std::uint8_t* h = buf_.data() + pos_;

  const auto poison = [&](ErrorCode code, std::string msg) {
    poisoned_ = true;
    poison_code_ = code;
    poison_message_ = std::move(msg);
    error = poison_code_;
    error_message = poison_message_;
    return Status::kError;
  };

  if (std::memcmp(h, kMagic, 4) != 0) {
    return poison(ErrorCode::kBadMagic, "bad frame magic");
  }
  if (h[4] != kVersion) {
    return poison(ErrorCode::kBadVersion,
                  "unsupported protocol version " + std::to_string(h[4]));
  }
  const std::uint8_t t = h[5];
  const bool known_type =
      t == static_cast<std::uint8_t>(FrameType::kQuery) ||
      t == static_cast<std::uint8_t>(FrameType::kPing) ||
      t == static_cast<std::uint8_t>(FrameType::kResult) ||
      t == static_cast<std::uint8_t>(FrameType::kError) ||
      t == static_cast<std::uint8_t>(FrameType::kPong);
  if (!known_type) {
    return poison(ErrorCode::kBadType,
                  "unknown frame type " + std::to_string(t));
  }
  std::uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<std::uint32_t>(h[8 + i]) << (8 * i);
  }
  if (payload_len > max_payload_) {
    return poison(ErrorCode::kOversized,
                  "payload length " + std::to_string(payload_len) +
                      " exceeds the " + std::to_string(max_payload_) +
                      "-byte frame bound");
  }
  if (avail < kHeaderBytes + payload_len) return Status::kNeedMore;

  frame.type = static_cast<FrameType>(t);
  frame.payload.assign(h + kHeaderBytes, h + kHeaderBytes + payload_len);
  pos_ += kHeaderBytes + payload_len;
  return Status::kFrame;
}

}  // namespace gm::net
