#include "net/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

namespace gm::net {
namespace {

/// splitmix64 — the usual seed-expansion step so nearby seeds don't give
/// correlated streams.
std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xorshift64* — deterministic across platforms, unlike std::mt19937's
/// distribution adapters, whose outputs libstdc++ and libc++ disagree on.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    state = splitmix64(s) | 1ull;
  }
  std::uint64_t next() {
    std::uint64_t x = state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state = x;
    return x * 0x2545F4914F6CDD1Dull;
  }
  /// Uniform in (0, 1] — never 0, so log() below is finite.
  double uniform01() {
    return (static_cast<double>(next() >> 11) + 1.0) / 9007199254740993.0;
  }
};

/// Exact sample quantile (nearest-rank) over an already-sorted vector.
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

WallClock::WallClock() {
  epoch_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double WallClock::now() {
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return static_cast<double>(ns - epoch_ns_) * 1e-9;
}

void WallClock::sleep_until(double t) {
  const double dt = t - now();
  if (dt <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(dt));
}

std::vector<double> poisson_schedule(double qps, double duration_seconds,
                                     std::uint64_t seed) {
  std::vector<double> arrivals;
  if (qps <= 0.0 || duration_seconds <= 0.0) return arrivals;
  Rng rng(seed);
  double t = 0.0;
  for (;;) {
    // Exponential inter-arrival via inversion.
    t += -std::log(rng.uniform01()) / qps;
    if (t >= duration_seconds) break;
    arrivals.push_back(t);
  }
  return arrivals;
}

LoadPoint summarize(const std::vector<double>& latencies_seconds,
                    double offered_qps, double elapsed_seconds,
                    std::uint64_t ok, std::uint64_t errors,
                    std::uint64_t mems_total, double slo_p99_ms) {
  LoadPoint p;
  p.offered_qps = offered_qps;
  p.elapsed_seconds = elapsed_seconds;
  p.sent = ok + errors;
  p.ok = ok;
  p.errors = errors;
  p.mems_total = mems_total;
  p.goodput_qps =
      elapsed_seconds > 0.0 ? static_cast<double>(ok) / elapsed_seconds : 0.0;
  std::vector<double> sorted = latencies_seconds;
  std::sort(sorted.begin(), sorted.end());
  p.p50_ms = quantile_sorted(sorted, 0.50) * 1e3;
  p.p95_ms = quantile_sorted(sorted, 0.95) * 1e3;
  p.p99_ms = quantile_sorted(sorted, 0.99) * 1e3;
  p.max_ms = sorted.empty() ? 0.0 : sorted.back() * 1e3;
  // An SLO only holds when requests actually succeeded: an all-error run
  // with empty latencies must not pass as "fast".
  p.slo_ok = (slo_p99_ms <= 0.0 || p.p99_ms <= slo_p99_ms) && ok > 0 &&
             errors == 0;
  return p;
}

LoadPoint run_open_loop(Clock& clock, const LoadgenConfig& cfg,
                        const SendFn& send, double slo_p99_ms) {
  const std::vector<double> schedule =
      poisson_schedule(cfg.offered_qps, cfg.duration_seconds, cfg.seed);
  const std::size_t lanes = std::max<std::size_t>(1, cfg.connections);
  // Rebase the schedule on the clock's current time so back-to-back runs
  // (a gate point, then every sweep point) each start their own epoch —
  // otherwise every arrival of a later run is already "in the past" and
  // the whole run degenerates into one burst with inflated latencies.
  const double base = clock.now();

  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::vector<double> latencies;
  latencies.reserve(schedule.size());
  std::uint64_t ok = 0, errors = 0, mems_total = 0;

  const auto lane_loop = [&](std::size_t lane) {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= schedule.size()) return;
      clock.sleep_until(base + schedule[i]);
      const RequestOutcome outcome = send(lane, i);
      const double latency = clock.now() - (base + schedule[i]);
      std::lock_guard lock(mu);
      latencies.push_back(latency);
      if (outcome.ok) {
        ++ok;
        mems_total += outcome.mems;
      } else {
        ++errors;
      }
    }
  };

  if (lanes == 1) {
    lane_loop(0);  // in-thread: mock clocks stay deterministic
  } else {
    std::vector<std::thread> threads;
    threads.reserve(lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      threads.emplace_back(lane_loop, lane);
    }
    for (auto& t : threads) t.join();
  }

  const double elapsed = std::max(clock.now() - base, cfg.duration_seconds);
  return summarize(latencies, cfg.offered_qps, elapsed, ok, errors,
                   mems_total, slo_p99_ms);
}

SloSweep::SloSweep(SweepConfig cfg) : cfg_(cfg) {
  if (cfg_.growth <= 1.0) cfg_.growth = 1.5;
  if (cfg_.start_qps <= 0.0) cfg_.start_qps = 1.0;
}

double SloSweep::next_load() const {
  if (done_) return 0.0;
  if (points_.empty()) return std::min(cfg_.start_qps, cfg_.max_qps);
  return std::min(points_.back().offered_qps * cfg_.growth, cfg_.max_qps);
}

void SloSweep::record(const LoadPoint& point) {
  points_.push_back(point);
  if (!point.slo_ok) {
    done_ = true;  // found the knee: first offered load the SLO breaks at
  } else if (point.offered_qps >= cfg_.max_qps) {
    done_ = true;  // capped out without a violation
  } else if (points_.size() >= cfg_.max_points) {
    done_ = true;
  }
}

bool SloSweep::done() const { return done_; }

double SloSweep::saturation_qps() const {
  double best = 0.0;
  for (const LoadPoint& p : points_) {
    if (p.slo_ok && p.offered_qps > best) best = p.offered_qps;
  }
  return best;
}

}  // namespace gm::net
