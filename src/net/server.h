// Non-blocking epoll network front end for MemService (docs/SERVING.md).
//
// Topology: one acceptor thread (listen socket, loopback by default) plus N
// worker event threads, each running an edge-triggered epoll loop over its
// share of the connections. Accepted sockets are assigned round-robin; all
// socket reads, frame decoding, admission control, and response writes for
// a connection happen on its worker thread, while completions arrive from
// the MemService dispatcher thread through a mutex-guarded per-connection
// outbox plus an eventfd wakeup — the loop never blocks on a request.
//
// Admission control happens at the wire, before a request can occupy a
// queue slot:
//   * connection cap        -> kTooManyConnections error frame, close
//   * draining (shutdown)   -> kShuttingDown error frame
//   * per-tenant quota      -> kQuotaExceeded error frame
//   * queue-depth load shed -> kOverloaded error frame (typed, not a stall
//                              and not a disconnect)
// plus MemService::submit's own validation (kInvalid -> kInvalidQuery) and
// backpressure (kRejected -> kOverloaded).
//
// Byte streams are framed by net::FrameDecoder, so partial reads and
// single-byte writes never block the loop; a malformed stream gets a typed
// error frame and a close (docs/SERVING.md#the-wire-protocol).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "serve/service.h"

namespace gm::serve {
class ReferenceRegistry;
class Tenant;
}  // namespace gm::serve

namespace gm::net {

struct ServerConfig {
  /// TCP port; 0 binds an ephemeral port (read it back via Server::port()).
  std::uint16_t port = 0;
  /// Bind 0.0.0.0 instead of 127.0.0.1. The test rigs and benches all run
  /// on loopback; opening the server to the network is an explicit choice.
  bool bind_any = false;
  /// Worker event threads (>= 1). Connections are assigned round-robin.
  std::uint32_t workers = 2;
  /// Connection cap: accepts beyond this answer kTooManyConnections and
  /// close immediately.
  std::size_t max_connections = 256;
  /// Per-tenant in-flight request quota; 0 = unlimited. In single-service
  /// mode the one implicit tenant ("") gets the whole quota.
  std::size_t tenant_quota = 0;
  /// Load shedding tied to queue depth: a query arriving while the target
  /// service's queue holds >= shed_fraction * queue_capacity requests is
  /// answered kOverloaded instead of being submitted. 1.0 still sheds
  /// (typed) at exactly-full; values > 1 disable shedding entirely.
  double shed_fraction = 0.9;
  /// Per-frame payload bound; larger length fields are a protocol error.
  std::uint32_t max_frame_bytes = kMaxPayloadBytes;
  /// Seconds shutdown() waits for in-flight requests, then for outboxes to
  /// flush, before tearing connections down anyway.
  double drain_timeout_seconds = 30.0;
};

/// Wire-level counters, readable any time via Server::stats(). Mirrored
/// into the obs metrics registry under "serve.net.*" when obs is enabled.
struct NetStats {
  std::uint64_t accepted = 0;
  std::uint64_t refused_connections = 0;  ///< over max_connections
  std::uint64_t closed = 0;
  std::uint64_t active_connections = 0;   ///< at snapshot time
  std::uint64_t frames_in = 0;            ///< well-formed frames decoded
  std::uint64_t queries = 0;
  std::uint64_t responses_ok = 0;         ///< kResult frames written
  std::uint64_t responses_error = 0;      ///< kError frames written
  std::uint64_t malformed = 0;            ///< protocol errors (stream closed)
  std::uint64_t overloaded = 0;           ///< load-shed + queue-full
  std::uint64_t quota_exceeded = 0;
  std::uint64_t unknown_tenant = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t inflight = 0;             ///< at snapshot time
};

/// The epoll front end. Construct with a running MemService (single
/// reference) or a ReferenceRegistry (multi-tenant; the frame's tenant
/// field routes, falling back to `default_tenant`). The listening socket is
/// live when the constructor returns; destruction performs a graceful
/// shutdown.
class Server {
 public:
  Server(ServerConfig cfg, serve::MemService& service);
  Server(ServerConfig cfg, serve::ReferenceRegistry& registry,
         std::string default_tenant);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolved when cfg.port == 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Graceful shutdown: stop accepting, answer new queries with
  /// kShuttingDown, wait (up to drain_timeout_seconds) for in-flight
  /// requests to complete and their responses to flush, then close every
  /// connection and join all threads. Idempotent.
  void shutdown();

  /// True once shutdown has begun (new work is being refused).
  bool draining() const noexcept { return draining_.load(); }

  NetStats stats() const;

 private:
  struct Connection;
  struct Worker;

  void start();
  void acceptor_loop();
  void worker_loop(Worker& w);
  void handle_accept();
  void handle_readable(Worker& w, const std::shared_ptr<Connection>& conn);
  void process_frame(Worker& w, const std::shared_ptr<Connection>& conn,
                     FrameDecoder::Frame&& frame);
  void handle_query(Worker& w, const std::shared_ptr<Connection>& conn,
                    QueryFrame&& qf,
                    std::chrono::steady_clock::time_point arrival);
  void enqueue_response(const std::shared_ptr<Connection>& conn,
                        std::vector<std::uint8_t> bytes,
                        std::chrono::steady_clock::time_point arrival,
                        bool is_error, bool close_after);
  void flush(Worker& w, const std::shared_ptr<Connection>& conn);
  void close_connection(Worker& w, const std::shared_ptr<Connection>& conn);
  void publish_stats() const;

  /// Resolves the service a query routes to; null + error code on failure.
  serve::MemService* route(const std::string& tenant,
                           std::shared_ptr<serve::Tenant>& keepalive,
                           ErrorCode& err, std::string& err_msg);

  bool quota_acquire(const std::string& tenant);
  void quota_release(const std::string& tenant);

  /// Parks a completion's tenant keepalive for release on the acceptor
  /// thread. Dropping it on the completion (dispatcher) thread would be a
  /// self-join when it is the last reference: ~Tenant joins that very
  /// dispatcher.
  void retire(std::shared_ptr<serve::Tenant> tenant);
  void drain_retired();

  ServerConfig cfg_;
  serve::MemService* service_ = nullptr;          ///< single-service mode
  serve::ReferenceRegistry* registry_ = nullptr;  ///< registry mode
  std::string default_tenant_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  int acceptor_event_fd_ = -1;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> next_worker_{0};

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  bool joined_ = false;
  std::mutex shutdown_mu_;

  std::mutex quota_mu_;
  std::unordered_map<std::string, std::size_t> tenant_inflight_;

  std::mutex retired_mu_;
  std::vector<std::shared_ptr<serve::Tenant>> retired_;

  mutable std::mutex stats_mu_;
  NetStats stats_;
  std::atomic<std::uint64_t> inflight_{0};
  /// Responses enqueued but not yet fully handed to the kernel (or dropped
  /// with a dead connection) — the shutdown flush-drain predicate.
  std::atomic<std::uint64_t> pending_out_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace gm::net
