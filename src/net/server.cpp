#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/registry.h"
#include "serve/registry.h"

namespace gm::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("net: " + what + ": " + std::strerror(errno));
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

/// One TCP connection. Owned by its worker's fd map; completions hold a
/// shared_ptr so a response arriving after close is dropped, never written
/// to a dead (possibly reused) fd.
struct Server::Connection {
  int fd = -1;
  std::size_t worker = 0;
  FrameDecoder decoder;

  struct OutMsg {
    std::vector<std::uint8_t> bytes;
    std::size_t off = 0;
    std::chrono::steady_clock::time_point arrival{};
    bool timed = false;    ///< arrival is a query arrival -> record wire latency
    bool is_error = false;
  };

  // Outbox and flags shared with completion threads.
  std::mutex mu;
  std::deque<OutMsg> outbox;
  bool close_after_flush = false;      ///< protocol error: close once flushed
  std::atomic<bool> closed{false};     ///< fd closed; drop late responses
};

/// One event thread: its epoll, its eventfd, and the connections assigned
/// to it. `incoming` and `dirty` are the only cross-thread entry points.
struct Server::Worker {
  std::size_t index = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;
  std::unordered_map<int, std::shared_ptr<Connection>> conns;  ///< thread-local

  std::mutex mu;
  std::vector<int> incoming;                            ///< accepted fds
  std::vector<std::weak_ptr<Connection>> dirty;         ///< need a flush

  void wake() const {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(event_fd, &one, sizeof(one));
  }
};

Server::Server(ServerConfig cfg, serve::MemService& service)
    : cfg_(std::move(cfg)), service_(&service) {
  start();
}

Server::Server(ServerConfig cfg, serve::ReferenceRegistry& registry,
               std::string default_tenant)
    : cfg_(std::move(cfg)),
      registry_(&registry),
      default_tenant_(std::move(default_tenant)) {
  start();
}

Server::~Server() { shutdown(); }

void Server::start() {
  if (cfg_.workers == 0) cfg_.workers = 1;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      htonl(cfg_.bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("bind");
  }
  if (::listen(listen_fd_, 128) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  acceptor_event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (acceptor_event_fd_ < 0) throw_errno("eventfd");

  workers_.reserve(cfg_.workers);
  for (std::uint32_t i = 0; i < cfg_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (w->epoll_fd < 0) throw_errno("epoll_create1");
    w->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->event_fd < 0) throw_errno("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered is fine for the wake counter
    ev.data.fd = w->event_fd;
    if (::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->event_fd, &ev) < 0) {
      throw_errno("epoll_ctl eventfd");
    }
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) {
    Worker* wp = w.get();
    w->thread = std::thread([this, wp] { worker_loop(*wp); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

void Server::acceptor_loop() {
  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(ep, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = acceptor_event_fd_;
  ::epoll_ctl(ep, EPOLL_CTL_ADD, acceptor_event_fd_, &ev);

  while (!stopping_.load() && !draining_.load()) {
    epoll_event events[8];
    const int n = ::epoll_wait(ep, events, 8, 500);
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == listen_fd_) handle_accept();
      if (events[i].data.fd == acceptor_event_fd_) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(acceptor_event_fd_, &drain, sizeof(drain));
      }
    }
    drain_retired();  // release parked tenant keepalives off-dispatcher
  }
  ::close(ep);
}

void Server::retire(std::shared_ptr<serve::Tenant> tenant) {
  if (!tenant) return;
  std::lock_guard lock(retired_mu_);
  retired_.push_back(std::move(tenant));
}

void Server::drain_retired() {
  std::vector<std::shared_ptr<serve::Tenant>> victims;
  {
    std::lock_guard lock(retired_mu_);
    victims.swap(retired_);
  }
  // victims' references drop here, on the calling (acceptor or shutdown)
  // thread — a safe place for ~Tenant to join its dispatcher.
}

void Server::handle_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the loop retries on next event
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::size_t active;
    {
      std::lock_guard lock(stats_mu_);
      active = stats_.active_connections;
    }
    if (draining_.load() || active >= cfg_.max_connections) {
      // Typed refusal instead of a silent close: one best-effort
      // non-blocking write of a kTooManyConnections / kShuttingDown error.
      ErrorFrame e;
      e.code = draining_.load() ? ErrorCode::kShuttingDown
                                : ErrorCode::kTooManyConnections;
      e.message = draining_.load()
                      ? "server is draining"
                      : "connection cap (" +
                            std::to_string(cfg_.max_connections) + ") reached";
      const auto bytes = encode_error(e);
      [[maybe_unused]] const ssize_t w =
          ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      ::close(fd);
      std::lock_guard lock(stats_mu_);
      ++stats_.refused_connections;
      continue;
    }

    {
      std::lock_guard lock(stats_mu_);
      ++stats_.accepted;
      ++stats_.active_connections;
    }
    Worker& w = *workers_[next_worker_.fetch_add(1) % workers_.size()];
    {
      std::lock_guard lock(w.mu);
      w.incoming.push_back(fd);
    }
    w.wake();
  }
}

void Server::worker_loop(Worker& w) {
  while (!stopping_.load()) {
    epoll_event events[32];
    const int n = ::epoll_wait(w.epoll_fd, events, 32, 500);
    if (stopping_.load()) break;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == w.event_fd) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(w.event_fd, &drain, sizeof(drain));
        // Register newly accepted connections.
        std::vector<int> incoming;
        std::vector<std::weak_ptr<Connection>> dirty;
        {
          std::lock_guard lock(w.mu);
          incoming.swap(w.incoming);
          dirty.swap(w.dirty);
        }
        for (const int fd : incoming) {
          auto conn = std::make_shared<Connection>();
          conn->fd = fd;
          conn->worker = w.index;
          conn->decoder = FrameDecoder(cfg_.max_frame_bytes);
          epoll_event ev{};
          // ET with both directions armed up front: we always read to
          // EAGAIN, and EPOLLOUT edges resume a flush that hit EAGAIN.
          ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
          ev.data.fd = fd;
          if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
            ::close(fd);
            std::lock_guard lock(stats_mu_);
            --stats_.active_connections;
            ++stats_.closed;
            continue;
          }
          w.conns.emplace(fd, std::move(conn));
        }
        // Flush connections with freshly enqueued responses.
        for (auto& weak : dirty) {
          if (auto conn = weak.lock(); conn && !conn->closed) {
            flush(w, conn);
          }
        }
        continue;
      }
      const auto it = w.conns.find(events[i].data.fd);
      if (it == w.conns.end()) continue;  // closed earlier this round
      const std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        close_connection(w, conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) flush(w, conn);
      if (events[i].events & (EPOLLIN | EPOLLRDHUP)) {
        handle_readable(w, conn);
      }
    }
  }
  // Teardown: close every connection this worker still owns.
  for (auto& [fd, conn] : w.conns) {
    {
      std::lock_guard lock(conn->mu);
      if (conn->closed) continue;
      conn->closed = true;
      pending_out_.fetch_sub(conn->outbox.size());
      conn->outbox.clear();
    }
    ::close(fd);
    std::lock_guard lock(stats_mu_);
    --stats_.active_connections;
    ++stats_.closed;
  }
  w.conns.clear();
}

void Server::handle_readable(Worker& w,
                             const std::shared_ptr<Connection>& conn) {
  bool peer_closed = false;
  for (;;) {
    std::uint8_t buf[16384];
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      {
        std::lock_guard lock(stats_mu_);
        stats_.bytes_in += static_cast<std::uint64_t>(n);
      }
      conn->decoder.feed(buf, static_cast<std::size_t>(n));
      // Pump complete frames as they materialize so buffered memory stays
      // bounded by one frame, not one read burst.
      for (;;) {
        FrameDecoder::Frame frame;
        ErrorCode err;
        std::string err_msg;
        const auto st = conn->decoder.next(frame, err, err_msg);
        if (st == FrameDecoder::Status::kNeedMore) break;
        if (st == FrameDecoder::Status::kError) {
          {
            std::lock_guard lock(stats_mu_);
            ++stats_.malformed;
          }
          ErrorFrame e;
          e.code = err;
          e.message = std::move(err_msg);
          enqueue_response(conn, encode_error(e),
                           std::chrono::steady_clock::now(),
                           /*is_error=*/true, /*close_after=*/true);
          // The stream is unrecoverable; stop reading it.
          return;
        }
        {
          std::lock_guard lock(stats_mu_);
          ++stats_.frames_in;
        }
        process_frame(w, conn, std::move(frame));
        if (conn->closed) return;
      }
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    peer_closed = true;  // ECONNRESET and friends
    break;
  }
  if (peer_closed) close_connection(w, conn);
}

void Server::process_frame(Worker& w, const std::shared_ptr<Connection>& conn,
                           FrameDecoder::Frame&& frame) {
  const auto arrival = std::chrono::steady_clock::now();
  switch (frame.type) {
    case FrameType::kPing:
      enqueue_response(conn, encode_pong(), arrival, /*is_error=*/false,
                       /*close_after=*/false);
      return;
    case FrameType::kQuery: {
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.queries;
      }
      QueryFrame qf;
      std::string perr;
      if (!parse_query(frame.payload, qf, perr)) {
        std::lock_guard lock(stats_mu_);
        ++stats_.malformed;
        ErrorFrame e;
        e.code = ErrorCode::kMalformed;
        e.message = std::move(perr);
        // Framing was intact — only this payload is bad — but a client
        // producing it is buggy; close after the typed answer.
        enqueue_response(conn, encode_error(e), arrival, true, true);
        return;
      }
      handle_query(w, conn, std::move(qf), arrival);
      return;
    }
    case FrameType::kResult:
    case FrameType::kError:
    case FrameType::kPong: {
      // Server-to-client types arriving at the server are a protocol error.
      std::lock_guard lock(stats_mu_);
      ++stats_.malformed;
      ErrorFrame e;
      e.code = ErrorCode::kBadType;
      e.message = std::string("unexpected client frame type ") +
                  to_string(frame.type);
      enqueue_response(conn, encode_error(e), arrival, true, true);
      return;
    }
  }
}

serve::MemService* Server::route(const std::string& tenant,
                                 std::shared_ptr<serve::Tenant>& keepalive,
                                 ErrorCode& err, std::string& err_msg) {
  if (registry_ == nullptr) {
    if (!tenant.empty()) {
      err = ErrorCode::kUnknownTenant;
      err_msg = "tenant '" + tenant + "': this server serves one unnamed "
                "reference";
      return nullptr;
    }
    return service_;
  }
  std::string name = tenant.empty() ? default_tenant_ : tenant;
  if (name.empty()) {
    err = ErrorCode::kUnknownTenant;
    err_msg = "no tenant named in the request and the server has no default";
    return nullptr;
  }
  try {
    keepalive = registry_->acquire(name);
    return &keepalive->service();
  } catch (const std::exception& e) {
    err = ErrorCode::kUnknownTenant;
    err_msg = e.what();
    return nullptr;
  }
}

bool Server::quota_acquire(const std::string& tenant) {
  if (cfg_.tenant_quota == 0) return true;
  std::lock_guard lock(quota_mu_);
  std::size_t& used = tenant_inflight_[tenant];
  if (used >= cfg_.tenant_quota) return false;
  ++used;
  return true;
}

void Server::quota_release(const std::string& tenant) {
  if (cfg_.tenant_quota == 0) return;
  std::lock_guard lock(quota_mu_);
  const auto it = tenant_inflight_.find(tenant);
  if (it != tenant_inflight_.end() && it->second > 0) --it->second;
}

void Server::handle_query(Worker& w, const std::shared_ptr<Connection>& conn,
                          QueryFrame&& qf,
                          std::chrono::steady_clock::time_point arrival) {
  (void)w;
  const auto refuse = [&](ErrorCode code, std::string msg) {
    ErrorFrame e;
    e.code = code;
    e.id = qf.id;
    e.message = std::move(msg);
    enqueue_response(conn, encode_error(e), arrival, /*is_error=*/true,
                     /*close_after=*/false);
  };

  if (draining_.load()) {
    refuse(ErrorCode::kShuttingDown, "server is draining");
    return;
  }

  std::shared_ptr<serve::Tenant> keepalive;
  ErrorCode rerr = ErrorCode::kFailed;
  std::string rerr_msg;
  serve::MemService* svc = route(qf.tenant, keepalive, rerr, rerr_msg);
  if (svc == nullptr) {
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.unknown_tenant;
    }
    refuse(rerr, std::move(rerr_msg));
    return;
  }

  const std::string quota_key = qf.tenant.empty() ? default_tenant_ : qf.tenant;
  if (!quota_acquire(quota_key)) {
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.quota_exceeded;
    }
    refuse(ErrorCode::kQuotaExceeded,
           "tenant '" + quota_key + "' is at its in-flight quota of " +
               std::to_string(cfg_.tenant_quota));
    return;
  }

  // Load shedding tied to queue depth: answer OVERLOAD at the wire instead
  // of letting the queue's tail latency stall every connection.
  if (cfg_.shed_fraction <= 1.0) {
    const std::size_t cap = svc->config().queue_capacity;
    const auto shed_at = static_cast<std::size_t>(
        static_cast<double>(cap) * cfg_.shed_fraction);
    if (svc->queue_depth() >= std::max<std::size_t>(1, shed_at)) {
      quota_release(quota_key);
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.overloaded;
      }
      refuse(ErrorCode::kOverloaded,
             "queue depth at the shed threshold; retry later");
      return;
    }
  }

  serve::QueryRequest req;
  req.id = qf.id;
  // Lenient decode: non-ACGT bytes become masked invalid bases, exactly the
  // FASTA default policy — they match nothing and never crash the decoder.
  req.query = seq::Sequence::from_string_lenient(qf.query);
  req.deadline_seconds = static_cast<double>(qf.deadline_ms) / 1000.0;
  req.min_length = qf.min_length;

  inflight_.fetch_add(1);
  Server* self = this;
  const std::string rid = qf.id;
  svc->submit(
      std::move(req),
      [self, conn, keepalive, quota_key, rid,
       arrival](const serve::QueryResult& r) mutable {
        self->quota_release(quota_key);
        std::vector<std::uint8_t> bytes;
        bool is_error = true;
        switch (r.status) {
          case serve::QueryStatus::kOk: {
            ResultFrame rf;
            rf.id = rid;
            rf.warm = r.stats.index_cache_hit;
            const auto us = [](double s) {
              if (s <= 0.0) return std::uint32_t{0};
              const double v = s * 1e6;
              return v >= 4294967295.0 ? std::uint32_t{4294967295u}
                                       : static_cast<std::uint32_t>(v);
            };
            rf.queue_us = us(r.queue_seconds);
            rf.service_us = us(r.service_seconds);
            rf.mems = r.mems;
            bytes = encode_result(rf);
            is_error = false;
            break;
          }
          case serve::QueryStatus::kInvalid: {
            ErrorFrame e{ErrorCode::kInvalidQuery, rid, r.error};
            bytes = encode_error(e);
            break;
          }
          case serve::QueryStatus::kExpired: {
            ErrorFrame e{ErrorCode::kExpired, rid, r.error};
            bytes = encode_error(e);
            break;
          }
          case serve::QueryStatus::kRejected: {
            const bool down = r.error.find("shut down") != std::string::npos;
            ErrorFrame e{down ? ErrorCode::kShuttingDown
                              : ErrorCode::kOverloaded,
                         rid, r.error};
            bytes = encode_error(e);
            if (!down) {
              std::lock_guard lock(self->stats_mu_);
              ++self->stats_.overloaded;
            }
            break;
          }
          case serve::QueryStatus::kFailed: {
            ErrorFrame e{ErrorCode::kFailed, rid, r.error};
            bytes = encode_error(e);
            break;
          }
        }
        self->enqueue_response(conn, std::move(bytes), arrival,
                               is_error, /*close_after=*/false);
        // This callback runs (and is later destroyed) on the tenant's own
        // dispatcher thread. If its keepalive were the last Tenant
        // reference, dropping it here would make ~MemService join the very
        // thread we are on — so park it for the acceptor thread instead.
        self->retire(std::move(keepalive));
        self->inflight_.fetch_sub(1);
        self->drain_cv_.notify_all();
      });
}

void Server::enqueue_response(const std::shared_ptr<Connection>& conn,
                              std::vector<std::uint8_t> bytes,
                              std::chrono::steady_clock::time_point arrival,
                              bool is_error, bool close_after) {
  if (stopping_.load()) return;  // workers gone; nothing can flush this
  {
    std::lock_guard lock(conn->mu);
    if (conn->closed) return;  // peer went away while the request ran
    Connection::OutMsg msg;
    msg.bytes = std::move(bytes);
    msg.arrival = arrival;
    msg.timed = true;
    msg.is_error = is_error;
    conn->outbox.push_back(std::move(msg));
    pending_out_.fetch_add(1);
    if (close_after) conn->close_after_flush = true;
  }
  Worker& w = *workers_[conn->worker];
  {
    std::lock_guard lock(w.mu);
    w.dirty.push_back(conn);
  }
  w.wake();
}

void Server::flush(Worker& w, const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  {
    std::lock_guard lock(conn->mu);
    if (conn->closed) return;
    while (!conn->outbox.empty()) {
      Connection::OutMsg& msg = conn->outbox.front();
      while (msg.off < msg.bytes.size()) {
        const ssize_t n =
            ::send(conn->fd, msg.bytes.data() + msg.off,
                   msg.bytes.size() - msg.off, MSG_NOSIGNAL);
        if (n > 0) {
          msg.off += static_cast<std::size_t>(n);
          std::lock_guard slock(stats_mu_);
          stats_.bytes_out += static_cast<std::uint64_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          return;  // kernel buffer full; EPOLLOUT edge resumes this flush
        }
        if (n < 0 && errno == EINTR) continue;
        close_now = true;  // EPIPE/ECONNRESET: peer is gone
        break;
      }
      if (close_now) break;
      // Frame fully handed to the kernel: account the response.
      {
        std::lock_guard slock(stats_mu_);
        if (msg.is_error) {
          ++stats_.responses_error;
        } else {
          ++stats_.responses_ok;
        }
      }
      if (msg.timed && obs::enabled()) {
        obs::Registry::global()
            .metrics()
            .distribution("serve.net.wire_seconds",
                          "request arrival -> response handed to the kernel")
            .observe(seconds_since(msg.arrival));
      }
      conn->outbox.pop_front();
      pending_out_.fetch_sub(1);
    }
    if (!close_now && conn->close_after_flush && conn->outbox.empty()) {
      close_now = true;
    }
  }
  if (close_now) close_connection(w, conn);
  if (obs::enabled()) publish_stats();
  drain_cv_.notify_all();  // shutdown may be waiting on an empty outbox
}

void Server::close_connection(Worker& w,
                              const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    // Unflushed responses die with the connection; keep the drain
    // accounting honest so shutdown() never waits on them.
    pending_out_.fetch_sub(conn->outbox.size());
    conn->outbox.clear();
  }
  ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  w.conns.erase(conn->fd);
  std::lock_guard lock(stats_mu_);
  --stats_.active_connections;
  ++stats_.closed;
}

void Server::shutdown() {
  std::lock_guard shutdown_lock(shutdown_mu_);
  if (joined_) return;
  draining_.store(true);
  // Wake the acceptor so it observes draining_ and exits; its loop also
  // refuses late racers with a typed kShuttingDown frame.
  if (acceptor_event_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(acceptor_event_fd_, &one, sizeof(one));
  }

  // Drain phase 1: in-flight requests complete (their responses enqueue).
  {
    std::unique_lock lock(drain_mu_);
    drain_cv_.wait_for(
        lock, std::chrono::duration<double>(cfg_.drain_timeout_seconds),
        [&] { return inflight_.load() == 0; });
  }
  // Drain phase 2: outboxes flush to the kernel (workers still running).
  {
    std::unique_lock lock(drain_mu_);
    drain_cv_.wait_for(
        lock, std::chrono::duration<double>(cfg_.drain_timeout_seconds),
        [&] { return pending_out_.load() == 0; });
  }

  stopping_.store(true);
  for (auto& w : workers_) w->wake();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
    if (w->epoll_fd >= 0) ::close(w->epoll_fd);
    if (w->event_fd >= 0) ::close(w->event_fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_event_fd_ >= 0) {
    ::close(acceptor_event_fd_);
    acceptor_event_fd_ = -1;
  }
  joined_ = true;
  // The acceptor is gone; release any tenant keepalives parked by late
  // completions here on the shutdown caller's thread.
  drain_retired();
  publish_stats();
}

NetStats Server::stats() const {
  std::lock_guard lock(stats_mu_);
  NetStats out = stats_;
  out.inflight = inflight_.load();
  return out;
}

void Server::publish_stats() const {
  if (!obs::enabled()) return;
  const NetStats s = stats();
  obs::Metrics& m = obs::Registry::global().metrics();
  const auto set = [&m](const std::string& name, std::uint64_t v,
                        const std::string& help = {}) {
    m.gauge(name, help).set(static_cast<double>(v));
  };
  set("serve.net.accepted", s.accepted, "connections accepted");
  set("serve.net.refused_connections", s.refused_connections,
      "accepts refused over the connection cap");
  set("serve.net.closed", s.closed);
  set("serve.net.active_connections", s.active_connections);
  set("serve.net.frames_in", s.frames_in);
  set("serve.net.queries", s.queries);
  set("serve.net.responses_ok", s.responses_ok,
      "kResult frames written (goodput)");
  set("serve.net.responses_error", s.responses_error);
  set("serve.net.malformed", s.malformed,
      "protocol errors answered typed + closed");
  set("serve.net.overloaded", s.overloaded,
      "queries shed at the wire or rejected by the queue");
  set("serve.net.quota_exceeded", s.quota_exceeded);
  set("serve.net.unknown_tenant", s.unknown_tenant);
  set("serve.net.bytes_in", s.bytes_in);
  set("serve.net.bytes_out", s.bytes_out);
  set("serve.net.inflight", s.inflight);
}

}  // namespace gm::net
