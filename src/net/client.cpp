#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace gm::net {

Client::Client(std::uint16_t port, double timeout_seconds) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("net client: socket: ") +
                             std::strerror(errno));
  }
  if (timeout_seconds > 0.0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds - std::floor(timeout_seconds)) * 1e6);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(std::string("net client: connect: ") +
                             std::strerror(saved));
  }
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

bool Client::send_raw(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd_, p + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool Client::read_reply(Reply& out) {
  for (;;) {
    FrameDecoder::Frame frame;
    ErrorCode err;
    std::string err_msg;
    const auto st = decoder_.next(frame, err, err_msg);
    if (st == FrameDecoder::Status::kError) return false;
    if (st == FrameDecoder::Status::kFrame) {
      out = Reply{};
      out.type = frame.type;
      std::string perr;
      switch (frame.type) {
        case FrameType::kResult:
          return parse_result(frame.payload, out.result, perr);
        case FrameType::kError:
          return parse_error(frame.payload, out.error, perr);
        case FrameType::kPong:
          return true;
        default:
          return false;  // client-direction frame from a server: broken
      }
    }
    std::uint8_t buf[16384];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF, timeout (EAGAIN under SO_RCVTIMEO), or reset
  }
}

bool Client::query(const QueryFrame& q, Reply& out) {
  if (!send_frame(encode_query(q))) return false;
  return read_reply(out);
}

bool Client::ping() {
  if (!send_frame(encode_ping())) return false;
  Reply r;
  return read_reply(r) && r.type == FrameType::kPong;
}

void Client::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace gm::net
