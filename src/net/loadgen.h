// Open-loop Poisson load generator for the serving front end.
//
// Open loop means arrivals are scheduled ahead of time from a seeded
// Poisson process and fired at their scheduled instants regardless of how
// the server is doing; latency is measured from the *scheduled* arrival,
// not from when the sender got around to writing — the standard
// coordinated-omission correction. A saturated server therefore shows up
// as exploding tail latency, exactly what the SLO sweep in bench_serve_slo
// walks up the offered-load axis to find.
//
// Everything that decides or aggregates is pure and clock-abstracted:
// poisson_schedule() is a deterministic function of (qps, duration, seed),
// run_open_loop() drives any Clock (tests inject a mock; no sockets, no
// wall time), summarize() turns raw latencies into a LoadPoint, and
// SloSweep is a tiny state machine over LoadPoints. The only wall-clock,
// socket-touching piece is the SendFn the bench wires up over net::Client.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace gm::net {

/// Seconds-based clock the generator runs against. The mock used in tests
/// advances now() to the sleep target instantly.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now() = 0;
  /// Blocks (or pretends to) until now() >= t; past targets return at once.
  virtual void sleep_until(double t) = 0;
};

/// steady_clock-backed Clock; t=0 is construction time.
class WallClock final : public Clock {
 public:
  WallClock();
  double now() override;
  void sleep_until(double t) override;

 private:
  std::uint64_t epoch_ns_ = 0;
};

/// Arrival times (seconds, ascending, within [0, duration)) of a Poisson
/// process at rate `qps`, from a seeded xorshift engine: same inputs, same
/// schedule, on every platform.
std::vector<double> poisson_schedule(double qps, double duration_seconds,
                                     std::uint64_t seed);

/// What one request came back as; the transport maps protocol replies to
/// this (kResult -> ok with its MEM count, anything else -> !ok).
struct RequestOutcome {
  bool ok = false;
  std::uint32_t mems = 0;
};

/// Transport hook: issue request `index` on connection lane `lane`, return
/// its outcome. Called from `connections` generator threads concurrently
/// (lane-distinct calls only).
using SendFn = std::function<RequestOutcome(std::size_t lane,
                                            std::size_t index)>;

struct LoadgenConfig {
  double offered_qps = 50.0;
  double duration_seconds = 2.0;
  std::uint64_t seed = 1;
  /// Generator threads / connection lanes. Use 1 with a mock clock — a
  /// mock's time only moves deterministically single-threaded.
  std::size_t connections = 4;
};

/// One measured point on the load curve.
struct LoadPoint {
  double offered_qps = 0.0;
  double elapsed_seconds = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;       ///< typed error replies + transport failures
  std::uint64_t mems_total = 0;   ///< summed over ok replies (bit-identity key)
  double goodput_qps = 0.0;       ///< ok / elapsed
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0, max_ms = 0.0;
  bool slo_ok = false;            ///< p99 within the sweep's SLO
};

/// Aggregates corrected latencies into a LoadPoint. Quantiles are exact
/// (sorted-sample), not sketch-approximate: the bench gate diffs these
/// numbers, so they must be deterministic. `slo_p99_ms <= 0` disables the
/// SLO check (slo_ok = true).
LoadPoint summarize(const std::vector<double>& latencies_seconds,
                    double offered_qps, double elapsed_seconds,
                    std::uint64_t ok, std::uint64_t errors,
                    std::uint64_t mems_total, double slo_p99_ms);

/// Fires the schedule open-loop against `send` and returns the measured
/// point. The schedule is rebased on clock.now() at entry (so back-to-back
/// runs on one clock each get their own epoch); latency for request i is
/// reply time minus its rebased scheduled arrival.
LoadPoint run_open_loop(Clock& clock, const LoadgenConfig& cfg,
                        const SendFn& send, double slo_p99_ms);

/// The sweep: multiply offered load by `growth` until the SLO breaks, the
/// load cap is hit, or `max_points` points are measured. Pure decision
/// logic — unit-testable without running anything.
struct SweepConfig {
  double start_qps = 25.0;
  double growth = 1.6;     ///< multiplicative step, > 1
  double max_qps = 10000.0;
  double slo_p99_ms = 50.0;
  std::size_t max_points = 12;
};

class SloSweep {
 public:
  explicit SloSweep(SweepConfig cfg);

  /// Offered load to measure next; 0 when the sweep is finished.
  double next_load() const;
  void record(const LoadPoint& point);
  bool done() const;

  const std::vector<LoadPoint>& points() const noexcept { return points_; }
  const SweepConfig& config() const noexcept { return cfg_; }

  /// Highest measured load whose SLO held (0 when even the first violated).
  double saturation_qps() const;

 private:
  SweepConfig cfg_;
  std::vector<LoadPoint> points_;
  bool done_ = false;
};

}  // namespace gm::net
