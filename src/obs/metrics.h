// Metrics registry: named counters, gauges, and distributions with JSON and
// TSV exporters — the machine-readable replacement for reading numbers out
// of ad-hoc stat structs. RunStats/LaunchStats remain the in-process API;
// core::publish_run_stats mirrors every field here under stable names so
// two runs can be diffed mechanically (see docs/OBSERVABILITY.md for the
// naming scheme).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/stats.h"

namespace gm::obs {

/// Monotone event count. Lock-free; safe to bump from kernel-driving
/// threads.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (e.g. a per-run stat). Lock-free.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Value distribution backed by util::Summary (moments) plus a
/// util::Histogram over floor(value) for integer-like observations (seed
/// occurrence counts, per-launch phase counts, ...).
class Distribution {
 public:
  void observe(double x);

  util::Summary summary() const;
  util::Histogram histogram() const;

 private:
  mutable std::mutex mu_;
  util::Summary summary_;
  util::Histogram hist_;
};

/// Name -> metric registry. Lookup is mutex-guarded; returned references
/// stay valid for the registry's lifetime, so hot paths should look up once
/// and hold the reference.
class Metrics {
 public:
  Counter& counter(const std::string& name, const std::string& help = {});
  Gauge& gauge(const std::string& name, const std::string& help = {});
  Distribution& distribution(const std::string& name,
                             const std::string& help = {});

  /// True when `name` exists as the given kind.
  bool has_gauge(const std::string& name) const;

  void clear();

  /// {"counters":{...},"gauges":{...},"distributions":{name:{count,mean,
  /// min,max,variance}}} — non-finite values render as null.
  void write_json(std::ostream& os) const;

  /// "kind<TAB>name<TAB>value" lines (distributions emit one line per
  /// moment), for spreadsheet-free diffing of two runs.
  void write_tsv(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Distribution>> dists_;
  std::map<std::string, std::string> help_;
};

}  // namespace gm::obs
