// Metrics registry: named counters, gauges, and distributions with JSON and
// TSV exporters — the machine-readable replacement for reading numbers out
// of ad-hoc stat structs. RunStats/LaunchStats remain the in-process API;
// core::publish_run_stats mirrors every field here under stable names so
// two runs can be diffed mechanically (see docs/OBSERVABILITY.md for the
// naming scheme).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/sketch.h"
#include "util/stats.h"

namespace gm::obs {

/// Monotone event count. Lock-free; safe to bump from kernel-driving
/// threads.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (e.g. a per-run stat). Lock-free.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// The quantile set every latency metric reports (sketch-backed unless the
/// distribution is in exact mode).
struct Quantiles {
  double p50 = 0.0, p90 = 0.0, p95 = 0.0, p99 = 0.0, max = 0.0;
};

/// Value distribution: util::Summary (moments) + a bounded-memory
/// QuantileSketch (p50/p90/p95/p99/max) + a util::Histogram over
/// floor(value) for integer-like observations (seed occurrence counts,
/// per-launch phase counts, ...). The histogram is capped at
/// kMaxHistogramBins distinct keys — once full, new keys collapse into a
/// single overflow bin at the largest existing key — so no component grows
/// without bound on long serve runs.
///
/// Exact mode (opt-in, tests only): set_exact(true) additionally retains
/// raw samples so quantile() is exact instead of sketch-approximate; memory
/// is then proportional to the sample count again, which is the point —
/// accuracy tests compare the sketch against it.
class Distribution {
 public:
  static constexpr std::size_t kMaxHistogramBins = 4096;

  void observe(double x);

  util::Summary summary() const;
  util::Histogram histogram() const;
  QuantileSketch sketch() const;

  /// q-quantile estimate (exact when in exact mode); NaN when empty.
  double quantile(double q) const;
  Quantiles quantiles() const;

  /// Enables raw-sample retention from now on (does not backfill).
  void set_exact(bool on);
  bool exact() const;
  /// Raw samples retained in exact mode (empty otherwise).
  std::vector<double> samples() const;

 private:
  mutable std::mutex mu_;
  util::Summary summary_;
  util::Histogram hist_;
  QuantileSketch sketch_;
  bool exact_ = false;
  std::vector<double> samples_;
};

/// Name -> metric registry. Lookup is mutex-guarded; returned references
/// stay valid for the registry's lifetime, so hot paths should look up once
/// and hold the reference.
class Metrics {
 public:
  Counter& counter(const std::string& name, const std::string& help = {});
  Gauge& gauge(const std::string& name, const std::string& help = {});
  Distribution& distribution(const std::string& name,
                             const std::string& help = {});

  /// True when `name` exists as the given kind.
  bool has_gauge(const std::string& name) const;
  bool has_distribution(const std::string& name) const;

  void clear();

  /// Visits every metric (sorted by name) under the registry lock — the
  /// enumeration primitive MetricsSnapshot::capture builds on. The
  /// callbacks must not call back into this Metrics.
  void visit(
      const std::function<void(const std::string&, const Counter&)>& on_counter,
      const std::function<void(const std::string&, const Gauge&)>& on_gauge,
      const std::function<void(const std::string&, const Distribution&)>&
          on_distribution) const;

  /// Help strings registered so far (name -> help).
  std::map<std::string, std::string> help() const;

  /// {"counters":{...},"gauges":{...},"distributions":{name:{count,mean,
  /// min,max,variance,p50,p90,p95,p99}}} — non-finite values render as
  /// null. (Delegates to MetricsSnapshot.)
  void write_json(std::ostream& os) const;

  /// "kind<TAB>name<TAB>value" lines (distributions emit one line per
  /// moment), for spreadsheet-free diffing of two runs.
  void write_tsv(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Distribution>> dists_;
  std::map<std::string, std::string> help_;
};

}  // namespace gm::obs
