#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace gm::obs {
namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void Distribution::observe(double x) {
  std::lock_guard lock(mu_);
  summary_.add(x);
  if (x >= 0.0) {
    hist_.add(static_cast<std::uint64_t>(x));
  }
}

util::Summary Distribution::summary() const {
  std::lock_guard lock(mu_);
  return summary_;
}

util::Histogram Distribution::histogram() const {
  std::lock_guard lock(mu_);
  return hist_;
}

Counter& Metrics::counter(const std::string& name, const std::string& help) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  if (!help.empty()) help_[name] = help;
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name, const std::string& help) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  if (!help.empty()) help_[name] = help;
  return *slot;
}

Distribution& Metrics::distribution(const std::string& name,
                                    const std::string& help) {
  std::lock_guard lock(mu_);
  auto& slot = dists_[name];
  if (!slot) slot = std::make_unique<Distribution>();
  if (!help.empty()) help_[name] = help;
  return *slot;
}

bool Metrics::has_gauge(const std::string& name) const {
  std::lock_guard lock(mu_);
  return gauges_.count(name) != 0;
}

void Metrics::clear() {
  std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
  dists_.clear();
  help_.clear();
}

void Metrics::write_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":";
    write_number(os, g->value());
  }
  os << "},\"distributions\":{";
  first = true;
  for (const auto& [name, d] : dists_) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    const util::Summary s = d->summary();
    os << ":{\"count\":" << s.count() << ",\"mean\":";
    write_number(os, s.mean());
    os << ",\"min\":";
    write_number(os, s.min());
    os << ",\"max\":";
    write_number(os, s.max());
    os << ",\"variance\":";
    write_number(os, s.variance());
    os << "}";
  }
  os << "}}";
}

void Metrics::write_tsv(std::ostream& os) const {
  std::lock_guard lock(mu_);
  char buf[32];
  const auto num = [&buf](double v) -> const char* {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  };
  for (const auto& [name, c] : counters_) {
    os << "counter\t" << name << '\t' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge\t" << name << '\t' << num(g->value()) << '\n';
  }
  for (const auto& [name, d] : dists_) {
    const util::Summary s = d->summary();
    os << "distribution\t" << name << ".count\t" << s.count() << '\n';
    os << "distribution\t" << name << ".mean\t" << num(s.mean()) << '\n';
    os << "distribution\t" << name << ".min\t" << num(s.min()) << '\n';
    os << "distribution\t" << name << ".max\t" << num(s.max()) << '\n';
  }
}

}  // namespace gm::obs
