#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/snapshot.h"

namespace gm::obs {

void Distribution::observe(double x) {
  std::lock_guard lock(mu_);
  summary_.add(x);
  sketch_.record(x);
  if (exact_) samples_.push_back(x);
  if (x >= 0.0) {
    auto key = static_cast<std::uint64_t>(x);
    if (hist_.bins().size() >= kMaxHistogramBins &&
        hist_.bins().count(key) == 0) {
      // Bin budget exhausted: collapse into the largest existing key so the
      // histogram tail reads as ">= overflow key" instead of growing.
      key = hist_.max_key();
    }
    hist_.add(key);
  }
}

util::Summary Distribution::summary() const {
  std::lock_guard lock(mu_);
  return summary_;
}

util::Histogram Distribution::histogram() const {
  std::lock_guard lock(mu_);
  return hist_;
}

QuantileSketch Distribution::sketch() const {
  std::lock_guard lock(mu_);
  return sketch_;
}

double Distribution::quantile(double q) const {
  std::lock_guard lock(mu_);
  if (exact_ && !samples_.empty()) {
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        std::clamp(q, 0.0, 1.0) * static_cast<double>(sorted.size() - 1) +
        0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }
  return sketch_.quantile(q);
}

Quantiles Distribution::quantiles() const {
  Quantiles out;
  out.p50 = quantile(0.50);
  out.p90 = quantile(0.90);
  out.p95 = quantile(0.95);
  out.p99 = quantile(0.99);
  std::lock_guard lock(mu_);
  out.max = sketch_.max();
  return out;
}

void Distribution::set_exact(bool on) {
  std::lock_guard lock(mu_);
  exact_ = on;
  if (!on) {
    samples_.clear();
    samples_.shrink_to_fit();
  }
}

bool Distribution::exact() const {
  std::lock_guard lock(mu_);
  return exact_;
}

std::vector<double> Distribution::samples() const {
  std::lock_guard lock(mu_);
  return samples_;
}

Counter& Metrics::counter(const std::string& name, const std::string& help) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  if (!help.empty()) help_[name] = help;
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name, const std::string& help) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  if (!help.empty()) help_[name] = help;
  return *slot;
}

Distribution& Metrics::distribution(const std::string& name,
                                    const std::string& help) {
  std::lock_guard lock(mu_);
  auto& slot = dists_[name];
  if (!slot) slot = std::make_unique<Distribution>();
  if (!help.empty()) help_[name] = help;
  return *slot;
}

bool Metrics::has_gauge(const std::string& name) const {
  std::lock_guard lock(mu_);
  return gauges_.count(name) != 0;
}

bool Metrics::has_distribution(const std::string& name) const {
  std::lock_guard lock(mu_);
  return dists_.count(name) != 0;
}

void Metrics::clear() {
  std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
  dists_.clear();
  help_.clear();
}

void Metrics::visit(
    const std::function<void(const std::string&, const Counter&)>& on_counter,
    const std::function<void(const std::string&, const Gauge&)>& on_gauge,
    const std::function<void(const std::string&, const Distribution&)>&
        on_distribution) const {
  std::lock_guard lock(mu_);
  if (on_counter) {
    for (const auto& [name, c] : counters_) on_counter(name, *c);
  }
  if (on_gauge) {
    for (const auto& [name, g] : gauges_) on_gauge(name, *g);
  }
  if (on_distribution) {
    for (const auto& [name, d] : dists_) on_distribution(name, *d);
  }
}

std::map<std::string, std::string> Metrics::help() const {
  std::lock_guard lock(mu_);
  return help_;
}

void Metrics::write_json(std::ostream& os) const {
  MetricsSnapshot::capture(*this).write_json(os);
}

void Metrics::write_tsv(std::ostream& os) const {
  std::lock_guard lock(mu_);
  char buf[32];
  const auto num = [&buf](double v) -> const char* {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  };
  for (const auto& [name, c] : counters_) {
    os << "counter\t" << name << '\t' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge\t" << name << '\t' << num(g->value()) << '\n';
  }
  for (const auto& [name, d] : dists_) {
    const util::Summary s = d->summary();
    os << "distribution\t" << name << ".count\t" << s.count() << '\n';
    os << "distribution\t" << name << ".mean\t" << num(s.mean()) << '\n';
    os << "distribution\t" << name << ".min\t" << num(s.min()) << '\n';
    os << "distribution\t" << name << ".max\t" << num(s.max()) << '\n';
  }
}

}  // namespace gm::obs
