#include "obs/registry.h"

namespace gm::obs {

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

std::size_t record_modeled_span(std::string name, std::string category,
                                double start_seconds, double duration_seconds,
                                std::uint32_t device, std::vector<Attr> attrs,
                                std::uint32_t track) {
  flight(FlightKind::kSpanEnd, name, current_trace().trace_id,
         duration_seconds * 1e6);
  SpanEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.clock = Clock::kModeled;
  ev.start_us = start_seconds * 1e6;
  ev.duration_us = duration_seconds * 1e6;
  ev.device = device;
  ev.track = track;
  ev.attrs = std::move(attrs);
  return Registry::global().trace().record(std::move(ev));
}

}  // namespace gm::obs
