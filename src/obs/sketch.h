// Bounded-memory quantile sketch for latency metrics.
//
// HDR-histogram-style log-bucketed sketch: each positive sample lands in one
// of a fixed grid of buckets — 64 linear sub-buckets per power-of-two octave
// across 2^-40 .. 2^40 — so memory is a constant ~40 KB regardless of how
// many samples are recorded, and every quantile estimate carries a
// *deterministic* relative error bound (kRelativeErrorBound, ~0.8%) instead
// of the probabilistic bounds of sampling sketches. That determinism is why
// this is used over P2/t-digest here: the perf-regression gates compare
// quantiles across runs and must not flake on estimator randomness.
//
// Values outside the bucket range clamp to the edge buckets; min/max are
// tracked exactly, and quantile() clamps its answer into [min, max], which
// also makes single-value and two-sided-extreme inputs exact. Non-positive
// samples (queue depths of 0, negative clock skew) are counted in a
// dedicated underflow bucket ordered below every positive bucket.
//
// Not internally synchronized: obs::Distribution wraps it under the
// distribution's mutex; standalone users synchronize externally.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gm::obs {

class QuantileSketch {
 public:
  /// Worst-case relative error of quantile() for in-range positive values:
  /// half a sub-bucket's relative width, 1 / (2 * kSubBuckets * m_low) with
  /// mantissa m_low >= 0.5, i.e. <= 1/kSubBuckets = 1/128 ~ 0.79%.
  static constexpr double kRelativeErrorBound = 1.0 / 128.0;

  void record(double x);

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  /// Exact extremes; NaN when empty.
  double min() const;
  double max() const;
  double mean() const;

  /// Estimated q-quantile (q in [0,1]); NaN when empty. q=0 returns the
  /// exact min, q=1 the exact max; interior quantiles are bucket midpoints
  /// clamped into [min, max].
  double quantile(double q) const;

  void clear();

  /// Bytes held by the bucket array (0 until the first record — empty
  /// distributions stay cheap).
  std::size_t memory_bytes() const noexcept {
    return buckets_.capacity() * sizeof(std::uint64_t);
  }

 private:
  // 64 sub-buckets per octave, octaves covering 2^-40 .. 2^40. Bucket 0 is
  // the non-positive underflow bin; positive buckets follow.
  static constexpr int kSubBuckets = 64;
  static constexpr int kMinExp = -40;
  static constexpr int kMaxExp = 40;
  static constexpr std::size_t kBucketCount =
      1 + static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets;

  static std::size_t bucket_index(double x);
  static double bucket_midpoint(std::size_t idx);

  std::vector<std::uint64_t> buckets_;  ///< lazily sized to kBucketCount
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

}  // namespace gm::obs
