// Request-scoped trace context: a 64-bit trace id plus a wall-trace lane,
// carried in thread-local storage so every span recorded while a request is
// being serviced — the serve-layer request/queue-wait spans, the pipeline's
// per-row stage spans, and the spans emitted inside stream-scheduler
// closures (which execute on the draining thread) — is stamped with the
// submitting request's id without threading a context argument through
// every layer.
//
// MemService::submit mints an id per request; the dispatcher installs a
// ScopedTrace around execute() so the whole service path inherits it. The
// context also keeps a span-name stack (wall spans push on open, pop on
// close) so a span can name its parent — the Chrome trace renders nesting
// visually, but obs_report.py attributes child time to phases textually.
#pragma once

#include <cstdint>
#include <string>

namespace gm::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = no request in scope
  std::uint32_t lane = 0;      ///< wall-clock trace lane ("tid") for spans
};

/// Mints a process-unique nonzero trace id (monotone counter — ids double
/// as submission order, which keeps traces human-scannable).
std::uint64_t new_trace_id() noexcept;

/// The calling thread's current context ({0, 0} outside any request).
const TraceContext& current_trace() noexcept;

/// Installs `ctx` as the calling thread's context for the scope's lifetime,
/// restoring the previous context on destruction (scopes nest).
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceContext ctx) noexcept;
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceContext prev_;
};

/// Innermost open wall span's name on this thread (nullptr at top level).
/// Pointers must outlive their push/pop window — obs::Span owns the string
/// and pops before moving it into the recorder.
const std::string* trace_span_parent() noexcept;
void trace_span_push(const std::string* name);
void trace_span_pop(const std::string* name) noexcept;

}  // namespace gm::obs
