// Structured trace recording: span events over two clock domains — host
// wall time and modeled device time (the PerfLedger's seconds) — exported
// as Chrome trace-event JSON so a whole pipeline run (per-tile kernel
// launches, transfers, stage boundaries, the host stitch) renders as a
// timeline in chrome://tracing or Perfetto.
//
// Naming scheme (see docs/OBSERVABILITY.md):
//   category "stage"    — pipeline stages (index/build-row, match/tile,
//                         stitch/host-merge); their durations decompose
//                         RunStats::index_seconds + match_seconds.
//   category "kernel"   — one span per kernel launch, named by its label.
//   category "transfer" — modeled memsets/copies charged to the ledger.
//   category "pipeline" — run-level wall-clock envelopes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

namespace gm::obs {

/// Span attribute value. Strings and numbers cover every producer; the
/// exporter renders them into the Chrome trace "args" object.
using AttrValue = std::variant<std::string, double, std::uint64_t>;

struct Attr {
  std::string key;
  AttrValue value;
};

/// Which clock a span's timestamps are measured on. The exporter places the
/// domains on separate tracks (Chrome trace "processes") because their time
/// bases are unrelated: a modeled microsecond is simulated device time.
enum class Clock : std::uint8_t {
  kWall,     ///< host steady-clock microseconds since the registry epoch
  kModeled,  ///< modeled device microseconds (PerfLedger seconds * 1e6)
};

struct SpanEvent {
  std::string name;
  std::string category;
  Clock clock = Clock::kWall;
  double start_us = 0.0;
  double duration_us = 0.0;
  /// Owning request's trace id (0 = none). Producers normally leave this 0
  /// and TraceRecorder::record stamps it from the recording thread's
  /// obs::current_trace() — which is how spans emitted deep inside the
  /// pipeline or stream scheduler inherit the serve-layer request id.
  std::uint64_t trace_id = 0;
  std::uint32_t device = 0;  ///< device ordinal (modeled-clock spans)
  /// Timeline within the clock domain (Chrome trace "thread"). Serial
  /// pipeline work stays on track 0; stream-overlapped runs put each
  /// simt::Stream on its own track so concurrent phases render as parallel
  /// lanes instead of interleaved garbage on a single modeled clock.
  std::uint32_t track = 0;
  std::vector<Attr> attrs;
};

/// Append-only span sink. Thread-safe; recording is a mutex-guarded
/// push_back, cheap relative to the work any span brackets.
class TraceRecorder {
 public:
  /// Returns the recorded event's index — stable until a truncate/clear
  /// drops it — so producers can later retime() it.
  std::size_t record(SpanEvent ev);

  /// Number of events recorded so far — a mark for truncate().
  std::size_t size() const;

  /// Drops every event recorded after mark `n`. Pairs with
  /// PerfLedger::rollback so a retried tile's abandoned launches do not
  /// appear twice on the modeled track. The caller must guarantee no other
  /// thread records between taking the mark and truncating (true wherever
  /// the pipeline retries: tiles are traced from one thread).
  void truncate(std::size_t n);

  /// Rewrites the timestamps and track of event `index` in place. The
  /// stream scheduler records spans eagerly (at modeled-ledger time) while
  /// executing queued ops, then retimes them onto the overlapped schedule
  /// once the op's start on its engine/slots is known. Out-of-range indexes
  /// are ignored (the span was truncated by a retry rollback). Same caveat
  /// as truncate(): the caller must not race another thread's truncate.
  void retime(std::size_t index, double start_us, double duration_us,
              std::uint32_t track);

  void clear();

  /// Snapshot of all events (copy; safe while other threads record).
  std::vector<SpanEvent> events() const;

  /// Chrome trace-event JSON (the {"traceEvents": [...]} format). Wall
  /// spans land on pid 0, modeled spans on pid 1 + device ordinal; process
  /// metadata names the tracks.
  void write_chrome_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
};

}  // namespace gm::obs
