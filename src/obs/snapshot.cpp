#include "obs/snapshot.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace gm::obs {
namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

/// Prometheus numbers: NaN is legal in the text format (unlike JSON).
void write_prom_number(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
    return;
  }
  if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

/// Sanitizes a registry name ("serve.queue_seconds") into a Prometheus
/// metric name ("gpumem_serve_queue_seconds").
std::string prom_name(const std::string& name) {
  std::string out = "gpumem_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void write_prom_header(std::ostream& os, const std::string& pname,
                       const std::map<std::string, std::string>& help,
                       const std::string& raw_name, const char* type) {
  if (const auto it = help.find(raw_name); it != help.end()) {
    std::string h = it->second;
    for (char& c : h) {
      if (c == '\n') c = ' ';
    }
    os << "# HELP " << pname << ' ' << h << '\n';
  }
  os << "# TYPE " << pname << ' ' << type << '\n';
}

}  // namespace

MetricsSnapshot MetricsSnapshot::capture(const Metrics& m) {
  MetricsSnapshot snap;
  m.visit(
      [&](const std::string& name, const Counter& c) {
        snap.counters.emplace_back(name, c.value());
      },
      [&](const std::string& name, const Gauge& g) {
        snap.gauges.emplace_back(name, g.value());
      },
      [&](const std::string& name, const Distribution& d) {
        DistRow row;
        row.name = name;
        const util::Summary s = d.summary();
        row.count = s.count();
        row.mean = s.mean();
        row.min = s.min();
        row.max = s.max();
        row.variance = s.variance();
        row.sum = s.count() == 0 ? 0.0
                                 : s.mean() * static_cast<double>(s.count());
        row.q = d.quantiles();
        snap.distributions.push_back(std::move(row));
      });
  snap.help = m.help();
  return snap;
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":";
    write_number(os, v);
  }
  os << "},\"distributions\":{";
  first = true;
  for (const DistRow& d : distributions) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, d.name);
    os << ":{\"count\":" << d.count << ",\"mean\":";
    write_number(os, d.mean);
    os << ",\"min\":";
    write_number(os, d.min);
    os << ",\"max\":";
    write_number(os, d.max);
    os << ",\"variance\":";
    write_number(os, d.variance);
    os << ",\"p50\":";
    write_number(os, d.q.p50);
    os << ",\"p90\":";
    write_number(os, d.q.p90);
    os << ",\"p95\":";
    write_number(os, d.q.p95);
    os << ",\"p99\":";
    write_number(os, d.q.p99);
    os << "}";
  }
  os << "}}";
}

void MetricsSnapshot::write_prometheus(std::ostream& os) const {
  for (const auto& [name, v] : counters) {
    std::string pname = prom_name(name);
    // Prometheus convention: counters end in _total.
    if (pname.size() < 6 ||
        pname.compare(pname.size() - 6, 6, "_total") != 0) {
      pname += "_total";
    }
    write_prom_header(os, pname, help, name, "counter");
    os << pname << ' ' << v << '\n';
  }
  for (const auto& [name, v] : gauges) {
    const std::string pname = prom_name(name);
    write_prom_header(os, pname, help, name, "gauge");
    os << pname << ' ';
    write_prom_number(os, v);
    os << '\n';
  }
  for (const DistRow& d : distributions) {
    const std::string pname = prom_name(d.name);
    write_prom_header(os, pname, help, d.name, "summary");
    if (d.count > 0) {
      const std::pair<const char*, double> qs[] = {
          {"0.5", d.q.p50}, {"0.9", d.q.p90}, {"0.95", d.q.p95},
          {"0.99", d.q.p99}};
      for (const auto& [label, value] : qs) {
        os << pname << "{quantile=\"" << label << "\"} ";
        write_prom_number(os, value);
        os << '\n';
      }
    }
    os << pname << "_sum ";
    write_prom_number(os, d.sum);
    os << '\n';
    os << pname << "_count " << d.count << '\n';
  }
}

bool MetricsSnapshot::is_known_format(const std::string& fmt) {
  return fmt == "json" || fmt == "prom" || fmt == "prometheus" ||
         fmt == "tsv";
}

}  // namespace gm::obs
