#include "obs/sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gm::obs {

std::size_t QuantileSketch::bucket_index(double x) {
  if (!(x > 0.0)) return 0;  // non-positive (and NaN-guarded) underflow bin
  int exp = 0;
  const double m = std::frexp(x, &exp);  // x = m * 2^exp, m in [0.5, 1)
  if (exp <= kMinExp) return 1;
  if (exp > kMaxExp) return kBucketCount - 1;
  // Linear sub-buckets over the mantissa: m in [0.5, 1) splits into
  // kSubBuckets equal slices of width 1/(2*kSubBuckets).
  int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return 1 + static_cast<std::size_t>(exp - 1 - kMinExp) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double QuantileSketch::bucket_midpoint(std::size_t idx) {
  if (idx == 0) return 0.0;  // underflow bin: representative pinned by clamp
  const std::size_t p = idx - 1;
  const int exp = kMinExp + 1 + static_cast<int>(p / kSubBuckets);
  const int sub = static_cast<int>(p % kSubBuckets);
  const double m_mid = 0.5 + (sub + 0.5) / (2.0 * kSubBuckets);
  return std::ldexp(m_mid, exp);
}

void QuantileSketch::record(double x) {
  if (std::isnan(x)) return;
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  ++buckets_[bucket_index(x)];
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

double QuantileSketch::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double QuantileSketch::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double QuantileSketch::mean() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                     : sum_ / static_cast<double>(count_);
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly — don't pay bucket error there.
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  // Nearest-rank on the bucket CDF. rank in [0, count-1]; the bucket whose
  // cumulative count first exceeds it holds the answer.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1) + 0.5);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum > rank) {
      return std::clamp(bucket_midpoint(i), min_, max_);
    }
  }
  return max_;
}

void QuantileSketch::clear() {
  buckets_.clear();
  buckets_.shrink_to_fit();
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
}

}  // namespace gm::obs
