// Point-in-time capture of the metrics registry, serializable as JSON (the
// registry's canonical machine format) or Prometheus text exposition
// format 0.0.4 (for scraping). Capturing decouples "read every metric under
// the registry lock" from "format it": gpumem_serve's --stats-every thread
// captures on its own cadence, and both exporters render the same frozen
// values, so a scrape and a JSON dump taken together always agree.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace gm::obs {

struct MetricsSnapshot {
  struct DistRow {
    std::string name;
    std::uint64_t count = 0;
    double mean = 0.0, min = 0.0, max = 0.0, variance = 0.0, sum = 0.0;
    Quantiles q;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<DistRow> distributions;
  std::map<std::string, std::string> help;

  static MetricsSnapshot capture(const Metrics& m);

  /// {"counters":{...},"gauges":{...},"distributions":{name:{count,mean,
  /// min,max,variance,p50,p90,p95,p99}}} — non-finite values render as
  /// null.
  void write_json(std::ostream& os) const;

  /// Prometheus text exposition format: metric names are sanitized
  /// ([a-zA-Z0-9_:] only) and prefixed "gpumem_"; counters gain a "_total"
  /// suffix, distributions render as summaries with quantile labels plus
  /// _sum/_count.
  void write_prometheus(std::ostream& os) const;

  /// "json", "prom"/"prometheus", or "tsv" -> true; anything else false.
  /// (TSV delegates back to Metrics::write_tsv at the call site.)
  static bool is_known_format(const std::string& fmt);
};

}  // namespace gm::obs
