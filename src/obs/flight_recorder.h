// Flight recorder: an always-on, lock-light ring buffer of recent
// structured events (span begin/end, queue transitions, ledger deltas,
// stream ops, invariant marks). Unlike the trace recorder — which is opt-in,
// unbounded, and meant for offline timeline rendering — the flight recorder
// is bounded (last kCapacity events), cheap enough to leave on in
// production, and exists to answer one question: *what was the process doing
// just before it died?* Its contents are dumped to a file on fatal signal,
// failed invariant, or fuzz-harness divergence so every reproducer ships
// with the last-N-events log.
//
// Concurrency: record() claims a slot with one fetch_add plus one CAS on a
// per-slot busy flag. If a reader holds the slot (snapshot in progress) or a
// lapped writer still occupies it, the event is *dropped* and counted —
// recording never blocks and never allocates, so it is safe from hot paths
// and (best-effort) from signal handlers.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace gm::obs {

enum class FlightKind : std::uint8_t {
  kSpanBegin,  ///< wall span opened (a = start_us)
  kSpanEnd,    ///< wall or modeled span recorded (a = duration_us)
  kQueue,      ///< serve-queue transition (a = queue depth / status code)
  kLedger,     ///< modeled-ledger delta (a = delta seconds, b = total)
  kStream,     ///< stream-scheduler op executed (a = stream index)
  kMark,       ///< free-form marker: invariant failures, fuzz divergence
};

const char* to_string(FlightKind kind) noexcept;

struct FlightEvent {
  double wall_us = 0.0;        ///< registry wall clock (epoch = process start)
  std::uint64_t seq = 0;       ///< global sequence number (gap = dropped)
  std::uint64_t trace_id = 0;  ///< owning request (0 = none)
  FlightKind kind = FlightKind::kMark;
  char label[39] = {};         ///< truncated, NUL-terminated
  double a = 0.0, b = 0.0;     ///< kind-specific payload
};

class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 4096;

  static FlightRecorder& global();

  /// Appends an event (drops under slot contention rather than blocking).
  void record(FlightKind kind, std::string_view label,
              std::uint64_t trace_id = 0, double a = 0.0,
              double b = 0.0) noexcept;

  /// Consistent snapshot of the retained window, oldest first.
  std::vector<FlightEvent> events() const;

  /// Human-readable dump: one "seq wall_us kind label trace a b" line per
  /// event plus a header with recorded/dropped totals.
  void dump(std::ostream& os) const;
  bool dump_to_file(const std::string& path) const;

  /// Best-effort async-signal dump of raw slots to `fd` — no locks, no
  /// allocation; torn slots may print garbled labels. Signal handlers only.
  void dump_unlocked_to_fd(int fd) const noexcept;

  /// Installs SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL handlers that write the
  /// ring to `path`, then re-raise with the default disposition. The path
  /// is copied into static storage; later calls replace it.
  static void install_crash_handler(const std::string& path);

  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// On by default ("always-on"); tests that count events precisely can
  /// switch it off around unrelated machinery.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void clear();

 private:
  FlightRecorder();

  struct Slot {
    std::atomic<std::uint32_t> busy{0};
    FlightEvent ev;
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> enabled_{true};
};

/// Convenience hook used by instrumentation sites.
inline void flight(FlightKind kind, std::string_view label,
                   std::uint64_t trace_id = 0, double a = 0.0,
                   double b = 0.0) noexcept {
  FlightRecorder::global().record(kind, label, trace_id, a, b);
}

}  // namespace gm::obs
