#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <set>

#include "obs/trace_context.h"

namespace gm::obs {
namespace {

/// JSON string escaping for names, categories, and attribute values.
void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// JSON numbers cannot be NaN/inf; emit null instead.
void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void write_attr_value(std::ostream& os, const AttrValue& v) {
  if (const auto* s = std::get_if<std::string>(&v)) {
    write_escaped(os, *s);
  } else if (const auto* d = std::get_if<double>(&v)) {
    write_number(os, *d);
  } else {
    os << std::get<std::uint64_t>(v);
  }
}

std::uint32_t pid_for(const SpanEvent& ev) {
  return ev.clock == Clock::kWall ? 0u : 1u + ev.device;
}

}  // namespace

std::size_t TraceRecorder::record(SpanEvent ev) {
  // Stamp the recording thread's request scope centrally so every producer
  // (RAII spans, modeled spans, hand-built events) inherits it for free.
  if (ev.trace_id == 0) ev.trace_id = current_trace().trace_id;
  std::lock_guard lock(mu_);
  events_.push_back(std::move(ev));
  return events_.size() - 1;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void TraceRecorder::truncate(std::size_t n) {
  std::lock_guard lock(mu_);
  if (n < events_.size()) events_.resize(n);
}

void TraceRecorder::retime(std::size_t index, double start_us,
                           double duration_us, std::uint32_t track) {
  std::lock_guard lock(mu_);
  if (index >= events_.size()) return;
  SpanEvent& ev = events_[index];
  ev.start_us = start_us;
  ev.duration_us = duration_us;
  ev.track = track;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
}

std::vector<SpanEvent> TraceRecorder::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  const std::vector<SpanEvent> evs = events();
  os << "{\"traceEvents\":[";
  bool first = true;

  // Process metadata: name the clock-domain tracks. Thread metadata names
  // each stream lane so overlapped runs read as parallel timelines.
  std::set<std::uint32_t> pids;
  std::set<std::pair<std::uint32_t, std::uint32_t>> lanes;
  for (const SpanEvent& ev : evs) {
    pids.insert(pid_for(ev));
    lanes.insert({pid_for(ev), ev.track});
  }
  for (const std::uint32_t pid : pids) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":";
    if (pid == 0) {
      write_escaped(os, "host (wall clock)");
    } else {
      write_escaped(os, "device " + std::to_string(pid - 1) + " (modeled)");
    }
    os << "}}";
  }
  for (const auto& [pid, track] : lanes) {
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << track << ",\"args\":{\"name\":";
    std::string lane_name;
    if (pid == 0) {
      // Wall clock: track 0 is process-level work, tracks >= 1 are
      // request lanes (serve assigns each in-flight request a lane so
      // queue-wait/service spans render one row per request).
      lane_name = track == 0 ? std::string("host")
                             : "request lane " + std::to_string(track);
    } else {
      lane_name = track == 0 ? std::string("serial")
                             : "stream " + std::to_string(track - 1);
    }
    write_escaped(os, lane_name);
    os << "}}";
  }

  for (const SpanEvent& ev : evs) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    write_escaped(os, ev.name);
    os << ",\"cat\":";
    write_escaped(os, ev.category);
    os << ",\"ph\":\"X\",\"ts\":";
    write_number(os, ev.start_us);
    os << ",\"dur\":";
    write_number(os, ev.duration_us);
    os << ",\"pid\":" << pid_for(ev) << ",\"tid\":" << ev.track;
    if (!ev.attrs.empty() || ev.trace_id != 0) {
      os << ",\"args\":{";
      bool first_attr = true;
      if (ev.trace_id != 0) {
        os << "\"trace_id\":" << ev.trace_id;
        first_attr = false;
      }
      for (const Attr& a : ev.attrs) {
        if (!first_attr) os << ",";
        first_attr = false;
        write_escaped(os, a.key);
        os << ":";
        write_attr_value(os, a.value);
      }
      os << "}";
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

}  // namespace gm::obs
