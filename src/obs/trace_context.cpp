#include "obs/trace_context.h"

#include <atomic>
#include <vector>

namespace gm::obs {
namespace {

std::atomic<std::uint64_t> g_next_trace_id{1};

thread_local TraceContext tls_trace;
thread_local std::vector<const std::string*> tls_span_stack;

}  // namespace

std::uint64_t new_trace_id() noexcept {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

const TraceContext& current_trace() noexcept { return tls_trace; }

ScopedTrace::ScopedTrace(TraceContext ctx) noexcept : prev_(tls_trace) {
  tls_trace = ctx;
}

ScopedTrace::~ScopedTrace() { tls_trace = prev_; }

const std::string* trace_span_parent() noexcept {
  return tls_span_stack.empty() ? nullptr : tls_span_stack.back();
}

void trace_span_push(const std::string* name) {
  tls_span_stack.push_back(name);
}

void trace_span_pop(const std::string* name) noexcept {
  // Spans close in strict LIFO order on a thread (RAII), but finish() can be
  // called early and out of order by defensive code; search from the top so
  // a mismatched pop degrades gracefully instead of corrupting the stack.
  for (auto it = tls_span_stack.rbegin(); it != tls_span_stack.rend(); ++it) {
    if (*it == name) {
      tls_span_stack.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace gm::obs
