// Process-global observability registry: one trace recorder + one metrics
// registry behind a single enabled flag. Disabled (the default) costs one
// relaxed atomic load per instrumentation site, so the hooks stay in
// release builds and the hot paths; producers must check obs::enabled()
// before assembling attributes.
//
// Enabling: set_enabled(true) directly (CLI/bench front-ends), or
// core::Config::observe = true, which Engine::run applies at run start.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace gm::obs {

class Registry {
 public:
  static Registry& global();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  TraceRecorder& trace() noexcept { return trace_; }
  Metrics& metrics() noexcept { return metrics_; }

  /// Host wall-clock microseconds since this registry was constructed —
  /// the wall span time base.
  double wall_now_us() const noexcept {
    return wall_us_at(std::chrono::steady_clock::now());
  }

  /// Converts an externally captured steady-clock time point onto the wall
  /// span time base — lets the serve layer emit a queue-wait span whose
  /// start is the moment submit() stamped the request.
  double wall_us_at(std::chrono::steady_clock::time_point tp) const noexcept {
    return std::chrono::duration<double, std::micro>(tp - epoch_).count();
  }

  /// Clears recorded spans and metrics (tests; the enabled flag is kept).
  void reset() {
    trace_.clear();
    metrics_.clear();
  }

 private:
  Registry() : epoch_(std::chrono::steady_clock::now()) {}

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  TraceRecorder trace_;
  Metrics metrics_;
};

/// The one check every instrumentation site makes first.
inline bool enabled() noexcept { return Registry::global().enabled(); }

/// Records a modeled-device-clock span (start/duration in ledger seconds).
/// `track` selects the timeline lane within the device's modeled clock
/// (0 = serial; stream-overlapped runs use 1 + stream index). Returns the
/// event's trace index (for TraceRecorder::retime).
std::size_t record_modeled_span(std::string name, std::string category,
                                double start_seconds, double duration_seconds,
                                std::uint32_t device,
                                std::vector<Attr> attrs = {},
                                std::uint32_t track = 0);

/// RAII wall-clock span: starts at construction, records at destruction.
/// When the registry is disabled at construction the whole object is inert.
///
/// An armed span captures the thread's TraceContext: the request's trace id
/// (also stamped centrally at record time) and its wall lane, so serve-path
/// spans land on the submitting request's timeline row. It also maintains
/// the thread's span-name stack, attaching a "parent" attribute naming the
/// innermost enclosing wall span, and mirrors begin/end into the flight
/// recorder.
class Span {
 public:
  Span(std::string name, std::string category) {
    if (!obs::enabled()) return;
    armed_ = true;
    ev_.name = std::move(name);
    ev_.category = std::move(category);
    const TraceContext& tc = current_trace();
    ev_.trace_id = tc.trace_id;
    ev_.track = tc.lane;
    if (const std::string* parent = trace_span_parent()) {
      ev_.attrs.push_back({"parent", *parent});
    }
    trace_span_push(&ev_.name);
    ev_.start_us = Registry::global().wall_now_us();
    flight(FlightKind::kSpanBegin, ev_.name, ev_.trace_id, ev_.start_us);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  bool armed() const noexcept { return armed_; }

  void attr(std::string key, AttrValue value) {
    if (armed_) ev_.attrs.push_back({std::move(key), std::move(value)});
  }

  /// Records the span now (idempotent; the destructor becomes a no-op).
  void finish() {
    if (!armed_) return;
    armed_ = false;
    ev_.duration_us = Registry::global().wall_now_us() - ev_.start_us;
    trace_span_pop(&ev_.name);
    flight(FlightKind::kSpanEnd, ev_.name, ev_.trace_id, ev_.duration_us);
    Registry::global().trace().record(std::move(ev_));
  }

 private:
  bool armed_ = false;
  SpanEvent ev_;
};

}  // namespace gm::obs
