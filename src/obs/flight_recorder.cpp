#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>

#include "obs/registry.h"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#define GM_FLIGHT_HAVE_SIGNALS 1
#endif

namespace gm::obs {

const char* to_string(FlightKind kind) noexcept {
  switch (kind) {
    case FlightKind::kSpanBegin: return "span-begin";
    case FlightKind::kSpanEnd: return "span-end";
    case FlightKind::kQueue: return "queue";
    case FlightKind::kLedger: return "ledger";
    case FlightKind::kStream: return "stream";
    case FlightKind::kMark: return "mark";
  }
  return "?";
}

FlightRecorder::FlightRecorder() : slots_(kCapacity) {}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder instance;
  return instance;
}

void FlightRecorder::record(FlightKind kind, std::string_view label,
                            std::uint64_t trace_id, double a,
                            double b) noexcept {
  if (!enabled()) return;
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % kCapacity];
  std::uint32_t expected = 0;
  if (!slot.busy.compare_exchange_strong(expected, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  FlightEvent& ev = slot.ev;
  ev.wall_us = Registry::global().wall_now_us();
  ev.seq = seq;
  ev.trace_id = trace_id;
  ev.kind = kind;
  const std::size_t n = std::min(label.size(), sizeof(ev.label) - 1);
  std::memcpy(ev.label, label.data(), n);
  ev.label[n] = '\0';
  ev.a = a;
  ev.b = b;
  slot.busy.store(0, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::events() const {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  std::vector<FlightEvent> out;
  out.reserve(std::min<std::uint64_t>(head, kCapacity));
  for (const Slot& slot : slots_) {
    // Claim each slot briefly so we never read a half-written event; a
    // writer that loses the race drops (by design) rather than blocking.
    Slot& s = const_cast<Slot&>(slot);
    std::uint32_t expected = 0;
    if (!s.busy.compare_exchange_strong(expected, 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      continue;
    }
    const FlightEvent ev = s.ev;
    s.busy.store(0, std::memory_order_release);
    // seq==0 in slot 0 is ambiguous between "never written" and "the very
    // first event"; an empty label with wall_us==0 marks the former.
    if (ev.seq < head && (ev.seq != 0 || ev.wall_us != 0.0 ||
                          ev.label[0] != '\0')) {
      out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

void FlightRecorder::dump(std::ostream& os) const {
  const std::vector<FlightEvent> evs = events();
  os << "# flight recorder: " << evs.size() << " retained, "
     << recorded() << " recorded, " << dropped() << " dropped\n";
  os << "# seq\twall_us\tkind\tlabel\ttrace_id\ta\tb\n";
  char buf[64];
  for (const FlightEvent& ev : evs) {
    std::snprintf(buf, sizeof(buf), "%.1f", ev.wall_us);
    os << ev.seq << '\t' << buf << '\t' << to_string(ev.kind) << '\t'
       << ev.label << '\t' << ev.trace_id << '\t';
    std::snprintf(buf, sizeof(buf), "%.9g\t%.9g", ev.a, ev.b);
    os << buf << '\n';
  }
}

bool FlightRecorder::dump_to_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  dump(os);
  return os.good();
}

void FlightRecorder::dump_unlocked_to_fd(int fd) const noexcept {
#if GM_FLIGHT_HAVE_SIGNALS
  char line[192];
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  int n = std::snprintf(line, sizeof(line),
                        "# flight recorder (crash dump): %llu recorded\n",
                        static_cast<unsigned long long>(head));
  if (n > 0) (void)::write(fd, line, static_cast<std::size_t>(n));
  // Oldest first: the slot after head's is the oldest retained event.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[(head + i) % kCapacity];
    const FlightEvent& ev = slot.ev;  // racy by contract
    if (ev.seq == 0 && ev.wall_us == 0.0 && ev.label[0] == '\0') continue;
    if (ev.seq >= head) continue;
    n = std::snprintf(line, sizeof(line),
                      "%llu\t%.1f\t%s\t%.38s\t%llu\t%.9g\t%.9g\n",
                      static_cast<unsigned long long>(ev.seq), ev.wall_us,
                      to_string(ev.kind), ev.label,
                      static_cast<unsigned long long>(ev.trace_id), ev.a,
                      ev.b);
    if (n > 0) (void)::write(fd, line, static_cast<std::size_t>(n));
  }
#else
  (void)fd;
#endif
}

void FlightRecorder::clear() {
  // Readers/writers racing a clear see either old or zeroed slots — fine
  // for the tests and tools that call this between phases.
  head_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  for (Slot& s : slots_) {
    std::uint32_t expected = 0;
    if (s.busy.compare_exchange_strong(expected, 1,
                                       std::memory_order_acquire)) {
      s.ev = FlightEvent{};
      s.busy.store(0, std::memory_order_release);
    }
  }
}

#if GM_FLIGHT_HAVE_SIGNALS
namespace {

char g_crash_path[512] = {};

void crash_handler(int sig) {
  const int fd =
      ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    FlightRecorder::global().dump_unlocked_to_fd(fd);
    ::close(fd);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void FlightRecorder::install_crash_handler(const std::string& path) {
  const std::size_t n = std::min(path.size(), sizeof(g_crash_path) - 1);
  std::memcpy(g_crash_path, path.data(), n);
  g_crash_path[n] = '\0';
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    std::signal(sig, crash_handler);
  }
}
#else
void FlightRecorder::install_crash_handler(const std::string&) {}
#endif

}  // namespace gm::obs
