// sparseMEM-class finder (Khan et al. 2009, paper reference [11]): sparse
// suffix array with sparseness K, binary-search interval lookup at the
// reduced depth L-K+1, sampled-candidate emission with bidirectional
// extension. τ-way parallel over query shards.
//
// As the paper notes (Section IV-B), sparseMEM couples its sparseness to the
// core count to shrink the index, so *more threads mean a harder matching
// problem* — the benchmark harness reproduces that by setting
// sparseness = threads for this finder.
#pragma once

#include <memory>

#include "index/sparse_suffix_array.h"
#include "mem/finder.h"

namespace gm::mem {

class SparseMemFinder final : public MemFinder {
 public:
  std::string name() const override { return "sparsemem"; }

  void build_index(const seq::Sequence& ref, const FinderOptions& opt) override;
  std::vector<Mem> find(const seq::Sequence& query) const override;
  double last_find_modeled_seconds() const override { return last_seconds_; }
  std::size_t index_bytes() const override {
    return ssa_ ? ssa_->bytes() : 0;
  }

 private:
  const seq::Sequence* ref_ = nullptr;
  FinderOptions opt_;
  std::unique_ptr<index::SparseSuffixArray> ssa_;
  mutable double last_seconds_ = 0.0;
};

}  // namespace gm::mem
