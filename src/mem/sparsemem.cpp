#include "mem/sparsemem.h"

#include <stdexcept>

#include "mem/clip.h"
#include "mem/common.h"
#include "util/parallel.h"

namespace gm::mem {

void SparseMemFinder::build_index(const seq::Sequence& ref,
                                  const FinderOptions& opt) {
  validate_finder_options("SparseMemFinder", opt, /*sparse_index=*/true);
  ref_ = &ref;
  opt_ = opt;
  ssa_ = std::make_unique<index::SparseSuffixArray>(ref, opt.sparseness,
                                                    /*sort_based=*/true);
}

std::vector<Mem> SparseMemFinder::find(const seq::Sequence& query) const {
  if (!ssa_) throw std::logic_error("SparseMemFinder: no index built");
  const std::uint32_t L = opt_.min_length;
  const std::uint32_t K = opt_.sparseness;
  const std::uint32_t depth = L - K + 1;  // sampled suffixes inside a MEM of
                                          // length >= L match at least this
  const std::uint32_t shards = std::max(1u, opt_.threads);

  std::vector<std::vector<Mem>> partial(shards);
  auto body = [&](std::size_t shard) {
    std::vector<Mem>& out = partial[shard];
    if (query.size() < depth) return;
    const std::size_t total = query.size() - depth + 1;
    const std::size_t chunk = (total + shards - 1) / shards;
    const std::size_t begin = shard * chunk;
    const std::size_t end = std::min(total, begin + chunk);
    for (std::size_t j = begin; j < end; ++j) {
      const index::SaInterval iv = ssa_->interval(*ref_, query, j, depth);
      for (std::uint32_t i = iv.lo; i < iv.hi; ++i) {
        emit_sampled_candidate(*ref_, query, ssa_->positions()[i],
                               static_cast<std::uint32_t>(j), K, L, out);
      }
    }
  };

  const util::ShardedExecutor exec(opt_.sequential_shards
                                       ? util::ShardedExecutor::Policy::kSequential
                                       : util::ShardedExecutor::Policy::kAuto);
  const util::ShardReport report = exec.run(shards, body);
  last_seconds_ = report.modeled_parallel_seconds();

  std::vector<Mem> out;
  for (auto& p : partial) out.insert(out.end(), p.begin(), p.end());
  clip_invalid_bases(*ref_, query, out, L);
  sort_unique(out);
  return out;
}

}  // namespace gm::mem
