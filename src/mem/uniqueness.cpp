#include "mem/uniqueness.h"

#include "index/sa_search.h"
#include "index/suffix_array.h"

namespace gm::mem {

std::vector<Mem> filter_rare_matches(const std::vector<Mem>& mems,
                                     const seq::Sequence& ref,
                                     const seq::Sequence& query,
                                     const RarenessLimits& limits) {
  const std::vector<std::uint32_t> ref_sa = index::build_suffix_array(ref);
  const std::vector<std::uint32_t> query_sa = index::build_suffix_array(query);
  std::vector<Mem> out;
  out.reserve(mems.size());
  for (const Mem& m : mems) {
    // The matched substring read from the reference; counting its interval
    // in each suffix array counts its occurrences in each sequence.
    const index::SaInterval in_ref =
        index::find_interval(ref, ref_sa, ref, m.r, m.len);
    if (in_ref.size() > limits.max_ref_occurrences) continue;
    const index::SaInterval in_query =
        index::find_interval(query, query_sa, ref, m.r, m.len);
    if (in_query.size() > limits.max_query_occurrences) continue;
    out.push_back(m);
  }
  return out;
}

}  // namespace gm::mem
