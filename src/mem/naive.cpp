#include "mem/naive.h"

#include <stdexcept>

#include "mem/clip.h"
#include "seq/packed.h"

namespace gm::mem {

std::vector<Mem> find_mems_naive(const seq::Sequence& ref,
                                 const seq::Sequence& query,
                                 std::uint32_t min_len) {
  std::vector<Mem> out;
  if (ref.empty() || query.empty() || min_len == 0) return out;
  const std::int64_t n = static_cast<std::int64_t>(ref.size());
  const std::int64_t m = static_cast<std::int64_t>(query.size());
  // Walk every diagonal d = r - q. Runs of equal characters along a diagonal
  // are exactly the maximal matches on it.
  for (std::int64_t d = -(m - 1); d < n; ++d) {
    std::int64_t r = std::max<std::int64_t>(d, 0);
    std::int64_t q = r - d;
    while (r < n && q < m) {
      const std::size_t run = seq::lce_forward(
          ref, static_cast<std::size_t>(r), query, static_cast<std::size_t>(q),
          static_cast<std::size_t>(std::min(n - r, m - q)));
      if (run >= min_len) {
        out.push_back({static_cast<std::uint32_t>(r),
                       static_cast<std::uint32_t>(q),
                       static_cast<std::uint32_t>(run)});
      }
      r += static_cast<std::int64_t>(run) + 1;
      q += static_cast<std::int64_t>(run) + 1;
    }
  }
  clip_invalid_bases(ref, query, out, min_len);
  sort_unique(out);
  return out;
}

std::vector<Mem> NaiveFinder::find(const seq::Sequence& query) const {
  if (ref_ == nullptr) throw std::logic_error("NaiveFinder: no index built");
  return find_mems_naive(*ref_, query, opt_.min_length);
}

}  // namespace gm::mem
