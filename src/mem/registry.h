// Name-based construction of every MEM finder, so tests, examples, and the
// benchmark harness enumerate tools uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mem/finder.h"

namespace gm::mem {

/// Known names: "naive", "mummer", "sparsemem", "essamem", "slamem",
/// "slamem-lazy" (the same FM-index finder pinned to the lazy long-MEM
/// sweep, mem/slamem.h), "copmem" (double-sampling fast-index finder,
/// mem/copmem.h), "gpumem" (SIMT-simulated device backend), "gpumem-native"
/// (same pipeline on host threads). Throws std::invalid_argument for
/// anything else.
std::unique_ptr<MemFinder> create_finder(const std::string& name);

/// All registered names, baseline tools first.
std::vector<std::string> finder_names();

}  // namespace gm::mem
