#include "mem/mummer.h"

#include <stdexcept>

#include "index/sa_search.h"
#include "index/suffix_array.h"
#include "mem/clip.h"
#include "mem/common.h"
#include "util/timer.h"

namespace gm::mem {

void MummerFinder::build_index(const seq::Sequence& ref,
                               const FinderOptions& opt) {
  validate_finder_options("MummerFinder", opt);
  ref_ = &ref;
  opt_ = opt;
  sa_ = index::build_suffix_array(ref);
}

std::vector<Mem> MummerFinder::find(const seq::Sequence& query) const {
  if (ref_ == nullptr) throw std::logic_error("MummerFinder: no index built");
  util::Timer timer;
  const std::uint32_t L = opt_.min_length;
  std::vector<Mem> out;
  if (query.size() >= L) {
    for (std::size_t q = 0; q + L <= query.size(); ++q) {
      const index::SaInterval iv =
          index::find_interval(*ref_, sa_, query, q, L);
      for (std::uint32_t i = iv.lo; i < iv.hi; ++i) {
        emit_exact_candidate(*ref_, query, sa_[i],
                             static_cast<std::uint32_t>(q), L, out);
      }
    }
  }
  clip_invalid_bases(*ref_, query, out, L);
  sort_unique(out);
  last_seconds_ = timer.seconds();
  return out;
}

}  // namespace gm::mem
