// MUMmer-compatible match reporting: the 3-column text format the original
// tools print (`mummer -maxmatch`), so downstream scripts (mummerplot-style
// tooling) can consume this library's output, plus a parser for round
// tripping and for comparing against other tools' outputs.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "mem/mem.h"
#include "mem/stranded.h"

namespace gm::mem {

/// One query record's matches in MUMmer format:
///   > name [Reverse]
///     <ref_pos>  <query_pos>  <length>      (1-based positions)
void write_mummer(std::ostream& out, const std::string& query_name,
                  const std::vector<Mem>& mems, bool reverse = false);

/// Stranded overload: forward matches first, then a "Reverse" section
/// (printed only when reverse matches exist).
void write_mummer(std::ostream& out, const std::string& query_name,
                  const std::vector<StrandedMem>& mems);

struct MummerRecord {
  std::string query_name;
  bool reverse = false;
  std::vector<Mem> mems;  ///< positions converted back to 0-based
};

/// Parses the format write_mummer emits. Throws std::runtime_error on
/// malformed input.
std::vector<MummerRecord> read_mummer(std::istream& in);

}  // namespace gm::mem
