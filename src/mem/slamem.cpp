#include "mem/slamem.h"

#include <stdexcept>

#include "mem/clip.h"
#include "mem/common.h"
#include "util/timer.h"

namespace gm::mem {

void SlaMemFinder::build_index(const seq::Sequence& ref,
                               const FinderOptions& opt) {
  validate_finder_options("SlaMemFinder", opt);
  ref_ = &ref;
  opt_ = opt;
  fm_ = std::make_unique<index::FmIndex>(ref);
}

std::vector<Mem> SlaMemFinder::find(const seq::Sequence& query) const {
  if (!fm_) throw std::logic_error("SlaMemFinder: no index built");
  util::Timer timer;
  const std::uint32_t L = opt_.min_length;
  std::vector<Mem> out;
  if (query.empty()) {
    last_seconds_ = timer.seconds();
    return out;
  }

  // Right-to-left matching-statistics sweep (Ohlebusch-style backward
  // search): (iv, m) is the FM row interval of the longest reference match
  // of the window query[j .. j+m). Prepending query[j-1] is one backward
  // step; when it fails, the window is shortened from the right by jumping
  // to the parent LCP interval — the operation slaMEM's sampled LCP array
  // accelerates.
  index::SaInterval iv = fm_->all_rows();
  std::uint32_t m = 0;
  for (std::size_t jj = query.size(); jj-- > 0;) {
    const std::uint32_t j = static_cast<std::uint32_t>(jj);
    const std::uint8_t c = query.base(j);
    for (;;) {
      const index::SaInterval grown = fm_->extend(iv, c);
      if (!grown.empty()) {
        iv = grown;
        ++m;
        break;
      }
      if (m == 0) {
        iv = fm_->all_rows();
        break;
      }
      // Parent jump: widen to the deepest branching depth below m.
      const std::uint32_t parent_depth =
          std::max(fm_->lcp_at(iv.lo), fm_->lcp_at(iv.hi));
      m = std::min(m - 1, parent_depth);
      iv = fm_->widen(iv, m);
      if (m == 0) iv = fm_->all_rows();
    }
    if (m < L) continue;
    // All reference positions matching >= L characters at j: the interval of
    // query[j .. j+L), reached by widening (trimming the window's right end).
    const index::SaInterval at_L = fm_->widen(iv, L);
    for (std::uint32_t row = at_L.lo; row < at_L.hi; ++row) {
      const std::uint32_t r = fm_->locate(row);
      emit_exact_candidate(*ref_, query, r, j, L, out);
    }
  }
  clip_invalid_bases(*ref_, query, out, L);
  sort_unique(out);
  last_seconds_ = timer.seconds();
  return out;
}

}  // namespace gm::mem
