#include "mem/slamem.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "mem/clip.h"
#include "mem/common.h"
#include "util/timer.h"

namespace gm::mem {

void SlaMemFinder::build_index(const seq::Sequence& ref,
                               const FinderOptions& opt) {
  validate_finder_options("SlaMemFinder", opt);
  ref_ = &ref;
  opt_ = opt;
  fm_ = std::make_unique<index::FmIndex>(ref);
}

void SlaMemFinder::adopt_index(const seq::Sequence& ref,
                               const FinderOptions& opt, index::FmIndex fm) {
  validate_finder_options("SlaMemFinder", opt);
  if (fm.rows() != ref.size() + 1) {
    throw std::invalid_argument(
        "SlaMemFinder::adopt_index: FM index rows do not match reference");
  }
  ref_ = &ref;
  opt_ = opt;
  fm_ = std::make_unique<index::FmIndex>(std::move(fm));
}

std::vector<Mem> SlaMemFinder::find(const seq::Sequence& query) const {
  return find_at(query, opt_.min_length);
}

std::vector<Mem> SlaMemFinder::find_at(const seq::Sequence& query,
                                       std::uint32_t min_length) const {
  if (!fm_) throw std::logic_error("SlaMemFinder: no index built");
  if (min_length == 0) {
    throw std::invalid_argument("SlaMemFinder::find_at: min_length must be >= 1");
  }
  util::Timer timer;
  std::vector<Mem> out;
  if (!query.empty()) {
    if (lazy()) {
      find_lazy(query, min_length, out);
    } else {
      find_eager(query, min_length, out);
    }
    clip_invalid_bases(*ref_, query, out, min_length);
    sort_unique(out);
  }
  last_seconds_ = timer.seconds();
  return out;
}

void SlaMemFinder::find_eager(const seq::Sequence& query, std::uint32_t L,
                              std::vector<Mem>& out) const {
  // Right-to-left matching-statistics sweep (Ohlebusch-style backward
  // search): (iv, m) is the FM row interval of the longest reference match
  // of the window query[j .. j+m). Prepending query[j-1] is one backward
  // step; when it fails, the window is shortened from the right by jumping
  // to the parent LCP interval — the operation slaMEM's sampled LCP array
  // accelerates.
  index::SaInterval iv = fm_->all_rows();
  std::uint32_t m = 0;
  for (std::size_t jj = query.size(); jj-- > 0;) {
    const std::uint32_t j = static_cast<std::uint32_t>(jj);
    const std::uint8_t c = query.base(j);
    for (;;) {
      const index::SaInterval grown = fm_->extend(iv, c);
      if (!grown.empty()) {
        iv = grown;
        ++m;
        break;
      }
      if (m == 0) {
        iv = fm_->all_rows();
        break;
      }
      // Parent jump: widen to the deepest branching depth below m.
      const std::uint32_t parent_depth =
          std::max(fm_->lcp_at(iv.lo), fm_->lcp_at(iv.hi));
      m = std::min(m - 1, parent_depth);
      iv = fm_->widen(iv, m);
      if (m == 0) iv = fm_->all_rows();
    }
    if (m < L) continue;
    // All reference positions matching >= L characters at j: the interval of
    // query[j .. j+L), reached by widening (trimming the window's right end).
    const index::SaInterval at_L = fm_->widen(iv, L);
    for (std::uint32_t row = at_L.lo; row < at_L.hi; ++row) {
      const std::uint32_t r = fm_->locate(row);
      emit_exact_candidate(*ref_, query, r, j, L, out);
    }
  }
}

void SlaMemFinder::find_lazy(const seq::Sequence& query, std::uint32_t L,
                             std::vector<Mem>& out) const {
  // Long-MEM sweep. A MEM of length >= L starts at j iff the window
  // query[j .. j+L) occurs in the reference, i.e. iff MS[j] >= L — so the
  // sweep only needs MS *thresholded* at L, never the exact values, and any
  // absent substring query[a .. b) certifies a whole block of dead starts at
  // once: every window containing it, j in [b-L, a]. Right-to-left over the
  // frontier f (highest unresolved start):
  //
  //  1. Probe: backward-search the short string query[f .. f+lambda). If it
  //     is absent, every start in [f+lambda-L, f] is dead — the frontier
  //     jumps L-lambda+1 positions for at most lambda extend steps.
  //  2. Otherwise run the eager MS recurrence from a cold start at
  //     R0 = f+L. From a cold start the tracked depth is exactly
  //     min(MS[x], R0-x) (occurrence is prefix-closed), so for every x <= f
  //     the threshold test m >= L is exact. Positions reaching depth >= L
  //     are recorded with their interval; their lcp widening to depth L and
  //     all locate() calls are batch-deferred to the end. The moment the
  //     sweep is past f and its depth drops below lambda/2, the string
  //     query[x .. x+m+1) is a fresh absence certificate — jump to
  //     x+m-L and go back to probing.
  //
  // Outputs are bit-identical to eager mode: the confirmed set is exactly
  // {x : MS[x] >= L}, and widen(iv, L) lands on the same maximal depth-L
  // interval from any nonempty sub-interval of it.
  const std::int64_t n = static_cast<std::int64_t>(query.size());
  const std::int64_t len = static_cast<std::int64_t>(L);
  if (n < len) return;  // no window of length L exists; eager finds nothing

  struct Confirmed {
    index::SaInterval iv;  // interval of query[j .. j+m) at depth m >= L
    std::uint32_t j;
  };
  std::vector<Confirmed> confirmed;

  // Probe length: past the random-match noise floor (~log4 of the reference
  // length) so probes in alignment deserts actually come back absent, short
  // enough that a probe is much cheaper than the L-lambda starts it kills.
  const std::int64_t lambda = std::min<std::int64_t>(len - 1, 32);
  const std::uint32_t exit_depth = static_cast<std::uint32_t>(lambda / 2);

  std::int64_t f = n - len;  // highest unresolved window start
  while (f >= 0) {
    // Probe query[f .. f+lambda).
    index::SaInterval iv = fm_->all_rows();
    bool absent = false;
    for (std::int64_t p = f + lambda; p-- > f;) {
      const index::SaInterval grown =
          fm_->extend(iv, query.base(static_cast<std::uint32_t>(p)));
      if (grown.empty()) {
        absent = true;
        break;
      }
      iv = grown;
    }
    if (absent) {
      f = f + lambda - len - 1;  // dead: [f+lambda-L, f]
      continue;
    }

    // Capped matching-statistics sweep, cold start at R0 = f + L.
    const std::int64_t r0 = f + len;
    iv = fm_->all_rows();
    std::uint32_t m = 0;
    std::int64_t x = r0;
    bool jumped = false;
    while (x-- > 0) {
      const std::uint8_t c = query.base(static_cast<std::uint32_t>(x));
      for (;;) {
        const index::SaInterval grown = fm_->extend(iv, c);
        if (!grown.empty()) {
          iv = grown;
          ++m;
          break;
        }
        if (m == 0) {
          iv = fm_->all_rows();
          break;
        }
        const std::uint32_t parent_depth =
            std::max(fm_->lcp_at(iv.lo), fm_->lcp_at(iv.hi));
        m = std::min(m - 1, parent_depth);
        iv = fm_->widen(iv, m);
        if (m == 0) iv = fm_->all_rows();
      }
      // m = min(MS[x], R0-x), so m >= L implies x <= f: re-confirming an
      // already-resolved start is impossible.
      if (m >= L) confirmed.push_back({iv, static_cast<std::uint32_t>(x)});
      if (x <= f && m < exit_depth) {
        // Below f with exact MS[x] = m: query[x .. x+m+1) is absent, which
        // kills every start in [x+m+1-L, x].
        f = x + static_cast<std::int64_t>(m) - len;
        jumped = true;
        break;
      }
    }
    if (!jumped) break;  // swept down to position 0: everything resolved
  }

  // Deferred resolution: widen each survivor to its depth-L interval and
  // locate the rows — the only lcp_at/locate work the lazy sweep does.
  std::size_t first = (lazy_skip_ && !confirmed.empty()) ? 1 : 0;
  for (std::size_t i = first; i < confirmed.size(); ++i) {
    const index::SaInterval at_L = fm_->widen(confirmed[i].iv, L);
    for (std::uint32_t row = at_L.lo; row < at_L.hi; ++row) {
      const std::uint32_t r = fm_->locate(row);
      emit_exact_candidate(*ref_, query, r, confirmed[i].j, L, out);
    }
  }
}

}  // namespace gm::mem
