#include "mem/clip.h"

#include <algorithm>

namespace gm::mem {

void clip_invalid_bases(const seq::Sequence& ref, const seq::Sequence& query,
                        std::vector<Mem>& mems, std::uint32_t min_len) {
  if (!ref.has_invalid() && !query.has_invalid()) return;
  std::vector<Mem> out;
  out.reserve(mems.size());
  for (const Mem& m : mems) {
    std::size_t i = 0;
    while (i < m.len) {
      const std::size_t ri =
          ref.next_invalid(std::size_t{m.r} + i, std::size_t{m.r} + m.len) -
          m.r;
      const std::size_t qi =
          query.next_invalid(std::size_t{m.q} + i, std::size_t{m.q} + m.len) -
          m.q;
      const std::size_t cut = std::min(ri, qi);
      if (cut > i && cut - i >= min_len) {
        out.push_back({m.r + static_cast<std::uint32_t>(i),
                       m.q + static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(cut - i)});
      }
      i = cut + 1;
    }
  }
  sort_unique(out);
  mems = std::move(out);
}

}  // namespace gm::mem
