#include "mem/stranded.h"

#include <algorithm>

namespace gm::mem {

std::vector<StrandedMem> find_mems_both_strands(const MemFinder& finder,
                                                const seq::Sequence& query) {
  std::vector<StrandedMem> out;
  for (const Mem& m : finder.find(query)) {
    out.push_back({m, Strand::kForward});
  }
  const seq::Sequence rc = query.reverse_complement();
  const std::uint32_t n = static_cast<std::uint32_t>(query.size());
  for (const Mem& m : finder.find(rc)) {
    Mem mapped = m;
    mapped.q = n - m.q - m.len;
    out.push_back({mapped, Strand::kReverse});
  }
  std::sort(out.begin(), out.end(),
            [](const StrandedMem& a, const StrandedMem& b) {
              if (a.match != b.match) return a.match < b.match;
              return a.strand < b.strand;
            });
  return out;
}

}  // namespace gm::mem
