// Definition-level MEM validation, independent of any finder: checks that
// every reported triplet satisfies Section II's definition (characters
// equal, maximal on both sides, length >= L) and that the set is sorted and
// duplicate-free. Maximality is evaluated under the project's invalid-base
// policy: a masked non-ACGT position matches nothing, so it both blocks
// extension and must never appear inside a match (mem/clip.h). Used by tests and by the benchmark harness to self-check
// outputs at scales where the O(|R|·|Q|) ground truth is infeasible.
//
// Note this checks soundness (everything reported is a true MEM), not
// completeness (nothing was missed) — completeness is established by the
// cross-finder equality tests at tractable scales.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/mem.h"
#include "seq/sequence.h"

namespace gm::mem {

struct ValidationReport {
  std::uint64_t checked = 0;
  std::uint64_t violations = 0;
  std::string first_error;  ///< human-readable description of the first issue

  bool ok() const { return violations == 0; }
};

ValidationReport validate_mems(const seq::Sequence& ref,
                               const seq::Sequence& query,
                               const std::vector<Mem>& mems,
                               std::uint32_t min_len);

}  // namespace gm::mem
