// Matching statistics: ms[j] = length of the longest prefix of query[j..]
// that occurs anywhere in the reference. The classic primitive underlying
// sparseMEM/essaMEM/slaMEM (Section II-A), exposed as a library feature;
// also the basis of MEM-count estimation and composition-distance methods.
#pragma once

#include <cstdint>
#include <vector>

#include "index/fm_index.h"
#include "seq/sequence.h"

namespace gm::mem {

/// Computes ms[j] for every query position against a prebuilt FM index of
/// the reference, via the right-to-left backward-search sweep with
/// LCP-parent shortening (amortized O(|Q|) index operations).
std::vector<std::uint32_t> matching_statistics(const index::FmIndex& fm,
                                               const seq::Sequence& query);

/// Convenience overload that builds the index internally.
std::vector<std::uint32_t> matching_statistics(const seq::Sequence& ref,
                                               const seq::Sequence& query);

}  // namespace gm::mem
