// Abstract interface shared by every MEM extraction tool in the project.
//
// Index construction (Table III) and matching (Table IV) are separate calls
// so the benchmark harness can time them the way the paper does; I/O never
// happens inside either call.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "mem/mem.h"
#include "seq/sequence.h"

namespace gm::mem {

struct FinderOptions {
  std::uint32_t min_length = 20;  ///< L, the MEM length threshold
  std::uint32_t threads = 1;      ///< τ for tools with shared-memory support
  std::uint32_t sparseness = 1;   ///< index sparseness K (sparse/essa tools)

  /// For timing studies on hosts with fewer than `threads` cores the
  /// sharded executor can run shards sequentially and report max-shard time
  /// (see DESIGN.md). true = always run shards sequentially.
  bool sequential_shards = false;

  /// Long-MEM mode for the FM-index (slaMEM-class) finder: defer LCP
  /// widening and locate() to windows already proven to reach length >= L,
  /// and skip dead query regions outright instead of maintaining full
  /// matching statistics. Output is bit-identical to the eager sweep; the
  /// win grows with L (see PERFORMANCE.md "Long-MEM mode"). Ignored by
  /// finders without a lazy path.
  bool lazy_lcp = false;
};

/// Entry-point option validation shared by every finder: min_length and
/// sparseness are divisors/moduli in the sampling arithmetic, so zero values
/// must fail deterministically here instead of reaching a division- or
/// modulo-by-zero downstream. Finders with a sparseness-coupled index depth
/// (sparseMEM/essaMEM-class) pass `sparse_index = true` to additionally
/// enforce sparseness <= min_length (the depth L - K + 1 must stay >= 1).
inline void validate_finder_options(const std::string& who,
                                    const FinderOptions& opt,
                                    bool sparse_index = false) {
  if (opt.min_length == 0) {
    throw std::invalid_argument(who + ": min_length must be >= 1");
  }
  if (opt.sparseness == 0) {
    throw std::invalid_argument(who + ": sparseness must be >= 1");
  }
  if (sparse_index && opt.sparseness > opt.min_length) {
    throw std::invalid_argument(who +
                                ": need 1 <= sparseness <= min_length");
  }
}

class MemFinder {
 public:
  virtual ~MemFinder() = default;

  virtual std::string name() const = 0;

  /// Builds (or rebuilds) the reference index. Must be called before find().
  virtual void build_index(const seq::Sequence& ref,
                           const FinderOptions& opt) = 0;

  /// Extracts all MEMs of length >= opt.min_length between the indexed
  /// reference and `query`, in canonical sorted order with no duplicates.
  virtual std::vector<Mem> find(const seq::Sequence& query) const = 0;

  /// Modeled parallel seconds of the last find() (max shard time); equals
  /// measured wall time for single-threaded tools. See DESIGN.md.
  virtual double last_find_modeled_seconds() const { return 0.0; }

  /// Approximate index footprint, for memory reporting.
  virtual std::size_t index_bytes() const { return 0; }
};

}  // namespace gm::mem
