// The maximal-exact-match triplet and canonical orderings.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace gm::mem {

/// A maximal exact match (r, q, λ) per the paper's Section II:
/// R[r+i] == Q[q+i] for i in [0, len), the characters just before (r, q) and
/// just after (r+len, q+len) differ or fall off a sequence end.
struct Mem {
  std::uint32_t r = 0;    ///< start in the reference
  std::uint32_t q = 0;    ///< start in the query
  std::uint32_t len = 0;  ///< λ

  /// Diagonal identifier r - q; co-diagonal matches are the ones the
  /// combine step (Algorithm 3) can merge.
  std::int64_t diagonal() const noexcept {
    return static_cast<std::int64_t>(r) - static_cast<std::int64_t>(q);
  }

  friend auto operator<=>(const Mem&, const Mem&) = default;
};

/// Canonical report order: by reference position, then query, then length.
void sort_mems(std::vector<Mem>& mems);

/// Sorts by (diagonal, q) — the order the out-block/out-tile combine stages
/// use (paper Section III-C1).
void sort_mems_diagonal(std::vector<Mem>& mems);

/// Sorts canonically and removes exact duplicates in place.
void sort_unique(std::vector<Mem>& mems);

std::string to_string(const Mem& m);

}  // namespace gm::mem
