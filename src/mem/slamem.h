// slaMEM-class finder (Fernandes & Freitas 2013, paper reference [8]):
// FM-index of the *reversed* reference so that growing a query window
// right-ward is one backward-search step, matching statistics maintained
// across consecutive query positions via LCP-driven parent-interval
// widening (the "sampled LCP array" idea), and candidate rows located
// through the sampled suffix array.
#pragma once

#include <memory>

#include "index/fm_index.h"
#include "mem/finder.h"

namespace gm::mem {

class SlaMemFinder final : public MemFinder {
 public:
  std::string name() const override { return "slamem"; }

  void build_index(const seq::Sequence& ref, const FinderOptions& opt) override;
  std::vector<Mem> find(const seq::Sequence& query) const override;
  double last_find_modeled_seconds() const override { return last_seconds_; }
  std::size_t index_bytes() const override { return fm_ ? fm_->bytes() : 0; }

 private:
  const seq::Sequence* ref_ = nullptr;
  FinderOptions opt_;
  std::unique_ptr<index::FmIndex> fm_;  // over reverse(ref)
  mutable double last_seconds_ = 0.0;
};

}  // namespace gm::mem
