// slaMEM-class finder (Fernandes & Freitas 2013, paper reference [8]):
// FM-index backward search with matching statistics maintained across
// consecutive query positions via LCP-driven parent-interval widening (the
// "sampled LCP array" idea), and candidate rows located through the
// sampled suffix array.
//
// Two sweep modes over the same index:
//   - eager (default): full matching statistics at every query position —
//     every parent jump pays lcp_at/widen even when the window can never
//     reach length L.
//   - lazy (FinderOptions::lazy_lcp): long-MEM mode in the spirit of the
//     lazy/thresholded matching-statistics line of work (arXiv 2403.02008,
//     2311.04538). Only the L-thresholded matching statistics are needed,
//     and any substring absent from the reference certifies a whole block
//     of dead window starts, so the sweep alternates short absence probes
//     (jumping up to L-probe starts at a time) with bounded eager bursts
//     where probes come back present; lcp_at/widen/locate are
//     batch-deferred to windows already proven to reach depth >= L.
//     Output is bit-identical to eager; cost becomes sublinear in |query|
//     as L grows (see PERFORMANCE.md "Long-MEM mode").
#pragma once

#include <memory>

#include "index/fm_index.h"
#include "mem/finder.h"

namespace gm::mem {

class SlaMemFinder final : public MemFinder {
 public:
  SlaMemFinder() = default;
  /// force_lazy pre-selects the lazy sweep regardless of
  /// FinderOptions::lazy_lcp — the registry's "slamem-lazy" name.
  explicit SlaMemFinder(bool force_lazy) : force_lazy_(force_lazy) {}

  std::string name() const override {
    return lazy() ? "slamem-lazy" : "slamem";
  }

  void build_index(const seq::Sequence& ref, const FinderOptions& opt) override;

  /// Store-artifact load path: adopts a prebuilt FM index (the artifact's
  /// kFmIndex section) instead of rebuilding it over `ref`. `ref` must be
  /// the sequence the index was built over.
  void adopt_index(const seq::Sequence& ref, const FinderOptions& opt,
                   index::FmIndex fm);

  std::vector<Mem> find(const seq::Sequence& query) const override;

  /// find() at an explicit minimum length, independent of the build-time
  /// FinderOptions::min_length. The FM index is L-independent, so one
  /// resident finder answers any per-request L — the serve path's long-MEM
  /// routing (docs/SERVING.md). Throws std::invalid_argument for L == 0.
  std::vector<Mem> find_at(const seq::Sequence& query,
                           std::uint32_t min_length) const;

  double last_find_modeled_seconds() const override { return last_seconds_; }
  std::size_t index_bytes() const override { return fm_ ? fm_->bytes() : 0; }

  /// Fuzz-oracle hook: when on, the lazy sweep drops its first confirmed
  /// window before the deferred widen/locate pass — simulating a skipped
  /// survivor so the differential oracle can prove it catches one
  /// (Fault::kLazySkipConfirmed).
  void inject_lazy_skip(bool on) { lazy_skip_ = on; }

  /// True when find() runs the lazy long-MEM sweep.
  bool lazy() const { return force_lazy_ || opt_.lazy_lcp; }

 private:
  void find_eager(const seq::Sequence& query, std::uint32_t L,
                  std::vector<Mem>& out) const;
  void find_lazy(const seq::Sequence& query, std::uint32_t L,
                 std::vector<Mem>& out) const;

  const seq::Sequence* ref_ = nullptr;
  FinderOptions opt_;
  std::unique_ptr<index::FmIndex> fm_;
  bool force_lazy_ = false;
  bool lazy_skip_ = false;
  mutable double last_seconds_ = 0.0;
};

}  // namespace gm::mem
