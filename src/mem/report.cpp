#include "mem/report.h"

#include <sstream>
#include <stdexcept>

namespace gm::mem {
namespace {

void write_section(std::ostream& out, const std::string& name,
                   const std::vector<Mem>& mems, bool reverse) {
  out << "> " << name << (reverse ? " Reverse" : "") << '\n';
  for (const Mem& m : mems) {
    out << "  " << m.r + 1 << '\t' << m.q + 1 << '\t' << m.len << '\n';
  }
}

}  // namespace

void write_mummer(std::ostream& out, const std::string& query_name,
                  const std::vector<Mem>& mems, bool reverse) {
  write_section(out, query_name, mems, reverse);
}

void write_mummer(std::ostream& out, const std::string& query_name,
                  const std::vector<StrandedMem>& mems) {
  std::vector<Mem> fwd, rev;
  for (const StrandedMem& s : mems) {
    (s.strand == Strand::kForward ? fwd : rev).push_back(s.match);
  }
  write_section(out, query_name, fwd, /*reverse=*/false);
  if (!rev.empty()) write_section(out, query_name, rev, /*reverse=*/true);
}

std::vector<MummerRecord> read_mummer(std::istream& in) {
  std::vector<MummerRecord> records;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    if (line.empty()) continue;
    if (line[0] == '>') {
      MummerRecord rec;
      std::string tag;
      ls >> tag;  // consume '>'
      std::string token;
      std::vector<std::string> tokens;
      while (ls >> token) tokens.push_back(token);
      if (!tokens.empty() && tokens.back() == "Reverse") {
        rec.reverse = true;
        tokens.pop_back();
      }
      std::string name;
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (i) name += ' ';
        name += tokens[i];
      }
      rec.query_name = std::move(name);
      records.push_back(std::move(rec));
      continue;
    }
    if (records.empty()) {
      throw std::runtime_error("read_mummer: match data before any header (line " +
                               std::to_string(lineno) + ")");
    }
    std::uint64_t r1 = 0, q1 = 0, len = 0;
    if (!(ls >> r1 >> q1 >> len) || r1 == 0 || q1 == 0) {
      throw std::runtime_error("read_mummer: malformed match line " +
                               std::to_string(lineno) + ": '" + line + "'");
    }
    records.back().mems.push_back({static_cast<std::uint32_t>(r1 - 1),
                                   static_cast<std::uint32_t>(q1 - 1),
                                   static_cast<std::uint32_t>(len)});
  }
  return records;
}

}  // namespace gm::mem
