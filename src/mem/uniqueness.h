// Uniqueness/rareness post-filters over a MEM stream — the paper's stated
// future work (Section V: "variants of the maximal exact match extraction
// problem such as unique and rare exact match extraction").
//
// A MEM is a MUM when its matched substring occurs exactly once in the
// reference and once in the query; a rare match occurs at most t times in
// each. Counting occurrences of each MEM's substring against the two suffix
// arrays answers both.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/mem.h"
#include "seq/sequence.h"

namespace gm::mem {

struct RarenessLimits {
  std::uint32_t max_ref_occurrences = 1;
  std::uint32_t max_query_occurrences = 1;
};

/// Filters `mems` down to those whose matched substring occurs at most
/// `limits.max_ref_occurrences` times in `ref` and
/// `limits.max_query_occurrences` times in `query`. With the default (1,1)
/// limits this extracts MUMs. Builds a suffix array per sequence; intended
/// for post-processing, not inner loops.
std::vector<Mem> filter_rare_matches(const std::vector<Mem>& mems,
                                     const seq::Sequence& ref,
                                     const seq::Sequence& query,
                                     const RarenessLimits& limits = {});

}  // namespace gm::mem
