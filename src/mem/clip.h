// Project-wide invalid-base (non-ACGT) policy enforcement.
//
// Policy: an invalid base matches nothing — not even another invalid base —
// so it terminates matches and never appears inside a MEM. Finders run
// mask-blind on the packed 2-bit codes (invalid positions carry placeholder
// code 0); because masked equality implies placeholder-code equality, every
// masked-maximal match is a fragment of exactly one raw (mask-blind) match.
// Splitting each raw match at invalid positions is therefore sound *and*
// complete for every finder, which makes this one function the single
// enforcement point — the property the differential fuzzer relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/mem.h"
#include "seq/sequence.h"

namespace gm::mem {

/// Splits every match at positions where either sequence carries an invalid
/// base; the maximal valid fragments of length >= min_len survive, restored
/// to canonical sorted order. No-op (and near-zero cost) when neither
/// sequence has invalid bases.
void clip_invalid_bases(const seq::Sequence& ref, const seq::Sequence& query,
                        std::vector<Mem>& mems, std::uint32_t min_len);

}  // namespace gm::mem
