// Brute-force MEM extraction by diagonal scanning — O(|R|·|Q|) worst case,
// word-accelerated. The ground truth every other finder is validated against.
#pragma once

#include <vector>

#include "mem/finder.h"

namespace gm::mem {

class NaiveFinder final : public MemFinder {
 public:
  std::string name() const override { return "naive"; }

  void build_index(const seq::Sequence& ref, const FinderOptions& opt) override {
    validate_finder_options("NaiveFinder", opt);
    ref_ = &ref;
    opt_ = opt;
  }

  std::vector<Mem> find(const seq::Sequence& query) const override;

 private:
  const seq::Sequence* ref_ = nullptr;
  FinderOptions opt_;
};

/// Free-function form used directly by tests.
std::vector<Mem> find_mems_naive(const seq::Sequence& ref,
                                 const seq::Sequence& query,
                                 std::uint32_t min_len);

}  // namespace gm::mem
