#include "mem/matching_stats.h"

#include <algorithm>

namespace gm::mem {

std::vector<std::uint32_t> matching_statistics(const index::FmIndex& fm,
                                               const seq::Sequence& query) {
  std::vector<std::uint32_t> ms(query.size(), 0);
  index::SaInterval iv = fm.all_rows();
  std::uint32_t m = 0;
  for (std::size_t jj = query.size(); jj-- > 0;) {
    const std::uint8_t c = query.base(jj);
    for (;;) {
      const index::SaInterval grown = fm.extend(iv, c);
      if (!grown.empty()) {
        iv = grown;
        ++m;
        break;
      }
      if (m == 0) {
        iv = fm.all_rows();
        break;
      }
      const std::uint32_t parent_depth =
          std::max(fm.lcp_at(iv.lo), fm.lcp_at(iv.hi));
      m = std::min(m - 1, parent_depth);
      iv = fm.widen(iv, m);
      if (m == 0) iv = fm.all_rows();
    }
    ms[jj] = m;
  }
  return ms;
}

std::vector<std::uint32_t> matching_statistics(const seq::Sequence& ref,
                                               const seq::Sequence& query) {
  const index::FmIndex fm(ref);
  return matching_statistics(fm, query);
}

}  // namespace gm::mem
