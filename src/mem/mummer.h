// MUMmer-class finder: full SA-IS suffix array, per-query-position interval
// search at depth L, exact-start candidate emission (Kurtz et al. 2004 /
// Delcher et al. 1999, the paper's references [12], [6]). Single-threaded,
// as in the paper's experiments.
#pragma once

#include <vector>

#include "mem/finder.h"

namespace gm::mem {

class MummerFinder final : public MemFinder {
 public:
  std::string name() const override { return "mummer"; }

  void build_index(const seq::Sequence& ref, const FinderOptions& opt) override;
  std::vector<Mem> find(const seq::Sequence& query) const override;
  double last_find_modeled_seconds() const override { return last_seconds_; }
  std::size_t index_bytes() const override {
    return sa_.size() * sizeof(std::uint32_t);
  }

 private:
  const seq::Sequence* ref_ = nullptr;
  FinderOptions opt_;
  std::vector<std::uint32_t> sa_;
  mutable double last_seconds_ = 0.0;
};

}  // namespace gm::mem
