// Both-strand MEM extraction — the standard tool workflow (MUMmer's -b):
// match the query as given, then its reverse complement, and report every
// match in *forward query coordinates* with a strand flag.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/finder.h"
#include "mem/mem.h"

namespace gm::mem {

enum class Strand : std::uint8_t { kForward, kReverse };

struct StrandedMem {
  Mem match;       ///< reverse-strand: q is the match start in the *forward*
                   ///< query of the region whose reverse complement equals
                   ///< the reference segment
  Strand strand = Strand::kForward;

  friend bool operator==(const StrandedMem&, const StrandedMem&) = default;
};

/// Runs `finder` (whose index must already be built) on the query and on its
/// reverse complement. Reverse-strand coordinates are mapped back to the
/// forward query: a match at RC position q' of length λ starts at forward
/// position |Q| - q' - λ.
std::vector<StrandedMem> find_mems_both_strands(const MemFinder& finder,
                                                const seq::Sequence& query);

}  // namespace gm::mem
