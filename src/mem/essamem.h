// essaMEM-class finder (Vyverman et al. 2013, paper reference [16]):
// enhanced *sparse* suffix array whose child table replaces binary search
// with O(pattern) top-down descent — the matching-speed edge essaMEM has
// over sparseMEM in the paper's Table IV. τ-way parallel over query shards
// with a fixed sparseness (independent of τ, unlike sparseMEM).
#pragma once

#include <memory>

#include "index/esa.h"
#include "mem/finder.h"

namespace gm::mem {

class EssaMemFinder final : public MemFinder {
 public:
  std::string name() const override { return "essamem"; }

  void build_index(const seq::Sequence& ref, const FinderOptions& opt) override;
  std::vector<Mem> find(const seq::Sequence& query) const override;
  double last_find_modeled_seconds() const override { return last_seconds_; }
  std::size_t index_bytes() const override { return esa_ ? esa_->bytes() : 0; }

 private:
  const seq::Sequence* ref_ = nullptr;
  FinderOptions opt_;
  std::unique_ptr<index::EnhancedSuffixArray> esa_;
  mutable double last_seconds_ = 0.0;
};

}  // namespace gm::mem
