#include "mem/mem.h"

#include <algorithm>

namespace gm::mem {

void sort_mems(std::vector<Mem>& mems) { std::sort(mems.begin(), mems.end()); }

void sort_mems_diagonal(std::vector<Mem>& mems) {
  std::sort(mems.begin(), mems.end(), [](const Mem& a, const Mem& b) {
    if (a.diagonal() != b.diagonal()) return a.diagonal() < b.diagonal();
    if (a.q != b.q) return a.q < b.q;
    return a.len < b.len;
  });
}

void sort_unique(std::vector<Mem>& mems) {
  sort_mems(mems);
  mems.erase(std::unique(mems.begin(), mems.end()), mems.end());
}

std::string to_string(const Mem& m) {
  return "(" + std::to_string(m.r) + ", " + std::to_string(m.q) + ", " +
         std::to_string(m.len) + ")";
}

}  // namespace gm::mem
