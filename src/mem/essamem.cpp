#include "mem/essamem.h"

#include <stdexcept>

#include "mem/clip.h"
#include "mem/common.h"
#include "util/parallel.h"

namespace gm::mem {

void EssaMemFinder::build_index(const seq::Sequence& ref,
                                const FinderOptions& opt) {
  validate_finder_options("EssaMemFinder", opt, /*sparse_index=*/true);
  ref_ = &ref;
  opt_ = opt;
  esa_ = std::make_unique<index::EnhancedSuffixArray>(ref, opt.sparseness);
}

std::vector<Mem> EssaMemFinder::find(const seq::Sequence& query) const {
  if (!esa_) throw std::logic_error("EssaMemFinder: no index built");
  const std::uint32_t L = opt_.min_length;
  const std::uint32_t K = opt_.sparseness;
  const std::uint32_t depth = L - K + 1;
  const std::uint32_t shards = std::max(1u, opt_.threads);

  std::vector<std::vector<Mem>> partial(shards);
  auto body = [&](std::size_t shard) {
    std::vector<Mem>& out = partial[shard];
    if (query.size() < depth) return;
    const std::size_t total = query.size() - depth + 1;
    const std::size_t chunk = (total + shards - 1) / shards;
    const std::size_t begin = shard * chunk;
    const std::size_t end = std::min(total, begin + chunk);
    for (std::size_t j = begin; j < end; ++j) {
      const auto descent = esa_->descend(query, j, depth);
      if (descent.matched < depth) continue;
      for (std::uint32_t i = descent.interval.lo; i < descent.interval.hi;
           ++i) {
        emit_sampled_candidate(*ref_, query, esa_->positions()[i],
                               static_cast<std::uint32_t>(j), K, L, out);
      }
    }
  };

  const util::ShardedExecutor exec(opt_.sequential_shards
                                       ? util::ShardedExecutor::Policy::kSequential
                                       : util::ShardedExecutor::Policy::kAuto);
  const util::ShardReport report = exec.run(shards, body);
  last_seconds_ = report.modeled_parallel_seconds();

  std::vector<Mem> out;
  for (auto& p : partial) out.insert(out.end(), p.begin(), p.end());
  clip_invalid_bases(*ref_, query, out, L);
  sort_unique(out);
  return out;
}

}  // namespace gm::mem
