#include "mem/validate.h"

namespace gm::mem {
namespace {

std::string describe(const Mem& m, const char* what) {
  return to_string(m) + ": " + what;
}

}  // namespace

ValidationReport validate_mems(const seq::Sequence& ref,
                               const seq::Sequence& query,
                               const std::vector<Mem>& mems,
                               std::uint32_t min_len) {
  ValidationReport report;
  const Mem* prev = nullptr;
  for (const Mem& m : mems) {
    ++report.checked;
    const char* error = nullptr;
    const std::size_t r_end = std::size_t{m.r} + m.len;
    const std::size_t q_end = std::size_t{m.q} + m.len;
    if (m.len < min_len) {
      error = "shorter than L";
    } else if (r_end > ref.size() || q_end > query.size()) {
      error = "out of bounds";
    } else if (ref.common_prefix(m.r, query, m.q, m.len) != m.len) {
      error = "characters differ inside the match";
    } else if (ref.next_invalid(m.r, r_end) != r_end ||
               query.next_invalid(m.q, q_end) != q_end) {
      // Policy (docs/TESTING.md): an invalid base matches nothing, so it can
      // never lie inside a MEM.
      error = "invalid (non-ACGT) base inside the match";
    } else if (m.r > 0 && m.q > 0 && ref.valid(m.r - 1) &&
               query.valid(m.q - 1) &&
               ref.base(m.r - 1) == query.base(m.q - 1)) {
      error = "extendable to the left";
    } else if (r_end < ref.size() && q_end < query.size() &&
               ref.valid(r_end) && query.valid(q_end) &&
               ref.base(r_end) == query.base(q_end)) {
      error = "extendable to the right";
    } else if (prev != nullptr && !(*prev < m)) {
      error = "not in canonical sorted order / duplicate";
    }
    if (error != nullptr) {
      ++report.violations;
      if (report.first_error.empty()) {
        report.first_error = describe(m, error);
      }
    }
    prev = &m;
  }
  return report;
}

}  // namespace gm::mem
