#include "mem/validate.h"

#include "mem/common.h"

namespace gm::mem {
namespace {

std::string describe(const Mem& m, const char* what) {
  return to_string(m) + ": " + what;
}

}  // namespace

ValidationReport validate_mems(const seq::Sequence& ref,
                               const seq::Sequence& query,
                               const std::vector<Mem>& mems,
                               std::uint32_t min_len) {
  ValidationReport report;
  const Mem* prev = nullptr;
  for (const Mem& m : mems) {
    ++report.checked;
    const char* error = nullptr;
    if (m.len < min_len) {
      error = "shorter than L";
    } else if (std::size_t{m.r} + m.len > ref.size() ||
               std::size_t{m.q} + m.len > query.size()) {
      error = "out of bounds";
    } else if (ref.common_prefix(m.r, query, m.q, m.len) != m.len) {
      error = "characters differ inside the match";
    } else if (!left_maximal(ref, query, m.r, m.q)) {
      error = "extendable to the left";
    } else if (std::size_t{m.r} + m.len < ref.size() &&
               std::size_t{m.q} + m.len < query.size() &&
               ref.base(m.r + m.len) == query.base(m.q + m.len)) {
      error = "extendable to the right";
    } else if (prev != nullptr && !(*prev < m)) {
      error = "not in canonical sorted order / duplicate";
    }
    if (error != nullptr) {
      ++report.violations;
      if (report.first_error.empty()) {
        report.first_error = describe(m, error);
      }
    }
    prev = &m;
  }
  return report;
}

}  // namespace gm::mem
