#include "mem/copmem.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "mem/clip.h"
#include "mem/common.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace gm::mem {

namespace {

/// Largest k₂ <= limit/k₁ with gcd(k₁, k₂) = 1 (>= 1: k₂ = 1 always works).
std::uint32_t derive_k2(std::uint32_t limit, std::uint32_t k1) {
  std::uint32_t k2 = std::max<std::uint32_t>(1, limit / k1);
  while (std::gcd(k1, k2) != 1) --k2;
  return k2;
}

}  // namespace

CopMemFinder::Params CopMemFinder::choose_params(std::uint32_t min_length,
                                                 unsigned seed_len) {
  if (seed_len == 0 || seed_len > 16 || seed_len > min_length) {
    throw std::invalid_argument(
        "CopMemFinder: need 1 <= seed_len <= min(min_length, 16), got "
        "seed_len " +
        std::to_string(seed_len) + " with min_length " +
        std::to_string(min_length));
  }
  // L1 = number of K-mer start positions inside a MEM of exactly length L;
  // the sampling lattice period k1*k2 must not exceed it.
  const std::uint32_t L1 = min_length - seed_len + 1;
  std::uint32_t k1 = static_cast<std::uint32_t>(std::max(
      1.0, std::sqrt(static_cast<double>(L1))));
  while ((k1 + 1) * (k1 + 1) <= L1) ++k1;
  while (k1 > 1 && k1 * k1 > L1) --k1;
  return {seed_len, k1, derive_k2(L1, k1)};
}

unsigned CopMemFinder::auto_seed_len(std::size_t ref_bases,
                                     std::uint32_t min_length) {
  // ~log4(ref size): keeps the 4^K bucket table proportional to the payload.
  const unsigned bits = static_cast<unsigned>(std::bit_width(ref_bases + 1));
  const unsigned k = std::clamp(bits / 2, 1u, 12u);
  return std::min<unsigned>(k, std::min<std::uint32_t>(min_length, 16));
}

void CopMemFinder::build_index(const seq::Sequence& ref,
                               const FinderOptions& opt) {
  validate_finder_options("CopMemFinder", opt);
  const unsigned K = requested_seed_len_ != 0
                         ? requested_seed_len_
                         : auto_seed_len(ref.size(), opt.min_length);
  params_ = choose_params(opt.min_length, K);  // validates K against L
  ref_ = &ref;
  opt_ = opt;
  util::Timer timer;
  idx_ = std::make_unique<index::KmerIndex>(ref, 0, ref.size(), K, params_.k1);
  build_seconds_ = timer.seconds();
}

void CopMemFinder::adopt_index(const seq::Sequence& ref,
                               const FinderOptions& opt,
                               index::KmerIndex idx) {
  validate_finder_options("CopMemFinder", opt);
  const unsigned K = idx.seed_len();
  if (K > 16 || K > opt.min_length) {
    throw std::invalid_argument(
        "CopMemFinder: adopted index seed_len " + std::to_string(K) +
        " exceeds min(min_length, 16) with min_length " +
        std::to_string(opt.min_length));
  }
  const std::uint32_t L1 = opt.min_length - K + 1;
  const std::uint32_t k1 = idx.step();
  if (k1 > L1) {
    throw std::invalid_argument(
        "CopMemFinder: adopted index step " + std::to_string(k1) +
        " exceeds L - K + 1 = " + std::to_string(L1) +
        " — no query sampling rate can guarantee MEM coverage");
  }
  ref_ = &ref;
  opt_ = opt;
  params_ = {K, k1, derive_k2(L1, k1)};
  idx_ = std::make_unique<index::KmerIndex>(std::move(idx));
  build_seconds_ = 0.0;
}

std::vector<Mem> CopMemFinder::find(const seq::Sequence& query) const {
  if (!idx_) throw std::logic_error("CopMemFinder: no index built");
  const std::uint32_t L = opt_.min_length;
  const unsigned K = params_.seed_len;
  const std::uint32_t k2 = params_.k2;
  // Sampled pairs on a diagonal are k1*k2 apart (gcd(k1,k2)=1, CRT), so the
  // first-lattice-point dedupe runs on that grid.
  const std::uint32_t grid = params_.k1 * params_.k2;
  const std::uint32_t shards = std::max(1u, opt_.threads);

  std::vector<std::vector<Mem>> partial(shards);
  auto body = [&](std::size_t shard) {
    std::vector<Mem>& out = partial[shard];
    if (query.size() < K) return;
    const std::size_t total = (query.size() - K) / k2 + 1;
    const std::size_t chunk = (total + shards - 1) / shards;
    const std::size_t begin = shard * chunk;
    const std::size_t end = std::min(total, begin + chunk);
    for (std::size_t s = begin; s < end; ++s) {
      const std::uint32_t j = static_cast<std::uint32_t>(s * k2);
      for (const std::uint32_t p : idx_->lookup(query.kmer(j, K))) {
        emit_sampled_candidate(*ref_, query, p, j, grid, L, out);
      }
    }
  };

  const util::ShardedExecutor exec(opt_.sequential_shards
                                       ? util::ShardedExecutor::Policy::kSequential
                                       : util::ShardedExecutor::Policy::kAuto);
  const util::ShardReport report = exec.run(shards, body);
  last_seconds_ = report.modeled_parallel_seconds();

  std::vector<Mem> out;
  for (auto& p : partial) out.insert(out.end(), p.begin(), p.end());
  if (drop_candidate_ && !out.empty()) out.erase(out.begin());
  clip_invalid_bases(*ref_, query, out, L);
  sort_unique(out);
  return out;
}

}  // namespace gm::mem
