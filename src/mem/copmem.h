// copMEM-class finder (Grabowski & Bieniecki 2018, arXiv 1805.08816):
// double sampling on both genomes instead of a suffix structure. The
// reference indexes only every k₁-th K-mer (a plain `index::KmerIndex` with
// step = k₁); the query probes only every k₂-th position. With
// gcd(k₁, k₂) = 1, the sampled pairs on any diagonal form a lattice of
// period k₁·k₂, so choosing k₁·k₂ <= L − K + 1 guarantees every MEM of
// length >= L contains at least one sampled pair whose K-mer lies fully
// inside it (the count of K-mer start positions in such a MEM is at least
// L − K + 1). Candidates are verified with the word-parallel
// `lce_forward`/`lce_backward` on the 2-bit codec and deduplicated by the
// first-lattice-point rule (`emit_sampled_candidate` with grid = k₁·k₂):
// each MEM is emitted exactly once, via its earliest in-MEM sampled pair.
//
// The point is index-build cost: construction is one counting sort over
// n/k₁ sampled positions — no SA-IS, no LCP — which is why this is the
// fast-index mode of the native pipeline and the serve path.
#pragma once

#include <memory>

#include "index/kmer_index.h"
#include "mem/finder.h"

namespace gm::mem {

class CopMemFinder final : public MemFinder {
 public:
  /// Resolved sampling geometry: seeds of length `seed_len` (K), reference
  /// grid step `k1`, query probe step `k2`; gcd(k1, k2) == 1 and
  /// k1 * k2 <= min_length - seed_len + 1 always hold after build_index.
  struct Params {
    unsigned seed_len = 0;
    std::uint32_t k1 = 0;
    std::uint32_t k2 = 0;
  };

  std::string name() const override { return "copmem"; }

  /// Pins the seed length K. 0 (the default) auto-sizes it from the
  /// reference length so the 4^K bucket table stays proportional to the
  /// payload. Call before build_index; K must satisfy K <= min(L, 16).
  void set_seed_len(unsigned seed_len) { requested_seed_len_ = seed_len; }

  void build_index(const seq::Sequence& ref, const FinderOptions& opt) override;

  /// Store-artifact load path: adopts a prebuilt sampled index (seed_len =
  /// K, step = k₁) instead of building one. k₂ is re-derived from the
  /// adopted k₁ and `opt.min_length`; throws std::invalid_argument when the
  /// adopted geometry cannot guarantee coverage (k₁ > L − K + 1).
  void adopt_index(const seq::Sequence& ref, const FinderOptions& opt,
                   index::KmerIndex idx);

  std::vector<Mem> find(const seq::Sequence& query) const override;
  double last_find_modeled_seconds() const override { return last_seconds_; }
  std::size_t index_bytes() const override { return idx_ ? idx_->bytes() : 0; }

  /// Wall seconds build_index spent constructing the sampled index (0 for
  /// an adopted index — the cost lives in the artifact).
  double build_seconds() const { return build_seconds_; }

  const Params& params() const { return params_; }
  const index::KmerIndex* index() const { return idx_.get(); }

  /// Fuzz-oracle hook: when on, find() drops the first discovered raw
  /// candidate before clipping — simulating a lost sampled pair so the
  /// differential oracle can prove it catches one (Fault::kCopmemDropCandidate).
  void inject_candidate_drop(bool on) { drop_candidate_ = on; }

  /// Chooses (k₁, k₂) for seeds of length `seed_len`: k₁ ≈ √(L − K + 1),
  /// k₂ the largest coprime partner with k₁·k₂ <= L − K + 1. Requires
  /// 1 <= seed_len <= min(min_length, 16).
  static Params choose_params(std::uint32_t min_length, unsigned seed_len);

  /// Default K: ~log₄(reference size), clamped to [1, min(min_length, 12)],
  /// so tiny test references get tiny bucket tables.
  static unsigned auto_seed_len(std::size_t ref_bases,
                                std::uint32_t min_length);

 private:
  const seq::Sequence* ref_ = nullptr;
  FinderOptions opt_;
  Params params_;
  unsigned requested_seed_len_ = 0;
  bool drop_candidate_ = false;
  std::unique_ptr<index::KmerIndex> idx_;
  double build_seconds_ = 0.0;
  mutable double last_seconds_ = 0.0;
};

}  // namespace gm::mem
