// Shared candidate-to-MEM emission logic.
//
// Every finder in this project reduces to: generate candidate aligned pairs
// (r, q) that are guaranteed to lie inside any MEM of length >= L, then
// validate maximality and length. Two candidate flavours exist:
//
//  * exact-start candidates (full indexes: MUMmer-, slaMEM-class): (r, q) is
//    the would-be MEM start; left-maximality is a single character test and
//    the length is the right extension.
//  * sampled candidates (sparse indexes: sparseMEM-class, GPUMEM): (p, j)
//    lies somewhere inside the MEM with p on a global sampling grid of step
//    K; the MEM start is recovered by full left extension, and the pair is
//    emitted only when p is the first grid point inside the MEM on its
//    diagonal, which dedupes multi-hit MEMs exactly once.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/mem.h"
#include "seq/packed.h"
#include "seq/sequence.h"

namespace gm::mem {

/// True when (r, q) cannot be extended one character to the left.
inline bool left_maximal(const seq::Sequence& ref, const seq::Sequence& query,
                         std::uint32_t r, std::uint32_t q) noexcept {
  return r == 0 || q == 0 || ref.base(r - 1) != query.base(q - 1);
}

/// Exact-start candidate: emits (r, q, λ) when left-maximal and λ >= L.
/// λ is the full right extension (word-parallel, 32 bases per 64-bit XOR),
/// so right-maximality is structural.
inline void emit_exact_candidate(const seq::Sequence& ref,
                                 const seq::Sequence& query, std::uint32_t r,
                                 std::uint32_t q, std::uint32_t min_len,
                                 std::vector<Mem>& out) {
  if (!left_maximal(ref, query, r, q)) return;
  const std::size_t len = seq::lce_forward(ref, r, query, q, ref.size());
  if (len >= min_len) {
    out.push_back({r, q, static_cast<std::uint32_t>(len)});
  }
}

/// Sampled candidate at grid step `grid`: p is an indexed reference position
/// (p % grid == 0 on the global grid) aligned with query position j.
/// Recovers the containing MEM by bidirectional extension; emits it only via
/// its first in-MEM grid point.
inline void emit_sampled_candidate(const seq::Sequence& ref,
                                   const seq::Sequence& query, std::uint32_t p,
                                   std::uint32_t j, std::uint32_t grid,
                                   std::uint32_t min_len,
                                   std::vector<Mem>& out) {
  // The backward probe is capped at `grid`: lce_backward returns
  // min(true extension, cap), so cap == result exactly when an earlier grid
  // point lies inside this MEM, and otherwise the result is the exact
  // extension (< grid). Without the cap every interior grid point of a long
  // MEM walks the whole match backward — O(len^2 / grid) total work.
  std::uint32_t back = 0;
  if (p > 0 && j > 0) {
    back = static_cast<std::uint32_t>(
        seq::lce_backward(ref, p - 1, query, j - 1, grid));
  }
  if (back >= grid) return;  // an earlier grid point lies inside this MEM
  const std::uint32_t r = p - back;
  const std::uint32_t q = j - back;
  const std::size_t fwd = seq::lce_forward(ref, p, query, j, ref.size());
  const std::size_t len = back + fwd;
  if (len >= min_len) {
    out.push_back({r, q, static_cast<std::uint32_t>(len)});
  }
}

}  // namespace gm::mem
