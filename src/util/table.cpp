#include "util/table.h"

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>

namespace gm::util {

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

static std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "gm::util::Table: cannot open " << path << " for writing\n";
    return false;
  }
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace gm::util
