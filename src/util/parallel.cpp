#include "util/parallel.h"

#include <exception>

namespace gm::util {

void parallel_for_chunked(
    std::size_t first, std::size_t last, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (first >= last) return;
  const std::size_t n = last - first;
  chunks = std::max<std::size_t>(1, std::min(chunks, n));
  if (chunks == 1) {
    fn(first, last);
    return;
  }
  const std::size_t step = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t b = first + c * step;
    if (b >= last) break;
    const std::size_t e = std::min(last, b + step);
    futures.push_back(ThreadPool::global().submit([&fn, b, e] { fn(b, e); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ShardReport ShardedExecutor::run(
    std::size_t shards, const std::function<void(std::size_t)>& body) const {
  ShardReport report;
  report.shard_seconds.assign(shards, 0.0);
  Timer wall;

  bool concurrent = false;
  switch (policy_) {
    case Policy::kConcurrent:
      concurrent = true;
      break;
    case Policy::kSequential:
      concurrent = false;
      break;
    case Policy::kAuto:
      concurrent = ThreadPool::global().size() >= shards;
      break;
  }

  if (concurrent) {
    std::vector<std::future<void>> futures;
    futures.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      futures.push_back(ThreadPool::global().submit([&, s] {
        Timer t;
        body(s);
        report.shard_seconds[s] = t.seconds();
      }));
    }
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  } else {
    for (std::size_t s = 0; s < shards; ++s) {
      Timer t;
      body(s);
      report.shard_seconds[s] = t.seconds();
    }
  }
  report.wall_seconds = wall.seconds();
  return report;
}

}  // namespace gm::util
