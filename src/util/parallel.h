// Parallel building blocks: chunked parallel_for, prefix sums, and the
// ShardedExecutor used to report τ-thread timings faithfully on hosts with
// fewer than τ physical cores.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <numeric>
#include <vector>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace gm::util {

/// Runs fn(begin, end) over [first, last) split into ~`chunks` contiguous
/// ranges on the global thread pool. Blocks until all chunks finish.
/// Exceptions from chunks are rethrown (first one wins).
void parallel_for_chunked(std::size_t first, std::size_t last,
                          std::size_t chunks,
                          const std::function<void(std::size_t, std::size_t)>& fn);

/// Element-wise parallel for with automatic chunking (one chunk per worker).
template <typename Fn>
void parallel_for(std::size_t first, std::size_t last, Fn&& fn) {
  parallel_for_chunked(first, last, ThreadPool::global().size(),
                       [&fn](std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i) fn(i);
                       });
}

/// Exclusive prefix sum in place: out[i] = sum of in[0..i), returns total.
/// Single-threaded; the device-side parallel scan lives in simt/primitives.
template <typename T>
T exclusive_scan_inplace(std::vector<T>& v) {
  T running{};
  for (auto& x : v) {
    T next = running + x;
    x = running;
    running = next;
  }
  return running;
}

/// Per-shard timing report for a τ-way parallel section.
struct ShardReport {
  std::vector<double> shard_seconds;  ///< wall time of each shard body
  double wall_seconds = 0.0;          ///< actual elapsed wall time

  /// Modeled τ-core time: the longest shard. On a machine with >= τ idle
  /// cores this equals wall time (minus scheduling noise); on this project's
  /// 1-core container it is the documented stand-in for multicore runs
  /// (see DESIGN.md, hardware substitutions).
  double modeled_parallel_seconds() const {
    double mx = 0.0;
    for (double s : shard_seconds) mx = std::max(mx, s);
    return mx;
  }
};

/// Executes `shards` independent bodies and reports per-shard timings.
///
/// Policy:
///  * kConcurrent — run on the global pool (true parallel execution).
///  * kSequential — run back-to-back on the calling thread; deterministic
///    and interference-free, used for timing studies on undersized hosts.
///  * kAuto — concurrent when hardware threads >= shards, else sequential.
class ShardedExecutor {
 public:
  enum class Policy { kAuto, kSequential, kConcurrent };

  explicit ShardedExecutor(Policy policy = Policy::kAuto) : policy_(policy) {}

  ShardReport run(std::size_t shards,
                  const std::function<void(std::size_t)>& body) const;

 private:
  Policy policy_;
};

}  // namespace gm::util
