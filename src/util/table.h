// Console table / CSV rendering for the benchmark harness, so every bench
// binary prints rows in the same layout as the paper's tables and also dumps
// machine-readable CSV next to it.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace gm::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);

  /// Convenience: formats arithmetic cells with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

  /// Pretty, column-aligned rendering for terminals.
  std::string to_string() const;

  /// RFC-4180-ish CSV (values with commas/quotes get quoted).
  std::string to_csv() const;

  /// Writes CSV to `path`; returns false (and logs) on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gm::util
