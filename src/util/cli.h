// Minimal command-line flag parser used by examples and bench binaries.
//
// Syntax: --name value | --name=value | --flag (boolean). Unknown flags are
// an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gm::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const { return flags_.count(name) != 0; }

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Registers documentation for --help output.
  void describe(const std::string& name, const std::string& help);

  /// True when --help was passed; prints usage to stdout.
  bool handle_help(const std::string& program_summary) const;

  /// Names that were passed but never queried/described — surfaced so tests
  /// can assert CLI hygiene.
  std::vector<std::string> flag_names() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  std::vector<std::pair<std::string, std::string>> docs_;
};

}  // namespace gm::util
