// Wall-clock timing helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace gm::util {

/// Monotonic stopwatch. Construction starts it.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset.
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }

  std::uint64_t nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  clock::time_point start_;
};

/// Accumulates elapsed time into a double on scope exit; useful for summing
/// time spent in repeated phases (e.g. per-tile index builds).
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) noexcept : sink_(sink) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }

 private:
  double& sink_;
  Timer timer_;
};

}  // namespace gm::util
