// FNV-1a 64-bit checksums (one-shot and streaming).
//
// Used by the store/ artifact format to protect the file header and every
// section payload, and by the fuzz harness to fingerprint reproducer files.
// FNV-1a is not cryptographic — it detects corruption (bit flips, truncated
// or transposed writes), which is the on-disk failure model the artifact
// reader defends against; authenticity is out of scope.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gm::util {

/// FNV-1a 64 offset basis: the checksum of empty input.
inline constexpr std::uint64_t kFnv1a64Seed = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1a64Prime = 0x00000100000001b3ull;

/// One-shot FNV-1a 64 over `len` bytes, continuing from `seed` (chain calls
/// by threading the previous digest through).
constexpr std::uint64_t fnv1a64(const void* data, std::size_t len,
                                std::uint64_t seed = kFnv1a64Seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnv1a64Prime;
  }
  return h;
}

inline std::uint64_t fnv1a64(std::string_view s,
                             std::uint64_t seed = kFnv1a64Seed) noexcept {
  return fnv1a64(s.data(), s.size(), seed);
}

/// 8-lane striped FNV-1a 64 for bulk payloads: lane l hashes bytes l, l+8,
/// l+16, ... and the eight lane digests are folded with plain fnv1a64.
/// FNV-1a's xor-multiply chain is serially dependent, which caps the plain
/// function near one multiply-latency per byte; eight independent lanes run
/// at multiply *throughput* instead (~5-8x on large buffers). Any single
/// corrupted byte lands in exactly one lane, so detection is preserved.
/// This is a distinct digest — NOT interchangeable with fnv1a64 — used for
/// store/ section payloads, where verification speed is the point of the
/// format (docs/STORAGE.md).
inline std::uint64_t fnv1a64_striped(const void* data,
                                     std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t lane[8] = {kFnv1a64Seed, kFnv1a64Seed, kFnv1a64Seed,
                           kFnv1a64Seed, kFnv1a64Seed, kFnv1a64Seed,
                           kFnv1a64Seed, kFnv1a64Seed};
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    for (std::size_t l = 0; l < 8; ++l) {
      lane[l] = (lane[l] ^ p[i + l]) * kFnv1a64Prime;
    }
  }
  for (std::size_t l = 0; i < len; ++i, ++l) {
    lane[l] = (lane[l] ^ p[i]) * kFnv1a64Prime;
  }
  return fnv1a64(lane, sizeof lane);
}

/// Streaming FNV-1a 64: feed chunks in any split, digest() at any point.
/// digest() is pure (the accumulator keeps absorbing after it), so callers
/// can checkpoint a running checksum — e.g. per-section digests inside one
/// pass over a file.
class Fnv1a64 {
 public:
  Fnv1a64& update(const void* data, std::size_t len) noexcept {
    hash_ = fnv1a64(data, len, hash_);
    bytes_ += len;
    return *this;
  }
  Fnv1a64& update(std::string_view s) noexcept {
    return update(s.data(), s.size());
  }

  std::uint64_t digest() const noexcept { return hash_; }
  std::uint64_t bytes_consumed() const noexcept { return bytes_; }

  void reset() noexcept {
    hash_ = kFnv1a64Seed;
    bytes_ = 0;
  }

 private:
  std::uint64_t hash_ = kFnv1a64Seed;
  std::uint64_t bytes_ = 0;
};

}  // namespace gm::util
