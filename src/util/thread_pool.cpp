#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace gm::util {
namespace {

/// Size requested via configure_global(); 0 = not configured.
std::atomic<std::size_t> g_requested_threads{0};
/// Set once the global pool has been constructed (its size is then fixed).
std::atomic<bool> g_global_created{false};

std::size_t resolve_global_size() {
  const std::size_t requested =
      g_requested_threads.load(std::memory_order_acquire);
  if (requested != 0) return requested;
  if (const char* env = std::getenv("GPUMEM_THREADS")) {
    char* end = nullptr;
    const unsigned long n = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && n > 0) {
      return static_cast<std::size_t>(n);
    }
  }
  return 0;  // ThreadPool ctor falls back to hardware concurrency
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(resolve_global_size());
  g_global_created.store(true, std::memory_order_release);
  return pool;
}

void ThreadPool::configure_global(std::size_t threads) {
  if (g_global_created.load(std::memory_order_acquire)) {
    if (threads != 0 && threads != global().size()) {
      throw std::logic_error(
          "ThreadPool::configure_global: global pool already created with " +
          std::to_string(global().size()) + " threads; cannot resize to " +
          std::to_string(threads));
    }
    return;
  }
  g_requested_threads.store(threads, std::memory_order_release);
}

}  // namespace gm::util
