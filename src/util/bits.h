// Bit-manipulation helpers shared across the project.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace gm::util {

/// Smallest power of two >= x (x == 0 yields 1).
constexpr std::uint64_t ceil_pow2(std::uint64_t x) noexcept {
  return x <= 1 ? 1 : std::bit_ceil(x);
}

/// floor(log2(x)) for x > 0.
constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

/// ceil(log2(x)) for x > 0; number of bits needed to distinguish x values.
constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  return x <= 1 ? 0 : floor_log2(x - 1) + 1;
}

/// ceil(a / b) for integral types, b > 0.
template <typename T>
constexpr T ceil_div(T a, T b) noexcept {
  static_assert(std::is_integral_v<T>);
  return static_cast<T>((a + b - 1) / b);
}

/// Round a up to the next multiple of b (b > 0).
template <typename T>
constexpr T round_up(T a, T b) noexcept {
  return ceil_div(a, b) * b;
}

constexpr bool is_pow2(std::uint64_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace gm::util
