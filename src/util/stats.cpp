#include "util/stats.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace gm::util {

std::uint64_t Histogram::total() const {
  std::uint64_t t = 0;
  for (const auto& [k, v] : bins_) t += v;
  return t;
}

std::uint64_t Histogram::max_key() const {
  return bins_.empty() ? 0 : bins_.rbegin()->first;
}

Histogram Histogram::capped(std::uint64_t cap) const {
  Histogram out;
  for (const auto& [k, v] : bins_) out.add(std::min(k, cap), v);
  return out;
}

std::string Histogram::to_tsv() const {
  std::ostringstream os;
  for (const auto& [k, v] : bins_) os << k << '\t' << v << '\n';
  return os.str();
}

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sum2_ += x * x;
}

double Summary::mean() const {
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum_ / static_cast<double>(n_);
}

double Summary::min() const {
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return min_;
}

double Summary::max() const {
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return max_;
}

double Summary::variance() const {
  if (n_ < 2) return std::numeric_limits<double>::quiet_NaN();
  const double m = mean();
  return (sum2_ - static_cast<double>(n_) * m * m) / static_cast<double>(n_ - 1);
}

}  // namespace gm::util
