// A small fixed-size work-stealing-free thread pool.
//
// The pool is deliberately simple: a single mutex-protected deque feeding N
// workers. All parallel loops in this project batch work into O(threads)
// chunks before enqueuing, so queue contention is negligible and the simple
// design is the robust one (see parallel.h).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gm::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows task exceptions.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Process-wide default pool, created on first use. Size precedence:
  /// configure_global(n) > GPUMEM_THREADS env var > hardware concurrency.
  /// Benchmarks that need τ *logical* workers on fewer cores use
  /// ShardedExecutor (parallel.h) instead of oversubscribing this pool.
  static ThreadPool& global();

  /// Fixes the global pool's size before first use (CLI --threads flags
  /// route here). Passing 0 defers to GPUMEM_THREADS / hardware
  /// concurrency. Throws std::logic_error if the global pool already exists
  /// with a different size — sizing must happen before any parallel work.
  static void configure_global(std::size_t threads);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace gm::util
