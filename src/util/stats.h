// Small statistics helpers: integer histograms (Fig. 6) and summaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gm::util {

/// Sparse histogram over non-negative integer keys (e.g. "number of seeds
/// that occur at exactly k reference locations", paper Fig. 6).
class Histogram {
 public:
  void add(std::uint64_t key, std::uint64_t count = 1) { bins_[key] += count; }

  const std::map<std::uint64_t, std::uint64_t>& bins() const { return bins_; }

  std::uint64_t total() const;
  std::uint64_t max_key() const;

  /// Collapses keys >= `cap` into a single overflow bin at `cap` — matches
  /// how Fig. 6 plots a bounded x-axis over a heavy-tailed distribution.
  Histogram capped(std::uint64_t cap) const;

  /// Renders "key<TAB>count" lines, one per bin.
  std::string to_tsv() const;

 private:
  std::map<std::uint64_t, std::uint64_t> bins_;
};

/// Streaming mean/min/max/variance.
class Summary {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }
  double variance() const;

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0, sum2_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

}  // namespace gm::util
