// Small statistics helpers: integer histograms (Fig. 6) and summaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gm::util {

/// Sparse histogram over non-negative integer keys (e.g. "number of seeds
/// that occur at exactly k reference locations", paper Fig. 6).
class Histogram {
 public:
  void add(std::uint64_t key, std::uint64_t count = 1) { bins_[key] += count; }

  const std::map<std::uint64_t, std::uint64_t>& bins() const { return bins_; }

  std::uint64_t total() const;
  std::uint64_t max_key() const;

  /// Collapses keys >= `cap` into a single overflow bin at `cap` — matches
  /// how Fig. 6 plots a bounded x-axis over a heavy-tailed distribution.
  Histogram capped(std::uint64_t cap) const;

  /// Renders "key<TAB>count" lines, one per bin.
  std::string to_tsv() const;

 private:
  std::map<std::uint64_t, std::uint64_t> bins_;
};

/// Streaming mean/min/max/variance.
///
/// Empty-summary contract: with no samples there is no meaningful value, so
/// mean(), min(), and max() return quiet NaN — never a fabricated 0.0 that
/// a report could mistake for data. variance() needs two samples and
/// likewise returns NaN for count() < 2. Exporters that must emit valid
/// JSON render non-finite values as null (see obs::Metrics).
class Summary {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const;
  double min() const;
  double max() const;
  double variance() const;

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0, sum2_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

}  // namespace gm::util
