#include "util/cli.h"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace gm::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is another flag or absent.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

void Cli::describe(const std::string& name, const std::string& help) {
  docs_.emplace_back(name, help);
}

bool Cli::handle_help(const std::string& program_summary) const {
  if (!has("help")) return false;
  std::cout << program_summary << "\n\nFlags:\n";
  for (const auto& [name, help] : docs_) {
    std::cout << "  --" << name << "\n      " << help << "\n";
  }
  return true;
}

std::vector<std::string> Cli::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [k, v] : flags_) names.push_back(k);
  return names;
}

}  // namespace gm::util
