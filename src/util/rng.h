// Deterministic, fast PRNG used everywhere randomness is needed.
//
// All experiments in this repository must be reproducible from a seed, so we
// avoid std::random_device / std::mt19937 state-size pitfalls and ship a
// single xoshiro256** implementation (Blackman & Vigna, public domain
// reference algorithm) with convenience samplers.
#pragma once

#include <cstdint>
#include <limits>

namespace gm::util {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64, the
  /// initialization recommended by the xoshiro authors.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection-free mapping (bias below 2^-64, irrelevant at
  /// our sample counts but documented).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Geometric-ish sample: number of failures before a success with
  /// probability p (capped so pathological p does not spin forever).
  std::uint32_t geometric(double p, std::uint32_t cap = 1u << 20) noexcept {
    std::uint32_t n = 0;
    while (n < cap && !chance(p)) ++n;
    return n;
  }

  /// Derives an independent stream for task `i` (for per-shard RNGs).
  Xoshiro256 fork(std::uint64_t i) const noexcept {
    Xoshiro256 child;
    child.state_[0] = state_[0] ^ (0xA0761D6478BD642Full * (i + 1));
    child.state_[1] = state_[1] + 0xE7037ED1A0B428DBull * (i + 1);
    child.state_[2] = state_[2] ^ (0x8EBC6AF09C88C6E3ull * (i + 0x2545F491));
    child.state_[3] = state_[3] + 0x589965CC75374CC3ull * (i + 7);
    // Scramble so nearby forks decorrelate.
    for (int k = 0; k < 8; ++k) child();
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace gm::util
