// MEM anchor chaining — the downstream step the paper's introduction
// motivates ("use them as anchors for the next step of a full alignment
// process"). A chain is a colinear subset of MEMs (increasing in both
// sequences); the scorer rewards matched bases and penalizes gaps, in the
// style of anchor-based whole-genome aligners.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mem/mem.h"

namespace gm::anchor {

struct ChainParams {
  double gap_open = 2.0;        ///< flat penalty per junction
  double gap_scale = 0.05;      ///< per-base penalty on |gap_r - gap_q| skew
                                ///< plus a mild penalty on gap size
  std::uint32_t max_lookback = 128;  ///< DP predecessor window (sorted by q)
  std::uint32_t max_gap = 1 << 20;   ///< junctions wider than this break chains
};

struct Chain {
  std::vector<std::uint32_t> anchors;  ///< indices into the input span
  double score = 0.0;
  /// Covered spans (for reporting).
  std::uint32_t r_begin = 0, r_end = 0, q_begin = 0, q_end = 0;
};

/// Highest-scoring chain over the anchors (empty input gives empty chain).
Chain best_chain(std::span<const mem::Mem> anchors, const ChainParams& params = {});

/// Anchor-suppression policy between successive chains of top_chains.
enum class MaskPolicy {
  kUsedAnchors,   ///< only the anchors a chain consumed are removed
  kQueryOverlap,  ///< additionally drop anchors whose query interval lies
                  ///< mostly (>50%) inside an already-reported chain's query
                  ///< span — removes the near-duplicate parallel chains that
                  ///< repeat families otherwise produce
};

/// Greedy top-k chains: repeatedly takes the best chain among anchors not
/// yet used/masked. Suitable for split/rearranged genomes and multi-mapping
/// reads.
std::vector<Chain> top_chains(std::span<const mem::Mem> anchors,
                              std::size_t k, const ChainParams& params = {},
                              MaskPolicy mask = MaskPolicy::kUsedAnchors);

}  // namespace gm::anchor
