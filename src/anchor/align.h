// Anchor-based alignment: stitch a chain of exact-match anchors into a full
// alignment by dynamic-programming the (small) gap rectangles between
// consecutive anchors — the "next step of a full alignment process" the
// paper's introduction positions MEM extraction as the front end of.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "anchor/chain.h"
#include "mem/mem.h"
#include "seq/sequence.h"

namespace gm::anchor {

struct AlignmentStats {
  std::uint64_t matches = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t insertions = 0;  ///< bases present only in the query
  std::uint64_t deletions = 0;   ///< bases present only in the reference

  std::uint64_t columns() const {
    return matches + mismatches + insertions + deletions;
  }
  /// BLAST-style identity over alignment columns, in [0, 1].
  double identity() const {
    const std::uint64_t c = columns();
    return c == 0 ? 0.0 : static_cast<double>(matches) / static_cast<double>(c);
  }
};

struct Alignment {
  /// Run-length CIGAR with '=' match, 'X' mismatch, 'I' insertion,
  /// 'D' deletion (e.g. "120=1X45=2I88=").
  std::string cigar;
  AlignmentStats stats;
  std::uint32_t r_begin = 0, r_end = 0;
  std::uint32_t q_begin = 0, q_end = 0;
};

/// Global alignment of ref[r0, r1) against query[q0, q1) by edit-distance
/// DP with traceback. Rectangles whose cell count exceeds `max_cells` are
/// represented as a block substitution (min(a,b) X plus the length
/// difference as indels) instead of exact DP — gaps between chained MEM
/// anchors are small, so this is the rare escape hatch, not the norm.
Alignment align_region(const seq::Sequence& ref, std::uint32_t r0,
                       std::uint32_t r1, const seq::Sequence& query,
                       std::uint32_t q0, std::uint32_t q1,
                       std::uint64_t max_cells = std::uint64_t{16} << 20);

/// Stitches a chain (indices into `anchors`) into one alignment: anchors
/// contribute '=' runs, inter-anchor rectangles are aligned with
/// align_region.
Alignment align_chain(const seq::Sequence& ref, const seq::Sequence& query,
                      std::span<const mem::Mem> anchors, const Chain& chain,
                      std::uint64_t max_cells = std::uint64_t{16} << 20);

}  // namespace gm::anchor
