#include "anchor/chain.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gm::anchor {
namespace {

struct Node {
  double score = 0.0;
  std::int32_t prev = -1;
  bool used = false;
};

double junction_cost(const mem::Mem& a, const mem::Mem& b,
                     const ChainParams& p) {
  // a precedes b (a.q + a.len <= b.q, a.r + a.len <= b.r is not required —
  // small overlaps are allowed and scored via the effective gain instead).
  const std::int64_t gap_q = static_cast<std::int64_t>(b.q) -
                             (static_cast<std::int64_t>(a.q) + a.len);
  const std::int64_t gap_r = static_cast<std::int64_t>(b.r) -
                             (static_cast<std::int64_t>(a.r) + a.len);
  const std::int64_t skew = std::llabs(gap_r - gap_q);
  const std::int64_t span = std::max<std::int64_t>(0, std::max(gap_r, gap_q));
  return p.gap_open + p.gap_scale * (static_cast<double>(skew) +
                                     0.1 * static_cast<double>(span));
}

Chain extract(std::span<const mem::Mem> anchors,
              const std::vector<std::uint32_t>& order, std::vector<Node>& dp,
              std::uint32_t best_idx) {
  Chain chain;
  chain.score = dp[best_idx].score;
  for (std::int32_t i = static_cast<std::int32_t>(best_idx); i != -1;
       i = dp[static_cast<std::uint32_t>(i)].prev) {
    chain.anchors.push_back(order[static_cast<std::uint32_t>(i)]);
    dp[static_cast<std::uint32_t>(i)].used = true;
  }
  std::reverse(chain.anchors.begin(), chain.anchors.end());
  const mem::Mem& first = anchors[chain.anchors.front()];
  const mem::Mem& last = anchors[chain.anchors.back()];
  chain.r_begin = first.r;
  chain.q_begin = first.q;
  chain.r_end = last.r + last.len;
  chain.q_end = last.q + last.len;
  return chain;
}

// Core DP over anchors sorted by (q, r); `skip[i]` marks anchors excluded
// (already consumed by earlier chains in top_chains).
Chain run_dp(std::span<const mem::Mem> anchors, const ChainParams& p,
             const std::vector<bool>& skip) {
  std::vector<std::uint32_t> order;
  order.reserve(anchors.size());
  for (std::uint32_t i = 0; i < anchors.size(); ++i) {
    if (!skip[i]) order.push_back(i);
  }
  if (order.empty()) return {};
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (anchors[a].q != anchors[b].q) return anchors[a].q < anchors[b].q;
    return anchors[a].r < anchors[b].r;
  });

  std::vector<Node> dp(order.size());
  std::uint32_t best_idx = 0;
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    const mem::Mem& cur = anchors[order[i]];
    dp[i].score = cur.len;
    const std::uint32_t lo = i > p.max_lookback ? i - p.max_lookback : 0;
    for (std::uint32_t j = lo; j < i; ++j) {
      const mem::Mem& prev = anchors[order[j]];
      if (prev.q + prev.len > cur.q || prev.r + prev.len > cur.r) continue;
      const std::int64_t gq = static_cast<std::int64_t>(cur.q) - prev.q - prev.len;
      const std::int64_t gr = static_cast<std::int64_t>(cur.r) - prev.r - prev.len;
      if (gq > static_cast<std::int64_t>(p.max_gap) ||
          gr > static_cast<std::int64_t>(p.max_gap)) {
        continue;
      }
      const double cand =
          dp[j].score + cur.len - junction_cost(prev, cur, p);
      if (cand > dp[i].score) {
        dp[i].score = cand;
        dp[i].prev = static_cast<std::int32_t>(j);
      }
    }
    if (dp[i].score > dp[best_idx].score) best_idx = i;
  }
  return extract(anchors, order, dp, best_idx);
}

}  // namespace

Chain best_chain(std::span<const mem::Mem> anchors, const ChainParams& params) {
  std::vector<bool> skip(anchors.size(), false);
  return run_dp(anchors, params, skip);
}

std::vector<Chain> top_chains(std::span<const mem::Mem> anchors, std::size_t k,
                              const ChainParams& params, MaskPolicy mask) {
  std::vector<Chain> chains;
  std::vector<bool> skip(anchors.size(), false);
  for (std::size_t round = 0; round < k; ++round) {
    Chain c = run_dp(anchors, params, skip);
    if (c.anchors.empty()) break;
    for (std::uint32_t idx : c.anchors) skip[idx] = true;
    if (mask == MaskPolicy::kQueryOverlap) {
      for (std::uint32_t i = 0; i < anchors.size(); ++i) {
        if (skip[i]) continue;
        const mem::Mem& a = anchors[i];
        const std::uint32_t lo = std::max(a.q, c.q_begin);
        const std::uint32_t hi = std::min(a.q + a.len, c.q_end);
        if (hi > lo && 2 * (hi - lo) > a.len) skip[i] = true;
      }
    }
    chains.push_back(std::move(c));
  }
  return chains;
}

}  // namespace gm::anchor
