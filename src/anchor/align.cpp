#include "anchor/align.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace gm::anchor {
namespace {

/// Appends `count` copies of `op` to a run-length CIGAR, merging with the
/// trailing run when the op repeats.
class CigarBuilder {
 public:
  void add(char op, std::uint64_t count, AlignmentStats& stats) {
    if (count == 0) return;
    switch (op) {
      case '=': stats.matches += count; break;
      case 'X': stats.mismatches += count; break;
      case 'I': stats.insertions += count; break;
      case 'D': stats.deletions += count; break;
      default: throw std::invalid_argument("CigarBuilder: bad op");
    }
    if (op == last_op_) {
      last_count_ += count;
    } else {
      flush();
      last_op_ = op;
      last_count_ = count;
    }
  }

  std::string take() {
    flush();
    return std::move(out_);
  }

 private:
  void flush() {
    if (last_count_ > 0) {
      out_ += std::to_string(last_count_);
      out_ += last_op_;
    }
    last_count_ = 0;
    last_op_ = 0;
  }
  std::string out_;
  char last_op_ = 0;
  std::uint64_t last_count_ = 0;
};

// Edit-distance DP with traceback over the rectangle; a and b are the
// region lengths. Emits ops into the builder.
void dp_align(const seq::Sequence& ref, std::uint32_t r0,
              const seq::Sequence& query, std::uint32_t q0, std::uint32_t a,
              std::uint32_t b, CigarBuilder& cigar, AlignmentStats& stats) {
  // dist[(i)*(b+1) + j]: edits aligning ref[r0, r0+i) with query[q0, q0+j).
  const std::size_t stride = b + 1;
  std::vector<std::uint32_t> dist((a + 1) * stride);
  for (std::uint32_t j = 0; j <= b; ++j) dist[j] = j;
  for (std::uint32_t i = 1; i <= a; ++i) {
    dist[i * stride] = i;
    for (std::uint32_t j = 1; j <= b; ++j) {
      const bool eq = ref.base(r0 + i - 1) == query.base(q0 + j - 1);
      const std::uint32_t sub = dist[(i - 1) * stride + (j - 1)] + (eq ? 0 : 1);
      const std::uint32_t del = dist[(i - 1) * stride + j] + 1;
      const std::uint32_t ins = dist[i * stride + (j - 1)] + 1;
      dist[i * stride + j] = std::min({sub, del, ins});
    }
  }
  // Traceback, collecting ops in reverse.
  std::string rev;
  rev.reserve(a + b);
  std::uint32_t i = a, j = b;
  while (i > 0 || j > 0) {
    const std::uint32_t cur = dist[i * stride + j];
    if (i > 0 && j > 0) {
      const bool eq = ref.base(r0 + i - 1) == query.base(q0 + j - 1);
      if (dist[(i - 1) * stride + (j - 1)] + (eq ? 0 : 1) == cur) {
        rev.push_back(eq ? '=' : 'X');
        --i;
        --j;
        continue;
      }
    }
    if (i > 0 && dist[(i - 1) * stride + j] + 1 == cur) {
      rev.push_back('D');
      --i;
      continue;
    }
    rev.push_back('I');
    --j;
  }
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) cigar.add(*it, 1, stats);
}

void align_rectangle(const seq::Sequence& ref, std::uint32_t r0,
                     std::uint32_t r1, const seq::Sequence& query,
                     std::uint32_t q0, std::uint32_t q1,
                     std::uint64_t max_cells, CigarBuilder& cigar,
                     AlignmentStats& stats) {
  const std::uint32_t a = r1 - r0;
  const std::uint32_t b = q1 - q0;
  if (a == 0 && b == 0) return;
  if (a == 0) {
    cigar.add('I', b, stats);
    return;
  }
  if (b == 0) {
    cigar.add('D', a, stats);
    return;
  }
  const std::uint64_t cells =
      (static_cast<std::uint64_t>(a) + 1) * (static_cast<std::uint64_t>(b) + 1);
  if (cells > max_cells) {
    // Escape hatch for giant gaps: block substitution.
    const std::uint32_t diag = std::min(a, b);
    std::uint64_t eq = 0;
    for (std::uint32_t i = 0; i < diag; ++i) {
      // Count diagonal agreement so stats stay meaningful.
      if (ref.base(r0 + i) == query.base(q0 + i)) ++eq;
    }
    cigar.add('X', diag, stats);
    stats.mismatches -= eq;
    stats.matches += eq;  // stats adjustment; cigar keeps the coarse X run
    if (a > b) cigar.add('D', a - b, stats);
    if (b > a) cigar.add('I', b - a, stats);
    return;
  }
  dp_align(ref, r0, query, q0, a, b, cigar, stats);
}

}  // namespace

Alignment align_region(const seq::Sequence& ref, std::uint32_t r0,
                       std::uint32_t r1, const seq::Sequence& query,
                       std::uint32_t q0, std::uint32_t q1,
                       std::uint64_t max_cells) {
  if (r1 < r0 || q1 < q0 || r1 > ref.size() || q1 > query.size()) {
    throw std::invalid_argument("align_region: bad coordinates");
  }
  Alignment out;
  out.r_begin = r0;
  out.r_end = r1;
  out.q_begin = q0;
  out.q_end = q1;
  CigarBuilder cigar;
  align_rectangle(ref, r0, r1, query, q0, q1, max_cells, cigar, out.stats);
  out.cigar = cigar.take();
  return out;
}

Alignment align_chain(const seq::Sequence& ref, const seq::Sequence& query,
                      std::span<const mem::Mem> anchors, const Chain& chain,
                      std::uint64_t max_cells) {
  if (chain.anchors.empty()) return {};
  Alignment out;
  const mem::Mem& first = anchors[chain.anchors.front()];
  const mem::Mem& last = anchors[chain.anchors.back()];
  out.r_begin = first.r;
  out.q_begin = first.q;
  out.r_end = last.r + last.len;
  out.q_end = last.q + last.len;

  CigarBuilder cigar;
  std::uint32_t r_cursor = first.r;
  std::uint32_t q_cursor = first.q;
  for (const std::uint32_t idx : chain.anchors) {
    const mem::Mem& anchor = anchors[idx];
    if (anchor.r < r_cursor || anchor.q < q_cursor) {
      throw std::invalid_argument(
          "align_chain: anchors overlap or are not colinear");
    }
    align_rectangle(ref, r_cursor, anchor.r, query, q_cursor, anchor.q,
                    max_cells, cigar, out.stats);
    cigar.add('=', anchor.len, out.stats);
    r_cursor = anchor.r + anchor.len;
    q_cursor = anchor.q + anchor.len;
  }
  out.cigar = cigar.take();
  return out;
}

}  // namespace gm::anchor
