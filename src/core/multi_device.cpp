#include "core/multi_device.h"

#include <algorithm>
#include <stdexcept>

#include "core/host_stitch.h"
#include "mem/clip.h"
#include "obs/registry.h"
#include "util/bits.h"
#include "util/timer.h"

namespace gm::core {

MultiDeviceResult run_multi_device(const Config& cfg, std::uint32_t devices,
                                   const seq::Sequence& ref,
                                   const seq::Sequence& query) {
  if (devices == 0) {
    throw std::invalid_argument("run_multi_device: need >= 1 device");
  }
  const Config::Geometry g = cfg.validated();
  if (cfg.backend != Backend::kSimt) {
    throw std::invalid_argument(
        "run_multi_device: only the SIMT backend is device-partitionable");
  }
  if (cfg.observe) obs::Registry::global().set_enabled(true);
  obs::Span fleet_span("pipeline/multi-device", "pipeline");
  fleet_span.attr("devices", std::uint64_t{devices});
  util::Timer wall;
  MultiDeviceResult result;
  if (ref.empty() || query.empty()) {
    result.combined.wall_seconds = wall.seconds();
    return result;
  }

  const Engine engine(cfg);
  const std::uint32_t n_r = static_cast<std::uint32_t>(
      util::ceil_div<std::size_t>(ref.size(), g.tile_len));
  const std::uint32_t rows_per_device = util::ceil_div(n_r, devices);

  std::vector<mem::Mem> reported;
  std::vector<mem::Mem> outtile_pieces;
  for (std::uint32_t d = 0; d < devices; ++d) {
    const std::uint32_t row_begin = d * rows_per_device;
    const std::uint32_t row_end = std::min(n_r, row_begin + rows_per_device);
    // The ordinal tags every span the device emits with its id, keeping the
    // fleet's modeled timelines on separate trace tracks.
    simt::Device dev(cfg.device, d);
    RunStats stats;
    if (row_begin < row_end) {
      obs::Span device_span("device/partition", "pipeline");
      device_span.attr("device", std::uint64_t{d});
      device_span.attr("row_begin", std::uint64_t{row_begin});
      device_span.attr("row_end", std::uint64_t{row_end});
      engine.run_simt_rows(dev, ref, query, row_begin, row_end, reported,
                           outtile_pieces, stats);
    }
    stats.tile_rows = row_end > row_begin ? row_end - row_begin : 0;
    stats.kernels_launched = dev.ledger().kernels_launched();
    stats.device_peak_bytes = dev.peak_bytes();
    result.per_device.push_back(stats);

    // Devices run concurrently: the fleet finishes with its slowest member.
    result.combined.index_seconds =
        std::max(result.combined.index_seconds, stats.index_seconds);
    result.combined.match_seconds =
        std::max(result.combined.match_seconds, stats.match_seconds);
    result.combined.modeled_makespan_seconds =
        std::max(result.combined.modeled_makespan_seconds,
                 stats.modeled_makespan_seconds);
    result.combined.tile_rows += stats.tile_rows;
    result.combined.inblock_mems += stats.inblock_mems;
    result.combined.intile_mems += stats.intile_mems;
    result.combined.overflow_rounds += stats.overflow_rounds;
    result.combined.kernels_launched += stats.kernels_launched;
    result.combined.device_peak_bytes =
        std::max(result.combined.device_peak_bytes, stats.device_peak_bytes);
  }
  result.combined.tile_cols = static_cast<std::uint32_t>(
      util::ceil_div<std::size_t>(query.size(), g.tile_len));

  // Host merge over the union of all devices' out-tile pieces; matches
  // crossing device partitions stitch here exactly like cross-row matches.
  {
    obs::Span stitch_span("stitch/host-merge", "stage");
    util::Timer host_merge;
    result.combined.outtile_pieces = outtile_pieces.size();
    std::vector<mem::Mem> finished = finalize_out_tile(
        ref, query, std::move(outtile_pieces), cfg.min_length);
    reported.insert(reported.end(), finished.begin(), finished.end());
    mem::clip_invalid_bases(ref, query, reported, cfg.min_length);
    mem::sort_unique(reported);
    result.combined.host_stitch_seconds = host_merge.seconds();
    result.combined.match_seconds += result.combined.host_stitch_seconds;
    stitch_span.attr("outtile_pieces", result.combined.outtile_pieces);
  }
  result.mems = std::move(reported);
  result.combined.mem_count = result.mems.size();
  result.combined.wall_seconds = wall.seconds();
  publish_run_stats(result.combined);
  return result;
}

}  // namespace gm::core
