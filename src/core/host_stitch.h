// Host-side triplet expansion, chain combining, and the final out-tile merge
// (paper Section III-C2). Shared by the SIMT pipeline (final stage + rare
// overflow fallback), the native backend, and tests.
#pragma once

#include <cstdint>
#include <vector>

#include "core/geometry.h"
#include "mem/mem.h"
#include "seq/packed.h"
#include "seq/sequence.h"

namespace gm::core {

/// Expands a verified match triplet word-parallel in both directions
/// (seq::lce_forward/lce_backward, 32 bases per 64-bit XOR), clamped to
/// `rect`. The input must satisfy R[m.r+i] == Q[m.q+i] for i < m.len; it
/// need not lie inside `rect` — the part outside is trimmed first, and a
/// piece wholly outside comes back with len 0 (callers filter on length).
mem::Mem expand_clamped(const seq::PackedSeq& ref, const seq::PackedSeq& query,
                        mem::Mem m, const Rect& rect);
inline mem::Mem expand_clamped(const seq::Sequence& ref,
                               const seq::Sequence& query, mem::Mem m,
                               const Rect& rect) {
  return expand_clamped(seq::PackedSeq(ref), seq::PackedSeq(query), m, rect);
}

/// Merges co-diagonal overlapping triplets in place. Expects any order;
/// sorts by (diagonal, q) first. Uses the relaxed overlap test
/// 0 <= (q'-q) <= len with len = max(len, δ + len') so exact duplicates
/// (possible when a chain was split across capacity boundaries) collapse
/// too. Dead triplets are removed.
void combine_chains(std::vector<mem::Mem>& triplets);

/// Final stage: merges the accumulated out-tile triplets, expands each
/// survivor against the full sequences, filters by min_len. (Duplicates are
/// possible when tile pieces of one MEM did not touch; callers run
/// sort_unique over the combined output.)
std::vector<mem::Mem> finalize_out_tile(const seq::Sequence& ref,
                                        const seq::Sequence& query,
                                        std::vector<mem::Mem> pieces,
                                        std::uint32_t min_len);

}  // namespace gm::core
