// GPUMEM end-to-end pipeline (paper Fig. 1): tile-row partial indexing,
// per-tile block matching, tile-level stitching, and the final host merge of
// out-tile triplets. Two backends share this orchestration: the simulated
// device (modeled GPU time) and a native host implementation (wall time).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "index/kmer_index.h"
#include "mem/mem.h"
#include "seq/sequence.h"
#include "simt/device.h"

namespace gm::core {

struct RunStats {
  /// Index-generation time (paper Table III): modeled device seconds for
  /// the SIMT backend (all Algorithm 1 kernel launches + memsets), measured
  /// wall seconds for the native backend.
  double index_seconds = 0.0;
  /// MEM-extraction time (paper Table IV): everything else, including the
  /// final host merge (the paper's Section III-C2 host stage).
  double match_seconds = 0.0;
  /// Portion of match_seconds spent in the *measured* host out-tile merge.
  /// At paper scale this stage is a negligible fraction; at reduced scale on
  /// this 1-core container it can dominate, so device-side experiments
  /// (Fig. 7, ablations) subtract it. See EXPERIMENTS.md.
  double host_stitch_seconds = 0.0;

  double device_match_seconds() const {
    return match_seconds - host_stitch_seconds;
  }
  /// Host wall-clock for the entire run (simulation cost; not a result).
  double wall_seconds = 0.0;

  /// Modeled device seconds from first to last device operation. Serial
  /// runs: the ledger delta (= every charge, end to end). Stream-overlapped
  /// runs: the StreamScheduler's overlapped makespan — smaller than the
  /// ledger delta by exactly the overlap won (copies and index builds hidden
  /// behind match kernels, concurrent tile kernels backfilling SM slots).
  /// index_seconds/match_seconds stay serial-style sums either way, so
  /// serial vs overlapped runs are directly comparable (overlapped sums can
  /// deviate marginally: output capacities adapt per stream, not globally,
  /// so retry/memset costs land on different tiles).
  double modeled_makespan_seconds = 0.0;

  std::uint64_t mem_count = 0;
  std::uint32_t tile_rows = 0;
  std::uint32_t tile_cols = 0;
  std::uint64_t inblock_mems = 0;    ///< reported at block level
  std::uint64_t intile_mems = 0;     ///< reported at tile level
  std::uint64_t outtile_pieces = 0;  ///< stitched on the host
  std::uint64_t overflow_rounds = 0; ///< rounds processed by host fallback
  std::uint64_t kernels_launched = 0;
  std::size_t device_peak_bytes = 0;
  /// True when every tile-row index this run needed came ready-made — from a
  /// RowIndexSource serving warm entries (SIMT) or a prebuilt NativeIndex —
  /// so no Algorithm 1 / index-build work ran. The serve layer's cache
  /// effectiveness signal.
  bool index_cache_hit = false;

  /// Owning request's trace id when this run was executed by the serve
  /// layer (0 for standalone Engine::run calls). Gives per-request phase
  /// attribution: the index/match/stitch seconds above, keyed by request.
  std::uint64_t trace_id = 0;

  /// One kernel label's modeled totals (SIMT backend).
  struct KernelStat {
    std::string label;
    double seconds = 0.0;
    std::uint64_t launches = 0;
  };
  /// Per-label kernel totals, descending by modeled seconds.
  std::vector<KernelStat> kernel_breakdown;
};

/// Mirrors every RunStats field into the global metrics registry under the
/// "run." / "kernel.<label>." names documented in docs/OBSERVABILITY.md.
/// No-op when observability is disabled. Engines call this at the end of a
/// run; front-ends may call it again for derived stats (e.g. the combined
/// multi-device view).
void publish_run_stats(const RunStats& stats);

struct Result {
  std::vector<mem::Mem> mems;  ///< canonical order, no duplicates
  RunStats stats;
};

struct DeviceIndex;  // core/index_kernels.h

/// Supplies ready-to-use per-tile-row (ptrs, locs) indexes to the SIMT
/// pipeline, replacing the per-run Algorithm 1 builds. The index depends
/// only on the reference row and the (seed_len, step, tile_len) geometry, so
/// a source can build each row once and serve it to every subsequent run —
/// the serve layer's DeviceRowIndexCache is the canonical implementation.
class RowIndexSource {
 public:
  virtual ~RowIndexSource() = default;

  /// Returns the index for tile row `row` of `ref`, resident on `dev`.
  /// Implementations build on miss (charging `dev`'s ledger the modeled
  /// build time) and serve later calls for free; `hit` reports which
  /// happened. The returned reference stays valid until the source is
  /// cleared or destroyed.
  virtual DeviceIndex& acquire(simt::Device& dev, const seq::Sequence& ref,
                               std::uint32_t row, bool& hit) = 0;
};

class Engine {
 public:
  explicit Engine(Config cfg) : cfg_(std::move(cfg)) { (void)cfg_.validated(); }

  const Config& config() const noexcept { return cfg_; }

  /// Extracts all MEMs of length >= cfg.min_length between ref and query.
  Result run(const seq::Sequence& ref, const seq::Sequence& query) const;

  /// Pre-built per-tile-row indexes for the native backend, enabling the
  /// build-once / query-many workflow of the CPU tools (e.g. mapping many
  /// reads against one reference — see examples/read_mapper.cpp).
  struct NativeIndex {
    std::vector<index::KmerIndex> rows;  ///< one per tile row
    double build_seconds = 0.0;
  };

  /// Builds the native row indexes once (wall-timed).
  NativeIndex build_native_index(const seq::Sequence& ref) const;

  /// Fast-index mode (copMEM, mem/copmem.h): double-sampled k-mer index +
  /// word-parallel LCE verification instead of the tiled Algorithm 1 /
  /// SA-class builds. Same MEM output as run() for the same L; cfg.seed_len
  /// is the sampling seed length K. RunStats reports the sampled-index
  /// build as index_seconds and the scan/verify as match_seconds.
  Result run_fast_index(const seq::Sequence& ref,
                        const seq::Sequence& query) const;

  /// run() with the native backend, reusing `prebuilt` (which must have
  /// been produced by build_native_index with this exact config and ref).
  /// RunStats::index_seconds reports 0 — the cost lives in `prebuilt`.
  Result run_native_prebuilt(const seq::Sequence& ref,
                             const seq::Sequence& query,
                             const NativeIndex& prebuilt) const;

  /// run() on the SIMT backend against a caller-owned (usually persistent)
  /// device, taking every tile-row index from `source` instead of building
  /// per run — the serve layer's warm path. RunStats are ledger *deltas*,
  /// so `dev` may carry state from earlier runs; `source` must have been
  /// created for this exact config (geometry is checked per row).
  Result run_simt_cached(simt::Device& dev, const seq::Sequence& ref,
                         const seq::Sequence& query,
                         RowIndexSource& source) const;

  /// Device-level work unit: processes tile rows [row_begin, row_end) on
  /// `dev` (uploading the sequences, building the per-row partial index,
  /// matching every tile of those rows), appending reported MEMs and
  /// out-tile pieces. Exposed for the multi-device driver
  /// (core/multi_device.h) and the serve layer; single-device run() is this
  /// over all rows plus the final host merge. When `index_source` is given,
  /// row indexes are acquired from it instead of built, and
  /// `stats.index_cache_hit` reports whether every row was served warm.
  void run_simt_rows(simt::Device& dev, const seq::Sequence& ref,
                     const seq::Sequence& query, std::uint32_t row_begin,
                     std::uint32_t row_end, std::vector<mem::Mem>& reported,
                     std::vector<mem::Mem>& outtile_pieces, RunStats& stats,
                     RowIndexSource* index_source = nullptr) const;

 private:
  /// Stream-overlapped variant of run_simt_rows (cfg.overlap = true):
  /// double-buffered index builds, per-row tiles fanned across
  /// cfg.overlap_streams worker streams, per-row host stitch on a worker
  /// thread. Identical outputs and serial-sum stats; only
  /// modeled_makespan_seconds (and wall clock) improve.
  void run_simt_rows_overlapped(simt::Device& dev, const seq::Sequence& ref,
                                const seq::Sequence& query,
                                std::uint32_t row_begin, std::uint32_t row_end,
                                std::vector<mem::Mem>& reported,
                                std::vector<mem::Mem>& outtile_pieces,
                                RunStats& stats,
                                RowIndexSource* index_source) const;
  Result run_simt(const seq::Sequence& ref, const seq::Sequence& query) const;
  Result run_simt_on(simt::Device& dev, const seq::Sequence& ref,
                     const seq::Sequence& query,
                     RowIndexSource* index_source) const;
  Result run_native(const seq::Sequence& ref, const seq::Sequence& query,
                    const NativeIndex* prebuilt = nullptr) const;

  Config cfg_;
};

}  // namespace gm::core
