// Proactive load-balancing heuristic (paper Algorithm 2), host reference
// implementation. The match kernel computes the same assignment in-device
// with two block scans; this function is the single-threaded ground truth
// the kernel and the unit tests are validated against, and the host
// fallback path uses it directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gm::core {

struct BalanceResult {
  /// assign[k] .. assign[k+1) = thread ids serving seed k (size τ + 1,
  /// assign[τ] == τ; zero-load seeds get empty ranges).
  std::vector<std::uint32_t> assign;
  /// group[tid] = seed index thread tid serves (size τ).
  std::vector<std::uint32_t> group;
};

/// loads[k] = number of index locations of the seed originally assigned to
/// thread k (0 when the seed is absent). Distributes idle threads over
/// loaded seeds proportionally to cumulative load, exactly as Algorithm 2:
///   assign[k+1] = task_incl[k] + floor(T_idle * load_incl[k] / T_load).
/// When every load is zero the identity assignment is returned.
BalanceResult balance_assign(std::span<const std::uint32_t> loads);

/// The contiguous sub-range [begin, end) of a seed's `count` work items that
/// the `rank`-th of `servers` threads processes (even split, remainder to
/// the low ranks).
inline void split_work(std::uint32_t count, std::uint32_t servers,
                       std::uint32_t rank, std::uint32_t& begin,
                       std::uint32_t& end) noexcept {
  const std::uint32_t base = count / servers;
  const std::uint32_t extra = count % servers;
  begin = rank * base + (rank < extra ? rank : extra);
  end = begin + base + (rank < extra ? 1 : 0);
}

}  // namespace gm::core
