// Multi-device MEM extraction: partition the tile rows of the 2D search
// space across several (simulated) GPUs, run the GPUMEM pipeline on each,
// and stitch the combined out-tile pieces on the host.
//
// This is the marriage of the paper's two forward-looking threads: its
// future-work note on newer/multiple devices, and its reference [1]
// (Abouelhoda & Seif, "Efficient distributed computation of maximal exact
// matches"), which distributes MEM extraction by reference partitioning
// exactly this way. Cross-partition matches are recovered by the same
// out-tile stitching the single-device pipeline already needs, so
// correctness is unchanged for any device count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pipeline.h"

namespace gm::core {

struct MultiDeviceResult {
  std::vector<mem::Mem> mems;      ///< canonical order, no duplicates
  RunStats combined;               ///< modeled times = max over devices
                                   ///< (devices run concurrently)
  std::vector<RunStats> per_device;
};

/// Runs `cfg` over `devices` simulated cards (row-contiguous partitioning).
/// devices == 1 is equivalent to Engine::run with the SIMT backend.
MultiDeviceResult run_multi_device(const Config& cfg, std::uint32_t devices,
                                   const seq::Sequence& ref,
                                   const seq::Sequence& query);

}  // namespace gm::core
