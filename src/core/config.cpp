#include "core/config.h"

#include <sstream>
#include <stdexcept>

#include "util/bits.h"

namespace gm::core {

Config::Geometry Config::validated() const {
  if (min_length == 0) {
    throw std::invalid_argument("Config: min_length (L) must be >= 1");
  }
  if (seed_len == 0 || seed_len > 16) {
    throw std::invalid_argument("Config: seed_len (ls) must be in [1, 16]");
  }
  if (seed_len > min_length) {
    throw std::invalid_argument(
        "Config: seed_len must not exceed min_length (the paper drops ls "
        "from 13 to 10 for L = 10 for exactly this reason)");
  }
  if (!util::is_pow2(threads) || threads < 2) {
    throw std::invalid_argument(
        "Config: threads (tau) must be a power of two >= 2 (Algorithm 3 "
        "runs 2*log2(tau) - 1 combine iterations)");
  }
  if (tile_blocks == 0) {
    throw std::invalid_argument("Config: tile_blocks must be >= 1");
  }
  if (round_capacity == 0) {
    throw std::invalid_argument("Config: round_capacity must be >= 1");
  }
  if (output_capacity == 0) {
    throw std::invalid_argument("Config: output_capacity must be >= 1");
  }
  if (overlap && overlap_streams == 0) {
    throw std::invalid_argument(
        "Config: overlap_streams must be >= 1 when overlap is enabled");
  }

  Geometry g;
  const std::uint32_t max_step = min_length - seed_len + 1;  // Eq. 1
  g.step = step == 0 ? max_step : step;
  if (g.step == 0 || g.step > max_step) {
    throw std::invalid_argument(
        "Config: step (delta_s) violates Eq. 1: need 1 <= step <= L - ls + 1 = " +
        std::to_string(max_step) +
        " (a larger step can skip over MEMs of length exactly L)");
  }
  g.w = g.step;  // Section III-B2: w = Δs extracts every MEM exactly once
  // Tile geometry in 64 bits first: tau * Δs * n_block can exceed 32 bits
  // for large L, and a silently wrapped tile_len corrupts every tile Rect.
  const std::uint64_t block_width64 = std::uint64_t{threads} * g.w;
  const std::uint64_t tile_len64 = block_width64 * tile_blocks;
  if (tile_len64 > (std::uint64_t{1} << 31)) {
    throw std::invalid_argument(
        "Config: tile geometry overflows: tau * delta_s * n_block = " +
        std::to_string(tile_len64) + " exceeds 2^31 bases per tile");
  }
  g.block_width = static_cast<std::uint32_t>(block_width64);
  g.tile_len = static_cast<std::uint32_t>(tile_len64);
  return g;
}

std::string Config::describe() const {
  const Geometry g = validated();
  std::ostringstream os;
  os << "L=" << min_length << " ls=" << seed_len << " step=" << g.step
     << " tau=" << threads << " w=" << g.w << " lblock=" << g.block_width
     << " ltile=" << g.tile_len << " nblock=" << tile_blocks
     << " lb=" << (load_balance ? "on" : "off")
     << " combine=" << (combine ? "on" : "off") << " backend="
     << (backend == Backend::kSimt ? "simt" : "native");
  if (overlap) {
    os << " overlap=on streams=" << overlap_streams;
    if (overlap_shuffle_seed != 0) os << " shuffle=" << overlap_shuffle_seed;
  }
  return os.str();
}

}  // namespace gm::core
