#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/host_stitch.h"
#include "core/index_kernels.h"
#include "mem/clip.h"
#include "mem/copmem.h"
#include "core/match_kernel.h"
#include "core/tile_kernel.h"
#include "index/kmer_index.h"
#include "obs/registry.h"
#include "simt/buffer.h"
#include "simt/stream.h"
#include "util/bits.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace gm::core {
namespace {

constexpr mem::Mem kSentinel{0xFFFFFFFFu, 0u, 0u};

/// Everything one tile produced, after overflow retries, host-fallback
/// rounds, and the tile-level combine.
struct TileResult {
  std::vector<mem::Mem> inblock;      ///< reported at block level
  std::vector<mem::Mem> intile;       ///< reported by the tile combine
  std::vector<mem::Mem> outtile;      ///< pieces for the final host merge
  std::uint64_t overflow_rounds = 0;  ///< rounds that fell back to the host
  std::size_t outblock_pieces = 0;    ///< combine input size (observability)
};

/// The complete device work of one tile: match kernel with
/// doubling-capacity retries, host fallback for overflowed rounds, and the
/// tile-level combine with its own retries. `cap_in`/`cap_out` are the
/// caller's adaptive capacities — grown in place so later tiles start at
/// the learned size. Works identically under serial execution and inside a
/// stream closure: every retry rolls back the ledger, the trace, and any
/// captured segments together.
TileResult process_tile(simt::Device& dev, const Config& cfg,
                        const Config::Geometry& g, const seq::Sequence& ref,
                        const seq::Sequence& query, const DeviceIndex& index,
                        const Rect& tile, std::uint32_t& cap_in,
                        std::uint32_t& cap_out) {
  TileResult outs;
  std::vector<mem::Mem> outblock;

  // ---- match kernel over the tile's blocks, retrying on overflow ---------
  for (;;) {
    const simt::PerfLedger::Snapshot snap = dev.ledger().snapshot();
    const std::size_t trace_mark =
        obs::enabled() ? obs::Registry::global().trace().size() : 0;
    const std::size_t seg_mark = dev.segment_mark();
    simt::Buffer<mem::Mem> scratch(
        dev, std::size_t{cfg.tile_blocks} * cfg.round_capacity);
    simt::Buffer<mem::Mem> inblock_buf(dev, cap_in);
    simt::Buffer<mem::Mem> outblock_buf(dev, cap_out);
    simt::Buffer<std::uint32_t> in_count(dev, 1);
    simt::Buffer<std::uint32_t> out_count(dev, 1);
    simt::Buffer<std::uint8_t> overflow(dev,
                                        std::size_t{cfg.tile_blocks} * g.w);
    in_count[0] = out_count[0] = 0;
    std::fill_n(overflow.data(), overflow.size(), std::uint8_t{0});

    MatchParams params;
    params.ref = &ref;
    params.query = &query;
    params.ptrs = index.ptrs.span();
    params.locs = index.locs.span();
    params.tile = tile;
    params.seed_len = cfg.seed_len;
    params.w = g.w;
    params.min_len = cfg.min_length;
    params.round_capacity = cfg.round_capacity;
    params.block_width = g.block_width;
    params.load_balance = cfg.load_balance;
    params.combine = cfg.combine;
    params.scratch = scratch.span();
    params.inblock = inblock_buf.span();
    params.inblock_count = in_count.span();
    params.outblock = outblock_buf.span();
    params.outblock_count = out_count.span();
    params.overflow = overflow.span();

    launch_match_kernel(dev, cfg.tile_blocks, cfg.threads, params);

    if (in_count[0] > cap_in || out_count[0] > cap_out) {
      if (in_count[0] > cap_in) {
        cap_in = static_cast<std::uint32_t>(util::ceil_pow2(in_count[0]));
      }
      if (out_count[0] > cap_out) {
        cap_out = static_cast<std::uint32_t>(util::ceil_pow2(out_count[0]));
      }
      dev.ledger().rollback(snap);
      if (obs::enabled()) {
        obs::Registry::global().trace().truncate(trace_mark);
      }
      dev.segment_truncate(seg_mark);
      continue;
    }

    outs.inblock = inblock_buf.download(in_count[0]);
    outblock = outblock_buf.download(out_count[0]);

    // Host fallback for rounds whose load exceeded the scratch capacity.
    for (std::uint32_t b = 0; b < cfg.tile_blocks; ++b) {
      for (std::uint32_t rnd = 0; rnd < g.w; ++rnd) {
        if (!overflow[std::size_t{b} * g.w + rnd]) continue;
        ++outs.overflow_rounds;
        process_round_host(params, b, rnd, cfg.threads, outs.inblock,
                           outblock);
      }
    }
    break;
  }
  outs.outblock_pieces = outblock.size();

  // ---- tile-level combine ------------------------------------------------
  if (!outblock.empty()) {
    for (;;) {
      const simt::PerfLedger::Snapshot snap = dev.ledger().snapshot();
      const std::size_t trace_mark =
          obs::enabled() ? obs::Registry::global().trace().size() : 0;
      const std::size_t seg_mark = dev.segment_mark();
      const std::size_t padded = util::ceil_pow2(outblock.size());
      simt::Buffer<mem::Mem> triplets(dev, padded);
      std::copy(outblock.begin(), outblock.end(), triplets.data());
      std::fill(triplets.data() + outblock.size(), triplets.data() + padded,
                kSentinel);
      dev.account_copy(outblock.size() * sizeof(mem::Mem));
      simt::Buffer<std::uint8_t> run_start(dev, outblock.size());
      simt::Buffer<mem::Mem> intile_buf(dev, cap_in);
      simt::Buffer<mem::Mem> outtile_buf(dev, cap_out);
      simt::Buffer<std::uint32_t> in_count(dev, 1);
      simt::Buffer<std::uint32_t> out_count(dev, 1);
      in_count[0] = out_count[0] = 0;

      TileCombineParams tc;
      tc.ref = &ref;
      tc.query = &query;
      tc.tile = tile;
      tc.min_len = cfg.min_length;
      tc.triplets = triplets.span();
      tc.count = static_cast<std::uint32_t>(outblock.size());
      tc.run_start = run_start.span();
      tc.intile = intile_buf.span();
      tc.intile_count = in_count.span();
      tc.outtile = outtile_buf.span();
      tc.outtile_count = out_count.span();

      launch_tile_combine(dev, cfg.threads, tc);

      if (in_count[0] > cap_in || out_count[0] > cap_out) {
        if (in_count[0] > cap_in) {
          cap_in = static_cast<std::uint32_t>(util::ceil_pow2(in_count[0]));
        }
        if (out_count[0] > cap_out) {
          cap_out = static_cast<std::uint32_t>(util::ceil_pow2(out_count[0]));
        }
        dev.ledger().rollback(snap);
        if (obs::enabled()) {
          obs::Registry::global().trace().truncate(trace_mark);
        }
        dev.segment_truncate(seg_mark);
        continue;
      }
      outs.intile = intile_buf.download(in_count[0]);
      outs.outtile = outtile_buf.download(out_count[0]);
      break;
    }
  }
  return outs;
}

/// Records the host out-tile merge as a wall-clock stage span whose
/// duration is exactly RunStats::host_stitch_seconds, so the "stage" spans
/// of a traced run decompose index_seconds + match_seconds precisely.
void record_stitch_span(double start_us, const RunStats& stats) {
  obs::SpanEvent ev;
  ev.name = "stitch/host-merge";
  ev.category = "stage";
  ev.clock = obs::Clock::kWall;
  ev.start_us = start_us;
  ev.duration_us = stats.host_stitch_seconds * 1e6;
  ev.attrs.push_back({"outtile_pieces", stats.outtile_pieces});
  obs::Registry::global().trace().record(std::move(ev));
}

}  // namespace

void publish_run_stats(const RunStats& stats) {
  if (!obs::enabled()) return;
  obs::Metrics& m = obs::Registry::global().metrics();
  const auto set = [&m](const std::string& name, double v,
                        const std::string& help = {}) {
    m.gauge(name, help).set(v);
  };
  set("run.index_seconds", stats.index_seconds,
      "index-generation time (paper Table III)");
  set("run.match_seconds", stats.match_seconds,
      "MEM-extraction time incl. host merge (paper Table IV)");
  set("run.host_stitch_seconds", stats.host_stitch_seconds,
      "measured host out-tile merge portion of match_seconds");
  set("run.device_match_seconds", stats.device_match_seconds(),
      "match_seconds minus the host merge");
  set("run.modeled_makespan_seconds", stats.modeled_makespan_seconds,
      "modeled device seconds first-to-last op (overlap shrinks this)");
  set("run.wall_seconds", stats.wall_seconds, "host wall clock of the run");
  set("run.mem_count", static_cast<double>(stats.mem_count));
  set("run.tile_rows", stats.tile_rows);
  set("run.tile_cols", stats.tile_cols);
  set("run.inblock_mems", static_cast<double>(stats.inblock_mems));
  set("run.intile_mems", static_cast<double>(stats.intile_mems));
  set("run.outtile_pieces", static_cast<double>(stats.outtile_pieces));
  set("run.overflow_rounds", static_cast<double>(stats.overflow_rounds));
  set("run.kernels_launched", static_cast<double>(stats.kernels_launched));
  set("run.device_peak_bytes", static_cast<double>(stats.device_peak_bytes));
  set("run.index_cache_hit", stats.index_cache_hit ? 1.0 : 0.0,
      "1 when every tile-row index was served prebuilt (no build work)");
  set("run.trace_id", static_cast<double>(stats.trace_id),
      "trace id of the last published run (0 = standalone)");
  for (const RunStats::KernelStat& ks : stats.kernel_breakdown) {
    m.gauge("kernel." + ks.label + ".seconds").set(ks.seconds);
    m.gauge("kernel." + ks.label + ".launches")
        .set(static_cast<double>(ks.launches));
  }
  // Host wall-time phase distributions: unlike the run.* gauges (last run
  // only), these accumulate across runs so a serve replay or multi-query
  // batch yields count/mean/min/max per phase (docs/OBSERVABILITY.md).
  const auto phase_ns = [&m](const char* name, double seconds,
                             const char* help) {
    m.distribution(std::string("host.phase_ns.") + name, help)
        .observe(seconds * 1e9);
  };
  phase_ns("index", stats.index_seconds,
           "host wall ns spent building row indexes, per run");
  phase_ns("match", stats.device_match_seconds(),
           "host wall ns spent matching (excl. out-tile merge), per run");
  phase_ns("stitch", stats.host_stitch_seconds,
           "host wall ns spent in the out-tile merge, per run");
  phase_ns("total", stats.wall_seconds, "host wall ns per run end to end");
}

Result Engine::run(const seq::Sequence& ref, const seq::Sequence& query) const {
  return cfg_.backend == Backend::kSimt ? run_simt(ref, query)
                                        : run_native(ref, query);
}

Engine::NativeIndex Engine::build_native_index(const seq::Sequence& ref) const {
  const Config::Geometry g = cfg_.validated();
  NativeIndex out;
  util::Timer timer;
  const std::uint32_t n_r = ref.empty()
                                ? 0
                                : static_cast<std::uint32_t>(
                                      util::ceil_div<std::size_t>(ref.size(),
                                                                  g.tile_len));
  out.rows.reserve(n_r);
  for (std::uint32_t row = 0; row < n_r; ++row) {
    const std::size_t r0 = std::size_t{row} * g.tile_len;
    const std::size_t r1 = std::min(ref.size(), r0 + g.tile_len);
    out.rows.emplace_back(ref, r0, r1, cfg_.seed_len, g.step);
  }
  out.build_seconds = timer.seconds();
  return out;
}

Result Engine::run_native_prebuilt(const seq::Sequence& ref,
                                   const seq::Sequence& query,
                                   const NativeIndex& prebuilt) const {
  return run_native(ref, query, &prebuilt);
}

Result Engine::run_fast_index(const seq::Sequence& ref,
                              const seq::Sequence& query) const {
  (void)cfg_.validated();  // Eq. 1 implies seed_len <= min_length
  util::Timer wall;
  mem::CopMemFinder finder;
  finder.set_seed_len(cfg_.seed_len);
  mem::FinderOptions opt;
  opt.min_length = cfg_.min_length;
  opt.threads = cfg_.threads;
  finder.build_index(ref, opt);
  Result out;
  out.mems = finder.find(query);
  out.stats.index_seconds = finder.build_seconds();
  out.stats.match_seconds = finder.last_find_modeled_seconds();
  out.stats.mem_count = out.mems.size();
  out.stats.wall_seconds = wall.seconds();
  publish_run_stats(out.stats);
  return out;
}

void Engine::run_simt_rows(simt::Device& dev, const seq::Sequence& ref,
                           const seq::Sequence& query,
                           std::uint32_t row_begin, std::uint32_t row_end,
                           std::vector<mem::Mem>& reported,
                           std::vector<mem::Mem>& outtile_pieces,
                           RunStats& stats,
                           RowIndexSource* index_source) const {
  if (cfg_.overlap) {
    run_simt_rows_overlapped(dev, ref, query, row_begin, row_end, reported,
                             outtile_pieces, stats, index_source);
    return;
  }
  const Config::Geometry g = cfg_.validated();
  if (ref.empty() || query.empty() || row_begin >= row_end) return;
  const double makespan_base = dev.ledger().total_seconds();

  // Sequences live on the device for the whole run (2 bits per base), like
  // the real tool; only the *index* is tile-partitioned.
  simt::Buffer<std::uint64_t> ref_dev(dev, ref.size() / 32 + 1);
  simt::Buffer<std::uint64_t> query_dev(dev, query.size() / 32 + 1);
  dev.account_copy(ref_dev.bytes() + query_dev.bytes());

  const std::uint32_t n_r = static_cast<std::uint32_t>(
      util::ceil_div<std::size_t>(ref.size(), g.tile_len));
  const std::uint32_t n_c = static_cast<std::uint32_t>(
      util::ceil_div<std::size_t>(query.size(), g.tile_len));
  row_end = std::min(row_end, n_r);

  const std::uint32_t max_locs =
      static_cast<std::uint32_t>(g.tile_len / g.step) + 2;
  // Build-per-run path owns one index rebuilt per row; the prebuilt path
  // borrows resident indexes from the source instead.
  std::optional<DeviceIndex> local_index;
  if (index_source == nullptr) {
    local_index.emplace(dev, cfg_.seed_len, g.step, max_locs);
  }
  std::uint32_t rows_hit = 0;

  std::uint32_t cap_out = cfg_.output_capacity;
  std::uint32_t cap_in = cfg_.output_capacity;

  for (std::uint32_t row = row_begin; row < row_end; ++row) {
    const std::uint32_t r0 = row * g.tile_len;
    const std::uint32_t r1 = static_cast<std::uint32_t>(
        std::min<std::size_t>(ref.size(), r0 + std::size_t{g.tile_len}));
    DeviceIndex* index = nullptr;
    {
      const double before = dev.ledger().total_seconds();
      bool hit = false;
      if (index_source != nullptr) {
        index = &index_source->acquire(dev, ref, row, hit);
        if (index->seed_len != cfg_.seed_len || index->step != g.step) {
          throw std::invalid_argument(
              "run_simt_rows: RowIndexSource geometry does not match the "
              "engine config (seed_len/step)");
        }
      } else {
        build_partial_index(dev, ref, r0, r1, cfg_.threads, *local_index);
        index = &*local_index;
      }
      rows_hit += hit;
      const double delta = dev.ledger().total_seconds() - before;
      stats.index_seconds += delta;
      if (obs::enabled()) {
        obs::flight(obs::FlightKind::kLedger, "index/build-row",
                    obs::current_trace().trace_id, delta,
                    dev.ledger().total_seconds());
        obs::record_modeled_span("index/build-row", "stage", before, delta,
                                 dev.ordinal(),
                                 {{"row", std::uint64_t{row}},
                                  {"cache_hit", std::uint64_t{hit}}});
      }
    }

    for (std::uint32_t col = 0; col < n_c; ++col) {
      const std::uint32_t c0 = col * g.tile_len;
      const std::uint32_t c1 = static_cast<std::uint32_t>(
          std::min<std::size_t>(query.size(), c0 + std::size_t{g.tile_len}));
      const Rect tile{r0, r1, c0, c1};
      const double before = dev.ledger().total_seconds();

      TileResult outs = process_tile(dev, cfg_, g, ref, query, *index, tile,
                                     cap_in, cap_out);
      stats.overflow_rounds += outs.overflow_rounds;
      stats.inblock_mems += outs.inblock.size();
      stats.intile_mems += outs.intile.size();
      reported.insert(reported.end(), outs.inblock.begin(), outs.inblock.end());
      reported.insert(reported.end(), outs.intile.begin(), outs.intile.end());
      outtile_pieces.insert(outtile_pieces.end(), outs.outtile.begin(),
                            outs.outtile.end());

      const double delta = dev.ledger().total_seconds() - before;
      stats.match_seconds += delta;
      if (obs::enabled()) {
        obs::flight(obs::FlightKind::kLedger, "match/tile",
                    obs::current_trace().trace_id, delta,
                    dev.ledger().total_seconds());
        obs::record_modeled_span(
            "match/tile", "stage", before, delta, dev.ordinal(),
            {{"row", std::uint64_t{row}},
             {"col", std::uint64_t{col}},
             {"inblock_mems", std::uint64_t{outs.inblock.size()}},
             {"outblock_pieces", std::uint64_t{outs.outblock_pieces}},
             {"overflow_rounds", outs.overflow_rounds}});
      }
    }
  }

  stats.modeled_makespan_seconds +=
      dev.ledger().total_seconds() - makespan_base;
  stats.index_cache_hit =
      index_source != nullptr && rows_hit == row_end - row_begin;
}

void Engine::run_simt_rows_overlapped(simt::Device& dev,
                                      const seq::Sequence& ref,
                                      const seq::Sequence& query,
                                      std::uint32_t row_begin,
                                      std::uint32_t row_end,
                                      std::vector<mem::Mem>& reported,
                                      std::vector<mem::Mem>& outtile_pieces,
                                      RunStats& stats,
                                      RowIndexSource* index_source) const {
  const Config::Geometry g = cfg_.validated();
  if (ref.empty() || query.empty() || row_begin >= row_end) return;

  const std::uint32_t n_r = static_cast<std::uint32_t>(
      util::ceil_div<std::size_t>(ref.size(), g.tile_len));
  const std::uint32_t n_c = static_cast<std::uint32_t>(
      util::ceil_div<std::size_t>(query.size(), g.tile_len));
  row_end = std::min(row_end, n_r);
  if (row_begin >= row_end) return;
  const std::uint32_t n_rows = row_end - row_begin;
  const std::uint32_t W = cfg_.overlap_streams;

  simt::Buffer<std::uint64_t> ref_dev(dev, ref.size() / 32 + 1);
  simt::Buffer<std::uint64_t> query_dev(dev, query.size() / 32 + 1);

  simt::StreamScheduler sched(dev, cfg_.overlap_shuffle_seed);
  simt::Stream& copy = sched.create_stream("copy");
  std::vector<simt::Stream*> workers;
  workers.reserve(W);
  for (std::uint32_t s = 0; s < W; ++s) {
    workers.push_back(&sched.create_stream("worker-" + std::to_string(s)));
  }

  // Sequence upload on the copy stream; every worker's first op waits it.
  simt::Event ev_upload;
  const std::size_t upload_bytes = ref_dev.bytes() + query_dev.bytes();
  copy.run("upload/sequences", [&dev, upload_bytes] {
    dev.account_copy(upload_bytes, simt::CopyDir::kH2D);
  });
  copy.record(ev_upload);
  for (simt::Stream* w : workers) w->wait(ev_upload);

  // Double-buffered row indexes: row k builds into slot k % 2, so building
  // row k+1 overlaps row k's match kernels, and building row k+2 must wait
  // until every row-k tile is done with its slot (the ev_row_done edges).
  // The cached path borrows resident indexes instead — no slot conflict.
  const std::uint32_t max_locs =
      static_cast<std::uint32_t>(g.tile_len / g.step) + 2;
  const bool double_buffer = index_source == nullptr;
  std::optional<DeviceIndex> local_index[2];
  if (double_buffer) {
    local_index[0].emplace(dev, cfg_.seed_len, g.step, max_locs);
    if (n_rows > 1) {
      local_index[1].emplace(dev, cfg_.seed_len, g.step, max_locs);
    }
  }

  struct RowWork {
    DeviceIndex* index = nullptr;
    bool hit = false;
    double index_seconds = 0.0;
    simt::Stream::OpId build_op = 0;
  };
  struct TileWork {
    TileResult outs;
    double match_seconds = 0.0;
    simt::Stream::OpId op = 0;
  };
  std::vector<RowWork> rows(n_rows);
  std::vector<TileWork> tiles(std::size_t{n_rows} * n_c);
  std::vector<simt::Event> ev_build(n_rows);
  std::vector<std::vector<simt::Event>> ev_row_done(n_rows);
  for (auto& per_stream : ev_row_done) per_stream.resize(W);

  // Tile -> stream mapping is static (col % W), so each stream's adaptive
  // capacities see the same tile sequence under every drain order — retries
  // and kernels_launched are interleaving-independent.
  std::vector<std::uint32_t> cap_in(W, cfg_.output_capacity);
  std::vector<std::uint32_t> cap_out(W, cfg_.output_capacity);

  // Host stitch worker: a completed row's MEMs are pre-sorted concurrently
  // with the rest of the drain (the tentpole's "row k-1 host stitch" leg).
  // The final sort_unique in the caller makes the pre-sort semantically
  // invisible; it just front-loads comparison work off the critical path.
  std::vector<std::vector<mem::Mem>> row_reported(n_rows);
  std::vector<std::uint32_t> row_remaining(n_rows, n_c);
  std::mutex stitch_mu;
  std::condition_variable stitch_cv;
  std::deque<std::uint32_t> stitch_queue;
  bool stitch_done = false;
  std::thread stitcher([&] {
    for (;;) {
      std::uint32_t i = 0;
      {
        std::unique_lock lk(stitch_mu);
        stitch_cv.wait(lk,
                       [&] { return stitch_done || !stitch_queue.empty(); });
        if (stitch_queue.empty()) return;
        i = stitch_queue.front();
        stitch_queue.pop_front();
      }
      mem::sort_unique(row_reported[i]);
    }
  });
  const auto finish_stitcher = [&] {
    {
      std::lock_guard lk(stitch_mu);
      stitch_done = true;
    }
    stitch_cv.notify_one();
    stitcher.join();
  };

  std::uint32_t rows_hit = 0;
  try {
    for (std::uint32_t i = 0; i < n_rows; ++i) {
      const std::uint32_t row = row_begin + i;
      const std::uint32_t r0 = row * g.tile_len;
      const std::uint32_t r1 = static_cast<std::uint32_t>(
          std::min<std::size_t>(ref.size(), r0 + std::size_t{g.tile_len}));
      simt::Stream& bs = *workers[i % W];
      if (double_buffer && i >= 2) {
        for (std::uint32_t s = 0; s < W; ++s) {
          bs.wait(ev_row_done[i - 2][s]);
        }
      }
      RowWork& rw = rows[i];
      DeviceIndex* slot = double_buffer ? &*local_index[i % 2] : nullptr;
      rw.build_op = bs.run(
          "index/build-row",
          [this, &dev, &ref, &rw, &stats, &rows_hit, index_source, slot, row,
           r0, r1, g] {
            const double before = dev.ledger().total_seconds();
            if (index_source != nullptr) {
              bool hit = false;
              rw.index = &index_source->acquire(dev, ref, row, hit);
              if (rw.index->seed_len != cfg_.seed_len ||
                  rw.index->step != g.step) {
                throw std::invalid_argument(
                    "run_simt_rows: RowIndexSource geometry does not match "
                    "the engine config (seed_len/step)");
              }
              rw.hit = hit;
              rows_hit += hit;
            } else {
              build_partial_index(dev, ref, r0, r1, cfg_.threads, *slot);
              rw.index = slot;
            }
            rw.index_seconds = dev.ledger().total_seconds() - before;
            stats.index_seconds += rw.index_seconds;
          });
      bs.record(ev_build[i]);

      for (std::uint32_t s = 0; s < W; ++s) {
        simt::Stream& ws = *workers[s];
        bool first_tile = true;
        for (std::uint32_t col = s; col < n_c; col += W) {
          if (first_tile) {
            ws.wait(ev_build[i]);
            first_tile = false;
          }
          const std::uint32_t c0 = col * g.tile_len;
          const std::uint32_t c1 = static_cast<std::uint32_t>(
              std::min<std::size_t>(query.size(),
                                    c0 + std::size_t{g.tile_len}));
          const Rect tile{r0, r1, c0, c1};
          TileWork& tw = tiles[std::size_t{i} * n_c + col];
          tw.op = ws.run(
              "match/tile",
              [this, &dev, &ref, &query, &rw, &tw, &stats, &cap_in, &cap_out,
               &tiles, &row_remaining, &row_reported, &stitch_mu, &stitch_cv,
               &stitch_queue, tile, g, s, i, n_c] {
                const double before = dev.ledger().total_seconds();
                tw.outs = process_tile(dev, cfg_, g, ref, query, *rw.index,
                                       tile, cap_in[s], cap_out[s]);
                tw.match_seconds = dev.ledger().total_seconds() - before;
                stats.match_seconds += tw.match_seconds;
                stats.overflow_rounds += tw.outs.overflow_rounds;
                stats.inblock_mems += tw.outs.inblock.size();
                stats.intile_mems += tw.outs.intile.size();
                if (--row_remaining[i] == 0) {
                  std::vector<mem::Mem>& dst = row_reported[i];
                  for (std::uint32_t c = 0; c < n_c; ++c) {
                    TileResult& o = tiles[std::size_t{i} * n_c + c].outs;
                    dst.insert(dst.end(), o.inblock.begin(), o.inblock.end());
                    dst.insert(dst.end(), o.intile.begin(), o.intile.end());
                    o.inblock.clear();
                    o.intile.clear();
                  }
                  {
                    std::lock_guard lk(stitch_mu);
                    stitch_queue.push_back(i);
                  }
                  stitch_cv.notify_one();
                }
              });
        }
        ws.record(ev_row_done[i][s]);
      }
    }
    sched.drain();
  } catch (...) {
    finish_stitcher();
    throw;
  }
  finish_stitcher();

  stats.modeled_makespan_seconds += sched.makespan();
  stats.index_cache_hit = index_source != nullptr && rows_hit == n_rows;

  // Assemble outputs in row/tile order (per-row vectors are pre-sorted; the
  // caller's final sort_unique normalizes everything).
  for (std::uint32_t i = 0; i < n_rows; ++i) {
    reported.insert(reported.end(), row_reported[i].begin(),
                    row_reported[i].end());
  }
  for (const TileWork& tw : tiles) {
    outtile_pieces.insert(outtile_pieces.end(), tw.outs.outtile.begin(),
                          tw.outs.outtile.end());
  }

  // Stage spans, placed at the ops' overlapped intervals on per-stream
  // tracks (kernel/transfer spans were already retimed by the scheduler).
  if (obs::enabled()) {
    for (std::uint32_t i = 0; i < n_rows; ++i) {
      const simt::StreamScheduler::Interval iv = sched.interval(rows[i].build_op);
      obs::record_modeled_span(
          "index/build-row", "stage", iv.start, iv.end - iv.start,
          dev.ordinal(),
          {{"row", std::uint64_t{row_begin + i}},
           {"cache_hit", std::uint64_t{rows[i].hit}}},
          workers[i % W]->track());
    }
    for (std::uint32_t i = 0; i < n_rows; ++i) {
      for (std::uint32_t col = 0; col < n_c; ++col) {
        const TileWork& tw = tiles[std::size_t{i} * n_c + col];
        const simt::StreamScheduler::Interval iv = sched.interval(tw.op);
        obs::record_modeled_span(
            "match/tile", "stage", iv.start, iv.end - iv.start, dev.ordinal(),
            {{"row", std::uint64_t{row_begin + i}},
             {"col", std::uint64_t{col}},
             {"inblock_mems", std::uint64_t{tw.outs.inblock.size()}},
             {"outblock_pieces", std::uint64_t{tw.outs.outblock_pieces}},
             {"overflow_rounds", tw.outs.overflow_rounds}},
            workers[col % W]->track());
      }
    }
  }
}

Result Engine::run_simt(const seq::Sequence& ref,
                        const seq::Sequence& query) const {
  simt::Device dev(cfg_.device);
  return run_simt_on(dev, ref, query, nullptr);
}

Result Engine::run_simt_cached(simt::Device& dev, const seq::Sequence& ref,
                               const seq::Sequence& query,
                               RowIndexSource& source) const {
  if (cfg_.backend != Backend::kSimt) {
    throw std::invalid_argument(
        "run_simt_cached: row-index sources serve only the SIMT backend");
  }
  return run_simt_on(dev, ref, query, &source);
}

Result Engine::run_simt_on(simt::Device& dev, const seq::Sequence& ref,
                           const seq::Sequence& query,
                           RowIndexSource* index_source) const {
  const Config::Geometry g = cfg_.validated();
  if (cfg_.observe) obs::Registry::global().set_enabled(true);
  obs::Span run_span("pipeline/run", "pipeline");
  run_span.attr("backend", std::string("simt"));
  run_span.attr("ref_bp", std::uint64_t{ref.size()});
  run_span.attr("query_bp", std::uint64_t{query.size()});
  util::Timer wall;
  Result result;

  // The device may be persistent (serve-layer pool, resident cache), so all
  // ledger-derived stats are deltas from this point, and the peak watermark
  // restarts at whatever is currently resident.
  const simt::PerfLedger::Snapshot base = dev.ledger().snapshot();
  dev.reset_peak();
  if (!ref.empty() && !query.empty()) {
    result.stats.tile_rows = static_cast<std::uint32_t>(
        util::ceil_div<std::size_t>(ref.size(), g.tile_len));
    result.stats.tile_cols = static_cast<std::uint32_t>(
        util::ceil_div<std::size_t>(query.size(), g.tile_len));
  }

  std::vector<mem::Mem> reported;        // in-block + in-tile MEMs
  std::vector<mem::Mem> outtile_pieces;  // stitched at the end
  run_simt_rows(dev, ref, query, 0, result.stats.tile_rows, reported,
                outtile_pieces, result.stats, index_source);

  // ---- final host merge of out-tile triplets (Section III-C2) -------------
  {
    const double stitch_start_us =
        obs::enabled() ? obs::Registry::global().wall_now_us() : 0.0;
    util::Timer host_merge;
    result.stats.outtile_pieces = outtile_pieces.size();
    std::vector<mem::Mem> finished = finalize_out_tile(
        ref, query, std::move(outtile_pieces), cfg_.min_length);
    reported.insert(reported.end(), finished.begin(), finished.end());
    mem::clip_invalid_bases(ref, query, reported, cfg_.min_length);
    mem::sort_unique(reported);
    result.stats.host_stitch_seconds = host_merge.seconds();
    result.stats.match_seconds += result.stats.host_stitch_seconds;
    if (obs::enabled()) record_stitch_span(stitch_start_us, result.stats);
  }

  result.mems = std::move(reported);
  result.stats.mem_count = result.mems.size();
  result.stats.kernels_launched = dev.ledger().kernels_launched() - base.kernels;
  result.stats.device_peak_bytes = dev.peak_bytes();
  for (const auto& [label, ls] : dev.ledger().breakdown_since(base)) {
    result.stats.kernel_breakdown.push_back({label, ls.seconds, ls.launches});
  }
  result.stats.wall_seconds = wall.seconds();
  publish_run_stats(result.stats);
  return result;
}

Result Engine::run_native(const seq::Sequence& ref,
                          const seq::Sequence& query,
                          const NativeIndex* prebuilt) const {
  const Config::Geometry g = cfg_.validated();
  if (cfg_.observe) obs::Registry::global().set_enabled(true);
  obs::Span run_span("pipeline/run", "pipeline");
  run_span.attr("backend", std::string("native"));
  run_span.attr("ref_bp", std::uint64_t{ref.size()});
  run_span.attr("query_bp", std::uint64_t{query.size()});
  util::Timer wall;
  Result result;
  if (ref.empty() || query.empty()) {
    result.stats.wall_seconds = wall.seconds();
    return result;
  }

  const std::uint32_t n_r = static_cast<std::uint32_t>(
      util::ceil_div<std::size_t>(ref.size(), g.tile_len));
  const std::uint32_t n_c = static_cast<std::uint32_t>(
      util::ceil_div<std::size_t>(query.size(), g.tile_len));
  result.stats.tile_rows = n_r;
  result.stats.tile_cols = n_c;
  result.stats.index_cache_hit = prebuilt != nullptr;

  std::vector<mem::Mem> reported;
  std::vector<mem::Mem> outtile_pieces;
  const seq::PackedSeq pref(ref), pquery(query);

  for (std::uint32_t row = 0; row < n_r; ++row) {
    const std::uint32_t r0 = row * g.tile_len;
    const std::uint32_t r1 = static_cast<std::uint32_t>(
        std::min<std::size_t>(ref.size(), r0 + std::size_t{g.tile_len}));

    // Reuse prebuilt row indexes when available (build-once / query-many).
    std::optional<index::KmerIndex> local;
    if (prebuilt == nullptr) {
      obs::Span index_span("index/build-row", "stage");
      index_span.attr("row", std::uint64_t{row});
      util::Timer index_timer;
      local.emplace(ref, r0, r1, cfg_.seed_len, g.step);
      result.stats.index_seconds += index_timer.seconds();
    }
    const index::KmerIndex& idx =
        prebuilt != nullptr ? prebuilt->rows.at(row) : *local;

    obs::Span match_span("match/row", "stage");
    match_span.attr("row", std::uint64_t{row});
    util::Timer match_timer;
    for (std::uint32_t col = 0; col < n_c; ++col) {
      const std::uint32_t c0 = col * g.tile_len;
      const std::uint32_t c1 = static_cast<std::uint32_t>(
          std::min<std::size_t>(query.size(), c0 + std::size_t{g.tile_len}));
      const Rect tile{r0, r1, c0, c1};

      // Parallel over query chunks; chain-interior hits are skipped so each
      // in-tile chain is expanded exactly once (same invariant the device
      // combine establishes).
      const std::size_t workers = util::ThreadPool::global().size();
      std::vector<std::vector<mem::Mem>> local_in(workers + 1);
      std::vector<std::vector<mem::Mem>> local_out(workers + 1);
      std::atomic<std::size_t> chunk_id{0};
      util::parallel_for_chunked(
          c0, c1, workers, [&](std::size_t jb, std::size_t je) {
            const std::size_t my = chunk_id.fetch_add(1);
            std::vector<mem::Mem>& in_sink = local_in[my];
            std::vector<mem::Mem>& out_sink = local_out[my];
            for (std::size_t j = jb; j < je; ++j) {
              if (j + cfg_.seed_len > query.size()) break;
              const std::uint64_t seed = query.kmer(j, cfg_.seed_len);
              for (const std::uint32_t p : idx.lookup(seed)) {
                const std::size_t back_room =
                    std::min<std::size_t>(p - tile.r0, j - tile.q0);
                std::size_t back = 0;
                if (p > 0 && j > 0) {
                  back = pref.lce_backward(p - 1, pquery, j - 1, back_room);
                }
                if (back >= g.step) continue;  // chain-interior hit
                const mem::Mem e = expand_clamped(
                    pref, pquery,
                    mem::Mem{p, static_cast<std::uint32_t>(j), cfg_.seed_len},
                    tile);
                if (touches_edge(e, tile)) {
                  out_sink.push_back(e);
                } else if (e.len >= cfg_.min_length) {
                  in_sink.push_back(e);
                }
              }
            }
          });
      for (auto& v : local_in) {
        result.stats.intile_mems += v.size();
        reported.insert(reported.end(), v.begin(), v.end());
      }
      for (auto& v : local_out) {
        outtile_pieces.insert(outtile_pieces.end(), v.begin(), v.end());
      }
    }
    result.stats.match_seconds += match_timer.seconds();
  }

  {
    const double stitch_start_us =
        obs::enabled() ? obs::Registry::global().wall_now_us() : 0.0;
    util::Timer host_merge;
    result.stats.outtile_pieces = outtile_pieces.size();
    std::vector<mem::Mem> finished = finalize_out_tile(
        ref, query, std::move(outtile_pieces), cfg_.min_length);
    reported.insert(reported.end(), finished.begin(), finished.end());
    mem::clip_invalid_bases(ref, query, reported, cfg_.min_length);
    mem::sort_unique(reported);
    result.stats.host_stitch_seconds = host_merge.seconds();
    result.stats.match_seconds += result.stats.host_stitch_seconds;
    if (obs::enabled()) record_stitch_span(stitch_start_us, result.stats);
  }

  result.mems = std::move(reported);
  result.stats.mem_count = result.mems.size();
  result.stats.wall_seconds = wall.seconds();
  publish_run_stats(result.stats);
  return result;
}

}  // namespace gm::core
