// 2D search-space tiling (paper Fig. 1): the reference is the y axis, the
// query the x axis; tiles are ℓtile × ℓtile, blocks are ℓtile × ℓblock
// strips inside a tile.
#pragma once

#include <cstdint>

#include "mem/mem.h"

namespace gm::core {

/// Half-open rectangle of the search space: reference rows [r0, r1),
/// query columns [q0, q1).
struct Rect {
  std::uint32_t r0 = 0, r1 = 0;
  std::uint32_t q0 = 0, q1 = 0;
};

/// Expansion clamp + boundary classification for a match triplet.
inline bool touches_edge(const mem::Mem& m, const Rect& rect) noexcept {
  return m.r == rect.r0 || m.q == rect.q0 || m.r + m.len == rect.r1 ||
         m.q + m.len == rect.q1;
}

}  // namespace gm::core
