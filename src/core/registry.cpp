// Implementation of mem/registry.h — lives here because the GPUMEM finders
// need the core pipeline (see src/mem/CMakeLists.txt).
#include "mem/registry.h"

#include <stdexcept>

#include "core/finders.h"
#include "mem/copmem.h"
#include "mem/essamem.h"
#include "mem/mummer.h"
#include "mem/naive.h"
#include "mem/slamem.h"
#include "mem/sparsemem.h"

namespace gm::mem {

std::unique_ptr<MemFinder> create_finder(const std::string& name) {
  if (name == "naive") return std::make_unique<NaiveFinder>();
  if (name == "mummer") return std::make_unique<MummerFinder>();
  if (name == "sparsemem") return std::make_unique<SparseMemFinder>();
  if (name == "essamem") return std::make_unique<EssaMemFinder>();
  if (name == "slamem") return std::make_unique<SlaMemFinder>();
  if (name == "slamem-lazy") return std::make_unique<SlaMemFinder>(true);
  if (name == "copmem") return std::make_unique<CopMemFinder>();
  if (name == "gpumem") {
    return std::make_unique<core::GpumemFinder>(core::Backend::kSimt);
  }
  if (name == "gpumem-native") {
    return std::make_unique<core::GpumemFinder>(core::Backend::kNative);
  }
  throw std::invalid_argument("create_finder: unknown finder '" + name + "'");
}

std::vector<std::string> finder_names() {
  return {"naive",  "mummer",      "sparsemem", "essamem", "slamem",
          "slamem-lazy", "copmem", "gpumem",    "gpumem-native"};
}

}  // namespace gm::mem
