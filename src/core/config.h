// GPUMEM configuration: the paper's parameters (Table I) plus engineering
// knobs, with Eq. 1 enforced at validation time.
#pragma once

#include <cstdint>
#include <string>

#include "simt/device.h"

namespace gm::core {

enum class Backend {
  kSimt,    ///< kernels on the simulated device; modeled GPU time
  kNative,  ///< same tiling pipeline on host threads; measured wall time
};

struct Config {
  // --- problem parameters (paper Table I) ---------------------------------
  std::uint32_t min_length = 20;  ///< L
  std::uint32_t seed_len = 10;    ///< ℓs (<= 16 so a seed packs in 32 bits)

  /// Δs. 0 = auto: the maximum Eq. 1 allows, Δs = L − ℓs + 1 ("we use the
  /// maximum possible value", Section III-A).
  std::uint32_t step = 0;

  // --- device geometry ------------------------------------------------------
  std::uint32_t threads = 256;     ///< τ, threads per block (power of two)
  std::uint32_t tile_blocks = 64;  ///< n_block, blocks per tile

  // --- feature toggles (paper experiments & ablations) ---------------------
  bool load_balance = true;  ///< Algorithm 2 on/off (paper Fig. 7)
  bool combine = true;       ///< Algorithm 3 on/off (ablation; correctness is
                             ///< preserved either way via final dedupe)

  Backend backend = Backend::kSimt;
  simt::DeviceSpec device = simt::DeviceSpec::k20c();

  // --- stream overlap (SIMT backend) ---------------------------------------
  /// Runs the tile pipeline double-buffered over simt::Streams: row k's
  /// match kernels overlap row k+1's index build and the copies, and the
  /// per-row host stitch runs on a worker thread. MEM results are
  /// bit-identical to the serial path; only modeled makespan (and wall
  /// clock) change. See docs/PIPELINE.md.
  bool overlap = false;
  /// Worker streams for the overlapped pipeline (>= 1). Tile columns are
  /// distributed col % overlap_streams, so the mapping — and therefore every
  /// buffer capacity retry — is independent of scheduling order.
  std::uint32_t overlap_streams = 2;
  /// Nonzero: seed for the scheduler's randomized drain-order shuffle. The
  /// determinism tests sweep this to prove results don't depend on
  /// interleaving; 0 (default) = deterministic earliest-ready order.
  std::uint64_t overlap_shuffle_seed = 0;

  /// Turns on the process-global observability registry (obs::Registry) at
  /// run start: stage/kernel/transfer spans and run metrics are recorded
  /// for export. Leaving it false never disables a registry the front-end
  /// enabled itself.
  bool observe = false;

  // --- capacities -----------------------------------------------------------
  /// Per-block scratch capacity in triplets for one round. Rounds whose
  /// total load exceeds it fall back to the host path (rare; counted in
  /// RunStats so experiments can report it).
  std::uint32_t round_capacity = 16384;
  /// Initial sizes of the device output lists; the pipeline retries a tile
  /// with doubled buffers on overflow.
  std::uint32_t output_capacity = 1 << 16;

  struct Geometry {
    std::uint32_t step = 0;         ///< Δs (resolved)
    std::uint32_t w = 0;            ///< query locations per thread = Δs
    std::uint32_t block_width = 0;  ///< ℓ_block = τ · w
    std::uint32_t tile_len = 0;     ///< ℓ_tile = n_block · ℓ_block
  };

  /// Resolves derived quantities; throws std::invalid_argument when the
  /// configuration violates Eq. 1 (Δs <= L − ℓs + 1) or basic constraints.
  Geometry validated() const;

  std::string describe() const;
};

}  // namespace gm::core
