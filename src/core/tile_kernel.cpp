#include "core/tile_kernel.h"

#include <algorithm>

#include "core/host_stitch.h"
#include "simt/executor.h"

namespace gm::core {
namespace {

// Sort key: (diagonal, q, len); sentinel entries (r == UINT32_MAX) sort last.
bool triplet_less(const mem::Mem& a, const mem::Mem& b) {
  if (a.diagonal() != b.diagonal()) return a.diagonal() < b.diagonal();
  if (a.q != b.q) return a.q < b.q;
  return a.len < b.len;
}

simt::KernelTask tile_combine_kernel(simt::ThreadCtx& ctx, simt::NoShared&,
                                     const TileCombineParams& P) {
  const std::uint32_t tau = ctx.block_dim();
  const std::uint32_t tid = ctx.thread_id();
  const std::size_t m = P.triplets.size();  // power of two (padded)
  const seq::Sequence& R = *P.ref;
  const seq::Sequence& Q = *P.query;

  // --- bitonic sort by (diagonal, q) ---------------------------------------
  for (std::size_t size = 2; size <= m; size <<= 1) {
    for (std::size_t stride = size >> 1; stride > 0; stride >>= 1) {
      for (std::size_t idx = tid; idx < m; idx += tau) {
        const std::size_t partner = idx ^ stride;
        if (partner <= idx) continue;
        const bool ascending = (idx & size) == 0;
        mem::Mem& a = P.triplets[idx];
        mem::Mem& b = P.triplets[partner];
        if (triplet_less(b, a) == ascending) std::swap(a, b);
        ctx.alu(4);
        ctx.gmem_txn(2);
      }
      co_await ctx.sync();
    }
  }

  // --- run-start detection (reads only pre-merge values) -------------------
  for (std::size_t i = tid; i < P.count; i += tau) {
    bool start = true;
    if (i > 0) {
      const mem::Mem& prev = P.triplets[i - 1];
      const mem::Mem& cur = P.triplets[i];
      start = !(prev.diagonal() == cur.diagonal() &&
                static_cast<std::uint64_t>(prev.q) + prev.len >= cur.q);
    }
    P.run_start[i] = start ? 1 : 0;
    ctx.alu(4);
    ctx.gmem_txn(2);
  }
  co_await ctx.sync();

  // --- chain merge: each run walked by the thread owning its start ---------
  for (std::size_t i = tid; i < P.count; i += tau) {
    if (!P.run_start[i]) continue;
    mem::Mem& head = P.triplets[i];
    for (std::size_t j = i + 1; j < P.count && !P.run_start[j]; ++j) {
      mem::Mem& t = P.triplets[j];
      const std::uint32_t delta = t.q - head.q;
      head.len = std::max(head.len, delta + t.len);
      t.len = 0;
      ctx.alu(3);
      ctx.gmem_txn(1);
    }
  }
  co_await ctx.sync();

  // --- expansion + in-tile / out-tile classification -----------------------
  const seq::PackedSeq pR(R), pQ(Q);
  for (std::size_t i = tid; i < P.count; i += tau) {
    const mem::Mem t = P.triplets[i];
    if (t.len == 0) continue;
    const mem::Mem e = expand_clamped(pR, pQ, t, P.tile);
    ctx.alu(e.len / 8 + 4);
    ctx.gmem_txn(2 + e.len / 64);
    ctx.gmem(e.len / 2);
    if (touches_edge(e, P.tile)) {
      const std::uint32_t idx = simt::atomic_fetch_add(&P.outtile_count[0], 1u);
      if (idx < P.outtile.size()) P.outtile[idx] = e;
      ctx.atomic_op();
    } else if (e.len >= P.min_len) {
      const std::uint32_t idx = simt::atomic_fetch_add(&P.intile_count[0], 1u);
      if (idx < P.intile.size()) P.intile[idx] = e;
      ctx.atomic_op();
    }
    ctx.gmem_txn(1);
  }
}

}  // namespace

void launch_tile_combine(simt::Device& dev, std::uint32_t threads,
                         const TileCombineParams& params) {
  simt::LaunchConfig cfg;
  cfg.grid = 1;
  cfg.block = threads;
  cfg.label = "tile-combine";
  simt::launch<simt::NoShared>(dev, cfg, tile_combine_kernel, params);
}

}  // namespace gm::core
