// The per-tile MEM extraction kernel — paper Section III-B.
//
// One device block per ℓtile × ℓblock strip; w rounds per block, each round
// processing the τ query seeds of one residue class (positions
// q0 + round + k·w). Per round: proactive load balancing (Algorithm 2,
// computed in-device with two block scans), exact-match triplet generation
// with seed-wise right extension, the conflict-free log-time combine
// (Algorithm 3), then expansion + in-block / out-block classification.
#pragma once

#include <cstdint>
#include <span>

#include "core/config.h"
#include "core/geometry.h"
#include "mem/mem.h"
#include "seq/sequence.h"
#include "simt/device.h"

namespace gm::core {

struct MatchParams {
  const seq::Sequence* ref = nullptr;
  const seq::Sequence* query = nullptr;
  std::span<const std::uint32_t> ptrs;
  std::span<const std::uint32_t> locs;
  Rect tile;
  std::uint32_t seed_len = 0;
  std::uint32_t w = 0;
  std::uint32_t min_len = 0;
  std::uint32_t round_capacity = 0;
  std::uint32_t block_width = 0;
  bool load_balance = true;
  bool combine = true;

  std::span<mem::Mem> scratch;  ///< grid × round_capacity round triplets
  std::span<mem::Mem> inblock;
  std::span<std::uint32_t> inblock_count;  ///< single counter
  std::span<mem::Mem> outblock;
  std::span<std::uint32_t> outblock_count;
  std::span<std::uint8_t> overflow;  ///< grid × w flags: round fell back
};

/// Launches the match kernel over `grid` blocks; returns modeled stats via
/// the device ledger. Counters may exceed buffer sizes (overflow); the
/// caller checks and retries with larger buffers.
void launch_match_kernel(simt::Device& dev, std::uint32_t grid,
                         std::uint32_t threads, const MatchParams& params);

/// Host-side re-execution of one (block, round) pair that overflowed the
/// round scratch — semantically identical output (chains expanded and
/// classified against the block rectangle), appended to the two lists.
void process_round_host(const MatchParams& params, std::uint32_t block,
                        std::uint32_t round, std::uint32_t threads,
                        std::vector<mem::Mem>& inblock_out,
                        std::vector<mem::Mem>& outblock_out);

}  // namespace gm::core
