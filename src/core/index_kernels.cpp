#include "core/index_kernels.h"

#include <algorithm>
#include <stdexcept>

#include "simt/executor.h"
#include "simt/primitives.h"
#include "util/bits.h"

namespace gm::core {
namespace {

struct SampleRange {
  std::size_t first = 0;  ///< first sampled position (global grid)
  std::uint32_t step = 1;
  std::uint32_t count = 0;
};

// Step 1: one sampled location per thread; count occurrences into
// ptrs[seed + 1] with atomicAdd (the +1 shift makes the later inclusive
// prefix sum produce exclusive bucket starts).
simt::KernelTask count_kernel(simt::ThreadCtx& ctx, simt::NoShared&,
                              const seq::Sequence& ref, SampleRange range,
                              std::span<std::uint32_t> ptrs,
                              unsigned seed_len) {
  const std::uint64_t g = ctx.global_id();
  if (g < range.count) {
    const std::size_t p = range.first + g * range.step;
    const std::uint64_t seed = ref.kmer(p, seed_len);
    simt::atomic_fetch_add(&ptrs[seed + 1], 1u);
    ctx.alu(seed_len / 4 + 1);
    ctx.gmem_txn(2);  // window read + counter line
    ctx.atomic_op();
  }
  co_return;
}

// Step 3: scatter locations via atomic cursor per bucket.
simt::KernelTask fill_kernel(simt::ThreadCtx& ctx, simt::NoShared&,
                             const seq::Sequence& ref, SampleRange range,
                             std::span<std::uint32_t> temp,
                             std::span<std::uint32_t> locs,
                             unsigned seed_len) {
  const std::uint64_t g = ctx.global_id();
  if (g < range.count) {
    const std::size_t p = range.first + g * range.step;
    const std::uint64_t seed = ref.kmer(p, seed_len);
    const std::uint32_t slot = simt::atomic_fetch_add(&temp[seed], 1u);
    locs[slot] = static_cast<std::uint32_t>(p);
    ctx.alu(seed_len / 4 + 1);
    ctx.gmem_txn(3);  // window read, cursor line, scattered locs write
    ctx.atomic_op();
  }
  co_return;
}

// Step 4: a thread per seed (strided by items-per-thread) insertion-sorts
// its bucket. Buckets are tiny (tile-local occurrence counts), so insertion
// sort is the realistic device choice.
constexpr std::uint32_t kSortItemsPerThread = 64;

simt::KernelTask sort_kernel(simt::ThreadCtx& ctx, simt::NoShared&,
                             std::span<const std::uint32_t> ptrs,
                             std::span<std::uint32_t> locs) {
  const std::uint64_t base = ctx.global_id() * kSortItemsPerThread;
  const std::uint64_t buckets = ptrs.size() - 1;
  std::uint64_t work = 0;
  for (std::uint64_t s = base;
       s < std::min<std::uint64_t>(base + kSortItemsPerThread, buckets); ++s) {
    const std::uint32_t lo = ptrs[s];
    const std::uint32_t hi = ptrs[s + 1];
    for (std::uint32_t i = lo + 1; i < hi; ++i) {
      const std::uint32_t v = locs[i];
      std::uint32_t j = i;
      while (j > lo && locs[j - 1] > v) {
        locs[j] = locs[j - 1];
        --j;
      }
      locs[j] = v;
    }
    work += (hi > lo) ? (hi - lo) : 1;
  }
  ctx.alu(work);
  ctx.gmem(work * sizeof(std::uint32_t));  // bucket-local, mostly coalesced
  co_return;
}

}  // namespace

DeviceIndex::DeviceIndex(simt::Device& dev, unsigned seed_len_,
                         std::uint32_t step_, std::uint32_t max_locs)
    : ptrs(dev, (std::size_t{1} << (2 * seed_len_)) + 1),
      locs(dev, max_locs),
      seed_len(seed_len_),
      step(step_) {}

void build_partial_index(simt::Device& dev, const seq::Sequence& ref,
                         std::size_t start, std::size_t end,
                         std::uint32_t threads, DeviceIndex& index) {
  end = std::min(end, ref.size());
  SampleRange range;
  range.step = index.step;
  range.first = util::round_up(start, static_cast<std::size_t>(index.step));
  range.count = 0;
  // Last admissible start: must lie inside [start, end) and leave room for a
  // full seed inside the reference.
  const std::size_t seed_limit =
      ref.size() >= index.seed_len ? ref.size() - index.seed_len + 1 : 0;
  const std::size_t limit = std::min(end, seed_limit);
  if (range.first < limit) {
    range.count = static_cast<std::uint32_t>(
        (limit - range.first + index.step - 1) / index.step);
  }
  if (range.count > index.locs.size()) {
    throw std::length_error("build_partial_index: locs buffer too small");
  }
  index.n_locs = range.count;

  index.ptrs.zero();
  if (range.count == 0) return;

  simt::LaunchConfig cfg;
  cfg.block = threads;
  cfg.grid = static_cast<std::uint32_t>(
      util::ceil_div<std::uint64_t>(range.count, threads));
  cfg.label = "index/count";
  simt::launch<simt::NoShared>(dev, cfg, count_kernel, ref, range,
                               index.ptrs.span(), index.seed_len);

  simt::device_inclusive_scan(dev, index.ptrs.span());

  // temp <- bucket starts (Algorithm 1's per-seed copy; a device-to-device
  // copy on real hardware).
  simt::Buffer<std::uint32_t> temp(dev, index.ptrs.size() - 1);
  std::copy_n(index.ptrs.data(), temp.size(), temp.data());
  dev.account_memset(temp.bytes());

  cfg.label = "index/fill";
  simt::launch<simt::NoShared>(dev, cfg, fill_kernel, ref, range, temp.span(),
                               index.locs.span(), index.seed_len);

  const std::uint64_t buckets = index.ptrs.size() - 1;
  simt::LaunchConfig sort_cfg;
  sort_cfg.block = threads;
  sort_cfg.grid = static_cast<std::uint32_t>(util::ceil_div<std::uint64_t>(
      buckets, std::uint64_t{threads} * kSortItemsPerThread));
  sort_cfg.label = "index/sort";
  simt::launch<simt::NoShared>(dev, sort_cfg, sort_kernel,
                               std::span<const std::uint32_t>(index.ptrs.span()),
                               index.locs.span());
}

}  // namespace gm::core
