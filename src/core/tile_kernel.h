// Tile-level stitching — paper Section III-C1.
//
// Input: the out-block triplets collected from all blocks of one tile.
// The kernel bitonic-sorts them by (diagonal, q), merges co-diagonal
// overlapping chains conflict-free (run starts are detected in a separate
// phase from the merge walk), then expands each survivor against the tile
// rectangle and classifies it in-tile (reported) or out-tile (kept for the
// global merge).
#pragma once

#include <cstdint>
#include <span>

#include "core/geometry.h"
#include "mem/mem.h"
#include "seq/sequence.h"
#include "simt/device.h"

namespace gm::core {

struct TileCombineParams {
  const seq::Sequence* ref = nullptr;
  const seq::Sequence* query = nullptr;
  Rect tile;
  std::uint32_t min_len = 0;

  /// Sorted/merged in place. Must be padded to a power of two with
  /// sentinel triplets (len == 0, r == q == UINT32_MAX); `count` is the
  /// number of real entries at the front after... before sorting.
  std::span<mem::Mem> triplets;
  std::uint32_t count = 0;
  std::span<std::uint8_t> run_start;  ///< scratch, size >= count

  std::span<mem::Mem> intile;
  std::span<std::uint32_t> intile_count;
  std::span<mem::Mem> outtile;
  std::span<std::uint32_t> outtile_count;
};

void launch_tile_combine(simt::Device& dev, std::uint32_t threads,
                         const TileCombineParams& params);

}  // namespace gm::core
