#include "core/balance.h"

#include <algorithm>

namespace gm::core {

BalanceResult balance_assign(std::span<const std::uint32_t> loads) {
  const std::uint32_t tau = static_cast<std::uint32_t>(loads.size());
  BalanceResult out;
  out.assign.resize(tau + 1);
  out.group.resize(tau);

  std::uint64_t total_load = 0;
  std::uint32_t total_task = 0;
  for (std::uint32_t l : loads) {
    total_load += l;
    total_task += (l > 0) ? 1 : 0;
  }

  if (total_load == 0) {
    for (std::uint32_t k = 0; k <= tau; ++k) out.assign[k] = k;
    for (std::uint32_t t = 0; t < tau; ++t) out.group[t] = t;
    return out;
  }

  const std::uint64_t idle = tau - total_task;
  out.assign[0] = 0;
  std::uint64_t load_incl = 0;
  std::uint32_t task_incl = 0;
  for (std::uint32_t k = 0; k < tau; ++k) {
    load_incl += loads[k];
    task_incl += (loads[k] > 0) ? 1 : 0;
    out.assign[k + 1] = task_incl +
                        static_cast<std::uint32_t>(idle * load_incl / total_load);
  }
  // assign is non-decreasing with assign[tau] == tau, so every thread maps
  // to exactly one seed.
  for (std::uint32_t tid = 0; tid < tau; ++tid) {
    const auto it =
        std::upper_bound(out.assign.begin(), out.assign.end(), tid);
    out.group[tid] = static_cast<std::uint32_t>(it - out.assign.begin()) - 1;
  }
  return out;
}

}  // namespace gm::core
