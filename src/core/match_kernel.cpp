#include "core/match_kernel.h"

#include <algorithm>
#include <vector>

#include "core/balance.h"
#include "core/host_stitch.h"
#include "simt/executor.h"
#include "util/bits.h"

namespace gm::core {
namespace {

struct MatchShared {
  std::vector<std::uint32_t> assign;    // τ + 1
  std::vector<std::uint32_t> seed_cnt;  // τ: load of each round seed
  std::vector<std::uint32_t> seed_off;  // τ: exclusive load prefix (scratch offset)
  std::vector<std::uint32_t> group;     // τ: seed served by each thread
};

// Seed-wise right extension (Section III-B2): grow λ in ℓs jumps while the
// next reference/query seeds match, stopping at a mismatch or once λ >= w so
// the triplet connects to the next co-diagonal hit.
void extend_right_seedwise(simt::ThreadCtx& ctx, const seq::Sequence& ref,
                           const seq::Sequence& query, mem::Mem& t,
                           std::uint32_t w, std::uint32_t seed_len) {
  while (t.len < w) {
    const std::uint64_t rn = static_cast<std::uint64_t>(t.r) + t.len;
    const std::uint64_t qn = static_cast<std::uint64_t>(t.q) + t.len;
    if (rn + seed_len > ref.size() || qn + seed_len > query.size()) break;
    ctx.alu(2);
    ctx.gmem_txn(2);  // two random window reads
    if (ref.kmer(rn, seed_len) != query.kmer(qn, seed_len)) break;
    t.len += seed_len;
  }
}

simt::KernelTask match_kernel(simt::ThreadCtx& ctx, MatchShared& smem,
                              const MatchParams& P) {
  const std::uint32_t tau = ctx.block_dim();
  const std::uint32_t tid = ctx.thread_id();
  const std::uint32_t b = ctx.block_id();
  const seq::Sequence& R = *P.ref;
  const seq::Sequence& Q = *P.query;

  const std::uint32_t q0b = P.tile.q0 + b * P.block_width;
  const std::uint32_t q1b =
      std::max(q0b, std::min(q0b + P.block_width, P.tile.q1));
  const Rect brect{P.tile.r0, P.tile.r1, q0b, q1b};

  if (tid == 0) {
    smem.assign.assign(tau + 1, 0);
    smem.seed_cnt.assign(tau, 0);
    smem.seed_off.assign(tau, 0);
    smem.group.assign(tau, 0);
  }
  co_await ctx.sync();

  const std::span<mem::Mem> scratch =
      P.scratch.subspan(static_cast<std::size_t>(b) * P.round_capacity,
                        P.round_capacity);

  for (std::uint32_t round = 0; round < P.w; ++round) {
    // --- original thread/seed assignment -----------------------------------
    const std::uint64_t j64 = static_cast<std::uint64_t>(q0b) + round +
                              static_cast<std::uint64_t>(tid) * P.w;
    std::uint32_t load = 0;
    if (j64 < q1b && j64 + P.seed_len <= Q.size()) {
      const std::uint64_t seed = Q.kmer(j64, P.seed_len);
      load = P.ptrs[seed + 1] - P.ptrs[seed];
      ctx.alu(P.seed_len / 8 + 2);
      ctx.gmem_txn(2);  // query window + ptrs pair
    }
    smem.seed_cnt[tid] = load;
    ctx.smem(1);
    const simt::ScanResult load_scan = co_await ctx.scan_add(load);
    smem.seed_off[tid] = static_cast<std::uint32_t>(load_scan.exclusive);
    ctx.smem(1);
    const std::uint64_t total = load_scan.total;
    if (total == 0) continue;  // uniform across the block
    if (total > P.round_capacity) {
      if (tid == 0) P.overflow[static_cast<std::size_t>(b) * P.w + round] = 1;
      continue;  // host fallback handles this round
    }

    // --- proactive load balancing (Algorithm 2) -----------------------------
    std::uint32_t g, rank, servers;
    if (P.load_balance) {
      const std::uint32_t task = load > 0 ? 1u : 0u;
      const simt::ScanResult task_scan = co_await ctx.scan_add(task);
      const std::uint64_t idle = tau - task_scan.total;
      const std::uint64_t load_incl = load_scan.exclusive + load;
      const std::uint32_t task_incl =
          static_cast<std::uint32_t>(task_scan.exclusive) + task;
      smem.assign[tid + 1] =
          task_incl + static_cast<std::uint32_t>(idle * load_incl / total);
      if (tid == 0) smem.assign[0] = 0;
      ctx.alu(6);
      ctx.smem(2);
      co_await ctx.sync();
      // group[tid] = binarySearch(assign, tid): last g with assign[g] <= tid.
      {
        std::uint32_t lo = 0, hi = tau;  // invariant: assign[lo] <= tid < assign[hi+1]
        while (lo < hi) {
          const std::uint32_t mid = (lo + hi + 1) / 2;
          if (smem.assign[mid] <= tid) {
            lo = mid;
          } else {
            hi = mid - 1;
          }
        }
        g = lo;
        ctx.alu(util::ceil_log2(tau) + 1);
        ctx.smem(util::ceil_log2(tau) + 1);
      }
      smem.group[tid] = g;
      co_await ctx.sync();
      servers = smem.assign[g + 1] - smem.assign[g];
      rank = tid - smem.assign[g];
    } else {
      g = tid;
      rank = 0;
      servers = 1;
      smem.group[tid] = g;
      co_await ctx.sync();
    }

    // --- triplet generation + seed-wise extension ---------------------------
    const std::uint32_t cnt = smem.seed_cnt[g];
    const std::uint32_t off = smem.seed_off[g];
    std::uint32_t h0 = 0, h1 = 0;
    const std::uint64_t jg = static_cast<std::uint64_t>(q0b) + round +
                             static_cast<std::uint64_t>(g) * P.w;
    if (cnt > 0) {
      split_work(cnt, servers, rank, h0, h1);
      const std::uint64_t gseed = Q.kmer(jg, P.seed_len);
      const std::uint32_t gbase = P.ptrs[gseed];
      ctx.gmem_txn(2);
      for (std::uint32_t h = h0; h < h1; ++h) {
        const std::uint32_t p = P.locs[gbase + h];
        mem::Mem t{p, static_cast<std::uint32_t>(jg), P.seed_len};
        extend_right_seedwise(ctx, R, Q, t, P.w, P.seed_len);
        scratch[off + h] = t;
        ctx.alu(6);       // per-hit triplet setup / address arithmetic
        ctx.gmem_txn(2);  // locs read + scratch write
      }
    }
    co_await ctx.sync();

    // --- combine (Algorithm 3): 2·log2(τ) − 1 iterations --------------------
    if (P.combine) {
      const std::uint32_t k = util::floor_log2(tau);
      std::uint32_t d = 1;
      for (std::uint32_t iter = 1; iter <= 2 * k - 1; ++iter) {
        const std::int64_t src = smem.group[tid];
        std::int64_t c = src;
        if (iter > k) c -= d;
        if (c >= 0 && c % (2 * static_cast<std::int64_t>(d)) == 0) {
          const std::uint64_t trgt = static_cast<std::uint64_t>(src) + d;
          if (trgt < tau) {
            const std::uint32_t tcnt = smem.seed_cnt[trgt];
            const std::uint32_t toff = smem.seed_off[trgt];
            for (std::uint32_t s = h0; s < h1; ++s) {
              mem::Mem& mine = scratch[off + s];
              if (mine.len == 0) continue;
              for (std::uint32_t t = 0; t < tcnt; ++t) {
                mem::Mem& other = scratch[toff + t];
                if (other.len == 0) continue;
                const std::int64_t dr = static_cast<std::int64_t>(other.r) -
                                        static_cast<std::int64_t>(mine.r);
                const std::int64_t dq = static_cast<std::int64_t>(other.q) -
                                        static_cast<std::int64_t>(mine.q);
                if (dr == dq && dr > 0 &&
                    dr <= static_cast<std::int64_t>(mine.len)) {
                  mine.len = std::max<std::uint32_t>(
                      mine.len, static_cast<std::uint32_t>(dr) + other.len);
                  other.len = 0;
                }
              }
              ctx.alu(3 * static_cast<std::uint64_t>(tcnt) + 2);
              ctx.gmem_txn(tcnt);
            }
          }
        }
        co_await ctx.sync();
        d = (iter < k) ? d * 2 : d / 2;
      }
    }

    // --- expansion + in-block / out-block classification --------------------
    const seq::PackedSeq pR(R), pQ(Q);
    for (std::uint32_t s = h0; s < h1; ++s) {
      const mem::Mem t = scratch[off + s];
      if (t.len == 0) continue;
      const mem::Mem e = expand_clamped(pR, pQ, t, brect);
      ctx.alu(e.len / 8 + 4);
      ctx.gmem_txn(2 + e.len / 64);  // dependent window reads along the match
      ctx.gmem(e.len / 2);           // streaming comparison traffic
      if (touches_edge(e, brect)) {
        const std::uint32_t idx =
            simt::atomic_fetch_add(&P.outblock_count[0], 1u);
        if (idx < P.outblock.size()) P.outblock[idx] = e;
        ctx.atomic_op();
        ctx.gmem_txn(1);
      } else if (e.len >= P.min_len) {
        const std::uint32_t idx =
            simt::atomic_fetch_add(&P.inblock_count[0], 1u);
        if (idx < P.inblock.size()) P.inblock[idx] = e;
        ctx.atomic_op();
        ctx.gmem_txn(1);
      }
    }
  }
}

}  // namespace

void launch_match_kernel(simt::Device& dev, std::uint32_t grid,
                         std::uint32_t threads, const MatchParams& params) {
  simt::LaunchConfig cfg;
  cfg.grid = grid;
  cfg.block = threads;
  cfg.label = "match";
  simt::launch<MatchShared>(dev, cfg, match_kernel, params);
}

void process_round_host(const MatchParams& P, std::uint32_t block,
                        std::uint32_t round, std::uint32_t threads,
                        std::vector<mem::Mem>& inblock_out,
                        std::vector<mem::Mem>& outblock_out) {
  const seq::Sequence& R = *P.ref;
  const seq::Sequence& Q = *P.query;
  const std::uint32_t q0b = P.tile.q0 + block * P.block_width;
  const std::uint32_t q1b =
      std::max(q0b, std::min(q0b + P.block_width, P.tile.q1));
  const Rect brect{P.tile.r0, P.tile.r1, q0b, q1b};
  const std::uint32_t w = P.w;
  const seq::PackedSeq pR(R), pQ(Q);

  for (std::uint32_t k = 0; k < threads; ++k) {
    const std::uint64_t j = static_cast<std::uint64_t>(q0b) + round +
                            static_cast<std::uint64_t>(k) * w;
    if (j >= q1b || j + P.seed_len > Q.size()) continue;
    const std::uint64_t seed = Q.kmer(j, P.seed_len);
    const std::uint32_t lo = P.ptrs[seed], hi = P.ptrs[seed + 1];
    for (std::uint32_t i = lo; i < hi; ++i) {
      const std::uint32_t p = P.locs[i];
      // Skip chain-interior hits: if the previous co-diagonal grid hit also
      // lies inside this block (characters match at least w back, within the
      // block rectangle), the chain head handles this MEM.
      const std::size_t back_room =
          std::min<std::size_t>(p - brect.r0, j - brect.q0);
      std::size_t back = 0;
      if (p > 0 && j > 0) {
        back = pR.lce_backward(p - 1, pQ, j - 1, back_room);
      }
      if (back >= w) continue;
      mem::Mem t{p, static_cast<std::uint32_t>(j), P.seed_len};
      const mem::Mem e = expand_clamped(pR, pQ, t, brect);
      if (touches_edge(e, brect)) {
        outblock_out.push_back(e);
      } else if (e.len >= P.min_len) {
        inblock_out.push_back(e);
      }
    }
  }
}

}  // namespace gm::core
