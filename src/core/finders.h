// MemFinder adapters for the GPUMEM engine, so the benchmark harness and
// tests treat GPUMEM like any other tool. The SIMT backend builds its index
// *during* extraction (per tile row), as the paper describes, with RunStats
// separating the two times the way Tables III/IV report them; the native
// backend builds its row indexes once at build_index() and reuses them
// across find() calls (build-once / query-many).
#pragma once

#include <optional>

#include "core/pipeline.h"
#include "mem/finder.h"

namespace gm::core {

class GpumemFinder final : public mem::MemFinder {
 public:
  explicit GpumemFinder(Backend backend = Backend::kSimt)
      : backend_(backend) {}

  /// Extra knobs beyond FinderOptions; call before build_index.
  Config& mutable_config() { return cfg_; }

  std::string name() const override {
    return backend_ == Backend::kSimt ? "gpumem" : "gpumem-native";
  }

  void build_index(const seq::Sequence& ref,
                   const mem::FinderOptions& opt) override {
    mem::validate_finder_options(name(), opt);
    ref_ = &ref;
    cfg_.min_length = opt.min_length;
    cfg_.backend = backend_;
    (void)cfg_.validated();
    // The native backend supports the build-once / query-many workflow;
    // build its row indexes now so repeated find() calls reuse them. The
    // SIMT backend mirrors the paper: indexing is interleaved with the run
    // and reported via RunStats::index_seconds.
    native_index_.reset();
    if (backend_ == Backend::kNative) {
      native_index_.emplace(Engine(cfg_).build_native_index(ref));
    }
  }

  std::vector<mem::Mem> find(const seq::Sequence& query) const override {
    if (ref_ == nullptr) throw std::logic_error("GpumemFinder: no index built");
    Engine engine(cfg_);
    Result result = native_index_.has_value()
                        ? engine.run_native_prebuilt(*ref_, query, *native_index_)
                        : engine.run(*ref_, query);
    if (native_index_.has_value()) {
      result.stats.index_seconds = native_index_->build_seconds;
    }
    last_stats_ = result.stats;
    return std::move(result.mems);
  }

  double last_find_modeled_seconds() const override {
    return last_stats_.match_seconds;
  }

  /// Full stats of the last find() (index vs match split, tiling counters).
  const RunStats& last_stats() const { return last_stats_; }

 private:
  Backend backend_;
  Config cfg_;
  const seq::Sequence* ref_ = nullptr;
  std::optional<Engine::NativeIndex> native_index_;
  mutable RunStats last_stats_;
};

}  // namespace gm::core
