#include "core/host_stitch.h"

#include <algorithm>

namespace gm::core {

mem::Mem expand_clamped(const seq::PackedSeq& ref, const seq::PackedSeq& query,
                        mem::Mem m, const Rect& rect) {
  // A piece may lie (partly or wholly) outside the clamping rectangle — the
  // combine step can merge chains whose head starts in a neighbouring strip.
  // Guard every subtraction below against unsigned wrap: first advance a
  // start left of the rectangle up to its corner, then drop anything that
  // still starts at or past the far edge (len 0, callers filter on len).
  if (m.r < rect.r0 || m.q < rect.q0) {
    const std::uint32_t shift = std::max(m.r < rect.r0 ? rect.r0 - m.r : 0u,
                                         m.q < rect.q0 ? rect.q0 - m.q : 0u);
    const bool survives = shift < m.len;
    m.r += shift;
    m.q += shift;
    m.len = survives ? m.len - shift : 0;
    if (!survives) return m;  // wholly outside: nothing to expand
  }
  if (m.r >= rect.r1 || m.q >= rect.q1) {
    m.r = std::min(m.r, rect.r1);
    m.q = std::min(m.q, rect.q1);
    m.len = 0;
    return m;
  }
  // Seed-wise extension may overshoot the rectangle; clamp first (the
  // discarded verified characters are re-checked by the next stage's
  // expansion, so nothing is lost).
  m.len = std::min({m.len, rect.r1 - m.r, rect.q1 - m.q});
  // Leftward (word-parallel backward LCE).
  const std::size_t left_room =
      std::min(m.r - rect.r0, m.q - rect.q0);
  if (left_room > 0 && m.r > 0 && m.q > 0) {
    const std::size_t back =
        ref.lce_backward(m.r - 1, query, m.q - 1, left_room);
    m.r -= static_cast<std::uint32_t>(back);
    m.q -= static_cast<std::uint32_t>(back);
    m.len += static_cast<std::uint32_t>(back);
  }
  // Rightward (word-parallel forward LCE).
  const std::size_t right_room =
      std::min(rect.r1 - (m.r + m.len), rect.q1 - (m.q + m.len));
  if (right_room > 0) {
    const std::size_t fwd =
        ref.lce_forward(m.r + m.len, query, m.q + m.len, right_room);
    m.len += static_cast<std::uint32_t>(fwd);
  }
  return m;
}

void combine_chains(std::vector<mem::Mem>& triplets) {
  mem::sort_mems_diagonal(triplets);
  std::size_t head = 0;
  for (std::size_t i = 1; i < triplets.size(); ++i) {
    mem::Mem& h = triplets[head];
    mem::Mem& t = triplets[i];
    const std::int64_t delta =
        static_cast<std::int64_t>(t.q) - static_cast<std::int64_t>(h.q);
    if (h.diagonal() == t.diagonal() && delta >= 0 &&
        delta <= static_cast<std::int64_t>(h.len)) {
      h.len = std::max<std::uint32_t>(
          h.len, static_cast<std::uint32_t>(delta) + t.len);
      t.len = 0;
    } else {
      head = i;
    }
  }
  std::erase_if(triplets, [](const mem::Mem& m) { return m.len == 0; });
}

std::vector<mem::Mem> finalize_out_tile(const seq::Sequence& ref,
                                        const seq::Sequence& query,
                                        std::vector<mem::Mem> pieces,
                                        std::uint32_t min_len) {
  combine_chains(pieces);
  const Rect whole{0, static_cast<std::uint32_t>(ref.size()), 0,
                   static_cast<std::uint32_t>(query.size())};
  const seq::PackedSeq pref(ref), pquery(query);
  std::vector<mem::Mem> out;
  out.reserve(pieces.size());
  for (const mem::Mem& p : pieces) {
    const mem::Mem full = expand_clamped(pref, pquery, p, whole);
    if (full.len >= min_len) out.push_back(full);
  }
  return out;
}

}  // namespace gm::core
