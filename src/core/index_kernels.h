// Device-side partial index construction — paper Algorithm 1.
//
// The index for one tile row [start, end) of the reference is the pair
// (ptrs, locs): occurrence counting with atomicAdd, a device-wide prefix
// sum, atomic scatter into locs, and a per-seed bucket sort. Sampling
// positions lie on the *global* Δs grid so that adjacent tile rows together
// cover every MEM (Eq. 1 argument; see DESIGN.md correctness notes).
#pragma once

#include <cstdint>

#include "seq/sequence.h"
#include "simt/buffer.h"
#include "simt/device.h"

namespace gm::core {

struct DeviceIndex {
  simt::Buffer<std::uint32_t> ptrs;  ///< 4^ℓs + 1 bucket offsets
  simt::Buffer<std::uint32_t> locs;  ///< sampled positions, sorted per bucket
  std::uint32_t n_locs = 0;          ///< valid entries in locs
  unsigned seed_len = 0;
  std::uint32_t step = 0;

  DeviceIndex(simt::Device& dev, unsigned seed_len_, std::uint32_t step_,
              std::uint32_t max_locs);
};

/// Runs Algorithm 1 for reference range [start, end). `index.locs` must be
/// large enough (ceil(tile_len / step) entries); throws otherwise.
void build_partial_index(simt::Device& dev, const seq::Sequence& ref,
                         std::size_t start, std::size_t end,
                         std::uint32_t threads, DeviceIndex& index);

}  // namespace gm::core
