#include "simt/perf_model.h"

#include <algorithm>

namespace gm::simt {

CycleBreakdown phase_cycle_terms(const DeviceSpec& spec,
                                 std::span<const ThreadSlot> slots) {
  const std::uint32_t warp = spec.warp_size;
  double compute = 0.0, shared = 0.0;
  std::uint64_t total_atomics = 0;
  double latency = 0.0;
  for (std::size_t w = 0; w < slots.size(); w += warp) {
    std::uint64_t warp_alu = 0, warp_shared = 0, warp_txn = 0;
    const std::size_t end = std::min(slots.size(), w + warp);
    for (std::size_t t = w; t < end; ++t) {
      warp_alu = std::max(warp_alu, slots[t].phase.alu);
      warp_shared = std::max(warp_shared, slots[t].phase.shared_ops);
      warp_txn = std::max(warp_txn, slots[t].phase.txns);
      total_atomics += slots[t].phase.atomics;
    }
    compute += static_cast<double>(warp_alu);
    shared += static_cast<double>(warp_shared);
    latency += static_cast<double>(warp_txn);
  }
  const double warp_ipc =
      static_cast<double>(spec.cores_per_sm) / static_cast<double>(warp);
  CycleBreakdown terms;
  terms.compute = compute * spec.cycles_per_alu / warp_ipc;
  terms.shared = shared * spec.cycles_per_shared;
  terms.latency = latency * spec.cycles_per_txn;
  terms.atomics = static_cast<double>(total_atomics) * spec.cycles_per_atomic;
  terms.barrier = spec.cycles_per_barrier;
  return terms;
}

double phase_cycles(const DeviceSpec& spec, std::span<const ThreadSlot> slots) {
  return phase_cycle_terms(spec, slots).total();
}

double launch_seconds(const DeviceSpec& spec,
                      std::span<const double> block_cycles,
                      std::uint32_t blocks_per_sm,
                      std::uint64_t total_global_bytes) {
  if (blocks_per_sm == 0) blocks_per_sm = spec.max_blocks_per_sm;
  double sum = 0.0, mx = 0.0;
  for (double c : block_cycles) {
    sum += c;
    mx = std::max(mx, c);
  }
  const double resident =
      static_cast<double>(spec.sm_count) * static_cast<double>(blocks_per_sm);
  const double cycles = std::max(sum / resident, mx);
  return cycles / spec.clock_hz +
         static_cast<double>(total_global_bytes) / spec.mem_bandwidth +
         spec.kernel_launch_seconds;
}

}  // namespace gm::simt
