// Device-wide primitives built from kernels (the CUB DeviceScan analogue).
#pragma once

#include <cstdint>
#include <span>

#include "simt/device.h"

namespace gm::simt {

/// In-place device-wide *inclusive* prefix sum over 32-bit values, the
/// operation Algorithm 1's step 2 ("GPUPrefixSum(ptrs)") needs. Runs as a
/// chunk-sums / recursive-scan / apply kernel cascade; modeled time goes to
/// the device ledger.
void device_inclusive_scan(Device& dev, std::span<std::uint32_t> data);

}  // namespace gm::simt
