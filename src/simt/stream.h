// Streams and events for the SIMT simulator — the modeled-time analogue of
// cudaStream_t / cudaEvent_t.
//
// The simulator executes kernels eagerly on host threads (simt::launch) and
// charges *serial* modeled seconds to the device ledger. Streams add a
// second, overlapped timeline on top: closures enqueued on a Stream run in
// per-stream FIFO order, and a StreamScheduler re-places every modeled
// operation each closure performed (kernel launches, memsets, H2D/D2H
// copies) onto a machine model with concurrent engines:
//
//   * one SM slot pool of sm_count x max_blocks_per_sm block slots — a
//     kernel's blocks backfill whatever slots are free, so a small grid
//     from stream B executes in the idle tail of stream A's kernel
//     (Kepler Hyper-Q / concurrent-kernel behaviour);
//   * one DRAM engine serializing bandwidth-bound memsets and each
//     kernel's global-memory traffic term;
//   * two DMA engines, one per copy direction (copy/compute overlap).
//
// Dependencies between streams are expressed with Events: record() marks a
// point in one stream, wait() makes another stream's subsequent ops start no
// earlier than that point. Misuse (waiting on a never-recorded event,
// destroying an event with pending waiters) is a deterministic StreamError,
// never a hang.
//
// Determinism contract: closures run sequentially on the draining thread,
// so *results* (buffer contents, ledger totals, launch counts) are identical
// for every legal drain order; only the overlapped placement — makespan and
// span timestamps — depends on the (seeded) scheduling policy, and is
// reproducible for a fixed seed. See docs/PIPELINE.md.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "simt/device.h"
#include "util/rng.h"

namespace gm::simt {

/// Deterministic error for stream/event misuse (the cases that would be
/// hangs or use-after-free on real hardware).
class StreamError : public std::logic_error {
 public:
  explicit StreamError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
struct EventState {
  std::uint64_t enqueued = 0;   ///< record() ops enqueued so far
  std::uint64_t completed = 0;  ///< record() ops executed so far
  double time = 0.0;            ///< modeled completion time of latest record
  bool destroyed = false;
};
}  // namespace detail

/// cudaEvent_t analogue: a marker recorded in one stream and waited on by
/// others. Copyable handles would blur the destruction semantics the tests
/// pin down, so Event is move-only; destruction while a wait is pending
/// turns that wait into a StreamError at drain time.
class Event {
 public:
  Event() : state_(std::make_shared<detail::EventState>()) {}
  ~Event() {
    if (state_) state_->destroyed = true;
  }
  Event(Event&& other) noexcept = default;
  Event& operator=(Event&& other) noexcept {
    if (this != &other) {
      if (state_) state_->destroyed = true;
      state_ = std::move(other.state_);
    }
    return *this;
  }
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

 private:
  friend class Stream;
  friend class StreamScheduler;
  std::shared_ptr<detail::EventState> state_;
};

class StreamScheduler;

/// One in-order queue of modeled device work. Created by (and owned by) a
/// StreamScheduler; the handle stays valid for the scheduler's lifetime.
class Stream {
 public:
  using OpId = std::uint64_t;

  /// Enqueues a closure. The closure performs ordinary simulator work
  /// (launch kernels, Buffer upload/download/zero) against the scheduler's
  /// device; it executes later, on the draining thread, with segment
  /// capture installed. Returns an id usable with
  /// StreamScheduler::interval() after the op has run.
  OpId run(std::string label, std::function<void()> body);

  /// Enqueues an event record: when it executes, the event completes at
  /// this stream's current modeled time. Re-recording is allowed and moves
  /// the event forward (CUDA semantics: waits honor the latest record
  /// enqueued before the wait).
  OpId record(Event& ev);

  /// Enqueues a wait: subsequent ops on this stream start no earlier than
  /// the event's recorded time. Throws StreamError immediately if the event
  /// has never been recorded (a guaranteed hang) or is a moved-from handle.
  OpId wait(const Event& ev);

  std::uint32_t index() const noexcept { return index_; }
  /// Trace lane for this stream's spans (0 is the serial lane).
  std::uint32_t track() const noexcept { return index_ + 1; }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class StreamScheduler;

  enum class OpKind : std::uint8_t { kWork, kRecord, kWait };
  struct Op {
    OpKind kind = OpKind::kWork;
    OpId id = 0;
    std::string label;
    std::function<void()> body;
    std::shared_ptr<detail::EventState> event;
    std::uint64_t wait_target = 0;  ///< record sequence number to wait for
  };

  Stream(StreamScheduler* sched, std::uint32_t index, std::string name)
      : sched_(sched), index_(index), name_(std::move(name)) {}

  StreamScheduler* sched_;
  std::uint32_t index_;
  std::string name_;
  std::deque<Op> queue_;
  double ready_ = 0.0;  ///< modeled time when the next op may start
};

/// Owns the streams of one device and replays their queues onto the modeled
/// engine set. Installs itself as the device's SegmentSink while each
/// closure runs, so every ledger charge the closure makes is captured and
/// re-placed on the overlapped timeline.
///
/// Single-threaded by design: enqueue and drain from one thread. The
/// modeled overlap needs no host concurrency — which is also why results
/// stay bit-identical to the serial path.
class StreamScheduler final : public SegmentSink {
 public:
  struct Interval {
    double start = 0.0;  ///< absolute ledger-domain modeled seconds
    double end = 0.0;
  };

  /// `shuffle_seed` perturbs the drain order among runnable streams:
  /// 0 = deterministic earliest-ready policy; nonzero = seeded uniform
  /// choice, used by the determinism tests to explore interleavings.
  explicit StreamScheduler(Device& dev, std::uint64_t shuffle_seed = 0);
  ~StreamScheduler() override;

  StreamScheduler(const StreamScheduler&) = delete;
  StreamScheduler& operator=(const StreamScheduler&) = delete;

  Device& device() noexcept { return dev_; }

  /// Creates a stream (the handle lives as long as the scheduler).
  Stream& create_stream(std::string name = {});

  /// Executes queued ops until `s`'s queue is empty (cudaStreamSynchronize).
  /// Other streams may advance too — the policy keeps picking runnable
  /// heads until `s` drains.
  void sync(Stream& s);

  /// Executes every queued op on every stream (cudaDeviceSynchronize).
  void drain();

  /// Overlapped modeled seconds from scheduler construction to the end of
  /// the last placed op (0 before anything ran). The serial equivalent is
  /// the device ledger's delta over the same window; overlap makes the
  /// makespan smaller.
  double makespan() const noexcept {
    return last_end_ > epoch_ ? last_end_ - epoch_ : 0.0;
  }
  /// Ledger-domain time the overlapped timeline starts at.
  double epoch() const noexcept { return epoch_; }

  /// Placement of an executed op (start = when its first segment could
  /// begin, end = when its last segment finished; record/wait ops are
  /// points). Throws std::out_of_range for ids not yet executed.
  Interval interval(Stream::OpId id) const;

  // SegmentSink — capture of the currently-executing closure's modeled ops.
  void on_segment(OpSegment seg) override;
  std::size_t mark() const override { return staged_.size(); }
  void truncate(std::size_t n) override {
    if (n < staged_.size()) staged_.resize(n);
  }

 private:
  friend class Stream;

  bool step();  ///< executes one runnable op; false when all queues empty
  void execute(Stream& s, Stream::Op op);
  void place_segments(Stream& s, double& cursor);
  [[noreturn]] void throw_stalled() const;

  Stream::OpId next_id() noexcept { return id_counter_++; }

  Device& dev_;
  double epoch_ = 0.0;
  double last_end_ = 0.0;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<double> slot_free_;  ///< SM block-slot pool
  double h2d_free_ = 0.0;
  double d2h_free_ = 0.0;
  double dram_free_ = 0.0;
  bool shuffle_ = false;
  util::Xoshiro256 rng_;
  Stream::OpId id_counter_ = 0;
  std::vector<Interval> intervals_;  ///< indexed by OpId; start<0 = pending
  std::vector<OpSegment> staged_;    ///< segments of the executing closure
  bool executing_ = false;
};

}  // namespace gm::simt
