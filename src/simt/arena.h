// Bump-allocator arena for coroutine frames (one frame per logical device
// thread, τ frames per block run).
//
// The executor creates and destroys a full block of frames per run_block
// call; with the default allocator that is τ round trips through malloc per
// block, dominating host time for short kernels. The arena replaces them
// with pointer bumps into thread-local chunks: KernelTask::promise_type
// routes its operator new/delete here (kernel.h), and run_block rewinds the
// arena once the block's frames are all dead.
//
// Threading model: each pool worker owns one arena (FrameArena::local());
// frames are allocated on the thread that runs the block. Deallocation may
// race from another thread (a KernelTask moved across threads), so the only
// cross-thread operation — release() — just decrements the owner's atomic
// live-frame counter, found through a small header in front of each
// allocation. Memory is reclaimed exclusively by the owner via
// maybe_reset(), which rewinds only when no frame is live.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

namespace gm::simt {

class FrameArena {
 public:
  /// Payload alignment (and header stride). Coroutine frames align to at
  /// most alignof(max_align_t) unless a kernel local is over-aligned, which
  /// none of ours are (the compiler would require an aligned operator new).
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  /// Allocates `bytes` (plus a header) from the current chunk, growing
  /// geometrically when full. Only the owning thread may call this.
  void* allocate(std::size_t bytes);

  /// Marks the frame at `p` dead. Callable from any thread; the memory is
  /// reclaimed later by the owner's maybe_reset().
  static void release(void* p) noexcept;

  /// Rewinds the bump pointer when no frame is live (keeps the largest
  /// chunk, drops the rest). No-op while any frame is alive. Owner only.
  void maybe_reset() noexcept;

  /// Number of frames allocated but not yet released.
  std::size_t live() const noexcept {
    return live_.load(std::memory_order_acquire);
  }

  /// Bytes currently reserved across all chunks (test/diagnostic hook).
  std::size_t reserved_bytes() const noexcept;

  /// The calling thread's arena (created on first use, lives until thread
  /// exit). detail::block_workspace() touches this before constructing the
  /// workspace so thread-exit destruction runs workspace-before-arena.
  static FrameArena& local();

 private:
  struct Header {
    FrameArena* arena;
  };
  static_assert(sizeof(Header) <= kAlign);

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t kMinChunk = 64 * 1024;

  Chunk& grow(std::size_t need);

  std::vector<Chunk> chunks_;
  std::atomic<std::size_t> live_{0};
};

}  // namespace gm::simt
