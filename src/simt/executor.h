// Kernel launch machinery: runs one coroutine per logical thread, drives
// phases between barriers, executes collectives, charges the cost model,
// and schedules blocks across host worker threads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "simt/arena.h"
#include "simt/device.h"
#include "simt/kernel.h"
#include "simt/perf_model.h"
#include "util/parallel.h"

namespace gm::simt {

struct LaunchConfig {
  std::uint32_t grid = 1;    ///< number of blocks
  std::uint32_t block = 256; ///< threads per block (τ)
  std::uint32_t blocks_per_sm = 0;  ///< 0 = device maximum
  std::string label;         ///< for diagnostics
};

struct LaunchStats {
  double modeled_seconds = 0.0;
  std::uint64_t phases = 0;       ///< total barrier phases across blocks
  PhaseCounters work{};           ///< total accounted work
  CycleBreakdown cycle_terms{};   ///< per-term cycles summed over blocks
};

/// Executes the threads of one block to completion. Exposed separately from
/// launch() so tests can drive single blocks deterministically.
struct BlockResult {
  double cycles = 0.0;
  std::uint64_t phases = 0;
  PhaseCounters work{};
  CycleBreakdown cycle_terms{};
};

namespace detail {

/// Per-worker scratch reused across run_block calls: thread slots, contexts
/// (frames hold ThreadCtx&, so these must outlive each block run), and the
/// KernelTask frame handles. Lives next to the worker's FrameArena; the
/// accessor constructs the arena first so thread-exit destruction destroys
/// the workspace (releasing any frames) before the arena.
struct BlockWorkspace {
  std::vector<ThreadSlot> slots;
  std::vector<ThreadCtx> ctxs;
  std::vector<KernelTask> tasks;
};
BlockWorkspace& block_workspace();

void check_block_dim(const DeviceSpec& spec, std::uint32_t block_dim);

/// Charges the finished phase to the cost model and executes the collective
/// the live threads suspended on (throws std::logic_error on divergent
/// barrier kinds). The non-templated tail of run_block's phase loop.
void finish_phase(const DeviceSpec& spec, std::vector<ThreadSlot>& slots,
                  BlockResult& result);

}  // namespace detail

/// Runs block `block_id`: one coroutine frame per logical thread, resumed
/// phase-by-phase between barriers. `make_task` is any callable
/// (ThreadCtx&) -> KernelTask — templated so launch() pays no std::function
/// indirection per thread. Frames, slots, and contexts come from the
/// worker's reusable workspace; on any exception (a throwing kernel or a
/// divergent collective) every coroutine frame — including suspended
/// siblings — is destroyed before the exception leaves this function.
template <typename MakeTask>
BlockResult run_block(const DeviceSpec& spec, std::uint32_t block_id,
                      std::uint32_t grid_dim, std::uint32_t block_dim,
                      MakeTask&& make_task) {
  detail::check_block_dim(spec, block_dim);
  detail::BlockWorkspace& ws = detail::block_workspace();
  FrameArena& arena = FrameArena::local();
  const auto cleanup = [&]() noexcept {
    ws.tasks.clear();     // destroy every frame (suspended ones included)
    arena.maybe_reset();  // then rewind their storage in one step
  };

  ws.tasks.clear();
  ws.ctxs.clear();
  ws.slots.assign(block_dim, ThreadSlot{});
  ws.ctxs.reserve(block_dim);
  ws.tasks.reserve(block_dim);
  arena.maybe_reset();

  BlockResult result;
  try {
    for (std::uint32_t t = 0; t < block_dim; ++t) {
      ws.ctxs.emplace_back(t, block_id, block_dim, grid_dim, &ws.slots[t]);
      ws.tasks.push_back(make_task(ws.ctxs.back()));
    }

    std::uint32_t alive = block_dim;
    while (alive > 0) {
      // Run every live thread to its next suspension point.
      for (std::uint32_t t = 0; t < block_dim; ++t) {
        ThreadSlot& slot = ws.slots[t];
        if (slot.done) continue;
        slot.pending = PhaseOp::kNone;
        slot.phase = PhaseCounters{};
        auto handle = ws.tasks[t].handle();
        handle.resume();
        if (handle.done()) {
          slot.done = true;
          --alive;
          if (handle.promise().exception) {
            std::rethrow_exception(handle.promise().exception);
          }
        }
      }
      detail::finish_phase(spec, ws.slots, result);
    }
  } catch (...) {
    cleanup();
    throw;
  }
  cleanup();
  return result;
}

/// Emits the launch's span on the modeled-device trace track: phase count,
/// work counters, wave/occupancy figures, and the per-term cycle breakdown.
/// Call only when obs::enabled(); `modeled_start` is the ledger total just
/// before the launch's seconds were added. Returns the span's trace index
/// so the stream scheduler can retime it onto an overlapped timeline.
std::size_t record_launch_span(const Device& dev, const LaunchConfig& cfg,
                               const LaunchStats& stats, double modeled_start);

/// Launches `fn(ctx, smem, args...)` over cfg.grid blocks of cfg.block
/// threads. SharedT is default-constructed once per block (the shared
/// memory). `fn` must be a plain function / stateless functor — a capturing
/// lambda coroutine would dangle. Returns modeled device time and adds it to
/// the device ledger.
template <typename SharedT, typename Fn, typename... Args>
LaunchStats launch(Device& dev, const LaunchConfig& cfg, Fn&& fn,
                   Args&&... args) {
  std::vector<double> block_cycles(cfg.grid, 0.0);
  std::vector<BlockResult> results(cfg.grid);
  util::parallel_for_chunked(
      0, cfg.grid, util::ThreadPool::global().size(),
      [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
          SharedT smem{};
          results[b] = run_block(dev.spec(), static_cast<std::uint32_t>(b),
                                 cfg.grid, cfg.block,
                                 [&](ThreadCtx& ctx) -> KernelTask {
                                   return fn(ctx, smem, args...);
                                 });
          block_cycles[b] = results[b].cycles;
        }
      });
  LaunchStats stats;
  for (const BlockResult& r : results) {
    stats.phases += r.phases;
    stats.work += r.work;
    stats.cycle_terms += r.cycle_terms;
  }
  stats.modeled_seconds = launch_seconds(
      dev.spec(), block_cycles, cfg.blocks_per_sm, stats.work.global_bytes);
  const double modeled_start = dev.ledger().total_seconds();
  dev.ledger().add_kernel_seconds(stats.modeled_seconds, cfg.label);
  std::ptrdiff_t span_index = -1;
  if (obs::enabled()) {
    span_index = static_cast<std::ptrdiff_t>(
        record_launch_span(dev, cfg, stats, modeled_start));
  }
  if (dev.segment_sink() != nullptr) {
    const double clock = dev.spec().clock_hz;
    for (double& c : block_cycles) c /= clock;
    dev.note_kernel_launch(
        cfg.label, std::move(block_cycles),
        static_cast<double>(stats.work.global_bytes) / dev.spec().mem_bandwidth,
        stats.modeled_seconds, cfg.blocks_per_sm, span_index);
  }
  return stats;
}

/// Shared-memory tag for kernels that use none.
struct NoShared {};

}  // namespace gm::simt
