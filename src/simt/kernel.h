// Coroutine-based SIMT kernel model.
//
// A kernel is a plain function returning KernelTask and taking a ThreadCtx&
// (plus a shared-memory struct reference and arbitrary parameters). One
// coroutine frame per logical device thread; `co_await ctx.sync()` is
// __syncthreads(). The block scheduler (executor.h) resumes every live
// thread once per *phase* (the code between two barriers), performs any
// collective operation the threads requested, charges the phase to the cost
// model, and repeats.
//
// Why coroutines: barrier semantics need every thread to suspend mid-body
// with its locals intact. Coroutine frames give exactly that without a
// thread-per-lane (which would be thousands of OS threads) and keep
// intra-block execution deterministic.
//
// Cooperative collectives: ctx.scan_add() is a CUB-BlockScan-style
// exclusive prefix sum across the block — real CUDA code uses library
// block-scans the same way; the simulator executes it at the barrier point
// and charges the documented log2(block) cost.
#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

#include "simt/arena.h"

namespace gm::simt {

/// Per-phase work counters, the cost model's input. Kernels account their
/// own work through ThreadCtx helpers; coarse counts are fine — the model
/// targets relative behaviour (divergence, imbalance, memory pressure).
struct PhaseCounters {
  std::uint64_t alu = 0;          ///< lock-step ALU operations
  std::uint64_t global_bytes = 0; ///< global-memory traffic
  std::uint64_t txns = 0;         ///< dependent random transactions (latency)
  std::uint64_t shared_ops = 0;   ///< shared-memory accesses
  std::uint64_t atomics = 0;      ///< global atomic operations

  PhaseCounters& operator+=(const PhaseCounters& o) {
    alu += o.alu;
    global_bytes += o.global_bytes;
    txns += o.txns;
    shared_ops += o.shared_ops;
    atomics += o.atomics;
    return *this;
  }
};

struct ScanResult {
  std::uint64_t exclusive = 0;  ///< sum of values of lower-id threads
  std::uint64_t total = 0;      ///< block-wide sum
};

enum class PhaseOp : std::uint8_t { kNone, kSync, kScan };

/// Scheduler-side state of one logical thread.
struct ThreadSlot {
  PhaseOp pending = PhaseOp::kNone;
  std::uint64_t operand = 0;
  ScanResult scan_result{};
  bool done = false;
  PhaseCounters phase;   ///< counters for the current phase
};

class KernelTask {
 public:
  struct promise_type {
    std::exception_ptr exception;

    // Frames come from the running thread's bump arena instead of the
    // global allocator: run_block creates/destroys τ frames per block, and
    // FrameArena::maybe_reset() recycles the whole batch with one rewind.
    static void* operator new(std::size_t bytes) {
      return FrameArena::local().allocate(bytes);
    }
    static void operator delete(void* p) noexcept { FrameArena::release(p); }
    static void operator delete(void* p, std::size_t) noexcept {
      FrameArena::release(p);
    }

    KernelTask get_return_object() {
      return KernelTask(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  KernelTask() = default;
  explicit KernelTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  KernelTask(KernelTask&& o) noexcept
      : handle_(std::exchange(o.handle_, nullptr)) {}
  KernelTask& operator=(KernelTask&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  KernelTask(const KernelTask&) = delete;
  KernelTask& operator=(const KernelTask&) = delete;
  ~KernelTask() { destroy(); }

  std::coroutine_handle<promise_type> handle() const noexcept { return handle_; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

class ThreadCtx {
 public:
  ThreadCtx() = default;
  ThreadCtx(std::uint32_t tid, std::uint32_t bid, std::uint32_t bdim,
            std::uint32_t gdim, ThreadSlot* slot)
      : tid_(tid), bid_(bid), bdim_(bdim), gdim_(gdim), slot_(slot) {}

  std::uint32_t thread_id() const noexcept { return tid_; }
  std::uint32_t block_id() const noexcept { return bid_; }
  std::uint32_t block_dim() const noexcept { return bdim_; }
  std::uint32_t grid_dim() const noexcept { return gdim_; }
  /// Global thread index (blockIdx.x * blockDim.x + threadIdx.x).
  std::uint64_t global_id() const noexcept {
    return static_cast<std::uint64_t>(bid_) * bdim_ + tid_;
  }

  // --- work accounting -----------------------------------------------------
  void alu(std::uint64_t n = 1) noexcept { slot_->phase.alu += n; }
  void gmem(std::uint64_t bytes) noexcept { slot_->phase.global_bytes += bytes; }
  /// Uncoalesced global accesses: each random access moves a full 128-byte
  /// transaction regardless of payload (charged to device bandwidth) *and*
  /// serializes on the issuing lane (charged as per-warp latency) — the two
  /// dominant costs of index lookups on Kepler-class devices and the main
  /// calibration levers of the model.
  void gmem_txn(std::uint64_t n = 1) noexcept {
    slot_->phase.global_bytes += n * 128;
    slot_->phase.txns += n;
  }
  void smem(std::uint64_t n = 1) noexcept { slot_->phase.shared_ops += n; }
  void atomic_op(std::uint64_t n = 1) noexcept { slot_->phase.atomics += n; }

  // --- barriers & collectives ----------------------------------------------
  struct SyncAwaiter {
    ThreadSlot* slot;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {
      slot->pending = PhaseOp::kSync;
    }
    void await_resume() const noexcept {}
  };
  /// __syncthreads(). All live threads of the block must reach it.
  [[nodiscard]] SyncAwaiter sync() const noexcept { return {slot_}; }

  struct ScanAwaiter {
    ThreadSlot* slot;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {
      slot->pending = PhaseOp::kScan;
    }
    ScanResult await_resume() const noexcept { return slot->scan_result; }
  };
  /// Block-wide exclusive prefix sum over one value per thread (collective;
  /// all live threads must participate).
  [[nodiscard]] ScanAwaiter scan_add(std::uint64_t value) const noexcept {
    slot_->operand = value;
    return {slot_};
  }

 private:
  std::uint32_t tid_ = 0, bid_ = 0, bdim_ = 0, gdim_ = 0;
  ThreadSlot* slot_ = nullptr;
};

/// Device-wide atomic add usable from kernels (blocks run concurrently on
/// host threads). Returns the previous value, like CUDA's atomicAdd.
template <typename T>
inline T atomic_fetch_add(T* addr, T value) noexcept {
  return std::atomic_ref<T>(*addr).fetch_add(value, std::memory_order_relaxed);
}

}  // namespace gm::simt
