#include "simt/executor.h"

#include <stdexcept>
#include <vector>

#include "obs/registry.h"
#include "util/bits.h"

namespace gm::simt {
namespace detail {

BlockWorkspace& block_workspace() {
  // Construct the arena first: at thread exit, thread_locals are destroyed
  // in reverse construction order, so the workspace (whose task destructors
  // release frames into the arena) must go before the arena does.
  FrameArena::local();
  thread_local BlockWorkspace ws;
  return ws;
}

void check_block_dim(const DeviceSpec& spec, std::uint32_t block_dim) {
  if (block_dim == 0 || block_dim > spec.max_threads_per_block) {
    throw std::invalid_argument("run_block: invalid block dimension " +
                                std::to_string(block_dim));
  }
}

void finish_phase(const DeviceSpec& spec, std::vector<ThreadSlot>& slots,
                  BlockResult& result) {
  // Charge the phase (counters of finished threads included).
  const CycleBreakdown terms = phase_cycle_terms(spec, slots);
  result.cycles += terms.total();
  result.cycle_terms += terms;
  ++result.phases;
  for (const ThreadSlot& s : slots) result.work += s.phase;

  // Execute the collective the live threads suspended on. Mixing barrier
  // kinds within a block is a kernel bug (UB on real hardware); detect it.
  PhaseOp op = PhaseOp::kNone;
  for (const ThreadSlot& s : slots) {
    if (s.done || s.pending == PhaseOp::kNone) continue;
    if (op == PhaseOp::kNone) {
      op = s.pending;
    } else if (op != s.pending) {
      throw std::logic_error(
          "run_block: divergent collective (threads suspended on "
          "different barrier kinds)");
    }
  }
  if (op == PhaseOp::kScan) {
    std::uint64_t running = 0;
    for (ThreadSlot& s : slots) {
      if (s.done) continue;
      s.scan_result.exclusive = running;
      running += s.operand;
    }
    for (ThreadSlot& s : slots) {
      if (!s.done) s.scan_result.total = running;
    }
    // A block scan costs ~2 log2(block) lock-step steps on real hardware;
    // charge it as extra cycles beyond the barrier already counted.
    const double scan_cycles =
        2.0 *
        static_cast<double>(
            util::ceil_log2(static_cast<std::uint32_t>(slots.size()))) *
        spec.cycles_per_shared;
    result.cycles += scan_cycles;
    result.cycle_terms.shared += scan_cycles;
  }
}

}  // namespace detail

std::size_t record_launch_span(const Device& dev, const LaunchConfig& cfg,
                               const LaunchStats& stats, double modeled_start) {
  const DeviceSpec& spec = dev.spec();
  const std::uint32_t per_sm =
      cfg.blocks_per_sm == 0 ? spec.max_blocks_per_sm : cfg.blocks_per_sm;
  const std::uint64_t resident = std::uint64_t{spec.sm_count} * per_sm;
  const std::uint64_t waves = util::ceil_div<std::uint64_t>(cfg.grid, resident);
  std::vector<obs::Attr> attrs;
  attrs.reserve(16);
  attrs.push_back({"grid", std::uint64_t{cfg.grid}});
  attrs.push_back({"block", std::uint64_t{cfg.block}});
  attrs.push_back({"waves", waves});
  attrs.push_back({"occupancy",
                   static_cast<double>(cfg.grid) /
                       static_cast<double>(waves * resident)});
  attrs.push_back({"phases", stats.phases});
  attrs.push_back({"work.alu", stats.work.alu});
  attrs.push_back({"work.global_bytes", stats.work.global_bytes});
  attrs.push_back({"work.txns", stats.work.txns});
  attrs.push_back({"work.shared_ops", stats.work.shared_ops});
  attrs.push_back({"work.atomics", stats.work.atomics});
  attrs.push_back({"cycles.compute", stats.cycle_terms.compute});
  attrs.push_back({"cycles.shared", stats.cycle_terms.shared});
  attrs.push_back({"cycles.latency", stats.cycle_terms.latency});
  attrs.push_back({"cycles.atomics", stats.cycle_terms.atomics});
  attrs.push_back({"cycles.barrier", stats.cycle_terms.barrier});
  return obs::record_modeled_span(cfg.label.empty() ? "kernel" : cfg.label,
                                  "kernel", modeled_start,
                                  stats.modeled_seconds, dev.ordinal(),
                                  std::move(attrs));
}

}  // namespace gm::simt
