#include "simt/stream.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <utility>

#include "obs/registry.h"

namespace gm::simt {

Stream::OpId Stream::run(std::string label, std::function<void()> body) {
  Op op;
  op.kind = OpKind::kWork;
  op.id = sched_->next_id();
  op.label = std::move(label);
  op.body = std::move(body);
  const OpId id = op.id;
  sched_->intervals_.push_back({-1.0, -1.0});
  queue_.push_back(std::move(op));
  return id;
}

Stream::OpId Stream::record(Event& ev) {
  if (!ev.state_) {
    throw StreamError("record on a moved-from Event (stream '" + name_ + "')");
  }
  Op op;
  op.kind = OpKind::kRecord;
  op.id = sched_->next_id();
  op.event = ev.state_;
  op.wait_target = ++ev.state_->enqueued;
  const OpId id = op.id;
  sched_->intervals_.push_back({-1.0, -1.0});
  queue_.push_back(std::move(op));
  return id;
}

Stream::OpId Stream::wait(const Event& ev) {
  if (!ev.state_) {
    throw StreamError("wait on a moved-from Event (stream '" + name_ + "')");
  }
  if (ev.state_->enqueued == 0) {
    throw StreamError("wait-before-record: stream '" + name_ +
                      "' would wait on an event no stream has recorded — a "
                      "guaranteed hang on real hardware");
  }
  Op op;
  op.kind = OpKind::kWait;
  op.id = sched_->next_id();
  op.event = ev.state_;
  op.wait_target = ev.state_->enqueued;
  const OpId id = op.id;
  sched_->intervals_.push_back({-1.0, -1.0});
  queue_.push_back(std::move(op));
  return id;
}

StreamScheduler::StreamScheduler(Device& dev, std::uint64_t shuffle_seed)
    : dev_(dev),
      epoch_(dev.ledger().total_seconds()),
      last_end_(epoch_),
      shuffle_(shuffle_seed != 0),
      rng_(shuffle_seed) {
  const DeviceSpec& spec = dev_.spec();
  slot_free_.assign(
      std::size_t{spec.sm_count} * std::max(1u, spec.max_blocks_per_sm),
      epoch_);
  h2d_free_ = d2h_free_ = dram_free_ = epoch_;
}

StreamScheduler::~StreamScheduler() {
  if (dev_.segment_sink() == this) dev_.install_segment_sink(nullptr);
}

Stream& StreamScheduler::create_stream(std::string name) {
  const std::uint32_t index = static_cast<std::uint32_t>(streams_.size());
  if (name.empty()) name = "stream-" + std::to_string(index);
  streams_.emplace_back(new Stream(this, index, std::move(name)));
  streams_.back()->ready_ = epoch_;
  return *streams_.back();
}

void StreamScheduler::sync(Stream& s) {
  while (!s.queue_.empty()) step();
}

void StreamScheduler::drain() {
  while (step()) {
  }
}

StreamScheduler::Interval StreamScheduler::interval(Stream::OpId id) const {
  if (id >= intervals_.size() || intervals_[id].start < 0.0) {
    throw std::out_of_range("StreamScheduler::interval: op " +
                            std::to_string(id) + " has not executed");
  }
  return intervals_[id];
}

void StreamScheduler::on_segment(OpSegment seg) {
  if (executing_) staged_.push_back(std::move(seg));
}

bool StreamScheduler::step() {
  std::vector<Stream*> runnable;
  bool any_pending = false;
  for (const auto& sp : streams_) {
    if (sp->queue_.empty()) continue;
    any_pending = true;
    const Stream::Op& head = sp->queue_.front();
    if (head.kind == Stream::OpKind::kWait &&
        head.event->completed < head.wait_target) {
      continue;
    }
    runnable.push_back(sp.get());
  }
  if (runnable.empty()) {
    if (any_pending) throw_stalled();
    return false;
  }
  Stream* pick = runnable.front();
  if (shuffle_) {
    pick = runnable[rng_.bounded(runnable.size())];
  } else {
    for (Stream* s : runnable) {
      if (s->ready_ < pick->ready_) pick = s;
    }
  }
  Stream::Op op = std::move(pick->queue_.front());
  pick->queue_.pop_front();
  execute(*pick, std::move(op));
  return true;
}

void StreamScheduler::execute(Stream& s, Stream::Op op) {
  const double start = s.ready_;
  obs::flight(obs::FlightKind::kStream,
              op.label.empty() ? s.name_ : op.label,
              obs::current_trace().trace_id, static_cast<double>(s.index()),
              static_cast<double>(static_cast<int>(op.kind)));
  switch (op.kind) {
    case Stream::OpKind::kWork: {
      staged_.clear();
      SegmentSink* const prev = dev_.segment_sink();
      dev_.install_segment_sink(this);
      executing_ = true;
      try {
        op.body();
      } catch (...) {
        executing_ = false;
        dev_.install_segment_sink(prev);
        staged_.clear();
        throw;
      }
      executing_ = false;
      dev_.install_segment_sink(prev);
      double cursor = s.ready_;
      place_segments(s, cursor);
      s.ready_ = cursor;
      break;
    }
    case Stream::OpKind::kRecord: {
      if (op.event->destroyed) {
        throw StreamError("record on a destroyed Event (stream '" + s.name_ +
                          "')");
      }
      // max(), not overwrite: records on different streams may drain out of
      // enqueue order, and completed/time must never move backwards or a
      // satisfied waiter would un-satisfy.
      op.event->completed = std::max(op.event->completed, op.wait_target);
      op.event->time = std::max(op.event->time, s.ready_);
      break;
    }
    case Stream::OpKind::kWait: {
      s.ready_ = std::max(s.ready_, op.event->time);
      break;
    }
  }
  intervals_[op.id] = {start, s.ready_};
  last_end_ = std::max(last_end_, s.ready_);
}

void StreamScheduler::place_segments(Stream& s, double& cursor) {
  const DeviceSpec& spec = dev_.spec();
  for (const OpSegment& seg : staged_) {
    double seg_start = cursor;
    double seg_end = cursor;
    switch (seg.kind) {
      case OpKind::kKernel: {
        const double t0 = cursor + seg.launch_overhead;
        // Blocks backfill free SM slots, bounded by the kernel's own
        // residency limit (Hyper-Q: concurrent kernels share the SMs).
        const std::uint32_t per_sm =
            seg.blocks_per_sm != 0 ? seg.blocks_per_sm : spec.max_blocks_per_sm;
        const std::size_t limit =
            std::min(slot_free_.size(), std::size_t{per_sm} * spec.sm_count);
        std::vector<std::size_t> idx(slot_free_.size());
        std::iota(idx.begin(), idx.end(), 0);
        std::stable_sort(idx.begin(), idx.end(),
                         [&](std::size_t a, std::size_t b) {
                           return slot_free_[a] < slot_free_[b];
                         });
        idx.resize(std::max<std::size_t>(1, limit));
        using Slot = std::pair<double, std::size_t>;
        std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
        for (const std::size_t i : idx) heap.push({slot_free_[i], i});
        double compute_end = t0;
        for (const double d : seg.block_seconds) {
          const auto [free_t, si] = heap.top();
          heap.pop();
          const double bs = std::max(t0, free_t);
          const double be = bs + d;
          compute_end = std::max(compute_end, be);
          slot_free_[si] = be;
          heap.push({be, si});
        }
        // The kernel's aggregate DRAM traffic serializes on the shared
        // memory system after its compute finishes (matching the serial
        // model's additive bytes/bandwidth term).
        seg_end = compute_end;
        if (seg.dram_seconds > 0.0) {
          const double dram_start = std::max(compute_end, dram_free_);
          seg_end = dram_start + seg.dram_seconds;
          dram_free_ = seg_end;
        }
        break;
      }
      case OpKind::kMemset: {
        seg_start = std::max(cursor, dram_free_);
        seg_end = seg_start + seg.seconds;
        dram_free_ = seg_end;
        break;
      }
      case OpKind::kH2D: {
        seg_start = std::max(cursor, h2d_free_);
        seg_end = seg_start + seg.seconds;
        h2d_free_ = seg_end;
        break;
      }
      case OpKind::kD2H: {
        seg_start = std::max(cursor, d2h_free_);
        seg_end = seg_start + seg.seconds;
        d2h_free_ = seg_end;
        break;
      }
    }
    cursor = std::max(cursor, seg_end);
    if (seg.span_index >= 0 && obs::enabled()) {
      obs::Registry::global().trace().retime(
          static_cast<std::size_t>(seg.span_index), seg_start * 1e6,
          (seg_end - seg_start) * 1e6, s.track());
    }
  }
  staged_.clear();
}

void StreamScheduler::throw_stalled() const {
  // Failed invariant: capture it in the flight recorder before throwing so
  // a crash dump or fuzz reproducer shows what the streams were doing.
  obs::flight(obs::FlightKind::kMark, "stream-stalled",
              obs::current_trace().trace_id);
  for (const auto& sp : streams_) {
    if (sp->queue_.empty()) continue;
    const Stream::Op& head = sp->queue_.front();
    if (head.kind == Stream::OpKind::kWait && head.event &&
        head.event->destroyed && head.event->completed < head.wait_target) {
      throw StreamError("stream '" + sp->name_ +
                        "' waits on a destroyed Event whose record never "
                        "executed — would hang on real hardware");
    }
  }
  throw StreamError(
      "stream scheduler stalled: remaining waits can never be satisfied "
      "(cyclic cross-stream waits, or a wait ahead of its own record)");
}

}  // namespace gm::simt
