// The documented device-time model (see DESIGN.md, hardware substitutions).
//
// Per phase (the code between two barriers) of one block:
//
//   compute  = sum over warps of max-over-lanes(alu) / warp_ipc
//              -- lanes run in lock step, so a warp pays its slowest lane;
//                 warp_ipc = cores_per_sm / warp_size warps issue per cycle.
//   shared   = sum over warps of max-over-lanes(shared_ops) * c_shared
//   atomics  = total atomics * c_atomic  -- serialized worst case.
//   barrier  = c_barrier.
//
//   latency  = sum over warps of max-over-lanes(txns) * c_txn
//              -- a lane's dependent random accesses serialize; this is the
//                 term the load-balancing heuristic (Fig. 7) reduces.
//
//   phase_cycles = compute + shared + latency + atomics + barrier
//
// Global-memory traffic is a *device-wide* resource, so it is charged at
// launch level rather than per phase: kernels account bytes (coalesced) or
// 128-byte transactions (random access, ctx.gmem_txn), and the launch adds
// total_bytes / mem_bandwidth.
//
// The max-over-lanes term is what makes the load-balancing experiment
// (paper Fig. 7) meaningful in simulation: imbalanced work raises the phase
// maximum even though total work is unchanged.
//
// Per launch:
//
//   resident  = sm_count * blocks_per_sm
//   seconds   = max(sum(block_cycles) / resident, max(block_cycles)) / clock
//               + total_bytes / mem_bandwidth + kernel_launch_seconds
//
// i.e. blocks execute in waves; a grid shorter than one wave is bounded by
// its slowest block; DRAM is shared by the whole device.
#pragma once

#include <cstdint>
#include <span>

#include "simt/device.h"
#include "simt/kernel.h"

namespace gm::simt {

/// The five cost-model terms of one or more phases, kept separate so
/// observability can show *where* modeled cycles go (the latency term is
/// what the paper's Fig. 7 load balancing reduces).
struct CycleBreakdown {
  double compute = 0.0;
  double shared = 0.0;
  double latency = 0.0;
  double atomics = 0.0;
  double barrier = 0.0;

  double total() const {
    return compute + shared + latency + atomics + barrier;
  }
  CycleBreakdown& operator+=(const CycleBreakdown& o) {
    compute += o.compute;
    shared += o.shared;
    latency += o.latency;
    atomics += o.atomics;
    barrier += o.barrier;
    return *this;
  }
};

/// Per-term cycles one block spends in the phase described by `slots` (one
/// entry per thread; counters are the phase's).
CycleBreakdown phase_cycle_terms(const DeviceSpec& spec,
                                 std::span<const ThreadSlot> slots);

/// Total cycles of the phase — phase_cycle_terms(...).total().
double phase_cycles(const DeviceSpec& spec, std::span<const ThreadSlot> slots);

/// Launch-level aggregation, in seconds.
double launch_seconds(const DeviceSpec& spec, std::span<const double> block_cycles,
                      std::uint32_t blocks_per_sm,
                      std::uint64_t total_global_bytes = 0);

}  // namespace gm::simt
