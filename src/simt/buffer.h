// RAII device-memory buffer. Backed by host memory (the simulator runs on
// the CPU) but accounted against the device's global-memory capacity, so
// exceeding the card aborts exactly like a real cudaMalloc failure.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "simt/device.h"

namespace gm::simt {

template <typename T>
class Buffer {
 public:
  Buffer(Device& dev, std::size_t count) : dev_(&dev) {
    // Account against device capacity *before* touching host memory, so an
    // oversized request fails with DeviceOutOfMemory instead of bad_alloc.
    dev_->allocate(count * sizeof(T));
    try {
      data_.resize(count);
    } catch (...) {
      dev_->release(count * sizeof(T));
      throw;
    }
  }
  ~Buffer() {
    if (dev_ != nullptr) dev_->release(bytes());
  }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  Buffer(Buffer&& other) noexcept
      : dev_(other.dev_), data_(std::move(other.data_)) {
    other.dev_ = nullptr;
  }
  Buffer& operator=(Buffer&&) = delete;

  std::size_t size() const noexcept { return data_.size(); }
  std::size_t bytes() const noexcept { return data_.size() * sizeof(T); }

  std::span<T> span() noexcept { return {data_.data(), data_.size()}; }
  std::span<const T> span() const noexcept { return {data_.data(), data_.size()}; }
  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }
  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  /// cudaMemset equivalent: zero-fill with modeled cost.
  void zero() {
    std::memset(data_.data(), 0, bytes());
    dev_->account_memset(bytes());
  }

  /// cudaMemcpy H->D with modeled PCIe cost.
  void upload(std::span<const T> host) {
    std::memcpy(data_.data(), host.data(),
                std::min(bytes(), host.size() * sizeof(T)));
    dev_->account_copy(host.size() * sizeof(T), CopyDir::kH2D);
  }

  /// cudaMemcpy D->H with modeled PCIe cost.
  std::vector<T> download(std::size_t count) const {
    count = std::min(count, data_.size());
    dev_->account_copy(count * sizeof(T), CopyDir::kD2H);
    return std::vector<T>(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(count));
  }

 private:
  Device* dev_;
  std::vector<T> data_;
};

}  // namespace gm::simt
