#include "simt/primitives.h"

#include <vector>

#include "simt/buffer.h"
#include "simt/executor.h"
#include "util/bits.h"

namespace gm::simt {
namespace {

constexpr std::uint32_t kScanBlock = 256;   // threads per block
constexpr std::uint32_t kItemsPerThread = 64;
constexpr std::uint32_t kChunk = kScanBlock * kItemsPerThread;

// Pass A: sums[b] = sum of chunk b.
KernelTask chunk_sums_kernel(ThreadCtx& ctx, NoShared&,
                             std::span<const std::uint32_t> data,
                             std::span<std::uint32_t> sums) {
  const std::size_t base = static_cast<std::size_t>(ctx.block_id()) * kChunk +
                           static_cast<std::size_t>(ctx.thread_id()) * kItemsPerThread;
  std::uint64_t local = 0;
  for (std::size_t i = base; i < std::min<std::size_t>(base + kItemsPerThread, data.size()); ++i) {
    local += data[i];
  }
  ctx.alu(kItemsPerThread);
  ctx.gmem(kItemsPerThread * sizeof(std::uint32_t));
  const ScanResult scan = co_await ctx.scan_add(local);
  if (ctx.thread_id() == 0) {
    sums[ctx.block_id()] = static_cast<std::uint32_t>(scan.total);
    ctx.gmem(sizeof(std::uint32_t));
  }
}

// Pass C: rewrite chunk b as an inclusive scan offset by offsets[b]
// (exclusive chunk prefix).
KernelTask apply_kernel(ThreadCtx& ctx, NoShared&,
                        std::span<std::uint32_t> data,
                        std::span<const std::uint32_t> offsets) {
  const std::size_t base = static_cast<std::size_t>(ctx.block_id()) * kChunk +
                           static_cast<std::size_t>(ctx.thread_id()) * kItemsPerThread;
  const std::size_t end = std::min<std::size_t>(base + kItemsPerThread, data.size());
  std::uint64_t local = 0;
  for (std::size_t i = base; i < end; ++i) local += data[i];
  const ScanResult scan = co_await ctx.scan_add(local);
  std::uint64_t running =
      static_cast<std::uint64_t>(offsets[ctx.block_id()]) + scan.exclusive;
  for (std::size_t i = base; i < end; ++i) {
    running += data[i];
    data[i] = static_cast<std::uint32_t>(running);
  }
  ctx.alu(2 * kItemsPerThread);
  ctx.gmem(2 * kItemsPerThread * sizeof(std::uint32_t));
  co_return;
}

}  // namespace

void device_inclusive_scan(Device& dev, std::span<std::uint32_t> data) {
  if (data.empty()) return;
  const std::uint32_t nchunks =
      static_cast<std::uint32_t>(util::ceil_div<std::size_t>(data.size(), kChunk));

  Buffer<std::uint32_t> sums(dev, nchunks);
  {
    LaunchConfig cfg;
    cfg.grid = nchunks;
    cfg.block = kScanBlock;
    cfg.label = "scan/chunk-sums";
    launch<NoShared>(dev, cfg, chunk_sums_kernel,
                     std::span<const std::uint32_t>(data), sums.span());
  }

  // Turn chunk sums into exclusive chunk offsets: inclusive-scan them
  // (recursively) and shift right by one.
  if (nchunks > 1) {
    device_inclusive_scan(dev, sums.span());
  }
  Buffer<std::uint32_t> offsets(dev, nchunks);
  offsets[0] = 0;
  for (std::uint32_t i = 1; i < nchunks; ++i) offsets[i] = sums[i - 1];
  dev.account_memset(nchunks * sizeof(std::uint32_t));

  {
    LaunchConfig cfg;
    cfg.grid = nchunks;
    cfg.block = kScanBlock;
    cfg.label = "scan/apply";
    launch<NoShared>(dev, cfg, apply_kernel, data,
                     std::span<const std::uint32_t>(offsets.span()));
  }
}

}  // namespace gm::simt
