// Simulated SIMT device: specifications, memory arena with capacity
// enforcement, and the performance ledger that accumulates modeled time.
//
// See DESIGN.md ("Hardware substitutions"): kernels execute with real
// barrier/atomic semantics on host threads; *reported* device time comes
// from the documented cost model in perf_model.h, parameterized by these
// specs. The K20c preset mirrors the paper's Section IV test card.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace gm::simt {

struct DeviceSpec {
  std::string name;
  std::uint32_t sm_count = 13;
  std::uint32_t cores_per_sm = 192;
  std::uint32_t warp_size = 32;
  double clock_hz = 705e6;            ///< core clock
  double mem_bandwidth = 208e9;       ///< global memory, bytes/s
  double pcie_bandwidth = 6e9;        ///< host<->device copies, bytes/s
  std::size_t global_mem_bytes = std::size_t{48} * 100 * 1000 * 1000;  // 4.8 GB
  std::uint32_t max_threads_per_block = 1024;
  std::uint32_t max_blocks_per_sm = 8;

  // Cost-model constants (cycles).
  double cycles_per_alu = 1.0;        ///< per lock-step warp ALU op
  double cycles_per_shared = 2.0;     ///< per shared-memory access
  double cycles_per_atomic = 48.0;    ///< per global atomic (serialized)
  double cycles_per_txn = 48.0;       ///< effective per-lane latency of a
                                      ///< dependent random access (partially
                                      ///< hidden by other resident warps)
  double cycles_per_barrier = 32.0;   ///< __syncthreads latency
  double kernel_launch_seconds = 5e-6;

  /// NVIDIA Tesla K20c — the paper's experimental device.
  static DeviceSpec k20c();
  /// NVIDIA Tesla K40 — the "newer GPU" the paper's future work names.
  static DeviceSpec k40();
};

/// Thrown when a device allocation exceeds the card's global memory — the
/// restriction that motivates the paper's 2D tiling.
class DeviceOutOfMemory : public std::runtime_error {
 public:
  explicit DeviceOutOfMemory(const std::string& what)
      : std::runtime_error(what) {}
};

/// Direction of a modeled host<->device copy. The stream scheduler maps each
/// direction to its own DMA engine (Kepler cards have one per direction), so
/// an H2D upload and a D2H download on different streams overlap.
enum class CopyDir : std::uint8_t { kH2D, kD2H };

/// Kind of one modeled device operation, from the stream scheduler's
/// perspective: which engine (or the SM pool) it occupies.
enum class OpKind : std::uint8_t { kKernel, kMemset, kH2D, kD2H };

/// One modeled operation captured while a stream closure executes. The
/// ledger is charged eagerly (serial semantics); the scheduler re-places the
/// segment on the overlapped timeline afterwards.
struct OpSegment {
  OpKind kind = OpKind::kKernel;
  std::string label;
  /// Serial-model duration: the exact seconds charged to the ledger.
  double seconds = 0.0;
  /// Kernels only: per-block durations (cycles / clock) for SM-slot
  /// placement, the DRAM-bandwidth tail, the launch overhead, and the
  /// per-kernel residency limit (blocks per SM; 0 = device maximum).
  std::vector<double> block_seconds;
  double dram_seconds = 0.0;
  double launch_overhead = 0.0;
  std::uint32_t blocks_per_sm = 0;
  /// Index of the span this op recorded in the global trace (-1 = none);
  /// the scheduler retimes it onto the overlapped timeline.
  std::ptrdiff_t span_index = -1;
};

/// Receives OpSegments from a Device while a stream closure runs. Installed
/// and drained by simt::StreamScheduler; mark/truncate pair with the ledger
/// snapshot/rollback so a retried tile's abandoned ops vanish everywhere.
class SegmentSink {
 public:
  virtual ~SegmentSink() = default;
  virtual void on_segment(OpSegment seg) = 0;
  virtual std::size_t mark() const = 0;
  virtual void truncate(std::size_t n) = 0;
};

/// Accumulates modeled device-side time. Thread-safe.
class PerfLedger {
 public:
  /// Per-kernel-label aggregation (launch count + modeled seconds).
  struct LabelStats {
    std::uint64_t launches = 0;
    double seconds = 0.0;
  };

  void add_kernel_seconds(double s, const std::string& label = {}) {
    std::lock_guard lock(mu_);
    kernel_seconds_ += s;
    ++kernels_;
    if (!label.empty()) {
      LabelStats& ls = by_label_[label];
      ++ls.launches;
      ls.seconds += s;
    }
  }

  /// Snapshot of the per-label breakdown, sorted by descending time.
  std::vector<std::pair<std::string, LabelStats>> breakdown() const {
    std::lock_guard lock(mu_);
    std::vector<std::pair<std::string, LabelStats>> out(by_label_.begin(),
                                                        by_label_.end());
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return a.second.seconds > b.second.seconds;
    });
    return out;
  }
  void add_transfer_seconds(double s) {
    std::lock_guard lock(mu_);
    transfer_seconds_ += s;
  }
  double kernel_seconds() const {
    std::lock_guard lock(mu_);
    return kernel_seconds_;
  }
  double transfer_seconds() const {
    std::lock_guard lock(mu_);
    return transfer_seconds_;
  }
  double total_seconds() const {
    std::lock_guard lock(mu_);
    return kernel_seconds_ + transfer_seconds_;
  }
  std::uint64_t kernels_launched() const {
    std::lock_guard lock(mu_);
    return kernels_;
  }
  void reset() {
    std::lock_guard lock(mu_);
    kernel_seconds_ = transfer_seconds_ = 0.0;
    kernels_ = 0;
    by_label_.clear();
  }

  struct Snapshot {
    double kernel_seconds = 0.0;
    double transfer_seconds = 0.0;
    std::uint64_t kernels = 0;
    std::map<std::string, LabelStats> by_label;
  };
  Snapshot snapshot() const {
    std::lock_guard lock(mu_);
    return {kernel_seconds_, transfer_seconds_, kernels_, by_label_};
  }
  /// Rewinds to a snapshot — used when a tile is retried with larger
  /// buffers so the abandoned attempt's modeled time is not double-counted.
  void rollback(const Snapshot& s) {
    std::lock_guard lock(mu_);
    kernel_seconds_ = s.kernel_seconds;
    transfer_seconds_ = s.transfer_seconds;
    kernels_ = s.kernels;
    by_label_ = s.by_label;
  }

  /// Per-label breakdown of everything launched *since* `since`, sorted by
  /// descending time. Lets a persistent device (one that serves many runs,
  /// e.g. the serve layer's pool) report per-run kernel stats as deltas.
  std::vector<std::pair<std::string, LabelStats>> breakdown_since(
      const Snapshot& since) const {
    std::lock_guard lock(mu_);
    std::vector<std::pair<std::string, LabelStats>> out;
    for (const auto& [label, ls] : by_label_) {
      LabelStats base;
      if (const auto it = since.by_label.find(label);
          it != since.by_label.end()) {
        base = it->second;
      }
      const LabelStats delta{ls.launches - base.launches,
                             ls.seconds - base.seconds};
      if (delta.launches > 0 || delta.seconds > 0.0) {
        out.emplace_back(label, delta);
      }
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return a.second.seconds > b.second.seconds;
    });
    return out;
  }

 private:
  mutable std::mutex mu_;
  double kernel_seconds_ = 0.0;
  double transfer_seconds_ = 0.0;
  std::uint64_t kernels_ = 0;
  std::map<std::string, LabelStats> by_label_;
};

class Device {
 public:
  /// `ordinal` identifies the device in traces (multi-device runs tag each
  /// device's spans with it; single-device runs use 0).
  explicit Device(DeviceSpec spec = DeviceSpec::k20c(),
                  std::uint32_t ordinal = 0)
      : spec_(std::move(spec)), ordinal_(ordinal) {}

  const DeviceSpec& spec() const noexcept { return spec_; }
  std::uint32_t ordinal() const noexcept { return ordinal_; }
  PerfLedger& ledger() noexcept { return ledger_; }
  const PerfLedger& ledger() const noexcept { return ledger_; }

  std::size_t bytes_in_use() const {
    std::lock_guard lock(mu_);
    return bytes_in_use_;
  }
  std::size_t peak_bytes() const {
    std::lock_guard lock(mu_);
    return peak_bytes_;
  }
  /// Resets the peak watermark to the *current* usage. A persistent device
  /// (serve-layer pool member with cached buffers resident across requests)
  /// calls this at request start so peak_bytes() reports the per-request
  /// peak — resident bytes included — instead of the all-time high.
  void reset_peak() {
    std::lock_guard lock(mu_);
    peak_bytes_ = bytes_in_use_;
  }

  /// cudaMemset equivalent: models a bandwidth-bound fill.
  void account_memset(std::size_t bytes) {
    const double secs = static_cast<double>(bytes) / spec_.mem_bandwidth;
    note_transfer(OpKind::kMemset, "memset", bytes, secs);
    ledger_.add_transfer_seconds(secs);
  }
  /// cudaMemcpy equivalent (host<->device over PCIe). The direction picks
  /// the DMA engine under stream-overlapped scheduling; serial modeled time
  /// is identical either way.
  void account_copy(std::size_t bytes, CopyDir dir = CopyDir::kH2D) {
    const double secs = static_cast<double>(bytes) / spec_.pcie_bandwidth;
    note_transfer(dir == CopyDir::kH2D ? OpKind::kH2D : OpKind::kD2H, "memcpy",
                  bytes, secs);
    ledger_.add_transfer_seconds(secs);
  }

  /// Kernel-launch hook, called by simt::launch after charging the ledger:
  /// forwards the launch's cost decomposition to the installed SegmentSink
  /// (no-op without one). Public so scheduler tests can feed synthetic
  /// kernels without running coroutines.
  void note_kernel_launch(const std::string& label,
                          std::vector<double> block_seconds,
                          double dram_seconds, double total_seconds,
                          std::uint32_t blocks_per_sm,
                          std::ptrdiff_t span_index);

  /// Segment capture (stream scheduling). The sink is installed only while
  /// the scheduler executes a queued closure, on the draining thread; these
  /// accessors are deliberately unsynchronized.
  void install_segment_sink(SegmentSink* sink) noexcept { sink_ = sink; }
  SegmentSink* segment_sink() const noexcept { return sink_; }
  /// Checkpoint / rollback of captured segments, mirroring
  /// PerfLedger::snapshot/rollback for tile retries. No-ops without a sink.
  std::size_t segment_mark() const { return sink_ ? sink_->mark() : 0; }
  void segment_truncate(std::size_t n) {
    if (sink_ != nullptr) sink_->truncate(n);
  }

 private:
  /// Trace + segment hook for modeled transfers.
  void note_transfer(OpKind kind, const char* name, std::size_t bytes,
                     double seconds);

  template <typename T>
  friend class Buffer;

  void allocate(std::size_t bytes) {
    std::lock_guard lock(mu_);
    if (bytes_in_use_ + bytes > spec_.global_mem_bytes) {
      throw DeviceOutOfMemory(
          "device allocation of " + std::to_string(bytes) + " bytes exceeds " +
          spec_.name + " capacity (" + std::to_string(spec_.global_mem_bytes) +
          " bytes, " + std::to_string(bytes_in_use_) + " in use)");
    }
    bytes_in_use_ += bytes;
    peak_bytes_ = std::max(peak_bytes_, bytes_in_use_);
  }
  void release(std::size_t bytes) noexcept {
    std::lock_guard lock(mu_);
    bytes_in_use_ -= bytes;
  }

  DeviceSpec spec_;
  std::uint32_t ordinal_ = 0;
  PerfLedger ledger_;
  SegmentSink* sink_ = nullptr;
  mutable std::mutex mu_;
  std::size_t bytes_in_use_ = 0;
  std::size_t peak_bytes_ = 0;
};

}  // namespace gm::simt
