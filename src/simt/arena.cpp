#include "simt/arena.h"

#include <algorithm>
#include <new>

namespace gm::simt {
namespace {

constexpr std::size_t round_up(std::size_t n) noexcept {
  return (n + FrameArena::kAlign - 1) & ~(FrameArena::kAlign - 1);
}

}  // namespace

void* FrameArena::allocate(std::size_t bytes) {
  const std::size_t need = kAlign + round_up(bytes);
  Chunk* c = chunks_.empty() ? nullptr : &chunks_.back();
  if (c == nullptr || c->size - c->used < need) c = &grow(need);
  std::byte* base = c->data.get() + c->used;
  c->used += need;
  ::new (static_cast<void*>(base)) Header{this};
  live_.fetch_add(1, std::memory_order_relaxed);
  return base + kAlign;
}

void FrameArena::release(void* p) noexcept {
  auto* h = std::launder(
      reinterpret_cast<Header*>(static_cast<std::byte*>(p) - kAlign));
  h->arena->live_.fetch_sub(1, std::memory_order_release);
}

void FrameArena::maybe_reset() noexcept {
  if (live_.load(std::memory_order_acquire) != 0) return;
  if (chunks_.empty()) return;
  // Chunks grow geometrically, so the newest is the largest: keep it (warm
  // for the next block), drop the rest, rewind.
  if (chunks_.size() > 1) chunks_.erase(chunks_.begin(), chunks_.end() - 1);
  chunks_.back().used = 0;
}

std::size_t FrameArena::reserved_bytes() const noexcept {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

FrameArena& FrameArena::local() {
  thread_local FrameArena arena;
  return arena;
}

FrameArena::Chunk& FrameArena::grow(std::size_t need) {
  const std::size_t prev = chunks_.empty() ? 0 : chunks_.back().size;
  const std::size_t size = std::max({kMinChunk, prev * 2, need});
  Chunk c;
  c.data = std::make_unique<std::byte[]>(size);
  c.size = size;
  chunks_.push_back(std::move(c));
  return chunks_.back();
}

}  // namespace gm::simt
