#include "simt/device.h"

#include "obs/registry.h"

namespace gm::simt {

void Device::note_transfer(OpKind kind, const char* name, std::size_t bytes,
                           double seconds) {
  std::ptrdiff_t span_index = -1;
  if (obs::enabled()) {
    span_index = static_cast<std::ptrdiff_t>(obs::record_modeled_span(
        name, "transfer", ledger_.total_seconds(), seconds, ordinal_,
        {{"bytes", std::uint64_t{bytes}}}));
  }
  if (sink_ != nullptr) {
    OpSegment seg;
    seg.kind = kind;
    seg.label = name;
    seg.seconds = seconds;
    seg.span_index = span_index;
    sink_->on_segment(std::move(seg));
  }
}

void Device::note_kernel_launch(const std::string& label,
                                std::vector<double> block_seconds,
                                double dram_seconds, double total_seconds,
                                std::uint32_t blocks_per_sm,
                                std::ptrdiff_t span_index) {
  if (sink_ == nullptr) return;
  OpSegment seg;
  seg.kind = OpKind::kKernel;
  seg.label = label;
  seg.seconds = total_seconds;
  seg.block_seconds = std::move(block_seconds);
  seg.dram_seconds = dram_seconds;
  seg.launch_overhead = spec_.kernel_launch_seconds;
  seg.blocks_per_sm = blocks_per_sm;
  seg.span_index = span_index;
  sink_->on_segment(std::move(seg));
}

DeviceSpec DeviceSpec::k20c() {
  DeviceSpec spec;
  spec.name = "Tesla K20c (simulated)";
  spec.sm_count = 13;
  spec.cores_per_sm = 192;
  spec.clock_hz = 705e6;
  spec.mem_bandwidth = 208e9;
  spec.global_mem_bytes = std::size_t{4800} * 1000 * 1000;  // 4.8 GB
  return spec;
}

DeviceSpec DeviceSpec::k40() {
  DeviceSpec spec;
  spec.name = "Tesla K40 (simulated)";
  spec.sm_count = 15;
  spec.cores_per_sm = 192;
  spec.clock_hz = 745e6;
  spec.mem_bandwidth = 288e9;
  spec.global_mem_bytes = std::size_t{12000} * 1000 * 1000;  // 12 GB
  return spec;
}

}  // namespace gm::simt
