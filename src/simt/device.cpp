#include "simt/device.h"

#include "obs/registry.h"

namespace gm::simt {

void Device::note_transfer(const char* kind, std::size_t bytes,
                           double seconds) {
  if (!obs::enabled()) return;
  obs::record_modeled_span(kind, "transfer", ledger_.total_seconds(), seconds,
                           ordinal_, {{"bytes", std::uint64_t{bytes}}});
}

DeviceSpec DeviceSpec::k20c() {
  DeviceSpec spec;
  spec.name = "Tesla K20c (simulated)";
  spec.sm_count = 13;
  spec.cores_per_sm = 192;
  spec.clock_hz = 705e6;
  spec.mem_bandwidth = 208e9;
  spec.global_mem_bytes = std::size_t{4800} * 1000 * 1000;  // 4.8 GB
  return spec;
}

DeviceSpec DeviceSpec::k40() {
  DeviceSpec spec;
  spec.name = "Tesla K40 (simulated)";
  spec.sm_count = 15;
  spec.cores_per_sm = 192;
  spec.clock_hz = 745e6;
  spec.mem_bandwidth = 288e9;
  spec.global_mem_bytes = std::size_t{12000} * 1000 * 1000;  // 12 GB
  return spec;
}

}  // namespace gm::simt
