// DNA alphabet codec. The paper (Section III-A) encodes bases in 2 bits:
// A=00, C=01, G=10, T=11; this file is the single source of truth for that
// mapping.
#pragma once

#include <array>
#include <cstdint>

namespace gm::seq {

inline constexpr std::uint8_t kA = 0;
inline constexpr std::uint8_t kC = 1;
inline constexpr std::uint8_t kG = 2;
inline constexpr std::uint8_t kT = 3;
inline constexpr std::uint8_t kInvalidBase = 0xFF;
inline constexpr int kAlphabetSize = 4;

/// ASCII (case-insensitive) -> 2-bit code, kInvalidBase for non-ACGT.
constexpr std::uint8_t encode_base(char c) noexcept {
  switch (c) {
    case 'A': case 'a': return kA;
    case 'C': case 'c': return kC;
    case 'G': case 'g': return kG;
    case 'T': case 't': return kT;
    default: return kInvalidBase;
  }
}

/// 2-bit code -> ASCII.
constexpr char decode_base(std::uint8_t b) noexcept {
  constexpr std::array<char, 4> tab{'A', 'C', 'G', 'T'};
  return tab[b & 3];
}

/// Watson–Crick complement in code space (A<->T, C<->G) is 3 - b.
constexpr std::uint8_t complement(std::uint8_t b) noexcept {
  return static_cast<std::uint8_t>(3 - (b & 3));
}

}  // namespace gm::seq
