// 2-bit packed DNA sequence with word-level longest-common-extension
// primitives. Every index structure and matcher in the project operates on
// this representation (the paper stores sequences the same way, Section IV).
//
// Non-ACGT input (N runs, IUPAC codes) has no fifth symbol in 2-bit space;
// such positions are stored as a placeholder code plus a bit in a validity
// side-mask. The project-wide policy (docs/TESTING.md) is that an invalid
// base matches nothing — not even another invalid base — so it terminates
// matches and never appears inside a MEM. The mask is empty (zero overhead)
// for fully-ACGT sequences.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "seq/alphabet.h"

namespace gm::seq {

/// Position type: sequences are limited to < 2^32 bases, which covers every
/// chromosome-scale input the paper uses.
using Pos = std::uint32_t;

class Sequence {
 public:
  Sequence() = default;

  /// Builds from an ASCII ACGT string; throws std::invalid_argument on any
  /// other character (FASTA-level policies live in fasta.h).
  static Sequence from_string(std::string_view s);

  /// Builds from ASCII accepting any character: non-ACGT positions are
  /// stored as invalid (masked) bases. Case-insensitive like from_string.
  static Sequence from_string_lenient(std::string_view s);

  /// Builds from 2-bit codes (values 0..3); a kInvalidBase entry stores an
  /// invalid (masked) position.
  static Sequence from_codes(const std::vector<std::uint8_t>& codes);

  /// Reassembles a sequence from its packed representation (the store/
  /// artifact load path). `words` are the 2-bit packed words exactly as
  /// packed_words() exposes them; `invalid_mask` the validity side-mask
  /// (may be shorter than the word count, like the lazily-sized member).
  /// Throws std::invalid_argument on any inconsistency — word count vs
  /// size, mask bits beyond size, or a mask popcount that disagrees with
  /// the stored invalid count — so a corrupted artifact is rejected
  /// deterministically instead of producing an ill-formed sequence.
  static Sequence from_packed(std::vector<std::uint64_t> words,
                              std::vector<std::uint64_t> invalid_mask,
                              std::size_t size);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// 2-bit code of base i (0 <= i < size()).
  std::uint8_t base(std::size_t i) const noexcept {
    return static_cast<std::uint8_t>((words_[i >> 5] >> ((i & 31) * 2)) & 3);
  }

  void push_back(std::uint8_t code);
  /// Appends an invalid (masked) position; it is stored with code 0 so the
  /// packed words stay well-formed for window64/kmer readers.
  void push_back_invalid();
  void append(const Sequence& other, std::size_t pos, std::size_t len);
  void reserve(std::size_t bases) { words_.reserve((bases + 31) / 32 + 1); }

  /// True when at least one position is an invalid (non-ACGT) base.
  bool has_invalid() const noexcept { return invalid_count_ != 0; }
  std::uint64_t invalid_count() const noexcept { return invalid_count_; }

  /// True when base i is a real ACGT base (not a masked non-ACGT position).
  bool valid(std::size_t i) const noexcept {
    const std::size_t w = i >> 6;
    return invalid_count_ == 0 || w >= invalid_mask_.size() ||
           (invalid_mask_[w] & (std::uint64_t{1} << (i & 63))) == 0;
  }

  /// First invalid position in [from, to), or `to` when the range is clean.
  std::size_t next_invalid(std::size_t from, std::size_t to) const noexcept;

  /// 64-bit window holding up to 32 bases starting at position i, base i in
  /// the lowest 2 bits. Positions past the end are zero-filled; callers must
  /// bound match lengths by size() themselves.
  std::uint64_t window64(std::size_t i) const noexcept;

  /// Packed k-mer (k <= 32) starting at i, first base in the lowest bits.
  /// Caller guarantees i + k <= size().
  std::uint64_t kmer(std::size_t i, unsigned k) const noexcept {
    std::uint64_t w = window64(i);
    return k >= 32 ? w : (w & ((std::uint64_t{1} << (2 * k)) - 1));
  }

  /// ASCII rendering; invalid (masked) positions print as 'N'.
  std::string to_string() const;
  std::string to_string(std::size_t pos, std::size_t len) const;

  /// Copy of the subsequence [pos, pos+len).
  Sequence subsequence(std::size_t pos, std::size_t len) const;

  /// Reverse complement of the whole sequence.
  Sequence reverse_complement() const;

  /// Unpacked 2-bit codes (for algorithms that want byte access, e.g. SA-IS).
  std::vector<std::uint8_t> codes() const;

  /// The packed 2-bit words, base i in bits [2(i&31), 2(i&31)+2) of word
  /// i>>5 — the exact bytes the store/ artifact serializes. Tail bits past
  /// size() are zero by construction.
  const std::vector<std::uint64_t>& packed_words() const noexcept {
    return words_;
  }
  /// The validity side-mask words (one bit per base, set = invalid). Empty
  /// for fully-ACGT sequences; may cover fewer words than size() needs (it
  /// is sized lazily up to the last invalid base).
  const std::vector<std::uint64_t>& invalid_words() const noexcept {
    return invalid_mask_;
  }

  /// Length of the common prefix of (*this)[i..] and other[j..], capped at
  /// `max_len`. Word-parallel (32 bases per 64-bit XOR) via seq::lce_forward;
  /// the byte-at-a-time reference stays callable through seq::set_lce_mode
  /// (packed.h).
  std::size_t common_prefix(std::size_t i, const Sequence& other,
                            std::size_t j, std::size_t max_len) const noexcept;

  /// Length of the common suffix of (*this)[..i] and other[..j] (inclusive
  /// end positions), capped at `max_len`. Used for leftward MEM expansion.
  /// Word-parallel via seq::lce_backward (backward windows over the same
  /// forward-packed words — no reversed shadow copy).
  std::size_t common_suffix(std::size_t i, const Sequence& other,
                            std::size_t j, std::size_t max_len) const noexcept;

  bool operator==(const Sequence& other) const noexcept;

 private:
  std::vector<std::uint64_t> words_;
  /// One bit per base (bit set = invalid); empty until the first invalid
  /// base arrives, then sized lazily to cover it.
  std::vector<std::uint64_t> invalid_mask_;
  std::uint64_t invalid_count_ = 0;
  std::size_t size_ = 0;
};

}  // namespace gm::seq
