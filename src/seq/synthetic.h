// Synthetic genome generation — the data substitution for the paper's
// chromosome inputs (see DESIGN.md).
//
// Two pieces:
//  * GenomeModel: samples a base genome with planted interspersed repeat
//    families and tandem repeats, which is what gives real chromosomes their
//    heavy-tailed seed-occurrence histogram (paper Fig. 6).
//  * Mutator: derives a diverged relative of a genome (SNPs, indels,
//    segmental duplications, inversions, translocations), which is what
//    creates the long shared MEMs the tools extract.
//
// Dataset presets pairing a "reference species" and a "query species" from a
// shared ancestor mimic the paper's chromosome pairs at a reduced scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence.h"
#include "util/rng.h"

namespace gm::seq {

struct GenomeModel {
  std::size_t length = 1 << 20;

  // Interspersed repeat families (LINE-like): `families` distinct master
  // elements, each pasted `copies_per_family` times with per-copy point
  // divergence `copy_divergence`.
  unsigned families = 12;
  std::size_t family_length = 600;
  unsigned copies_per_family = 40;
  double copy_divergence = 0.03;

  // High-copy short elements (SINE/Alu-like): real chromosomes carry ~one
  // per kilobase, which is what gives the paper's Fig. 6 seed-occurrence
  // histogram its heavy tail and makes load balancing matter (Fig. 7).
  unsigned sine_families = 4;
  std::size_t sine_length = 300;
  unsigned sine_copies = 0;  ///< per family; 0 = auto (~1 copy per 1.2 kbp)
  double sine_divergence = 0.08;

  // Tandem repeats: `tandem_loci` loci, each tiling a short motif.
  unsigned tandem_loci = 24;
  std::size_t tandem_motif = 8;
  std::size_t tandem_span = 400;

  // Low-complexity DNA: short homopolymer/microsatellite runs scattered
  // every ~`microsat_spacing` bases, drawn from a small fixed motif set
  // (poly-A, (CA)n, ...). Identical motifs recur genome-wide, so their
  // seeds reach occurrence counts in the tens-to-hundreds — the extreme
  // end of the paper's Fig. 6 histogram and the main reason one query seed
  // can carry orders of magnitude more work than its neighbours (Fig. 7).
  std::size_t microsat_spacing = 3000;  ///< 0 disables
  std::size_t microsat_len_mean = 36;

  // Satellite arrays: a few long dinucleotide arrays (centromeric/telomeric
  // satellite analogue). Their seeds stay heavy even at large sampling
  // steps, because occurrence count scales with total array length.
  unsigned satellite_arrays = 4;
  std::size_t satellite_len = 600;

  /// Samples a genome. Deterministic in (model, seed).
  Sequence generate(std::uint64_t seed) const;
};

struct MutationModel {
  double snp_rate = 0.01;          ///< per-base substitution probability
  double indel_rate = 0.001;       ///< per-base indel open probability
  double indel_extend = 0.7;       ///< geometric extension of indel length
  unsigned inversions = 2;         ///< count of segment inversions
  unsigned translocations = 2;     ///< count of segment moves
  unsigned duplications = 2;       ///< count of segmental duplications
  std::size_t segment_mean = 5000; ///< mean length of structural segments

  /// Target length of the derived sequence; 0 keeps the source length
  /// (subject to indel drift). When non-zero the result is trimmed or
  /// extended with fresh random sequence.
  std::size_t target_length = 0;

  /// Derives a diverged relative. Deterministic in (model, input, seed).
  Sequence apply(const Sequence& src, std::uint64_t seed) const;
};

/// A reference/query pair plus the parameters the benchmarks need to report.
struct DatasetPair {
  std::string name;        ///< preset name, e.g. "chr1m_s/chr2h_s"
  Sequence reference;
  Sequence query;
};

/// Named presets mirroring the paper's Table II pairs at reduced scale.
/// `scale_divisor` divides the preset's default lengths (1 = full preset
/// scale, which is already ~1/64 of the paper's chromosomes).
DatasetPair make_dataset(const std::string& preset_name,
                         std::uint64_t seed = 42,
                         std::size_t scale_divisor = 1);

/// All preset names, in the order the paper's tables list the configs.
std::vector<std::string> dataset_presets();

}  // namespace gm::seq
