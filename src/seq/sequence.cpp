#include "seq/sequence.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "seq/packed.h"

namespace gm::seq {

Sequence Sequence::from_string(std::string_view s) {
  Sequence seq;
  seq.reserve(s.size());
  for (char c : s) {
    const std::uint8_t b = encode_base(c);
    if (b == kInvalidBase) {
      throw std::invalid_argument(
          std::string("Sequence::from_string: invalid base '") + c + "'");
    }
    seq.push_back(b);
  }
  return seq;
}

Sequence Sequence::from_string_lenient(std::string_view s) {
  Sequence seq;
  seq.reserve(s.size());
  for (char c : s) {
    const std::uint8_t b = encode_base(c);
    if (b == kInvalidBase) {
      seq.push_back_invalid();
    } else {
      seq.push_back(b);
    }
  }
  return seq;
}

Sequence Sequence::from_codes(const std::vector<std::uint8_t>& codes) {
  Sequence seq;
  seq.reserve(codes.size());
  for (std::uint8_t b : codes) {
    if (b == kInvalidBase) {
      seq.push_back_invalid();
      continue;
    }
    if (b > 3) throw std::invalid_argument("Sequence::from_codes: code > 3");
    seq.push_back(b);
  }
  return seq;
}

Sequence Sequence::from_packed(std::vector<std::uint64_t> words,
                               std::vector<std::uint64_t> invalid_mask,
                               std::size_t size) {
  if (size > std::numeric_limits<Pos>::max()) {
    throw std::invalid_argument("Sequence::from_packed: size exceeds 2^32 - 1");
  }
  const std::size_t want_words = (size + 31) / 32;
  if (words.size() < want_words) {
    throw std::invalid_argument(
        "Sequence::from_packed: " + std::to_string(words.size()) +
        " packed words cannot hold " + std::to_string(size) + " bases");
  }
  const std::size_t max_mask_words = (size + 63) / 64;
  if (invalid_mask.size() > max_mask_words) {
    throw std::invalid_argument(
        "Sequence::from_packed: validity mask longer than the sequence");
  }
  std::uint64_t invalid = 0;
  for (std::size_t w = 0; w < invalid_mask.size(); ++w) {
    std::uint64_t bits = invalid_mask[w];
    if (w == max_mask_words - 1 && (size & 63) != 0) {
      const std::uint64_t tail = bits >> (size & 63);
      if (tail != 0) {
        throw std::invalid_argument(
            "Sequence::from_packed: validity mask has bits beyond the "
            "sequence end");
      }
    }
    invalid += static_cast<std::uint64_t>(std::popcount(bits));
  }
  Sequence seq;
  seq.words_ = std::move(words);
  seq.invalid_mask_ = std::move(invalid_mask);
  seq.invalid_count_ = invalid;
  seq.size_ = size;
  return seq;
}

void Sequence::push_back(std::uint8_t code) {
  if (size_ > std::numeric_limits<Pos>::max() - 1) {
    throw std::length_error("Sequence: > 2^32 - 1 bases unsupported");
  }
  const std::size_t word = size_ >> 5;
  const unsigned shift = static_cast<unsigned>((size_ & 31) * 2);
  if (word == words_.size()) words_.push_back(0);
  words_[word] |= static_cast<std::uint64_t>(code & 3) << shift;
  ++size_;
}

void Sequence::push_back_invalid() {
  const std::size_t pos = size_;
  push_back(0);
  const std::size_t word = pos >> 6;
  if (word >= invalid_mask_.size()) invalid_mask_.resize(word + 1, 0);
  invalid_mask_[word] |= std::uint64_t{1} << (pos & 63);
  ++invalid_count_;
}

void Sequence::append(const Sequence& other, std::size_t pos, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    if (other.valid(pos + i)) {
      push_back(other.base(pos + i));
    } else {
      push_back_invalid();
    }
  }
}

std::size_t Sequence::next_invalid(std::size_t from,
                                   std::size_t to) const noexcept {
  if (invalid_count_ == 0 || from >= to) return to;
  std::size_t i = from;
  while (i < to) {
    const std::size_t w = i >> 6;
    if (w >= invalid_mask_.size()) return to;
    const std::uint64_t bits = invalid_mask_[w] >> (i & 63);
    if (bits == 0) {
      i = (w + 1) << 6;
      continue;
    }
    const std::size_t hit = i + static_cast<std::size_t>(std::countr_zero(bits));
    return hit < to ? hit : to;
  }
  return to;
}

std::uint64_t Sequence::window64(std::size_t i) const noexcept {
  const std::size_t word = i >> 5;
  const unsigned shift = static_cast<unsigned>((i & 31) * 2);
  if (word >= words_.size()) return 0;
  std::uint64_t lo = words_[word] >> shift;
  if (shift != 0 && word + 1 < words_.size()) {
    lo |= words_[word + 1] << (64 - shift);
  }
  return lo;
}

std::string Sequence::to_string() const { return to_string(0, size_); }

std::string Sequence::to_string(std::size_t pos, std::size_t len) const {
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(valid(pos + i) ? decode_base(base(pos + i)) : 'N');
  }
  return out;
}

Sequence Sequence::subsequence(std::size_t pos, std::size_t len) const {
  Sequence out;
  out.reserve(len);
  out.append(*this, pos, len);
  return out;
}

Sequence Sequence::reverse_complement() const {
  Sequence out;
  out.reserve(size_);
  for (std::size_t i = size_; i-- > 0;) {
    if (valid(i)) {
      out.push_back(complement(base(i)));
    } else {
      out.push_back_invalid();
    }
  }
  return out;
}

std::vector<std::uint8_t> Sequence::codes() const {
  std::vector<std::uint8_t> out(size_);
  for (std::size_t i = 0; i < size_; ++i) out[i] = base(i);
  return out;
}

std::size_t Sequence::common_prefix(std::size_t i, const Sequence& other,
                                    std::size_t j,
                                    std::size_t max_len) const noexcept {
  return lce_forward(*this, i, other, j, max_len);
}

std::size_t Sequence::common_suffix(std::size_t i, const Sequence& other,
                                    std::size_t j,
                                    std::size_t max_len) const noexcept {
  return lce_backward(*this, i, other, j, max_len);
}

bool Sequence::operator==(const Sequence& other) const noexcept {
  if (size_ != other.size_) return false;
  if (invalid_count_ != other.invalid_count_) return false;
  if (invalid_count_ != 0) {
    const std::size_t n =
        std::max(invalid_mask_.size(), other.invalid_mask_.size());
    for (std::size_t w = 0; w < n; ++w) {
      const std::uint64_t a = w < invalid_mask_.size() ? invalid_mask_[w] : 0;
      const std::uint64_t b =
          w < other.invalid_mask_.size() ? other.invalid_mask_[w] : 0;
      if (a != b) return false;
    }
  }
  if (size_ == 0) return true;
  const std::size_t full = size_ / 32;
  for (std::size_t w = 0; w < full; ++w) {
    if (words_[w] != other.words_[w]) return false;
  }
  const unsigned rem = static_cast<unsigned>(size_ & 31);
  if (rem != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << (2 * rem)) - 1;
    if ((words_[full] & mask) != (other.words_[full] & mask)) return false;
  }
  return true;
}

}  // namespace gm::seq
