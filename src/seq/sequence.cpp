#include "seq/sequence.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace gm::seq {

Sequence Sequence::from_string(std::string_view s) {
  Sequence seq;
  seq.reserve(s.size());
  for (char c : s) {
    const std::uint8_t b = encode_base(c);
    if (b == kInvalidBase) {
      throw std::invalid_argument(
          std::string("Sequence::from_string: invalid base '") + c + "'");
    }
    seq.push_back(b);
  }
  return seq;
}

Sequence Sequence::from_codes(const std::vector<std::uint8_t>& codes) {
  Sequence seq;
  seq.reserve(codes.size());
  for (std::uint8_t b : codes) {
    if (b > 3) throw std::invalid_argument("Sequence::from_codes: code > 3");
    seq.push_back(b);
  }
  return seq;
}

void Sequence::push_back(std::uint8_t code) {
  if (size_ > std::numeric_limits<Pos>::max() - 1) {
    throw std::length_error("Sequence: > 2^32 - 1 bases unsupported");
  }
  const std::size_t word = size_ >> 5;
  const unsigned shift = static_cast<unsigned>((size_ & 31) * 2);
  if (word == words_.size()) words_.push_back(0);
  words_[word] |= static_cast<std::uint64_t>(code & 3) << shift;
  ++size_;
}

void Sequence::append(const Sequence& other, std::size_t pos, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) push_back(other.base(pos + i));
}

std::uint64_t Sequence::window64(std::size_t i) const noexcept {
  const std::size_t word = i >> 5;
  const unsigned shift = static_cast<unsigned>((i & 31) * 2);
  if (word >= words_.size()) return 0;
  std::uint64_t lo = words_[word] >> shift;
  if (shift != 0 && word + 1 < words_.size()) {
    lo |= words_[word + 1] << (64 - shift);
  }
  return lo;
}

std::string Sequence::to_string() const { return to_string(0, size_); }

std::string Sequence::to_string(std::size_t pos, std::size_t len) const {
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) out.push_back(decode_base(base(pos + i)));
  return out;
}

Sequence Sequence::subsequence(std::size_t pos, std::size_t len) const {
  Sequence out;
  out.reserve(len);
  out.append(*this, pos, len);
  return out;
}

Sequence Sequence::reverse_complement() const {
  Sequence out;
  out.reserve(size_);
  for (std::size_t i = size_; i-- > 0;) out.push_back(complement(base(i)));
  return out;
}

std::vector<std::uint8_t> Sequence::codes() const {
  std::vector<std::uint8_t> out(size_);
  for (std::size_t i = 0; i < size_; ++i) out[i] = base(i);
  return out;
}

std::size_t Sequence::common_prefix(std::size_t i, const Sequence& other,
                                    std::size_t j,
                                    std::size_t max_len) const noexcept {
  max_len = std::min({max_len, size_ > i ? size_ - i : 0,
                      other.size_ > j ? other.size_ - j : 0});
  std::size_t matched = 0;
  while (matched + 32 <= max_len) {
    const std::uint64_t x = window64(i + matched) ^ other.window64(j + matched);
    if (x != 0) {
      return matched + static_cast<std::size_t>(std::countr_zero(x)) / 2;
    }
    matched += 32;
  }
  if (matched < max_len) {
    const std::uint64_t x = window64(i + matched) ^ other.window64(j + matched);
    const std::size_t tail =
        x == 0 ? 32 : static_cast<std::size_t>(std::countr_zero(x)) / 2;
    matched += std::min(tail, max_len - matched);
  }
  return matched;
}

std::size_t Sequence::common_suffix(std::size_t i, const Sequence& other,
                                    std::size_t j,
                                    std::size_t max_len) const noexcept {
  max_len = std::min({max_len, i + 1, j + 1});
  // Backward scan; word-parallel variant would need reversed packing, and
  // leftward expansions are short in practice (bounded by Δs or tile edges),
  // so a straight loop is the right trade-off here.
  std::size_t matched = 0;
  while (matched < max_len &&
         base(i - matched) == other.base(j - matched)) {
    ++matched;
  }
  return matched;
}

bool Sequence::operator==(const Sequence& other) const noexcept {
  if (size_ != other.size_) return false;
  if (size_ == 0) return true;
  const std::size_t full = size_ / 32;
  for (std::size_t w = 0; w < full; ++w) {
    if (words_[w] != other.words_[w]) return false;
  }
  const unsigned rem = static_cast<unsigned>(size_ & 31);
  if (rem != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << (2 * rem)) - 1;
    if ((words_[full] & mask) != (other.words_[full] & mask)) return false;
  }
  return true;
}

}  // namespace gm::seq
