#include "seq/synthetic.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace gm::seq {
namespace {

std::vector<std::uint8_t> random_codes(std::size_t n, util::Xoshiro256& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.bounded(4));
  return v;
}

void point_mutate(std::vector<std::uint8_t>& v, double rate,
                  util::Xoshiro256& rng) {
  if (rate <= 0.0) return;
  for (auto& b : v) {
    if (rng.chance(rate)) {
      b = static_cast<std::uint8_t>((b + 1 + rng.bounded(3)) & 3);
    }
  }
}

}  // namespace

Sequence GenomeModel::generate(std::uint64_t seed) const {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> genome = random_codes(length, rng);

  // Interspersed repeat families.
  auto plant_family = [&](std::size_t flen, unsigned copies, double div) {
    if (flen == 0 || flen >= length) return;
    const std::vector<std::uint8_t> master = random_codes(flen, rng);
    for (unsigned c = 0; c < copies; ++c) {
      std::vector<std::uint8_t> copy = master;
      point_mutate(copy, div, rng);
      const std::size_t at = rng.bounded(length - flen);
      std::copy(copy.begin(), copy.end(),
                genome.begin() + static_cast<std::ptrdiff_t>(at));
    }
  };
  for (unsigned f = 0; f < families; ++f) {
    plant_family(family_length, copies_per_family, copy_divergence);
  }
  const unsigned auto_sine_copies =
      sine_copies != 0
          ? sine_copies
          : std::max<unsigned>(
                2, static_cast<unsigned>(
                       length / (1200 * std::max(1u, sine_families))));
  for (unsigned f = 0; f < sine_families; ++f) {
    plant_family(sine_length, auto_sine_copies, sine_divergence);
  }

  // Tandem repeats.
  for (unsigned t = 0; t < tandem_loci; ++t) {
    if (tandem_motif == 0 || tandem_span >= length) break;
    const std::vector<std::uint8_t> motif = random_codes(tandem_motif, rng);
    const std::size_t at = rng.bounded(length - tandem_span);
    for (std::size_t i = 0; i < tandem_span; ++i) {
      genome[at + i] = motif[i % tandem_motif];
    }
  }

  // Satellite arrays: one shared dinucleotide motif per genome. The count
  // scales with genome length (~one array per 100 kbp, capped) so small
  // sequences do not become satellite-dominated.
  const unsigned arrays_eff = std::min<unsigned>(
      satellite_arrays, static_cast<unsigned>(length / 100000));
  if (arrays_eff > 0 && satellite_len > 0 && length > 4 * satellite_len) {
    const std::uint8_t m0 = static_cast<std::uint8_t>(rng.bounded(4));
    const std::uint8_t m1 = static_cast<std::uint8_t>((m0 + 1 + rng.bounded(3)) & 3);
    for (unsigned a = 0; a < arrays_eff; ++a) {
      const std::size_t at = rng.bounded(length - satellite_len);
      for (std::size_t i = 0; i < satellite_len; ++i) {
        genome[at + i] = (i & 1) ? m1 : m0;
      }
    }
  }

  // Low-complexity runs from a fixed motif set.
  if (microsat_spacing > 0 && microsat_len_mean > 0 &&
      length > 2 * microsat_spacing) {
    static constexpr const char* kMotifs[] = {"A",  "T",  "C",   "G",  "AT",
                                              "CA", "AG", "AAT", "TTG"};
    for (std::size_t at = rng.bounded(microsat_spacing); at + 256 < length;
         at += microsat_spacing / 2 + rng.bounded(microsat_spacing)) {
      const char* motif = kMotifs[rng.bounded(std::size(kMotifs))];
      const std::size_t mlen = std::strlen(motif);
      const std::size_t run =
          microsat_len_mean / 2 + rng.bounded(microsat_len_mean);
      for (std::size_t i = 0; i < run && at + i < length; ++i) {
        genome[at + i] = encode_base(motif[i % mlen]);
      }
    }
  }

  return Sequence::from_codes(genome);
}

Sequence MutationModel::apply(const Sequence& src, std::uint64_t seed) const {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> v = src.codes();
  const std::size_t n = v.size();
  if (n == 0) return Sequence();

  auto seg_len = [&]() {
    const std::size_t len = 1 + rng.bounded(std::max<std::size_t>(1, 2 * segment_mean));
    return std::min(len, std::max<std::size_t>(1, n / 4));
  };

  // Structural variants first so point mutations also touch the moved copies.
  for (unsigned i = 0; i < inversions && n > 2; ++i) {
    const std::size_t len = seg_len();
    if (len >= n) continue;
    const std::size_t at = rng.bounded(n - len);
    // Reverse complement, the biologically meaningful inversion.
    std::reverse(v.begin() + static_cast<std::ptrdiff_t>(at),
                 v.begin() + static_cast<std::ptrdiff_t>(at + len));
    for (std::size_t j = 0; j < len; ++j) v[at + j] = complement(v[at + j]);
  }
  for (unsigned i = 0; i < translocations && n > 2; ++i) {
    const std::size_t len = seg_len();
    if (2 * len >= n) continue;
    const std::size_t from = rng.bounded(n - len);
    const std::size_t to = rng.bounded(n - len);
    std::vector<std::uint8_t> seg(v.begin() + static_cast<std::ptrdiff_t>(from),
                                  v.begin() + static_cast<std::ptrdiff_t>(from + len));
    std::copy(seg.begin(), seg.end(), v.begin() + static_cast<std::ptrdiff_t>(to));
  }
  for (unsigned i = 0; i < duplications && n > 2; ++i) {
    const std::size_t len = seg_len();
    if (len >= n) continue;
    const std::size_t from = rng.bounded(n - len);
    std::vector<std::uint8_t> seg(v.begin() + static_cast<std::ptrdiff_t>(from),
                                  v.begin() + static_cast<std::ptrdiff_t>(from + len));
    const std::size_t at = rng.bounded(n);
    v.insert(v.begin() + static_cast<std::ptrdiff_t>(at), seg.begin(), seg.end());
  }

  // Point mutations and indels in one left-to-right pass.
  std::vector<std::uint8_t> out;
  out.reserve(v.size() + v.size() / 16);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (indel_rate > 0.0 && rng.chance(indel_rate)) {
      std::size_t len = 1;
      while (rng.chance(indel_extend)) ++len;
      if (rng.chance(0.5)) {
        i += len - 1;  // deletion: skip bases (loop ++ consumes one)
        continue;
      }
      for (std::size_t j = 0; j < len; ++j) {
        out.push_back(static_cast<std::uint8_t>(rng.bounded(4)));
      }
    }
    std::uint8_t b = v[i];
    if (snp_rate > 0.0 && rng.chance(snp_rate)) {
      b = static_cast<std::uint8_t>((b + 1 + rng.bounded(3)) & 3);
    }
    out.push_back(b);
  }

  if (target_length != 0) {
    if (out.size() > target_length) {
      out.resize(target_length);
    } else {
      while (out.size() < target_length) {
        out.push_back(static_cast<std::uint8_t>(rng.bounded(4)));
      }
    }
  }
  return Sequence::from_codes(out);
}

namespace {

struct Preset {
  const char* name;
  std::size_t ancestor_len;   // shared ancestor length
  std::size_t ref_len;        // target reference length
  std::size_t query_len;      // target query length
  double ref_div;             // SNP divergence ancestor -> reference
  double query_div;           // SNP divergence ancestor -> query
  bool related;               // false = independent genomes (dmel vs ecoli)
};

// Lengths are ~1/64 of the paper's Table II (Mbp -> tens of kbp .. Mbp),
// chosen so every benchmark config completes in minutes on one core while
// preserving the relative size ordering of the four pairs.
constexpr Preset kPresets[] = {
    // mouse chr1 (195.75 Mbp) vs human chr2 (242.97 Mbp): diverged mammals
    // (~6% effective divergence in alignable regions).
    {"chr1m_s/chr2h_s", 3200000, 3058593, 3796406, 0.03, 0.03, true},
    // chimp X (133.55) vs human X (154.12): closely related.
    {"chrXc_s/chrXh_s", 2200000, 2086718, 2408125, 0.005, 0.005, true},
    // D. melanogaster 2L (23.30) vs E. coli K12 (4.71): unrelated genomes.
    {"dmel_s/ecoli_s", 364062, 364062, 73593, 0.0, 0.0, false},
    // yeast chrXII (1.09) vs yeast chrI: same species, high identity.
    {"chrXII_s/chrI_s", 131072, 131072, 262144, 0.002, 0.004, true},
};

}  // namespace

std::vector<std::string> dataset_presets() {
  std::vector<std::string> names;
  for (const auto& p : kPresets) names.emplace_back(p.name);
  return names;
}

DatasetPair make_dataset(const std::string& preset_name, std::uint64_t seed,
                         std::size_t scale_divisor) {
  const Preset* preset = nullptr;
  for (const auto& p : kPresets) {
    if (preset_name == p.name) {
      preset = &p;
      break;
    }
  }
  if (preset == nullptr) {
    throw std::invalid_argument("make_dataset: unknown preset " + preset_name);
  }
  if (scale_divisor == 0) scale_divisor = 1;

  DatasetPair pair;
  pair.name = preset->name;

  GenomeModel ancestor_model;
  ancestor_model.length = std::max<std::size_t>(1024, preset->ancestor_len / scale_divisor);
  // Hold repeat *density* constant across scales (~30% interspersed repeat
  // bases plus tandem loci), approximating real chromosomes' repeat content;
  // this drives the Fig. 6 heavy tail and the Fig. 7 load-imbalance effect.
  ancestor_model.families = 16;
  ancestor_model.copies_per_family = std::max<unsigned>(
      4, static_cast<unsigned>(ancestor_model.length * 32 / 1000000));
  ancestor_model.tandem_loci = std::max<unsigned>(
      2, static_cast<unsigned>(ancestor_model.length * 16 / 1000000));

  if (preset->related) {
    const Sequence ancestor = ancestor_model.generate(seed);
    MutationModel to_ref;
    to_ref.snp_rate = preset->ref_div;
    to_ref.indel_rate = preset->ref_div / 10.0;
    to_ref.target_length = std::max<std::size_t>(1024, preset->ref_len / scale_divisor);
    MutationModel to_query;
    to_query.snp_rate = preset->query_div;
    to_query.indel_rate = preset->query_div / 10.0;
    to_query.target_length = std::max<std::size_t>(1024, preset->query_len / scale_divisor);
    pair.reference = to_ref.apply(ancestor, seed * 2 + 1);
    pair.query = to_query.apply(ancestor, seed * 2 + 2);
  } else {
    GenomeModel query_model = ancestor_model;
    query_model.length = std::max<std::size_t>(1024, preset->query_len / scale_divisor);
    ancestor_model.length = std::max<std::size_t>(1024, preset->ref_len / scale_divisor);
    pair.reference = ancestor_model.generate(seed);
    pair.query = query_model.generate(seed + 7919);
  }
  return pair;
}

}  // namespace gm::seq
