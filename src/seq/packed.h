// Word-parallel longest-common-extension (LCE) primitives over the 2-bit
// packed sequence codec, plus the PackedSeq view that exposes them to the
// extension hot loops (match kernels, host stitcher, CPU finders).
//
// The decisive constant-factor win for MEM extension (copMEM, Grabowski &
// Bieniecki 2018) is comparing compactly coded genomes a machine word at a
// time: one 64-bit XOR covers 32 bases, and a count-trailing/leading-zeros
// instruction locates the first mismatching base inside the word. Both
// directions are word-parallel here:
//
//  * lce_forward  — common prefix of a[i..] and b[j..]: XOR of forward
//    windows, countr_zero.
//  * lce_backward — common suffix of a[..i] and b[..j] (inclusive ends):
//    XOR of *backward* windows (the 32 bases ending at a position, highest
//    bits = latest base, read straight out of the same forward-packed words),
//    countl_zero. No reversed shadow copy is needed.
//
// Invalid (non-ACGT) positions are stored as code 0 in the packed words with
// a bit in the validity side-mask (see sequence.h). LCE compares raw codes
// only — exactly like the byte-at-a-time reference loop — so the word and
// scalar paths return bit-identical lengths and the project-wide mask policy
// (clip_invalid_bases post-passes) is unchanged.
//
// The byte-at-a-time reference loops are kept callable behind a runtime flag
// (set_lce_mode) so bench_host_wall can measure the word-parallel win
// self-relatively on any machine; see docs/PERFORMANCE.md.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>

#include "seq/sequence.h"

namespace gm::seq {

/// Which implementation the lce_forward/lce_backward dispatchers (and thus
/// Sequence::common_prefix/common_suffix) use. kWord is the default; kScalar
/// is the pre-optimization byte-at-a-time reference, kept for self-relative
/// benchmarking and differential tests. Both return identical values.
enum class LceMode : std::uint8_t { kWord, kScalar };

void set_lce_mode(LceMode mode) noexcept;
LceMode lce_mode() noexcept;

namespace packed_detail {

/// 64-bit window of the (up to) 32 bases *ending* at position i, inclusive:
/// base i occupies the top 2 bits, base i-1 the next 2, and so on. For
/// i >= 31 this is exactly the forward window starting at i-31; for earlier
/// positions the missing history is zero-shifted out of comparison range
/// (callers cap the matched length at i+1 anyway).
inline std::uint64_t window64_back(const Sequence& s, std::size_t i) noexcept {
  if (i >= 31) return s.window64(i - 31);
  return s.window64(0) << ((31 - i) * 2);
}

}  // namespace packed_detail

/// Word-parallel common prefix of a[i..] and b[j..], capped at max_len
/// (and at both sequence ends): 32 bases per XOR + countr_zero.
inline std::size_t lce_forward_word(const Sequence& a, std::size_t i,
                                    const Sequence& b, std::size_t j,
                                    std::size_t max_len) noexcept {
  max_len = std::min({max_len, a.size() > i ? a.size() - i : 0,
                      b.size() > j ? b.size() - j : 0});
  std::size_t matched = 0;
  while (matched + 32 <= max_len) {
    const std::uint64_t x = a.window64(i + matched) ^ b.window64(j + matched);
    if (x != 0) {
      return matched + static_cast<std::size_t>(std::countr_zero(x)) / 2;
    }
    matched += 32;
  }
  if (matched < max_len) {
    const std::uint64_t x = a.window64(i + matched) ^ b.window64(j + matched);
    const std::size_t tail =
        x == 0 ? 32 : static_cast<std::size_t>(std::countr_zero(x)) / 2;
    matched += std::min(tail, max_len - matched);
  }
  return matched;
}

/// Word-parallel common suffix of a[..i] and b[..j] (inclusive end
/// positions), capped at max_len: 32 bases per XOR + countl_zero over
/// backward windows. Used for leftward MEM expansion.
inline std::size_t lce_backward_word(const Sequence& a, std::size_t i,
                                     const Sequence& b, std::size_t j,
                                     std::size_t max_len) noexcept {
  max_len = std::min({max_len, i + 1, j + 1});
  std::size_t matched = 0;
  while (matched + 32 <= max_len) {
    const std::uint64_t x = packed_detail::window64_back(a, i - matched) ^
                            packed_detail::window64_back(b, j - matched);
    if (x != 0) {
      return matched + static_cast<std::size_t>(std::countl_zero(x)) / 2;
    }
    matched += 32;
  }
  if (matched < max_len) {
    const std::uint64_t x = packed_detail::window64_back(a, i - matched) ^
                            packed_detail::window64_back(b, j - matched);
    const std::size_t tail =
        x == 0 ? 32 : static_cast<std::size_t>(std::countl_zero(x)) / 2;
    matched += std::min(tail, max_len - matched);
  }
  return matched;
}

/// Byte-at-a-time reference for lce_forward_word (the pre-optimization
/// extension loop). Same result, ~32x more comparisons.
inline std::size_t lce_forward_scalar(const Sequence& a, std::size_t i,
                                      const Sequence& b, std::size_t j,
                                      std::size_t max_len) noexcept {
  max_len = std::min({max_len, a.size() > i ? a.size() - i : 0,
                      b.size() > j ? b.size() - j : 0});
  std::size_t matched = 0;
  while (matched < max_len && a.base(i + matched) == b.base(j + matched)) {
    ++matched;
  }
  return matched;
}

/// Byte-at-a-time reference for lce_backward_word.
inline std::size_t lce_backward_scalar(const Sequence& a, std::size_t i,
                                       const Sequence& b, std::size_t j,
                                       std::size_t max_len) noexcept {
  max_len = std::min({max_len, i + 1, j + 1});
  std::size_t matched = 0;
  while (matched < max_len && a.base(i - matched) == b.base(j - matched)) {
    ++matched;
  }
  return matched;
}

/// Mode-dispatching LCE: the entry points every extension hot loop (and
/// Sequence::common_prefix/common_suffix) routes through.
inline std::size_t lce_forward(const Sequence& a, std::size_t i,
                               const Sequence& b, std::size_t j,
                               std::size_t max_len) noexcept {
  return lce_mode() == LceMode::kScalar ? lce_forward_scalar(a, i, b, j, max_len)
                                        : lce_forward_word(a, i, b, j, max_len);
}

inline std::size_t lce_backward(const Sequence& a, std::size_t i,
                                const Sequence& b, std::size_t j,
                                std::size_t max_len) noexcept {
  return lce_mode() == LceMode::kScalar
             ? lce_backward_scalar(a, i, b, j, max_len)
             : lce_backward_word(a, i, b, j, max_len);
}

/// Non-owning view over a Sequence's 2-bit packed words: the codec handle
/// the hot loops hold so window extraction and LCE calls carry no per-call
/// re-derivation. The viewed Sequence must outlive the view.
class PackedSeq {
 public:
  explicit PackedSeq(const Sequence& s) noexcept : seq_(&s) {}

  const Sequence& sequence() const noexcept { return *seq_; }
  std::size_t size() const noexcept { return seq_->size(); }

  /// Forward window: up to 32 bases starting at i, base i in the low bits.
  std::uint64_t window(std::size_t i) const noexcept {
    return seq_->window64(i);
  }
  /// Backward window: up to 32 bases ending at i, base i in the top bits.
  std::uint64_t window_back(std::size_t i) const noexcept {
    return packed_detail::window64_back(*seq_, i);
  }

  std::uint8_t base(std::size_t i) const noexcept { return seq_->base(i); }
  bool valid(std::size_t i) const noexcept { return seq_->valid(i); }

  /// Common prefix of (*this)[i..] and other[j..] (mode-dispatching).
  std::size_t lce_forward(std::size_t i, const PackedSeq& other, std::size_t j,
                          std::size_t max_len) const noexcept {
    return seq::lce_forward(*seq_, i, *other.seq_, j, max_len);
  }
  /// Common suffix of (*this)[..i] and other[..j] (inclusive ends).
  std::size_t lce_backward(std::size_t i, const PackedSeq& other, std::size_t j,
                           std::size_t max_len) const noexcept {
    return seq::lce_backward(*seq_, i, *other.seq_, j, max_len);
  }

 private:
  const Sequence* seq_;
};

}  // namespace gm::seq
