// FASTA reading/writing with an explicit policy for non-ACGT characters.
//
// The genomic files the paper uses contain N runs and IUPAC codes; the tools
// it compares against treat them as match breakers. Our 2-bit Sequence has
// no room for a fifth symbol, so the reader exposes three policies and
// records how many characters were touched, keeping the substitution
// auditable.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "seq/sequence.h"

namespace gm::seq {

enum class NonAcgtPolicy {
  kReject,     ///< throw std::runtime_error on the first non-ACGT character
  kRandomize,  ///< replace with a deterministic pseudo-random base (seeded
               ///< by record index and offset) — breaks spurious matches the
               ///< way real tools' N handling does, while staying in Σ
  kSkip,       ///< drop the character (shifts coordinates; for quick looks)
};

struct FastaRecord {
  std::string name;            ///< header text after '>'
  Sequence sequence;
  std::uint64_t non_acgt = 0;  ///< characters affected by the policy
};

/// Parses every record in the stream. Throws on malformed input (sequence
/// data before any header) or on policy violations.
std::vector<FastaRecord> read_fasta(std::istream& in,
                                    NonAcgtPolicy policy = NonAcgtPolicy::kRandomize);

std::vector<FastaRecord> read_fasta_file(const std::string& path,
                                         NonAcgtPolicy policy = NonAcgtPolicy::kRandomize);

/// Writes one record wrapped at `width` columns.
void write_fasta(std::ostream& out, const std::string& name,
                 const Sequence& seq, std::size_t width = 70);

void write_fasta_file(const std::string& path, const std::string& name,
                      const Sequence& seq, std::size_t width = 70);

}  // namespace gm::seq
