// FASTA reading/writing with an explicit policy for non-ACGT characters.
//
// The genomic files the paper uses contain N runs and IUPAC codes; the tools
// it compares against treat them as match breakers. The default policy
// (kMask) stores such characters as invalid bases in the Sequence validity
// mask, and the project-wide rule is that an invalid base matches nothing:
// it terminates matches and never appears inside a MEM (docs/TESTING.md).
// Legacy policies remain for auditing and quick looks; the reader records
// how many characters were touched either way.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "seq/sequence.h"

namespace gm::seq {

enum class NonAcgtPolicy {
  kMask,       ///< store as an invalid (masked) base: matches nothing, so it
               ///< terminates MEMs exactly like real tools' N handling —
               ///< the project default
  kReject,     ///< throw std::runtime_error on the first non-ACGT character
  kRandomize,  ///< replace with a deterministic pseudo-random base (seeded
               ///< by record index and offset) — breaks spurious matches
               ///< only probabilistically; kept for legacy comparisons
  kSkip,       ///< drop the character (shifts coordinates; for quick looks)
};

struct FastaRecord {
  std::string name;            ///< header text after '>'
  Sequence sequence;
  std::uint64_t non_acgt = 0;  ///< characters affected by the policy
};

/// Parses every record in the stream. Throws on malformed input (sequence
/// data before any header) or on policy violations.
std::vector<FastaRecord> read_fasta(std::istream& in,
                                    NonAcgtPolicy policy = NonAcgtPolicy::kMask);

std::vector<FastaRecord> read_fasta_file(const std::string& path,
                                         NonAcgtPolicy policy = NonAcgtPolicy::kMask);

/// Writes one record wrapped at `width` columns.
void write_fasta(std::ostream& out, const std::string& name,
                 const Sequence& seq, std::size_t width = 70);

void write_fasta_file(const std::string& path, const std::string& name,
                      const Sequence& seq, std::size_t width = 70);

}  // namespace gm::seq
