#include "seq/packed.h"

#include <atomic>

namespace gm::seq {
namespace {

// Process-wide LCE implementation switch. Relaxed is enough: the flag only
// selects between two implementations that return identical values, so a
// racing reader at worst times the other path.
std::atomic<LceMode> g_lce_mode{LceMode::kWord};

}  // namespace

void set_lce_mode(LceMode mode) noexcept {
  g_lce_mode.store(mode, std::memory_order_relaxed);
}

LceMode lce_mode() noexcept {
  return g_lce_mode.load(std::memory_order_relaxed);
}

}  // namespace gm::seq
