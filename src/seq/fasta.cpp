#include "seq/fasta.h"

#include <cctype>
#include <fstream>
#include <stdexcept>

#include "util/rng.h"

namespace gm::seq {

std::vector<FastaRecord> read_fasta(std::istream& in, NonAcgtPolicy policy) {
  std::vector<FastaRecord> records;
  std::string line;
  util::Xoshiro256 rng(0x5EEDFA57Aull);
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      records.push_back({});
      records.back().name = line.substr(1);
      // Fresh deterministic stream per record so record order is the only
      // input to randomization.
      rng = util::Xoshiro256(0x5EEDFA57Aull + records.size());
      continue;
    }
    if (line[0] == ';') continue;  // legacy FASTA comment
    if (records.empty()) {
      throw std::runtime_error("read_fasta: sequence data before any '>' header");
    }
    FastaRecord& rec = records.back();
    for (char c : line) {
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      const std::uint8_t b = encode_base(c);
      if (b != kInvalidBase) {
        rec.sequence.push_back(b);
        continue;
      }
      ++rec.non_acgt;
      switch (policy) {
        case NonAcgtPolicy::kMask:
          rec.sequence.push_back_invalid();
          break;
        case NonAcgtPolicy::kReject:
          throw std::runtime_error(
              std::string("read_fasta: non-ACGT character '") + c +
              "' in record " + rec.name);
        case NonAcgtPolicy::kRandomize:
          rec.sequence.push_back(static_cast<std::uint8_t>(rng.bounded(4)));
          break;
        case NonAcgtPolicy::kSkip:
          break;
      }
    }
  }
  return records;
}

std::vector<FastaRecord> read_fasta_file(const std::string& path,
                                         NonAcgtPolicy policy) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_fasta_file: cannot open " + path);
  return read_fasta(in, policy);
}

void write_fasta(std::ostream& out, const std::string& name,
                 const Sequence& seq, std::size_t width) {
  out << '>' << name << '\n';
  for (std::size_t i = 0; i < seq.size(); i += width) {
    const std::size_t len = std::min(width, seq.size() - i);
    out << seq.to_string(i, len) << '\n';
  }
}

void write_fasta_file(const std::string& path, const std::string& name,
                      const Sequence& seq, std::size_t width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_fasta_file: cannot open " + path);
  write_fasta(out, name, seq, width);
}

}  // namespace gm::seq
