// SIMT simulator tests: memory accounting, kernel execution semantics
// (barriers, collectives, atomics), device-wide scan, and the cost model's
// load-imbalance sensitivity (the property Fig. 7 depends on).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "simt/arena.h"
#include "simt/buffer.h"
#include "simt/executor.h"
#include "simt/primitives.h"

namespace gm {
namespace {

using simt::Device;
using simt::DeviceSpec;
using simt::KernelTask;
using simt::LaunchConfig;
using simt::NoShared;
using simt::ThreadCtx;

TEST(Device, TracksAllocationAndOom) {
  DeviceSpec spec = DeviceSpec::k20c();
  spec.global_mem_bytes = 1024;
  Device dev(spec);
  {
    simt::Buffer<std::uint32_t> a(dev, 128);  // 512 bytes
    EXPECT_EQ(dev.bytes_in_use(), 512u);
    EXPECT_THROW(simt::Buffer<std::uint32_t>(dev, 200),
                 simt::DeviceOutOfMemory);
    simt::Buffer<std::uint32_t> b(dev, 128);
    EXPECT_EQ(dev.bytes_in_use(), 1024u);
    EXPECT_EQ(dev.peak_bytes(), 1024u);
  }
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  EXPECT_EQ(dev.peak_bytes(), 1024u);
}

TEST(Device, SpecsAreDistinct) {
  const DeviceSpec k20 = DeviceSpec::k20c();
  const DeviceSpec k40 = DeviceSpec::k40();
  EXPECT_LT(k20.sm_count, k40.sm_count);
  EXPECT_LT(k20.global_mem_bytes, k40.global_mem_bytes);
  EXPECT_EQ(k20.sm_count, 13u);       // the paper's card
  EXPECT_EQ(k20.cores_per_sm, 192u);  // 2496 CUDA cores total
}

KernelTask saxpy_kernel(ThreadCtx& ctx, NoShared&, std::span<float> y,
                        std::span<const float> x, float a) {
  const std::uint64_t i = ctx.global_id();
  if (i < y.size()) {
    y[i] = a * x[i] + y[i];
    ctx.alu(2);
    ctx.gmem(12);
  }
  co_return;
}

TEST(Executor, GridCoversAllThreads) {
  Device dev;
  std::vector<float> y(1000, 1.0f), x(1000, 2.0f);
  LaunchConfig cfg;
  cfg.grid = 8;
  cfg.block = 128;
  const auto stats = simt::launch<NoShared>(
      dev, cfg, saxpy_kernel, std::span<float>(y),
      std::span<const float>(x), 3.0f);
  for (float v : y) EXPECT_FLOAT_EQ(v, 7.0f);
  EXPECT_GT(stats.modeled_seconds, 0.0);
  EXPECT_EQ(dev.ledger().kernels_launched(), 1u);
}

struct PingPongShared {
  std::vector<int> slots;
};

KernelTask pingpong_kernel(ThreadCtx& ctx, PingPongShared& smem,
                           std::span<int> out) {
  const std::uint32_t tid = ctx.thread_id();
  const std::uint32_t n = ctx.block_dim();
  if (tid == 0) smem.slots.assign(n, 0);
  co_await ctx.sync();
  smem.slots[tid] = static_cast<int>(tid);
  co_await ctx.sync();
  // Read the neighbour's value — only correct if the barrier worked.
  out[tid] = smem.slots[(tid + 1) % n];
  co_return;
}

TEST(Executor, BarriersOrderSharedMemory) {
  Device dev;
  std::vector<int> out(64, -1);
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.block = 64;
  simt::launch<PingPongShared>(dev, cfg, pingpong_kernel, std::span<int>(out));
  for (std::uint32_t t = 0; t < 64; ++t) {
    EXPECT_EQ(out[t], static_cast<int>((t + 1) % 64));
  }
}

KernelTask scan_kernel(ThreadCtx& ctx, NoShared&, std::span<std::uint64_t> ex,
                       std::span<std::uint64_t> tot) {
  const std::uint32_t tid = ctx.thread_id();
  const simt::ScanResult r = co_await ctx.scan_add(tid + 1);
  ex[tid] = r.exclusive;
  tot[tid] = r.total;
  co_return;
}

TEST(Executor, BlockScanCollective) {
  Device dev;
  const std::uint32_t n = 128;
  std::vector<std::uint64_t> ex(n), tot(n);
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.block = n;
  simt::launch<NoShared>(dev, cfg, scan_kernel, std::span<std::uint64_t>(ex),
                         std::span<std::uint64_t>(tot));
  std::uint64_t expect = 0;
  for (std::uint32_t t = 0; t < n; ++t) {
    EXPECT_EQ(ex[t], expect);
    expect += t + 1;
    EXPECT_EQ(tot[t], static_cast<std::uint64_t>(n) * (n + 1) / 2);
  }
}

KernelTask atomic_kernel(ThreadCtx& ctx, NoShared&,
                         std::span<std::uint32_t> counter) {
  simt::atomic_fetch_add(&counter[0], 1u);
  ctx.atomic_op();
  co_return;
}

TEST(Executor, DeviceWideAtomics) {
  Device dev;
  std::vector<std::uint32_t> counter(1, 0);
  LaunchConfig cfg;
  cfg.grid = 32;
  cfg.block = 64;
  simt::launch<NoShared>(dev, cfg, atomic_kernel,
                         std::span<std::uint32_t>(counter));
  EXPECT_EQ(counter[0], 32u * 64u);
}

KernelTask divergent_kernel(ThreadCtx& ctx, NoShared&) {
  if (ctx.thread_id() % 2 == 0) {
    co_await ctx.sync();
  } else {
    co_await ctx.scan_add(1);
  }
}

TEST(Executor, DivergentCollectiveDetected) {
  Device dev;
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.block = 4;
  EXPECT_THROW(simt::launch<NoShared>(dev, cfg, divergent_kernel),
               std::logic_error);
}

KernelTask throwing_kernel(ThreadCtx& ctx, NoShared&) {
  if (ctx.thread_id() == 3) throw std::runtime_error("kernel bug");
  co_return;
}

TEST(Executor, KernelExceptionsPropagate) {
  Device dev;
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.block = 8;
  EXPECT_THROW(simt::launch<NoShared>(dev, cfg, throwing_kernel),
               std::runtime_error);
}

TEST(Executor, RejectsOversizedBlock) {
  Device dev;
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.block = 4096;  // > max_threads_per_block
  EXPECT_THROW(simt::launch<NoShared>(dev, cfg, throwing_kernel),
               std::invalid_argument);
}

// --- frame lifetime & arena -------------------------------------------------

std::atomic<int> g_live_probes{0};

/// RAII probe held in a coroutine frame: counts frames whose locals are
/// still alive, so tests can prove every frame was destroyed.
struct FrameProbe {
  FrameProbe() { g_live_probes.fetch_add(1); }
  ~FrameProbe() { g_live_probes.fetch_sub(1); }
  FrameProbe(const FrameProbe&) = delete;
  FrameProbe& operator=(const FrameProbe&) = delete;
};

KernelTask probed_throwing_kernel(ThreadCtx& ctx, NoShared&) {
  const FrameProbe probe;
  co_await ctx.sync();  // every sibling reaches the barrier, then...
  if (ctx.thread_id() == 3) throw std::runtime_error("kernel bug");
  co_await ctx.sync();  // ...the others are parked here when thread 3 throws
}

TEST(Executor, ThrowingKernelDestroysSuspendedSiblingFrames) {
  ASSERT_EQ(g_live_probes.load(), 0);
  Device dev;
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.block = 8;
  EXPECT_THROW(simt::launch<NoShared>(dev, cfg, probed_throwing_kernel),
               std::runtime_error);
  // All 8 frames — including the 7 siblings suspended mid-kernel — must be
  // gone by the time the exception reaches the caller.
  EXPECT_EQ(g_live_probes.load(), 0);
}

KernelTask probed_plain_kernel(ThreadCtx& ctx, NoShared&) {
  const FrameProbe probe;
  co_await ctx.sync();
}

TEST(Executor, RunBlockRecyclesArenaFrames) {
  // Drive run_block directly on this thread so the arena observed is the
  // one the frames come from.
  auto& arena = simt::FrameArena::local();
  const DeviceSpec spec = DeviceSpec::k20c();
  NoShared smem;
  for (int round = 0; round < 3; ++round) {
    const auto r =
        simt::run_block(spec, 0, 1, 64, [&](ThreadCtx& ctx) -> KernelTask {
          return probed_plain_kernel(ctx, smem);
        });
    EXPECT_GE(r.phases, 2u);
    // After each block: every frame destroyed, arena fully rewound.
    EXPECT_EQ(g_live_probes.load(), 0);
    EXPECT_EQ(arena.live(), 0u);
  }
  // Reuse keeps one warm chunk, not per-frame heap traffic.
  EXPECT_GT(arena.reserved_bytes(), 0u);
}

TEST(Executor, ArenaRecyclesAfterThrowToo) {
  auto& arena = simt::FrameArena::local();
  const DeviceSpec spec = DeviceSpec::k20c();
  NoShared smem;
  EXPECT_THROW(
      simt::run_block(spec, 0, 1, 8, [&](ThreadCtx& ctx) -> KernelTask {
        return probed_throwing_kernel(ctx, smem);
      }),
      std::runtime_error);
  EXPECT_EQ(g_live_probes.load(), 0);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(Primitives, DeviceScanMatchesStd) {
  Device dev;
  for (std::size_t n : {1u, 100u, 16384u, 16385u, 100000u}) {
    simt::Buffer<std::uint32_t> data(dev, n);
    std::vector<std::uint32_t> host(n);
    for (std::size_t i = 0; i < n; ++i) {
      host[i] = static_cast<std::uint32_t>((i * 2654435761u) % 7);
      data[i] = host[i];
    }
    simt::device_inclusive_scan(dev, data.span());
    std::partial_sum(host.begin(), host.end(), host.begin());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(data[i], host[i]) << "n=" << n << " i=" << i;
    }
  }
}

// --- cost model -------------------------------------------------------------

KernelTask imbalance_kernel(ThreadCtx& ctx, NoShared&, std::uint64_t total,
                            bool balanced) {
  const std::uint32_t tid = ctx.thread_id();
  if (balanced) {
    ctx.alu(total / ctx.block_dim());
  } else if (tid == 0) {
    ctx.alu(total);  // all work on one lane
  }
  co_await ctx.sync();
  co_return;
}

TEST(PerfModel, ImbalanceCostsMoreThanBalance) {
  // Same total work; the lock-step max-over-lanes term must make the
  // imbalanced variant far slower — the effect the paper's load-balancing
  // heuristic (Fig. 7) exploits.
  Device dev_bal, dev_imb;
  LaunchConfig cfg;
  cfg.grid = 1;
  cfg.block = 256;
  const auto bal = simt::launch<NoShared>(dev_bal, cfg, imbalance_kernel,
                                          std::uint64_t{1} << 20, true);
  const auto imb = simt::launch<NoShared>(dev_imb, cfg, imbalance_kernel,
                                          std::uint64_t{1} << 20, false);
  EXPECT_GT(imb.modeled_seconds, 2.0 * bal.modeled_seconds);
}

TEST(PerfModel, MoreBlocksMoreTime) {
  Device dev;
  std::vector<double> one{1e6};
  std::vector<double> many(400, 1e6);
  const double t1 = simt::launch_seconds(dev.spec(), one, 0);
  const double tn = simt::launch_seconds(dev.spec(), many, 0);
  EXPECT_GT(tn, t1);
  // A grid smaller than one wave is bounded by its slowest block.
  std::vector<double> wave(4, 1e6);
  EXPECT_NEAR(simt::launch_seconds(dev.spec(), wave, 0), t1, 1e-9);
}

TEST(PerfModel, K40BeatsK20OnSameWork) {
  std::vector<double> blocks(1000, 5e5);
  const double k20 = simt::launch_seconds(DeviceSpec::k20c(), blocks, 0);
  const double k40 = simt::launch_seconds(DeviceSpec::k40(), blocks, 0);
  EXPECT_LT(k40, k20);
}

TEST(Ledger, SnapshotRollback) {
  Device dev;
  dev.ledger().add_kernel_seconds(1.0);
  const auto snap = dev.ledger().snapshot();
  dev.ledger().add_kernel_seconds(5.0);
  dev.ledger().add_transfer_seconds(2.0);
  dev.ledger().rollback(snap);
  EXPECT_DOUBLE_EQ(dev.ledger().kernel_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(dev.ledger().transfer_seconds(), 0.0);
  EXPECT_EQ(dev.ledger().kernels_launched(), 1u);  // one launch pre-snapshot
}

TEST(Buffer, UploadDownloadAccountTransfers) {
  Device dev;
  simt::Buffer<std::uint32_t> buf(dev, 1000);
  std::vector<std::uint32_t> host(1000, 7);
  buf.upload(host);
  const auto back = buf.download(1000);
  EXPECT_EQ(back, host);
  EXPECT_GT(dev.ledger().transfer_seconds(), 0.0);
  buf.zero();
  EXPECT_EQ(buf[500], 0u);
}

}  // namespace
}  // namespace gm
