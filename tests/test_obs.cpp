// Observability layer tests: span recording across clock domains, the
// Chrome-trace exporter, metrics registry semantics, and thread safety of
// both under the same parallel substrate the pipeline uses.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "util/parallel.h"

namespace gm {
namespace {

/// Every test runs against the process-global registry; this guard gives
/// each one a clean, enabled registry and restores the disabled default.
class ObsTestGuard {
 public:
  ObsTestGuard() {
    obs::Registry::global().reset();
    obs::Registry::global().set_enabled(true);
  }
  ~ObsTestGuard() {
    obs::Registry::global().set_enabled(false);
    obs::Registry::global().reset();
  }
};

TEST(Trace, SpanNestingRecordsContainedIntervals) {
  ObsTestGuard guard;
  {
    obs::Span outer("outer", "stage");
    outer.attr("k", std::string("v"));
    {
      obs::Span inner("inner", "stage");
    }
  }
  const auto evs = obs::Registry::global().trace().events();
  ASSERT_EQ(evs.size(), 2u);
  // RAII order: the inner span finishes (records) first.
  EXPECT_EQ(evs[0].name, "inner");
  EXPECT_EQ(evs[1].name, "outer");
  // The outer interval contains the inner one.
  EXPECT_LE(evs[1].start_us, evs[0].start_us);
  EXPECT_GE(evs[1].start_us + evs[1].duration_us,
            evs[0].start_us + evs[0].duration_us);
  EXPECT_EQ(evs[0].clock, obs::Clock::kWall);
}

TEST(Trace, ClockDomainsStaySeparate) {
  ObsTestGuard guard;
  { obs::Span wall("host-work", "pipeline"); }
  obs::record_modeled_span("kernel-x", "kernel", 1.5, 0.25, /*device=*/2);
  const auto evs = obs::Registry::global().trace().events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].clock, obs::Clock::kWall);
  EXPECT_EQ(evs[1].clock, obs::Clock::kModeled);
  EXPECT_DOUBLE_EQ(evs[1].start_us, 1.5e6);   // ledger seconds -> us
  EXPECT_DOUBLE_EQ(evs[1].duration_us, 0.25e6);
  EXPECT_EQ(evs[1].device, 2u);

  // The exporter puts the domains on different tracks: wall on pid 0,
  // modeled device 2 on pid 3.
  std::ostringstream os;
  obs::Registry::global().trace().write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\":\"host-work\",\"cat\":\"pipeline\""),
            std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("device 2 (modeled)"), std::string::npos);
  EXPECT_NE(json.find("host (wall clock)"), std::string::npos);
}

TEST(Trace, ChromeJsonGolden) {
  ObsTestGuard guard;
  // Power-of-two seconds so the seconds -> microseconds conversion is exact
  // and the golden string is deterministic.
  obs::record_modeled_span("match", "kernel", 0.25, 0.125, 0,
                           {{"grid", std::uint64_t{8}},
                            {"occupancy", 0.5},
                            {"note", std::string("a\"b")}});
  std::ostringstream os;
  obs::Registry::global().trace().write_chrome_json(os);
  EXPECT_EQ(os.str(),
            "{\"traceEvents\":["
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
            "\"args\":{\"name\":\"device 0 (modeled)\"}},"
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
            "\"args\":{\"name\":\"serial\"}},"
            "{\"name\":\"match\",\"cat\":\"kernel\",\"ph\":\"X\","
            "\"ts\":250000,\"dur\":125000,\"pid\":1,\"tid\":0,"
            "\"args\":{\"grid\":8,\"occupancy\":0.5,\"note\":\"a\\\"b\"}}"
            "],\"displayTimeUnit\":\"ms\"}");
}

TEST(Trace, TruncateDropsEventsAfterMark) {
  ObsTestGuard guard;
  obs::TraceRecorder& trace = obs::Registry::global().trace();
  obs::record_modeled_span("keep", "kernel", 0.0, 1.0, 0);
  const std::size_t mark = trace.size();
  obs::record_modeled_span("abandoned-1", "kernel", 1.0, 1.0, 0);
  obs::record_modeled_span("abandoned-2", "kernel", 2.0, 1.0, 0);
  trace.truncate(mark);
  const auto evs = trace.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "keep");
}

TEST(Trace, DisabledRegistryRecordsNothing) {
  obs::Registry::global().reset();
  obs::Registry::global().set_enabled(false);
  {
    obs::Span span("invisible", "stage");
    span.attr("k", std::uint64_t{1});
    EXPECT_FALSE(span.armed());
  }
  EXPECT_EQ(obs::Registry::global().trace().size(), 0u);
}

TEST(Metrics, CountersGaugesDistributions) {
  ObsTestGuard guard;
  obs::Metrics& m = obs::Registry::global().metrics();
  m.counter("events", "test counter").add(3);
  m.counter("events").add();
  EXPECT_EQ(m.counter("events").value(), 4u);

  m.gauge("speed").set(2.5);
  EXPECT_DOUBLE_EQ(m.gauge("speed").value(), 2.5);
  EXPECT_TRUE(m.has_gauge("speed"));
  EXPECT_FALSE(m.has_gauge("missing"));

  obs::Distribution& d = m.distribution("sizes");
  d.observe(2.0);
  d.observe(4.0);
  EXPECT_EQ(d.summary().count(), 2u);
  EXPECT_DOUBLE_EQ(d.summary().mean(), 3.0);
  EXPECT_EQ(d.histogram().total(), 2u);
}

TEST(Metrics, JsonAndTsvExporters) {
  ObsTestGuard guard;
  obs::Metrics& m = obs::Registry::global().metrics();
  m.counter("runs").add(2);
  m.gauge("run.index_seconds").set(0.125);
  m.distribution("seed_occurrences").observe(3.0);
  std::ostringstream json;
  m.write_json(json);
  EXPECT_NE(json.str().find("\"runs\":2"), std::string::npos);
  EXPECT_NE(json.str().find("\"run.index_seconds\":0.125"), std::string::npos);
  EXPECT_NE(json.str().find("\"seed_occurrences\":{\"count\":1"),
            std::string::npos);
  // Single-sample variance is undefined (NaN) and must render as null.
  EXPECT_NE(json.str().find("\"variance\":null"), std::string::npos);

  std::ostringstream tsv;
  m.write_tsv(tsv);
  EXPECT_NE(tsv.str().find("counter\truns\t2"), std::string::npos);
  EXPECT_NE(tsv.str().find("gauge\trun.index_seconds\t0.125"),
            std::string::npos);
  EXPECT_NE(tsv.str().find("distribution\tseed_occurrences.count\t1"),
            std::string::npos);
}

TEST(Metrics, PublishRunStatsMirrorsIndexCacheHit) {
  ObsTestGuard guard;
  core::RunStats stats;
  stats.index_seconds = 0.0;
  stats.match_seconds = 0.5;
  stats.mem_count = 7;
  stats.index_cache_hit = true;
  core::publish_run_stats(stats);
  obs::Metrics& m = obs::Registry::global().metrics();
  ASSERT_TRUE(m.has_gauge("run.index_cache_hit"));
  EXPECT_DOUBLE_EQ(m.gauge("run.index_cache_hit").value(), 1.0);
  EXPECT_DOUBLE_EQ(m.gauge("run.mem_count").value(), 7.0);

  stats.index_cache_hit = false;
  core::publish_run_stats(stats);
  EXPECT_DOUBLE_EQ(m.gauge("run.index_cache_hit").value(), 0.0);
}

TEST(Metrics, PublishServiceStatsMirrorsEveryField) {
  ObsTestGuard guard;
  serve::ServiceStats st;
  st.submitted = 10;
  st.completed = 7;
  st.rejected = 1;
  st.expired = 1;
  st.failed = 1;
  st.batches = 3;
  st.cache_hits = 12;
  st.cache_misses = 4;
  st.cache_resident_bytes = 4096;
  st.queue_depth = 2;
  st.max_queue_depth = 5;
  st.modeled_index_seconds = 0.25;
  st.modeled_match_seconds = 0.5;
  st.queue_seconds_total = 0.125;
  serve::publish_service_stats(st);

  obs::Metrics& m = obs::Registry::global().metrics();
  EXPECT_DOUBLE_EQ(m.gauge("serve.submitted").value(), 10.0);
  EXPECT_DOUBLE_EQ(m.gauge("serve.completed").value(), 7.0);
  EXPECT_DOUBLE_EQ(m.gauge("serve.rejected").value(), 1.0);
  EXPECT_DOUBLE_EQ(m.gauge("serve.expired").value(), 1.0);
  EXPECT_DOUBLE_EQ(m.gauge("serve.failed").value(), 1.0);
  EXPECT_DOUBLE_EQ(m.gauge("serve.batches").value(), 3.0);
  EXPECT_DOUBLE_EQ(m.gauge("serve.cache_hits").value(), 12.0);
  EXPECT_DOUBLE_EQ(m.gauge("serve.cache_misses").value(), 4.0);
  EXPECT_DOUBLE_EQ(m.gauge("serve.cache_resident_bytes").value(), 4096.0);
  EXPECT_DOUBLE_EQ(m.gauge("serve.queue_depth").value(), 2.0);
  EXPECT_DOUBLE_EQ(m.gauge("serve.max_queue_depth").value(), 5.0);
  EXPECT_DOUBLE_EQ(m.gauge("serve.modeled_index_seconds").value(), 0.25);
  EXPECT_DOUBLE_EQ(m.gauge("serve.modeled_match_seconds").value(), 0.5);
  EXPECT_DOUBLE_EQ(m.gauge("serve.queue_seconds_total").value(), 0.125);
}

TEST(Metrics, PublishingIsNoOpWhenDisabled) {
  obs::Registry::global().reset();
  obs::Registry::global().set_enabled(false);
  core::publish_run_stats(core::RunStats{});
  serve::publish_service_stats(serve::ServiceStats{});
  EXPECT_FALSE(obs::Registry::global().metrics().has_gauge("run.mem_count"));
  EXPECT_FALSE(obs::Registry::global().metrics().has_gauge("serve.submitted"));
}

TEST(Registry, ThreadSafeUnderParallelForChunked) {
  ObsTestGuard guard;
  obs::Metrics& m = obs::Registry::global().metrics();
  obs::Counter& hits = m.counter("hits");
  obs::Distribution& dist = m.distribution("values");
  constexpr std::size_t kN = 2000;
  util::parallel_for_chunked(0, kN, 8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      hits.add();
      dist.observe(static_cast<double>(i % 7));
      // Registry lookups and span recording from many threads at once.
      m.gauge("last").set(static_cast<double>(i));
      obs::record_modeled_span("op", "kernel",
                               static_cast<double>(i) * 1e-6, 1e-6, 0);
    }
  });
  EXPECT_EQ(hits.value(), kN);
  EXPECT_EQ(dist.summary().count(), kN);
  EXPECT_EQ(obs::Registry::global().trace().size(), kN);
}

}  // namespace
}  // namespace gm
