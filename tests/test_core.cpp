// GPUMEM core component tests: configuration (Eq. 1), the load-balancing
// heuristic (Algorithm 2), host stitch helpers, and the device index
// construction (Algorithm 1) against the host KmerIndex.
#include <gtest/gtest.h>

#include "core/balance.h"
#include "core/config.h"
#include "core/host_stitch.h"
#include "core/index_kernels.h"
#include "index/kmer_index.h"
#include "mem/common.h"
#include "mem/naive.h"
#include "seq/synthetic.h"
#include "util/rng.h"

namespace gm {
namespace {

using core::Config;

TEST(Config, AutoStepIsEquationOneMaximum) {
  Config cfg;
  cfg.min_length = 50;
  cfg.seed_len = 13;
  const auto g = cfg.validated();
  EXPECT_EQ(g.step, 38u);  // L - ls + 1
  EXPECT_EQ(g.w, g.step);
  EXPECT_EQ(g.block_width, cfg.threads * g.w);
  EXPECT_EQ(g.tile_len, cfg.tile_blocks * g.block_width);
}

TEST(Config, RejectsEquationOneViolation) {
  Config cfg;
  cfg.min_length = 20;
  cfg.seed_len = 10;
  cfg.step = 12;  // > L - ls + 1 = 11
  EXPECT_THROW(cfg.validated(), std::invalid_argument);
  cfg.step = 11;
  EXPECT_NO_THROW(cfg.validated());
}

TEST(Config, RejectsBadParameters) {
  Config cfg;
  cfg.min_length = 0;
  EXPECT_THROW(cfg.validated(), std::invalid_argument);
  cfg = Config{};
  cfg.seed_len = 17;
  EXPECT_THROW(cfg.validated(), std::invalid_argument);
  cfg = Config{};
  cfg.seed_len = 30;
  cfg.min_length = 20;
  EXPECT_THROW(cfg.validated(), std::invalid_argument);
  cfg = Config{};
  cfg.threads = 96;  // not a power of two
  EXPECT_THROW(cfg.validated(), std::invalid_argument);
  cfg = Config{};
  cfg.tile_blocks = 0;
  EXPECT_THROW(cfg.validated(), std::invalid_argument);
}

TEST(Config, RejectsZeroCapacities) {
  Config cfg;
  cfg.round_capacity = 0;
  EXPECT_THROW(cfg.validated(), std::invalid_argument);
  cfg = Config{};
  cfg.output_capacity = 0;
  EXPECT_THROW(cfg.validated(), std::invalid_argument);
}

TEST(Config, RejectsTileGeometryOverflow) {
  // tau * delta_s * n_block computed in 32 bits would silently wrap; the
  // validator must reject it instead of corrupting every tile Rect.
  Config cfg;
  cfg.min_length = 1u << 20;
  cfg.seed_len = 16;  // auto step ~= 2^20
  cfg.threads = 1u << 10;
  cfg.tile_blocks = 1u << 4;  // tile_len64 ~= 2^34 > 2^31
  EXPECT_THROW(cfg.validated(), std::invalid_argument);
  cfg.tile_blocks = 1;
  cfg.threads = 2;  // 2^21: fine
  EXPECT_NO_THROW(cfg.validated());
}

TEST(Config, DescribeMentionsKeyParameters) {
  Config cfg;
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("L="), std::string::npos);
  EXPECT_NE(d.find("tau="), std::string::npos);
}

// --- Algorithm 2 -------------------------------------------------------------

TEST(Balance, AllZeroLoadsIdentity) {
  const std::vector<std::uint32_t> loads(8, 0);
  const auto r = core::balance_assign(loads);
  for (std::uint32_t t = 0; t < 8; ++t) EXPECT_EQ(r.group[t], t);
}

TEST(Balance, CoversEveryThreadExactlyOnce) {
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint32_t> loads(64);
    for (auto& l : loads) {
      l = rng.chance(0.5) ? 0 : static_cast<std::uint32_t>(rng.bounded(100));
    }
    const auto r = core::balance_assign(loads);
    ASSERT_EQ(r.assign.front(), 0u);
    ASSERT_EQ(r.assign.back(), 64u);
    for (std::size_t k = 0; k + 1 < r.assign.size(); ++k) {
      ASSERT_LE(r.assign[k], r.assign[k + 1]);
      if (loads[k] == 0) {
        EXPECT_EQ(r.assign[k], r.assign[k + 1]);
      }
    }
    for (std::uint32_t tid = 0; tid < 64; ++tid) {
      const std::uint32_t g = r.group[tid];
      ASSERT_LE(r.assign[g], tid);
      ASSERT_LT(tid, r.assign[g + 1]);
    }
  }
}

TEST(Balance, IdleThreadsServeLoadedSeeds) {
  // One heavy seed, the rest idle: every thread should serve seed 0.
  std::vector<std::uint32_t> loads(16, 0);
  loads[0] = 1000;
  const auto r = core::balance_assign(loads);
  for (std::uint32_t t = 0; t < 16; ++t) EXPECT_EQ(r.group[t], 0u);
}

TEST(Balance, ProportionalToLoad) {
  // Seed 0 has 9x the load of seed 8: it should get roughly 9x the threads.
  std::vector<std::uint32_t> loads(64, 0);
  loads[0] = 900;
  loads[8] = 100;
  const auto r = core::balance_assign(loads);
  const std::uint32_t heavy = r.assign[1] - r.assign[0];
  const std::uint32_t light = r.assign[9] - r.assign[8];
  EXPECT_GE(heavy, 5 * light);
  EXPECT_GE(light, 1u);
  EXPECT_EQ(heavy + light, 64u);
}

TEST(Balance, MatchesPaperToyExampleShape) {
  // Paper Fig. 2: loaded and idle seeds interleaved; no thread idle after
  // balancing when total load >= tau... (total load 12 over 8 threads).
  const std::vector<std::uint32_t> loads{4, 0, 2, 0, 4, 0, 2, 0};
  const auto r = core::balance_assign(loads);
  // Each loaded seed gets at least one thread; heavy seeds get more.
  EXPECT_GE(r.assign[1] - r.assign[0], r.assign[3] - r.assign[2]);
  std::uint32_t served = 0;
  for (std::uint32_t k = 0; k < 8; ++k) {
    if (loads[k] > 0) {
      EXPECT_GE(r.assign[k + 1] - r.assign[k], 1u) << k;
    }
    served += r.assign[k + 1] - r.assign[k];
  }
  EXPECT_EQ(served, 8u);
}

TEST(Balance, RandomizedInvariantsAcrossBlockSizes) {
  // Algorithm 2 invariants under random load vectors, plus the two
  // degenerate shapes (all-zero, single hot seed), for every block size the
  // sampler can pick: assign starts at 0, ends at tau, is non-decreasing,
  // every nonzero-load seed owns at least one thread, and group[] is the
  // inverse of assign[].
  util::Xoshiro256 rng(17);
  for (const std::uint32_t tau : {2u, 4u, 8u, 64u, 256u}) {
    for (int trial = 0; trial < 40; ++trial) {
      std::vector<std::uint32_t> loads(tau);
      if (trial == 0) {
        // all-zero
      } else if (trial == 1) {
        loads[rng.bounded(tau)] = 1 + static_cast<std::uint32_t>(
                                          rng.bounded(1u << 16));
      } else {
        for (auto& l : loads) {
          l = rng.chance(0.4)
                  ? 0
                  : static_cast<std::uint32_t>(rng.bounded(1u << 12));
        }
      }
      const auto r = core::balance_assign(loads);
      ASSERT_EQ(r.assign.size(), tau + 1);
      ASSERT_EQ(r.group.size(), tau);
      ASSERT_EQ(r.assign.front(), 0u);
      ASSERT_EQ(r.assign.back(), tau);
      for (std::uint32_t k = 0; k < tau; ++k) {
        ASSERT_LE(r.assign[k], r.assign[k + 1]) << "tau=" << tau;
        if (loads[k] > 0) {
          EXPECT_GE(r.assign[k + 1] - r.assign[k], 1u)
              << "loaded seed " << k << " starved, tau=" << tau;
        }
      }
      for (std::uint32_t tid = 0; tid < tau; ++tid) {
        const std::uint32_t g = r.group[tid];
        ASSERT_LT(g, tau);
        ASSERT_LE(r.assign[g], tid);
        ASSERT_LT(tid, r.assign[g + 1]);
      }
    }
  }
}

TEST(Balance, SplitWorkPartitionsExactly) {
  for (std::uint32_t count : {0u, 1u, 7u, 100u}) {
    for (std::uint32_t servers : {1u, 3u, 8u}) {
      std::uint32_t covered = 0;
      std::uint32_t prev_end = 0;
      for (std::uint32_t rank = 0; rank < servers; ++rank) {
        std::uint32_t b, e;
        core::split_work(count, servers, rank, b, e);
        EXPECT_EQ(b, prev_end);
        prev_end = e;
        covered += e - b;
      }
      EXPECT_EQ(prev_end, count);
      EXPECT_EQ(covered, count);
    }
  }
}

// --- host stitch -------------------------------------------------------------

TEST(HostStitch, ExpandClampedBothDirections) {
  const auto R = seq::Sequence::from_string("TTACGTACGTAA");
  const auto Q = seq::Sequence::from_string("GGACGTACGTCC");
  const core::Rect whole{0, 12, 0, 12};
  // Seed match of length 4 inside the shared "ACGTACGT".
  const mem::Mem e = core::expand_clamped(R, Q, {4, 4, 4}, whole);
  EXPECT_EQ(e, (mem::Mem{2, 2, 8}));
}

TEST(HostStitch, ExpandRespectsClamp) {
  const auto R = seq::Sequence::from_string("ACGTACGTACGT");
  const auto Q = R;
  const core::Rect rect{2, 10, 2, 10};
  const mem::Mem e = core::expand_clamped(R, Q, {4, 4, 2}, rect);
  EXPECT_EQ(e.r, 2u);
  EXPECT_EQ(e.q, 2u);
  EXPECT_EQ(e.len, 8u);
  EXPECT_TRUE(core::touches_edge(e, rect));
}

TEST(HostStitch, ExpandClampsOvershootingInput) {
  const auto R = seq::Sequence::from_string("ACGTACGTACGT");
  const auto Q = R;
  const core::Rect rect{0, 6, 0, 6};
  // Input extends past the rect (verified overshoot from seed extension).
  const mem::Mem e = core::expand_clamped(R, Q, {2, 2, 9}, rect);
  EXPECT_LE(e.r + e.len, rect.r1);
  EXPECT_LE(e.q + e.len, rect.q1);
}

TEST(HostStitch, ExpandClampedPieceStartingLeftOfRect) {
  // Regression: a piece starting left of the clamping Rect used to drive
  // `m.r - rect.r0` into unsigned wrap-around. The overhang must be trimmed
  // and the remainder expanded normally.
  const auto R = seq::Sequence::from_string("ACGTACGTACGT");
  const auto Q = R;
  const core::Rect rect{4, 12, 4, 12};
  const mem::Mem e = core::expand_clamped(R, Q, {2, 2, 6}, rect);
  EXPECT_EQ(e.r, 4u);
  EXPECT_EQ(e.q, 4u);
  EXPECT_EQ(e.len, 8u);  // expands rightward to the rect edge
}

TEST(HostStitch, ExpandClampedPieceWhollyOutsideRect) {
  const auto R = seq::Sequence::from_string("ACGTACGTACGT");
  const auto Q = R;
  // Entirely left of the rectangle: nothing survives the trim.
  EXPECT_EQ(core::expand_clamped(R, Q, {0, 0, 3}, {4, 12, 4, 12}).len, 0u);
  // Entirely right of it: same.
  EXPECT_EQ(core::expand_clamped(R, Q, {8, 8, 4}, {0, 6, 0, 6}).len, 0u);
  // Outside on the query axis only: the shift consumes the whole piece.
  EXPECT_EQ(core::expand_clamped(R, Q, {4, 0, 2}, {0, 12, 4, 12}).len, 0u);
}

TEST(HostStitch, ExpandClampedAsymmetricOverhang) {
  // r inside, q left of the rect: both coordinates shift together by the
  // larger overhang so the match stays on its diagonal.
  const auto R = seq::Sequence::from_string("AACGTACGTACGTT");
  const auto Q = seq::Sequence::from_string("CGTACGTACGT");
  // R[2+i] == Q[0+i] for the shared "CGTACGTACGT".
  const core::Rect rect{0, 14, 3, 11};
  const mem::Mem e = core::expand_clamped(R, Q, {2, 0, 8}, rect);
  EXPECT_EQ(e.q, 3u);
  EXPECT_EQ(e.r, 5u);
  EXPECT_EQ(e.r - e.q, 2u);  // diagonal preserved
  EXPECT_GE(e.len, 5u);
  EXPECT_LE(e.q + e.len, rect.q1);
}

TEST(HostStitch, CombineChainsMergesRuns) {
  std::vector<mem::Mem> t{
      {10, 5, 10},   // diag 5
      {20, 15, 8},   // diag 5, touches previous end (10+10=20 = q 15+5)
      {40, 35, 6},   // diag 5, disjoint (gap)
      {10, 6, 10},   // diag 4
  };
  core::combine_chains(t);
  mem::sort_mems(t);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], (mem::Mem{10, 5, 18}));  // merged run
  EXPECT_EQ(t[1], (mem::Mem{10, 6, 10}));
  EXPECT_EQ(t[2], (mem::Mem{40, 35, 6}));
}

TEST(HostStitch, CombineChainsAbsorbsDuplicates) {
  std::vector<mem::Mem> t{{10, 5, 10}, {10, 5, 10}, {10, 5, 10}};
  core::combine_chains(t);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0], (mem::Mem{10, 5, 10}));
}

TEST(HostStitch, FinalizeExpandsAndFilters) {
  const auto base = seq::GenomeModel{.length = 2000}.generate(3);
  const auto R = base;
  const auto Q = base;  // identical: the full-length MEM exists
  // Two mid-sequence pieces of the one giant diagonal chain.
  std::vector<mem::Mem> pieces{{100, 100, 50}, {150, 150, 40}};
  const auto out = core::finalize_out_tile(R, Q, pieces, 100);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (mem::Mem{0, 0, 2000}));
}

TEST(HostStitch, EquationOneBoundIsTight) {
  // With step = L - ls + 2 (one past Eq. 1), a MEM of length exactly L can
  // contain no sampled seed: sampled-candidate emission misses it. This
  // demonstrates why Config rejects such steps.
  const std::uint32_t L = 8, ls = 4;
  const std::uint32_t bad_step = L - ls + 2;  // 6
  // Build R/Q with a MEM of length exactly 8 at r=1 (between grid points 0
  // and 6... grid hits at p=6 only partially inside).
  //      R: C ACGTACGT C...   MEM body R[1..9)
  const auto R = seq::Sequence::from_string("CACGTACGTCCCCCCC");
  const auto Q = seq::Sequence::from_string("GACGTACGTGGGGGGG");
  const auto truth = mem::find_mems_naive(R, Q, L);
  ASSERT_EQ(truth.size(), 1u);  // the length-8 MEM

  // Emulate sampled-candidate generation at the bad step: for a hit the
  // sampled position p must have p % bad_step == 0, p+ls inside the MEM.
  std::vector<mem::Mem> found;
  for (std::uint32_t p = 0; p + ls <= R.size(); p += bad_step) {
    for (std::uint32_t j = 0; j + ls <= Q.size(); ++j) {
      if (R.common_prefix(p, Q, j, ls) == ls) {
        mem::emit_sampled_candidate(R, Q, p, j, bad_step, L, found);
      }
    }
  }
  EXPECT_TRUE(found.empty()) << "step beyond Eq. 1 silently loses the MEM";

  // At the Eq. 1 maximum the MEM is found.
  const std::uint32_t good_step = L - ls + 1;  // 5
  for (std::uint32_t p = 0; p + ls <= R.size(); p += good_step) {
    for (std::uint32_t j = 0; j + ls <= Q.size(); ++j) {
      if (R.common_prefix(p, Q, j, ls) == ls) {
        mem::emit_sampled_candidate(R, Q, p, j, good_step, L, found);
      }
    }
  }
  mem::sort_unique(found);
  EXPECT_EQ(found, truth);
}

// --- Algorithm 1 on the device ----------------------------------------------

TEST(IndexKernels, MatchesHostKmerIndex) {
  const auto ref = seq::GenomeModel{.length = 30000}.generate(11);
  simt::Device dev;
  const std::vector<std::pair<unsigned, std::uint32_t>> cases{
      {8u, 5u}, {10u, 1u}, {6u, 13u}};
  for (const auto& [seed_len, step] : cases) {
    core::DeviceIndex didx(dev, seed_len, step,
                           static_cast<std::uint32_t>(ref.size() / step) + 2);
    core::build_partial_index(dev, ref, 0, ref.size(), 128, didx);
    const index::KmerIndex hidx(ref, 0, ref.size(), seed_len, step);
    ASSERT_EQ(didx.n_locs, hidx.locs().size());
    // ptrs must match after the shift convention, and locs exactly.
    for (std::size_t s = 0; s < hidx.ptrs().size(); ++s) {
      ASSERT_EQ(didx.ptrs[s], hidx.ptrs()[s]) << "seed " << s;
    }
    for (std::size_t i = 0; i < hidx.locs().size(); ++i) {
      ASSERT_EQ(didx.locs[i], hidx.locs()[i]) << "loc " << i;
    }
  }
}

TEST(IndexKernels, TileRangesTileTheGrid) {
  const auto ref = seq::GenomeModel{.length = 10000}.generate(12);
  simt::Device dev;
  const unsigned seed_len = 8;
  const std::uint32_t step = 7;
  // Index three adjacent ranges; their unions must equal the full index.
  std::vector<std::uint32_t> all_locs;
  for (std::size_t start = 0; start < ref.size(); start += 3500) {
    core::DeviceIndex didx(dev, seed_len, step, 4000);
    core::build_partial_index(dev, ref, start,
                              std::min(ref.size(), start + 3500), 64, didx);
    for (std::uint32_t i = 0; i < didx.n_locs; ++i) {
      all_locs.push_back(didx.locs[i]);
    }
  }
  std::sort(all_locs.begin(), all_locs.end());
  const index::KmerIndex full(ref, 0, ref.size(), seed_len, step);
  std::vector<std::uint32_t> expect = full.locs();
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(all_locs, expect);
}

TEST(IndexKernels, IndexTimeGoesToLedger) {
  const auto ref = seq::GenomeModel{.length = 20000}.generate(13);
  simt::Device dev;
  core::DeviceIndex didx(dev, 8, 4, 6000);
  const double before = dev.ledger().total_seconds();
  core::build_partial_index(dev, ref, 0, ref.size(), 128, didx);
  EXPECT_GT(dev.ledger().total_seconds(), before);
  EXPECT_GT(dev.ledger().kernels_launched(), 0u);
}

TEST(IndexKernels, SeedLenSixteenExceedsDeviceMemory) {
  // 4^16 buckets * 4 bytes = 17 GB of ptrs: must trip the K20c capacity,
  // the restriction that motivates the lightweight-index design.
  simt::Device dev;
  EXPECT_THROW(core::DeviceIndex(dev, 16, 1, 1024), simt::DeviceOutOfMemory);
}

}  // namespace
}  // namespace gm
