// Anchor chaining tests.
#include <gtest/gtest.h>

#include "anchor/chain.h"

namespace gm {
namespace {

using anchor::best_chain;
using anchor::Chain;
using anchor::ChainParams;
using anchor::top_chains;
using mem::Mem;

TEST(Chain, EmptyInput) {
  const Chain c = best_chain({});
  EXPECT_TRUE(c.anchors.empty());
  EXPECT_EQ(c.score, 0.0);
}

TEST(Chain, SingleAnchor) {
  const std::vector<Mem> anchors{{100, 200, 50}};
  const Chain c = best_chain(anchors);
  ASSERT_EQ(c.anchors.size(), 1u);
  EXPECT_EQ(c.anchors[0], 0u);
  EXPECT_DOUBLE_EQ(c.score, 50.0);
  EXPECT_EQ(c.r_begin, 100u);
  EXPECT_EQ(c.r_end, 150u);
}

TEST(Chain, PicksColinearSubset) {
  // Three colinear anchors plus one far-off-diagonal distractor.
  const std::vector<Mem> anchors{
      {100, 100, 30}, {200, 205, 40}, {300, 310, 30}, {5000, 120, 35}};
  const Chain c = best_chain(anchors);
  ASSERT_EQ(c.anchors.size(), 3u);
  EXPECT_EQ(c.anchors, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_GT(c.score, 60.0);
}

TEST(Chain, RejectsCrossingAnchors) {
  // Second anchor goes backwards in the reference: cannot chain.
  const std::vector<Mem> anchors{{500, 100, 30}, {100, 200, 30}};
  const Chain c = best_chain(anchors);
  EXPECT_EQ(c.anchors.size(), 1u);
}

TEST(Chain, GapPenaltyPrefersTighterChain) {
  // Two alternatives from anchor 0: near continuation vs far continuation
  // with the same length; the near one must win.
  const std::vector<Mem> anchors{
      {100, 100, 30}, {140, 140, 30}, {900000, 145, 30}};
  ChainParams p;
  p.max_gap = 1 << 30;
  const Chain c = best_chain(anchors, p);
  ASSERT_EQ(c.anchors.size(), 2u);
  EXPECT_EQ(c.anchors[1], 1u);
}

TEST(Chain, MaxGapBreaksChains) {
  const std::vector<Mem> anchors{{0, 0, 30}, {100000, 100000, 30}};
  ChainParams p;
  p.max_gap = 1000;
  const Chain c = best_chain(anchors, p);
  EXPECT_EQ(c.anchors.size(), 1u);
}

TEST(TopChains, DisjointAndOrdered) {
  // Two separate colinear clusters (a translocation): top-2 chains should
  // recover both without sharing anchors.
  std::vector<Mem> anchors;
  for (std::uint32_t i = 0; i < 5; ++i) {
    anchors.push_back({100 + 50 * i, 100 + 50 * i, 40});          // cluster A
    anchors.push_back({90000 + 50 * i, 5000 + 50 * i, 30});       // cluster B
  }
  const auto chains = top_chains(anchors, 3);
  ASSERT_GE(chains.size(), 2u);
  EXPECT_GE(chains[0].score, chains[1].score);
  std::vector<bool> used(anchors.size(), false);
  for (const auto& c : chains) {
    for (std::uint32_t idx : c.anchors) {
      EXPECT_FALSE(used[idx]) << "anchor reused across chains";
      used[idx] = true;
    }
  }
  EXPECT_EQ(chains[0].anchors.size(), 5u);
  EXPECT_EQ(chains[1].anchors.size(), 5u);
}

TEST(TopChains, KLimitsCount) {
  std::vector<Mem> anchors;
  for (std::uint32_t i = 0; i < 4; ++i) {
    anchors.push_back({i * 100000, 50, 20});  // mutually unchainable (same q)
  }
  EXPECT_EQ(top_chains(anchors, 2).size(), 2u);
  EXPECT_LE(top_chains(anchors, 10).size(), 4u);
}

}  // namespace
}  // namespace gm
