// Serve-layer tests: the reference index cache must change only *when* index
// work happens (never the MEM output), and the batch service must reproduce
// independent Engine::run results while enforcing its queue semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "mem/copmem.h"
#include "mem/naive.h"
#include "seq/synthetic.h"
#include "serve/index_cache.h"
#include "serve/service.h"
#include "simt/device.h"
#include "store/artifact.h"
#include "store/loaded_index.h"

namespace gm {
namespace {

using core::Config;
using core::Engine;
using serve::DeviceRowIndexCache;
using serve::MemService;
using serve::QueryRequest;
using serve::QueryStatus;
using serve::ServiceConfig;

Config small_config() {
  Config cfg;
  cfg.min_length = 12;
  cfg.seed_len = 6;
  cfg.threads = 16;
  cfg.tile_blocks = 2;  // tile_len 224 -> several rows on a few-kbp reference
  return cfg;
}

seq::Sequence test_reference(std::size_t length, std::uint64_t seed) {
  return seq::GenomeModel{.length = length}.generate(seed);
}

seq::Sequence derived_query(const seq::Sequence& ref, std::uint64_t seed,
                            double snp_rate = 0.02) {
  seq::MutationModel mut;
  mut.snp_rate = snp_rate;
  mut.indel_rate = 0.003;
  return mut.apply(ref, seed);
}

// --- DeviceRowIndexCache ---------------------------------------------------

TEST(IndexCache, ColdThenWarmIsByteIdentical) {
  const auto ref = test_reference(3000, 51);
  const auto query = derived_query(ref, 52);
  const Config cfg = small_config();
  const Engine engine(cfg);
  const auto fresh = engine.run(ref, query);
  ASSERT_FALSE(fresh.mems.empty());

  simt::Device dev(cfg.device);
  DeviceRowIndexCache cache(dev, cfg, /*ref_id=*/1);

  const auto cold = engine.run_simt_cached(dev, ref, query, cache);
  EXPECT_EQ(cold.mems, fresh.mems);
  EXPECT_FALSE(cold.stats.index_cache_hit);
  EXPECT_GT(cold.stats.index_seconds, 0.0);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), cache.rows_cached());
  EXPECT_GT(cache.rows_cached(), 0u);

  const auto warm = engine.run_simt_cached(dev, ref, query, cache);
  EXPECT_EQ(warm.mems, fresh.mems);
  EXPECT_TRUE(warm.stats.index_cache_hit);
  EXPECT_EQ(warm.stats.index_seconds, 0.0);
  EXPECT_EQ(cache.hits(), cache.rows_cached());
}

TEST(IndexCache, ServesManyDistinctQueries) {
  const auto ref = test_reference(2500, 53);
  const Config cfg = small_config();
  const Engine engine(cfg);
  simt::Device dev(cfg.device);
  DeviceRowIndexCache cache(dev, cfg, 1);

  for (std::uint64_t seed = 60; seed < 63; ++seed) {
    const auto query = derived_query(ref, seed, 0.01 + 0.01 * (seed - 60));
    const auto got = engine.run_simt_cached(dev, ref, query, cache);
    EXPECT_EQ(got.mems, mem::find_mems_naive(ref, query, cfg.min_length))
        << "query seed " << seed;
  }
  EXPECT_EQ(cache.misses(), cache.rows_cached());  // each row built once
  EXPECT_EQ(cache.hits(), 2 * cache.rows_cached());
}

TEST(IndexCache, LedgerBytesBoundedAcrossCachedRuns) {
  const auto ref = test_reference(4000, 54);
  const auto query = derived_query(ref, 55);
  const Config cfg = small_config();
  const Engine engine(cfg);
  simt::Device dev(cfg.device);
  DeviceRowIndexCache cache(dev, cfg, 1);

  (void)engine.run_simt_cached(dev, ref, query, cache);
  const std::size_t resident_after_warmup = dev.bytes_in_use();
  EXPECT_EQ(resident_after_warmup, cache.resident_bytes());
  EXPECT_GT(resident_after_warmup, 0u);

  std::size_t first_peak = 0;
  for (int i = 0; i < 5; ++i) {
    const auto r = engine.run_simt_cached(dev, ref, query, cache);
    // Transient run buffers all freed; only cached indexes stay resident.
    EXPECT_EQ(dev.bytes_in_use(), resident_after_warmup) << "run " << i;
    if (i == 0) first_peak = r.stats.device_peak_bytes;
    EXPECT_EQ(r.stats.device_peak_bytes, first_peak) << "run " << i;
  }
}

TEST(IndexCache, RejectsForeignDevice) {
  const auto ref = test_reference(1500, 56);
  const Config cfg = small_config();
  simt::Device bound(cfg.device), other(cfg.device, 1);
  DeviceRowIndexCache cache(bound, cfg, 1);
  bool hit = false;
  EXPECT_THROW(cache.acquire(other, ref, 0, hit), std::invalid_argument);
}

TEST(IndexCache, GeometryMismatchDetected) {
  const auto ref = test_reference(1500, 57);
  const auto query = derived_query(ref, 58);
  const Config cfg = small_config();
  simt::Device dev(cfg.device);
  DeviceRowIndexCache cache(dev, cfg, 1);

  Config different = cfg;
  different.seed_len = 8;  // different index geometry, same tile shape
  different.min_length = 16;
  const Engine engine(different);
  EXPECT_THROW((void)engine.run_simt_cached(dev, ref, query, cache),
               std::invalid_argument);
}

TEST(IndexCache, KeyReflectsGeometry) {
  const Config cfg = small_config();
  const auto key = serve::make_cache_key(7, cfg);
  EXPECT_EQ(key.ref_id, 7u);
  EXPECT_EQ(key.seed_len, cfg.seed_len);
  EXPECT_EQ(key.step, cfg.validated().step);
  EXPECT_EQ(key.tile_len, cfg.validated().tile_len);
  Config other = cfg;
  other.seed_len = 8;
  other.min_length = 16;
  EXPECT_FALSE(key == serve::make_cache_key(7, other));
}

TEST(IndexCache, ClearReleasesDeviceMemory) {
  const auto ref = test_reference(2000, 59);
  const auto query = derived_query(ref, 60);
  const Config cfg = small_config();
  const Engine engine(cfg);
  simt::Device dev(cfg.device);
  DeviceRowIndexCache cache(dev, cfg, 1);
  (void)engine.run_simt_cached(dev, ref, query, cache);
  ASSERT_GT(dev.bytes_in_use(), 0u);
  cache.clear();
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  EXPECT_EQ(cache.rows_cached(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

// --- MemService ------------------------------------------------------------

TEST(MemServiceTest, BatchedResultsMatchIndependentRuns) {
  const auto ref = test_reference(3000, 61);
  ServiceConfig scfg;
  scfg.engine = small_config();
  scfg.devices = 2;
  scfg.max_batch = 4;
  const Engine engine(scfg.engine);

  std::vector<seq::Sequence> queries;
  for (std::uint64_t seed = 70; seed < 74; ++seed)
    queries.push_back(derived_query(ref, seed));

  MemService service(scfg, ref);
  auto round = [&](bool first_round) {
    std::vector<std::future<serve::QueryResult>> futures;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      std::string id = "q";
      id += std::to_string(i);
      futures.push_back(service.submit({std::move(id), queries[i], 0.0}));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const auto res = futures[i].get();
      ASSERT_EQ(res.status, QueryStatus::kOk) << res.error;
      EXPECT_EQ(res.mems, engine.run(ref, queries[i]).mems) << "query " << i;
      // The dispatcher serializes requests, so only the very first query
      // ever builds; everything after it is served warm.
      const bool expect_warm = !(first_round && i == 0);
      EXPECT_EQ(res.stats.index_cache_hit, expect_warm) << "query " << i;
      if (expect_warm) {
        EXPECT_EQ(res.stats.index_seconds, 0.0);
      }
      EXPECT_GT(res.stats.match_seconds, 0.0);
      EXPECT_GT(res.stats.kernels_launched, 0u);
    }
  };
  round(true);   // builds each device's rows exactly once, on query 0
  round(false);  // fully warm
  const auto st = service.stats();
  EXPECT_EQ(st.completed, 2 * queries.size());
  EXPECT_GT(st.cache_hits, 0u);
  EXPECT_GT(st.cache_resident_bytes, 0u);
}

TEST(MemServiceTest, CacheOffMatchesSingleRuns) {
  const auto ref = test_reference(2500, 62);
  const auto query = derived_query(ref, 63);
  ServiceConfig scfg;
  scfg.engine = small_config();
  scfg.cache_enabled = false;
  const Engine engine(scfg.engine);
  const auto fresh = engine.run(ref, query);

  MemService service(scfg, ref);
  for (int i = 0; i < 2; ++i) {
    auto res = service.submit({"q", query, 0.0}).get();
    ASSERT_EQ(res.status, QueryStatus::kOk) << res.error;
    EXPECT_EQ(res.mems, fresh.mems);
    EXPECT_FALSE(res.stats.index_cache_hit);
    // Same modeled work as a fresh run; delta accounting off a growing
    // ledger total only admits floating-point noise.
    EXPECT_NEAR(res.stats.index_seconds, fresh.stats.index_seconds,
                1e-9 + 1e-6 * fresh.stats.index_seconds);
    EXPECT_EQ(res.stats.kernels_launched, fresh.stats.kernels_launched);
  }
  const auto st = service.stats();
  EXPECT_EQ(st.cache_hits, 0u);
  EXPECT_EQ(st.cache_misses, 0u);
  EXPECT_EQ(st.cache_resident_bytes, 0u);
}

TEST(MemServiceTest, CopmemFastIndexMatchesEngineRuns) {
  // Fast-index mode answers every request from the host-side copMEM finder:
  // identical MEMs to the device pipeline, zero index_seconds, and every
  // result flagged as a warm index.
  const auto ref = test_reference(3000, 68);
  ServiceConfig scfg;
  scfg.engine = small_config();
  scfg.copmem_fast_index = true;
  const Engine engine(scfg.engine);

  MemService service(scfg, ref);
  for (std::uint64_t seed = 80; seed < 83; ++seed) {
    const auto query = derived_query(ref, seed);
    auto res = service.submit({"q" + std::to_string(seed), query, 0.0}).get();
    ASSERT_EQ(res.status, QueryStatus::kOk) << res.error;
    EXPECT_EQ(res.mems, engine.run(ref, query).mems) << "seed " << seed;
    EXPECT_TRUE(res.stats.index_cache_hit);
    EXPECT_EQ(res.stats.index_seconds, 0.0);
  }
}

TEST(MemServiceTest, CopmemFastIndexAdoptsArtifactSection) {
  // With an attached artifact carrying kCopmemIndex, the service adopts the
  // persisted sampled index instead of rebuilding — same MEM output.
  const auto ref = test_reference(2500, 69);
  const auto query = derived_query(ref, 71);
  ServiceConfig scfg;
  scfg.engine = small_config();
  scfg.copmem_fast_index = true;

  store::BuildOptions bopt;
  bopt.copmem_step =
      mem::CopMemFinder::choose_params(scfg.engine.min_length,
                                       scfg.engine.seed_len)
          .k1;
  scfg.artifact = std::make_shared<const store::LoadedIndex>(
      store::MappedArtifact::from_buffer(
          store::build_artifact(ref, scfg.engine, bopt), "<test>"));

  const auto fresh = Engine(scfg.engine).run(ref, query);
  MemService service(scfg, ref);
  auto res = service.submit({"q", query, 0.0}).get();
  ASSERT_EQ(res.status, QueryStatus::kOk) << res.error;
  EXPECT_EQ(res.mems, fresh.mems);
  EXPECT_TRUE(res.stats.index_cache_hit);
}

TEST(MemServiceTest, BackpressureRejectsWhenQueueFull) {
  const auto ref = test_reference(1500, 64);
  const auto query = derived_query(ref, 65);
  ServiceConfig scfg;
  scfg.engine = small_config();
  scfg.queue_capacity = 2;
  scfg.start_paused = true;  // nothing dispatches until resume()

  MemService service(scfg, ref);
  auto f1 = service.submit({"a", query, 0.0});
  auto f2 = service.submit({"b", query, 0.0});
  auto f3 = service.submit({"c", query, 0.0});  // over capacity

  const auto r3 = f3.get();  // resolved immediately, pre-dispatch
  EXPECT_EQ(r3.status, QueryStatus::kRejected);
  EXPECT_NE(r3.error.find("queue full"), std::string::npos) << r3.error;

  service.resume();
  EXPECT_EQ(f1.get().status, QueryStatus::kOk);
  EXPECT_EQ(f2.get().status, QueryStatus::kOk);
  const auto st = service.stats();
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.max_queue_depth, 2u);
}

TEST(MemServiceTest, DeadlineExpiresWhileQueued) {
  const auto ref = test_reference(1500, 66);
  const auto query = derived_query(ref, 67);
  ServiceConfig scfg;
  scfg.engine = small_config();
  scfg.start_paused = true;

  MemService service(scfg, ref);
  QueryRequest doomed{"doomed", query, 1e-4};
  auto f_doomed = service.submit(std::move(doomed));
  auto f_ok = service.submit({"patient", query, 0.0});  // no deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.resume();

  const auto r_doomed = f_doomed.get();
  EXPECT_EQ(r_doomed.status, QueryStatus::kExpired);
  EXPECT_TRUE(r_doomed.mems.empty());
  EXPECT_EQ(f_ok.get().status, QueryStatus::kOk);
  const auto st = service.stats();
  EXPECT_EQ(st.expired, 1u);
  EXPECT_EQ(st.completed, 1u);
}

TEST(MemServiceTest, DefaultDeadlineApplies) {
  const auto ref = test_reference(1500, 68);
  const auto query = derived_query(ref, 69);
  ServiceConfig scfg;
  scfg.engine = small_config();
  scfg.start_paused = true;
  scfg.default_deadline_seconds = 1e-4;

  MemService service(scfg, ref);
  auto fut = service.submit({"q", query, 0.0});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.resume();
  EXPECT_EQ(fut.get().status, QueryStatus::kExpired);
}

TEST(MemServiceTest, ShutdownDrainsQueueAndRejectsNew) {
  const auto ref = test_reference(1500, 70);
  const auto query = derived_query(ref, 71);
  ServiceConfig scfg;
  scfg.engine = small_config();
  scfg.start_paused = true;

  MemService service(scfg, ref);
  auto queued = service.submit({"queued", query, 0.0});
  service.resume();
  service.shutdown();  // must drain the already-queued request

  EXPECT_EQ(queued.get().status, QueryStatus::kOk);
  auto late = service.submit({"late", query, 0.0});
  const auto r = late.get();
  EXPECT_EQ(r.status, QueryStatus::kRejected);
  EXPECT_NE(r.error.find("shut down"), std::string::npos) << r.error;
  service.shutdown();  // idempotent
}

// Submit-time validation: the wire path must not be able to smuggle states
// the offline CLI rejects (ISSUE 9). Invalid requests resolve immediately
// with kInvalid, never occupy a queue slot, and are counted separately from
// admission rejections.
TEST(MemServiceTest, EmptyQueryIsInvalidNeverEnqueued) {
  const auto ref = test_reference(1500, 72);
  ServiceConfig scfg;
  scfg.engine = small_config();
  scfg.start_paused = true;  // an enqueue would be visible in queue_depth
  MemService service(scfg, ref);
  const auto res = service.submit({"empty", seq::Sequence(), 0.0}).get();
  EXPECT_EQ(res.status, QueryStatus::kInvalid);
  EXPECT_NE(res.error.find("empty query"), std::string::npos) << res.error;
  EXPECT_TRUE(res.mems.empty());
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.stats().invalid, 1u);
  EXPECT_EQ(service.stats().rejected, 0u);
}

TEST(MemServiceTest, BadDeadlinesAreInvalidNeverEnqueued) {
  const auto ref = test_reference(1500, 74);
  const auto query = derived_query(ref, 75);
  ServiceConfig scfg;
  scfg.engine = small_config();
  scfg.start_paused = true;
  MemService service(scfg, ref);

  const auto negative = service.submit({"neg", query, -1.0}).get();
  EXPECT_EQ(negative.status, QueryStatus::kInvalid);
  EXPECT_NE(negative.error.find("deadline"), std::string::npos)
      << negative.error;

  const auto nan =
      service.submit({"nan", query, std::nan("")}).get();
  EXPECT_EQ(nan.status, QueryStatus::kInvalid);

  const auto huge =
      service.submit({"inf", query, 1e300}).get();
  EXPECT_EQ(huge.status, QueryStatus::kInvalid);

  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.stats().invalid, 3u);

  // Zero stays the documented "use the service default" sentinel.
  auto ok = service.submit({"zero", query, 0.0});
  EXPECT_EQ(service.queue_depth(), 1u);
  service.resume();
  EXPECT_EQ(ok.get().status, QueryStatus::kOk);
}

TEST(MemServiceTest, PerRequestMinLengthRoutesAndFilters) {
  const auto ref = test_reference(3000, 91);
  const auto query = derived_query(ref, 92);
  ServiceConfig scfg;
  scfg.engine = small_config();  // engine min_length 12
  MemService plain(scfg, ref);

  const auto at_engine = plain.submit({"engine-L", query, 0.0, 0}).get();
  ASSERT_EQ(at_engine.status, QueryStatus::kOk);
  ASSERT_FALSE(at_engine.mems.empty());

  // Below the engine's L: invalid, never enqueued (the device pipeline
  // cannot report MEMs shorter than it was built for).
  const auto low = plain.submit({"low", query, 0.0, 6}).get();
  EXPECT_EQ(low.status, QueryStatus::kInvalid);
  EXPECT_NE(low.error.find("min_length"), std::string::npos) << low.error;
  EXPECT_EQ(plain.stats().invalid, 1u);

  // Larger per-request L: exactly the engine-L result filtered by length
  // (MEM maximality is L-independent).
  const auto at20 = plain.submit({"filtered", query, 0.0, 20}).get();
  ASSERT_EQ(at20.status, QueryStatus::kOk);
  std::vector<mem::Mem> expect;
  for (const auto& m : at_engine.mems) {
    if (m.len >= 20) expect.push_back(m);
  }
  EXPECT_EQ(at20.mems, expect);

  // Long-MEM mode: the resident lazy finder answers requests at or above
  // the threshold, bit-identically to the device path.
  ServiceConfig lazy_cfg = scfg;
  lazy_cfg.lazy_lcp = true;
  lazy_cfg.long_mem_threshold = 20;
  MemService lazy(lazy_cfg, ref);
  const auto lazy20 = lazy.submit({"lazy", query, 0.0, 20}).get();
  ASSERT_EQ(lazy20.status, QueryStatus::kOk);
  EXPECT_EQ(lazy20.mems, at20.mems);

  // Below the threshold the device pool still answers, unchanged.
  const auto dev = lazy.submit({"device", query, 0.0, 0}).get();
  ASSERT_EQ(dev.status, QueryStatus::kOk);
  EXPECT_EQ(dev.mems, at_engine.mems);
}

TEST(MemServiceTest, CompletionCallbackFiresOnceWithFinalResult) {
  const auto ref = test_reference(1500, 76);
  const auto query = derived_query(ref, 77);
  ServiceConfig scfg;
  scfg.engine = small_config();
  MemService service(scfg, ref);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<QueryStatus> seen;
  const auto on_done = [&](const serve::QueryResult& r) {
    std::lock_guard lock(mu);
    seen.push_back(r.status);
    cv.notify_all();
  };

  auto fut = service.submit({"cb", query, 0.0}, on_done);
  EXPECT_EQ(fut.get().status, QueryStatus::kOk);
  // Invalid and rejected submits invoke the callback on the submitting
  // thread before the future returns.
  (void)service.submit({"cb-empty", seq::Sequence(), 0.0}, on_done);
  {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return seen.size() == 2; });
    EXPECT_EQ(seen[0], QueryStatus::kOk);
    EXPECT_EQ(seen[1], QueryStatus::kInvalid);
  }
}

TEST(MemServiceTest, InvalidConfigsThrow) {
  const auto ref = test_reference(1000, 73);
  ServiceConfig native;
  native.engine = small_config();
  native.engine.backend = core::Backend::kNative;
  EXPECT_THROW(MemService(native, ref), std::invalid_argument);

  ServiceConfig no_devices;
  no_devices.engine = small_config();
  no_devices.devices = 0;
  EXPECT_THROW(MemService(no_devices, ref), std::invalid_argument);

  ServiceConfig no_queue;
  no_queue.engine = small_config();
  no_queue.queue_capacity = 0;
  EXPECT_THROW(MemService(no_queue, ref), std::invalid_argument);
}

TEST(MemServiceTest, WarmServiceBeatsColdOnModeledTime) {
  // The tentpole claim at test scale: after warm-up, a request's modeled
  // device time drops by exactly the index-build share.
  const auto ref = test_reference(4000, 74);
  const auto query = derived_query(ref, 75);
  ServiceConfig scfg;
  scfg.engine = small_config();
  MemService service(scfg, ref);

  const auto cold = service.submit({"cold", query, 0.0}).get();
  const auto warm = service.submit({"warm", query, 0.0}).get();
  ASSERT_EQ(cold.status, QueryStatus::kOk);
  ASSERT_EQ(warm.status, QueryStatus::kOk);
  ASSERT_GT(cold.stats.index_seconds, 0.0);
  EXPECT_EQ(warm.stats.index_seconds, 0.0);
  const double cold_total = cold.stats.index_seconds + cold.stats.match_seconds;
  const double warm_total = warm.stats.index_seconds + warm.stats.match_seconds;
  EXPECT_LT(warm_total, cold_total);
}

}  // namespace
}  // namespace gm
