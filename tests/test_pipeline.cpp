// End-to-end GPUMEM pipeline tests: both backends must reproduce the naive
// MEM set across parameter sweeps, including degenerate tilings that force
// every stitch path (out-block, out-tile, cross-row chains).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/finders.h"
#include "core/pipeline.h"
#include "mem/naive.h"
#include "obs/registry.h"
#include "seq/synthetic.h"
#include "util/rng.h"

namespace gm {
namespace {

using core::Backend;
using core::Config;
using core::Engine;

struct PipelineCase {
  std::uint32_t min_len;
  std::uint32_t seed_len;
  std::uint32_t threads;
  std::uint32_t tile_blocks;
  double divergence;
  std::size_t ref_len;
  std::size_t query_len;
  std::uint64_t seed;
  bool load_balance = true;
  bool combine = true;
};

std::ostream& operator<<(std::ostream& os, const PipelineCase& c) {
  return os << "L=" << c.min_len << " ls=" << c.seed_len << " tau=" << c.threads
            << " nblock=" << c.tile_blocks << " div=" << c.divergence
            << " ref=" << c.ref_len << " query=" << c.query_len
            << " seed=" << c.seed << " lb=" << c.load_balance
            << " combine=" << c.combine;
}

void build_pair(const PipelineCase& c, seq::Sequence& ref,
                seq::Sequence& query) {
  const seq::Sequence base =
      seq::GenomeModel{.length = c.ref_len}.generate(c.seed);
  ref = base;
  seq::MutationModel mut;
  mut.snp_rate = c.divergence;
  mut.indel_rate = c.divergence / 5;
  mut.inversions = 1;
  mut.translocations = 1;
  mut.duplications = 1;
  mut.segment_mean = c.ref_len / 8;
  mut.target_length = c.query_len;
  query = mut.apply(base, c.seed + 2);
}

Config make_config(const PipelineCase& c, Backend backend) {
  Config cfg;
  cfg.min_length = c.min_len;
  cfg.seed_len = c.seed_len;
  cfg.threads = c.threads;
  cfg.tile_blocks = c.tile_blocks;
  cfg.load_balance = c.load_balance;
  cfg.combine = c.combine;
  cfg.backend = backend;
  return cfg;
}

class PipelineEquivalence : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineEquivalence, SimtMatchesNaive) {
  const PipelineCase& c = GetParam();
  seq::Sequence ref, query;
  build_pair(c, ref, query);
  const auto truth = mem::find_mems_naive(ref, query, c.min_len);
  const Engine engine(make_config(c, Backend::kSimt));
  const core::Result result = engine.run(ref, query);
  EXPECT_EQ(result.mems, truth);
  EXPECT_EQ(result.stats.mem_count, truth.size());
  EXPECT_GT(result.stats.index_seconds, 0.0);
  EXPECT_GT(result.stats.match_seconds, 0.0);
}

TEST_P(PipelineEquivalence, NativeMatchesNaive) {
  const PipelineCase& c = GetParam();
  seq::Sequence ref, query;
  build_pair(c, ref, query);
  const auto truth = mem::find_mems_naive(ref, query, c.min_len);
  const Engine engine(make_config(c, Backend::kNative));
  const core::Result result = engine.run(ref, query);
  EXPECT_EQ(result.mems, truth);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineEquivalence,
    ::testing::Values(
        // Single-tile everything: the simplest path.
        PipelineCase{12, 6, 16, 4, 0.03, 2000, 2000, 1},
        // Tiny tiles: tile_len = 4 * 16 * (12-6+1) = 448 -> many tiles,
        // forcing out-block and out-tile stitching on 3k sequences.
        PipelineCase{12, 6, 16, 2, 0.02, 3000, 2500, 2},
        // Degenerate: tile smaller than many MEMs (identical sequences have
        // a MEM spanning everything; crosses many tiles and rows).
        PipelineCase{16, 8, 8, 2, 0.0, 2500, 2500, 3},
        // seed_len == min_length: step = 1 (full index).
        PipelineCase{8, 8, 16, 2, 0.05, 1200, 1200, 4},
        // Larger L, bigger step.
        PipelineCase{30, 10, 16, 2, 0.01, 4000, 3000, 5},
        // High divergence: sparse output.
        PipelineCase{10, 5, 32, 2, 0.15, 1500, 1500, 6},
        // Load balancing off (paper Fig. 7 baseline) must not change output.
        PipelineCase{12, 6, 16, 2, 0.02, 2000, 2000, 7, false, true},
        // Combine off (ablation): duplicates must be cleaned up downstream.
        PipelineCase{12, 6, 16, 2, 0.02, 2000, 2000, 8, true, false},
        // Both off.
        PipelineCase{12, 6, 16, 2, 0.02, 2000, 2000, 9, false, false},
        // tau = 2: minimum block size, k = 1 combine schedule.
        PipelineCase{10, 5, 2, 2, 0.03, 800, 800, 10},
        // Repetitive genome (tandem-heavy) with small round capacity comes
        // in RoundOverflowFallback below; here the default capacity.
        PipelineCase{14, 7, 16, 2, 0.02, 2600, 2400, 11}));

TEST(Pipeline, EmptyAndDegenerateInputs) {
  Config cfg;
  cfg.min_length = 10;
  cfg.seed_len = 5;
  const Engine engine(cfg);
  const seq::Sequence empty;
  const seq::Sequence tiny = seq::Sequence::from_string("ACG");
  EXPECT_TRUE(engine.run(empty, empty).mems.empty());
  EXPECT_TRUE(engine.run(tiny, empty).mems.empty());
  EXPECT_TRUE(engine.run(empty, tiny).mems.empty());
  EXPECT_TRUE(engine.run(tiny, tiny).mems.empty());  // shorter than L
}

TEST(Pipeline, QueryEqualsReference) {
  const auto base = seq::GenomeModel{.length = 3000}.generate(21);
  Config cfg;
  cfg.min_length = 20;
  cfg.seed_len = 8;
  cfg.threads = 16;
  cfg.tile_blocks = 2;
  const Engine engine(cfg);
  const auto result = engine.run(base, base);
  const auto truth = mem::find_mems_naive(base, base, 20);
  EXPECT_EQ(result.mems, truth);
  // The identity MEM must be present.
  bool has_identity = false;
  for (const auto& m : result.mems) {
    has_identity |= m.r == 0 && m.q == 0 && m.len == base.size();
  }
  EXPECT_TRUE(has_identity);
}

TEST(Pipeline, RoundOverflowFallback) {
  // A tandem-repeat query region makes single seeds occur hundreds of
  // times; with a tiny round capacity the kernel must flag the round and
  // the host fallback must keep the output exact.
  std::string r_str, q_str;
  for (int i = 0; i < 300; ++i) r_str += "ACGGT";
  for (int i = 0; i < 100; ++i) q_str += "ACGGT";
  const auto R = seq::Sequence::from_string(r_str);
  const auto Q = seq::Sequence::from_string(q_str);
  Config cfg;
  cfg.min_length = 12;
  cfg.seed_len = 6;
  cfg.threads = 16;
  cfg.tile_blocks = 2;
  cfg.round_capacity = 64;  // far below the repeat load
  const Engine engine(cfg);
  const auto result = engine.run(R, Q);
  EXPECT_GT(result.stats.overflow_rounds, 0u);
  EXPECT_EQ(result.mems, mem::find_mems_naive(R, Q, 12));
}

TEST(Pipeline, OutputBufferRetryKeepsResultsExact) {
  const auto base = seq::GenomeModel{.length = 3000}.generate(22);
  Config cfg;
  cfg.min_length = 10;
  cfg.seed_len = 5;
  cfg.threads = 16;
  cfg.tile_blocks = 2;
  cfg.output_capacity = 8;  // absurdly small: forces doubling retries
  const Engine engine(cfg);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  const auto query = mut.apply(base, 5);
  EXPECT_EQ(engine.run(base, query).mems,
            mem::find_mems_naive(base, query, 10));
}

TEST(Pipeline, KernelBreakdownCoversModeledTime) {
  const auto base = seq::GenomeModel{.length = 3000}.generate(31);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  const auto query = mut.apply(base, 9);
  Config cfg;
  cfg.min_length = 12;
  cfg.seed_len = 6;
  cfg.threads = 16;
  cfg.tile_blocks = 2;
  const auto result = Engine(cfg).run(base, query);
  ASSERT_FALSE(result.stats.kernel_breakdown.empty());
  std::vector<std::string> labels;
  double total = 0.0;
  std::uint64_t launches = 0;
  for (const auto& ks : result.stats.kernel_breakdown) {
    labels.push_back(ks.label);
    total += ks.seconds;
    launches += ks.launches;
    EXPECT_GE(ks.seconds, 0.0);
    EXPECT_GT(ks.launches, 0u) << ks.label;
  }
  // Every pipeline stage shows up.
  for (const char* expect : {"match", "index/count", "index/fill",
                             "index/sort", "scan/chunk-sums", "scan/apply"}) {
    EXPECT_NE(std::find(labels.begin(), labels.end(), expect), labels.end())
        << expect;
  }
  // Breakdown is a decomposition of (most of) the modeled kernel time, and
  // every labelled launch is part of the run's launch total.
  EXPECT_LE(total, result.stats.index_seconds + result.stats.match_seconds + 1e-9);
  EXPECT_LE(launches, result.stats.kernels_launched);
  // Sorted descending.
  for (std::size_t i = 1; i < result.stats.kernel_breakdown.size(); ++i) {
    EXPECT_GE(result.stats.kernel_breakdown[i - 1].seconds,
              result.stats.kernel_breakdown[i].seconds);
  }
}

TEST(Pipeline, TracedStageSpansDecomposeRunStats) {
  // With observability on, the "stage" spans (per-row index builds, per-tile
  // matches, the host merge) must decompose index_seconds + match_seconds:
  // the trace is the same accounting, just structured.
  obs::Registry& reg = obs::Registry::global();
  reg.reset();
  reg.set_enabled(true);

  const auto base = seq::GenomeModel{.length = 4000}.generate(41);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  const auto query = mut.apply(base, 13);
  Config cfg;
  cfg.min_length = 12;
  cfg.seed_len = 6;
  cfg.threads = 16;
  cfg.tile_blocks = 2;
  const auto result = Engine(cfg).run(base, query);

  double stage_seconds = 0.0;
  std::uint64_t index_spans = 0, match_spans = 0, stitch_spans = 0;
  std::uint64_t kernel_spans = 0;
  for (const obs::SpanEvent& ev : reg.trace().events()) {
    if (ev.category == "stage") {
      stage_seconds += ev.duration_us * 1e-6;
      index_spans += ev.name == "index/build-row";
      match_spans += ev.name == "match/tile";
      stitch_spans += ev.name == "stitch/host-merge";
    }
    kernel_spans += ev.category == "kernel";
  }
  EXPECT_EQ(index_spans, result.stats.tile_rows);
  EXPECT_EQ(match_spans,
            std::uint64_t{result.stats.tile_rows} * result.stats.tile_cols);
  EXPECT_EQ(stitch_spans, 1u);
  EXPECT_EQ(kernel_spans, result.stats.kernels_launched);
  const double run_seconds =
      result.stats.index_seconds + result.stats.match_seconds;
  EXPECT_NEAR(stage_seconds, run_seconds, 1e-9 + run_seconds * 1e-6);

  // Metrics mirror every RunStats field of the same run.
  obs::Metrics& m = reg.metrics();
  EXPECT_DOUBLE_EQ(m.gauge("run.index_seconds").value(),
                   result.stats.index_seconds);
  EXPECT_DOUBLE_EQ(m.gauge("run.match_seconds").value(),
                   result.stats.match_seconds);
  EXPECT_DOUBLE_EQ(m.gauge("run.host_stitch_seconds").value(),
                   result.stats.host_stitch_seconds);
  EXPECT_DOUBLE_EQ(m.gauge("run.wall_seconds").value(),
                   result.stats.wall_seconds);
  EXPECT_DOUBLE_EQ(m.gauge("run.mem_count").value(),
                   static_cast<double>(result.stats.mem_count));
  EXPECT_DOUBLE_EQ(m.gauge("run.kernels_launched").value(),
                   static_cast<double>(result.stats.kernels_launched));
  for (const auto& ks : result.stats.kernel_breakdown) {
    EXPECT_DOUBLE_EQ(m.gauge("kernel." + ks.label + ".seconds").value(),
                     ks.seconds);
    EXPECT_DOUBLE_EQ(m.gauge("kernel." + ks.label + ".launches").value(),
                     static_cast<double>(ks.launches));
  }

  reg.set_enabled(false);
  reg.reset();
}

TEST(Pipeline, StatsAreCoherent) {
  const auto base = seq::GenomeModel{.length = 4000}.generate(23);
  seq::MutationModel mut;
  mut.snp_rate = 0.01;
  const auto query = mut.apply(base, 6);
  Config cfg;
  cfg.min_length = 16;
  cfg.seed_len = 8;
  cfg.threads = 16;
  cfg.tile_blocks = 2;
  const Engine engine(cfg);
  const auto result = engine.run(base, query);
  EXPECT_GE(result.stats.tile_rows, 1u);
  EXPECT_GE(result.stats.tile_cols, 1u);
  EXPECT_GT(result.stats.kernels_launched, 0u);
  EXPECT_GT(result.stats.device_peak_bytes, 0u);
  EXPECT_GT(result.stats.wall_seconds, 0.0);
  // Reported MEM counters cover at least the final set (duplicates across
  // stages are possible, fewer is not).
  EXPECT_GE(result.stats.inblock_mems + result.stats.intile_mems +
                result.stats.outtile_pieces,
            result.stats.mem_count);
}

TEST(Pipeline, LoadBalanceDoesNotChangeModeledResultButChangesTime) {
  // Skewed seed distribution: modeled time with balancing must beat the
  // unbalanced run (Fig. 7's effect), with identical output.
  std::string r_str;
  for (int i = 0; i < 500; ++i) r_str += "ACGGTTCA";  // repeat-heavy
  const auto base = seq::Sequence::from_string(r_str);
  seq::MutationModel mut;
  mut.snp_rate = 0.03;
  const auto query = mut.apply(base, 7);

  Config cfg;
  cfg.min_length = 16;
  cfg.seed_len = 8;
  cfg.threads = 64;
  cfg.tile_blocks = 2;

  cfg.load_balance = true;
  const auto with_lb = Engine(cfg).run(base, query);
  cfg.load_balance = false;
  const auto without_lb = Engine(cfg).run(base, query);

  EXPECT_EQ(with_lb.mems, without_lb.mems);
  EXPECT_LT(with_lb.stats.match_seconds, without_lb.stats.match_seconds);
}

TEST(GpumemFinder, AdapterReportsStats) {
  const auto base = seq::GenomeModel{.length = 2000}.generate(25);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  const auto query = mut.apply(base, 8);

  core::GpumemFinder finder(Backend::kSimt);
  finder.mutable_config().seed_len = 6;
  finder.mutable_config().threads = 16;
  finder.mutable_config().tile_blocks = 2;
  mem::FinderOptions opt;
  opt.min_length = 12;
  finder.build_index(base, opt);
  const auto mems = finder.find(query);
  EXPECT_EQ(mems, mem::find_mems_naive(base, query, 12));
  EXPECT_GT(finder.last_stats().index_seconds, 0.0);
  EXPECT_EQ(finder.last_stats().mem_count, mems.size());
  EXPECT_EQ(finder.name(), "gpumem");
  EXPECT_EQ(core::GpumemFinder(Backend::kNative).name(), "gpumem-native");
}

TEST(NativeIndexReuse, PrebuiltMatchesAdhoc) {
  const auto base = seq::GenomeModel{.length = 6000}.generate(51);
  Config cfg;
  cfg.min_length = 14;
  cfg.seed_len = 7;
  cfg.threads = 16;
  cfg.tile_blocks = 2;
  cfg.backend = Backend::kNative;
  const Engine engine(cfg);
  const auto prebuilt = engine.build_native_index(base);
  EXPECT_EQ(prebuilt.rows.size(),
            (base.size() + engine.config().validated().tile_len - 1) /
                engine.config().validated().tile_len);

  seq::MutationModel mut;
  mut.snp_rate = 0.03;
  for (int q = 0; q < 3; ++q) {
    const auto query = mut.apply(base, 60 + q);
    const auto adhoc = engine.run(base, query);
    const auto reused = engine.run_native_prebuilt(base, query, prebuilt);
    EXPECT_EQ(adhoc.mems, reused.mems) << q;
    EXPECT_EQ(reused.stats.index_seconds, 0.0);
  }
}

TEST(NativeIndexReuse, FinderReusesAcrossQueries) {
  const auto base = seq::GenomeModel{.length = 5000}.generate(52);
  core::GpumemFinder finder(Backend::kNative);
  finder.mutable_config().seed_len = 6;
  finder.mutable_config().tile_blocks = 2;
  finder.mutable_config().threads = 16;
  mem::FinderOptions opt;
  opt.min_length = 12;
  finder.build_index(base, opt);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  for (int q = 0; q < 3; ++q) {
    const auto query = mut.apply(base, 70 + q);
    EXPECT_EQ(finder.find(query), mem::find_mems_naive(base, query, 12)) << q;
    EXPECT_GT(finder.last_stats().index_seconds, 0.0);  // the one-time build
  }
}

TEST(GpumemFinder, FindBeforeBuildThrows) {
  core::GpumemFinder finder;
  EXPECT_THROW(finder.find(seq::Sequence::from_string("ACGT")),
               std::logic_error);
}

TEST(FastIndex, RunFastIndexMatchesTiledPipeline) {
  // Engine::run_fast_index (copMEM double sampling) must return the exact
  // MEM set of the tiled SIMT/native pipelines, with the sampled-index
  // build reported as index_seconds and the scan as match_seconds.
  const auto base = seq::GenomeModel{.length = 6000}.generate(53);
  Config cfg;
  cfg.min_length = 14;
  cfg.seed_len = 7;
  cfg.threads = 16;
  cfg.tile_blocks = 2;
  const Engine engine(cfg);
  seq::MutationModel mut;
  mut.snp_rate = 0.03;
  for (int q = 0; q < 3; ++q) {
    const auto query = mut.apply(base, 80 + q);
    const auto tiled = engine.run(base, query);
    const auto fast = engine.run_fast_index(base, query);
    EXPECT_EQ(fast.mems, tiled.mems) << q;
    EXPECT_EQ(fast.stats.mem_count, fast.mems.size());
    EXPECT_GT(fast.stats.index_seconds, 0.0);
    EXPECT_GT(fast.stats.wall_seconds, 0.0);
  }
}

}  // namespace
}  // namespace gm
