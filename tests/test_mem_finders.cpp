// Cross-validation: every MEM finder must produce the identical MEM set.
// The naive diagonal scanner is the ground truth; it is itself validated on
// hand-constructed cases first.
#include <gtest/gtest.h>

#include <cctype>

#include "core/finders.h"
#include "mem/common.h"
#include "mem/essamem.h"
#include "mem/mummer.h"
#include "mem/naive.h"
#include "mem/registry.h"
#include "mem/slamem.h"
#include "mem/sparsemem.h"
#include "mem/validate.h"
#include "seq/synthetic.h"
#include "util/rng.h"

namespace gm {
namespace {

using mem::Mem;

seq::Sequence random_seq(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> codes(n);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.bounded(4));
  return seq::Sequence::from_codes(codes);
}

TEST(Naive, HandConstructedCases) {
  const auto R = seq::Sequence::from_string("AAAACGTAAAA");
  const auto Q = seq::Sequence::from_string("TTTACGTTTT");
  // Shared substring "ACGT" at R[3], Q[3]; maximal both sides.
  const auto mems = mem::find_mems_naive(R, Q, 4);
  ASSERT_EQ(mems.size(), 1u);
  EXPECT_EQ(mems[0], (Mem{3, 3, 4}));
}

TEST(Naive, BoundaryMaximality) {
  // Match runs to both sequence starts and ends: still a MEM.
  const auto R = seq::Sequence::from_string("ACGTACGT");
  const auto Q = seq::Sequence::from_string("ACGTACGT");
  const auto mems = mem::find_mems_naive(R, Q, 8);
  ASSERT_EQ(mems.size(), 1u);
  EXPECT_EQ(mems[0], (Mem{0, 0, 8}));
}

TEST(Naive, RepeatedSeedManyMems) {
  const auto R = seq::Sequence::from_string("ACGTGGACGTCCACGT");
  const auto Q = seq::Sequence::from_string("TTACGTTT");
  // "ACGT" occurs three times in R, once in Q -> three MEMs of length 4.
  const auto mems = mem::find_mems_naive(R, Q, 4);
  ASSERT_EQ(mems.size(), 3u);
  for (const auto& m : mems) EXPECT_EQ(m.len, 4u);
}

TEST(Naive, SubMaximalMatchesExcluded) {
  // Q's "CGT" also matches inside R's "ACGT" but is not left-maximal there.
  const auto R = seq::Sequence::from_string("AACGTAA");
  const auto Q = seq::Sequence::from_string("GACGTAG");
  const auto mems = mem::find_mems_naive(R, Q, 3);
  // Expect exactly the maximal "ACGTA".
  ASSERT_EQ(mems.size(), 1u);
  EXPECT_EQ(mems[0], (Mem{1, 1, 5}));
}

TEST(Naive, EmptyInputs) {
  const auto R = seq::Sequence::from_string("ACGT");
  EXPECT_TRUE(mem::find_mems_naive(R, seq::Sequence(), 2).empty());
  EXPECT_TRUE(mem::find_mems_naive(seq::Sequence(), R, 2).empty());
}

TEST(CommonHelpers, LeftMaximalAtBoundaries) {
  const auto R = seq::Sequence::from_string("ACGT");
  const auto Q = seq::Sequence::from_string("ACGT");
  EXPECT_TRUE(mem::left_maximal(R, Q, 0, 2));
  EXPECT_TRUE(mem::left_maximal(R, Q, 2, 0));
  EXPECT_FALSE(mem::left_maximal(R, Q, 2, 2));
  EXPECT_TRUE(mem::left_maximal(R, Q, 1, 2));  // C vs A differ
}

TEST(CommonHelpers, SampledCandidateDedupe) {
  // MEM of length 12 at (r=4, q=0); grid step 4 -> in-MEM grid points at
  // r=4, 8, 12; only the first may emit.
  const auto R = seq::Sequence::from_string("TTTTACGTACGTACGTTTTT");
  const auto Q = seq::Sequence::from_string("ACGTACGTACGTGGGG");
  std::vector<Mem> out;
  mem::emit_sampled_candidate(R, Q, 4, 0, 4, 8, out);   // first grid point
  mem::emit_sampled_candidate(R, Q, 8, 4, 4, 8, out);   // interior: skipped
  mem::emit_sampled_candidate(R, Q, 12, 8, 4, 8, out);  // interior: skipped
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Mem{4, 0, 12}));
}

// ---------------------------------------------------------------------------
// Parameterized cross-finder equivalence sweep.
// ---------------------------------------------------------------------------

struct SweepCase {
  std::size_t ref_len;
  std::size_t query_len;
  double divergence;  // < 0: unrelated random pair
  std::uint32_t min_len;
  std::uint64_t seed;
};

void print_case(const SweepCase& c, std::ostream* os) {
  *os << "ref=" << c.ref_len << " query=" << c.query_len
      << " div=" << c.divergence << " L=" << c.min_len << " seed=" << c.seed;
}

std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
  print_case(c, &os);
  return os;
}

class FinderEquivalence : public ::testing::TestWithParam<SweepCase> {
 protected:
  void build_pair(seq::Sequence& ref, seq::Sequence& query) const {
    const SweepCase& c = GetParam();
    if (c.divergence < 0) {
      ref = random_seq(c.ref_len, c.seed);
      query = random_seq(c.query_len, c.seed + 1);
    } else {
      const seq::Sequence base =
          seq::GenomeModel{.length = c.ref_len}.generate(c.seed);
      ref = base;
      seq::MutationModel mut;
      mut.snp_rate = c.divergence;
      mut.indel_rate = c.divergence / 5;
      mut.inversions = 1;
      mut.translocations = 1;
      mut.duplications = 1;
      mut.segment_mean = c.ref_len / 8;
      mut.target_length = c.query_len;
      query = mut.apply(base, c.seed + 2);
    }
  }
};

TEST_P(FinderEquivalence, AllFindersAgree) {
  const SweepCase& c = GetParam();
  seq::Sequence ref, query;
  build_pair(ref, query);
  const std::vector<Mem> truth = mem::find_mems_naive(ref, query, c.min_len);

  mem::FinderOptions opt;
  opt.min_length = c.min_len;

  {
    mem::MummerFinder f;
    f.build_index(ref, opt);
    EXPECT_EQ(f.find(query), truth) << "mummer";
  }
  for (std::uint32_t k : {1u, 3u, std::min(8u, c.min_len)}) {
    mem::FinderOptions sparse_opt = opt;
    sparse_opt.sparseness = k;
    sparse_opt.threads = 3;  // exercise sharding
    {
      mem::SparseMemFinder f;
      f.build_index(ref, sparse_opt);
      EXPECT_EQ(f.find(query), truth) << "sparsemem K=" << k;
    }
    {
      mem::EssaMemFinder f;
      f.build_index(ref, sparse_opt);
      EXPECT_EQ(f.find(query), truth) << "essamem K=" << k;
    }
  }
  {
    mem::SlaMemFinder f;
    f.build_index(ref, opt);
    EXPECT_EQ(f.find(query), truth) << "slamem";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FinderEquivalence,
    ::testing::Values(
        // Related pairs across divergence levels and L values.
        SweepCase{2000, 2000, 0.01, 20, 1},
        SweepCase{2000, 2500, 0.05, 15, 2},
        SweepCase{3000, 1500, 0.002, 30, 3},
        SweepCase{1000, 1000, 0.10, 10, 4},
        // Unrelated pair: few, short MEMs.
        SweepCase{2000, 2000, -1.0, 12, 5},
        // Tiny L (dense output), tiny sequences.
        SweepCase{300, 300, 0.02, 8, 6},
        SweepCase{64, 64, 0.05, 6, 7},
        // Identical sequences: one giant MEM + repeat structure.
        SweepCase{1500, 1500, 0.0, 25, 8},
        // Highly repetitive genomes (tandem-heavy model).
        SweepCase{1200, 1200, 0.03, 14, 9}));

TEST(FinderEquivalence, RepetitiveTandemStress) {
  // Tandem repeats create seeds with hundreds of occurrences — the load
  // imbalance scenario of the paper's Fig. 6 — and many co-diagonal MEMs.
  std::string motif = "ACGGT";
  std::string r_str, q_str;
  for (int i = 0; i < 120; ++i) r_str += motif;
  q_str = r_str.substr(7, 400);
  q_str += "TTTT";
  q_str += r_str.substr(100, 200);
  const auto R = seq::Sequence::from_string(r_str);
  const auto Q = seq::Sequence::from_string(q_str);
  const auto truth = mem::find_mems_naive(R, Q, 12);
  ASSERT_FALSE(truth.empty());

  mem::FinderOptions opt;
  opt.min_length = 12;
  for (const std::string name : {"mummer", "sparsemem", "essamem", "slamem"}) {
    auto f = mem::create_finder(name);
    mem::FinderOptions o = opt;
    o.sparseness = (name == "sparsemem" || name == "essamem") ? 4 : 1;
    f->build_index(R, o);
    EXPECT_EQ(f->find(Q), truth) << name;
  }
}

TEST(Validate, AcceptsGroundTruthRejectsCorruptions) {
  const auto base = seq::GenomeModel{.length = 2000}.generate(33);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  const auto query = mut.apply(base, 34);
  auto truth = mem::find_mems_naive(base, query, 15);
  ASSERT_FALSE(truth.empty());
  EXPECT_TRUE(mem::validate_mems(base, query, truth, 15).ok());

  {  // too-short entry
    auto bad = truth;
    bad[0].len = 3;
    const auto rep = mem::validate_mems(base, query, bad, 15);
    EXPECT_FALSE(rep.ok());
    EXPECT_NE(rep.first_error.find("shorter"), std::string::npos);
  }
  {  // shifted start breaks character equality (or maximality)
    auto bad = truth;
    bad[0].r += 1;
    EXPECT_FALSE(mem::validate_mems(base, query, bad, 15).ok());
  }
  {  // truncation breaks right-maximality
    auto bad = truth;
    bad[0].len -= 1;
    const auto rep = mem::validate_mems(base, query, bad, 15);
    EXPECT_FALSE(rep.ok());
  }
  {  // duplicate breaks canonical order
    auto bad = truth;
    bad.push_back(bad.back());
    EXPECT_FALSE(mem::validate_mems(base, query, bad, 15).ok());
  }
  {  // out of bounds
    auto bad = truth;
    bad[0].r = static_cast<std::uint32_t>(base.size());
    const auto rep = mem::validate_mems(base, query, bad, 15);
    EXPECT_FALSE(rep.ok());
    EXPECT_NE(rep.first_error.find("bounds"), std::string::npos);
  }
}

TEST(Validate, EveryFinderPassesOnMediumInput) {
  const auto base = seq::GenomeModel{.length = 20000}.generate(35);
  seq::MutationModel mut;
  mut.snp_rate = 0.03;
  const auto query = mut.apply(base, 36);
  mem::FinderOptions opt;
  opt.min_length = 20;
  for (const auto& name : mem::finder_names()) {
    if (name == "naive") continue;
    auto finder = mem::create_finder(name);
    mem::FinderOptions o = opt;
    o.sparseness = (name == "sparsemem" || name == "essamem") ? 4 : 1;
    finder->build_index(base, o);
    const auto mems = finder->find(query);
    const auto rep = mem::validate_mems(base, query, mems, 20);
    EXPECT_TRUE(rep.ok()) << name << ": " << rep.first_error;
    EXPECT_GT(rep.checked, 0u) << name;
  }
}

TEST(FinderOptions, SparsenessBounds) {
  const auto R = random_seq(500, 30);
  mem::FinderOptions opt;
  opt.min_length = 10;
  opt.sparseness = 11;  // > L
  mem::SparseMemFinder sf;
  EXPECT_THROW(sf.build_index(R, opt), std::invalid_argument);
  mem::EssaMemFinder ef;
  EXPECT_THROW(ef.build_index(R, opt), std::invalid_argument);
}

TEST(Registry, CreatesEveryRegisteredFinder) {
  for (const auto& name : mem::finder_names()) {
    EXPECT_NO_THROW({ auto f = mem::create_finder(name); EXPECT_EQ(f->name(), name); })
        << name;
  }
  EXPECT_THROW(mem::create_finder("bogus"), std::invalid_argument);
}

TEST(Finders, FindBeforeBuildThrows) {
  const auto Q = random_seq(100, 31);
  EXPECT_THROW(mem::MummerFinder().find(Q), std::logic_error);
  EXPECT_THROW(mem::SparseMemFinder().find(Q), std::logic_error);
  EXPECT_THROW(mem::EssaMemFinder().find(Q), std::logic_error);
  EXPECT_THROW(mem::SlaMemFinder().find(Q), std::logic_error);
}

// --- invalid-base (mask) policy --------------------------------------------
// Project rule (src/mem/clip.h): a non-ACGT base matches nothing — it
// terminates matches and never appears inside a MEM — and every finder must
// enforce it identically.

TEST(InvalidBases, NRunSplitsMemInEveryFinder) {
  // Identical sequences with one N at position 8: no match may span the N,
  // so the would-be full-length MEM splits into the two flanks (which also
  // match each other across the N — both sides are "ACGTACGT").
  const auto R = seq::Sequence::from_string_lenient("ACGTACGTNACGTACGT");
  const auto Q = R;
  const std::vector<Mem> expect{{0, 0, 8}, {0, 9, 8}, {9, 0, 8}, {9, 9, 8}};
  EXPECT_EQ(mem::find_mems_naive(R, Q, 5), expect);
  mem::FinderOptions opt;
  opt.min_length = 5;
  for (const auto& name : mem::finder_names()) {
    if (name == "naive" || name.starts_with("gpumem")) continue;
    auto f = mem::create_finder(name);
    f->build_index(R, opt);
    EXPECT_EQ(f->find(Q), expect) << name;
  }
  for (const auto backend : {core::Backend::kSimt, core::Backend::kNative}) {
    core::GpumemFinder f(backend);
    f.mutable_config().seed_len = 3;  // default 10 exceeds this tiny L
    f.build_index(R, opt);
    EXPECT_EQ(f.find(Q), expect) << f.name();
  }
}

TEST(InvalidBases, NNeverMatchesN) {
  // N-vs-N positions are placeholder-code-equal but must not match: with
  // L = 4 nothing survives, with L = 3 each flank matches each flank.
  const auto R = seq::Sequence::from_string_lenient("ACGNACG");
  const auto Q = seq::Sequence::from_string_lenient("ACGNACG");
  EXPECT_TRUE(mem::find_mems_naive(R, Q, 4).empty());
  EXPECT_EQ(mem::find_mems_naive(R, Q, 3),
            (std::vector<Mem>{{0, 0, 3}, {0, 4, 3}, {4, 0, 3}, {4, 4, 3}}));
}

TEST(InvalidBases, FlankBoundedByNIsMaximal) {
  // The match ends where the N starts — and that IS maximal, so validators
  // must accept it and finders must report it.
  const auto R = seq::Sequence::from_string_lenient("AAAACGTTNGG");
  const auto Q = seq::Sequence::from_string_lenient("CACGTTCC");
  // Shared "ACGTT": ref [3,8) vs query [1,6); ref side then hits N-adjacent
  // G at 8? No: ref[8]='N' blocks right-extension beyond position 7.
  const auto truth = mem::find_mems_naive(R, Q, 5);
  ASSERT_EQ(truth.size(), 1u);
  EXPECT_EQ(truth[0], (Mem{3, 1, 5}));
  const auto rep = mem::validate_mems(R, Q, truth, 5);
  EXPECT_TRUE(rep.ok()) << rep.first_error;
}

TEST(InvalidBases, RandomizedNRunsAgreeAcrossFinders) {
  util::Xoshiro256 rng(41);
  for (int trial = 0; trial < 8; ++trial) {
    // Related pair, then punch N runs into both sides.
    const auto base = seq::GenomeModel{.length = 1200}.generate(50 + trial);
    seq::MutationModel mut;
    mut.snp_rate = 0.02;
    const auto derived = mut.apply(base, 60 + trial);
    std::string r = base.to_string(), q = derived.to_string();
    for (auto* s : {&r, &q}) {
      const int runs = static_cast<int>(rng.range(1, 4));
      for (int k = 0; k < runs; ++k) {
        const std::size_t len = static_cast<std::size_t>(rng.range(1, 12));
        const std::size_t pos = rng.bounded(s->size() - len);
        for (std::size_t i = 0; i < len; ++i) (*s)[pos + i] = 'N';
      }
    }
    const auto R = seq::Sequence::from_string_lenient(r);
    const auto Q = seq::Sequence::from_string_lenient(q);
    const auto truth = mem::find_mems_naive(R, Q, 12);
    const auto rep = mem::validate_mems(R, Q, truth, 12);
    EXPECT_TRUE(rep.ok()) << rep.first_error;
    mem::FinderOptions opt;
    opt.min_length = 12;
    for (const auto& name : mem::finder_names()) {
      if (name == "naive") continue;
      auto f = mem::create_finder(name);
      f->build_index(R, opt);
      EXPECT_EQ(f->find(Q), truth) << name << " trial " << trial;
    }
  }
}

TEST(InvalidBases, LowercaseIsValidAndCaseInsensitive) {
  // Soft masking (lowercase) is NOT the invalid-base policy: the codec is
  // case-insensitive, so results must be identical to the uppercase input.
  const auto base = seq::GenomeModel{.length = 800}.generate(70);
  seq::MutationModel mut;
  mut.snp_rate = 0.03;
  const auto derived = mut.apply(base, 71);
  std::string r = base.to_string(), q = derived.to_string();
  const auto upper_truth = mem::find_mems_naive(
      seq::Sequence::from_string_lenient(r),
      seq::Sequence::from_string_lenient(q), 12);
  for (auto& c : r) c = static_cast<char>(std::tolower(c));
  for (std::size_t i = 0; i < q.size(); i += 2) {
    q[i] = static_cast<char>(std::tolower(q[i]));
  }
  const auto R = seq::Sequence::from_string_lenient(r);
  const auto Q = seq::Sequence::from_string_lenient(q);
  EXPECT_FALSE(R.has_invalid());
  EXPECT_EQ(mem::find_mems_naive(R, Q, 12), upper_truth);
  mem::FinderOptions opt;
  opt.min_length = 12;
  for (const auto& name : mem::finder_names()) {
    if (name == "naive") continue;
    auto f = mem::create_finder(name);
    f->build_index(R, opt);
    EXPECT_EQ(f->find(Q), upper_truth) << name;
  }
}

TEST(Finders, QueryShorterThanL) {
  const auto R = random_seq(500, 32);
  const auto Q = random_seq(8, 33);
  mem::FinderOptions opt;
  opt.min_length = 20;
  for (const std::string name : {"mummer", "sparsemem", "essamem", "slamem"}) {
    auto f = mem::create_finder(name);
    f->build_index(R, opt);
    EXPECT_TRUE(f->find(Q).empty()) << name;
  }
}

}  // namespace
}  // namespace gm
