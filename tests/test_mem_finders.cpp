// Cross-validation: every MEM finder must produce the identical MEM set.
// The naive diagonal scanner is the ground truth; it is itself validated on
// hand-constructed cases first.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <numeric>

#include "core/finders.h"
#include "mem/common.h"
#include "mem/copmem.h"
#include "mem/essamem.h"
#include "mem/mummer.h"
#include "mem/naive.h"
#include "mem/registry.h"
#include "mem/slamem.h"
#include "mem/sparsemem.h"
#include "mem/validate.h"
#include "seq/synthetic.h"
#include "util/rng.h"

namespace gm {
namespace {

using mem::Mem;

seq::Sequence random_seq(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> codes(n);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.bounded(4));
  return seq::Sequence::from_codes(codes);
}

TEST(Naive, HandConstructedCases) {
  const auto R = seq::Sequence::from_string("AAAACGTAAAA");
  const auto Q = seq::Sequence::from_string("TTTACGTTTT");
  // Shared substring "ACGT" at R[3], Q[3]; maximal both sides.
  const auto mems = mem::find_mems_naive(R, Q, 4);
  ASSERT_EQ(mems.size(), 1u);
  EXPECT_EQ(mems[0], (Mem{3, 3, 4}));
}

TEST(Naive, BoundaryMaximality) {
  // Match runs to both sequence starts and ends: still a MEM.
  const auto R = seq::Sequence::from_string("ACGTACGT");
  const auto Q = seq::Sequence::from_string("ACGTACGT");
  const auto mems = mem::find_mems_naive(R, Q, 8);
  ASSERT_EQ(mems.size(), 1u);
  EXPECT_EQ(mems[0], (Mem{0, 0, 8}));
}

TEST(Naive, RepeatedSeedManyMems) {
  const auto R = seq::Sequence::from_string("ACGTGGACGTCCACGT");
  const auto Q = seq::Sequence::from_string("TTACGTTT");
  // "ACGT" occurs three times in R, once in Q -> three MEMs of length 4.
  const auto mems = mem::find_mems_naive(R, Q, 4);
  ASSERT_EQ(mems.size(), 3u);
  for (const auto& m : mems) EXPECT_EQ(m.len, 4u);
}

TEST(Naive, SubMaximalMatchesExcluded) {
  // Q's "CGT" also matches inside R's "ACGT" but is not left-maximal there.
  const auto R = seq::Sequence::from_string("AACGTAA");
  const auto Q = seq::Sequence::from_string("GACGTAG");
  const auto mems = mem::find_mems_naive(R, Q, 3);
  // Expect exactly the maximal "ACGTA".
  ASSERT_EQ(mems.size(), 1u);
  EXPECT_EQ(mems[0], (Mem{1, 1, 5}));
}

TEST(Naive, EmptyInputs) {
  const auto R = seq::Sequence::from_string("ACGT");
  EXPECT_TRUE(mem::find_mems_naive(R, seq::Sequence(), 2).empty());
  EXPECT_TRUE(mem::find_mems_naive(seq::Sequence(), R, 2).empty());
}

TEST(CommonHelpers, LeftMaximalAtBoundaries) {
  const auto R = seq::Sequence::from_string("ACGT");
  const auto Q = seq::Sequence::from_string("ACGT");
  EXPECT_TRUE(mem::left_maximal(R, Q, 0, 2));
  EXPECT_TRUE(mem::left_maximal(R, Q, 2, 0));
  EXPECT_FALSE(mem::left_maximal(R, Q, 2, 2));
  EXPECT_TRUE(mem::left_maximal(R, Q, 1, 2));  // C vs A differ
}

TEST(CommonHelpers, SampledCandidateDedupe) {
  // MEM of length 12 at (r=4, q=0); grid step 4 -> in-MEM grid points at
  // r=4, 8, 12; only the first may emit.
  const auto R = seq::Sequence::from_string("TTTTACGTACGTACGTTTTT");
  const auto Q = seq::Sequence::from_string("ACGTACGTACGTGGGG");
  std::vector<Mem> out;
  mem::emit_sampled_candidate(R, Q, 4, 0, 4, 8, out);   // first grid point
  mem::emit_sampled_candidate(R, Q, 8, 4, 4, 8, out);   // interior: skipped
  mem::emit_sampled_candidate(R, Q, 12, 8, 4, 8, out);  // interior: skipped
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Mem{4, 0, 12}));
}

// ---------------------------------------------------------------------------
// Parameterized cross-finder equivalence sweep.
// ---------------------------------------------------------------------------

struct SweepCase {
  std::size_t ref_len;
  std::size_t query_len;
  double divergence;  // < 0: unrelated random pair
  std::uint32_t min_len;
  std::uint64_t seed;
};

void print_case(const SweepCase& c, std::ostream* os) {
  *os << "ref=" << c.ref_len << " query=" << c.query_len
      << " div=" << c.divergence << " L=" << c.min_len << " seed=" << c.seed;
}

std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
  print_case(c, &os);
  return os;
}

class FinderEquivalence : public ::testing::TestWithParam<SweepCase> {
 protected:
  void build_pair(seq::Sequence& ref, seq::Sequence& query) const {
    const SweepCase& c = GetParam();
    if (c.divergence < 0) {
      ref = random_seq(c.ref_len, c.seed);
      query = random_seq(c.query_len, c.seed + 1);
    } else {
      const seq::Sequence base =
          seq::GenomeModel{.length = c.ref_len}.generate(c.seed);
      ref = base;
      seq::MutationModel mut;
      mut.snp_rate = c.divergence;
      mut.indel_rate = c.divergence / 5;
      mut.inversions = 1;
      mut.translocations = 1;
      mut.duplications = 1;
      mut.segment_mean = c.ref_len / 8;
      mut.target_length = c.query_len;
      query = mut.apply(base, c.seed + 2);
    }
  }
};

TEST_P(FinderEquivalence, AllFindersAgree) {
  const SweepCase& c = GetParam();
  seq::Sequence ref, query;
  build_pair(ref, query);
  const std::vector<Mem> truth = mem::find_mems_naive(ref, query, c.min_len);

  mem::FinderOptions opt;
  opt.min_length = c.min_len;

  {
    mem::MummerFinder f;
    f.build_index(ref, opt);
    EXPECT_EQ(f.find(query), truth) << "mummer";
  }
  for (std::uint32_t k : {1u, 3u, std::min(8u, c.min_len)}) {
    mem::FinderOptions sparse_opt = opt;
    sparse_opt.sparseness = k;
    sparse_opt.threads = 3;  // exercise sharding
    {
      mem::SparseMemFinder f;
      f.build_index(ref, sparse_opt);
      EXPECT_EQ(f.find(query), truth) << "sparsemem K=" << k;
    }
    {
      mem::EssaMemFinder f;
      f.build_index(ref, sparse_opt);
      EXPECT_EQ(f.find(query), truth) << "essamem K=" << k;
    }
  }
  {
    mem::SlaMemFinder f;
    f.build_index(ref, opt);
    EXPECT_EQ(f.find(query), truth) << "slamem";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FinderEquivalence,
    ::testing::Values(
        // Related pairs across divergence levels and L values.
        SweepCase{2000, 2000, 0.01, 20, 1},
        SweepCase{2000, 2500, 0.05, 15, 2},
        SweepCase{3000, 1500, 0.002, 30, 3},
        SweepCase{1000, 1000, 0.10, 10, 4},
        // Unrelated pair: few, short MEMs.
        SweepCase{2000, 2000, -1.0, 12, 5},
        // Tiny L (dense output), tiny sequences.
        SweepCase{300, 300, 0.02, 8, 6},
        SweepCase{64, 64, 0.05, 6, 7},
        // Identical sequences: one giant MEM + repeat structure.
        SweepCase{1500, 1500, 0.0, 25, 8},
        // Highly repetitive genomes (tandem-heavy model).
        SweepCase{1200, 1200, 0.03, 14, 9}));

TEST(FinderEquivalence, RepetitiveTandemStress) {
  // Tandem repeats create seeds with hundreds of occurrences — the load
  // imbalance scenario of the paper's Fig. 6 — and many co-diagonal MEMs.
  std::string motif = "ACGGT";
  std::string r_str, q_str;
  for (int i = 0; i < 120; ++i) r_str += motif;
  q_str = r_str.substr(7, 400);
  q_str += "TTTT";
  q_str += r_str.substr(100, 200);
  const auto R = seq::Sequence::from_string(r_str);
  const auto Q = seq::Sequence::from_string(q_str);
  const auto truth = mem::find_mems_naive(R, Q, 12);
  ASSERT_FALSE(truth.empty());

  mem::FinderOptions opt;
  opt.min_length = 12;
  for (const std::string name : {"mummer", "sparsemem", "essamem", "slamem"}) {
    auto f = mem::create_finder(name);
    mem::FinderOptions o = opt;
    o.sparseness = (name == "sparsemem" || name == "essamem") ? 4 : 1;
    f->build_index(R, o);
    EXPECT_EQ(f->find(Q), truth) << name;
  }
}

TEST(Validate, AcceptsGroundTruthRejectsCorruptions) {
  const auto base = seq::GenomeModel{.length = 2000}.generate(33);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  const auto query = mut.apply(base, 34);
  auto truth = mem::find_mems_naive(base, query, 15);
  ASSERT_FALSE(truth.empty());
  EXPECT_TRUE(mem::validate_mems(base, query, truth, 15).ok());

  {  // too-short entry
    auto bad = truth;
    bad[0].len = 3;
    const auto rep = mem::validate_mems(base, query, bad, 15);
    EXPECT_FALSE(rep.ok());
    EXPECT_NE(rep.first_error.find("shorter"), std::string::npos);
  }
  {  // shifted start breaks character equality (or maximality)
    auto bad = truth;
    bad[0].r += 1;
    EXPECT_FALSE(mem::validate_mems(base, query, bad, 15).ok());
  }
  {  // truncation breaks right-maximality
    auto bad = truth;
    bad[0].len -= 1;
    const auto rep = mem::validate_mems(base, query, bad, 15);
    EXPECT_FALSE(rep.ok());
  }
  {  // duplicate breaks canonical order
    auto bad = truth;
    bad.push_back(bad.back());
    EXPECT_FALSE(mem::validate_mems(base, query, bad, 15).ok());
  }
  {  // out of bounds
    auto bad = truth;
    bad[0].r = static_cast<std::uint32_t>(base.size());
    const auto rep = mem::validate_mems(base, query, bad, 15);
    EXPECT_FALSE(rep.ok());
    EXPECT_NE(rep.first_error.find("bounds"), std::string::npos);
  }
}

TEST(Validate, EveryFinderPassesOnMediumInput) {
  const auto base = seq::GenomeModel{.length = 20000}.generate(35);
  seq::MutationModel mut;
  mut.snp_rate = 0.03;
  const auto query = mut.apply(base, 36);
  mem::FinderOptions opt;
  opt.min_length = 20;
  for (const auto& name : mem::finder_names()) {
    if (name == "naive") continue;
    auto finder = mem::create_finder(name);
    mem::FinderOptions o = opt;
    o.sparseness = (name == "sparsemem" || name == "essamem") ? 4 : 1;
    finder->build_index(base, o);
    const auto mems = finder->find(query);
    const auto rep = mem::validate_mems(base, query, mems, 20);
    EXPECT_TRUE(rep.ok()) << name << ": " << rep.first_error;
    EXPECT_GT(rep.checked, 0u) << name;
  }
}

TEST(FinderOptions, SparsenessBounds) {
  const auto R = random_seq(500, 30);
  mem::FinderOptions opt;
  opt.min_length = 10;
  opt.sparseness = 11;  // > L
  mem::SparseMemFinder sf;
  EXPECT_THROW(sf.build_index(R, opt), std::invalid_argument);
  mem::EssaMemFinder ef;
  EXPECT_THROW(ef.build_index(R, opt), std::invalid_argument);
}

// --- copMEM double-sampling finder -----------------------------------------

TEST(CopMem, ChooseParamsSatisfiesCoverageBound) {
  // Any raw MEM of length >= L contains a sampled (reference, query) pair
  // with a fitting K-mer iff k1 * k2 <= L - K + 1 and gcd(k1, k2) = 1
  // (docs/DESIGN.md). choose_params must deliver that for every legal (L, K).
  for (std::uint32_t L : {1u, 2u, 5u, 8u, 16u, 20u, 24u, 50u, 100u, 300u}) {
    for (unsigned K = 1; K <= std::min(L, 16u); ++K) {
      const auto p = mem::CopMemFinder::choose_params(L, K);
      const std::uint32_t limit = L - K + 1;
      EXPECT_GE(p.k1, 1u);
      EXPECT_GE(p.k2, 1u);
      EXPECT_LE(p.k1 * p.k2, limit) << "L=" << L << " K=" << K;
      EXPECT_EQ(std::gcd(p.k1, p.k2), 1u) << "L=" << L << " K=" << K;
      EXPECT_EQ(p.seed_len, K);
    }
  }
  EXPECT_THROW(mem::CopMemFinder::choose_params(10, 0), std::invalid_argument);
  EXPECT_THROW(mem::CopMemFinder::choose_params(10, 11), std::invalid_argument);
  EXPECT_THROW(mem::CopMemFinder::choose_params(40, 17), std::invalid_argument);
}

TEST(CopMem, AutoSeedLenIsAlwaysLegal) {
  for (const std::size_t ref_bases :
       {std::size_t{0}, std::size_t{17}, std::size_t{1000},
        std::size_t{1} << 20, std::size_t{1} << 32}) {
    for (std::uint32_t L : {1u, 4u, 12u, 20u, 100u}) {
      const unsigned K = mem::CopMemFinder::auto_seed_len(ref_bases, L);
      EXPECT_GE(K, 1u) << ref_bases << "/" << L;
      EXPECT_LE(K, std::min(L, 16u)) << ref_bases << "/" << L;
    }
  }
}

TEST(CopMem, AgreesWithNaiveAndEssaAcrossSamplingPhases) {
  // Plant shared segments at every offset modulo the sampling grid so MEMs
  // straddle each sampling-phase boundary; copmem must still equal the naive
  // truth (and essaMEM, the strongest prior finder) exactly.
  const auto base = seq::GenomeModel{.length = 900}.generate(81);
  const std::string r_str = base.to_string();
  std::string q_str = "TT";
  for (std::size_t s = 0; s < 24; ++s) {
    // Segment start walks every phase 0..23 of any grid up to 24; lengths
    // vary around L so some segments are exactly L, some longer.
    q_str += r_str.substr(31 * s + s % 24, 16 + (s % 7));
    q_str += "TTT";  // junk separator (also a valid base: keeps MEMs honest)
  }
  const auto R = seq::Sequence::from_string(r_str);
  const auto Q = seq::Sequence::from_string(q_str);
  const auto truth = mem::find_mems_naive(R, Q, 16);
  ASSERT_FALSE(truth.empty());

  mem::FinderOptions opt;
  opt.min_length = 16;
  for (const unsigned K : {0u, 1u, 4u, 8u, 11u}) {  // 0 = auto
    mem::CopMemFinder f;
    f.set_seed_len(K);
    f.build_index(R, opt);
    EXPECT_EQ(f.find(Q), truth) << "copmem K=" << K;
    const auto p = f.params();
    EXPECT_LE(p.k1 * p.k2, opt.min_length - p.seed_len + 1);
  }
  mem::EssaMemFinder essa;
  essa.build_index(R, opt);
  EXPECT_EQ(essa.find(Q), truth);
}

TEST(CopMem, DedupesMemReachableFromManySampledPairs) {
  // One long MEM covering >= 3 lattice pairs of the sampling grid: with
  // L = 24 and K = 4, choose_params gives k1 * k2 = 20, so a 100 bp match
  // holds at least four sampled (p, j) pairs — the finder must emit the MEM
  // exactly once (the minimal-pair rule in mem::emit_sampled_candidate).
  const auto core = random_seq(100, 91);
  const std::string match = core.to_string();
  const auto R = seq::Sequence::from_string("TTTTTTT" + match + "TTTTTTT");
  const auto Q = seq::Sequence::from_string("CCCCC" + match + "CCCCC");
  mem::FinderOptions opt;
  opt.min_length = 24;
  mem::CopMemFinder f;
  f.set_seed_len(4);
  f.build_index(R, opt);
  const auto p = f.params();
  ASSERT_GE(100u, 3 * p.k1 * p.k2 + p.seed_len)
      << "grid too coarse for the 3-pair premise";
  const auto got = f.find(Q);
  const auto truth = mem::find_mems_naive(R, Q, 24);
  EXPECT_EQ(got, truth);
  // The planted match itself appears exactly once.
  const Mem planted{7, 5, 100};
  EXPECT_EQ(std::count(got.begin(), got.end(), planted), 1);
}

TEST(CopMem, ShardedFindMatchesSequential) {
  const auto base = seq::GenomeModel{.length = 4000}.generate(93);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  const auto query = mut.apply(base, 94);
  mem::FinderOptions opt;
  opt.min_length = 20;
  mem::CopMemFinder seq_f;
  seq_f.build_index(base, opt);
  const auto truth = seq_f.find(query);
  ASSERT_FALSE(truth.empty());
  mem::FinderOptions par = opt;
  par.threads = 5;
  mem::CopMemFinder par_f;
  par_f.build_index(base, par);
  EXPECT_EQ(par_f.find(query), truth);
}

TEST(CopMem, InjectedCandidateDropLosesExactlyOneMem) {
  const auto base = seq::GenomeModel{.length = 1500}.generate(95);
  seq::MutationModel mut;
  mut.snp_rate = 0.03;
  const auto query = mut.apply(base, 96);
  mem::FinderOptions opt;
  opt.min_length = 18;
  mem::CopMemFinder f;
  f.build_index(base, opt);
  const auto clean = f.find(query);
  ASSERT_GT(clean.size(), 1u);
  f.inject_candidate_drop(true);
  const auto faulted = f.find(query);
  EXPECT_EQ(faulted.size(), clean.size() - 1);
  f.inject_candidate_drop(false);
  EXPECT_EQ(f.find(query), clean);
}

TEST(FinderOptions, ZeroValuesRejectedByEveryFinder) {
  // Satellite contract: every finder validates FinderOptions at its
  // build_index entry — zero min_length or zero sparseness is a
  // deterministic std::invalid_argument, never a hang or a wrong answer.
  const auto R = random_seq(300, 37);
  for (const auto& name : mem::finder_names()) {
    auto f = mem::create_finder(name);
    mem::FinderOptions zero_l;
    zero_l.min_length = 0;
    EXPECT_THROW(f->build_index(R, zero_l), std::invalid_argument)
        << name << " accepted min_length=0";
    auto g = mem::create_finder(name);
    mem::FinderOptions zero_k;
    zero_k.min_length = 10;
    zero_k.sparseness = 0;
    EXPECT_THROW(g->build_index(R, zero_k), std::invalid_argument)
        << name << " accepted sparseness=0";
  }
}

TEST(Registry, CreatesEveryRegisteredFinder) {
  for (const auto& name : mem::finder_names()) {
    EXPECT_NO_THROW({ auto f = mem::create_finder(name); EXPECT_EQ(f->name(), name); })
        << name;
  }
  EXPECT_THROW(mem::create_finder("bogus"), std::invalid_argument);
}

TEST(Finders, FindBeforeBuildThrows) {
  const auto Q = random_seq(100, 31);
  EXPECT_THROW(mem::MummerFinder().find(Q), std::logic_error);
  EXPECT_THROW(mem::SparseMemFinder().find(Q), std::logic_error);
  EXPECT_THROW(mem::EssaMemFinder().find(Q), std::logic_error);
  EXPECT_THROW(mem::SlaMemFinder().find(Q), std::logic_error);
  EXPECT_THROW(mem::CopMemFinder().find(Q), std::logic_error);
}

// --- invalid-base (mask) policy --------------------------------------------
// Project rule (src/mem/clip.h): a non-ACGT base matches nothing — it
// terminates matches and never appears inside a MEM — and every finder must
// enforce it identically.

TEST(InvalidBases, NRunSplitsMemInEveryFinder) {
  // Identical sequences with one N at position 8: no match may span the N,
  // so the would-be full-length MEM splits into the two flanks (which also
  // match each other across the N — both sides are "ACGTACGT").
  const auto R = seq::Sequence::from_string_lenient("ACGTACGTNACGTACGT");
  const auto Q = R;
  const std::vector<Mem> expect{{0, 0, 8}, {0, 9, 8}, {9, 0, 8}, {9, 9, 8}};
  EXPECT_EQ(mem::find_mems_naive(R, Q, 5), expect);
  mem::FinderOptions opt;
  opt.min_length = 5;
  for (const auto& name : mem::finder_names()) {
    if (name == "naive" || name.starts_with("gpumem")) continue;
    auto f = mem::create_finder(name);
    f->build_index(R, opt);
    EXPECT_EQ(f->find(Q), expect) << name;
  }
  for (const auto backend : {core::Backend::kSimt, core::Backend::kNative}) {
    core::GpumemFinder f(backend);
    f.mutable_config().seed_len = 3;  // default 10 exceeds this tiny L
    f.build_index(R, opt);
    EXPECT_EQ(f.find(Q), expect) << f.name();
  }
}

TEST(InvalidBases, NNeverMatchesN) {
  // N-vs-N positions are placeholder-code-equal but must not match: with
  // L = 4 nothing survives, with L = 3 each flank matches each flank.
  const auto R = seq::Sequence::from_string_lenient("ACGNACG");
  const auto Q = seq::Sequence::from_string_lenient("ACGNACG");
  EXPECT_TRUE(mem::find_mems_naive(R, Q, 4).empty());
  EXPECT_EQ(mem::find_mems_naive(R, Q, 3),
            (std::vector<Mem>{{0, 0, 3}, {0, 4, 3}, {4, 0, 3}, {4, 4, 3}}));
}

TEST(InvalidBases, FlankBoundedByNIsMaximal) {
  // The match ends where the N starts — and that IS maximal, so validators
  // must accept it and finders must report it.
  const auto R = seq::Sequence::from_string_lenient("AAAACGTTNGG");
  const auto Q = seq::Sequence::from_string_lenient("CACGTTCC");
  // Shared "ACGTT": ref [3,8) vs query [1,6); ref side then hits N-adjacent
  // G at 8? No: ref[8]='N' blocks right-extension beyond position 7.
  const auto truth = mem::find_mems_naive(R, Q, 5);
  ASSERT_EQ(truth.size(), 1u);
  EXPECT_EQ(truth[0], (Mem{3, 1, 5}));
  const auto rep = mem::validate_mems(R, Q, truth, 5);
  EXPECT_TRUE(rep.ok()) << rep.first_error;
}

TEST(InvalidBases, RandomizedNRunsAgreeAcrossFinders) {
  util::Xoshiro256 rng(41);
  for (int trial = 0; trial < 8; ++trial) {
    // Related pair, then punch N runs into both sides.
    const auto base = seq::GenomeModel{.length = 1200}.generate(50 + trial);
    seq::MutationModel mut;
    mut.snp_rate = 0.02;
    const auto derived = mut.apply(base, 60 + trial);
    std::string r = base.to_string(), q = derived.to_string();
    for (auto* s : {&r, &q}) {
      const int runs = static_cast<int>(rng.range(1, 4));
      for (int k = 0; k < runs; ++k) {
        const std::size_t len = static_cast<std::size_t>(rng.range(1, 12));
        const std::size_t pos = rng.bounded(s->size() - len);
        for (std::size_t i = 0; i < len; ++i) (*s)[pos + i] = 'N';
      }
    }
    const auto R = seq::Sequence::from_string_lenient(r);
    const auto Q = seq::Sequence::from_string_lenient(q);
    const auto truth = mem::find_mems_naive(R, Q, 12);
    const auto rep = mem::validate_mems(R, Q, truth, 12);
    EXPECT_TRUE(rep.ok()) << rep.first_error;
    mem::FinderOptions opt;
    opt.min_length = 12;
    for (const auto& name : mem::finder_names()) {
      if (name == "naive") continue;
      auto f = mem::create_finder(name);
      f->build_index(R, opt);
      EXPECT_EQ(f->find(Q), truth) << name << " trial " << trial;
    }
  }
}

TEST(InvalidBases, LowercaseIsValidAndCaseInsensitive) {
  // Soft masking (lowercase) is NOT the invalid-base policy: the codec is
  // case-insensitive, so results must be identical to the uppercase input.
  const auto base = seq::GenomeModel{.length = 800}.generate(70);
  seq::MutationModel mut;
  mut.snp_rate = 0.03;
  const auto derived = mut.apply(base, 71);
  std::string r = base.to_string(), q = derived.to_string();
  const auto upper_truth = mem::find_mems_naive(
      seq::Sequence::from_string_lenient(r),
      seq::Sequence::from_string_lenient(q), 12);
  for (auto& c : r) c = static_cast<char>(std::tolower(c));
  for (std::size_t i = 0; i < q.size(); i += 2) {
    q[i] = static_cast<char>(std::tolower(q[i]));
  }
  const auto R = seq::Sequence::from_string_lenient(r);
  const auto Q = seq::Sequence::from_string_lenient(q);
  EXPECT_FALSE(R.has_invalid());
  EXPECT_EQ(mem::find_mems_naive(R, Q, 12), upper_truth);
  mem::FinderOptions opt;
  opt.min_length = 12;
  for (const auto& name : mem::finder_names()) {
    if (name == "naive") continue;
    auto f = mem::create_finder(name);
    f->build_index(R, opt);
    EXPECT_EQ(f->find(Q), upper_truth) << name;
  }
}

TEST(SlaMem, LazyMatchesEagerOnBoundaryCases) {
  const auto R = random_seq(400, 71);
  mem::FinderOptions opt;
  opt.min_length = 5;
  mem::SlaMemFinder eager;
  eager.build_index(R, opt);
  mem::SlaMemFinder lazy(/*force_lazy=*/true);
  lazy.build_index(R, opt);
  ASSERT_FALSE(eager.lazy());
  ASSERT_TRUE(lazy.lazy());

  // Query shorter than L: no window of length L exists.
  const auto tiny = random_seq(10, 72);
  EXPECT_TRUE(eager.find_at(tiny, 20).empty());
  EXPECT_TRUE(lazy.find_at(tiny, 20).empty());

  // L == 1: every matching position participates; modes agree bit-for-bit.
  seq::Sequence probe;
  probe.append(R, 100, 30);
  const auto e1 = eager.find_at(probe, 1);
  EXPECT_FALSE(e1.empty());
  EXPECT_EQ(e1, lazy.find_at(probe, 1));

  // L larger than the reference: nothing can match, and neither mode may
  // throw or scan out of bounds.
  const auto long_q = random_seq(600, 73);
  const auto over = static_cast<std::uint32_t>(R.size()) + 10;
  EXPECT_TRUE(eager.find_at(long_q, over).empty());
  EXPECT_TRUE(lazy.find_at(long_q, over).empty());

  // All-N query: every window is clipped away in both modes.
  const auto all_n = seq::Sequence::from_string_lenient(std::string(64, 'N'));
  EXPECT_TRUE(eager.find_at(all_n, 20).empty());
  EXPECT_TRUE(lazy.find_at(all_n, 20).empty());

  // Depth exactly L at the last window start: |query| == L and the window
  // occurs verbatim, so MS[0] == L with no slack on either side.
  seq::Sequence exact;
  exact.append(R, 37, 32);
  const auto ee = eager.find_at(exact, 32);
  const auto le = lazy.find_at(exact, 32);
  EXPECT_EQ(ee, le);
  ASSERT_FALSE(ee.empty());
  bool pinned = false;
  for (const Mem& m : ee) pinned |= (m.r == 37 && m.q == 0 && m.len == 32);
  EXPECT_TRUE(pinned);
}

TEST(SlaMem, LazyMatchesEagerOnMutatedPairs) {
  // Bit-identity property across the L ladder on reference/query pairs in
  // the lazy sweep's target regime: point mutations every ~25 bases leave
  // long shared stretches at low L and alignment deserts at high L.
  for (const std::uint64_t seed : {81u, 82u, 83u}) {
    const auto R = random_seq(3000, seed);
    util::Xoshiro256 rng(seed + 1000);
    std::vector<std::uint8_t> codes(R.size());
    for (std::size_t i = 0; i < R.size(); ++i) codes[i] = R.base(i);
    for (std::size_t i = 0; i < codes.size(); i += 10 + rng.bounded(30)) {
      codes[i] = static_cast<std::uint8_t>((codes[i] + 1 + rng.bounded(3)) & 3);
    }
    const auto Q = seq::Sequence::from_codes(codes);
    mem::FinderOptions opt;
    opt.min_length = 10;
    mem::SlaMemFinder eager;
    eager.build_index(R, opt);
    mem::SlaMemFinder lazy(/*force_lazy=*/true);
    lazy.build_index(R, opt);
    for (const std::uint32_t L : {10u, 20u, 40u, 80u, 160u}) {
      const auto e = eager.find_at(Q, L);
      EXPECT_EQ(e, lazy.find_at(Q, L)) << "seed=" << seed << " L=" << L;
      if (L == 10) {
        EXPECT_FALSE(e.empty()) << "seed=" << seed;
      }
    }
  }
}

TEST(Finders, QueryShorterThanL) {
  const auto R = random_seq(500, 32);
  const auto Q = random_seq(8, 33);
  mem::FinderOptions opt;
  opt.min_length = 20;
  for (const std::string name : {"mummer", "sparsemem", "essamem", "slamem"}) {
    auto f = mem::create_finder(name);
    f->build_index(R, opt);
    EXPECT_TRUE(f->find(Q).empty()) << name;
  }
}

}  // namespace
}  // namespace gm
