// Deterministic unit tests for the open-loop load generator — no sockets,
// no wall time. A mock Clock advances instantly to each sleep target and
// only moves otherwise when the fake "server" burns simulated service
// time, so Poisson schedules, coordinated-omission-corrected latencies,
// and SLO-sweep termination are all exactly reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "net/loadgen.h"

namespace gm {
namespace {

using net::LoadPoint;
using net::LoadgenConfig;
using net::RequestOutcome;
using net::SloSweep;
using net::SweepConfig;

/// Time only moves when told to: sleep_until jumps forward (never back),
/// advance() models work being done.
class MockClock final : public net::Clock {
 public:
  double now() override { return t_; }
  void sleep_until(double t) override {
    if (t > t_) t_ = t;
  }
  void advance(double dt) { t_ += dt; }

 private:
  double t_ = 0.0;
};

// --- poisson_schedule -------------------------------------------------------

TEST(PoissonSchedule, DeterministicForSeedAndDistinctAcrossSeeds) {
  const auto a = net::poisson_schedule(200.0, 2.0, 7);
  const auto b = net::poisson_schedule(200.0, 2.0, 7);
  const auto c = net::poisson_schedule(200.0, 2.0, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(PoissonSchedule, ArrivalsAscendWithinDurationAtRoughlyTheRate) {
  const double qps = 500.0, duration = 4.0;
  const auto s = net::poisson_schedule(qps, duration, 3);
  ASSERT_FALSE(s.empty());
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_GE(s.front(), 0.0);
  EXPECT_LT(s.back(), duration);
  // Mean count is qps*duration = 2000, sd ~ sqrt(2000) ~ 45; a 5-sigma
  // band stays deterministic (fixed seed) while catching rate bugs.
  const double expect = qps * duration;
  EXPECT_GT(static_cast<double>(s.size()), expect - 5 * std::sqrt(expect));
  EXPECT_LT(static_cast<double>(s.size()), expect + 5 * std::sqrt(expect));
}

TEST(PoissonSchedule, DegenerateInputsYieldEmpty) {
  EXPECT_TRUE(net::poisson_schedule(0.0, 1.0, 1).empty());
  EXPECT_TRUE(net::poisson_schedule(-5.0, 1.0, 1).empty());
  EXPECT_TRUE(net::poisson_schedule(100.0, 0.0, 1).empty());
}

// --- run_open_loop against the mock clock -----------------------------------

TEST(OpenLoop, LatencyIsServiceTimeWhenServerKeepsUp) {
  MockClock clock;
  LoadgenConfig cfg;
  cfg.offered_qps = 10.0;  // 100 ms apart on average
  cfg.duration_seconds = 10.0;
  cfg.seed = 5;
  cfg.connections = 1;  // single lane: mock time stays deterministic

  constexpr double kService = 0.001;  // 1 ms — far below the arrival gap
  const LoadPoint p = net::run_open_loop(
      clock, cfg,
      [&](std::size_t, std::size_t) {
        clock.advance(kService);
        return RequestOutcome{true, 3};
      },
      /*slo_p99_ms=*/50.0);

  const auto schedule =
      net::poisson_schedule(cfg.offered_qps, cfg.duration_seconds, cfg.seed);
  EXPECT_EQ(p.sent, schedule.size());
  EXPECT_EQ(p.ok, schedule.size());
  EXPECT_EQ(p.errors, 0u);
  EXPECT_EQ(p.mems_total, 3 * schedule.size());
  // Every request starts exactly at its scheduled arrival and takes 1 ms.
  EXPECT_NEAR(p.p50_ms, 1.0, 1e-9);
  EXPECT_NEAR(p.p99_ms, 1.0, 1e-9);
  EXPECT_NEAR(p.max_ms, 1.0, 1e-9);
  EXPECT_TRUE(p.slo_ok);
}

TEST(OpenLoop, CoordinatedOmissionShowsUpAsGrowingTail) {
  // Service time (50 ms) far exceeds the mean arrival gap (10 ms): a
  // closed-loop harness would hide the backlog, but open-loop latency is
  // measured from the *scheduled* arrival, so the tail must explode.
  MockClock clock;
  LoadgenConfig cfg;
  cfg.offered_qps = 100.0;
  cfg.duration_seconds = 2.0;
  cfg.seed = 9;
  cfg.connections = 1;

  constexpr double kService = 0.050;
  const LoadPoint p = net::run_open_loop(
      clock, cfg,
      [&](std::size_t, std::size_t) {
        clock.advance(kService);
        return RequestOutcome{true, 0};
      },
      /*slo_p99_ms=*/100.0);

  EXPECT_GT(p.max_ms, 1000.0);       // the backlog compounds
  EXPECT_GT(p.p99_ms, p.p50_ms);     // and the tail is where it lives
  EXPECT_FALSE(p.slo_ok);            // 100 ms p99 SLO is long gone
}

TEST(OpenLoop, ErrorsAreCountedAndFailTheSlo) {
  MockClock clock;
  LoadgenConfig cfg;
  cfg.offered_qps = 50.0;
  cfg.duration_seconds = 1.0;
  cfg.seed = 2;
  cfg.connections = 1;

  std::size_t n = 0;
  const LoadPoint p = net::run_open_loop(
      clock, cfg,
      [&](std::size_t, std::size_t) {
        return RequestOutcome{++n % 4 != 0, 1};  // every 4th request fails
      },
      /*slo_p99_ms=*/1000.0);
  EXPECT_GT(p.errors, 0u);
  EXPECT_EQ(p.sent, p.ok + p.errors);
  EXPECT_FALSE(p.slo_ok) << "errors must fail the SLO regardless of latency";
}

// --- summarize --------------------------------------------------------------

TEST(Summarize, ExactQuantilesFromKnownSamples) {
  // 100 samples: 1..100 ms.
  std::vector<double> lat;
  for (int i = 1; i <= 100; ++i) lat.push_back(i * 1e-3);
  const LoadPoint p =
      net::summarize(lat, 100.0, 1.0, /*ok=*/100, /*errors=*/0,
                     /*mems_total=*/500, /*slo_p99_ms=*/99.0);
  EXPECT_NEAR(p.p50_ms, 50.0, 1e-9);
  EXPECT_NEAR(p.p95_ms, 95.0, 1e-9);
  EXPECT_NEAR(p.p99_ms, 99.0, 1e-9);
  EXPECT_NEAR(p.max_ms, 100.0, 1e-9);
  EXPECT_NEAR(p.goodput_qps, 100.0, 1e-9);
  EXPECT_TRUE(p.slo_ok);  // p99 == SLO boundary passes

  const LoadPoint q =
      net::summarize(lat, 100.0, 1.0, 100, 0, 500, /*slo_p99_ms=*/98.0);
  EXPECT_FALSE(q.slo_ok);  // one ms tighter fails
}

TEST(Summarize, NoSuccessesNeverPassesTheSlo) {
  const LoadPoint p = net::summarize({}, 10.0, 1.0, /*ok=*/0, /*errors=*/5,
                                     0, /*slo_p99_ms=*/1000.0);
  EXPECT_FALSE(p.slo_ok) << "an all-error run must not read as fast";
}

// --- SloSweep ---------------------------------------------------------------

LoadPoint point_at(double qps, bool slo_ok) {
  LoadPoint p;
  p.offered_qps = qps;
  p.ok = 10;
  p.slo_ok = slo_ok;
  return p;
}

TEST(Sweep, GrowsMultiplicativelyUntilViolationThenStops) {
  SweepConfig cfg;
  cfg.start_qps = 10.0;
  cfg.growth = 2.0;
  cfg.max_qps = 10000.0;
  SloSweep sweep(cfg);

  EXPECT_FALSE(sweep.done());
  EXPECT_DOUBLE_EQ(sweep.next_load(), 10.0);
  sweep.record(point_at(10.0, true));
  EXPECT_DOUBLE_EQ(sweep.next_load(), 20.0);
  sweep.record(point_at(20.0, true));
  EXPECT_DOUBLE_EQ(sweep.next_load(), 40.0);
  sweep.record(point_at(40.0, false));  // the knee

  EXPECT_TRUE(sweep.done());
  EXPECT_DOUBLE_EQ(sweep.next_load(), 0.0);
  EXPECT_DOUBLE_EQ(sweep.saturation_qps(), 20.0);
  EXPECT_EQ(sweep.points().size(), 3u);
}

TEST(Sweep, StopsAtTheLoadCapWithoutViolation) {
  SweepConfig cfg;
  cfg.start_qps = 100.0;
  cfg.growth = 10.0;
  cfg.max_qps = 1000.0;
  SloSweep sweep(cfg);

  sweep.record(point_at(sweep.next_load(), true));   // 100
  EXPECT_DOUBLE_EQ(sweep.next_load(), 1000.0);       // capped, not 10000
  sweep.record(point_at(1000.0, true));
  EXPECT_TRUE(sweep.done()) << "reaching max_qps ends the sweep";
  EXPECT_DOUBLE_EQ(sweep.saturation_qps(), 1000.0);
}

TEST(Sweep, StopsAfterMaxPoints) {
  SweepConfig cfg;
  cfg.start_qps = 1.0;
  cfg.growth = 1.1;
  cfg.max_qps = 1e9;
  cfg.max_points = 3;
  SloSweep sweep(cfg);
  for (int i = 0; i < 3; ++i) {
    ASSERT_FALSE(sweep.done());
    sweep.record(point_at(sweep.next_load(), true));
  }
  EXPECT_TRUE(sweep.done());
}

TEST(Sweep, FirstPointViolatingMeansZeroSaturation) {
  SloSweep sweep(SweepConfig{});
  sweep.record(point_at(sweep.next_load(), false));
  EXPECT_TRUE(sweep.done());
  EXPECT_DOUBLE_EQ(sweep.saturation_qps(), 0.0);
}

}  // namespace
}  // namespace gm
