// Multi-device partitioning tests: any device count must reproduce the
// exact single-device MEM set, with concurrent (max-over-devices) timing.
#include <gtest/gtest.h>

#include "core/multi_device.h"
#include "mem/naive.h"
#include "seq/synthetic.h"

namespace gm {
namespace {

using core::Config;
using core::run_multi_device;

Config small_config() {
  Config cfg;
  cfg.min_length = 12;
  cfg.seed_len = 6;
  cfg.threads = 16;
  cfg.tile_blocks = 2;  // tiny tiles -> several rows to partition
  return cfg;
}

class MultiDevice : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MultiDevice, MatchesNaiveAtAnyDeviceCount) {
  const std::uint32_t devices = GetParam();
  const auto base = seq::GenomeModel{.length = 3000}.generate(41);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  mut.indel_rate = 0.003;
  const auto query = mut.apply(base, 42);
  const auto truth = mem::find_mems_naive(base, query, 12);
  ASSERT_FALSE(truth.empty());

  const auto result = run_multi_device(small_config(), devices, base, query);
  EXPECT_EQ(result.mems, truth);
  EXPECT_EQ(result.per_device.size(), devices);
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, MultiDevice,
                         ::testing::Values(1u, 2u, 3u, 4u, 16u));

TEST(MultiDevice, CombinedTimeIsMaxNotSum) {
  const auto base = seq::GenomeModel{.length = 4000}.generate(43);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  const auto query = mut.apply(base, 44);

  const auto result = run_multi_device(small_config(), 3, base, query);
  double sum = 0.0, mx = 0.0;
  for (const auto& s : result.per_device) {
    sum += s.match_seconds;
    mx = std::max(mx, s.match_seconds);
  }
  EXPECT_GE(result.combined.match_seconds + 1e-12, mx);
  EXPECT_LT(result.combined.device_match_seconds(), sum + 1e-12);
}

TEST(MultiDevice, ScalingReducesModeledTime) {
  // With several rows of real work, 4 devices should beat 1 device on
  // modeled extraction time (not necessarily 4x: query scans repeat).
  const auto base = seq::GenomeModel{.length = 30000}.generate(45);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  const auto query = mut.apply(base, 46);
  Config cfg = small_config();
  cfg.min_length = 16;
  cfg.seed_len = 8;

  const auto one = run_multi_device(cfg, 1, base, query);
  const auto four = run_multi_device(cfg, 4, base, query);
  EXPECT_EQ(one.mems, four.mems);
  EXPECT_GT(one.combined.device_match_seconds(),
            four.combined.device_match_seconds());
}

TEST(MultiDevice, RowPartitionCoversEverything) {
  // Per-device tile_rows must sum to the total row count.
  const auto base = seq::GenomeModel{.length = 8000}.generate(47);
  const auto result = run_multi_device(small_config(), 5, base, base);
  std::uint32_t rows = 0;
  for (const auto& s : result.per_device) rows += s.tile_rows;
  EXPECT_EQ(rows, result.combined.tile_rows);
  EXPECT_EQ(result.mems, mem::find_mems_naive(base, base, 12));
}

TEST(MultiDevice, InvalidArguments) {
  const auto base = seq::GenomeModel{.length = 1000}.generate(48);
  EXPECT_THROW(run_multi_device(small_config(), 0, base, base),
               std::invalid_argument);
  Config native = small_config();
  native.backend = core::Backend::kNative;
  EXPECT_THROW(run_multi_device(native, 2, base, base),
               std::invalid_argument);
}

TEST(MultiDevice, EmptyInputs) {
  const auto result =
      run_multi_device(small_config(), 2, seq::Sequence(), seq::Sequence());
  EXPECT_TRUE(result.mems.empty());
}

}  // namespace
}  // namespace gm
