// Observability-backbone tests: quantile-sketch accuracy against exact
// quantiles, Distribution memory caps + exact mode, the flight recorder's
// ring semantics and dump format, request-scoped trace contexts, trace-id
// propagation through the serve path (including stream-scheduler spans),
// and the MetricsSnapshot JSON / Prometheus exposition formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/sketch.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "seq/synthetic.h"
#include "serve/service.h"
#include "util/parallel.h"

namespace gm {
namespace {

/// Clean, enabled global registry per test; restores the disabled default.
class ObsTestGuard {
 public:
  ObsTestGuard() {
    obs::Registry::global().reset();
    obs::Registry::global().set_enabled(true);
    obs::FlightRecorder::global().clear();
  }
  ~ObsTestGuard() {
    obs::Registry::global().set_enabled(false);
    obs::Registry::global().reset();
    obs::FlightRecorder::global().clear();
  }
};

/// Exact nearest-rank quantile with the same rank convention the sketch
/// uses, so accuracy comparisons measure bucket error only.
double exact_quantile(std::vector<double> v, double q) {
  if (v.empty()) return std::nan("");
  std::sort(v.begin(), v.end());
  const double cq = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      cq * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(rank, v.size() - 1)];
}

void expect_sketch_close(const obs::QuantileSketch& sk,
                         const std::vector<double>& samples, double q,
                         const char* what) {
  const double exact = exact_quantile(samples, q);
  const double approx = sk.quantile(q);
  const double tol =
      obs::QuantileSketch::kRelativeErrorBound * std::abs(exact) + 1e-12;
  EXPECT_NEAR(approx, exact, tol)
      << what << " q=" << q << " exact=" << exact << " approx=" << approx;
}

// --- QuantileSketch --------------------------------------------------------

TEST(Sketch, EmptyReturnsNaN) {
  obs::QuantileSketch sk;
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_TRUE(std::isnan(sk.min()));
  EXPECT_TRUE(std::isnan(sk.max()));
  EXPECT_TRUE(std::isnan(sk.mean()));
  EXPECT_TRUE(std::isnan(sk.quantile(0.5)));
  EXPECT_EQ(sk.memory_bytes(), 0u);  // empty distributions stay cheap
}

TEST(Sketch, SingleAndExtremeQuantilesAreExact) {
  obs::QuantileSketch sk;
  sk.record(3.25);
  EXPECT_EQ(sk.count(), 1u);
  EXPECT_DOUBLE_EQ(sk.min(), 3.25);
  EXPECT_DOUBLE_EQ(sk.max(), 3.25);
  // A single sample: every quantile collapses to it exactly (the estimate
  // clamps into [min, max]).
  EXPECT_DOUBLE_EQ(sk.quantile(0.0), 3.25);
  EXPECT_DOUBLE_EQ(sk.quantile(0.5), 3.25);
  EXPECT_DOUBLE_EQ(sk.quantile(1.0), 3.25);

  sk.record(10.0);
  EXPECT_DOUBLE_EQ(sk.quantile(0.0), 3.25);  // q=0 -> exact min
  EXPECT_DOUBLE_EQ(sk.quantile(1.0), 10.0);  // q=1 -> exact max
}

TEST(Sketch, NonPositiveSamplesLandBelowEveryPositive) {
  obs::QuantileSketch sk;
  sk.record(-5.0);
  sk.record(0.0);
  sk.record(1.0);
  sk.record(2.0);
  EXPECT_EQ(sk.count(), 4u);
  EXPECT_DOUBLE_EQ(sk.min(), -5.0);
  EXPECT_DOUBLE_EQ(sk.max(), 2.0);
  // Rank 0 and 1 sit in the underflow bin, whose estimate clamps to min.
  EXPECT_DOUBLE_EQ(sk.quantile(0.0), -5.0);
  EXPECT_LE(sk.quantile(0.25), 0.0);
}

TEST(Sketch, AccuracyUniform) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(1e-4, 5.0);
  obs::QuantileSketch sk;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double x = dist(rng);
    samples.push_back(x);
    sk.record(x);
  }
  EXPECT_EQ(sk.count(), samples.size());
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    expect_sketch_close(sk, samples, q, "uniform");
  }
}

TEST(Sketch, AccuracyLognormal) {
  // The latency shape: multiplicative noise, a long right tail spanning
  // several octaves — exactly what the log-bucketed grid is built for.
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(-6.0, 1.5);
  obs::QuantileSketch sk;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double x = dist(rng);
    samples.push_back(x);
    sk.record(x);
  }
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    expect_sketch_close(sk, samples, q, "lognormal");
  }
}

TEST(Sketch, AccuracyAdversarialSorted) {
  // Sorted input breaks reservoir/streaming estimators whose accuracy
  // depends on arrival order (P2 interpolates badly, naive sampling skews);
  // the static bucket grid is order-independent, so ascending, descending
  // and heavily duplicated runs must all stay within the bound.
  std::vector<double> samples;
  obs::QuantileSketch asc, desc, dup;
  for (int i = 1; i <= 10000; ++i) {
    samples.push_back(static_cast<double>(i));
  }
  for (const double x : samples) asc.record(x);
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
    desc.record(*it);
  }
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    expect_sketch_close(asc, samples, q, "ascending");
    expect_sketch_close(desc, samples, q, "descending");
  }
  // 90% of mass on one value, a sparse tail above it.
  std::vector<double> dup_samples;
  for (int i = 0; i < 9000; ++i) dup_samples.push_back(0.001);
  for (int i = 0; i < 1000; ++i) {
    dup_samples.push_back(0.001 * (2 + i % 50));
  }
  for (const double x : dup_samples) dup.record(x);
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    expect_sketch_close(dup, dup_samples, q, "duplicated");
  }
}

TEST(Sketch, MemoryStaysBoundedAndClearResets) {
  obs::QuantileSketch sk;
  std::mt19937_64 rng(3);
  std::lognormal_distribution<double> dist(0.0, 3.0);
  for (int i = 0; i < 100000; ++i) sk.record(dist(rng));
  EXPECT_EQ(sk.count(), 100000u);
  // The whole grid is ~5K uint64 buckets: fixed ~40 KB however many
  // samples arrive.
  EXPECT_LE(sk.memory_bytes(), 64u * 1024u);
  sk.clear();
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_TRUE(std::isnan(sk.quantile(0.5)));
}

// --- Distribution: sketch-backed quantiles, caps, exact mode ---------------

TEST(Distribution, SketchBackedQuantilesAndSummaryAgree) {
  ObsTestGuard guard;
  obs::Distribution d;
  std::vector<double> samples;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(0.5, 8.0);
  for (int i = 0; i < 5000; ++i) {
    const double x = dist(rng);
    samples.push_back(x);
    d.observe(x);
  }
  const util::Summary s = d.summary();
  EXPECT_EQ(s.count(), 5000u);
  const obs::Quantiles q = d.quantiles();
  EXPECT_LE(q.p50, q.p90);
  EXPECT_LE(q.p90, q.p95);
  EXPECT_LE(q.p95, q.p99);
  EXPECT_LE(q.p99, q.max);
  EXPECT_DOUBLE_EQ(q.max, s.max());
  const double tol = obs::QuantileSketch::kRelativeErrorBound *
                     std::abs(exact_quantile(samples, 0.5));
  EXPECT_NEAR(q.p50, exact_quantile(samples, 0.5), tol);
}

TEST(Distribution, ExactModeRetainsSamplesAndIsExact) {
  obs::Distribution d;
  d.set_exact(true);
  EXPECT_TRUE(d.exact());
  for (const double x : {5.0, 1.0, 9.0, 3.0, 7.0}) d.observe(x);
  EXPECT_EQ(d.samples().size(), 5u);
  // Nearest-rank on {1,3,5,7,9}: the median is exactly 5, no bucket error.
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 9.0);
}

TEST(Distribution, DefaultModeRetainsNoRawSamples) {
  obs::Distribution d;
  for (int i = 0; i < 1000; ++i) d.observe(static_cast<double>(i));
  EXPECT_FALSE(d.exact());
  EXPECT_TRUE(d.samples().empty());  // bounded memory: sketch + histogram only
}

TEST(Distribution, HistogramKeyCountIsCapped) {
  obs::Distribution d;
  const int n = static_cast<int>(obs::Distribution::kMaxHistogramBins) + 500;
  for (int i = 0; i < n; ++i) d.observe(static_cast<double>(i));
  const util::Histogram h = d.histogram();
  EXPECT_EQ(h.total(), static_cast<std::uint64_t>(n));  // no sample dropped
  // Overflowing keys collapse into the largest existing bin.
  EXPECT_LE(h.bins().size(), obs::Distribution::kMaxHistogramBins);
}

TEST(Distribution, ThreadSafeUnderConcurrentObserve) {
  obs::Distribution d;
  constexpr std::size_t kN = 20000;
  util::parallel_for_chunked(0, kN, 16,
                             [&](std::size_t begin, std::size_t end) {
                               for (std::size_t i = begin; i < end; ++i) {
                                 d.observe(static_cast<double>(i % 997) +
                                           1.0);
                               }
                             });
  EXPECT_EQ(d.summary().count(), kN);
  EXPECT_EQ(d.sketch().count(), kN);
  const obs::Quantiles q = d.quantiles();
  EXPECT_TRUE(std::isfinite(q.p50));
  EXPECT_LE(q.p50, q.p99);
  EXPECT_DOUBLE_EQ(q.max, 997.0);
}

// --- FlightRecorder --------------------------------------------------------

TEST(FlightRecorder, RecordsStructuredEventsInOrder) {
  ObsTestGuard guard;
  auto& fr = obs::FlightRecorder::global();
  fr.record(obs::FlightKind::kQueue, "submit", 7, 3.0);
  fr.record(obs::FlightKind::kLedger, "index/build-row", 7, 0.5, 1.5);
  fr.record(obs::FlightKind::kMark, "checkpoint");
  const auto evs = fr.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_LT(evs[0].seq, evs[1].seq);
  EXPECT_LT(evs[1].seq, evs[2].seq);
  EXPECT_STREQ(evs[0].label, "submit");
  EXPECT_EQ(evs[0].kind, obs::FlightKind::kQueue);
  EXPECT_EQ(evs[0].trace_id, 7u);
  EXPECT_DOUBLE_EQ(evs[0].a, 3.0);
  EXPECT_STREQ(evs[1].label, "index/build-row");
  EXPECT_DOUBLE_EQ(evs[1].b, 1.5);
  EXPECT_EQ(fr.recorded(), 3u);
  EXPECT_EQ(fr.dropped(), 0u);
}

TEST(FlightRecorder, RingKeepsOnlyTheLastCapacityEvents) {
  ObsTestGuard guard;
  auto& fr = obs::FlightRecorder::global();
  const std::size_t n = obs::FlightRecorder::kCapacity + 100;
  for (std::size_t i = 0; i < n; ++i) {
    fr.record(obs::FlightKind::kMark, "wrap", 0, static_cast<double>(i));
  }
  const auto evs = fr.events();
  ASSERT_EQ(evs.size(), obs::FlightRecorder::kCapacity);
  // Oldest retained event is exactly the one the 100 overwrites pushed to.
  EXPECT_EQ(evs.front().seq, 100u);
  EXPECT_EQ(evs.back().seq, n - 1);
  EXPECT_EQ(fr.recorded(), n);
  EXPECT_EQ(fr.dropped(), 0u);  // single-threaded: wrap never contends
}

TEST(FlightRecorder, LongLabelsTruncateNotOverflow) {
  ObsTestGuard guard;
  auto& fr = obs::FlightRecorder::global();
  const std::string longer(100, 'x');
  fr.record(obs::FlightKind::kMark, longer);
  const auto evs = fr.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(std::string(evs[0].label), std::string(38, 'x'));
}

TEST(FlightRecorder, DumpFormatHasHeaderAndTabularEvents) {
  ObsTestGuard guard;
  auto& fr = obs::FlightRecorder::global();
  fr.record(obs::FlightKind::kStream, "memset", 42, 1.0, 2.0);
  std::ostringstream os;
  fr.dump(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# flight recorder: 1 retained, 1 recorded"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("stream\tmemset\t42"), std::string::npos) << text;
}

TEST(FlightRecorder, DisabledRecorderDropsNothingAndRecordsNothing) {
  ObsTestGuard guard;
  auto& fr = obs::FlightRecorder::global();
  fr.set_enabled(false);
  fr.record(obs::FlightKind::kMark, "invisible");
  EXPECT_EQ(fr.recorded(), 0u);
  EXPECT_TRUE(fr.events().empty());
  fr.set_enabled(true);
}

TEST(FlightRecorder, WallSpansFeedTheRecorder) {
  ObsTestGuard guard;
  { obs::Span span("obs-test/flight-span", "stage"); }
  bool begin = false, end = false;
  for (const auto& ev : obs::FlightRecorder::global().events()) {
    if (std::string(ev.label) != "obs-test/flight-span") continue;
    begin |= ev.kind == obs::FlightKind::kSpanBegin;
    end |= ev.kind == obs::FlightKind::kSpanEnd;
  }
  EXPECT_TRUE(begin);
  EXPECT_TRUE(end);
}

// --- TraceContext ----------------------------------------------------------

TEST(TraceContext, ScopesNestAndRestore) {
  EXPECT_EQ(obs::current_trace().trace_id, 0u);
  const std::uint64_t a = obs::new_trace_id();
  const std::uint64_t b = obs::new_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_GT(b, a);  // monotone: ids double as submission order
  {
    obs::ScopedTrace outer({a, 3});
    EXPECT_EQ(obs::current_trace().trace_id, a);
    EXPECT_EQ(obs::current_trace().lane, 3u);
    {
      obs::ScopedTrace inner({b, 4});
      EXPECT_EQ(obs::current_trace().trace_id, b);
    }
    EXPECT_EQ(obs::current_trace().trace_id, a);
  }
  EXPECT_EQ(obs::current_trace().trace_id, 0u);
}

TEST(TraceContext, SpansInheritTraceIdLaneAndParent) {
  ObsTestGuard guard;
  const std::uint64_t id = obs::new_trace_id();
  {
    obs::ScopedTrace scope({id, 5});
    obs::Span outer("outer", "stage");
    { obs::Span inner("inner", "stage"); }
  }
  { obs::Span free_span("free", "stage"); }  // outside any request
  const auto evs = obs::Registry::global().trace().events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].name, "inner");
  EXPECT_EQ(evs[0].trace_id, id);
  EXPECT_EQ(evs[0].track, 5u);
  ASSERT_FALSE(evs[0].attrs.empty());
  EXPECT_EQ(evs[0].attrs[0].key, "parent");
  EXPECT_EQ(std::get<std::string>(evs[0].attrs[0].value), "outer");
  EXPECT_EQ(evs[1].name, "outer");
  EXPECT_EQ(evs[1].trace_id, id);
  EXPECT_EQ(evs[2].name, "free");
  EXPECT_EQ(evs[2].trace_id, 0u);
  EXPECT_EQ(evs[2].track, 0u);
}

// --- Trace-id propagation through the serve path ---------------------------

TEST(TraceId, EverySpanCarriesTheSubmittingRequestsId) {
  ObsTestGuard guard;
  const auto ref = seq::GenomeModel{.length = 3000}.generate(71);
  serve::ServiceConfig scfg;
  scfg.engine.backend = core::Backend::kSimt;
  scfg.engine.min_length = 12;
  scfg.engine.seed_len = 6;
  scfg.engine.threads = 16;
  scfg.engine.tile_blocks = 2;
  // Overlap mode drives the stream scheduler, so the trace includes spans
  // emitted from inside stream-op closures — they must inherit the id too.
  scfg.engine.overlap = true;
  scfg.max_batch = 4;
  scfg.start_paused = true;

  constexpr int kRequests = 4;
  std::set<std::uint64_t> ids;
  {
    serve::MemService service(scfg, ref);
    std::vector<std::future<serve::QueryResult>> futures;
    for (int i = 0; i < kRequests; ++i) {
      seq::MutationModel mut;
      mut.snp_rate = 0.02;
      std::string id = "q";
      id += std::to_string(i);
      futures.push_back(service.submit(
          {std::move(id), mut.apply(ref, 80 + i), 0.0}));
    }
    service.resume();
    for (auto& f : futures) {
      const serve::QueryResult r = f.get();
      ASSERT_EQ(r.status, serve::QueryStatus::kOk) << r.error;
      EXPECT_NE(r.trace_id, 0u);
      EXPECT_EQ(r.stats.trace_id, r.trace_id);  // per-request attribution
      ids.insert(r.trace_id);
    }
    service.shutdown();
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kRequests));

  std::map<std::uint64_t, int> spans_per_request;
  int modeled_with_id = 0;
  bool queue_wait_seen = false;
  for (const auto& ev : obs::Registry::global().trace().events()) {
    if (ev.trace_id != 0) {
      // Nothing but these requests ran: a nonzero id must be one of theirs.
      EXPECT_TRUE(ids.count(ev.trace_id))
          << ev.name << " carries foreign trace id " << ev.trace_id;
      ++spans_per_request[ev.trace_id];
      modeled_with_id += ev.clock == obs::Clock::kModeled;
      queue_wait_seen |= ev.name == "serve/queue-wait";
    }
  }
  // Every request contributed spans, and the tagging reaches the modeled
  // clock domain (kernel/transfer spans recorded via the stream scheduler).
  for (const std::uint64_t id : ids) {
    EXPECT_GT(spans_per_request[id], 0) << "request " << id << " traceless";
  }
  EXPECT_GT(modeled_with_id, 0);
  EXPECT_TRUE(queue_wait_seen);

  // The flight recorder saw the same requests flow through the queue. The
  // ring retains only the *recent* window, so early requests may already be
  // evicted — but every retained id must be one of ours, and the most
  // recently submitted request must still be there.
  std::set<std::uint64_t> flight_ids;
  for (const auto& ev : obs::FlightRecorder::global().events()) {
    if (ev.trace_id != 0) flight_ids.insert(ev.trace_id);
  }
  for (const std::uint64_t id : flight_ids) {
    EXPECT_TRUE(ids.count(id)) << "foreign trace id " << id << " in ring";
  }
  EXPECT_TRUE(flight_ids.count(*ids.rbegin()))
      << "latest request evicted from the ring";
}

TEST(TraceId, DeadlineMissesAreCountedAndExported) {
  ObsTestGuard guard;
  const auto ref = seq::GenomeModel{.length = 1500}.generate(91);
  serve::ServiceConfig scfg;
  scfg.engine.backend = core::Backend::kSimt;
  scfg.engine.min_length = 12;
  scfg.engine.seed_len = 6;
  scfg.engine.threads = 16;
  scfg.engine.tile_blocks = 2;
  scfg.default_deadline_seconds = 1e-9;  // everything misses
  scfg.start_paused = true;

  serve::MemService service(scfg, ref);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  auto fut = service.submit({"late", mut.apply(ref, 92), 0.0});
  service.resume();
  const serve::QueryResult r = fut.get();
  EXPECT_NE(r.status, serve::QueryStatus::kOk);
  service.shutdown();

  const serve::ServiceStats st = service.stats();
  EXPECT_GE(st.deadline_miss, 1u);
  EXPECT_GE(st.deadline_miss, st.expired);  // expired is a subset of missed
  EXPECT_GE(obs::Registry::global()
                .metrics()
                .counter("serve.deadline_miss")
                .value(),
            1u);
  serve::publish_service_stats(st);
  EXPECT_GE(obs::Registry::global().metrics().gauge("serve.deadline_miss")
                .value(),
            1.0);
}

// --- MetricsSnapshot exposition --------------------------------------------

TEST(Snapshot, JsonCarriesQuantilesAndNullsNonFinite) {
  ObsTestGuard guard;
  obs::Metrics m;
  m.counter("runs").add(2);
  m.gauge("run.index_seconds").set(0.125);
  auto& d = m.distribution("latency_seconds");
  for (int i = 1; i <= 100; ++i) d.observe(0.001 * i);
  m.distribution("empty_dist");  // count 0 -> NaN moments -> null

  std::ostringstream os;
  const obs::MetricsSnapshot snap = obs::MetricsSnapshot::capture(m);
  snap.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"runs\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"run.index_seconds\":0.125"), std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  // The empty distribution must serialize as null moments, not NaN (which
  // is not legal JSON).
  EXPECT_NE(json.find("\"empty_dist\":{\"count\":0,\"mean\":null"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(Snapshot, PrometheusExpositionFormat) {
  ObsTestGuard guard;
  obs::Metrics m;
  m.counter("serve.submitted", "requests accepted").add(5);
  m.gauge("serve.queue_depth").set(3.0);
  auto& d = m.distribution("serve.service_seconds");
  for (int i = 1; i <= 100; ++i) d.observe(0.001 * i);

  std::ostringstream os;
  obs::MetricsSnapshot::capture(m).write_prometheus(os);
  const std::string prom = os.str();
  // Names are sanitized into [a-zA-Z0-9_:] with the gpumem_ prefix;
  // counters gain the conventional _total suffix.
  EXPECT_NE(prom.find("# HELP gpumem_serve_submitted_total requests accepted"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE gpumem_serve_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("gpumem_serve_submitted_total 5"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE gpumem_serve_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("gpumem_serve_queue_depth 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE gpumem_serve_service_seconds summary"),
            std::string::npos);
  EXPECT_NE(
      prom.find("gpumem_serve_service_seconds{quantile=\"0.5\"}"),
      std::string::npos);
  EXPECT_NE(
      prom.find("gpumem_serve_service_seconds{quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(prom.find("gpumem_serve_service_seconds_count 100"),
            std::string::npos);
  EXPECT_NE(prom.find("gpumem_serve_service_seconds_sum "),
            std::string::npos);
  // Every line is either a comment or "name[{labels}] value".
  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST(Snapshot, KnownFormats) {
  EXPECT_TRUE(obs::MetricsSnapshot::is_known_format("json"));
  EXPECT_TRUE(obs::MetricsSnapshot::is_known_format("prom"));
  EXPECT_TRUE(obs::MetricsSnapshot::is_known_format("prometheus"));
  EXPECT_TRUE(obs::MetricsSnapshot::is_known_format("tsv"));
  EXPECT_FALSE(obs::MetricsSnapshot::is_known_format("xml"));
  EXPECT_FALSE(obs::MetricsSnapshot::is_known_format(""));
}

TEST(Snapshot, SnapshotAgreesWithLiveRegistry) {
  ObsTestGuard guard;
  obs::Metrics& m = obs::Registry::global().metrics();
  m.counter("kernels_launched").add(17);
  m.distribution("host.phase_ns.stitch").observe(123.0);
  const obs::MetricsSnapshot snap = obs::MetricsSnapshot::capture(m);
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "kernels_launched");
  EXPECT_EQ(snap.counters[0].second, 17u);
  ASSERT_EQ(snap.distributions.size(), 1u);
  EXPECT_EQ(snap.distributions[0].name, "host.phase_ns.stitch");
  EXPECT_EQ(snap.distributions[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap.distributions[0].q.max, 123.0);
}

}  // namespace
}  // namespace gm
