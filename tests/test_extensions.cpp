// Paper-future-work extensions: MUM / rare-match filtering and
// reverse-complement matching support.
#include <gtest/gtest.h>

#include <sstream>

#include "mem/naive.h"
#include "mem/report.h"
#include "mem/stranded.h"
#include "mem/uniqueness.h"
#include "seq/synthetic.h"

namespace gm {
namespace {

TEST(Uniqueness, MumFilterKeepsSingletons) {
  // "ACGTACGTAC" appears once in each; "GGGGG" (inside the tandem) repeats.
  const auto R = seq::Sequence::from_string("ACGTACGTACTTGGGGGTTGGGGGTT");
  const auto Q = seq::Sequence::from_string("AAACGTACGTACAAGGGGGAA");
  const auto mems = mem::find_mems_naive(R, Q, 5);
  ASSERT_GE(mems.size(), 3u);  // unique match + two copies of GGGGG
  const auto mums = mem::filter_rare_matches(mems, R, Q);
  ASSERT_EQ(mums.size(), 1u);
  EXPECT_EQ(mums[0].len, 10u);
  EXPECT_EQ(mums[0].r, 0u);
}

TEST(Uniqueness, RareLimitsAreRespected) {
  const auto R = seq::Sequence::from_string("ACGTACGTACTTGGGGGTTGGGGGTT");
  const auto Q = seq::Sequence::from_string("AAACGTACGTACAAGGGGGAA");
  const auto mems = mem::find_mems_naive(R, Q, 5);
  mem::RarenessLimits limits;
  limits.max_ref_occurrences = 2;
  limits.max_query_occurrences = 2;
  const auto rare = mem::filter_rare_matches(mems, R, Q, limits);
  // Now the GGGGG matches (2 ref copies, 1 query copy) also pass.
  EXPECT_GT(rare.size(), 1u);
  EXPECT_EQ(rare.size(), mems.size());
}

TEST(Uniqueness, AllPassOnUniqueGenome) {
  // Random genomes have essentially no long repeats: every MEM is a MUM.
  seq::GenomeModel model;
  model.length = 3000;
  model.families = 0;
  model.tandem_loci = 0;
  model.sine_families = 0;
  model.satellite_arrays = 0;
  model.microsat_spacing = 0;
  const auto base = model.generate(5);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  // No structural variants: duplications would make some query substrings
  // non-unique, which is exactly what this test wants to exclude.
  mut.inversions = mut.translocations = mut.duplications = 0;
  const auto query = mut.apply(base, 6);
  const auto mems = mem::find_mems_naive(base, query, 25);
  ASSERT_FALSE(mems.empty());
  const auto mums = mem::filter_rare_matches(mems, base, query);
  EXPECT_EQ(mums.size(), mems.size());
}

TEST(ReverseComplement, MatchesAppearOnRcQuery) {
  // A reference chunk inserted reverse-complemented into the query is
  // invisible to forward matching but found against the RC query — the
  // standard both-strands workflow of MUMmer-class tools.
  const auto base = seq::GenomeModel{.length = 2000}.generate(7);
  seq::Sequence query = seq::GenomeModel{.length = 500}.generate(8);
  const seq::Sequence chunk = base.subsequence(700, 120);
  const seq::Sequence rc_chunk = chunk.reverse_complement();
  query.append(rc_chunk, 0, rc_chunk.size());

  const auto fwd = mem::find_mems_naive(base, query, 100);
  EXPECT_TRUE(fwd.empty());
  const auto rc = mem::find_mems_naive(base, query.reverse_complement(), 100);
  ASSERT_FALSE(rc.empty());
  // Some RC-strand MEM must cover the planted chunk (it may extend past it
  // when flanking characters happen to match too).
  bool covered = false;
  for (const auto& m : rc) {
    covered |= m.r <= 700 && m.r + m.len >= 820 && m.len >= 120;
  }
  EXPECT_TRUE(covered);
}

TEST(Report, RoundTripPlain) {
  const std::vector<mem::Mem> mems{{0, 5, 20}, {100, 200, 33}};
  std::ostringstream os;
  mem::write_mummer(os, "query one", mems);
  std::istringstream is(os.str());
  const auto records = mem::read_mummer(is);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].query_name, "query one");
  EXPECT_FALSE(records[0].reverse);
  EXPECT_EQ(records[0].mems, mems);
}

TEST(Report, RoundTripStranded) {
  std::vector<mem::StrandedMem> mems;
  mems.push_back({{10, 20, 30}, mem::Strand::kForward});
  mems.push_back({{40, 50, 60}, mem::Strand::kReverse});
  std::ostringstream os;
  mem::write_mummer(os, "q", mems);
  std::istringstream is(os.str());
  const auto records = mem::read_mummer(is);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].reverse);
  EXPECT_TRUE(records[1].reverse);
  EXPECT_EQ(records[1].mems[0], (mem::Mem{40, 50, 60}));
}

TEST(Report, OneBasedPositionsOnTheWire) {
  std::ostringstream os;
  mem::write_mummer(os, "q", std::vector<mem::Mem>{{0, 0, 7}});
  EXPECT_NE(os.str().find("1\t1\t7"), std::string::npos);
}

TEST(Report, ParserRejectsGarbage) {
  {
    std::istringstream is("  1\t2\t3\n");
    EXPECT_THROW(mem::read_mummer(is), std::runtime_error);  // data first
  }
  {
    std::istringstream is("> q\n  0\t2\t3\n");
    EXPECT_THROW(mem::read_mummer(is), std::runtime_error);  // 0-based pos
  }
  {
    std::istringstream is("> q\n  banana\n");
    EXPECT_THROW(mem::read_mummer(is), std::runtime_error);
  }
}

}  // namespace
}  // namespace gm
