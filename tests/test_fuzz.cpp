// Tier-1 smoke of the differential fuzzing harness (src/fuzz): the sampler
// only emits valid configs, a bounded fuzz session finds no divergence, a
// deliberately injected stitch defect IS found and shrinks to a tiny
// reproducer, and reproducer files round-trip.
#include <gtest/gtest.h>

#include <sstream>

#include "core/config.h"
#include "fuzz/fuzz.h"
#include "util/rng.h"

namespace gm {
namespace {

TEST(FuzzSampler, ProducesOnlyValidConfigs) {
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 200; ++i) {
    const fuzz::FuzzCase c = fuzz::sample_case(rng);
    core::Config cfg;
    cfg.min_length = c.min_len;
    cfg.seed_len = c.seed_len;
    cfg.step = c.step;
    cfg.threads = c.threads;
    cfg.tile_blocks = c.tile_blocks;
    core::Config::Geometry geo{};
    ASSERT_NO_THROW(geo = cfg.validated()) << fuzz::serialize_case(c);
    EXPECT_LE(geo.step, c.min_len - c.seed_len + 1);  // Eq. 1
    EXPECT_GE(c.devices, 1u);
    EXPECT_FALSE(c.ref.empty());
    EXPECT_FALSE(c.query.empty());
  }
}

TEST(FuzzSampler, IsDeterministicInSeed) {
  util::Xoshiro256 a(3), b(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fuzz::sample_case(a), fuzz::sample_case(b));
  }
}

TEST(FuzzOracle, BoundedSessionFindsNoDivergence) {
  const util::Xoshiro256 master(1);
  for (std::uint64_t i = 0; i < 15; ++i) {
    auto rng = master.fork(i);
    const fuzz::FuzzCase c = fuzz::sample_case(rng);
    const fuzz::CaseResult result = fuzz::run_case(c);
    EXPECT_TRUE(result.ok()) << "case " << i << ":\n"
                             << fuzz::describe(result)
                             << fuzz::serialize_case(c);
    EXPECT_GE(result.impls_run, 14u) << "case " << i;  // the full oracle set
  }
}

TEST(FuzzOracle, InjectedStitchBugIsCaughtAndShrunk) {
  // The harness must catch a simulated "out-tile stitch drops boundary
  // matches" defect and minimize it to a reproducer small enough to read.
  const util::Xoshiro256 master(5);
  constexpr auto kFault = fuzz::Fault::kStitchDropBoundary;
  bool caught = false;
  for (std::uint64_t i = 0; i < 20 && !caught; ++i) {
    auto rng = master.fork(i);
    const fuzz::FuzzCase c = fuzz::sample_case(rng);
    if (fuzz::run_case(c, kFault).ok()) continue;
    caught = true;

    const fuzz::FuzzCase small = fuzz::shrink_case(c, kFault, 400);
    EXPECT_FALSE(fuzz::run_case(small, kFault).ok())
        << "shrunk case lost the failure";
    EXPECT_TRUE(fuzz::run_case(small, fuzz::Fault::kNone).ok())
        << "shrunk case fails even without the injected fault:\n"
        << fuzz::serialize_case(small);
    EXPECT_LE(small.ref.size(), 64u) << fuzz::serialize_case(small);
    EXPECT_LE(small.query.size(), 64u) << fuzz::serialize_case(small);
    EXPECT_LE(small.ref.size(), c.ref.size());
    EXPECT_LE(small.query.size(), c.query.size());
  }
  EXPECT_TRUE(caught)
      << "no sampled case produced a boundary-crossing MEM in 20 tries";
}

TEST(FuzzOracle, InjectedOverlapBugIsCaughtAndShrunk) {
  // Stream-related failure shape: the overlapped pipeline loses MEMs at the
  // column handoff between worker streams. Only the simt-overlapped oracle
  // is faulted, so the harness must localize the divergence there and still
  // ddmin it to a small reproducer.
  const util::Xoshiro256 master(9);
  constexpr auto kFault = fuzz::Fault::kOverlapDropColumnBoundary;
  bool caught = false;
  for (std::uint64_t i = 0; i < 20 && !caught; ++i) {
    auto rng = master.fork(i);
    const fuzz::FuzzCase c = fuzz::sample_case(rng);
    const fuzz::CaseResult faulted = fuzz::run_case(c, kFault);
    if (faulted.ok()) continue;
    caught = true;

    // The failure must be attributed to the overlapped path alone.
    for (const fuzz::Divergence& d : faulted.divergences) {
      EXPECT_EQ(d.impl, "simt-overlapped") << d.impl << ": " << d.detail;
    }

    const fuzz::FuzzCase small = fuzz::shrink_case(c, kFault, 400);
    EXPECT_FALSE(fuzz::run_case(small, kFault).ok())
        << "shrunk case lost the failure";
    EXPECT_TRUE(fuzz::run_case(small, fuzz::Fault::kNone).ok())
        << "shrunk case fails even without the injected fault:\n"
        << fuzz::serialize_case(small);
    EXPECT_LE(small.ref.size(), 64u) << fuzz::serialize_case(small);
    EXPECT_LE(small.query.size(), 64u) << fuzz::serialize_case(small);
  }
  EXPECT_TRUE(caught)
      << "no sampled case produced a column-crossing MEM in 20 tries";
}

TEST(FuzzOracle, InjectedCopmemDropIsCaughtAndLocalized) {
  // The copMEM oracle's candidate-drop fault loses exactly one merged
  // candidate. The harness must attribute the "missing" divergence to the
  // copmem oracle alone and still shrink the case.
  const util::Xoshiro256 master(13);
  constexpr auto kFault = fuzz::Fault::kCopmemDropCandidate;
  bool caught = false;
  for (std::uint64_t i = 0; i < 20 && !caught; ++i) {
    auto rng = master.fork(i);
    const fuzz::FuzzCase c = fuzz::sample_case(rng);
    const fuzz::CaseResult faulted = fuzz::run_case(c, kFault);
    if (faulted.ok()) continue;
    caught = true;

    for (const fuzz::Divergence& d : faulted.divergences) {
      EXPECT_EQ(d.impl, "copmem") << d.impl << ": " << d.detail;
    }

    const fuzz::FuzzCase small = fuzz::shrink_case(c, kFault, 400);
    EXPECT_FALSE(fuzz::run_case(small, kFault).ok())
        << "shrunk case lost the failure";
    EXPECT_TRUE(fuzz::run_case(small, fuzz::Fault::kNone).ok())
        << "shrunk case fails even without the injected fault:\n"
        << fuzz::serialize_case(small);
    EXPECT_LE(small.ref.size(), 64u) << fuzz::serialize_case(small);
    EXPECT_LE(small.query.size(), 64u) << fuzz::serialize_case(small);
  }
  EXPECT_TRUE(caught)
      << "no sampled case produced a copmem candidate in 20 tries";
}

TEST(FuzzRepro, SerializeParseRoundTrip) {
  util::Xoshiro256 rng(21);
  fuzz::FuzzCase c = fuzz::sample_case(rng);
  c.seed = 777;
  std::istringstream in(fuzz::serialize_case(c));
  std::string err;
  const auto back = fuzz::parse_case(in, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, c);
}

TEST(FuzzRepro, ParseRejectsMalformedInput) {
  std::string err;
  {
    std::istringstream in("min_len=8\n");  // no sequences
    EXPECT_FALSE(fuzz::parse_case(in, &err).has_value());
    EXPECT_NE(err.find("ref"), std::string::npos);
  }
  {
    std::istringstream in("ref=ACGT\nquery=ACGT\nbogus_key=1\n");
    EXPECT_FALSE(fuzz::parse_case(in, &err).has_value());
    EXPECT_NE(err.find("bogus_key"), std::string::npos);
  }
  {
    std::istringstream in("ref=ACGT\nquery=ACGT\nmin_len=abc\n");
    EXPECT_FALSE(fuzz::parse_case(in, &err).has_value());
  }
  {
    std::istringstream in("no equals sign here\n");
    EXPECT_FALSE(fuzz::parse_case(in, &err).has_value());
  }
}

TEST(FuzzRepro, ReplayedCaseKeepsMaskedBases) {
  // A reproducer with N runs and soft-masked bases must replay exactly:
  // lowercase is a valid base, N is invalid and splits the match.
  fuzz::FuzzCase c;
  c.ref = "acgtACGTNACGTacgt";
  c.query = "ACGTACGTNACGTACGT";
  c.min_len = 4;
  c.seed_len = 2;
  c.step = 1;
  c.threads = 2;
  c.tile_blocks = 1;
  c.devices = 1;
  std::istringstream in(fuzz::serialize_case(c));
  const auto back = fuzz::parse_case(in);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ref, c.ref);
  const fuzz::CaseResult result = fuzz::run_case(*back);
  EXPECT_TRUE(result.ok()) << fuzz::describe(result);
  EXPECT_GT(result.truth_mems, 0u);
}

TEST(FuzzFault, NamesRoundTrip) {
  EXPECT_EQ(fuzz::fault_from_string("none"), fuzz::Fault::kNone);
  EXPECT_EQ(fuzz::fault_from_string("stitch-drop"),
            fuzz::Fault::kStitchDropBoundary);
  EXPECT_EQ(fuzz::fault_from_string("overlap-drop"),
            fuzz::Fault::kOverlapDropColumnBoundary);
  EXPECT_EQ(fuzz::fault_from_string("copmem-drop"),
            fuzz::Fault::kCopmemDropCandidate);
  EXPECT_FALSE(fuzz::fault_from_string("bogus").has_value());
  EXPECT_STREQ(fuzz::to_string(fuzz::Fault::kStitchDropBoundary),
               "stitch-drop");
  EXPECT_STREQ(fuzz::to_string(fuzz::Fault::kOverlapDropColumnBoundary),
               "overlap-drop");
  EXPECT_STREQ(fuzz::to_string(fuzz::Fault::kCopmemDropCandidate),
               "copmem-drop");
}

}  // namespace
}  // namespace gm
