// util substrate tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "util/bits.h"
#include "util/checksum.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace gm {
namespace {

TEST(Bits, CeilPow2) {
  EXPECT_EQ(util::ceil_pow2(0), 1u);
  EXPECT_EQ(util::ceil_pow2(1), 1u);
  EXPECT_EQ(util::ceil_pow2(2), 2u);
  EXPECT_EQ(util::ceil_pow2(3), 4u);
  EXPECT_EQ(util::ceil_pow2(1025), 2048u);
}

TEST(Bits, Logs) {
  EXPECT_EQ(util::floor_log2(1), 0u);
  EXPECT_EQ(util::floor_log2(255), 7u);
  EXPECT_EQ(util::floor_log2(256), 8u);
  EXPECT_EQ(util::ceil_log2(1), 0u);
  EXPECT_EQ(util::ceil_log2(2), 1u);
  EXPECT_EQ(util::ceil_log2(3), 2u);
  EXPECT_EQ(util::ceil_log2(256), 8u);
}

TEST(Bits, CeilDivRoundUp) {
  EXPECT_EQ(util::ceil_div(10, 3), 4);
  EXPECT_EQ(util::ceil_div(9, 3), 3);
  EXPECT_EQ(util::round_up(10, 4), 12);
  EXPECT_EQ(util::round_up(12, 4), 12);
  EXPECT_TRUE(util::is_pow2(64));
  EXPECT_FALSE(util::is_pow2(65));
  EXPECT_FALSE(util::is_pow2(0));
}

TEST(Rng, DeterministicAndDistributed) {
  util::Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
  }
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= a() != c();
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundedStaysInRange) {
  util::Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.bounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  util::Xoshiro256 rng(8);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ForkDecorrelates) {
  util::Xoshiro256 rng(9);
  auto f1 = rng.fork(1);
  auto f2 = rng.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += f1() == f2();
  EXPECT_LT(equal, 3);
}

TEST(ThreadPool, ExecutesAllTasks) {
  util::ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, PropagatesExceptions) {
  util::ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(Parallel, ForCoversRangeOnce) {
  std::vector<std::atomic<int>> hits(1000);
  util::parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ChunkedPropagatesFirstError) {
  EXPECT_THROW(util::parallel_for_chunked(
                   0, 100, 4,
                   [](std::size_t b, std::size_t) {
                     if (b == 0) throw std::invalid_argument("x");
                   }),
               std::invalid_argument);
}

TEST(Parallel, ChunkedEmptyRangeNeverInvokesBody) {
  int calls = 0;
  util::parallel_for_chunked(5, 5, 4,
                             [&](std::size_t, std::size_t) { ++calls; });
  util::parallel_for_chunked(7, 3, 4,  // first > last: also empty
                             [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Parallel, ChunkedZeroChunksStillCoversRange) {
  std::vector<std::atomic<int>> hits(64);
  util::parallel_for_chunked(0, hits.size(), 0,
                             [&](std::size_t b, std::size_t e) {
                               for (std::size_t i = b; i < e; ++i) ++hits[i];
                             });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ChunkedMoreChunksThanElementsCoversOnceNoEmptyCalls) {
  std::vector<std::atomic<int>> hits(3);
  std::atomic<int> calls{0};
  util::parallel_for_chunked(0, hits.size(), 16,
                             [&](std::size_t b, std::size_t e) {
                               ++calls;
                               EXPECT_LT(b, e);  // no degenerate chunks
                               for (std::size_t i = b; i < e; ++i) ++hits[i];
                             });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_LE(calls.load(), 3);
}

TEST(Parallel, ChunkedExceptionStillCompletesOtherChunks) {
  // The thrown chunk must not strand the range: every other chunk still
  // runs to completion before the rethrow (futures are all drained).
  std::vector<std::atomic<int>> hits(100);
  EXPECT_THROW(util::parallel_for_chunked(
                   0, hits.size(), 4,
                   [&](std::size_t b, std::size_t e) {
                     if (b == 0) throw std::runtime_error("x");
                     for (std::size_t i = b; i < e; ++i) ++hits[i];
                   }),
               std::runtime_error);
  int covered = 0;
  for (const auto& h : hits) covered += h.load();
  EXPECT_GE(covered, 1);  // the non-throwing chunks ran
}

TEST(ThreadPool, ConfigureGlobalAfterCreationRules) {
  const std::size_t n = util::ThreadPool::global().size();  // force creation
  ASSERT_GE(n, 1u);
  // Re-requesting the current size (or 0 = "don't care") is a no-op...
  EXPECT_NO_THROW(util::ThreadPool::configure_global(n));
  EXPECT_NO_THROW(util::ThreadPool::configure_global(0));
  // ...but resizing an existing pool is a programming error.
  EXPECT_THROW(util::ThreadPool::configure_global(n + 1), std::logic_error);
  EXPECT_EQ(util::ThreadPool::global().size(), n);
}

TEST(Parallel, ExclusiveScan) {
  std::vector<int> v{3, 1, 4, 1, 5};
  const int total = util::exclusive_scan_inplace(v);
  EXPECT_EQ(total, 14);
  EXPECT_EQ(v, (std::vector<int>{0, 3, 4, 8, 9}));
}

TEST(ShardedExecutor, ReportsPerShardTimes) {
  const util::ShardedExecutor exec(util::ShardedExecutor::Policy::kSequential);
  std::vector<int> order;
  const util::ShardReport report = exec.run(4, [&](std::size_t s) {
    order.push_back(static_cast<int>(s));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(report.shard_seconds.size(), 4u);
  EXPECT_GE(report.modeled_parallel_seconds(), 0.0);
  EXPECT_LE(report.modeled_parallel_seconds(), report.wall_seconds + 1e-9);
}

TEST(ShardedExecutor, ConcurrentAlsoRuns) {
  const util::ShardedExecutor exec(util::ShardedExecutor::Policy::kConcurrent);
  std::atomic<int> n{0};
  exec.run(5, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 5);
}

TEST(Histogram, CapAndTotals) {
  util::Histogram h;
  h.add(1, 10);
  h.add(2, 5);
  h.add(100, 1);
  EXPECT_EQ(h.total(), 16u);
  EXPECT_EQ(h.max_key(), 100u);
  const auto capped = h.capped(10);
  EXPECT_EQ(capped.max_key(), 10u);
  EXPECT_EQ(capped.total(), 16u);
  EXPECT_NE(h.to_tsv().find("100\t1"), std::string::npos);
}

TEST(Summary, Moments) {
  util::Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Summary, EmptyContractIsNaNNotZero) {
  // An empty summary has no data: the documented sentinel is NaN, never a
  // fabricated 0.0 a report could mistake for a measurement.
  const util::Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_TRUE(std::isnan(s.variance()));
}

TEST(Summary, VarianceNeedsTwoSamples) {
  util::Summary s;
  s.add(7.5);
  EXPECT_TRUE(std::isnan(s.variance()));  // n < 2: undefined
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, NegativeOnlySamplesKeepTrueExtrema) {
  util::Summary s;
  s.add(-3.0);
  s.add(-9.0);
  EXPECT_DOUBLE_EQ(s.min(), -9.0);
  EXPECT_DOUBLE_EQ(s.max(), -3.0);
}

TEST(Table, RendersAlignedAndCsv) {
  util::Table t({"tool", "seconds"});
  t.add_row({"gpumem", util::Table::num(1.5)});
  t.add_row({"essamem", util::Table::num(12.25)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("gpumem"), std::string::npos);
  EXPECT_NE(s.find("12.25"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("tool,seconds"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscaping) {
  util::Table t({"a"});
  t.add_row({"x,y\"z"});
  EXPECT_NE(t.to_csv().find("\"x,y\"\"z\""), std::string::npos);
}

TEST(Cli, ParsesFlagsAndPositional) {
  // Note: "--flag value" consumes the next token, so bare booleans must be
  // last or use the --flag=true form (documented parser semantics).
  const char* argv[] = {"prog", "pos1", "--alpha", "3", "--beta=0.5",
                        "--gamma", "hello", "--flag"};
  util::Cli cli(8, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0), 0.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get("gamma", ""), "hello");
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, BoolFalseSpellings) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=no", "--d=yes"};
  util::Cli cli(5, const_cast<char**>(argv));
  EXPECT_FALSE(cli.get_bool("a", true));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_FALSE(cli.get_bool("c", true));
  EXPECT_TRUE(cli.get_bool("d", false));
}

// Known FNV-1a 64 vectors (from the reference implementation's test suite).
TEST(Checksum, Fnv1a64KnownVectors) {
  EXPECT_EQ(util::fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(util::fnv1a64(std::string_view("a")), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(util::fnv1a64(std::string_view("foobar")), 0x85944171f73967e8ull);
  EXPECT_EQ(util::fnv1a64(std::string_view("chongo was here!\n")),
            0x46810940eff5f915ull);
}

TEST(Checksum, StreamingMatchesOneShotAcrossAnySplit) {
  const std::string data = "GATTACA-GATTACA-GATTACA";
  const std::uint64_t want = util::fnv1a64(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    util::Fnv1a64 h;
    h.update(data.data(), split);
    h.update(data.data() + split, data.size() - split);
    EXPECT_EQ(h.digest(), want) << "split at " << split;
    EXPECT_EQ(h.bytes_consumed(), data.size());
  }
}

TEST(Checksum, DigestIsCheckpointNotTerminal) {
  util::Fnv1a64 h;
  h.update(std::string_view("foo"));
  const std::uint64_t mid = h.digest();
  EXPECT_EQ(mid, util::fnv1a64(std::string_view("foo")));
  h.update(std::string_view("bar"));
  EXPECT_EQ(h.digest(), util::fnv1a64(std::string_view("foobar")));
  h.reset();
  EXPECT_EQ(h.digest(), util::kFnv1a64Seed);
  EXPECT_EQ(h.bytes_consumed(), 0u);
}

TEST(Checksum, SingleBitFlipChangesDigest) {
  std::string data(256, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i);
  }
  const std::uint64_t clean = util::fnv1a64(data);
  for (std::size_t i = 0; i < data.size(); i += 17) {
    std::string bad = data;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_NE(util::fnv1a64(bad), clean) << "flip at " << i;
  }
}

// The striped variant is a distinct, deterministic digest: stable values,
// not the plain digest, and a flip of any single byte — whichever lane it
// lands in, including the sub-8-byte tail — changes it.
TEST(Checksum, StripedIsDeterministicAndDistinctFromPlain) {
  const std::string data = "GATTACA-GATTACA-GATTACA";
  const std::uint64_t a = util::fnv1a64_striped(data.data(), data.size());
  EXPECT_EQ(a, util::fnv1a64_striped(data.data(), data.size()));
  EXPECT_NE(a, util::fnv1a64(data));
  // Empty input folds eight untouched lanes — still well-defined.
  EXPECT_EQ(util::fnv1a64_striped(nullptr, 0),
            util::fnv1a64_striped(nullptr, 0));
}

TEST(Checksum, StripedDetectsEverySingleByteFlip) {
  std::string data(259, '\0');  // deliberately not a multiple of 8
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 31);
  }
  const std::uint64_t clean =
      util::fnv1a64_striped(data.data(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::string bad = data;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    EXPECT_NE(util::fnv1a64_striped(bad.data(), bad.size()), clean)
        << "flip at " << i;
  }
}

TEST(Checksum, StripedLengthIsPartOfTheDigest) {
  const std::string data(64, 'A');
  EXPECT_NE(util::fnv1a64_striped(data.data(), 64),
            util::fnv1a64_striped(data.data(), 63));
  EXPECT_NE(util::fnv1a64_striped(data.data(), 64),
            util::fnv1a64_striped(data.data(), 56));
}

}  // namespace
}  // namespace gm
