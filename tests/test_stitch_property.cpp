// Property tests for the stitching machinery and randomized configuration
// fuzz over the whole GPUMEM pipeline.
#include <gtest/gtest.h>

#include "core/host_stitch.h"
#include "core/pipeline.h"
#include "mem/naive.h"
#include "seq/synthetic.h"
#include "util/rng.h"

namespace gm {
namespace {

using mem::Mem;

TEST(CombineChains, Idempotent) {
  util::Xoshiro256 rng(1);
  std::vector<Mem> triplets;
  for (int i = 0; i < 200; ++i) {
    triplets.push_back({static_cast<std::uint32_t>(rng.bounded(1000)),
                        static_cast<std::uint32_t>(rng.bounded(1000)),
                        static_cast<std::uint32_t>(1 + rng.bounded(30))});
  }
  std::vector<Mem> once = triplets;
  core::combine_chains(once);
  std::vector<Mem> twice = once;
  core::combine_chains(twice);
  EXPECT_EQ(once, twice);
}

TEST(CombineChains, OrderInvariant) {
  util::Xoshiro256 rng(2);
  std::vector<Mem> triplets;
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t diag = static_cast<std::uint32_t>(rng.bounded(5)) * 100;
    const std::uint32_t q = static_cast<std::uint32_t>(rng.bounded(300));
    triplets.push_back({diag + q, q, static_cast<std::uint32_t>(1 + rng.bounded(40))});
  }
  std::vector<Mem> a = triplets;
  std::vector<Mem> b(triplets.rbegin(), triplets.rend());
  core::combine_chains(a);
  core::combine_chains(b);
  mem::sort_mems(a);
  mem::sort_mems(b);
  EXPECT_EQ(a, b);
}

TEST(CombineChains, CoversExactUnionOfEachChain) {
  // Pieces of one chain (contiguous/overlapping on a diagonal) must merge
  // into exactly the union extent.
  std::vector<Mem> pieces{{100, 40, 10}, {108, 48, 5}, {113, 53, 20},
                          {130, 70, 3}};
  core::combine_chains(pieces);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], (Mem{100, 40, 33}));
}

// Shred a MEM set into per-tile pieces and verify the final stitch
// reconstructs it exactly.
TEST(FinalizeOutTile, ReconstructsShreddedMems) {
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto base =
        seq::GenomeModel{.length = 3000}.generate(static_cast<std::uint64_t>(trial));
    seq::MutationModel mut;
    mut.snp_rate = 0.02;
    const auto query = mut.apply(base, static_cast<std::uint64_t>(trial) + 50);
    const std::uint32_t L = 16;
    const auto truth = mem::find_mems_naive(base, query, L);
    if (truth.empty()) continue;

    // Shred: cut every MEM into random co-diagonal pieces; duplicate some;
    // shuffle implicitly via diagonal sort inside the stitcher.
    std::vector<Mem> pieces;
    for (const Mem& m : truth) {
      std::uint32_t offset = 0;
      while (offset < m.len) {
        const std::uint32_t piece =
            std::min<std::uint32_t>(m.len - offset,
                                    1 + static_cast<std::uint32_t>(rng.bounded(9)));
        pieces.push_back({m.r + offset, m.q + offset, piece});
        if (rng.chance(0.2)) {
          pieces.push_back({m.r + offset, m.q + offset, piece});  // duplicate
        }
        offset += piece;
      }
    }
    auto rebuilt = core::finalize_out_tile(base, query, pieces, L);
    mem::sort_unique(rebuilt);
    EXPECT_EQ(rebuilt, truth) << "trial " << trial;
  }
}

TEST(FinalizeOutTile, DropsShortMatchesAfterExpansion) {
  // A piece whose full expansion stays below L must be filtered out.
  const auto R = seq::Sequence::from_string("AAAACGTTTTT");
  const auto Q = seq::Sequence::from_string("CCCACGGGGG");
  // Shared "ACG" is only 3 long.
  const auto out = core::finalize_out_tile(R, Q, {{3, 3, 3}}, 5);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// Randomized configuration fuzz over the full pipeline (both backends).
// ---------------------------------------------------------------------------

TEST(PipelineFuzz, RandomConfigsMatchNaive) {
  util::Xoshiro256 rng(0xF00D);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t ref_len = 500 + rng.bounded(2500);
    const auto base = seq::GenomeModel{.length = ref_len}.generate(rng());
    seq::MutationModel mut;
    mut.snp_rate = 0.005 + rng.uniform() * 0.08;
    mut.indel_rate = rng.uniform() * 0.01;
    mut.segment_mean = ref_len / 8 + 1;
    const auto query = mut.apply(base, rng());

    core::Config cfg;
    cfg.min_length = 8 + static_cast<std::uint32_t>(rng.bounded(25));
    cfg.seed_len = std::min<std::uint32_t>(
        cfg.min_length, 4 + static_cast<std::uint32_t>(rng.bounded(8)));
    cfg.threads = 1u << (1 + rng.bounded(6));  // 2..64
    cfg.tile_blocks = 1 + static_cast<std::uint32_t>(rng.bounded(5));
    cfg.load_balance = rng.chance(0.5);
    cfg.combine = rng.chance(0.5);
    cfg.round_capacity = 256 + static_cast<std::uint32_t>(rng.bounded(4096));
    // Occasionally a nonmaximal step.
    if (rng.chance(0.3)) {
      cfg.step = 1 + static_cast<std::uint32_t>(
                         rng.bounded(cfg.min_length - cfg.seed_len + 1));
    }

    const auto truth = mem::find_mems_naive(base, query, cfg.min_length);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " + cfg.describe());
    cfg.backend = core::Backend::kSimt;
    EXPECT_EQ(core::Engine(cfg).run(base, query).mems, truth);
    cfg.backend = core::Backend::kNative;
    EXPECT_EQ(core::Engine(cfg).run(base, query).mems, truth);
  }
}

}  // namespace
}  // namespace gm
