// Sequence, FASTA, and synthetic-genome tests.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "seq/fasta.h"
#include "seq/packed.h"
#include "seq/sequence.h"
#include "seq/synthetic.h"
#include "util/rng.h"

namespace gm {
namespace {

using seq::Sequence;

TEST(Alphabet, EncodeDecodeRoundTrip) {
  EXPECT_EQ(seq::encode_base('A'), seq::kA);
  EXPECT_EQ(seq::encode_base('c'), seq::kC);
  EXPECT_EQ(seq::encode_base('G'), seq::kG);
  EXPECT_EQ(seq::encode_base('t'), seq::kT);
  EXPECT_EQ(seq::encode_base('N'), seq::kInvalidBase);
  for (std::uint8_t b = 0; b < 4; ++b) {
    EXPECT_EQ(seq::encode_base(seq::decode_base(b)), b);
  }
}

TEST(Alphabet, ComplementIsInvolution) {
  for (std::uint8_t b = 0; b < 4; ++b) {
    EXPECT_EQ(seq::complement(seq::complement(b)), b);
    EXPECT_NE(seq::complement(b), b);
  }
}

TEST(Sequence, FromStringAndBack) {
  const std::string s = "ACGTACGTTTGGCCAA";
  const Sequence seq = Sequence::from_string(s);
  ASSERT_EQ(seq.size(), s.size());
  EXPECT_EQ(seq.to_string(), s);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(seq::decode_base(seq.base(i)), s[i]);
  }
}

TEST(Sequence, FromStringRejectsInvalid) {
  EXPECT_THROW(Sequence::from_string("ACGN"), std::invalid_argument);
}

TEST(Sequence, CrossWordBoundaries) {
  // 100 bases spans four 32-base words; every base must survive packing.
  util::Xoshiro256 rng(7);
  std::string s;
  for (int i = 0; i < 100; ++i) s.push_back(seq::decode_base(rng.bounded(4) & 3));
  const Sequence seq = Sequence::from_string(s);
  EXPECT_EQ(seq.to_string(), s);
}

TEST(Sequence, Window64GathersAcrossWords) {
  util::Xoshiro256 rng(11);
  std::vector<std::uint8_t> codes(200);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.bounded(4));
  const Sequence seq = Sequence::from_codes(codes);
  for (std::size_t i = 0; i + 32 <= codes.size(); i += 7) {
    const std::uint64_t w = seq.window64(i);
    for (unsigned k = 0; k < 32; ++k) {
      EXPECT_EQ((w >> (2 * k)) & 3, codes[i + k]) << "i=" << i << " k=" << k;
    }
  }
}

TEST(Sequence, KmerMatchesSubstring) {
  const Sequence seq = Sequence::from_string("ACGTACGTGGTTCCAA");
  for (unsigned k = 1; k <= 8; ++k) {
    for (std::size_t i = 0; i + k <= seq.size(); ++i) {
      const std::uint64_t a = seq.kmer(i, k);
      const Sequence sub = seq.subsequence(i, k);
      EXPECT_EQ(a, sub.kmer(0, k));
    }
  }
}

TEST(Sequence, CommonPrefixExact) {
  util::Xoshiro256 rng(13);
  std::vector<std::uint8_t> a(500), b(500);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<std::uint8_t>(rng.bounded(4));
  b = a;
  b[123] = static_cast<std::uint8_t>((b[123] + 1) & 3);
  b[457] = static_cast<std::uint8_t>((b[457] + 1) & 3);
  const Sequence sa = Sequence::from_codes(a);
  const Sequence sb = Sequence::from_codes(b);
  EXPECT_EQ(sa.common_prefix(0, sb, 0, 500), 123u);
  EXPECT_EQ(sa.common_prefix(124, sb, 124, 500), 457u - 124u);
  EXPECT_EQ(sa.common_prefix(0, sb, 0, 50), 50u);  // capped
  EXPECT_EQ(sa.common_prefix(458, sb, 458, 500), 42u);  // runs to the end
}

TEST(Sequence, CommonSuffixExact) {
  const Sequence a = Sequence::from_string("TTTACGTACGT");
  const Sequence b = Sequence::from_string("GGGACGTACGT");
  // Compare backwards from the last characters.
  EXPECT_EQ(a.common_suffix(10, b, 10, 100), 8u);
  EXPECT_EQ(a.common_suffix(10, b, 10, 3), 3u);  // capped
}

TEST(Sequence, CommonPrefixAtBoundaries) {
  const Sequence a = Sequence::from_string("ACGT");
  const Sequence b = Sequence::from_string("ACGTTT");
  EXPECT_EQ(a.common_prefix(0, b, 0, 100), 4u);
  EXPECT_EQ(a.common_prefix(4, b, 4, 100), 0u);  // off the end of a
  EXPECT_EQ(a.common_prefix(0, b, 6, 100), 0u);
}

TEST(Sequence, ReverseComplement) {
  const Sequence s = Sequence::from_string("AACGT");
  EXPECT_EQ(s.reverse_complement().to_string(), "ACGTT");
  EXPECT_EQ(s.reverse_complement().reverse_complement().to_string(), "AACGT");
}

TEST(Sequence, EqualityIgnoresPaddingBits) {
  const Sequence a = Sequence::from_string("ACGTA");
  Sequence b = Sequence::from_string("ACGTAC");
  const Sequence c = b.subsequence(0, 5);
  EXPECT_TRUE(a == c);
  EXPECT_FALSE(a == b);
}

TEST(Fasta, RoundTrip) {
  const Sequence s = seq::GenomeModel{.length = 1000}.generate(3);
  std::ostringstream os;
  seq::write_fasta(os, "chr_test", s, 60);
  std::istringstream is(os.str());
  const auto records = seq::read_fasta(is);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "chr_test");
  EXPECT_TRUE(records[0].sequence == s);
  EXPECT_EQ(records[0].non_acgt, 0u);
}

TEST(Fasta, MultiRecordAndComments) {
  std::istringstream is(">one\nACGT\n;comment\nAC\n>two desc here\nGGGG\n");
  const auto records = seq::read_fasta(is);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sequence.to_string(), "ACGTAC");
  EXPECT_EQ(records[1].name, "two desc here");
  EXPECT_EQ(records[1].sequence.to_string(), "GGGG");
}

TEST(Fasta, CrlfLineEndingsParse) {
  // Windows-produced FASTA: every line ends \r\n. The \r must not reach the
  // sequence decoder or the record name.
  std::istringstream is(">r1\r\nACGT\r\nAC\r\n>r2\r\nGG\r\n");
  const auto records = seq::read_fasta(is);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "r1");
  EXPECT_EQ(records[0].sequence.to_string(), "ACGTAC");
  EXPECT_EQ(records[0].non_acgt, 0u);
  EXPECT_EQ(records[1].name, "r2");
  EXPECT_EQ(records[1].sequence.to_string(), "GG");
}

TEST(Fasta, EmptyRecordsAreExposed) {
  // Headers with no sequence lines still produce records — callers decide
  // the policy (gpumem_cli/gpumem_serve skip them with a warning).
  std::istringstream is(">a\n>b\nACGT\n>c\n");
  const auto records = seq::read_fasta(is);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].name, "a");
  EXPECT_TRUE(records[0].sequence.empty());
  EXPECT_EQ(records[1].sequence.to_string(), "ACGT");
  EXPECT_EQ(records[2].name, "c");
  EXPECT_TRUE(records[2].sequence.empty());
}

TEST(Fasta, MultiRecordQueryFileRoundTrip) {
  // A multi-record query file (the serve layer's input shape) survives a
  // write/read cycle with every record intact and in order.
  const std::string path = ::testing::TempDir() + "/gm_fasta_multi.fa";
  std::vector<Sequence> seqs;
  for (std::uint64_t i = 0; i < 3; ++i) {
    seqs.push_back(seq::GenomeModel{.length = 300 + 50 * i}.generate(30 + i));
  }
  {
    std::ofstream out(path);
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      seq::write_fasta(out, "q" + std::to_string(i), seqs[i], 60);
    }
  }
  const auto records = seq::read_fasta_file(path);
  ASSERT_EQ(records.size(), seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(records[i].name, "q" + std::to_string(i));
    EXPECT_TRUE(records[i].sequence == seqs[i]) << "record " << i;
  }
}

TEST(Fasta, NonAcgtPolicies) {
  {
    std::istringstream is(">x\nACNNGT\n");
    EXPECT_THROW(seq::read_fasta(is, seq::NonAcgtPolicy::kReject),
                 std::runtime_error);
  }
  {
    std::istringstream is(">x\nACNNGT\n");
    const auto rec = seq::read_fasta(is, seq::NonAcgtPolicy::kRandomize);
    EXPECT_EQ(rec[0].sequence.size(), 6u);
    EXPECT_EQ(rec[0].non_acgt, 2u);
  }
  {
    std::istringstream is(">x\nACNNGT\n");
    const auto rec = seq::read_fasta(is, seq::NonAcgtPolicy::kSkip);
    EXPECT_EQ(rec[0].sequence.to_string(), "ACGT");
  }
}

TEST(Fasta, RandomizePolicyIsDeterministic) {
  auto parse = [] {
    std::istringstream is(">x\nNNNNNNNNNN\n");
    return seq::read_fasta(is, seq::NonAcgtPolicy::kRandomize)[0]
        .sequence.to_string();
  };
  EXPECT_EQ(parse(), parse());
}

TEST(Fasta, DataBeforeHeaderThrows) {
  std::istringstream is("ACGT\n");
  EXPECT_THROW(seq::read_fasta(is), std::runtime_error);
}

TEST(Synthetic, DeterministicInSeed) {
  const seq::GenomeModel model{.length = 5000};
  EXPECT_TRUE(model.generate(42) == model.generate(42));
  EXPECT_FALSE(model.generate(42) == model.generate(43));
}

TEST(Synthetic, MutatorPreservesSimilarity) {
  const Sequence base = seq::GenomeModel{.length = 20000}.generate(1);
  seq::MutationModel mut;
  mut.snp_rate = 0.01;
  mut.indel_rate = 0.0;
  mut.inversions = mut.translocations = mut.duplications = 0;
  const Sequence derived = mut.apply(base, 2);
  ASSERT_EQ(derived.size(), base.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    diffs += base.base(i) != derived.base(i);
  }
  // ~1% substitutions (2/3 of trials actually change the base? No — the
  // mutator always picks a different base). Allow generous slack.
  EXPECT_GT(diffs, base.size() / 300);
  EXPECT_LT(diffs, base.size() / 30);
}

TEST(Synthetic, MutatorHitsTargetLength) {
  const Sequence base = seq::GenomeModel{.length = 4096}.generate(5);
  seq::MutationModel mut;
  mut.target_length = 2000;
  EXPECT_EQ(mut.apply(base, 1).size(), 2000u);
  mut.target_length = 9000;
  EXPECT_EQ(mut.apply(base, 1).size(), 9000u);
}

TEST(Synthetic, DatasetPresetsExist) {
  const auto names = seq::dataset_presets();
  ASSERT_EQ(names.size(), 4u);
  for (const auto& n : names) {
    const seq::DatasetPair pair = seq::make_dataset(n, 42, 64);
    EXPECT_GT(pair.reference.size(), 0u) << n;
    EXPECT_GT(pair.query.size(), 0u) << n;
  }
  EXPECT_THROW(seq::make_dataset("nope", 1, 1), std::invalid_argument);
}

TEST(Synthetic, RelatedPairsShareLongMatches) {
  const seq::DatasetPair pair = seq::make_dataset("chrXII_s/chrI_s", 7, 8);
  // High-identity pair: some exact 64-mer of the reference should appear in
  // the query (probabilistic but essentially certain at 0.2% divergence).
  bool found = false;
  for (std::size_t i = 0; i + 64 < pair.reference.size() && !found; i += 997) {
    for (std::size_t j = 0; j + 64 < pair.query.size() && !found; ++j) {
      if (pair.reference.common_prefix(i, pair.query, j, 64) == 64) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Fasta, FileRoundTrip) {
  const Sequence s = seq::GenomeModel{.length = 700}.generate(21);
  const std::string path = ::testing::TempDir() + "/gm_fasta_roundtrip.fa";
  seq::write_fasta_file(path, "rec1", s, 50);
  const auto records = seq::read_fasta_file(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "rec1");
  EXPECT_TRUE(records[0].sequence == s);
  EXPECT_THROW(seq::read_fasta_file(path + ".does-not-exist"),
               std::runtime_error);
}

TEST(Sequence, WindowPastEndIsZeroFilled) {
  const Sequence s = Sequence::from_string("TTTT");  // code 3 everywhere
  const std::uint64_t w = s.window64(2);
  EXPECT_EQ(w & 0xF, 0xFull);        // two T's
  EXPECT_EQ(w >> 4, 0ull);           // zero-fill beyond the end
  EXPECT_EQ(s.window64(100), 0ull);  // fully out of range
}

TEST(Sequence, FromCodesRejectsBadCode) {
  EXPECT_THROW(Sequence::from_codes({0, 1, 4}), std::invalid_argument);
}

TEST(Sequence, AppendConcatenates) {
  Sequence a = Sequence::from_string("ACGT");
  const Sequence b = Sequence::from_string("GGTT");
  a.append(b, 1, 2);  // "GT"
  EXPECT_EQ(a.to_string(), "ACGTGT");
}

TEST(Sequence, CommonSuffixStopsAtSequenceStart) {
  const Sequence a = Sequence::from_string("ACG");
  const Sequence b = Sequence::from_string("TACG");
  // Compare backwards from the ends: 3 common, then a runs out.
  EXPECT_EQ(a.common_suffix(2, b, 3, 100), 3u);
}

// --- invalid-base validity mask --------------------------------------------

TEST(Sequence, LenientMasksNonAcgt) {
  const Sequence s = Sequence::from_string_lenient("ACgNtX");
  EXPECT_EQ(s.size(), 6u);
  EXPECT_TRUE(s.has_invalid());
  EXPECT_EQ(s.invalid_count(), 2u);  // 'N' and 'X'
  EXPECT_TRUE(s.valid(0));
  EXPECT_TRUE(s.valid(2));   // lowercase g is a valid base
  EXPECT_FALSE(s.valid(3));  // N
  EXPECT_TRUE(s.valid(4));
  EXPECT_FALSE(s.valid(5));  // X
  EXPECT_EQ(s.to_string(), "ACGNTN");  // invalid renders as N, case folds
}

TEST(Sequence, NextInvalidScansAcrossWords) {
  // Invalid bases at 0, 63, 64, and 130 — word boundaries of the 64-bit
  // validity mask.
  std::string text(200, 'A');
  for (const std::size_t pos : {std::size_t{0}, std::size_t{63},
                                std::size_t{64}, std::size_t{130}}) {
    text[pos] = 'N';
  }
  const Sequence s = Sequence::from_string_lenient(text);
  EXPECT_EQ(s.next_invalid(0, 200), 0u);
  EXPECT_EQ(s.next_invalid(1, 200), 63u);
  EXPECT_EQ(s.next_invalid(64, 200), 64u);
  EXPECT_EQ(s.next_invalid(65, 200), 130u);
  EXPECT_EQ(s.next_invalid(131, 200), 200u);  // none left: returns `to`
  EXPECT_EQ(s.next_invalid(1, 63), 63u);      // exclusive bound respected
  const Sequence clean = Sequence::from_string("ACGT");
  EXPECT_EQ(clean.next_invalid(0, 4), 4u);
}

TEST(Sequence, SubsequenceAndAppendPropagateMask) {
  const Sequence s = Sequence::from_string_lenient("ACNNGT");
  const Sequence sub = s.subsequence(1, 4);  // "CNNG"
  EXPECT_EQ(sub.invalid_count(), 2u);
  EXPECT_EQ(sub.to_string(), "CNNG");
  Sequence t = Sequence::from_string("TT");
  t.append(s, 2, 3);  // "NNG"
  EXPECT_EQ(t.to_string(), "TTNNG");
  EXPECT_EQ(t.invalid_count(), 2u);
}

TEST(Sequence, ReverseComplementPreservesMask) {
  const Sequence s = Sequence::from_string_lenient("ACGNT");
  const Sequence rc = s.reverse_complement();
  EXPECT_EQ(rc.to_string(), "ANCGT");
  EXPECT_EQ(rc.invalid_count(), 1u);
  EXPECT_FALSE(rc.valid(1));
}

TEST(Sequence, EqualityDistinguishesMaskedPositions) {
  // 'N' is stored with placeholder code 0 ('A'): without the mask these two
  // would compare equal word-for-word.
  const Sequence a = Sequence::from_string_lenient("AAGT");
  const Sequence b = Sequence::from_string_lenient("ANGT");
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(b == Sequence::from_string_lenient("ANGT"));
}

TEST(Fasta, MaskIsTheDefaultPolicy) {
  std::istringstream is(">x\nACNNGT\n");
  const auto rec = seq::read_fasta(is);
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec[0].sequence.size(), 6u);
  EXPECT_EQ(rec[0].non_acgt, 2u);
  EXPECT_EQ(rec[0].sequence.invalid_count(), 2u);
  EXPECT_EQ(rec[0].sequence.to_string(), "ACNNGT");
}

// --- packed codec view + word-parallel LCE ---------------------------------

TEST(PackedSeq, RoundTripViewMatchesSequence) {
  util::Xoshiro256 rng(21);
  std::string text;
  for (int i = 0; i < 300; ++i) {
    // ~5% N so the validity mask is exercised through the view too.
    text.push_back(rng.bounded(20) == 0 ? 'N'
                                        : seq::decode_base(rng.bounded(4) & 3));
  }
  const Sequence s = Sequence::from_string_lenient(text);
  const seq::PackedSeq p(s);
  ASSERT_EQ(p.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(p.base(i), s.base(i));
    EXPECT_EQ(p.valid(i), s.valid(i)) << "mask diverged at " << i;
    EXPECT_EQ(p.window(i), s.window64(i));
  }
}

TEST(PackedSeq, BackwardWindowHoldsEndingBases) {
  util::Xoshiro256 rng(22);
  std::vector<std::uint8_t> codes(120);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.bounded(4));
  const Sequence s = Sequence::from_codes(codes);
  const seq::PackedSeq p(s);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    const std::uint64_t w = p.window_back(i);
    // Base i sits in the top 2 bits; base i-k at the k-th 2-bit slot below.
    const std::size_t depth = std::min<std::size_t>(i + 1, 32);
    for (std::size_t k = 0; k < depth; ++k) {
      EXPECT_EQ((w >> (62 - 2 * k)) & 3, codes[i - k])
          << "i=" << i << " k=" << k;
    }
    if (i >= 31) EXPECT_EQ(w, s.window64(i - 31));
  }
}

TEST(PackedSeq, WordAndScalarLceAgreeOnFuzzedInputs) {
  util::Xoshiro256 rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    // Mutated copies share long runs, so extensions cross word boundaries.
    std::string a_text;
    const std::size_t n = 80 + rng.bounded(200);
    for (std::size_t i = 0; i < n; ++i) {
      a_text.push_back(rng.bounded(25) == 0
                           ? 'N'
                           : seq::decode_base(rng.bounded(4) & 3));
    }
    std::string b_text = a_text;
    for (int m = 0; m < 4; ++m) {
      b_text[rng.bounded(b_text.size())] =
          seq::decode_base(rng.bounded(4) & 3);
    }
    const Sequence a = Sequence::from_string_lenient(a_text);
    const Sequence b = Sequence::from_string_lenient(b_text);
    for (int probe = 0; probe < 50; ++probe) {
      const std::size_t i = rng.bounded(a.size());
      const std::size_t j = rng.bounded(b.size());
      const std::size_t cap = rng.bounded(2 * n);
      EXPECT_EQ(seq::lce_forward_word(a, i, b, j, cap),
                seq::lce_forward_scalar(a, i, b, j, cap))
          << "fwd i=" << i << " j=" << j << " cap=" << cap;
      EXPECT_EQ(seq::lce_backward_word(a, i, b, j, cap),
                seq::lce_backward_scalar(a, i, b, j, cap))
          << "bwd i=" << i << " j=" << j << " cap=" << cap;
    }
  }
}

TEST(PackedSeq, LceModeSwitchesImplementationNotResult) {
  const auto pair = seq::make_dataset("chrXII_s/chrI_s", 5, 64);
  const seq::PackedSeq r(pair.reference), q(pair.query);
  ASSERT_EQ(seq::lce_mode(), seq::LceMode::kWord);  // project default
  const std::size_t fwd = r.lce_forward(10, q, 10, 4096);
  const std::size_t bwd =
      r.lce_backward(r.size() - 1, q, q.size() - 1, 4096);
  seq::set_lce_mode(seq::LceMode::kScalar);
  EXPECT_EQ(r.lce_forward(10, q, 10, 4096), fwd);
  EXPECT_EQ(r.lce_backward(r.size() - 1, q, q.size() - 1, 4096), bwd);
  // Sequence's own entry points dispatch through the same flag.
  EXPECT_EQ(pair.reference.common_prefix(10, pair.query, 10, 4096), fwd);
  seq::set_lce_mode(seq::LceMode::kWord);
}

TEST(PackedSeq, LceComparesRawCodesExactlyLikeScalar) {
  // Invalid bases pack as code 0 (== 'A'), so raw-code LCE runs straight
  // through them in BOTH implementations; the project-wide mask policy is
  // enforced later by clip_invalid_bases, never inside LCE.
  const Sequence a = Sequence::from_string_lenient("ACGNNGCA");
  const Sequence b = Sequence::from_string_lenient("ACGAAGCA");
  EXPECT_EQ(seq::lce_forward_word(a, 0, b, 0, 8), 8u);
  EXPECT_EQ(seq::lce_forward_scalar(a, 0, b, 0, 8), 8u);
  EXPECT_EQ(seq::lce_backward_word(a, 7, b, 7, 8), 8u);
  EXPECT_EQ(seq::lce_backward_scalar(a, 7, b, 7, 8), 8u);
}

TEST(PackedSeq, BackwardLcePinpointsMismatchAcrossWords) {
  // 200 equal bases, one planted mismatch; the backward extension from the
  // far end must stop exactly there, across several 32-base word seams.
  for (const std::size_t mismatch_at : {std::size_t{0}, std::size_t{31},
                                        std::size_t{32}, std::size_t{64},
                                        std::size_t{150}}) {
    util::Xoshiro256 rng(31 + mismatch_at);
    std::vector<std::uint8_t> codes(200);
    for (auto& c : codes) c = static_cast<std::uint8_t>(rng.bounded(4));
    const Sequence a = Sequence::from_codes(codes);
    codes[mismatch_at] ^= 1;
    const Sequence b = Sequence::from_codes(codes);
    const std::size_t expect = 199 - mismatch_at;
    EXPECT_EQ(seq::lce_backward_word(a, 199, b, 199, 200), expect);
    EXPECT_EQ(a.common_suffix(199, b, 199, 200), expect);
  }
}

// --- lce_backward boundary audit (both LceMode implementations) ------------
// The backward window for i < 31 zero-fills the missing history below base 0
// (packed_detail::window64_back); those synthetic zero bits may "match" the
// other sequence's real history, so the result must be clipped at i + 1.
// These tests pin the origin-adjacent, zero-length, and word-seam/mask
// corners under BOTH implementations.

class LceBothModes : public ::testing::TestWithParam<seq::LceMode> {
 protected:
  void SetUp() override { seq::set_lce_mode(GetParam()); }
  void TearDown() override { seq::set_lce_mode(seq::LceMode::kWord); }
};

TEST_P(LceBothModes, BackwardClipsAtOriginAdjacentWindows) {
  // a and b share their first 80 bases; b carries 40 bases of extra history
  // in front. A backward probe from a[i] with small i must stop at i + 1
  // even though b's earlier history would keep "matching" the zero fill.
  util::Xoshiro256 rng(77);
  std::vector<std::uint8_t> shared(80);
  for (auto& c : shared) c = static_cast<std::uint8_t>(rng.bounded(4));
  // prefix code 0 ('A') equals the zero fill bit-for-bit — the spurious
  // match the i + 1 clip exists for; code 3 ('T') mismatches it instead.
  for (const std::uint8_t prefix_code : {std::uint8_t{0}, std::uint8_t{3}}) {
    std::vector<std::uint8_t> prefixed(40, prefix_code);
    prefixed.insert(prefixed.end(), shared.begin(), shared.end());
    const Sequence a = Sequence::from_codes(shared);
    const Sequence b = Sequence::from_codes(prefixed);
    for (const std::size_t i :
         {std::size_t{0}, std::size_t{1}, std::size_t{30}, std::size_t{31},
          std::size_t{32}, std::size_t{63}}) {
      // shared[i] may equal prefix_code, letting the real match run past the
      // zero-fill seam on b's side — but never past a's origin.
      EXPECT_EQ(seq::lce_backward(a, i, b, 40 + i, 1000), i + 1)
          << "i=" << i << " prefix=" << int{prefix_code};
      EXPECT_EQ(a.common_suffix(i, b, 40 + i, 1000), i + 1) << "i=" << i;
      // Symmetric: the short-history side may be the second operand.
      EXPECT_EQ(seq::lce_backward(b, 40 + i, a, i, 1000), i + 1)
          << "i=" << i << " prefix=" << int{prefix_code};
    }
  }
}

TEST_P(LceBothModes, ZeroLengthWindowsReturnZero) {
  const Sequence a = Sequence::from_string("ACGTACGTACGT");
  const Sequence b = a;
  EXPECT_EQ(seq::lce_backward(a, 5, b, 5, 0), 0u);
  EXPECT_EQ(seq::lce_forward(a, 5, b, 5, 0), 0u);
  // Forward probes at/past the end have an empty window, not UB.
  EXPECT_EQ(seq::lce_forward(a, a.size(), b, 0, 100), 0u);
  EXPECT_EQ(seq::lce_forward(a, 0, b, b.size(), 100), 0u);
  // Origin probes cap at exactly one base.
  EXPECT_EQ(seq::lce_backward(a, 0, b, 0, 100), 1u);
  EXPECT_EQ(seq::lce_backward(a, 0, b, 4, 100), 1u);  // both positions 'A'
}

TEST_P(LceBothModes, BackwardRunsThroughMaskAtWordSeams) {
  // Invalid bases pack as code 0 ('A'); LCE compares raw codes only. Plant
  // an N exactly on 32-base word seams: the backward scan must treat it as
  // 'A' (match) in both implementations — the mask policy is applied by
  // clip_invalid_bases later, never inside LCE.
  for (const std::size_t n_at : {std::size_t{31}, std::size_t{32},
                                 std::size_t{63}, std::size_t{64}}) {
    std::string text(96, 'A');
    for (std::size_t i = 0; i < text.size(); i += 3) text[i] = 'G';
    std::string masked = text;
    masked[n_at] = 'N';
    const Sequence pure = Sequence::from_string(text);
    const Sequence holed = Sequence::from_string_lenient(masked);
    const std::size_t expect = (text[n_at] == 'A')
                                   ? 96u          // N packs as the same code
                                   : 95u - n_at;  // stops where codes differ
    EXPECT_EQ(seq::lce_backward(pure, 95, holed, 95, 96), expect)
        << "n_at=" << n_at;
    EXPECT_EQ(seq::lce_backward(holed, 95, pure, 95, 96), expect)
        << "n_at=" << n_at;
  }
}

INSTANTIATE_TEST_SUITE_P(WordAndScalar, LceBothModes,
                         ::testing::Values(seq::LceMode::kWord,
                                           seq::LceMode::kScalar));

}  // namespace
}  // namespace gm
