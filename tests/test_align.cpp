// Gap alignment and chain-stitching tests.
#include <gtest/gtest.h>

#include "anchor/align.h"
#include "anchor/chain.h"
#include "mem/naive.h"
#include "seq/synthetic.h"
#include "util/rng.h"

namespace gm {
namespace {

using anchor::align_chain;
using anchor::align_region;
using anchor::Alignment;
using seq::Sequence;

// Replays a CIGAR over the two regions and checks every column.
void verify_cigar(const Alignment& aln, const Sequence& ref,
                  const Sequence& query) {
  std::uint32_t r = aln.r_begin, q = aln.q_begin;
  std::size_t i = 0;
  anchor::AlignmentStats replay;
  while (i < aln.cigar.size()) {
    std::uint64_t count = 0;
    while (i < aln.cigar.size() && std::isdigit(aln.cigar[i])) {
      count = count * 10 + static_cast<std::uint64_t>(aln.cigar[i] - '0');
      ++i;
    }
    ASSERT_LT(i, aln.cigar.size());
    const char op = aln.cigar[i++];
    switch (op) {
      case '=':
        for (std::uint64_t k = 0; k < count; ++k, ++r, ++q) {
          ASSERT_EQ(ref.base(r), query.base(q)) << "at (" << r << "," << q << ")";
        }
        replay.matches += count;
        break;
      case 'X':
        // Block-substitution escape hatches may contain agreeing columns;
        // only advance.
        r += static_cast<std::uint32_t>(count);
        q += static_cast<std::uint32_t>(count);
        replay.mismatches += count;
        break;
      case 'D':
        r += static_cast<std::uint32_t>(count);
        replay.deletions += count;
        break;
      case 'I':
        q += static_cast<std::uint32_t>(count);
        replay.insertions += count;
        break;
      default:
        FAIL() << "bad op " << op;
    }
  }
  EXPECT_EQ(r, aln.r_end);
  EXPECT_EQ(q, aln.q_end);
  EXPECT_EQ(replay.deletions, aln.stats.deletions);
  EXPECT_EQ(replay.insertions, aln.stats.insertions);
}

TEST(AlignRegion, IdenticalSequences) {
  const Sequence s = Sequence::from_string("ACGTACGTACGT");
  const Alignment a = align_region(s, 0, 12, s, 0, 12);
  EXPECT_EQ(a.cigar, "12=");
  EXPECT_DOUBLE_EQ(a.stats.identity(), 1.0);
}

TEST(AlignRegion, SingleSubstitution) {
  const Sequence r = Sequence::from_string("ACGTACGT");
  const Sequence q = Sequence::from_string("ACGAACGT");
  const Alignment a = align_region(r, 0, 8, q, 0, 8);
  EXPECT_EQ(a.cigar, "3=1X4=");
  EXPECT_EQ(a.stats.mismatches, 1u);
}

TEST(AlignRegion, InsertionAndDeletion) {
  const Sequence r = Sequence::from_string("ACGTCCGT");
  const Sequence q = Sequence::from_string("ACGTGCCGT");  // extra G
  const Alignment a = align_region(r, 0, 8, q, 0, 9);
  EXPECT_EQ(a.stats.insertions, 1u);
  EXPECT_EQ(a.stats.matches, 8u);
  verify_cigar(a, r, q);
}

TEST(AlignRegion, EmptySides) {
  const Sequence r = Sequence::from_string("ACGT");
  const Sequence q = Sequence::from_string("ACGT");
  EXPECT_EQ(align_region(r, 0, 4, q, 2, 2).cigar, "4D");
  EXPECT_EQ(align_region(r, 2, 2, q, 0, 4).cigar, "4I");
  EXPECT_EQ(align_region(r, 2, 2, q, 2, 2).cigar, "");
}

TEST(AlignRegion, BadCoordinatesThrow) {
  const Sequence r = Sequence::from_string("ACGT");
  EXPECT_THROW(align_region(r, 3, 2, r, 0, 1), std::invalid_argument);
  EXPECT_THROW(align_region(r, 0, 9, r, 0, 1), std::invalid_argument);
}

TEST(AlignRegion, EscapeHatchForGiantGaps) {
  util::Xoshiro256 rng(3);
  std::vector<std::uint8_t> a(3000), b(2500);
  for (auto& x : a) x = static_cast<std::uint8_t>(rng.bounded(4));
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.bounded(4));
  const Sequence ra = Sequence::from_codes(a);
  const Sequence rb = Sequence::from_codes(b);
  const Alignment aln = align_region(ra, 0, 3000, rb, 0, 2500,
                                     /*max_cells=*/1000);
  // Block substitution: 2500 columns + 500 deletions; ~25% of the diagonal
  // agrees by chance and is credited to matches in the stats.
  EXPECT_EQ(aln.stats.columns(), 3000u);
  EXPECT_EQ(aln.stats.deletions, 500u);
  EXPECT_NEAR(static_cast<double>(aln.stats.matches) / 2500.0, 0.25, 0.05);
}

TEST(AlignRegion, RandomizedEditDistanceOptimality) {
  // DP must reproduce edits <= the number of injected mutations.
  util::Xoshiro256 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence base = seq::GenomeModel{.length = 300}.generate(trial);
    seq::MutationModel mut;
    mut.snp_rate = 0.05;
    mut.indel_rate = 0.01;
    mut.inversions = mut.translocations = mut.duplications = 0;
    const Sequence derived = mut.apply(base, trial + 100);
    const Alignment a = align_region(
        base, 0, static_cast<std::uint32_t>(base.size()), derived, 0,
        static_cast<std::uint32_t>(derived.size()));
    verify_cigar(a, base, derived);
    EXPECT_GT(a.stats.identity(), 0.75);
  }
}

TEST(AlignChain, StitchesAnchorsAndGaps) {
  // Build ref/query sharing two exact anchors with a small diverged gap.
  const Sequence ref = Sequence::from_string(
      "AAAAAAAAAACCCCCGGGGGGGGGG");  // anchor1 = A^10, gap CCCCC, anchor2 = G^10
  const Sequence query = Sequence::from_string(
      "AAAAAAAAAACTCCCGGGGGGGGGG");  // gap has one substitution
  const std::vector<mem::Mem> anchors{{0, 0, 10}, {15, 15, 10}};
  anchor::Chain chain;
  chain.anchors = {0, 1};
  const Alignment a = align_chain(ref, query, anchors, chain);
  EXPECT_EQ(a.stats.matches, 24u);
  EXPECT_EQ(a.stats.mismatches, 1u);
  EXPECT_EQ(a.r_begin, 0u);
  EXPECT_EQ(a.q_end, 25u);
  verify_cigar(a, ref, query);
}

TEST(AlignChain, EmptyChain) {
  const Alignment a = align_chain(Sequence(), Sequence(), {}, anchor::Chain{});
  EXPECT_TRUE(a.cigar.empty());
  EXPECT_EQ(a.stats.columns(), 0u);
}

TEST(AlignChain, EndToEndWithRealChain) {
  const Sequence base = seq::GenomeModel{.length = 20000}.generate(17);
  seq::MutationModel mut;
  mut.snp_rate = 0.01;
  mut.indel_rate = 0.002;
  mut.inversions = mut.translocations = mut.duplications = 0;
  const Sequence derived = mut.apply(base, 18);
  const auto anchors = mem::find_mems_naive(base, derived, 30);
  ASSERT_FALSE(anchors.empty());
  const anchor::Chain chain = anchor::best_chain(anchors);
  ASSERT_GT(chain.anchors.size(), 3u);
  const Alignment a = align_chain(base, derived, anchors, chain);
  verify_cigar(a, base, derived);
  EXPECT_GT(a.stats.identity(), 0.95);
}

TEST(TopChainsMasked, SuppressesParallelDuplicates) {
  // Two near-identical anchor ladders one diagonal apart (a repeat family):
  // with masking the second chain over the same query span is suppressed.
  std::vector<mem::Mem> anchors;
  for (std::uint32_t i = 0; i < 5; ++i) {
    anchors.push_back({100 + 100 * i, 100 + 100 * i, 50});
    anchors.push_back({5100 + 100 * i, 103 + 100 * i, 50});  // parallel copy
  }
  const auto plain = anchor::top_chains(anchors, 4, {});
  const auto masked = anchor::top_chains(anchors, 4, {},
                                         anchor::MaskPolicy::kQueryOverlap);
  EXPECT_GE(plain.size(), 2u);
  EXPECT_EQ(masked.size(), 1u);
}

}  // namespace
}  // namespace gm
