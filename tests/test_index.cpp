// Sparse SA interval search, ESA descent, FM-index, and k-mer index tests.
#include <gtest/gtest.h>

#include "index/esa.h"
#include "index/fm_index.h"
#include "index/lcp.h"
#include "index/kmer_index.h"
#include "index/sa_search.h"
#include "index/sparse_suffix_array.h"
#include "index/suffix_array.h"
#include "seq/synthetic.h"
#include "util/rng.h"

namespace gm {
namespace {

seq::Sequence random_seq(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> codes(n);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.bounded(4));
  return seq::Sequence::from_codes(codes);
}

// Brute-force interval: scan all positions in `positions` matching the
// pattern, then locate the run in the sorted array.
std::vector<std::uint32_t> brute_matches(const seq::Sequence& ref,
                                         const std::vector<std::uint32_t>& positions,
                                         const seq::Sequence& query,
                                         std::size_t qpos, std::size_t depth) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t p : positions) {
    if (p + depth <= ref.size() &&
        ref.common_prefix(p, query, qpos, depth) == depth) {
      out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> interval_positions(const std::vector<std::uint32_t>& sa,
                                              index::SaInterval iv) {
  std::vector<std::uint32_t> out(sa.begin() + iv.lo, sa.begin() + iv.hi);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SaSearch, FindIntervalMatchesBrute) {
  const seq::Sequence ref = random_seq(3000, 21);
  const seq::Sequence query = random_seq(500, 22);
  const auto sa = index::build_suffix_array(ref);
  for (std::size_t q = 0; q + 12 < query.size(); q += 37) {
    for (std::size_t depth : {1u, 4u, 8u, 12u}) {
      const auto iv = index::find_interval(ref, sa, query, q, depth);
      EXPECT_EQ(interval_positions(sa, iv),
                brute_matches(ref, sa, query, q, depth))
          << "q=" << q << " depth=" << depth;
    }
  }
}

TEST(SaSearch, PatternPastQueryEndIsEmpty) {
  const seq::Sequence ref = random_seq(100, 1);
  const seq::Sequence query = random_seq(10, 2);
  const auto sa = index::build_suffix_array(ref);
  EXPECT_TRUE(index::find_interval(ref, sa, query, 5, 6).empty());
}

TEST(SaSearch, FindLongestIsMaximal) {
  // Query contains an exact copy of a reference chunk.
  const seq::Sequence ref = random_seq(2000, 3);
  seq::Sequence query = random_seq(50, 4);
  query.append(ref, 700, 90);
  const auto sa = index::build_suffix_array(ref);
  const auto lm = index::find_longest(ref, sa, query, 50, 1000);
  EXPECT_GE(lm.length, 90u);
  EXPECT_FALSE(lm.interval.empty());
}

TEST(SparseSuffixArray, PositionsAreSortedSuffixes) {
  const seq::Sequence ref = random_seq(4000, 5);
  for (std::uint32_t k : {1u, 3u, 8u}) {
    const index::SparseSuffixArray ssa(ref, k);
    const auto& pos = ssa.positions();
    ASSERT_EQ(pos.size(), (ref.size() + k - 1) / k);
    for (std::uint32_t p : pos) EXPECT_EQ(p % k, 0u);
    for (std::size_t i = 1; i < pos.size(); ++i) {
      const std::size_t c = ref.common_prefix(pos[i - 1], ref, pos[i], ref.size());
      if (pos[i - 1] + c < ref.size() && pos[i] + c < ref.size()) {
        EXPECT_LT(ref.base(pos[i - 1] + c), ref.base(pos[i] + c));
      }
    }
  }
  EXPECT_THROW(index::SparseSuffixArray(ref, 0), std::invalid_argument);
}

TEST(Esa, DescendMatchesBinarySearch) {
  const seq::Sequence ref = random_seq(3000, 6);
  const seq::Sequence query = random_seq(400, 7);
  for (std::uint32_t k : {1u, 4u}) {
    const index::EnhancedSuffixArray esa(ref, k);
    index::SparseSuffixArray ssa(ref, k);
    for (std::size_t q = 0; q + 16 < query.size(); q += 23) {
      for (std::size_t cap : {2u, 6u, 10u, 16u}) {
        const auto d = esa.descend(query, q, cap);
        // The ESA descent reports the longest match <= cap; verify its
        // interval equals the binary-search interval at that depth and that
        // depth+1 has no matches (when below cap).
        const auto iv =
            index::find_interval(ref, ssa.positions(), query, q, d.matched);
        EXPECT_EQ(interval_positions(ssa.positions(), d.interval),
                  interval_positions(ssa.positions(), iv))
            << "q=" << q << " cap=" << cap << " K=" << k;
        if (d.matched < cap) {
          EXPECT_TRUE(index::find_interval(ref, ssa.positions(), query, q,
                                           d.matched + 1)
                          .empty())
              << "q=" << q << " cap=" << cap << " K=" << k;
        }
      }
    }
  }
}

TEST(Esa, DescendOnRepetitiveText) {
  const seq::Sequence ref = seq::Sequence::from_string(
      "ACACACACACACACGTGTGTGTGTACACACAC");
  const index::EnhancedSuffixArray esa(ref, 1);
  const seq::Sequence query = seq::Sequence::from_string("ACACACAC");
  const auto d = esa.descend(query, 0, 8);
  EXPECT_EQ(d.matched, 8u);
  EXPECT_FALSE(d.interval.empty());
}

TEST(Esa, SingleSuffix) {
  const seq::Sequence ref = seq::Sequence::from_string("ACGTACGA");
  const index::EnhancedSuffixArray esa(ref, 8);  // samples only position 0
  const seq::Sequence query = seq::Sequence::from_string("ACGTAC");
  const auto d = esa.descend(query, 0, 6);
  EXPECT_EQ(d.matched, 6u);
  EXPECT_EQ(d.interval.size(), 1u);
}

TEST(FmIndex, RankMatchesNaive) {
  const seq::Sequence text = random_seq(700, 8);
  const index::FmIndex fm(text);
  // Reconstruct the BWT naively for validation.
  const auto sa = index::build_suffix_array(text);
  std::vector<int> bwt(text.size() + 1, -1);  // -1 = '$'
  bwt[0] = static_cast<int>(text.base(text.size() - 1));
  for (std::size_t i = 0; i < sa.size(); ++i) {
    bwt[i + 1] = sa[i] == 0 ? -1 : static_cast<int>(text.base(sa[i] - 1));
  }
  for (std::uint8_t c = 0; c < 4; ++c) {
    std::uint32_t count = 0;
    for (std::uint32_t i = 0; i <= text.size(); ++i) {
      EXPECT_EQ(fm.rank(c, i), count) << "c=" << int(c) << " i=" << i;
      if (bwt[i] == c) ++count;
    }
    EXPECT_EQ(fm.rank(c, static_cast<std::uint32_t>(text.size()) + 1), count);
  }
}

TEST(FmIndex, BackwardSearchCountsOccurrences) {
  const seq::Sequence text = random_seq(5000, 9);
  const index::FmIndex fm(text);
  util::Xoshiro256 rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t plen = 1 + rng.bounded(10);
    const std::size_t at = rng.bounded(text.size() - plen);
    const seq::Sequence pat = text.subsequence(at, plen);
    index::SaInterval iv = fm.all_rows();
    for (std::size_t i = plen; i-- > 0;) {
      iv = fm.extend(iv, pat.base(i));
    }
    // Count occurrences naively.
    std::uint32_t expect = 0;
    for (std::size_t p = 0; p + plen <= text.size(); ++p) {
      if (text.common_prefix(p, pat, 0, plen) == plen) ++expect;
    }
    EXPECT_EQ(iv.size(), expect) << "trial " << trial;
  }
}

TEST(FmIndex, LocateRecoversPositions) {
  const seq::Sequence text = random_seq(2000, 11);
  for (std::uint32_t sample : {1u, 7u, 32u}) {
    const index::FmIndex fm(text, sample);
    const auto sa = index::build_suffix_array(text);
    for (std::uint32_t row = 0; row <= text.size(); row += 13) {
      const std::uint32_t expect = row == 0 ? static_cast<std::uint32_t>(text.size())
                                            : sa[row - 1];
      EXPECT_EQ(fm.locate(row), expect) << "row=" << row << " s=" << sample;
    }
  }
}

TEST(FmIndex, LcpAtMatchesKasaiIncludingLongValues) {
  // Embed a long repeat so some LCP values exceed the 8-bit inline storage.
  seq::Sequence text = random_seq(600, 12);
  text.append(text, 100, 400);  // duplicate a 400-base block
  const index::FmIndex fm(text);
  const auto sa = index::build_suffix_array(text);
  const auto lcp = index::build_lcp_kasai(text, sa);
  bool saw_long = false;
  for (std::uint32_t row = 2; row <= text.size(); ++row) {
    EXPECT_EQ(fm.lcp_at(row), lcp[row - 1]) << "row=" << row;
    saw_long |= lcp[row - 1] >= 255;
  }
  EXPECT_TRUE(saw_long) << "test construction should produce LCP >= 255";
  EXPECT_EQ(fm.lcp_at(0), 0u);
  EXPECT_EQ(fm.lcp_at(1), 0u);
}

TEST(FmIndex, WidenFindsAllDepthSharers) {
  const seq::Sequence text = random_seq(3000, 13);
  const index::FmIndex fm(text);
  // Take a pattern with several occurrences at small depth.
  const seq::Sequence pat = text.subsequence(1234, 9);
  index::SaInterval iv = fm.all_rows();
  for (std::size_t i = pat.size(); i-- > 0;) iv = fm.extend(iv, pat.base(i));
  ASSERT_FALSE(iv.empty());
  for (std::uint32_t depth : {9u, 6u, 3u}) {
    const index::SaInterval wide = fm.widen(iv, depth);
    // Every row in `wide` must locate to a position matching depth chars.
    for (std::uint32_t row = wide.lo; row < wide.hi; ++row) {
      const std::uint32_t p = fm.locate(row);
      ASSERT_LE(p + depth, text.size());
      EXPECT_EQ(text.common_prefix(p, pat, 0, depth), depth);
    }
    // And the widened interval has exactly the brute-force count.
    std::uint32_t expect = 0;
    for (std::size_t p = 0; p + depth <= text.size(); ++p) {
      if (text.common_prefix(p, pat, 0, depth) == depth) ++expect;
    }
    EXPECT_EQ(wide.size(), expect) << "depth=" << depth;
  }
}

TEST(FmIndex, WidenMaxRowsCapThrowsTyped) {
  const seq::Sequence text = random_seq(3000, 13);
  const index::FmIndex fm(text);
  const seq::Sequence pat = text.subsequence(1234, 9);
  index::SaInterval iv = fm.all_rows();
  for (std::size_t i = pat.size(); i-- > 0;) iv = fm.extend(iv, pat.base(i));
  ASSERT_FALSE(iv.empty());
  const index::SaInterval unbounded = fm.widen(iv, 3);
  ASSERT_GT(unbounded.size(), iv.size());  // widening must actually expand
  // Unbounded (0) and generous caps agree bit-for-bit.
  const index::SaInterval capped = fm.widen(iv, 3, unbounded.size());
  EXPECT_EQ(capped.lo, unbounded.lo);
  EXPECT_EQ(capped.hi, unbounded.hi);
  // A cap below the true interval size trips the typed overflow error.
  EXPECT_THROW(fm.widen(iv, 3, unbounded.size() - 1),
               index::WidenOverflowError);
  EXPECT_THROW(fm.widen(iv, 3, 1), index::WidenOverflowError);
  try {
    fm.widen(iv, 3, 1);
    FAIL() << "expected WidenOverflowError";
  } catch (const index::WidenOverflowError& e) {
    EXPECT_NE(std::string(e.what()).find("widen"), std::string::npos);
  }
}

TEST(KmerIndex, LookupMatchesScan) {
  const seq::Sequence ref = random_seq(5000, 14);
  for (std::uint32_t step : {1u, 3u, 11u}) {
    const index::KmerIndex idx(ref, 0, ref.size(), 8, step);
    util::Xoshiro256 rng(15);
    for (int trial = 0; trial < 30; ++trial) {
      const std::size_t at = rng.bounded(ref.size() - 8);
      const std::uint64_t seed = ref.kmer(at, 8);
      std::vector<std::uint32_t> expect;
      for (std::uint32_t p = 0; p + 8 <= ref.size(); p += step) {
        if (ref.kmer(p, 8) == seed) expect.push_back(p);
      }
      const auto got = idx.lookup(seed);
      ASSERT_EQ(std::vector<std::uint32_t>(got.begin(), got.end()), expect);
    }
  }
}

TEST(KmerIndex, RangeRestrictionUsesGlobalGrid) {
  const seq::Sequence ref = random_seq(1000, 16);
  const index::KmerIndex idx(ref, 333, 667, 6, 10);
  // All stored locations lie on the global grid and inside [333, 667).
  for (std::uint32_t p : idx.locs()) {
    EXPECT_EQ(p % 10, 0u);
    EXPECT_GE(p, 340u);  // first multiple of 10 >= 333
    EXPECT_LT(p, 667u);
  }
  // Buckets are sorted.
  for (std::size_t s = 0; s + 1 < idx.ptrs().size(); ++s) {
    for (std::uint32_t i = idx.ptrs()[s] + 1; i < idx.ptrs()[s + 1]; ++i) {
      EXPECT_LT(idx.locs()[i - 1], idx.locs()[i]);
    }
  }
}

TEST(KmerIndex, OccurrenceHistogramTotals) {
  const seq::Sequence ref = random_seq(2000, 17);
  const index::KmerIndex idx(ref, 0, ref.size(), 5, 1);
  const auto hist = idx.occurrence_histogram();
  std::uint64_t weighted = 0;
  for (const auto& [occ, count] : hist.bins()) weighted += occ * count;
  EXPECT_EQ(weighted, idx.locs().size());
}

TEST(KmerIndex, RejectsBadParameters) {
  const seq::Sequence ref = random_seq(100, 18);
  EXPECT_THROW(index::KmerIndex(ref, 0, 100, 0, 1), std::invalid_argument);
  EXPECT_THROW(index::KmerIndex(ref, 0, 100, 17, 1), std::invalid_argument);
  EXPECT_THROW(index::KmerIndex(ref, 0, 100, 8, 0), std::invalid_argument);
}

TEST(KmerIndex, PositionOverflowGuardNamesTheLimit) {
  // References beyond 2^32 - 1 bases cannot be indexed with uint32_t
  // location arrays; the guard must fail deterministically and name the
  // limit (the builders and the .gmidx reader all route through it).
  EXPECT_NO_THROW(index::check_position_range(0, "KmerIndex"));
  EXPECT_NO_THROW(
      index::check_position_range(index::kMaxIndexableBases, "KmerIndex"));
  try {
    index::check_position_range(index::kMaxIndexableBases + 1, "KmerIndex");
    FAIL() << "oversized reference was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("KmerIndex"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4294967295"), std::string::npos) << msg;
    EXPECT_NE(msg.find("uint32_t"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace gm
