// store/ tests: the persistent artifact must round-trip every index
// structure bit-identically, and every corruption class — truncation, a
// flipped byte in any section, bad magic, future version, opposite
// endianness, stale geometry — must be a deterministic StoreError naming
// the file and the failing section, never UB. Registry tests pin down the
// multi-tenant lifecycle: lazy activation, LRU eviction of unpinned
// tenants, pinned exemption, and "a corrupt tenant never evicts anyone".
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "index/fm_index.h"
#include "index/lcp.h"
#include "index/sparse_suffix_array.h"
#include "index/suffix_array.h"
#include "mem/copmem.h"
#include "mem/naive.h"
#include "seq/sequence.h"
#include "seq/synthetic.h"
#include "serve/index_cache.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "simt/device.h"
#include "store/artifact.h"
#include "store/loaded_index.h"
#include "util/checksum.h"

namespace gm {
namespace {

using core::Config;
using core::Engine;
using store::ArtifactHeader;
using store::BuildOptions;
using store::LoadedIndex;
using store::MappedArtifact;
using store::SectionEntry;
using store::SectionId;
using store::StoreError;

Config small_config() {
  Config cfg;
  cfg.min_length = 12;
  cfg.seed_len = 6;
  cfg.threads = 16;
  cfg.tile_blocks = 2;  // tile_len 224 -> several tile rows per reference
  return cfg;
}

seq::Sequence test_reference(std::size_t length, std::uint64_t seed) {
  return seq::GenomeModel{.length = length}.generate(seed);
}

seq::Sequence derived_query(const seq::Sequence& ref, std::uint64_t seed) {
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  mut.indel_rate = 0.003;
  return mut.apply(ref, seed);
}

/// A reference with masked (non-ACGT) bases so the kSeqMask section exists.
seq::Sequence masked_reference() {
  std::string text = test_reference(1500, 7).to_string();
  text[100] = 'N';
  text[101] = 'N';
  text[900] = 'n';
  return seq::Sequence::from_string_lenient(text);
}

LoadedIndex load_image(std::vector<std::uint8_t> image) {
  return LoadedIndex(
      MappedArtifact::from_buffer(std::move(image), "<test>"));
}

// --- round trip ------------------------------------------------------------

TEST(StoreRoundTrip, NativeExtractionIsBitIdentical) {
  const auto ref = masked_reference();
  const auto query = derived_query(ref, 11);
  Config cfg = small_config();
  cfg.backend = core::Backend::kNative;
  const Engine engine(cfg);

  const auto fresh = engine.run(ref, query);
  ASSERT_FALSE(fresh.mems.empty());

  const LoadedIndex loaded = load_image(store::build_artifact(ref, cfg));
  const auto replay = engine.run_native_prebuilt(loaded.reference(), query,
                                                 loaded.native_index());
  EXPECT_EQ(fresh.mems, replay.mems);
}

TEST(StoreRoundTrip, SimtCachedExtractionIsBitIdentical) {
  const auto ref = test_reference(3000, 21);
  const auto query = derived_query(ref, 22);
  const Config cfg = small_config();
  const Engine engine(cfg);

  const auto fresh = engine.run(ref, query);
  ASSERT_FALSE(fresh.mems.empty());

  const auto loaded = std::make_shared<const LoadedIndex>(
      load_image(store::build_artifact(ref, cfg)));
  simt::Device dev(cfg.device);
  serve::DeviceRowIndexCache cache(dev, cfg, /*ref_id=*/1);
  cache.back_with_artifact(loaded);
  const auto replay = engine.run_simt_cached(dev, ref, query, cache);
  EXPECT_EQ(fresh.mems, replay.mems);
  EXPECT_GT(cache.artifact_loads(), 0u);
}

TEST(StoreRoundTrip, FileOpenIsMappedAndHeaderFaithful) {
  const auto ref = masked_reference();
  const Config cfg = small_config();
  BuildOptions opt;
  opt.ref_name = "tenant-a";
  const auto image = store::build_artifact(ref, cfg, opt);

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "roundtrip.gmidx")
          .string();
  store::write_artifact_file(path, image);

  const MappedArtifact art = MappedArtifact::open_file(path);
  EXPECT_TRUE(art.is_mapped());
  EXPECT_EQ(art.file_bytes(), image.size());
  const ArtifactHeader& h = art.header();
  EXPECT_EQ(h.name(), "tenant-a");
  EXPECT_EQ(h.ref_bases, ref.size());
  EXPECT_EQ(h.ref_invalid, ref.invalid_count());
  EXPECT_EQ(h.seed_len, cfg.seed_len);
  EXPECT_EQ(h.min_length, cfg.min_length);
  EXPECT_TRUE(art.has_section(SectionId::kSeqPacked));
  EXPECT_TRUE(art.has_section(SectionId::kSeqMask));
  EXPECT_FALSE(art.has_section(SectionId::kSuffixArray));

  const LoadedIndex loaded(art);
  EXPECT_EQ(loaded.reference().to_string(), ref.to_string());
}

TEST(StoreRoundTrip, OptionalSectionsMatchInProcessBuilders) {
  const auto ref = test_reference(1200, 31);
  const Config cfg = small_config();
  BuildOptions opt;
  opt.with_suffix_array = true;
  opt.sparseness = 4;
  opt.fm_sa_sample = 16;
  const LoadedIndex loaded = load_image(store::build_artifact(ref, cfg, opt));

  const auto sa = index::build_suffix_array(ref);
  ASSERT_EQ(loaded.suffix_array().size(), sa.size());
  EXPECT_TRUE(std::equal(sa.begin(), sa.end(),
                         loaded.suffix_array().begin()));

  const auto lcp = index::build_lcp_kasai(ref, sa);
  ASSERT_EQ(loaded.lcp().size(), lcp.size());
  EXPECT_TRUE(std::equal(lcp.begin(), lcp.end(), loaded.lcp().begin()));

  const index::SparseSuffixArray ssa(ref, opt.sparseness);
  ASSERT_EQ(loaded.sparse_sa().size(), ssa.positions().size());
  EXPECT_TRUE(std::equal(ssa.positions().begin(), ssa.positions().end(),
                         loaded.sparse_sa().begin()));

  std::vector<std::uint8_t> fresh_fm, loaded_fm;
  index::FmIndex(ref, opt.fm_sa_sample).serialize(fresh_fm);
  loaded.fm_index().serialize(loaded_fm);
  EXPECT_EQ(fresh_fm, loaded_fm);
}

TEST(StoreRoundTrip, MissingOptionalSectionThrows) {
  const auto ref = test_reference(600, 41);
  const LoadedIndex loaded =
      load_image(store::build_artifact(ref, small_config()));
  EXPECT_THROW(loaded.suffix_array(), StoreError);
  EXPECT_THROW(loaded.fm_index(), StoreError);
  EXPECT_THROW(loaded.copmem_index(), StoreError);
}

TEST(StoreRoundTrip, CopmemIndexSectionAdoptsBitIdentically) {
  // Persist the double-sampled copMEM index (kCopmemIndex) and adopt it on
  // load: the adopted finder must produce the exact MEM set of a fresh
  // build — and of the naive ground truth.
  const auto ref = masked_reference();
  const auto query = derived_query(ref, 55);
  const Config cfg = small_config();  // L=12, K=6

  mem::FinderOptions fopt;
  fopt.min_length = cfg.min_length;
  mem::CopMemFinder fresh;
  fresh.set_seed_len(cfg.seed_len);
  fresh.build_index(ref, fopt);
  const auto expect = fresh.find(query);
  ASSERT_FALSE(expect.empty());
  EXPECT_EQ(expect, mem::find_mems_naive(ref, query, cfg.min_length));

  BuildOptions opt;
  opt.copmem_step = fresh.params().k1;
  const LoadedIndex loaded = load_image(store::build_artifact(ref, cfg, opt));
  ASSERT_TRUE(loaded.artifact().has_section(SectionId::kCopmemIndex));

  mem::CopMemFinder adopted;
  adopted.adopt_index(loaded.reference(), fopt, loaded.copmem_index());
  EXPECT_EQ(adopted.params().seed_len, fresh.params().seed_len);
  EXPECT_EQ(adopted.params().k1, fresh.params().k1);
  EXPECT_EQ(adopted.params().k2, fresh.params().k2);
  EXPECT_EQ(adopted.find(query), expect);
}

TEST(StoreRoundTrip, CopmemAdoptRejectsOversampledIndex) {
  // An adopted index whose step exceeds L - K + 1 can never guarantee MEM
  // coverage; adopt_index must refuse it deterministically.
  const auto ref = test_reference(800, 61);
  const Config cfg = small_config();
  BuildOptions opt;
  opt.copmem_step = 2;
  const LoadedIndex loaded = load_image(store::build_artifact(ref, cfg, opt));
  mem::FinderOptions fopt;
  fopt.min_length = 7;  // L - K + 1 = 2 < adopted k1... still legal (2 <= 2)
  mem::CopMemFinder ok;
  EXPECT_NO_THROW(ok.adopt_index(loaded.reference(), fopt,
                                 loaded.copmem_index()));
  fopt.min_length = 6;  // L - K + 1 = 1 < step 2: coverage impossible
  mem::CopMemFinder bad;
  EXPECT_THROW(bad.adopt_index(loaded.reference(), fopt,
                               loaded.copmem_index()),
               std::invalid_argument);
}

// --- corruption matrix -----------------------------------------------------

/// A valid image to mutate, plus its parsed section table.
struct Specimen {
  std::vector<std::uint8_t> image;
  ArtifactHeader header;
  std::vector<SectionEntry> table;
};

Specimen make_specimen() {
  Specimen s;
  BuildOptions opt;
  opt.with_suffix_array = true;
  opt.sparseness = 4;
  opt.fm_sa_sample = 16;
  s.image = store::build_artifact(masked_reference(), small_config(), opt);
  std::memcpy(&s.header, s.image.data(), sizeof s.header);
  s.table.resize(s.header.section_count);
  std::memcpy(s.table.data(), s.image.data() + sizeof s.header,
              s.table.size() * sizeof(SectionEntry));
  return s;
}

/// The error message for the mutated image must contain `expect`.
void expect_rejected(std::vector<std::uint8_t> image,
                     const std::string& expect) {
  try {
    MappedArtifact::from_buffer(std::move(image), "<test>");
    FAIL() << "corrupted artifact was accepted (wanted error containing \""
           << expect << "\")";
  } catch (const StoreError& e) {
    EXPECT_NE(std::string(e.what()).find(expect), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(StoreCorruption, FlippedByteInEverySectionNamesTheSection) {
  const Specimen s = make_specimen();
  ASSERT_EQ(s.table.size(), 9u);  // all sections present (masked + extras)
  for (const SectionEntry& e : s.table) {
    ASSERT_GT(e.bytes, 0u);
    const std::string name =
        store::section_name(static_cast<SectionId>(e.id));
    // Mid-payload and last-byte flips both land on the section's checksum.
    for (const std::uint64_t at : {e.bytes / 2, e.bytes - 1}) {
      auto image = s.image;
      image[e.offset + at] ^= 0x01;
      expect_rejected(std::move(image), "section " + name);
    }
    auto image = s.image;
    image[e.offset + e.bytes / 2] ^= 0x80;
    expect_rejected(std::move(image), "checksum mismatch");
  }
}

TEST(StoreCorruption, TruncationIsRejectedAtEveryBoundary) {
  const Specimen s = make_specimen();
  // Shorter than the fixed header.
  auto tiny = s.image;
  tiny.resize(sizeof(ArtifactHeader) - 1);
  expect_rejected(std::move(tiny), "");
  // Mid-payload truncation: recorded total size disagrees with the bytes.
  auto cut = s.image;
  cut.resize(cut.size() - 1);
  expect_rejected(std::move(cut), "truncat");
  // Trailing garbage is equally a size mismatch, not silently ignored.
  auto grown = s.image;
  grown.push_back(0);
  expect_rejected(std::move(grown), "");
}

TEST(StoreCorruption, BadMagicRejected) {
  auto image = make_specimen().image;
  image[0] = 'X';
  expect_rejected(std::move(image), "magic");
}

TEST(StoreCorruption, FutureVersionRejected) {
  auto image = make_specimen().image;
  const std::uint32_t future = store::kFormatVersion + 1;
  std::memcpy(image.data() + offsetof(ArtifactHeader, version), &future,
              sizeof future);
  expect_rejected(std::move(image), "version");
}

TEST(StoreCorruption, OppositeEndiannessRejected) {
  auto image = make_specimen().image;
  const std::uint32_t swapped = 0x04030201u;  // kEndianTag byte-reversed
  std::memcpy(image.data() + offsetof(ArtifactHeader, endian_tag), &swapped,
              sizeof swapped);
  expect_rejected(std::move(image), "endian");
}

TEST(StoreCorruption, HeaderTamperingFailsTheHeaderChecksum) {
  auto image = make_specimen().image;
  image[offsetof(ArtifactHeader, ref_name)] ^= 0x01;
  expect_rejected(std::move(image), "header checksum");
}

TEST(StoreCorruption, SectionTableTamperingFailsTheHeaderChecksum) {
  auto image = make_specimen().image;
  image[sizeof(ArtifactHeader)] ^= 0x01;  // first byte of the section table
  expect_rejected(std::move(image), "header checksum");
}

TEST(StoreCorruption, StaleGeometryNamesEveryMismatchedField) {
  const auto ref = test_reference(1000, 51);
  const LoadedIndex loaded =
      load_image(store::build_artifact(ref, small_config()));

  EXPECT_TRUE(loaded.geometry_matches(small_config()));

  Config stale = small_config();
  stale.seed_len = 8;
  stale.min_length = 16;
  EXPECT_FALSE(loaded.geometry_matches(stale));
  try {
    loaded.throw_if_geometry_mismatch(stale);
    FAIL() << "stale geometry was accepted";
  } catch (const StoreError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("stale geometry"), std::string::npos) << msg;
    EXPECT_NE(msg.find("seed_len"), std::string::npos) << msg;
    EXPECT_NE(msg.find("min_length"), std::string::npos) << msg;
    EXPECT_NE(msg.find("index-build"), std::string::npos) << msg;
  }
}

TEST(StoreCorruption, OpenFileErrorsNameThePath) {
  const std::string missing =
      (std::filesystem::path(::testing::TempDir()) / "no-such.gmidx")
          .string();
  try {
    MappedArtifact::open_file(missing);
    FAIL() << "opening a missing file succeeded";
  } catch (const StoreError& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos)
        << e.what();
  }
}

// --- checksum primitive ----------------------------------------------------

TEST(StoreChecksum, SectionChecksumsMatchStandaloneStripedFnv) {
  const Specimen s = make_specimen();
  for (const SectionEntry& e : s.table) {
    EXPECT_EQ(e.checksum,
              util::fnv1a64_striped(s.image.data() + e.offset, e.bytes))
        << store::section_name(static_cast<SectionId>(e.id));
  }
}

// --- registry --------------------------------------------------------------

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("registry-" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()
                    ->name()));
    std::filesystem::create_directories(dir_);
    cfg_ = small_config();
    for (const char* name : {"alpha", "beta", "gamma"}) {
      refs_[name] =
          test_reference(2000, util::fnv1a64(std::string_view(name)));
      store::write_artifact_file((dir_ / (std::string(name) + ".gmidx"))
                                     .string(),
                                 store::build_artifact(refs_[name], cfg_));
    }
  }

  serve::ServiceConfig base() const {
    serve::ServiceConfig scfg;
    scfg.engine = cfg_;
    return scfg;
  }

  std::filesystem::path dir_;
  Config cfg_;
  std::map<std::string, seq::Sequence> refs_;
};

TEST_F(RegistryTest, ScansLazilyAndCountsHits) {
  serve::ReferenceRegistry reg(dir_.string(), base());
  EXPECT_EQ(reg.tenants(),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
  auto st = reg.stats();
  EXPECT_EQ(st.known, 3u);
  EXPECT_EQ(st.resident, 0u);  // nothing loads until acquire
  EXPECT_EQ(st.loads, 0u);

  auto a = reg.acquire("alpha");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name(), "alpha");
  auto again = reg.acquire("alpha");
  EXPECT_EQ(a.get(), again.get());
  st = reg.stats();
  EXPECT_EQ(st.loads, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.resident, 1u);

  EXPECT_THROW(reg.acquire("delta"), StoreError);
  EXPECT_THROW(reg.artifact_path("delta"), StoreError);
}

TEST_F(RegistryTest, ServesBitIdenticalMemsPerTenant) {
  serve::ReferenceRegistry reg(dir_.string(), base());
  for (const auto& [name, ref] : refs_) {
    const auto query = derived_query(ref, 77);
    const auto expect = Engine(cfg_).run(ref, query);
    ASSERT_FALSE(expect.mems.empty()) << name;

    auto tenant = reg.acquire(name);
    auto fut = tenant->service().submit({.id = name, .query = query});
    const auto result = fut.get();
    ASSERT_EQ(result.status, serve::QueryStatus::kOk) << result.error;
    EXPECT_EQ(result.mems, expect.mems) << name;
  }
}

TEST_F(RegistryTest, EvictsLeastRecentlyUsedOverBudget) {
  serve::ReferenceRegistry reg(dir_.string(), base(), /*max_resident=*/2);
  auto a = reg.acquire("alpha");
  reg.acquire("beta");
  reg.acquire("alpha");  // refresh alpha: beta is now the LRU
  reg.acquire("gamma");  // over budget -> beta evicted
  const auto st = reg.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.resident, 2u);
  EXPECT_EQ(st.loads, 3u);
  // An evicted tenant re-acquires as a fresh load, not a hit.
  reg.acquire("beta");
  EXPECT_EQ(reg.stats().loads, 4u);
  // Held references to a (possibly evicted) tenant stay fully usable.
  const auto query = derived_query(refs_["alpha"], 88);
  auto fut = a->service().submit({.id = "late", .query = query});
  EXPECT_EQ(fut.get().status, serve::QueryStatus::kOk);
}

TEST_F(RegistryTest, PinnedTenantsAreExemptFromEviction) {
  serve::ReferenceRegistry reg(dir_.string(), base(), /*max_resident=*/1);
  reg.pin("alpha");
  reg.acquire("beta");
  reg.acquire("gamma");  // evicts beta (LRU unpinned), never alpha
  auto st = reg.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.resident, 2u);  // pinned alpha + gamma
  EXPECT_EQ(reg.stats().loads, 3u);
  reg.acquire("alpha");
  EXPECT_EQ(reg.stats().hits, 1u);

  reg.unpin("alpha");
  reg.acquire("beta");  // now alpha is evictable; LRU is gamma or alpha
  EXPECT_EQ(reg.stats().resident, 1u);
}

TEST_F(RegistryTest, CorruptTenantNeverEvictsAnyone) {
  // Plant a corrupt artifact next to the good ones.
  auto bad = store::build_artifact(refs_["alpha"], cfg_);
  bad[bad.size() / 2] ^= 0x40;
  store::write_artifact_file((dir_ / "broken.gmidx").string(), bad);

  serve::ReferenceRegistry reg(dir_.string(), base(), /*max_resident=*/1);
  EXPECT_EQ(reg.stats().known, 4u);
  reg.acquire("alpha");
  EXPECT_THROW(reg.acquire("broken"), StoreError);
  const auto st = reg.stats();
  EXPECT_EQ(st.resident, 1u);  // alpha untouched
  EXPECT_EQ(st.evictions, 0u);
  // And the registry still works afterwards.
  EXPECT_EQ(reg.acquire("alpha")->name(), "alpha");
  EXPECT_EQ(reg.stats().hits, 1u);
}

TEST_F(RegistryTest, StaleGeometryArtifactIsRejectedAtAcquire) {
  Config other = cfg_;
  other.seed_len = 8;
  store::write_artifact_file(
      (dir_ / "stale.gmidx").string(),
      store::build_artifact(test_reference(800, 99), other));
  serve::ReferenceRegistry reg(dir_.string(), base());
  try {
    reg.acquire("stale");
    FAIL() << "stale-geometry tenant was activated";
  } catch (const StoreError& e) {
    EXPECT_NE(std::string(e.what()).find("stale geometry"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace gm
