// simt::Stream / simt::Event / simt::StreamScheduler unit tests: FIFO order,
// engine overlap (copy/compute, SM-slot backfill, DRAM serialization),
// cross-stream event edges, and the misuse cases that must be deterministic
// StreamErrors rather than hangs (wait-before-record, double-record,
// destroyed events, moved-from handles).
#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "simt/device.h"
#include "simt/stream.h"

namespace gm {
namespace {

using simt::CopyDir;
using simt::Device;
using simt::DeviceSpec;
using simt::Event;
using simt::Stream;
using simt::StreamError;
using simt::StreamScheduler;

// Round-number engine rates so expected times are exact binary fractions:
// a 2^20-byte copy takes 2^-10 s, a memset likewise.
DeviceSpec tiny_spec(std::uint32_t sms = 4, std::uint32_t per_sm = 4) {
  DeviceSpec s = DeviceSpec::k20c();
  s.sm_count = sms;
  s.max_blocks_per_sm = per_sm;
  s.kernel_launch_seconds = 0.0;
  s.pcie_bandwidth = 1 << 30;
  s.mem_bandwidth = 1 << 30;
  return s;
}

constexpr std::size_t kCopyBytes = 1 << 20;  // 2^-10 s on tiny_spec engines
constexpr double kCopySecs = 1.0 / 1024.0;

/// Enqueues a synthetic kernel: `blocks` per-block durations, optional DRAM
/// tail. Uses the public Device::note_kernel_launch hook, so no coroutines
/// run — placement is all that's under test.
Stream::OpId enqueue_kernel(Device& dev, Stream& s, std::string label,
                            std::vector<double> blocks, double dram = 0.0) {
  return s.run(label, [&dev, label, blocks = std::move(blocks), dram] {
    dev.note_kernel_launch(label, blocks, dram, 0.0, 0, -1);
  });
}

TEST(Stream, FifoOrderWithinStream) {
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& s = sched.create_stream("a");
  const auto op1 = enqueue_kernel(dev, s, "k1", {0.5});
  const auto op2 = enqueue_kernel(dev, s, "k2", {0.25});
  sched.drain();
  const auto i1 = sched.interval(op1);
  const auto i2 = sched.interval(op2);
  EXPECT_DOUBLE_EQ(i1.end - i1.start, 0.5);
  EXPECT_GE(i2.start, i1.end);  // in-order: k2 starts after k1 ends
  EXPECT_DOUBLE_EQ(sched.makespan(), 0.75);
}

TEST(Stream, CopyComputeOverlap) {
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& compute = sched.create_stream("compute");
  Stream& copy = sched.create_stream("copy");
  enqueue_kernel(dev, compute, "k", {kCopySecs});
  copy.run("h2d", [&dev] { dev.account_copy(kCopyBytes, CopyDir::kH2D); });
  sched.drain();
  // The copy rides the H2D DMA engine while the kernel owns the SMs: the
  // serial model would charge 2x, the overlapped timeline finishes in 1x.
  EXPECT_DOUBLE_EQ(sched.makespan(), kCopySecs);
  EXPECT_DOUBLE_EQ(dev.ledger().total_seconds(), kCopySecs);  // copy only
}

TEST(Stream, H2dAndD2hEnginesAreIndependent) {
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& a = sched.create_stream("a");
  Stream& b = sched.create_stream("b");
  a.run("up", [&dev] { dev.account_copy(kCopyBytes, CopyDir::kH2D); });
  b.run("down", [&dev] { dev.account_copy(kCopyBytes, CopyDir::kD2H); });
  sched.drain();
  EXPECT_DOUBLE_EQ(sched.makespan(), kCopySecs);  // opposite directions overlap
}

TEST(Stream, SameDirectionCopiesSerialize) {
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& a = sched.create_stream("a");
  Stream& b = sched.create_stream("b");
  a.run("up1", [&dev] { dev.account_copy(kCopyBytes, CopyDir::kH2D); });
  b.run("up2", [&dev] { dev.account_copy(kCopyBytes, CopyDir::kH2D); });
  sched.drain();
  EXPECT_DOUBLE_EQ(sched.makespan(), 2 * kCopySecs);  // one H2D DMA engine
}

TEST(Stream, MemsetsSerializeOnDramEngine) {
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& a = sched.create_stream("a");
  Stream& b = sched.create_stream("b");
  a.run("z1", [&dev] { dev.account_memset(kCopyBytes); });
  b.run("z2", [&dev] { dev.account_memset(kCopyBytes); });
  sched.drain();
  EXPECT_DOUBLE_EQ(sched.makespan(), 2 * kCopySecs);
}

TEST(Stream, SmSlotBackfillAcrossKernels) {
  // One SM with two block slots. Kernel A's blocks are {1.0, 0.1}: its slow
  // block pins one slot to t=1.0 while the other frees at t=0.1. Kernel B
  // (one 0.5 s block, other stream) backfills the idle slot and finishes at
  // 0.6 — inside A's shadow — so the makespan is A's 1.0, not 1.5.
  Device dev(tiny_spec(1, 2));
  StreamScheduler sched(dev);
  Stream& a = sched.create_stream("a");
  Stream& b = sched.create_stream("b");
  const auto ka = enqueue_kernel(dev, a, "ka", {1.0, 0.1});
  const auto kb = enqueue_kernel(dev, b, "kb", {0.5});
  sched.drain();
  EXPECT_DOUBLE_EQ(sched.interval(ka).end, 1.0);
  EXPECT_DOUBLE_EQ(sched.interval(kb).end, 0.6);
  EXPECT_DOUBLE_EQ(sched.makespan(), 1.0);
}

TEST(Stream, ResidencyLimitBoundsOneKernel) {
  // Four slots exist (2 SMs x 2), but a kernel capped at 1 block/SM may only
  // occupy two of them: its four 0.25 s blocks run in two waves.
  Device dev(tiny_spec(2, 2));
  StreamScheduler sched(dev);
  Stream& s = sched.create_stream("s");
  s.run("capped", [&dev] {
    dev.note_kernel_launch("capped", {0.25, 0.25, 0.25, 0.25}, 0.0, 0.0,
                           /*blocks_per_sm=*/1, -1);
  });
  sched.drain();
  EXPECT_DOUBLE_EQ(sched.makespan(), 0.5);
}

TEST(Stream, KernelDramTailSerializes) {
  // Two one-block kernels on separate streams, each with a DRAM tail: the
  // compute overlaps (separate slots) but the tails share the memory system.
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& a = sched.create_stream("a");
  Stream& b = sched.create_stream("b");
  const auto ka = enqueue_kernel(dev, a, "ka", {0.5}, /*dram=*/0.25);
  const auto kb = enqueue_kernel(dev, b, "kb", {0.5}, /*dram=*/0.25);
  sched.drain();
  const double e1 = sched.interval(ka).end;
  const double e2 = sched.interval(kb).end;
  EXPECT_DOUBLE_EQ(std::min(e1, e2), 0.75);
  EXPECT_DOUBLE_EQ(std::max(e1, e2), 1.0);  // second tail queued behind first
}

TEST(Stream, EventOrdersAcrossStreams) {
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& a = sched.create_stream("a");
  Stream& b = sched.create_stream("b");
  Event ev;
  enqueue_kernel(dev, a, "ka", {1.0});
  a.record(ev);
  b.wait(ev);
  const auto kb = enqueue_kernel(dev, b, "kb", {0.5});
  sched.drain();
  EXPECT_DOUBLE_EQ(sched.interval(kb).start, 1.0);
  EXPECT_DOUBLE_EQ(sched.makespan(), 1.5);
}

TEST(Stream, WaitHonorsLatestRecordEnqueuedBeforeIt) {
  // CUDA semantics: a wait targets the records enqueued before it; a later
  // re-record does not retroactively delay the waiter.
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& a = sched.create_stream("a");
  Stream& b = sched.create_stream("b");
  Event ev;
  enqueue_kernel(dev, a, "ka1", {0.5});
  a.record(ev);
  b.wait(ev);  // targets the t=0.5 record
  const auto kb = enqueue_kernel(dev, b, "kb", {0.25});
  enqueue_kernel(dev, a, "ka2", {0.5});
  a.record(ev);  // moves the event to t=1.0, but kb's wait predates this
  sched.drain();
  EXPECT_DOUBLE_EQ(sched.interval(kb).start, 0.5);
}

TEST(Stream, DoubleRecordMovesEventForward) {
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& a = sched.create_stream("a");
  Stream& b = sched.create_stream("b");
  Event ev;
  enqueue_kernel(dev, a, "ka1", {0.5});
  a.record(ev);
  enqueue_kernel(dev, a, "ka2", {0.5});
  a.record(ev);
  b.wait(ev);  // both records enqueued: waits for the latest (t=1.0)
  const auto kb = enqueue_kernel(dev, b, "kb", {0.25});
  sched.drain();
  EXPECT_DOUBLE_EQ(sched.interval(kb).start, 1.0);
}

TEST(Stream, EventReuseAcrossStreams) {
  // One Event relayed a->b->c: each hop waits, works, re-records.
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& a = sched.create_stream("a");
  Stream& b = sched.create_stream("b");
  Stream& c = sched.create_stream("c");
  Event ev;
  enqueue_kernel(dev, a, "ka", {0.25});
  a.record(ev);
  b.wait(ev);
  enqueue_kernel(dev, b, "kb", {0.25});
  b.record(ev);
  c.wait(ev);
  const auto kc = enqueue_kernel(dev, c, "kc", {0.25});
  sched.drain();
  EXPECT_DOUBLE_EQ(sched.interval(kc).start, 0.5);
  EXPECT_DOUBLE_EQ(sched.makespan(), 0.75);
}

TEST(Stream, WaitBeforeRecordThrowsImmediately) {
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& s = sched.create_stream("s");
  Event ev;
  EXPECT_THROW(s.wait(ev), StreamError);  // no record anywhere: sure hang
}

TEST(Stream, MovedFromEventHandleThrows) {
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& s = sched.create_stream("s");
  Event ev;
  s.record(ev);
  Event moved = std::move(ev);
  EXPECT_THROW(s.record(ev), StreamError);
  EXPECT_THROW(s.wait(ev), StreamError);
  s.wait(moved);  // the moved-to handle stays usable
  sched.drain();
}

TEST(Stream, DestroyedEventWithPendingRecordThrowsNotHangs) {
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& a = sched.create_stream("a");
  Stream& b = sched.create_stream("b");
  std::optional<Event> ev;
  ev.emplace();
  enqueue_kernel(dev, a, "ka", {0.5});
  a.record(*ev);
  b.wait(*ev);
  enqueue_kernel(dev, b, "kb", {0.5});
  ev.reset();  // destroyed while its record + a waiter are still queued
  EXPECT_THROW(sched.drain(), StreamError);
}

TEST(Stream, EventDestroyedAfterRecordStillSatisfiesWait) {
  // Destruction after the record executed is benign: the waiter keeps the
  // event's state alive and sees its completion time.
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& a = sched.create_stream("a");
  Stream& b = sched.create_stream("b");
  Stream::OpId kb = 0;
  {
    Event ev;
    enqueue_kernel(dev, a, "ka", {0.5});
    a.record(ev);
    sched.sync(a);  // record executes here
    b.wait(ev);
    kb = enqueue_kernel(dev, b, "kb", {0.25});
  }  // ~Event with a pending (but satisfiable) wait
  sched.drain();
  EXPECT_DOUBLE_EQ(sched.interval(kb).start, 0.5);
}

TEST(Stream, SyncDrainsOneStream) {
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& a = sched.create_stream("a");
  Stream& b = sched.create_stream("b");
  const auto ka = enqueue_kernel(dev, a, "ka", {0.5});
  const auto kb = enqueue_kernel(dev, b, "kb", {0.25});
  sched.sync(a);
  EXPECT_NO_THROW(sched.interval(ka));
  EXPECT_THROW(sched.interval(kb), std::out_of_range);  // b not drained
  sched.drain();
  EXPECT_NO_THROW(sched.interval(kb));
}

TEST(Stream, IntervalThrowsForUnexecutedOp) {
  Device dev(tiny_spec());
  StreamScheduler sched(dev);
  Stream& s = sched.create_stream("s");
  const auto op = enqueue_kernel(dev, s, "k", {0.5});
  EXPECT_THROW(sched.interval(op), std::out_of_range);
  sched.drain();
  EXPECT_NO_THROW(sched.interval(op));
}

TEST(Stream, EpochStartsAtCurrentLedgerTime) {
  // A device that already carries modeled time (serve-layer persistent
  // devices): the scheduler's timeline starts there, and makespan is a delta.
  Device dev(tiny_spec());
  dev.account_copy(kCopyBytes);  // pre-scheduler serial charge
  StreamScheduler sched(dev);
  EXPECT_DOUBLE_EQ(sched.epoch(), kCopySecs);
  EXPECT_DOUBLE_EQ(sched.makespan(), 0.0);
  Stream& s = sched.create_stream("s");
  enqueue_kernel(dev, s, "k", {0.5});
  sched.drain();
  EXPECT_DOUBLE_EQ(sched.makespan(), 0.5);
}

TEST(Stream, ShuffleSeedIsReproducibleAndResultInvariant) {
  // For each seed: identical ledger totals (results don't depend on drain
  // order); same seed twice: identical makespan (placement reproducible).
  auto run_once = [](std::uint64_t seed) {
    Device dev(tiny_spec(1, 2));
    StreamScheduler sched(dev, seed);
    Stream& a = sched.create_stream("a");
    Stream& b = sched.create_stream("b");
    Stream& c = sched.create_stream("c");
    for (int i = 0; i < 4; ++i) {
      enqueue_kernel(dev, a, "ka", {0.3, 0.1});
      enqueue_kernel(dev, b, "kb", {0.2});
      c.run("memset", [&dev] { dev.account_memset(kCopyBytes); });
    }
    sched.drain();
    return std::pair<double, double>{sched.makespan(),
                                     dev.ledger().total_seconds()};
  };
  const auto base = run_once(0);
  for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
    const auto first = run_once(seed);
    const auto second = run_once(seed);
    EXPECT_DOUBLE_EQ(first.first, second.first) << "seed " << seed;
    EXPECT_DOUBLE_EQ(first.second, base.second) << "seed " << seed;
  }
}

TEST(Stream, LaunchOverheadDelaysKernelStart) {
  DeviceSpec spec = tiny_spec();
  spec.kernel_launch_seconds = 0.125;
  Device dev(spec);
  StreamScheduler sched(dev);
  Stream& s = sched.create_stream("s");
  const auto op = s.run("k", [&dev] {
    dev.note_kernel_launch("k", {0.5}, 0.0, 0.0, 0, -1);
  });
  sched.drain();
  EXPECT_DOUBLE_EQ(sched.interval(op).end, 0.625);
}

}  // namespace
}  // namespace gm
