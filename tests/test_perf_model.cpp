// Direct formula-level tests of the device cost model (perf_model.h) — the
// quantity every "GPU seconds" figure in the benchmarks is built from.
#include <gtest/gtest.h>

#include "simt/perf_model.h"

namespace gm {
namespace {

using simt::DeviceSpec;
using simt::PhaseCounters;
using simt::ThreadSlot;

DeviceSpec unit_spec() {
  DeviceSpec spec = DeviceSpec::k20c();
  spec.cycles_per_alu = 1.0;
  spec.cycles_per_shared = 2.0;
  spec.cycles_per_atomic = 48.0;
  spec.cycles_per_txn = 48.0;
  spec.cycles_per_barrier = 32.0;
  return spec;
}

std::vector<ThreadSlot> slots_with(std::size_t n,
                                   const PhaseCounters& each) {
  std::vector<ThreadSlot> slots(n);
  for (auto& s : slots) s.phase = each;
  return slots;
}

TEST(PhaseCycles, EmptyPhaseCostsOneBarrier) {
  const auto spec = unit_spec();
  const auto slots = slots_with(64, {});
  EXPECT_DOUBLE_EQ(simt::phase_cycles(spec, slots), spec.cycles_per_barrier);
}

TEST(PhaseCycles, UniformAluDividedByWarpIpc) {
  const auto spec = unit_spec();
  PhaseCounters c;
  c.alu = 60;
  // 64 threads = 2 warps; each warp contributes max-lane alu (60); warp_ipc
  // = 192/32 = 6 -> compute = 2*60/6 = 20 cycles.
  const auto slots = slots_with(64, c);
  EXPECT_DOUBLE_EQ(simt::phase_cycles(spec, slots),
                   20.0 + spec.cycles_per_barrier);
}

TEST(PhaseCycles, MaxOverLanesNotSum) {
  const auto spec = unit_spec();
  // One lane with 600 alu in a 32-thread warp costs the same as all lanes
  // with 600 — lock-step execution.
  std::vector<ThreadSlot> one(32);
  one[7].phase.alu = 600;
  const auto all = slots_with(32, PhaseCounters{.alu = 600});
  EXPECT_DOUBLE_EQ(simt::phase_cycles(spec, one),
                   simt::phase_cycles(spec, all));
}

TEST(PhaseCycles, TxnLatencyIsPerWarpMax) {
  const auto spec = unit_spec();
  std::vector<ThreadSlot> slots(32);
  slots[0].phase.txns = 10;
  slots[1].phase.txns = 3;  // hidden behind lane 0's 10
  EXPECT_DOUBLE_EQ(simt::phase_cycles(spec, slots),
                   10 * spec.cycles_per_txn + spec.cycles_per_barrier);
}

TEST(PhaseCycles, AtomicsAreSummedAcrossLanes) {
  const auto spec = unit_spec();
  PhaseCounters c;
  c.atomics = 1;
  const auto slots = slots_with(32, c);
  EXPECT_DOUBLE_EQ(simt::phase_cycles(spec, slots),
                   32 * spec.cycles_per_atomic + spec.cycles_per_barrier);
}

TEST(PhaseCycles, SharedOpsUseWarpMax) {
  const auto spec = unit_spec();
  std::vector<ThreadSlot> slots(64);
  slots[0].phase.shared_ops = 5;   // warp 0 max
  slots[33].phase.shared_ops = 7;  // warp 1 max
  EXPECT_DOUBLE_EQ(simt::phase_cycles(spec, slots),
                   (5 + 7) * spec.cycles_per_shared + spec.cycles_per_barrier);
}

TEST(LaunchSeconds, WaveModel) {
  DeviceSpec spec = unit_spec();
  spec.kernel_launch_seconds = 0.0;
  // resident = 13 * 8 = 104 blocks. 208 equal blocks = exactly two waves.
  const std::vector<double> blocks(208, 1.04e6);
  const double expect = (208 * 1.04e6 / 104.0) / spec.clock_hz;
  EXPECT_NEAR(simt::launch_seconds(spec, blocks, 0), expect, 1e-12);
}

TEST(LaunchSeconds, SlowestBlockBoundsShortGrids) {
  DeviceSpec spec = unit_spec();
  spec.kernel_launch_seconds = 0.0;
  const std::vector<double> blocks{5e6, 1.0, 1.0};
  EXPECT_NEAR(simt::launch_seconds(spec, blocks, 0), 5e6 / spec.clock_hz,
              1e-12);
}

TEST(LaunchSeconds, BandwidthTermIsDeviceWide) {
  DeviceSpec spec = unit_spec();
  spec.kernel_launch_seconds = 0.0;
  const std::vector<double> blocks{0.0};
  const std::uint64_t bytes = 208'000'000'000ull;  // one second at 208 GB/s
  EXPECT_NEAR(simt::launch_seconds(spec, blocks, 0, bytes), 1.0, 1e-9);
}

TEST(LaunchSeconds, LaunchOverheadAlwaysPaid) {
  DeviceSpec spec = unit_spec();
  const std::vector<double> blocks{0.0};
  EXPECT_NEAR(simt::launch_seconds(spec, blocks, 0),
              spec.kernel_launch_seconds, 1e-12);
}

TEST(LaunchSeconds, BlocksPerSmOverride) {
  DeviceSpec spec = unit_spec();
  spec.kernel_launch_seconds = 0.0;
  const std::vector<double> blocks(26, 1e6);
  // 2 blocks/SM -> resident 26 -> one wave of 1e6 cycles.
  EXPECT_NEAR(simt::launch_seconds(spec, blocks, 2), 1e6 / spec.clock_hz,
              1e-12);
  // 8/SM (default): resident 104 > grid -> bounded by slowest block anyway.
  EXPECT_NEAR(simt::launch_seconds(spec, blocks, 0), 1e6 / spec.clock_hz,
              1e-12);
}

TEST(PhaseCounters, AccumulateAcrossPhases) {
  PhaseCounters total, a, b;
  a.alu = 5;
  a.global_bytes = 100;
  a.txns = 2;
  b.shared_ops = 3;
  b.atomics = 1;
  total += a;
  total += b;
  EXPECT_EQ(total.alu, 5u);
  EXPECT_EQ(total.global_bytes, 100u);
  EXPECT_EQ(total.txns, 2u);
  EXPECT_EQ(total.shared_ops, 3u);
  EXPECT_EQ(total.atomics, 1u);
}

TEST(Ledger, LabelBreakdownSortedByTime) {
  simt::PerfLedger ledger;
  ledger.add_kernel_seconds(1.0, "small");
  ledger.add_kernel_seconds(5.0, "big");
  ledger.add_kernel_seconds(2.0, "big");
  const auto breakdown = ledger.breakdown();
  ASSERT_EQ(breakdown.size(), 2u);
  EXPECT_EQ(breakdown[0].first, "big");
  EXPECT_EQ(breakdown[0].second.launches, 2u);
  EXPECT_DOUBLE_EQ(breakdown[0].second.seconds, 7.0);
  EXPECT_EQ(breakdown[1].first, "small");
}

TEST(Ledger, RollbackRestoresBreakdown) {
  simt::PerfLedger ledger;
  ledger.add_kernel_seconds(1.0, "a");
  const auto snap = ledger.snapshot();
  ledger.add_kernel_seconds(9.0, "b");
  ledger.rollback(snap);
  const auto breakdown = ledger.breakdown();
  ASSERT_EQ(breakdown.size(), 1u);
  EXPECT_EQ(breakdown[0].first, "a");
}

}  // namespace
}  // namespace gm
