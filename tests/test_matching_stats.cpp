// Matching statistics and both-strand matching tests.
#include <gtest/gtest.h>

#include "index/sa_search.h"
#include "index/suffix_array.h"
#include "mem/matching_stats.h"
#include "mem/mummer.h"
#include "mem/naive.h"
#include "mem/stranded.h"
#include "seq/synthetic.h"
#include "util/rng.h"

namespace gm {
namespace {

seq::Sequence random_seq(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> codes(n);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.bounded(4));
  return seq::Sequence::from_codes(codes);
}

std::vector<std::uint32_t> ms_bruteforce(const seq::Sequence& ref,
                                         const seq::Sequence& query) {
  const auto sa = index::build_suffix_array(ref);
  std::vector<std::uint32_t> ms(query.size());
  for (std::size_t j = 0; j < query.size(); ++j) {
    ms[j] = index::find_longest(ref, sa, query, j, query.size() - j).length;
  }
  return ms;
}

TEST(MatchingStats, MatchesBruteForceOnRandomPairs) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const seq::Sequence ref = random_seq(1500, seed);
    const seq::Sequence query = random_seq(400, seed + 10);
    EXPECT_EQ(mem::matching_statistics(ref, query), ms_bruteforce(ref, query));
  }
}

TEST(MatchingStats, MatchesBruteForceOnRelatedPair) {
  const seq::Sequence base = seq::GenomeModel{.length = 3000}.generate(4);
  seq::MutationModel mut;
  mut.snp_rate = 0.03;
  const seq::Sequence query = mut.apply(base, 5);
  EXPECT_EQ(mem::matching_statistics(base, query), ms_bruteforce(base, query));
}

TEST(MatchingStats, ExactCopyGivesDecreasingTail) {
  const seq::Sequence ref = random_seq(500, 6);
  // Query = exact chunk of the reference: ms[j] should run to the chunk end.
  const seq::Sequence query = ref.subsequence(100, 80);
  const auto ms = mem::matching_statistics(ref, query);
  for (std::size_t j = 0; j < query.size(); ++j) {
    EXPECT_GE(ms[j], static_cast<std::uint32_t>(query.size() - j)) << j;
  }
}

TEST(MatchingStats, ShiftPropertyHolds) {
  // ms[j] >= ms[j-1] - 1, the invariant the sweep exploits.
  const seq::Sequence base = seq::GenomeModel{.length = 4000}.generate(7);
  seq::MutationModel mut;
  mut.snp_rate = 0.05;
  const seq::Sequence query = mut.apply(base, 8);
  const auto ms = mem::matching_statistics(base, query);
  for (std::size_t j = 1; j < ms.size(); ++j) {
    EXPECT_GE(ms[j] + 1, ms[j - 1]) << j;
  }
}

TEST(MatchingStats, EmptyQuery) {
  EXPECT_TRUE(mem::matching_statistics(random_seq(100, 9), seq::Sequence())
                  .empty());
}

TEST(Stranded, ForwardOnlyWhenNoRcMatches) {
  const seq::Sequence base = seq::GenomeModel{.length = 2000}.generate(10);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  mut.inversions = 0;
  const seq::Sequence query = mut.apply(base, 11);

  mem::MummerFinder finder;
  mem::FinderOptions opt;
  opt.min_length = 40;
  finder.build_index(base, opt);
  const auto both = mem::find_mems_both_strands(finder, query);
  const auto fwd = finder.find(query);
  std::size_t fwd_count = 0;
  for (const auto& s : both) {
    if (s.strand == mem::Strand::kForward) ++fwd_count;
  }
  EXPECT_EQ(fwd_count, fwd.size());
}

TEST(Stranded, InvertedSegmentFoundOnReverseStrand) {
  // Plant an exact reverse-complement insert and verify coordinates map
  // back to the forward query.
  const seq::Sequence base = seq::GenomeModel{.length = 3000}.generate(12);
  seq::Sequence query = seq::GenomeModel{.length = 400}.generate(13);
  const std::uint32_t insert_at = static_cast<std::uint32_t>(query.size());
  const seq::Sequence chunk = base.subsequence(1000, 150);
  const seq::Sequence rc = chunk.reverse_complement();
  query.append(rc, 0, rc.size());

  mem::MummerFinder finder;
  mem::FinderOptions opt;
  opt.min_length = 120;
  finder.build_index(base, opt);
  const auto both = mem::find_mems_both_strands(finder, query);
  bool found = false;
  for (const auto& s : both) {
    if (s.strand != mem::Strand::kReverse) continue;
    // Forward-query coordinates of the planted insert.
    if (s.match.q <= insert_at && s.match.q + s.match.len >= insert_at + 150 &&
        s.match.r <= 1000 && s.match.r + s.match.len >= 1150) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Stranded, PalindromicContentAppearsOnBothStrands) {
  // A perfect DNA palindrome matches itself reverse-complemented.
  const seq::Sequence ref = seq::Sequence::from_string("AAACGCGTTTCCC");
  //                         RC of ACGCGT is ACGCGT (palindrome)
  mem::MummerFinder finder;
  mem::FinderOptions opt;
  opt.min_length = 6;
  finder.build_index(ref, opt);
  const seq::Sequence query = seq::Sequence::from_string("ACGCGT");
  const auto both = mem::find_mems_both_strands(finder, query);
  int fwd = 0, rev = 0;
  for (const auto& s : both) {
    (s.strand == mem::Strand::kForward ? fwd : rev) += 1;
  }
  EXPECT_GE(fwd, 1);
  EXPECT_GE(rev, 1);
}

}  // namespace
}  // namespace gm
