// Network front-end tests (docs/SERVING.md).
//
// Three layers, in increasing realism:
//   1. Protocol conformance on the pure codec: round trips, truncation at
//      every byte boundary, hostile headers (bad magic/version/type,
//      oversized lengths), payload malformations, poisoned-decoder
//      semantics. No sockets.
//   2. Loopback e2e: a real listening net::Server with concurrent TCP
//      clients; every MEM list that crosses the wire must be bit-identical
//      to a direct in-process Engine/MemService run — including registry
//      tenant routing and copMEM fast-index mode.
//   3. Admission + robustness: queue-full answers a typed OVERLOAD frame,
//      per-tenant quotas exhaust typed, deadlines expired while queued come
//      back kExpired with serve.deadline_miss accounted, slow-loris and
//      mid-request disconnects never hang the loop, and shutdown drains.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "seq/synthetic.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "store/artifact.h"
#include "util/checksum.h"

namespace gm {
namespace {

using net::Client;
using net::ErrorCode;
using net::FrameDecoder;
using net::FrameType;
using net::QueryFrame;
using net::Reply;
using net::ResultFrame;
using net::ServerConfig;

core::Config small_config() {
  core::Config cfg;
  cfg.min_length = 12;
  cfg.seed_len = 6;
  cfg.threads = 16;
  cfg.tile_blocks = 2;
  return cfg;
}

seq::Sequence test_reference(std::size_t length, std::uint64_t seed) {
  return seq::GenomeModel{.length = length}.generate(seed);
}

seq::Sequence derived_query(const seq::Sequence& ref, std::uint64_t seed,
                            double snp_rate = 0.02) {
  seq::MutationModel mut;
  mut.snp_rate = snp_rate;
  mut.indel_rate = 0.003;
  return mut.apply(ref, seed);
}

std::vector<std::uint8_t> sample_query_frame() {
  QueryFrame q;
  q.id = "req-1";
  q.tenant = "alpha";
  q.query = "ACGTACGTACGT";
  q.deadline_ms = 250;
  return net::encode_query(q);
}

// --- 1. protocol conformance (no sockets) ----------------------------------

TEST(Protocol, QueryRoundTrip) {
  QueryFrame q;
  q.id = "id-42";
  q.tenant = "t";
  q.query = "ACGTNNACGT";
  q.deadline_ms = 1234;
  q.min_length = 77;
  const auto bytes = net::encode_query(q);

  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  FrameDecoder::Frame frame;
  ErrorCode err;
  std::string msg;
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kQuery);

  QueryFrame back;
  std::string perr;
  ASSERT_TRUE(net::parse_query(frame.payload, back, perr)) << perr;
  EXPECT_EQ(back.id, q.id);
  EXPECT_EQ(back.tenant, q.tenant);
  EXPECT_EQ(back.query, q.query);
  EXPECT_EQ(back.deadline_ms, q.deadline_ms);
  EXPECT_EQ(back.min_length, q.min_length);
}

TEST(Protocol, ResultRoundTripWithMems) {
  ResultFrame r;
  r.id = "resp";
  r.warm = true;
  r.queue_us = 17;
  r.service_us = 4200;
  r.mems = {{10, 20, 30}, {40, 50, 60}, {0, 0, 12}};
  const auto bytes = net::encode_result(r);

  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  FrameDecoder::Frame frame;
  ErrorCode err;
  std::string msg;
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kFrame);
  ASSERT_EQ(frame.type, FrameType::kResult);

  ResultFrame back;
  std::string perr;
  ASSERT_TRUE(net::parse_result(frame.payload, back, perr)) << perr;
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.warm, r.warm);
  EXPECT_EQ(back.queue_us, r.queue_us);
  EXPECT_EQ(back.service_us, r.service_us);
  EXPECT_EQ(back.mems, r.mems);
}

TEST(Protocol, ErrorRoundTrip) {
  net::ErrorFrame e;
  e.code = ErrorCode::kQuotaExceeded;
  e.id = "q7";
  e.message = "tenant over quota";
  const auto bytes = net::encode_error(e);

  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  FrameDecoder::Frame frame;
  ErrorCode err;
  std::string msg;
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kFrame);
  ASSERT_EQ(frame.type, FrameType::kError);

  net::ErrorFrame back;
  std::string perr;
  ASSERT_TRUE(net::parse_error(frame.payload, back, perr)) << perr;
  EXPECT_EQ(back.code, e.code);
  EXPECT_EQ(back.id, e.id);
  EXPECT_EQ(back.message, e.message);
}

TEST(Protocol, TruncationAtEveryBoundaryNeedsMoreNeverErrors) {
  const auto bytes = sample_query_frame();
  ASSERT_GT(bytes.size(), net::kHeaderBytes);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(bytes.data(), cut);
    FrameDecoder::Frame frame;
    ErrorCode err;
    std::string msg;
    EXPECT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kNeedMore)
        << "prefix of " << cut << " bytes";
    // Completing the frame afterwards must still decode it.
    dec.feed(bytes.data() + cut, bytes.size() - cut);
    EXPECT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kFrame)
        << "completion after " << cut << " bytes";
  }
}

TEST(Protocol, SlowLorisSingleByteFeedDecodes) {
  const auto bytes = sample_query_frame();
  FrameDecoder dec;
  FrameDecoder::Frame frame;
  ErrorCode err;
  std::string msg;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    dec.feed(&bytes[i], 1);
    ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kNeedMore)
        << "byte " << i;
  }
  dec.feed(&bytes.back(), 1);
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kQuery);
}

TEST(Protocol, BadMagicPoisonsForever) {
  auto bytes = sample_query_frame();
  bytes[0] = 'X';
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  FrameDecoder::Frame frame;
  ErrorCode err;
  std::string msg;
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kError);
  EXPECT_EQ(err, ErrorCode::kBadMagic);
  EXPECT_TRUE(net::closes_connection(err));

  // No resync: a perfectly valid frame after the poison still errors.
  const auto good = sample_query_frame();
  dec.feed(good.data(), good.size());
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kError);
  EXPECT_EQ(err, ErrorCode::kBadMagic);
}

TEST(Protocol, BadVersionIsTyped) {
  auto bytes = sample_query_frame();
  bytes[4] = net::kVersion + 1;
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  FrameDecoder::Frame frame;
  ErrorCode err;
  std::string msg;
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kError);
  EXPECT_EQ(err, ErrorCode::kBadVersion);
}

TEST(Protocol, UnknownFrameTypeIsTyped) {
  auto bytes = sample_query_frame();
  bytes[5] = 0x7F;
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  FrameDecoder::Frame frame;
  ErrorCode err;
  std::string msg;
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kError);
  EXPECT_EQ(err, ErrorCode::kBadType);
}

TEST(Protocol, OversizedLengthFieldIsTypedBeforeAllocation) {
  auto bytes = sample_query_frame();
  // payload_len lives at bytes [8,12): claim ~4 GiB.
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = 0xFF;
  FrameDecoder dec;
  dec.feed(bytes.data(), net::kHeaderBytes);  // header alone is enough
  FrameDecoder::Frame frame;
  ErrorCode err;
  std::string msg;
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kError);
  EXPECT_EQ(err, ErrorCode::kOversized);
}

TEST(Protocol, ServerFrameBoundTightensOversized) {
  const auto bytes = sample_query_frame();  // payload well under 64 MiB
  FrameDecoder dec(/*max_payload=*/4);      // but this server caps at 4 B
  dec.feed(bytes.data(), bytes.size());
  FrameDecoder::Frame frame;
  ErrorCode err;
  std::string msg;
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kError);
  EXPECT_EQ(err, ErrorCode::kOversized);
}

TEST(Protocol, BackToBackFramesDecodeInOrder) {
  QueryFrame q1, q2;
  q1.id = "a";
  q1.query = "ACGT";
  q2.id = "b";
  q2.query = "TTTT";
  auto bytes = net::encode_query(q1);
  const auto second = net::encode_query(q2);
  bytes.insert(bytes.end(), second.begin(), second.end());

  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  FrameDecoder::Frame frame;
  ErrorCode err;
  std::string msg;
  QueryFrame back;
  std::string perr;
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kFrame);
  ASSERT_TRUE(net::parse_query(frame.payload, back, perr));
  EXPECT_EQ(back.id, "a");
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kFrame);
  ASSERT_TRUE(net::parse_query(frame.payload, back, perr));
  EXPECT_EQ(back.id, "b");
  EXPECT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Protocol, QueryPayloadLengthMismatchIsMalformed) {
  QueryFrame q;
  q.id = "x";
  q.query = "ACGTACGT";
  auto bytes = net::encode_query(q);
  // Shrink the inner query_len field (just before the query bytes) so it
  // disagrees with the payload extent: trailing garbage must be rejected.
  const std::size_t query_len_at = bytes.size() - q.query.size() - 4;
  bytes[query_len_at] = 2;

  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  FrameDecoder::Frame frame;
  ErrorCode err;
  std::string msg;
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kFrame);
  QueryFrame back;
  std::string perr;
  EXPECT_FALSE(net::parse_query(frame.payload, back, perr));
  EXPECT_FALSE(perr.empty());
}

TEST(Protocol, ResultMemCountDisagreeingWithPayloadIsMalformed) {
  ResultFrame r;
  r.id = "y";
  r.mems = {{1, 2, 3}};
  auto bytes = net::encode_result(r);
  // mem_count sits 12 bytes before the single MEM record; claim 2 MEMs.
  bytes[bytes.size() - 12 - 4] = 2;

  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  FrameDecoder::Frame frame;
  ErrorCode err;
  std::string msg;
  ASSERT_EQ(dec.next(frame, err, msg), FrameDecoder::Status::kFrame);
  ResultFrame back;
  std::string perr;
  EXPECT_FALSE(net::parse_result(frame.payload, back, perr));
}

TEST(Protocol, CursorStringOverrunFailsInsteadOfReadingPast) {
  // A payload claiming a 200-byte string but holding 3.
  std::vector<std::uint8_t> payload = {200, 0, 'a', 'b', 'c'};
  net::Cursor c(payload.data(), payload.size());
  EXPECT_EQ(c.string16(), "");
  EXPECT_TRUE(c.failed());
  EXPECT_FALSE(c.exhausted());
}

// --- 2. loopback e2e -------------------------------------------------------

class NetLoopback : public ::testing::Test {
 protected:
  void SetUp() override {
    ref_ = test_reference(2500, 91);
    serve::ServiceConfig scfg;
    scfg.engine = small_config();
    service_ = std::make_unique<serve::MemService>(scfg, ref_);
  }

  std::unique_ptr<net::Server> make_server(ServerConfig cfg = {}) {
    return std::make_unique<net::Server>(cfg, *service_);
  }

  seq::Sequence ref_;
  std::unique_ptr<serve::MemService> service_;
};

TEST_F(NetLoopback, PingPong) {
  auto server = make_server();
  Client client(server->port());
  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(client.ping());  // connection stays usable
}

TEST_F(NetLoopback, SingleQueryBitIdenticalToDirectEngineRun) {
  auto server = make_server();
  const auto query = derived_query(ref_, 92);
  const auto direct = core::Engine(small_config()).run(ref_, query);
  ASSERT_FALSE(direct.mems.empty());

  Client client(server->port());
  QueryFrame qf;
  qf.id = "q1";
  qf.query = query.to_string();
  Reply reply;
  ASSERT_TRUE(client.query(qf, reply));
  ASSERT_TRUE(reply.ok()) << to_string(reply.error.code) << ": "
                          << reply.error.message;
  EXPECT_EQ(reply.result.id, "q1");
  EXPECT_EQ(reply.result.mems, direct.mems);
}

TEST_F(NetLoopback, ConcurrentClientsAllBitIdentical) {
  auto server = make_server();
  constexpr int kClients = 4;
  constexpr int kQueriesEach = 3;

  // Direct answers first, one per (client, query) pair.
  std::map<std::string, std::vector<mem::Mem>> expected;
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kQueriesEach; ++i) {
      const auto query = derived_query(ref_, 100 + c * 16 + i);
      expected["c" + std::to_string(c) + "-" + std::to_string(i)] =
          core::Engine(small_config()).run(ref_, query).mems;
    }
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server->port());
      for (int i = 0; i < kQueriesEach; ++i) {
        const auto query = derived_query(ref_, 100 + c * 16 + i);
        QueryFrame qf;
        qf.id = "c" + std::to_string(c) + "-" + std::to_string(i);
        qf.query = query.to_string();
        Reply reply;
        if (!client.query(qf, reply) || !reply.ok() ||
            reply.result.id != qf.id ||
            reply.result.mems != expected[qf.id]) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  const net::NetStats stats = server->stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.responses_ok,
            static_cast<std::uint64_t>(kClients * kQueriesEach));
  EXPECT_EQ(stats.malformed, 0u);
}

TEST_F(NetLoopback, FastIndexModeBitIdenticalOverWire) {
  serve::ServiceConfig scfg;
  scfg.engine = small_config();
  scfg.copmem_fast_index = true;
  serve::MemService fast(scfg, ref_);
  net::Server server(ServerConfig{}, fast);

  const auto query = derived_query(ref_, 93);
  const auto direct = fast.submit({"d", query, 0.0}).get();
  ASSERT_EQ(direct.status, serve::QueryStatus::kOk);

  Client client(server.port());
  QueryFrame qf;
  qf.id = "w";
  qf.query = query.to_string();
  Reply reply;
  ASSERT_TRUE(client.query(qf, reply));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.result.mems, direct.mems);
  EXPECT_TRUE(reply.result.warm);  // fast-index answers are always warm
}

TEST_F(NetLoopback, UnknownTenantInSingleModeIsTyped) {
  auto server = make_server();
  Client client(server->port());
  QueryFrame qf;
  qf.id = "t";
  qf.tenant = "nonexistent";
  qf.query = "ACGTACGTACGTACGT";
  Reply reply;
  ASSERT_TRUE(client.query(qf, reply));
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kUnknownTenant);
  EXPECT_TRUE(client.ping());  // per-request error: connection survives
}

class NetRegistry : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("net-registry-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::create_directories(dir_);
    cfg_ = small_config();
    for (const char* name : {"alpha", "beta"}) {
      refs_[name] = test_reference(2000, util::fnv1a64(std::string_view(name)));
      store::write_artifact_file(
          (dir_ / (std::string(name) + ".gmidx")).string(),
          store::build_artifact(refs_[name], cfg_));
    }
    serve::ServiceConfig scfg;
    scfg.engine = cfg_;
    registry_ = std::make_unique<serve::ReferenceRegistry>(dir_.string(),
                                                           scfg, 4);
  }

  std::filesystem::path dir_;
  core::Config cfg_;
  std::map<std::string, seq::Sequence> refs_;
  std::unique_ptr<serve::ReferenceRegistry> registry_;
};

TEST_F(NetRegistry, TenantFieldRoutesAndResultsAreBitIdentical) {
  net::Server server(ServerConfig{}, *registry_, /*default_tenant=*/"alpha");
  Client client(server.port());

  for (const char* name : {"alpha", "beta"}) {
    const auto query = derived_query(refs_[name], 7);
    const auto direct = core::Engine(cfg_).run(refs_[name], query);
    QueryFrame qf;
    qf.id = std::string("to-") + name;
    qf.tenant = name;
    qf.query = query.to_string();
    Reply reply;
    ASSERT_TRUE(client.query(qf, reply)) << name;
    ASSERT_TRUE(reply.ok()) << name << ": " << reply.error.message;
    EXPECT_EQ(reply.result.mems, direct.mems) << name;
  }
}

TEST_F(NetRegistry, EmptyTenantFallsBackToDefault) {
  net::Server server(ServerConfig{}, *registry_, "beta");
  Client client(server.port());
  const auto query = derived_query(refs_["beta"], 8);
  const auto direct = core::Engine(cfg_).run(refs_["beta"], query);

  QueryFrame qf;
  qf.id = "default-routed";
  qf.query = query.to_string();
  Reply reply;
  ASSERT_TRUE(client.query(qf, reply));
  ASSERT_TRUE(reply.ok()) << reply.error.message;
  EXPECT_EQ(reply.result.mems, direct.mems);
}

TEST_F(NetRegistry, UnknownTenantIsTypedAndKeepsConnection) {
  net::Server server(ServerConfig{}, *registry_, "alpha");
  Client client(server.port());
  QueryFrame qf;
  qf.id = "nope";
  qf.tenant = "gamma";
  qf.query = "ACGTACGTACGTACGT";
  Reply reply;
  ASSERT_TRUE(client.query(qf, reply));
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kUnknownTenant);
  EXPECT_TRUE(client.ping());
}

// --- 3. hostile input over real sockets ------------------------------------

TEST_F(NetLoopback, GarbageBytesGetTypedErrorThenClose) {
  auto server = make_server();
  Client client(server->port());
  const char garbage[] = "this is not a GMEM frame at all...";
  ASSERT_TRUE(client.send_raw(garbage, sizeof(garbage)));

  Reply reply;
  ASSERT_TRUE(client.read_reply(reply));
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kBadMagic);
  // Stream is poisoned: the server closes after the typed answer.
  EXPECT_FALSE(client.read_reply(reply));

  // The server itself is fine — a fresh client works.
  Client next(server->port());
  EXPECT_TRUE(next.ping());
}

TEST_F(NetLoopback, OversizedLengthFieldRejectedBeforeBuffering) {
  auto server = make_server();
  Client client(server->port());
  auto bytes = sample_query_frame();
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = 0xFF;  // ~4 GiB payload_len
  ASSERT_TRUE(client.send_raw(bytes.data(), net::kHeaderBytes));

  Reply reply;
  ASSERT_TRUE(client.read_reply(reply));
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kOversized);
  EXPECT_FALSE(client.read_reply(reply));  // closed
}

TEST_F(NetLoopback, SlowLorisSingleByteWritesStillAnswered) {
  auto server = make_server();
  const auto query = derived_query(ref_, 94);
  const auto direct = core::Engine(small_config()).run(ref_, query);

  Client client(server->port());
  QueryFrame qf;
  qf.id = "slow";
  qf.query = query.to_string();
  const auto bytes = net::encode_query(qf);
  // One byte per send: the edge-triggered loop must reassemble without
  // blocking any other connection.
  std::thread other([&] {
    Client fast(server->port());
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(fast.ping());
  });
  for (const std::uint8_t b : bytes) {
    ASSERT_TRUE(client.send_raw(&b, 1));
  }
  Reply reply;
  ASSERT_TRUE(client.read_reply(reply));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.result.mems, direct.mems);
  other.join();
}

TEST_F(NetLoopback, MidRequestDisconnectDoesNotWedgeTheServer) {
  auto server = make_server();
  {
    Client client(server->port());
    const auto bytes = sample_query_frame();
    // Half a frame, then vanish.
    ASSERT_TRUE(client.send_raw(bytes.data(), bytes.size() / 2));
  }  // destructor closes the socket
  {
    // Full query then immediate close, before reading the response: the
    // completion must find the dead connection and drop the bytes.
    Client client(server->port());
    const auto query = derived_query(ref_, 95);
    QueryFrame qf;
    qf.id = "ghost";
    qf.query = query.to_string();
    ASSERT_TRUE(client.send_frame(net::encode_query(qf)));
  }
  // Server remains healthy for a well-behaved client.
  Client survivor(server->port());
  const auto query = derived_query(ref_, 96);
  QueryFrame qf;
  qf.id = "alive";
  qf.query = query.to_string();
  Reply reply;
  ASSERT_TRUE(survivor.query(qf, reply));
  EXPECT_TRUE(reply.ok());
}

TEST_F(NetLoopback, ServerDirectionFrameFromClientIsTyped) {
  auto server = make_server();
  Client client(server->port());
  ASSERT_TRUE(client.send_frame(net::encode_pong()));
  Reply reply;
  ASSERT_TRUE(client.read_reply(reply));
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kBadType);
}

TEST_F(NetLoopback, MalformedQueryPayloadIsTyped) {
  auto server = make_server();
  Client client(server->port());
  auto bytes = sample_query_frame();
  // Corrupt the inner query_len so the payload no longer parses.
  bytes[bytes.size() - 12 - 4] = 1;
  ASSERT_TRUE(client.send_raw(bytes.data(), bytes.size()));
  Reply reply;
  ASSERT_TRUE(client.read_reply(reply));
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kMalformed);
}

// --- 4. admission control + robustness -------------------------------------

/// Paused-service fixture: requests queue but never dispatch until
/// resume(), making queue-depth admission behavior deterministic.
class NetAdmission : public ::testing::Test {
 protected:
  void SetUp() override {
    ref_ = test_reference(2000, 97);
    query_ = derived_query(ref_, 98);
  }

  std::unique_ptr<serve::MemService> make_paused_service(
      std::size_t queue_capacity) {
    serve::ServiceConfig scfg;
    scfg.engine = small_config();
    scfg.queue_capacity = queue_capacity;
    scfg.start_paused = true;
    return std::make_unique<serve::MemService>(scfg, ref_);
  }

  QueryFrame make_query(const std::string& id) const {
    QueryFrame qf;
    qf.id = id;
    qf.query = query_.to_string();
    return qf;
  }

  seq::Sequence ref_;
  seq::Sequence query_;
};

TEST_F(NetAdmission, QueueFullShedsTypedOverloadNotDisconnect) {
  auto service = make_paused_service(/*queue_capacity=*/2);
  ServerConfig cfg;
  cfg.shed_fraction = 1.0;  // shed at exactly-full (depth >= 2)
  net::Server server(cfg, *service);

  Client client(server.port());
  // Pipeline 5 queries without reading: 2 fill the paused queue, 3 shed.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.send_frame(net::encode_query(
        make_query("p" + std::to_string(i)))));
  }
  // The three sheds answer immediately, while the queue holds the rest.
  int overloaded = 0;
  for (int i = 0; i < 3; ++i) {
    Reply reply;
    ASSERT_TRUE(client.read_reply(reply)) << "shed reply " << i;
    ASSERT_EQ(reply.type, FrameType::kError);
    EXPECT_EQ(reply.error.code, ErrorCode::kOverloaded);
    ++overloaded;
  }
  EXPECT_EQ(overloaded, 3);

  // Releasing the queue completes the two admitted requests — the same
  // connection, never disconnected, now receives their results.
  service->resume();
  int ok = 0;
  for (int i = 0; i < 2; ++i) {
    Reply reply;
    ASSERT_TRUE(client.read_reply(reply)) << "result reply " << i;
    if (reply.ok()) ++ok;
  }
  EXPECT_EQ(ok, 2);
  EXPECT_GE(server.stats().overloaded, 3u);
}

TEST_F(NetAdmission, TenantQuotaExhaustionIsTyped) {
  auto service = make_paused_service(16);
  ServerConfig cfg;
  cfg.tenant_quota = 1;
  net::Server server(cfg, *service);

  Client client(server.port());
  ASSERT_TRUE(client.send_frame(net::encode_query(make_query("first"))));
  ASSERT_TRUE(client.send_frame(net::encode_query(make_query("second"))));

  Reply reply;
  ASSERT_TRUE(client.read_reply(reply));
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kQuotaExceeded);
  EXPECT_EQ(reply.error.id, "second");

  service->resume();
  ASSERT_TRUE(client.read_reply(reply));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.result.id, "first");

  // Quota released on completion: the tenant can submit again.
  Reply again;
  ASSERT_TRUE(client.query(make_query("third"), again));
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(server.stats().quota_exceeded, 1u);
}

TEST_F(NetAdmission, DeadlineExpiredWhileQueuedIsTypedAndAccounted) {
  auto service = make_paused_service(16);
  net::Server server(ServerConfig{}, *service);

  Client client(server.port());
  QueryFrame qf = make_query("late");
  qf.deadline_ms = 1;
  ASSERT_TRUE(client.send_frame(net::encode_query(qf)));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service->resume();

  Reply reply;
  ASSERT_TRUE(client.read_reply(reply));
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kExpired);

  const serve::ServiceStats stats = service->stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_GE(stats.deadline_miss, 1u);  // the serve.deadline_miss source
}

TEST_F(NetAdmission, EmptyQueryIsTypedInvalidOverTheWire) {
  auto service = make_paused_service(16);
  net::Server server(ServerConfig{}, *service);

  Client client(server.port());
  QueryFrame qf;
  qf.id = "void";
  qf.query = "";
  Reply reply;
  ASSERT_TRUE(client.query(qf, reply));
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kInvalidQuery);
  EXPECT_EQ(reply.error.id, "void");
  EXPECT_TRUE(client.ping());  // per-request error, connection usable
  EXPECT_EQ(service->stats().invalid, 1u);
  EXPECT_EQ(service->queue_depth(), 0u);  // never touched the queue
}

TEST_F(NetAdmission, ConnectionCapAnswersTypedRefusal) {
  auto service = make_paused_service(16);
  ServerConfig cfg;
  cfg.max_connections = 1;
  net::Server server(cfg, *service);

  Client first(server.port());
  ASSERT_TRUE(first.ping());  // guarantees the accept is registered

  Client second(server.port());
  Reply reply;
  ASSERT_TRUE(second.read_reply(reply));
  ASSERT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kTooManyConnections);
  EXPECT_FALSE(second.read_reply(reply));  // refused connections close

  EXPECT_TRUE(first.ping());  // the admitted connection is unaffected
  EXPECT_EQ(server.stats().refused_connections, 1u);
}

TEST_F(NetAdmission, GracefulShutdownDrainsInflightAndRefusesNew) {
  auto service = make_paused_service(16);
  net::Server server(ServerConfig{}, *service);
  const std::uint16_t port = server.port();

  Client client(port);
  ASSERT_TRUE(client.send_frame(net::encode_query(make_query("draining"))));
  // Let the request reach the service before shutting down.
  while (service->queue_depth() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service->resume();  // in-flight work completes during the drain
  server.shutdown();

  // The in-flight response was flushed before connections closed.
  Reply reply;
  ASSERT_TRUE(client.read_reply(reply));
  EXPECT_TRUE(reply.ok());
  EXPECT_EQ(reply.result.id, "draining");

  // New connections are refused outright: the listener is gone.
  EXPECT_THROW(Client{port}, std::runtime_error);
}

TEST_F(NetAdmission, ShutdownWithStuckRequestTimesOutInsteadOfHanging) {
  auto service = make_paused_service(16);
  ServerConfig cfg;
  cfg.drain_timeout_seconds = 0.2;  // the request will never complete
  net::Server server(cfg, *service);

  Client client(server.port());
  ASSERT_TRUE(client.send_frame(net::encode_query(make_query("stuck"))));
  while (service->queue_depth() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto t0 = std::chrono::steady_clock::now();
  server.shutdown();  // paused service: drain must give up, not hang
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited, 5.0);

  // The late completion after the server is gone must be dropped safely.
  service->resume();
  service->shutdown();
}

}  // namespace
}  // namespace gm
