// Stream-overlapped pipeline tests: the overlapped path must produce the
// exact serial MEM set under every stream count, scheduler interleaving
// (50 shuffle seeds), and front-end (plain run, cached/serve path,
// multi-device), while only modeled makespan — never results — changes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/multi_device.h"
#include "core/pipeline.h"
#include "mem/naive.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "seq/synthetic.h"
#include "serve/index_cache.h"
#include "serve/service.h"

namespace gm {
namespace {

using core::Config;
using core::Engine;
using core::Result;

/// Small geometry with several tile rows and columns so every overlap edge
/// (double-buffer reuse, cross-stream column fan-out, row stitch) is live.
Config small_config() {
  Config cfg;
  cfg.min_length = 12;
  cfg.seed_len = 6;
  cfg.threads = 16;
  cfg.tile_blocks = 2;  // tile_len = 224: ~2.4k bases make a 11x9 tile grid
  return cfg;
}

void build_pair(std::size_t ref_len, std::size_t query_len, std::uint64_t seed,
                seq::Sequence& ref, seq::Sequence& query) {
  ref = seq::GenomeModel{.length = ref_len}.generate(seed);
  seq::MutationModel mut;
  mut.snp_rate = 0.02;
  mut.indel_rate = 0.004;
  mut.target_length = query_len;
  query = mut.apply(ref, seed + 1);
}

TEST(OverlapPipeline, MatchesSerialAndNaiveAcrossStreamCounts) {
  seq::Sequence ref, query;
  build_pair(2400, 2000, 11, ref, query);
  const auto truth = mem::find_mems_naive(ref, query, 12);
  ASSERT_FALSE(truth.empty());

  Config cfg = small_config();
  const Result serial = Engine(cfg).run(ref, query);
  EXPECT_EQ(serial.mems, truth);

  cfg.overlap = true;
  for (std::uint32_t streams : {1u, 2u, 3u, 5u}) {
    cfg.overlap_streams = streams;
    const Result over = Engine(cfg).run(ref, query);
    EXPECT_EQ(over.mems, truth) << "streams=" << streams;
    EXPECT_EQ(over.stats.mem_count, serial.stats.mem_count);
    EXPECT_EQ(over.stats.tile_rows, serial.stats.tile_rows);
    EXPECT_EQ(over.stats.tile_cols, serial.stats.tile_cols);
    EXPECT_EQ(over.stats.inblock_mems, serial.stats.inblock_mems);
    EXPECT_EQ(over.stats.intile_mems, serial.stats.intile_mems);
    EXPECT_EQ(over.stats.outtile_pieces, serial.stats.outtile_pieces);
    EXPECT_EQ(over.stats.overflow_rounds, serial.stats.overflow_rounds);
  }
}

TEST(OverlapPipeline, DeterministicAcross50ShuffleSeeds) {
  // The satellite rig: 50 scheduler interleavings (seeded drain-order
  // shuffle) must all reproduce the serial MEM set and identical RunStats
  // invariants — results may not depend on stream scheduling, ever.
  seq::Sequence ref, query;
  build_pair(2200, 1800, 23, ref, query);

  Config cfg = small_config();
  const Result serial = Engine(cfg).run(ref, query);
  ASSERT_FALSE(serial.mems.empty());

  cfg.overlap = true;
  cfg.overlap_streams = 3;
  Result first;  // seed 1's run, the cross-seed stats reference
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    cfg.overlap_shuffle_seed = seed;
    Result r = Engine(cfg).run(ref, query);
    ASSERT_EQ(r.mems, serial.mems) << "shuffle seed " << seed;
    ASSERT_EQ(r.stats.mem_count, serial.stats.mem_count) << "seed " << seed;
    ASSERT_EQ(r.stats.inblock_mems, serial.stats.inblock_mems)
        << "seed " << seed;
    ASSERT_EQ(r.stats.intile_mems, serial.stats.intile_mems)
        << "seed " << seed;
    ASSERT_EQ(r.stats.outtile_pieces, serial.stats.outtile_pieces)
        << "seed " << seed;
    ASSERT_EQ(r.stats.overflow_rounds, serial.stats.overflow_rounds)
        << "seed " << seed;
    ASSERT_EQ(r.stats.tile_rows, serial.stats.tile_rows) << "seed " << seed;
    ASSERT_EQ(r.stats.tile_cols, serial.stats.tile_cols) << "seed " << seed;
    if (seed == 1) {
      first = std::move(r);
      continue;
    }
    // Across shuffle seeds the *entire* modeled execution is identical —
    // same charges, same launches; only placement may move. The seconds
    // sums accumulate through the shared ledger in drain order, so they
    // agree only up to floating-point association (a few ulps).
    ASSERT_EQ(r.stats.kernels_launched, first.stats.kernels_launched)
        << "seed " << seed;
    ASSERT_NEAR(r.stats.index_seconds, first.stats.index_seconds,
                1e-9 * first.stats.index_seconds)
        << "seed " << seed;
    ASSERT_NEAR(r.stats.device_match_seconds(),
                first.stats.device_match_seconds(),
                1e-9 * first.stats.device_match_seconds())
        << "seed " << seed;
  }
}

TEST(OverlapPipeline, MakespanImprovesOnSerialAndStatsStayComparable) {
  seq::Sequence ref, query;
  build_pair(4000, 3600, 31, ref, query);

  Config cfg = small_config();
  const Result serial = Engine(cfg).run(ref, query);
  cfg.overlap = true;
  cfg.overlap_streams = 2;
  const Result over = Engine(cfg).run(ref, query);

  EXPECT_EQ(over.mems, serial.mems);
  // Serial makespan is the full ledger delta; overlap can only shrink it.
  EXPECT_GT(serial.stats.modeled_makespan_seconds, 0.0);
  EXPECT_GT(over.stats.modeled_makespan_seconds, 0.0);
  EXPECT_LT(over.stats.modeled_makespan_seconds,
            serial.stats.modeled_makespan_seconds);
  // The serial-style sums remain comparable across paths (per-stream
  // capacity adaptation allows only marginal drift).
  EXPECT_NEAR(over.stats.index_seconds, serial.stats.index_seconds,
              0.05 * serial.stats.index_seconds + 1e-12);
  EXPECT_NEAR(over.stats.device_match_seconds(),
              serial.stats.device_match_seconds(),
              0.05 * serial.stats.device_match_seconds() + 1e-12);
}

TEST(OverlapPipeline, SingleTileInputStillCorrect) {
  // Degenerate case: everything fits one tile — no cross-row edges, one
  // worker gets all the work, the others only wait on the upload event.
  seq::Sequence ref, query;
  build_pair(150, 120, 37, ref, query);

  Config cfg = small_config();
  const Result serial = Engine(cfg).run(ref, query);
  cfg.overlap = true;
  cfg.overlap_streams = 4;
  const Result over = Engine(cfg).run(ref, query);
  EXPECT_EQ(over.mems, serial.mems);
  EXPECT_EQ(over.stats.tile_rows, 1u);
  EXPECT_EQ(over.stats.tile_cols, 1u);
}

TEST(OverlapPipeline, CachedRowIndexSourceMatchesAndHits) {
  seq::Sequence ref, query;
  build_pair(2400, 2000, 41, ref, query);

  Config cfg = small_config();
  const Result serial = Engine(cfg).run(ref, query);

  cfg.overlap = true;
  cfg.overlap_streams = 2;
  Engine over(cfg);
  simt::Device dev(cfg.device);
  serve::DeviceRowIndexCache cache(dev, cfg, /*ref_id=*/1);
  const Result cold = over.run_simt_cached(dev, ref, query, cache);
  EXPECT_EQ(cold.mems, serial.mems);
  EXPECT_FALSE(cold.stats.index_cache_hit);

  const Result warm = over.run_simt_cached(dev, ref, query, cache);
  EXPECT_EQ(warm.mems, serial.mems);
  EXPECT_TRUE(warm.stats.index_cache_hit);
  EXPECT_LT(warm.stats.index_seconds, cold.stats.index_seconds + 1e-12);
}

TEST(OverlapPipeline, MultiDeviceAdoptsOverlap) {
  seq::Sequence ref, query;
  build_pair(3000, 2500, 47, ref, query);

  Config cfg = small_config();
  const auto serial = core::run_multi_device(cfg, 2, ref, query);
  cfg.overlap = true;
  cfg.overlap_streams = 2;
  const auto over = core::run_multi_device(cfg, 2, ref, query);

  EXPECT_EQ(over.mems, serial.mems);
  EXPECT_GT(over.combined.modeled_makespan_seconds, 0.0);
  // Combined makespan is the slowest device, not the sum.
  double mx = 0.0;
  for (const auto& s : over.per_device) {
    mx = std::max(mx, s.modeled_makespan_seconds);
  }
  EXPECT_DOUBLE_EQ(over.combined.modeled_makespan_seconds, mx);
}

TEST(OverlapPipeline, ServeAdoptsOverlap) {
  seq::Sequence ref, query;
  build_pair(2400, 1500, 53, ref, query);

  Config engine_cfg = small_config();
  const Result serial = Engine(engine_cfg).run(ref, query);

  serve::ServiceConfig cfg;
  cfg.engine = engine_cfg;
  cfg.engine.overlap = true;
  cfg.engine.overlap_streams = 2;
  serve::MemService svc(cfg, ref);
  auto fut = svc.submit({.id = "q1", .query = query});
  const serve::QueryResult res = fut.get();
  ASSERT_EQ(res.status, serve::QueryStatus::kOk);
  EXPECT_EQ(res.mems, serial.mems);
  EXPECT_GT(res.stats.modeled_makespan_seconds, 0.0);
}

TEST(OverlapPipeline, SpansLandOnPerStreamTracks) {
  // Satellite: concurrent phases get distinct trace lanes. The overlapped
  // run must emit modeled spans on track >= 1 (per-stream lanes), and the
  // exporter must name those lanes.
  class Guard {
   public:
    Guard() {
      obs::Registry::global().reset();
      obs::Registry::global().set_enabled(true);
    }
    ~Guard() {
      obs::Registry::global().set_enabled(false);
      obs::Registry::global().reset();
    }
  } guard;

  seq::Sequence ref, query;
  build_pair(1500, 1200, 59, ref, query);
  Config cfg = small_config();
  cfg.overlap = true;
  cfg.overlap_streams = 2;
  (void)Engine(cfg).run(ref, query);

  const auto evs = obs::Registry::global().trace().events();
  bool saw_stream_track = false;
  bool saw_serial_track = false;
  for (const auto& ev : evs) {
    if (ev.track >= 1) saw_stream_track = true;
    if (ev.track == 0) saw_serial_track = true;
  }
  EXPECT_TRUE(saw_stream_track);  // kernels/stages retimed onto stream lanes
  EXPECT_TRUE(saw_serial_track);  // host-merge stitch span stays serial

  std::ostringstream os;
  obs::Registry::global().trace().write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"stream 1\""), std::string::npos);
  EXPECT_NE(json.find("\"stream 2\""), std::string::npos);
}

}  // namespace
}  // namespace gm
