// SA-IS, LCP, and RMQ validation against brute-force constructions.
#include <gtest/gtest.h>

#include "index/lcp.h"
#include "index/rmq.h"
#include "index/suffix_array.h"
#include "seq/synthetic.h"
#include "util/rng.h"

namespace gm {
namespace {

seq::Sequence random_seq(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> codes(n);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.bounded(4));
  return seq::Sequence::from_codes(codes);
}

TEST(SuffixArray, EmptyAndTiny) {
  EXPECT_TRUE(index::build_suffix_array(seq::Sequence()).empty());
  const auto sa1 = index::build_suffix_array(seq::Sequence::from_string("A"));
  ASSERT_EQ(sa1.size(), 1u);
  EXPECT_EQ(sa1[0], 0u);
}

TEST(SuffixArray, KnownSmallCase) {
  // banana-analogue in DNA: "ATAATA"; suffixes sorted:
  // A(5) < AATA(2) < ATA(3)?? — verify against brute force instead of hand
  // ordering, then spot-check the first entry.
  const seq::Sequence s = seq::Sequence::from_string("ATAATA");
  const auto sa = index::build_suffix_array(s);
  const auto ref = index::build_suffix_array_bruteforce(s);
  EXPECT_EQ(sa, ref);
}

class SaIsRandom : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SaIsRandom, MatchesBruteForce) {
  const auto [n, seed] = GetParam();
  const seq::Sequence s = random_seq(static_cast<std::size_t>(n),
                                     static_cast<std::uint64_t>(seed));
  EXPECT_EQ(index::build_suffix_array(s),
            index::build_suffix_array_bruteforce(s));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SaIsRandom,
    ::testing::Combine(::testing::Values(2, 3, 7, 16, 100, 1000, 5000),
                       ::testing::Values(1, 2, 3, 4, 5)));

TEST(SaIs, RepetitiveInput) {
  // Highly repetitive strings stress the recursion.
  std::string s;
  for (int i = 0; i < 400; ++i) s += "ACGT";
  for (int i = 0; i < 100; ++i) s += "A";
  const seq::Sequence t = seq::Sequence::from_string(s);
  EXPECT_EQ(index::build_suffix_array(t),
            index::build_suffix_array_bruteforce(t));
}

TEST(SaIs, AllSameCharacter) {
  const seq::Sequence t = seq::Sequence::from_string(std::string(257, 'G'));
  const auto sa = index::build_suffix_array(t);
  // Suffixes of G^n sort shortest-first.
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i], static_cast<std::uint32_t>(sa.size() - 1 - i));
  }
}

TEST(SaIs, GenomicScaleSmoke) {
  const seq::Sequence s = seq::GenomeModel{.length = 200000}.generate(9);
  const auto sa = index::build_suffix_array(s);
  ASSERT_EQ(sa.size(), s.size());
  // Spot-check sortedness on a stride.
  for (std::size_t i = 1; i < sa.size(); i += 1777) {
    const std::size_t common = s.common_prefix(sa[i - 1], s, sa[i], s.size());
    const bool prev_exhausted = sa[i - 1] + common == s.size();
    if (!prev_exhausted) {
      EXPECT_LT(s.base(sa[i - 1] + common), s.base(sa[i] + common)) << i;
    }
  }
}

TEST(Lcp, KasaiMatchesDirect) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const seq::Sequence s = random_seq(2000, seed);
    const auto sa = index::build_suffix_array(s);
    EXPECT_EQ(index::build_lcp_kasai(s, sa), index::build_lcp_direct(s, sa));
  }
}

TEST(Lcp, RepetitiveValues) {
  const seq::Sequence s = seq::Sequence::from_string("AAAAAAAA");
  const auto sa = index::build_suffix_array(s);
  const auto lcp = index::build_lcp_kasai(s, sa);
  // sa = [7,6,...,0]; lcp[i] = i.
  for (std::size_t i = 0; i < lcp.size(); ++i) {
    EXPECT_EQ(lcp[i], static_cast<std::uint32_t>(i));
  }
}

TEST(Rmq, MatchesNaive) {
  util::Xoshiro256 rng(4);
  std::vector<std::uint32_t> v(300);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng.bounded(1000));
  const index::RmqSparseTable rmq(v);
  for (std::size_t lo = 0; lo < v.size(); lo += 7) {
    for (std::size_t hi = lo; hi < v.size(); hi += 11) {
      std::uint32_t expect = v[lo];
      for (std::size_t i = lo; i <= hi; ++i) expect = std::min(expect, v[i]);
      EXPECT_EQ(rmq.min_inclusive(lo, hi), expect);
    }
  }
}

TEST(SortSuffixPositions, SortsSampledSubsets) {
  const seq::Sequence s = random_seq(5000, 77);
  const auto full = index::build_suffix_array(s);
  // Filter the full SA to multiples of K: must equal directly sorting them.
  for (std::uint32_t k : {2u, 5u, 16u}) {
    std::vector<std::uint32_t> expect;
    for (std::uint32_t p : full) {
      if (p % k == 0) expect.push_back(p);
    }
    std::vector<std::uint32_t> got;
    for (std::uint32_t p = 0; p < s.size(); p += k) got.push_back(p);
    index::sort_suffix_positions(s, got);
    EXPECT_EQ(got, expect) << "K=" << k;
  }
}

}  // namespace
}  // namespace gm
