#!/usr/bin/env python3
"""Gate a bench_regress run against the committed baseline.

Usage:
    bench_check.py CANDIDATE.json --baseline bench/BENCH_pipeline.json \
        [--tolerance 0.10] [--min-speedup 1.15] [--diff-out diff.txt]

Both files are "gpumem-bench-pipeline-v1" JSON as emitted by bench_regress.
The gated quantity is per-scenario *modeled* cycles — deterministic simulator
output, so a tight relative band is meaningful. Wall-clock nanoseconds are
printed for trend inspection but never gated (CI machines are too noisy).

Checks, in order:
  1. schema ids match and every baseline scenario exists in the candidate
     (and vice versa — a silently dropped scenario is a failure);
  2. each scenario's modeled_cycles is within --tolerance (default 10%)
     of the baseline, and its MEM count is exactly equal;
  3. the candidate's aggregate overlap_speedup is >= --min-speedup (1.15).

Exit code 0 = pass, 1 = regression (diff printed, and written to --diff-out
when given, for CI artifact upload), 2 = usage / malformed input.
"""

import argparse
import json
import sys

SCHEMA = "gpumem-bench-pipeline-v1"


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_check: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"bench_check: {path}: schema {doc.get('schema')!r}, "
                 f"want {SCHEMA!r}")
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("candidate", help="JSON emitted by this run")
    ap.add_argument("--baseline", required=True,
                    help="committed reference JSON")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative modeled-cycles drift "
                         "(default 0.10 = +-10%%)")
    ap.add_argument("--min-speedup", type=float, default=1.15,
                    help="floor for the aggregate overlap speedup")
    ap.add_argument("--diff-out", default=None,
                    help="also write failure details to this file")
    args = ap.parse_args()

    cand = load(args.candidate)
    base = load(args.baseline)
    cand_rows = {s["name"]: s for s in cand.get("scenarios", [])}
    base_rows = {s["name"]: s for s in base.get("scenarios", [])}

    failures = []
    for name in sorted(base_rows.keys() | cand_rows.keys()):
        if name not in cand_rows:
            failures.append(f"{name}: missing from candidate run")
            continue
        if name not in base_rows:
            failures.append(f"{name}: not in baseline (regenerate the "
                            f"baseline when adding scenarios)")
            continue
        b, c = base_rows[name], cand_rows[name]
        drift = c["modeled_cycles"] / b["modeled_cycles"] - 1.0
        wall_ms = c["wall_ns"] / 1e6
        status = "ok"
        if abs(drift) > args.tolerance:
            status = "FAIL"
            failures.append(
                f"{name}: modeled_cycles {c['modeled_cycles']:.0f} vs "
                f"baseline {b['modeled_cycles']:.0f} ({drift:+.1%}, "
                f"tolerance +-{args.tolerance:.0%})")
        if c["mems"] != b["mems"]:
            status = "FAIL"
            failures.append(f"{name}: mems {c['mems']} vs baseline "
                            f"{b['mems']} (must match exactly)")
        print(f"  {status:4} {name}: cycles {drift:+.2%} vs baseline, "
              f"mems {c['mems']}, wall {wall_ms:.1f} ms (informational)")

    speedup = cand.get("overlap_speedup", 0.0)
    print(f"  overlap speedup: {speedup:.3f}x (floor {args.min_speedup}x, "
          f"baseline had {base.get('overlap_speedup', 0.0):.3f}x)")
    if speedup < args.min_speedup:
        failures.append(f"overlap_speedup {speedup:.3f} below the "
                        f"{args.min_speedup} floor")

    if failures:
        report = "bench_check: REGRESSION\n" + \
                 "\n".join(f"  - {f}" for f in failures) + "\n"
        sys.stderr.write(report)
        if args.diff_out:
            with open(args.diff_out, "w", encoding="utf-8") as f:
                f.write(report)
        return 1
    print(f"bench_check: OK ({len(base_rows)} scenarios within "
          f"+-{args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
