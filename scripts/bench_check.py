#!/usr/bin/env python3
"""Gate a benchmark run against the committed baseline.

Usage:
    bench_check.py CANDIDATE.json --baseline bench/BENCH_pipeline.json \
        [--tolerance 0.10] [--min-speedup 1.15] [--diff-out diff.txt]
    bench_check.py CANDIDATE.json --baseline bench/BENCH_hostwall.json \
        [--diff-out diff.txt]

The schema id in the JSON selects the gating policy (candidate and baseline
must agree on it):

  gpumem-bench-pipeline-v1 (bench_regress)
      Per-scenario *modeled* cycles — deterministic simulator output, so a
      tight relative band is meaningful: each scenario must be within
      --tolerance (default 10%) of the baseline, its MEM count exactly
      equal, and the aggregate overlap_speedup >= --min-speedup (1.15).

  gpumem-bench-hostwall-v1 (bench_host_wall)
      Per-scenario *self-relative* scalar/packed speedup — both sides of the
      ratio are measured in the same process on the same data, so it is
      stable across machines, unlike absolute wall time. Each scenario must
      meet the min_speedup floor embedded in the JSON (0 = informational)
      and its MEM count must equal the baseline exactly. Raw nanoseconds
      are printed for trend inspection but never gated.

  gpumem-bench-indexio-v1 (bench_index_io)
      Per-scenario *self-relative* cold/hot speedup for index persistence
      (docs/STORAGE.md): cold index build vs artifact mmap load, and cold
      registry activation vs warm tenant hit. Gating follows the hostwall
      policy — per-scenario min_speedup floors embedded in the JSON (the
      artifact-load scenario carries the 10x floor) plus exact MEM-count
      equality; raw nanoseconds are informational.

  gpumem-bench-longmem-v1 (bench_longmem)
      Per-scenario *self-relative* eager/lazy speedup of the lazy-LCP
      long-MEM sweep over the eager matching-statistics sweep on a shared
      FM index, across the Table-II pairs x a geometric L ladder. Same
      policy as copmem: per-scenario min_speedup floors embedded in the
      JSON (the 2x floor rides on the top-of-ladder rung of the diverged
      and unrelated pairs; low rungs and high-identity pairs are
      informational) plus exact MEM-count equality (the bench binary
      itself asserts the MEM *sets* are bit-identical); raw nanoseconds
      are informational.

  gpumem-bench-servenet-v1 (bench_serve_slo)
      Network-serving gate point (docs/SERVING.md): an open-loop Poisson
      load run over real loopback TCP at a fixed, deliberately low offered
      load. The gated quantities are machine-independent: the run
      configuration (qps, duration, seed, connections, SLO) must match the
      baseline exactly (so the deterministic Poisson schedule — and hence
      `sent` — is the same), every request must be sent, answered ok, and
      error-free, the summed MEM count must equal the baseline exactly,
      the generous p99 SLO must hold, and the binary's own bit-identity
      check against direct Engine runs must have passed. Latency quantiles
      and the saturation sweep are printed for trend inspection but never
      gated — the knee is a property of the machine.

  gpumem-bench-copmem-v1 (bench_copmem)
      Per-scenario *self-relative* cold/hot speedup of the copMEM
      double-sampled fast-index path over the native pipeline, index+match
      end to end on the Table-IV scenarios. Same policy as indexio:
      per-scenario min_speedup floors embedded in the JSON (every scenario
      carries the 3x floor) plus exact MEM-count equality (the bench binary
      itself additionally asserts the MEM *sets* are bit-identical); raw
      nanoseconds are informational.

In both modes the scenario sets must match exactly — a silently dropped
scenario is a failure.

Exit code 0 = pass, 1 = regression (diff printed, and written to --diff-out
when given, for CI artifact upload), 2 = usage / malformed input.
"""

import argparse
import json
import sys

SCHEMA_PIPELINE = "gpumem-bench-pipeline-v1"
SCHEMA_HOSTWALL = "gpumem-bench-hostwall-v1"
SCHEMA_INDEXIO = "gpumem-bench-indexio-v1"
SCHEMA_COPMEM = "gpumem-bench-copmem-v1"
SCHEMA_LONGMEM = "gpumem-bench-longmem-v1"
SCHEMA_SERVENET = "gpumem-bench-servenet-v1"
SCHEMAS = (SCHEMA_PIPELINE, SCHEMA_HOSTWALL, SCHEMA_INDEXIO, SCHEMA_COPMEM,
           SCHEMA_LONGMEM, SCHEMA_SERVENET)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_check: cannot read {path}: {e}")
    if doc.get("schema") not in SCHEMAS:
        sys.exit(f"bench_check: {path}: schema {doc.get('schema')!r}, "
                 f"want one of {SCHEMAS!r}")
    return doc


def match_scenarios(cand_rows, base_rows, failures):
    """Yields (name, baseline, candidate) pairs; records set mismatches."""
    for name in sorted(base_rows.keys() | cand_rows.keys()):
        if name not in cand_rows:
            failures.append(f"{name}: missing from candidate run")
            continue
        if name not in base_rows:
            failures.append(f"{name}: not in baseline (regenerate the "
                            f"baseline when adding scenarios)")
            continue
        yield name, base_rows[name], cand_rows[name]


def check_pipeline(cand, base, args, failures):
    cand_rows = {s["name"]: s for s in cand.get("scenarios", [])}
    base_rows = {s["name"]: s for s in base.get("scenarios", [])}
    for name, b, c in match_scenarios(cand_rows, base_rows, failures):
        drift = c["modeled_cycles"] / b["modeled_cycles"] - 1.0
        wall_ms = c["wall_ns"] / 1e6
        status = "ok"
        if abs(drift) > args.tolerance:
            status = "FAIL"
            failures.append(
                f"{name}: modeled_cycles {c['modeled_cycles']:.0f} vs "
                f"baseline {b['modeled_cycles']:.0f} ({drift:+.1%}, "
                f"tolerance +-{args.tolerance:.0%})")
        if c["mems"] != b["mems"]:
            status = "FAIL"
            failures.append(f"{name}: mems {c['mems']} vs baseline "
                            f"{b['mems']} (must match exactly)")
        print(f"  {status:4} {name}: cycles {drift:+.2%} vs baseline, "
              f"mems {c['mems']}, wall {wall_ms:.1f} ms (informational)")

    speedup = cand.get("overlap_speedup", 0.0)
    print(f"  overlap speedup: {speedup:.3f}x (floor {args.min_speedup}x, "
          f"baseline had {base.get('overlap_speedup', 0.0):.3f}x)")
    if speedup < args.min_speedup:
        failures.append(f"overlap_speedup {speedup:.3f} below the "
                        f"{args.min_speedup} floor")
    return len(base_rows), f"+-{args.tolerance:.0%} modeled cycles"


def check_hostwall(cand, base, args, failures):
    del args  # gates are embedded per scenario
    cand_rows = {s["name"]: s for s in cand.get("scenarios", [])}
    base_rows = {s["name"]: s for s in base.get("scenarios", [])}
    for name, b, c in match_scenarios(cand_rows, base_rows, failures):
        floor = c.get("min_speedup", 0.0)
        status = "ok"
        if floor != b.get("min_speedup", 0.0):
            status = "FAIL"
            failures.append(
                f"{name}: min_speedup floor {floor} differs from baseline "
                f"{b.get('min_speedup', 0.0)} (regenerate the baseline when "
                f"retuning gates)")
        if floor > 0.0 and c["speedup"] < floor:
            status = "FAIL"
            failures.append(
                f"{name}: scalar/packed speedup {c['speedup']:.2f}x below "
                f"the {floor}x floor (baseline had {b['speedup']:.2f}x)")
        if c["mems"] != b["mems"]:
            status = "FAIL"
            failures.append(f"{name}: mems {c['mems']} vs baseline "
                            f"{b['mems']} (must match exactly)")
        gate = f"floor {floor}x" if floor > 0.0 else "informational"
        print(f"  {status:4} {name}: speedup {c['speedup']:.2f}x ({gate}, "
              f"baseline {b['speedup']:.2f}x), mems {c['mems']}, packed "
              f"{c['packed_ns'] / 1e6:.1f} ms (informational)")
    return len(base_rows), "self-relative speedup floors"


def check_indexio(cand, base, args, failures):
    del args  # gates are embedded per scenario
    cand_rows = {s["name"]: s for s in cand.get("scenarios", [])}
    base_rows = {s["name"]: s for s in base.get("scenarios", [])}
    for name, b, c in match_scenarios(cand_rows, base_rows, failures):
        floor = c.get("min_speedup", 0.0)
        status = "ok"
        if floor != b.get("min_speedup", 0.0):
            status = "FAIL"
            failures.append(
                f"{name}: min_speedup floor {floor} differs from baseline "
                f"{b.get('min_speedup', 0.0)} (regenerate the baseline when "
                f"retuning gates)")
        if floor > 0.0 and c["speedup"] < floor:
            status = "FAIL"
            failures.append(
                f"{name}: cold/hot speedup {c['speedup']:.2f}x below the "
                f"{floor}x floor (baseline had {b['speedup']:.2f}x)")
        if c["mems"] != b["mems"]:
            status = "FAIL"
            failures.append(f"{name}: mems {c['mems']} vs baseline "
                            f"{b['mems']} (must match exactly)")
        gate = f"floor {floor}x" if floor > 0.0 else "informational"
        print(f"  {status:4} {name}: speedup {c['speedup']:.2f}x ({gate}, "
              f"baseline {b['speedup']:.2f}x), mems {c['mems']}, "
              f"cold {c['cold_ns'] / 1e6:.1f} ms / hot "
              f"{c['hot_ns'] / 1e6:.2f} ms (informational)")
    return len(base_rows), "self-relative cold/hot speedup floors"


def check_copmem(cand, base, args, failures):
    del args  # gates are embedded per scenario
    cand_rows = {s["name"]: s for s in cand.get("scenarios", [])}
    base_rows = {s["name"]: s for s in base.get("scenarios", [])}
    for name, b, c in match_scenarios(cand_rows, base_rows, failures):
        floor = c.get("min_speedup", 0.0)
        status = "ok"
        if floor != b.get("min_speedup", 0.0):
            status = "FAIL"
            failures.append(
                f"{name}: min_speedup floor {floor} differs from baseline "
                f"{b.get('min_speedup', 0.0)} (regenerate the baseline when "
                f"retuning gates)")
        if floor > 0.0 and c["speedup"] < floor:
            status = "FAIL"
            failures.append(
                f"{name}: copmem/native e2e speedup {c['speedup']:.2f}x "
                f"below the {floor}x floor (baseline had "
                f"{b['speedup']:.2f}x)")
        if c["mems"] != b["mems"]:
            status = "FAIL"
            failures.append(f"{name}: mems {c['mems']} vs baseline "
                            f"{b['mems']} (must match exactly)")
        gate = f"floor {floor}x" if floor > 0.0 else "informational"
        print(f"  {status:4} {name}: speedup {c['speedup']:.2f}x ({gate}, "
              f"baseline {b['speedup']:.2f}x), mems {c['mems']}, "
              f"native {c['cold_ns'] / 1e6:.1f} ms / copmem "
              f"{c['hot_ns'] / 1e6:.2f} ms (informational)")
    return len(base_rows), "self-relative e2e speedup floors"


def check_longmem(cand, base, args, failures):
    del args  # gates are embedded per scenario
    cand_rows = {s["name"]: s for s in cand.get("scenarios", [])}
    base_rows = {s["name"]: s for s in base.get("scenarios", [])}
    for name, b, c in match_scenarios(cand_rows, base_rows, failures):
        floor = c.get("min_speedup", 0.0)
        status = "ok"
        if floor != b.get("min_speedup", 0.0):
            status = "FAIL"
            failures.append(
                f"{name}: min_speedup floor {floor} differs from baseline "
                f"{b.get('min_speedup', 0.0)} (regenerate the baseline when "
                f"retuning gates)")
        if floor > 0.0 and c["speedup"] < floor:
            status = "FAIL"
            failures.append(
                f"{name}: lazy/eager sweep speedup {c['speedup']:.2f}x "
                f"below the {floor}x floor (baseline had "
                f"{b['speedup']:.2f}x)")
        if c["mems"] != b["mems"]:
            status = "FAIL"
            failures.append(f"{name}: mems {c['mems']} vs baseline "
                            f"{b['mems']} (must match exactly)")
        gate = f"floor {floor}x" if floor > 0.0 else "informational"
        print(f"  {status:4} {name}: speedup {c['speedup']:.2f}x ({gate}, "
              f"baseline {b['speedup']:.2f}x), mems {c['mems']}, "
              f"eager {c['cold_ns'] / 1e6:.1f} ms / lazy "
              f"{c['hot_ns'] / 1e6:.2f} ms (informational)")
    return len(base_rows), "self-relative lazy-sweep speedup floors"


def check_servenet(cand, base, args, failures):
    del args  # the gate is fully described by the JSON itself
    c, b = cand.get("gate", {}), base.get("gate", {})

    # The run must be the same experiment as the baseline: identical load
    # configuration means an identical deterministic Poisson schedule.
    for key in ("offered_qps", "duration_seconds", "seed", "connections",
                "slo_p99_ms"):
        if c.get(key) != b.get(key):
            failures.append(
                f"gate: config field {key!r} {c.get(key)} differs from "
                f"baseline {b.get(key)} (regenerate the baseline when "
                f"retuning the gate point)")
    if c.get("sent") != b.get("sent"):
        failures.append(
            f"gate: sent {c.get('sent')} vs baseline {b.get('sent')} — the "
            f"seeded schedule must produce the same request count")
    if c.get("ok") != c.get("sent") or c.get("errors", 1) != 0:
        failures.append(
            f"gate: {c.get('ok')}/{c.get('sent')} ok with "
            f"{c.get('errors')} errors — every scheduled request must be "
            f"answered ok")
    if c.get("mems_total") != b.get("mems_total"):
        failures.append(
            f"gate: mems_total {c.get('mems_total')} vs baseline "
            f"{b.get('mems_total')} (must match exactly)")
    if not c.get("slo_ok", False):
        failures.append(
            f"gate: p99 {c.get('p99_ms', 0.0):.2f} ms violates the "
            f"{c.get('slo_p99_ms')} ms SLO at {c.get('offered_qps')} qps")
    if not c.get("wire_identical", False):
        failures.append("gate: wire replies were not bit-identical to "
                        "direct Engine runs")

    status = "FAIL" if failures else "ok"
    print(f"  {status:4} gate: {c.get('offered_qps')} qps x "
          f"{c.get('duration_seconds')} s -> {c.get('ok')}/{c.get('sent')} "
          f"ok, mems {c.get('mems_total')}, p50 {c.get('p50_ms', 0.0):.2f} "
          f"ms / p99 {c.get('p99_ms', 0.0):.2f} ms (informational; baseline "
          f"p99 {b.get('p99_ms', 0.0):.2f} ms)")
    sweep = cand.get("sweep", {})
    for p in sweep.get("points", []):
        print(f"       sweep {p.get('offered_qps')} qps: p99 "
              f"{p.get('p99_ms', 0.0):.2f} ms, "
              f"{'within' if p.get('slo_ok') else 'violates'} "
              f"{sweep.get('slo_p99_ms')} ms SLO (informational)")
    if sweep.get("points"):
        print(f"       saturation {sweep.get('saturation_qps')} qps "
              f"(informational; baseline "
              f"{base.get('sweep', {}).get('saturation_qps')})")
    return 1, "exact load config + count/MEM equality, generous SLO"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("candidate", help="JSON emitted by this run")
    ap.add_argument("--baseline", required=True,
                    help="committed reference JSON")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="pipeline schema: allowed relative modeled-cycles "
                         "drift (default 0.10 = +-10%%)")
    ap.add_argument("--min-speedup", type=float, default=1.15,
                    help="pipeline schema: floor for the aggregate overlap "
                         "speedup")
    ap.add_argument("--diff-out", default=None,
                    help="also write failure details to this file")
    args = ap.parse_args()

    cand = load(args.candidate)
    base = load(args.baseline)
    if cand["schema"] != base["schema"]:
        sys.exit(f"bench_check: schema mismatch: candidate "
                 f"{cand['schema']!r} vs baseline {base['schema']!r}")

    failures = []
    if cand["schema"] == SCHEMA_PIPELINE:
        count, policy = check_pipeline(cand, base, args, failures)
    elif cand["schema"] == SCHEMA_INDEXIO:
        count, policy = check_indexio(cand, base, args, failures)
    elif cand["schema"] == SCHEMA_COPMEM:
        count, policy = check_copmem(cand, base, args, failures)
    elif cand["schema"] == SCHEMA_LONGMEM:
        count, policy = check_longmem(cand, base, args, failures)
    elif cand["schema"] == SCHEMA_SERVENET:
        count, policy = check_servenet(cand, base, args, failures)
    else:
        count, policy = check_hostwall(cand, base, args, failures)

    if failures:
        report = "bench_check: REGRESSION\n" + \
                 "\n".join(f"  - {f}" for f in failures) + "\n"
        sys.stderr.write(report)
        if args.diff_out:
            with open(args.diff_out, "w", encoding="utf-8") as f:
                f.write(report)
        return 1
    print(f"bench_check: OK ({count} scenarios, {policy})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
