#!/usr/bin/env python3
"""Render per-phase and per-request summaries from a gpumem Chrome trace.

Usage:
    obs_report.py TRACE.json [--top 10] [--json]

TRACE.json is the file written by `gpumem_cli --trace-out`,
`gpumem_serve --trace-out`, or any other producer of the repo's Chrome
trace-event output (docs/OBSERVABILITY.md). Two tables come out:

  per-phase    every span name, grouped per clock domain (host wall clock
               vs modeled device time), with count / total / mean / max and
               the share of its domain's total span time.

  per-request  spans stamped with a request trace id (serve-layer runs),
               one row per request: queue wait, service time, and the
               wall/modeled span time attributed to it. This is the textual
               counterpart of the one-lane-per-request trace view.

--json emits the same data as a machine-readable object instead of tables.
Exit code 0 on success, 2 on malformed input.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_spans(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"obs_report: cannot read {path}: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        sys.exit(f"obs_report: {path}: no traceEvents array "
                 "(not a Chrome trace?)")
    spans = [e for e in events if e.get("ph") == "X"]
    names = {}  # (pid, tid) -> lane name, from thread_name metadata
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            names[(e.get("pid"), e.get("tid"))] = e["args"]["name"]
    return spans, names


def domain_of(span):
    return "wall" if span.get("pid", 0) == 0 else "modeled"


def fmt_ms(us):
    return f"{us / 1e3:.3f}"


def render_table(headers, rows, out):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def line(cells):
        out.write("  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
                  .rstrip() + "\n")
    line(headers)
    line(["-" * w for w in widths])
    for row in rows:
        line(row)


def phase_summary(spans):
    """name+domain -> {count, total_us, max_us}, plus per-domain totals."""
    phases = defaultdict(lambda: {"count": 0, "total_us": 0.0, "max_us": 0.0})
    domain_total = defaultdict(float)
    for s in spans:
        dur = float(s.get("dur", 0.0))
        key = (domain_of(s), s.get("cat", "?"), s.get("name", "?"))
        p = phases[key]
        p["count"] += 1
        p["total_us"] += dur
        p["max_us"] = max(p["max_us"], dur)
        domain_total[key[0]] += dur
    return phases, domain_total


def request_summary(spans):
    """trace_id -> queue/service/attributed span time + span count."""
    reqs = defaultdict(lambda: {
        "id": "", "queue_us": 0.0, "service_us": 0.0,
        "wall_span_us": 0.0, "modeled_span_us": 0.0, "spans": 0,
    })
    for s in spans:
        args = s.get("args") or {}
        tid = args.get("trace_id")
        if not tid:
            continue
        r = reqs[tid]
        r["spans"] += 1
        dur = float(s.get("dur", 0.0))
        name = s.get("name", "")
        if name == "serve/queue-wait":
            r["queue_us"] += dur
        elif name == "serve/request":
            r["service_us"] += dur
            r["id"] = args.get("id", r["id"]) or r["id"]
        elif domain_of(s) == "wall":
            r["wall_span_us"] += dur
        else:
            r["modeled_span_us"] += dur
        if not r["id"] and "id" in args:
            r["id"] = args["id"]
    return reqs


def main():
    ap = argparse.ArgumentParser(
        description="summarize a gpumem Chrome trace per phase and request")
    ap.add_argument("trace", help="Chrome trace JSON (--trace-out output)")
    ap.add_argument("--top", type=int, default=10,
                    help="show the N slowest requests (default 10; 0 = all)")
    ap.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON instead of tables")
    args = ap.parse_args()

    spans, lane_names = load_spans(args.trace)
    phases, domain_total = phase_summary(spans)
    reqs = request_summary(spans)

    ranked = sorted(reqs.items(),
                    key=lambda kv: kv[1]["service_us"], reverse=True)
    if args.top > 0:
        shown = ranked[:args.top]
    else:
        shown = ranked

    if args.json:
        doc = {
            "spans": len(spans),
            "phases": [
                {"domain": d, "category": c, "name": n, **stats}
                for (d, c, n), stats in sorted(phases.items())
            ],
            "requests": [
                {"trace_id": tid, **stats} for tid, stats in ranked
            ],
        }
        json.dump(doc, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return

    out = sys.stdout
    out.write(f"trace: {args.trace} — {len(spans)} spans, "
              f"{len(reqs)} traced requests, "
              f"{len(lane_names)} lanes\n\n")

    out.write("== per-phase ==\n")
    rows = []
    for (domain, cat, name), p in sorted(
            phases.items(),
            key=lambda kv: (kv[0][0], -kv[1]["total_us"])):
        total = domain_total[domain] or 1.0
        rows.append([
            domain, cat, name, p["count"], fmt_ms(p["total_us"]),
            fmt_ms(p["total_us"] / p["count"]), fmt_ms(p["max_us"]),
            f"{100.0 * p['total_us'] / total:.1f}%",
        ])
    render_table(
        ["clock", "category", "phase", "count", "total_ms", "mean_ms",
         "max_ms", "share"], rows, out)

    if reqs:
        out.write(f"\n== per-request (top {len(shown)} of {len(reqs)} "
                  "by service time) ==\n")
        rows = []
        for tid, r in shown:
            rows.append([
                tid, r["id"] or "?", fmt_ms(r["queue_us"]),
                fmt_ms(r["service_us"]), fmt_ms(r["wall_span_us"]),
                fmt_ms(r["modeled_span_us"]), r["spans"],
            ])
        render_table(
            ["trace_id", "request", "queue_ms", "service_ms",
             "wall_spans_ms", "modeled_spans_ms", "spans"], rows, out)
        total_q = sum(r["queue_us"] for _, r in ranked)
        total_s = sum(r["service_us"] for _, r in ranked)
        out.write(f"\nqueue wait total {fmt_ms(total_q)} ms, "
                  f"service total {fmt_ms(total_s)} ms "
                  f"across {len(reqs)} requests\n")
    else:
        out.write("\n(no request-scoped spans — run the producer through "
                  "the serve layer to get per-request lanes)\n")


if __name__ == "__main__":
    main()
