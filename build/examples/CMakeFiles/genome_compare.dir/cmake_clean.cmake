file(REMOVE_RECURSE
  "CMakeFiles/genome_compare.dir/genome_compare.cpp.o"
  "CMakeFiles/genome_compare.dir/genome_compare.cpp.o.d"
  "genome_compare"
  "genome_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
