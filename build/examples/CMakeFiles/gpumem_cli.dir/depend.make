# Empty dependencies file for gpumem_cli.
# This may be replaced when dependencies are built.
