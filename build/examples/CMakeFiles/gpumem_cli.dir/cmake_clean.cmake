file(REMOVE_RECURSE
  "CMakeFiles/gpumem_cli.dir/gpumem_cli.cpp.o"
  "CMakeFiles/gpumem_cli.dir/gpumem_cli.cpp.o.d"
  "gpumem_cli"
  "gpumem_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumem_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
