# Empty compiler generated dependencies file for mem_stats.
# This may be replaced when dependencies are built.
