file(REMOVE_RECURSE
  "CMakeFiles/mem_stats.dir/mem_stats.cpp.o"
  "CMakeFiles/mem_stats.dir/mem_stats.cpp.o.d"
  "mem_stats"
  "mem_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
