file(REMOVE_RECURSE
  "CMakeFiles/gm_core.dir/balance.cpp.o"
  "CMakeFiles/gm_core.dir/balance.cpp.o.d"
  "CMakeFiles/gm_core.dir/config.cpp.o"
  "CMakeFiles/gm_core.dir/config.cpp.o.d"
  "CMakeFiles/gm_core.dir/host_stitch.cpp.o"
  "CMakeFiles/gm_core.dir/host_stitch.cpp.o.d"
  "CMakeFiles/gm_core.dir/index_kernels.cpp.o"
  "CMakeFiles/gm_core.dir/index_kernels.cpp.o.d"
  "CMakeFiles/gm_core.dir/match_kernel.cpp.o"
  "CMakeFiles/gm_core.dir/match_kernel.cpp.o.d"
  "CMakeFiles/gm_core.dir/multi_device.cpp.o"
  "CMakeFiles/gm_core.dir/multi_device.cpp.o.d"
  "CMakeFiles/gm_core.dir/pipeline.cpp.o"
  "CMakeFiles/gm_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/gm_core.dir/registry.cpp.o"
  "CMakeFiles/gm_core.dir/registry.cpp.o.d"
  "CMakeFiles/gm_core.dir/tile_kernel.cpp.o"
  "CMakeFiles/gm_core.dir/tile_kernel.cpp.o.d"
  "libgm_core.a"
  "libgm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
