file(REMOVE_RECURSE
  "libgm_core.a"
)
