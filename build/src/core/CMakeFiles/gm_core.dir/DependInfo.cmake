
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/balance.cpp" "src/core/CMakeFiles/gm_core.dir/balance.cpp.o" "gcc" "src/core/CMakeFiles/gm_core.dir/balance.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/gm_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/gm_core.dir/config.cpp.o.d"
  "/root/repo/src/core/host_stitch.cpp" "src/core/CMakeFiles/gm_core.dir/host_stitch.cpp.o" "gcc" "src/core/CMakeFiles/gm_core.dir/host_stitch.cpp.o.d"
  "/root/repo/src/core/index_kernels.cpp" "src/core/CMakeFiles/gm_core.dir/index_kernels.cpp.o" "gcc" "src/core/CMakeFiles/gm_core.dir/index_kernels.cpp.o.d"
  "/root/repo/src/core/match_kernel.cpp" "src/core/CMakeFiles/gm_core.dir/match_kernel.cpp.o" "gcc" "src/core/CMakeFiles/gm_core.dir/match_kernel.cpp.o.d"
  "/root/repo/src/core/multi_device.cpp" "src/core/CMakeFiles/gm_core.dir/multi_device.cpp.o" "gcc" "src/core/CMakeFiles/gm_core.dir/multi_device.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/gm_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/gm_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/gm_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/gm_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/tile_kernel.cpp" "src/core/CMakeFiles/gm_core.dir/tile_kernel.cpp.o" "gcc" "src/core/CMakeFiles/gm_core.dir/tile_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/gm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/gm_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/gm_index.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/gm_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
