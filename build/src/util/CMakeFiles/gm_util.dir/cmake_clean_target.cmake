file(REMOVE_RECURSE
  "libgm_util.a"
)
