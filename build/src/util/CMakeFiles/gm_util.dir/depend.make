# Empty dependencies file for gm_util.
# This may be replaced when dependencies are built.
