file(REMOVE_RECURSE
  "CMakeFiles/gm_util.dir/cli.cpp.o"
  "CMakeFiles/gm_util.dir/cli.cpp.o.d"
  "CMakeFiles/gm_util.dir/parallel.cpp.o"
  "CMakeFiles/gm_util.dir/parallel.cpp.o.d"
  "CMakeFiles/gm_util.dir/stats.cpp.o"
  "CMakeFiles/gm_util.dir/stats.cpp.o.d"
  "CMakeFiles/gm_util.dir/table.cpp.o"
  "CMakeFiles/gm_util.dir/table.cpp.o.d"
  "CMakeFiles/gm_util.dir/thread_pool.cpp.o"
  "CMakeFiles/gm_util.dir/thread_pool.cpp.o.d"
  "libgm_util.a"
  "libgm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
