# Empty dependencies file for gm_index.
# This may be replaced when dependencies are built.
