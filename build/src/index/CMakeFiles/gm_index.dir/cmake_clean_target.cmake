file(REMOVE_RECURSE
  "libgm_index.a"
)
