
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/esa.cpp" "src/index/CMakeFiles/gm_index.dir/esa.cpp.o" "gcc" "src/index/CMakeFiles/gm_index.dir/esa.cpp.o.d"
  "/root/repo/src/index/fm_index.cpp" "src/index/CMakeFiles/gm_index.dir/fm_index.cpp.o" "gcc" "src/index/CMakeFiles/gm_index.dir/fm_index.cpp.o.d"
  "/root/repo/src/index/kmer_index.cpp" "src/index/CMakeFiles/gm_index.dir/kmer_index.cpp.o" "gcc" "src/index/CMakeFiles/gm_index.dir/kmer_index.cpp.o.d"
  "/root/repo/src/index/lcp.cpp" "src/index/CMakeFiles/gm_index.dir/lcp.cpp.o" "gcc" "src/index/CMakeFiles/gm_index.dir/lcp.cpp.o.d"
  "/root/repo/src/index/sa_search.cpp" "src/index/CMakeFiles/gm_index.dir/sa_search.cpp.o" "gcc" "src/index/CMakeFiles/gm_index.dir/sa_search.cpp.o.d"
  "/root/repo/src/index/sparse_suffix_array.cpp" "src/index/CMakeFiles/gm_index.dir/sparse_suffix_array.cpp.o" "gcc" "src/index/CMakeFiles/gm_index.dir/sparse_suffix_array.cpp.o.d"
  "/root/repo/src/index/suffix_array.cpp" "src/index/CMakeFiles/gm_index.dir/suffix_array.cpp.o" "gcc" "src/index/CMakeFiles/gm_index.dir/suffix_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/gm_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
