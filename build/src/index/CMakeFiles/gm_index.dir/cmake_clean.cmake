file(REMOVE_RECURSE
  "CMakeFiles/gm_index.dir/esa.cpp.o"
  "CMakeFiles/gm_index.dir/esa.cpp.o.d"
  "CMakeFiles/gm_index.dir/fm_index.cpp.o"
  "CMakeFiles/gm_index.dir/fm_index.cpp.o.d"
  "CMakeFiles/gm_index.dir/kmer_index.cpp.o"
  "CMakeFiles/gm_index.dir/kmer_index.cpp.o.d"
  "CMakeFiles/gm_index.dir/lcp.cpp.o"
  "CMakeFiles/gm_index.dir/lcp.cpp.o.d"
  "CMakeFiles/gm_index.dir/sa_search.cpp.o"
  "CMakeFiles/gm_index.dir/sa_search.cpp.o.d"
  "CMakeFiles/gm_index.dir/sparse_suffix_array.cpp.o"
  "CMakeFiles/gm_index.dir/sparse_suffix_array.cpp.o.d"
  "CMakeFiles/gm_index.dir/suffix_array.cpp.o"
  "CMakeFiles/gm_index.dir/suffix_array.cpp.o.d"
  "libgm_index.a"
  "libgm_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
