
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/essamem.cpp" "src/mem/CMakeFiles/gm_mem.dir/essamem.cpp.o" "gcc" "src/mem/CMakeFiles/gm_mem.dir/essamem.cpp.o.d"
  "/root/repo/src/mem/matching_stats.cpp" "src/mem/CMakeFiles/gm_mem.dir/matching_stats.cpp.o" "gcc" "src/mem/CMakeFiles/gm_mem.dir/matching_stats.cpp.o.d"
  "/root/repo/src/mem/mem.cpp" "src/mem/CMakeFiles/gm_mem.dir/mem.cpp.o" "gcc" "src/mem/CMakeFiles/gm_mem.dir/mem.cpp.o.d"
  "/root/repo/src/mem/mummer.cpp" "src/mem/CMakeFiles/gm_mem.dir/mummer.cpp.o" "gcc" "src/mem/CMakeFiles/gm_mem.dir/mummer.cpp.o.d"
  "/root/repo/src/mem/naive.cpp" "src/mem/CMakeFiles/gm_mem.dir/naive.cpp.o" "gcc" "src/mem/CMakeFiles/gm_mem.dir/naive.cpp.o.d"
  "/root/repo/src/mem/report.cpp" "src/mem/CMakeFiles/gm_mem.dir/report.cpp.o" "gcc" "src/mem/CMakeFiles/gm_mem.dir/report.cpp.o.d"
  "/root/repo/src/mem/slamem.cpp" "src/mem/CMakeFiles/gm_mem.dir/slamem.cpp.o" "gcc" "src/mem/CMakeFiles/gm_mem.dir/slamem.cpp.o.d"
  "/root/repo/src/mem/sparsemem.cpp" "src/mem/CMakeFiles/gm_mem.dir/sparsemem.cpp.o" "gcc" "src/mem/CMakeFiles/gm_mem.dir/sparsemem.cpp.o.d"
  "/root/repo/src/mem/stranded.cpp" "src/mem/CMakeFiles/gm_mem.dir/stranded.cpp.o" "gcc" "src/mem/CMakeFiles/gm_mem.dir/stranded.cpp.o.d"
  "/root/repo/src/mem/uniqueness.cpp" "src/mem/CMakeFiles/gm_mem.dir/uniqueness.cpp.o" "gcc" "src/mem/CMakeFiles/gm_mem.dir/uniqueness.cpp.o.d"
  "/root/repo/src/mem/validate.cpp" "src/mem/CMakeFiles/gm_mem.dir/validate.cpp.o" "gcc" "src/mem/CMakeFiles/gm_mem.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/gm_index.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/gm_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
