file(REMOVE_RECURSE
  "CMakeFiles/gm_mem.dir/essamem.cpp.o"
  "CMakeFiles/gm_mem.dir/essamem.cpp.o.d"
  "CMakeFiles/gm_mem.dir/matching_stats.cpp.o"
  "CMakeFiles/gm_mem.dir/matching_stats.cpp.o.d"
  "CMakeFiles/gm_mem.dir/mem.cpp.o"
  "CMakeFiles/gm_mem.dir/mem.cpp.o.d"
  "CMakeFiles/gm_mem.dir/mummer.cpp.o"
  "CMakeFiles/gm_mem.dir/mummer.cpp.o.d"
  "CMakeFiles/gm_mem.dir/naive.cpp.o"
  "CMakeFiles/gm_mem.dir/naive.cpp.o.d"
  "CMakeFiles/gm_mem.dir/report.cpp.o"
  "CMakeFiles/gm_mem.dir/report.cpp.o.d"
  "CMakeFiles/gm_mem.dir/slamem.cpp.o"
  "CMakeFiles/gm_mem.dir/slamem.cpp.o.d"
  "CMakeFiles/gm_mem.dir/sparsemem.cpp.o"
  "CMakeFiles/gm_mem.dir/sparsemem.cpp.o.d"
  "CMakeFiles/gm_mem.dir/stranded.cpp.o"
  "CMakeFiles/gm_mem.dir/stranded.cpp.o.d"
  "CMakeFiles/gm_mem.dir/uniqueness.cpp.o"
  "CMakeFiles/gm_mem.dir/uniqueness.cpp.o.d"
  "CMakeFiles/gm_mem.dir/validate.cpp.o"
  "CMakeFiles/gm_mem.dir/validate.cpp.o.d"
  "libgm_mem.a"
  "libgm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
