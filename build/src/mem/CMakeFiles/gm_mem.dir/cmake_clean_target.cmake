file(REMOVE_RECURSE
  "libgm_mem.a"
)
