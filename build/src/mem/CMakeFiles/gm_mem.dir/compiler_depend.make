# Empty compiler generated dependencies file for gm_mem.
# This may be replaced when dependencies are built.
