file(REMOVE_RECURSE
  "CMakeFiles/gm_seq.dir/fasta.cpp.o"
  "CMakeFiles/gm_seq.dir/fasta.cpp.o.d"
  "CMakeFiles/gm_seq.dir/sequence.cpp.o"
  "CMakeFiles/gm_seq.dir/sequence.cpp.o.d"
  "CMakeFiles/gm_seq.dir/synthetic.cpp.o"
  "CMakeFiles/gm_seq.dir/synthetic.cpp.o.d"
  "libgm_seq.a"
  "libgm_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
