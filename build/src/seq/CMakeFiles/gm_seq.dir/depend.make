# Empty dependencies file for gm_seq.
# This may be replaced when dependencies are built.
