file(REMOVE_RECURSE
  "libgm_seq.a"
)
