file(REMOVE_RECURSE
  "CMakeFiles/gm_simt.dir/device.cpp.o"
  "CMakeFiles/gm_simt.dir/device.cpp.o.d"
  "CMakeFiles/gm_simt.dir/executor.cpp.o"
  "CMakeFiles/gm_simt.dir/executor.cpp.o.d"
  "CMakeFiles/gm_simt.dir/perf_model.cpp.o"
  "CMakeFiles/gm_simt.dir/perf_model.cpp.o.d"
  "CMakeFiles/gm_simt.dir/primitives.cpp.o"
  "CMakeFiles/gm_simt.dir/primitives.cpp.o.d"
  "libgm_simt.a"
  "libgm_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
