file(REMOVE_RECURSE
  "libgm_simt.a"
)
