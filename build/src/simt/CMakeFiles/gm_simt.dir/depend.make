# Empty dependencies file for gm_simt.
# This may be replaced when dependencies are built.
