# Empty compiler generated dependencies file for gm_anchor.
# This may be replaced when dependencies are built.
