file(REMOVE_RECURSE
  "libgm_anchor.a"
)
