file(REMOVE_RECURSE
  "CMakeFiles/gm_anchor.dir/align.cpp.o"
  "CMakeFiles/gm_anchor.dir/align.cpp.o.d"
  "CMakeFiles/gm_anchor.dir/chain.cpp.o"
  "CMakeFiles/gm_anchor.dir/chain.cpp.o.d"
  "libgm_anchor.a"
  "libgm_anchor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_anchor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
