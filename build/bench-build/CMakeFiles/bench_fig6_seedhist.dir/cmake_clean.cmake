file(REMOVE_RECURSE
  "../bench/bench_fig6_seedhist"
  "../bench/bench_fig6_seedhist.pdb"
  "CMakeFiles/bench_fig6_seedhist.dir/bench_fig6_seedhist.cpp.o"
  "CMakeFiles/bench_fig6_seedhist.dir/bench_fig6_seedhist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_seedhist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
