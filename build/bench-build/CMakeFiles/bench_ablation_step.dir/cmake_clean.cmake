file(REMOVE_RECURSE
  "../bench/bench_ablation_step"
  "../bench/bench_ablation_step.pdb"
  "CMakeFiles/bench_ablation_step.dir/bench_ablation_step.cpp.o"
  "CMakeFiles/bench_ablation_step.dir/bench_ablation_step.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
