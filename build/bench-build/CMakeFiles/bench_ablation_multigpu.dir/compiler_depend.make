# Empty compiler generated dependencies file for bench_ablation_multigpu.
# This may be replaced when dependencies are built.
