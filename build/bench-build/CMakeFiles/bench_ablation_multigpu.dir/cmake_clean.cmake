file(REMOVE_RECURSE
  "../bench/bench_ablation_multigpu"
  "../bench/bench_ablation_multigpu.pdb"
  "CMakeFiles/bench_ablation_multigpu.dir/bench_ablation_multigpu.cpp.o"
  "CMakeFiles/bench_ablation_multigpu.dir/bench_ablation_multigpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
