
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_device.cpp" "bench-build/CMakeFiles/bench_ablation_device.dir/bench_ablation_device.cpp.o" "gcc" "bench-build/CMakeFiles/bench_ablation_device.dir/bench_ablation_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/gm_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/gm_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/gm_index.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/gm_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
