# Empty dependencies file for bench_table4_extract.
# This may be replaced when dependencies are built.
