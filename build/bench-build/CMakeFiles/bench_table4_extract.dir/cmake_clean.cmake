file(REMOVE_RECURSE
  "../bench/bench_table4_extract"
  "../bench/bench_table4_extract.pdb"
  "CMakeFiles/bench_table4_extract.dir/bench_table4_extract.cpp.o"
  "CMakeFiles/bench_table4_extract.dir/bench_table4_extract.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
