file(REMOVE_RECURSE
  "../bench/bench_ablation_combine"
  "../bench/bench_ablation_combine.pdb"
  "CMakeFiles/bench_ablation_combine.dir/bench_ablation_combine.cpp.o"
  "CMakeFiles/bench_ablation_combine.dir/bench_ablation_combine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_combine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
