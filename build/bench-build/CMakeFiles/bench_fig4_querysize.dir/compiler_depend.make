# Empty compiler generated dependencies file for bench_fig4_querysize.
# This may be replaced when dependencies are built.
