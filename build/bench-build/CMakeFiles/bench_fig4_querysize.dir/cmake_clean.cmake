file(REMOVE_RECURSE
  "../bench/bench_fig4_querysize"
  "../bench/bench_fig4_querysize.pdb"
  "CMakeFiles/bench_fig4_querysize.dir/bench_fig4_querysize.cpp.o"
  "CMakeFiles/bench_fig4_querysize.dir/bench_fig4_querysize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_querysize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
