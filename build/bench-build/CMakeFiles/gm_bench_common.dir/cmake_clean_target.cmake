file(REMOVE_RECURSE
  "libgm_bench_common.a"
)
