# Empty compiler generated dependencies file for gm_bench_common.
# This may be replaced when dependencies are built.
