file(REMOVE_RECURSE
  "CMakeFiles/gm_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/gm_bench_common.dir/bench_common.cpp.o.d"
  "libgm_bench_common.a"
  "libgm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
