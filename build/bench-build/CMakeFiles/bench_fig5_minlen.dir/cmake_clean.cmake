file(REMOVE_RECURSE
  "../bench/bench_fig5_minlen"
  "../bench/bench_fig5_minlen.pdb"
  "CMakeFiles/bench_fig5_minlen.dir/bench_fig5_minlen.cpp.o"
  "CMakeFiles/bench_fig5_minlen.dir/bench_fig5_minlen.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_minlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
