file(REMOVE_RECURSE
  "../bench/bench_table3_index"
  "../bench/bench_table3_index.pdb"
  "CMakeFiles/bench_table3_index.dir/bench_table3_index.cpp.o"
  "CMakeFiles/bench_table3_index.dir/bench_table3_index.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
